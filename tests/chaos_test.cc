// Chaos tests: the query service must return exactly the fault-free answer
// under seeded fault plans (drops, delays, duplicates, corruption, server
// kills/stalls) — only slower — and must surface kUnavailable rather than
// hang when every server is dead.  The no-hang guarantee is enforced twice:
// by the client's deadline-bounded retries, and by the ctest TIMEOUT set on
// every test binary.
#include <gtest/gtest.h>

#include <filesystem>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "obs/trace.h"
#include "query/service.h"
#include "rpc/fault.h"
#include "sortrep/sorted_replica.h"
#include "testing/invariants.h"
#include "workloads/boss.h"

namespace pdc {
namespace {

rpc::RetryPolicy tight_retry() {
  rpc::RetryPolicy policy;
  policy.attempt_timeout = std::chrono::milliseconds(100);
  policy.max_attempts = 4;
  policy.backoff_base = std::chrono::milliseconds(2);
  policy.backoff_cap = std::chrono::milliseconds(20);
  return policy;
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/chaos_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);
    const ObjectId container =
        std::move(store_->create_container("c")).value();
    Rng rng(7);
    data_.resize(40000);
    for (auto& v : data_) v = static_cast<float>(rng.uniform(0.0, 10.0));
    obj::ImportOptions options;
    options.region_size_bytes = 4096;  // 40 regions across 4 servers
    object_ = std::move(store_->import_object<float>(
                            container, "v", std::span<const float>(data_),
                            options))
                  .value();
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  /// The mixed query batch: alternating count-only and selection queries
  /// over intervals of varying selectivity.
  [[nodiscard]] std::vector<std::pair<double, double>> intervals() const {
    return {{1.0, 9.0}, {4.5, 5.5}, {0.2, 0.3}, {7.9, 8.0}, {2.0, 6.0}};
  }

  query::QueryPtr make_query(double lo, double hi) const {
    return query::q_and(query::create(object_, QueryOp::kGT, lo),
                        query::create(object_, QueryOp::kLT, hi));
  }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  std::vector<float> data_;
  ObjectId object_ = kInvalidObjectId;
};

// Acceptance criterion: a seeded plan that kills 1 of 4 servers and
// drops/delays 10% of messages must change nothing about the answers —
// hit counts, positions AND fetched values — while OpStats shows nonzero
// retries and redispatched_regions.
TEST_F(ChaosTest, DegradedQueriesMatchFaultFreeBaseline) {
  query::ServiceOptions clean_options;
  clean_options.num_servers = 4;
  query::QueryService baseline(*store_, clean_options);

  rpc::FaultPlan plan;
  plan.seed = 42;
  plan.drop_rate = 0.10;
  plan.delay_rate = 0.10;
  plan.duplicate_rate = 0.05;
  plan.corrupt_rate = 0.05;
  plan.min_delay = std::chrono::milliseconds(1);
  plan.max_delay = std::chrono::milliseconds(10);
  plan.server_faults.push_back({/*server=*/2, /*after_requests=*/2,
                                rpc::ServerFate::kKilled});
  rpc::FaultInjector injector(plan);

  query::ServiceOptions faulty_options = clean_options;
  faulty_options.fault_injector = &injector;
  faulty_options.retry = tight_retry();
  query::QueryService service(*store_, faulty_options);

  std::uint64_t total_retries = 0;
  std::uint64_t total_redispatched = 0;
  bool use_count_only = true;
  for (const auto& [lo, hi] : intervals()) {
    const auto q = make_query(lo, hi);
    if (use_count_only) {
      auto want = baseline.get_num_hits(q);
      auto got = service.get_num_hits(q);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, *want) << "interval (" << lo << ", " << hi << ")";
    } else {
      auto want = baseline.get_selection(q);
      auto got = service.get_selection(q);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->num_hits, want->num_hits);
      EXPECT_EQ(got->positions, want->positions)
          << "interval (" << lo << ", " << hi << ")";
      // The data fetch must survive re-routing away from the dead server.
      std::vector<float> want_values(want->num_hits);
      std::vector<float> got_values(got->num_hits);
      ASSERT_TRUE(baseline
                      .get_data<float>(object_, *want,
                                       std::span<float>(want_values))
                      .ok());
      auto fetch = service.get_data<float>(object_, *got,
                                           std::span<float>(got_values));
      ASSERT_TRUE(fetch.ok()) << fetch.ToString();
      EXPECT_EQ(got_values, want_values);
      total_retries += service.last_stats().retries;
      total_redispatched += service.last_stats().redispatched_regions;
    }
    use_count_only = !use_count_only;
    total_retries += service.last_stats().retries;
    total_redispatched += service.last_stats().redispatched_regions;
  }
  // The killed server forces both retries and region redispatch.
  EXPECT_GT(total_retries, 0u);
  EXPECT_GT(total_redispatched, 0u);
  EXPECT_EQ(service.dead_servers(), (std::vector<ServerId>{2}));
  EXPECT_GT(injector.counters().dropped, 0u);
  EXPECT_EQ(injector.counters().servers_failed, 1u);
}

// Lossy-but-alive fleet: randomized drop/delay/duplicate/corrupt plans
// across several seeds never change a hit count.
TEST_F(ChaosTest, RandomizedLossPlansPreserveCounts) {
  query::ServiceOptions clean_options;
  clean_options.num_servers = 4;
  query::QueryService baseline(*store_, clean_options);
  std::vector<std::uint64_t> want;
  for (const auto& [lo, hi] : intervals()) {
    want.push_back(*baseline.get_num_hits(make_query(lo, hi)));
  }

  for (const std::uint64_t seed : {1ull, 99ull, 2026ull}) {
    rpc::FaultPlan plan;
    plan.seed = seed;
    plan.drop_rate = 0.15;
    plan.delay_rate = 0.15;
    plan.duplicate_rate = 0.10;
    plan.corrupt_rate = 0.10;
    plan.max_delay = std::chrono::milliseconds(8);
    rpc::FaultInjector injector(plan);
    query::ServiceOptions faulty_options = clean_options;
    faulty_options.fault_injector = &injector;
    faulty_options.retry = tight_retry();
    faulty_options.retry.max_attempts = 6;  // loss, no kills: always recover
    query::QueryService service(*store_, faulty_options);
    std::size_t i = 0;
    for (const auto& [lo, hi] : intervals()) {
      auto got = service.get_num_hits(make_query(lo, hi));
      ASSERT_TRUE(got.ok()) << "seed " << seed << ": "
                            << got.status().ToString();
      EXPECT_EQ(*got, want[i++]) << "seed " << seed;
    }
  }
}

// A stalled (wedged, never replying) server must degrade exactly like a
// killed one: correct answers, no hang.
TEST_F(ChaosTest, StalledServerDoesNotHangQueries) {
  query::ServiceOptions clean_options;
  clean_options.num_servers = 4;
  query::QueryService baseline(*store_, clean_options);

  rpc::FaultPlan plan;
  plan.server_faults.push_back({/*server=*/1, /*after_requests=*/1,
                                rpc::ServerFate::kStalled});
  rpc::FaultInjector injector(plan);
  query::ServiceOptions faulty_options = clean_options;
  faulty_options.fault_injector = &injector;
  faulty_options.retry = tight_retry();
  query::QueryService service(*store_, faulty_options);

  for (const auto& [lo, hi] : intervals()) {
    const auto q = make_query(lo, hi);
    auto want = baseline.get_selection(q);
    auto got = service.get_selection(q);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->positions, want->positions);
  }
  EXPECT_EQ(service.dead_servers(), (std::vector<ServerId>{1}));
}

// When every server is dead the service must fail fast with kUnavailable
// instead of hanging forever (the seed behaviour).
TEST_F(ChaosTest, AllServersDeadReturnsUnavailable) {
  rpc::FaultPlan plan;
  for (ServerId s = 0; s < 4; ++s) {
    plan.server_faults.push_back({s, /*after_requests=*/0,
                                  rpc::ServerFate::kKilled});
  }
  rpc::FaultInjector injector(plan);
  query::ServiceOptions options;
  options.num_servers = 4;
  options.fault_injector = &injector;
  options.retry = tight_retry();
  options.retry.attempt_timeout = std::chrono::milliseconds(50);
  options.retry.max_attempts = 2;
  query::QueryService service(*store_, options);

  auto result = service.get_num_hits(make_query(1.0, 9.0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.last_stats().dead_servers, 4u);

  // Later operations fail fast too — no RPC round trips are attempted.
  auto again = service.get_num_hits(make_query(4.0, 6.0));
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kUnavailable);
}

// A server that dies between the selection and the data fetch: get_data
// re-routes its partition to a survivor and still returns correct bytes.
TEST_F(ChaosTest, GetDataReroutesWhenOwnerDiesMidSession) {
  query::ServiceOptions clean_options;
  clean_options.num_servers = 4;
  query::QueryService baseline(*store_, clean_options);
  const auto q = make_query(2.0, 6.0);
  auto want = baseline.get_selection(q);
  ASSERT_TRUE(want.ok());
  std::vector<float> want_values(want->num_hits);
  ASSERT_TRUE(baseline
                  .get_data<float>(object_, *want,
                                   std::span<float>(want_values))
                  .ok());

  // Server 3 answers the eval, then dies before the data fetch.
  rpc::FaultPlan plan;
  plan.server_faults.push_back({/*server=*/3, /*after_requests=*/1,
                                rpc::ServerFate::kKilled});
  rpc::FaultInjector injector(plan);
  query::ServiceOptions faulty_options = clean_options;
  faulty_options.fault_injector = &injector;
  faulty_options.retry = tight_retry();
  query::QueryService service(*store_, faulty_options);

  auto got = service.get_selection(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->positions, want->positions);
  std::vector<float> got_values(got->num_hits);
  auto fetch =
      service.get_data<float>(object_, *got, std::span<float>(got_values));
  ASSERT_TRUE(fetch.ok()) << fetch.ToString();
  EXPECT_EQ(got_values, want_values);
  EXPECT_EQ(service.dead_servers(), (std::vector<ServerId>{3}));
  EXPECT_GT(service.last_stats().redispatched_regions, 0u);
}

// Regression: in degraded mode one surviving server contributes TWO
// sorted_extents entries — its own round-1 answer plus the dead identity it
// covered in round 2.  The replica fetch must key response buffers per
// entry, not per sender; per-sender keying let the second response clobber
// the first, corrupting fetched values (and reading past the buffer when
// the entries differ in size).
TEST_F(ChaosTest, SortedReplicaFetchSurvivesDuplicateSenderEntries) {
  obj::ImportOptions options;
  options.region_size_bytes = 4096;
  ASSERT_TRUE(sortrep::build_sorted_replica(*store_, object_, options).ok());

  query::ServiceOptions clean_options;
  clean_options.num_servers = 4;
  clean_options.strategy = server::Strategy::kSortedHistogram;
  query::QueryService baseline(*store_, clean_options);
  // Wide interval: every server identity owns part of the sorted range, so
  // the dead identity's extents are guaranteed non-empty.
  const auto q = make_query(1.0, 9.0);
  auto want = baseline.get_selection(q);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_GT(want->num_hits, 0u);
  ASSERT_FALSE(want->sorted_extents.empty());
  std::vector<float> want_values(want->num_hits);
  ASSERT_TRUE(baseline
                  .get_data<float>(object_, *want,
                                   std::span<float>(want_values),
                                   query::GetDataMode::kFromReplica)
                  .ok());

  // Server 2 never answers: its identity is re-dispatched onto a survivor
  // that already produced an extents entry of its own.
  rpc::FaultPlan plan;
  plan.server_faults.push_back({/*server=*/2, /*after_requests=*/0,
                                rpc::ServerFate::kKilled});
  rpc::FaultInjector injector(plan);
  query::ServiceOptions faulty_options = clean_options;
  faulty_options.fault_injector = &injector;
  faulty_options.retry = tight_retry();
  query::QueryService service(*store_, faulty_options);

  auto got = service.get_selection(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->num_hits, want->num_hits);
  std::vector<int> entries_per_sender(4, 0);
  for (const auto& [sender, extents] : got->sorted_extents) {
    ++entries_per_sender[sender];
  }
  EXPECT_EQ(entries_per_sender[2], 0);  // the dead server answered nothing
  bool some_sender_twice = false;
  for (const int n : entries_per_sender) some_sender_twice |= n > 1;
  EXPECT_TRUE(some_sender_twice)
      << "degraded eval no longer produces duplicate-sender entries; "
         "this regression test needs a new trigger";

  std::vector<float> got_values(got->num_hits);
  auto fetch = service.get_data<float>(object_, *got,
                                       std::span<float>(got_values),
                                       query::GetDataMode::kFromReplica);
  ASSERT_TRUE(fetch.ok()) << fetch.ToString();
  EXPECT_EQ(got_values, want_values);
}

// Trace/fault interaction: a traced query against a deployment where one
// of two servers is dead from the start still produces one coherent span
// tree — every retry attempt gets its own span under the same trace, the
// dead server contributes nothing, and the redispatched region share shows
// up under the survivor's spans.  The span-vs-OpStats reconciliation must
// hold in degraded mode too (per-round maxima sum identically both ways).
TEST_F(ChaosTest, TracedQuerySurvivesServerDeath) {
  rpc::FaultPlan plan;
  plan.server_faults.push_back({/*server=*/1, /*after_requests=*/0,
                                rpc::ServerFate::kKilled});
  rpc::FaultInjector injector(plan);
  query::ServiceOptions options;
  options.num_servers = 2;
  options.fault_injector = &injector;
  options.retry = tight_retry();
  query::QueryService service(*store_, options);

  auto nhits = service.get_num_hits(make_query(2.0, 6.0), {.trace = true});
  ASSERT_TRUE(nhits.ok()) << nhits.status().ToString();
  const query::OpStats stats = service.last_stats();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.dead_servers, 1u);
  EXPECT_GT(stats.redispatched_regions, 0u);

  const std::shared_ptr<const obs::Trace> trace = service.last_trace();
  ASSERT_NE(trace, nullptr);
  // Structurally valid; strict nesting is not required under faults (late
  // or retried server work may straddle the client's attempt windows).
  const Status valid =
      obs::validate_trace(*trace, {.require_nesting = false});
  EXPECT_TRUE(valid.ok()) << valid.ToString();

  const auto count = [&](std::string_view name) {
    std::size_t n = 0;
    for (const obs::Span& span : trace->spans) {
      if (span.name == name) ++n;
    }
    return n;
  };
  // One query, two gather rounds (broadcast + redispatch), one span per
  // retry attempt: the dead server burns every attempt of round one, the
  // redispatch round succeeds on the first.
  EXPECT_EQ(count("client.query"), 1u);
  EXPECT_EQ(count("rpc.gather"), 2u);
  EXPECT_EQ(count("rpc.attempt"),
            static_cast<std::size_t>(tight_retry().max_attempts) + 1);
  // Round one sends to both servers; the redispatch round targets one
  // survivor.  Requests keep one span across attempts.
  EXPECT_EQ(count("rpc.request"), 3u);

  // All spans hang off the single client root — retries and redispatch
  // link into the same trace, never a parallel tree.
  std::size_t roots = 0;
  for (const obs::Span& span : trace->spans) roots += span.parent == 0;
  EXPECT_EQ(roots, 1u);

  // The dead server never ran: every server-side span carries the
  // survivor's actor, and the survivor covered the whole region space
  // (its own share plus the redispatched share).
  double regions_reported = 0.0;
  std::size_t region_spans = 0;
  for (const obs::Span& span : trace->spans) {
    if (span.name == "server.eval" || span.name == "server.handle" ||
        span.name == "server.queue" || span.name == "region") {
      EXPECT_EQ(span.actor, "server0") << span.name;
    }
    if (span.name == "server.eval") {
      regions_reported += span.arg("regions_evaluated");
    }
    if (span.name == "region") ++region_spans;
  }
  EXPECT_EQ(count("server.eval"), 2u);  // own round + redispatch round
  EXPECT_EQ(static_cast<double>(region_spans), regions_reported);
  EXPECT_EQ(regions_reported, 40.0);  // all 40 regions, nothing lost

  const Status reconciled = testing::check_trace_stats(*trace, stats);
  EXPECT_TRUE(reconciled.ok()) << reconciled.ToString();
}

// ---------------------------------------------------------------------------
// Write-during-fault battery: every write is applied exactly once or
// cleanly rejected — duplicated, dropped or rerouted transfers never
// double-apply and never leave a torn index (queries stay exact through
// scan fallback on whatever went stale).
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, WritesUnderLossyNetworkApplyExactlyOnce) {
  ASSERT_TRUE(store_->build_bitmap_index(object_).ok());

  rpc::FaultPlan plan;
  plan.seed = 1234;
  plan.drop_rate = 0.05;
  plan.delay_rate = 0.10;
  plan.duplicate_rate = 0.20;  // the interesting case: replayed transfers
  plan.min_delay = std::chrono::milliseconds(1);
  plan.max_delay = std::chrono::milliseconds(5);
  rpc::FaultInjector injector(plan);

  query::ServiceOptions options;
  options.num_servers = 4;
  options.fault_injector = &injector;
  options.retry = tight_retry();
  query::QueryService service(*store_, options);

  Rng rng(0xD00D);
  std::uint64_t applied = 0;
  for (int i = 0; i < 20; ++i) {
    // Mix of single-region and region-straddling overwrites.
    const std::uint64_t count = (i % 3 == 0) ? 1500 : 7;
    const std::uint64_t offset = static_cast<std::uint64_t>(
        rng.uniform(0.0, static_cast<double>(data_.size() - count)));
    std::vector<float> repl(count);
    for (auto& v : repl) v = static_cast<float>(rng.uniform(0.0, 10.0));
    auto report = service.overwrite(
        object_, Extent1D{offset, count},
        {reinterpret_cast<const std::uint8_t*>(repl.data()),
         repl.size() * sizeof(float)});
    ASSERT_TRUE(report.ok()) << "write " << i << ": "
                             << report.status().ToString();
    // report->duplicate may legitimately be true here: when the wire
    // duplicates a transfer and the first response is lost, the client
    // sees the replay's duplicate-ack.  Either way the write landed
    // exactly once — the epoch check below is the real invariant.
    std::copy(repl.begin(), repl.end(),
              data_.begin() + static_cast<std::ptrdiff_t>(offset));
    ++applied;
    // Exactly-once: the epoch advances by one per applied write, no
    // matter how many duplicated transfers the wire delivered.
    EXPECT_EQ(report->data_epoch, 1 + applied) << "write " << i;
  }
  const auto* desc = std::move(store_->get(object_)).value();
  EXPECT_EQ(desc->data_epoch, 1 + applied);

  // No torn state: a clean service over the same store answers every
  // query exactly (stale regions fall back to scan; fresh ones use their
  // base+delta index).
  query::ServiceOptions clean_options;
  clean_options.num_servers = 4;
  for (const auto strategy :
       {server::Strategy::kFullScan, server::Strategy::kHistogramIndex,
        server::Strategy::kAdaptive}) {
    clean_options.strategy = strategy;
    query::QueryService clean(*store_, clean_options);
    for (const auto& [lo, hi] : intervals()) {
      std::vector<std::uint64_t> want;
      for (std::uint64_t p = 0; p < data_.size(); ++p) {
        if (data_[p] > lo && data_[p] < hi) want.push_back(p);
      }
      auto got = clean.get_selection(make_query(lo, hi));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->positions, want)
          << "strategy " << static_cast<int>(strategy) << " interval ("
          << lo << ", " << hi << ")";
    }
  }
}

TEST_F(ChaosTest, WriteReroutesWhenOwnerDiesAndAppliesOnce) {
  ASSERT_TRUE(store_->build_bitmap_index(object_).ok());

  // Kill server 1 before it handles anything; a write anchored in its
  // region share must reroute to a survivor and apply exactly once.
  rpc::FaultPlan plan;
  plan.server_faults.push_back({/*server=*/1, /*after_requests=*/0,
                                rpc::ServerFate::kKilled});
  rpc::FaultInjector injector(plan);
  query::ServiceOptions options;
  options.num_servers = 2;
  options.fault_injector = &injector;
  options.retry = tight_retry();
  query::QueryService service(*store_, options);

  // 40 regions over 2 servers: region 21 belongs to server 1.
  const std::uint64_t offset = 21 * 1024 + 5;
  const std::vector<float> repl{3.25f, 7.75f};
  auto report = service.overwrite(
      object_, Extent1D{offset, 2},
      {reinterpret_cast<const std::uint8_t*>(repl.data()),
       repl.size() * sizeof(float)});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->duplicate);
  EXPECT_EQ(report->data_epoch, 2u);
  data_[offset] = repl[0];
  data_[offset + 1] = repl[1];

  const query::OpStats stats = service.last_stats();
  EXPECT_EQ(stats.dead_servers, 1u);
  EXPECT_GT(stats.redispatched_regions, 0u);

  // The value landed exactly once and queries see it.
  auto got = service.get_selection(make_query(7.74, 7.76));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  std::vector<std::uint64_t> want;
  for (std::uint64_t p = 0; p < data_.size(); ++p) {
    if (data_[p] > 7.74 && data_[p] < 7.76) want.push_back(p);
  }
  EXPECT_EQ(got->positions, want);
}

TEST_F(ChaosTest, AllServersDeadWriteIsCleanlyRejected) {
  rpc::FaultPlan plan;
  for (std::uint32_t s = 0; s < 3; ++s) {
    plan.server_faults.push_back({s, /*after_requests=*/0,
                                  rpc::ServerFate::kKilled});
  }
  rpc::FaultInjector injector(plan);
  query::ServiceOptions options;
  options.num_servers = 3;
  options.fault_injector = &injector;
  options.retry = tight_retry();
  query::QueryService service(*store_, options);

  const std::vector<float> repl{1.5f};
  auto report = service.overwrite(
      object_, Extent1D{100, 1},
      {reinterpret_cast<const std::uint8_t*>(repl.data()),
       repl.size() * sizeof(float)});
  ASSERT_FALSE(report.ok());

  // Cleanly rejected: nothing was applied, the store is untouched.
  const auto* desc = std::move(store_->get(object_)).value();
  EXPECT_EQ(desc->data_epoch, 1u);
  float got = 0.0f;
  const pfs::ReadContext ctx{};
  ASSERT_TRUE(store_
                  ->read_elements(*desc, Extent1D{100, 1},
                                  {reinterpret_cast<std::uint8_t*>(&got),
                                   sizeof(got)},
                                  ctx)
                  .ok());
  EXPECT_EQ(got, data_[100]);
}

// ---------------------------------------------------------------------------
// Join-under-fault battery: the exchange shuffle must deliver every batch
// exactly once through drops/duplicates/corruption (the checksum turns
// corruption into loss, acks turn loss into retransmits, seq dedup turns
// duplication into a no-op), and a server dying mid-shuffle must end in
// either the exact fault-free pair list (re-planned epoch) or a clean
// kUnavailable — never a partial or duplicated result.
// ---------------------------------------------------------------------------

class JoinChaosTest : public ChaosTest {
 protected:
  void SetUp() override {
    ChaosTest::SetUp();
    workloads::BossJoinConfig config;
    config.num_a = 600;
    config.num_b = 800;
    config.region_size_bytes = 1024;
    pair_ = std::move(workloads::import_boss_join_pair(*store_, config))
                .value();
  }

  [[nodiscard]] query::JoinSpec join_spec() const {
    query::JoinSpec spec;
    spec.left = pair_.ra_a;
    spec.right = pair_.ra_b;
    spec.epsilon = 0.125;
    spec.zone_height = 0.5;
    return spec;
  }

  static void expect_same_pairs(const query::JoinResult& got,
                                const query::JoinResult& want,
                                std::string_view label) {
    ASSERT_EQ(got.pairs.size(), want.pairs.size()) << label;
    for (std::size_t i = 0; i < want.pairs.size(); ++i) {
      ASSERT_EQ(got.pairs[i].left_pos, want.pairs[i].left_pos)
          << label << " pair " << i;
      ASSERT_EQ(got.pairs[i].right_pos, want.pairs[i].right_pos)
          << label << " pair " << i;
    }
    EXPECT_EQ(got.num_zones, want.num_zones) << label;
  }

  workloads::BossJoinPair pair_;
};

// Lossy-but-alive fleet: dropped shuffle frames are retransmitted,
// duplicated ones deduped by (producer, seq), corrupted ones rejected by
// the envelope checksum and retransmitted — the pair list is bit-identical
// to the fault-free run for BOTH strategies, across several seeds.
TEST_F(JoinChaosTest, LossyShuffleDeliversExactlyOnce) {
  query::ServiceOptions clean_options;
  clean_options.num_servers = 4;
  query::QueryService baseline(*store_, clean_options);
  const auto want = baseline.join(join_spec());
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_GT(want->pairs.size(), 0u);

  for (const std::uint64_t seed : {7ull, 1234ull}) {
    rpc::FaultPlan plan;
    plan.seed = seed;
    plan.drop_rate = 0.10;
    plan.delay_rate = 0.10;
    plan.duplicate_rate = 0.15;  // the interesting case: replayed batches
    plan.corrupt_rate = 0.05;
    plan.min_delay = std::chrono::milliseconds(1);
    plan.max_delay = std::chrono::milliseconds(5);
    rpc::FaultInjector injector(plan);
    query::ServiceOptions faulty_options = clean_options;
    faulty_options.fault_injector = &injector;
    faulty_options.retry = tight_retry();
    query::QueryService service(*store_, faulty_options);

    for (const auto strategy : {server::JoinStrategy::kZoneShuffle,
                                server::JoinStrategy::kBroadcast}) {
      auto spec = join_spec();
      spec.strategy = strategy;
      auto got = service.join(spec);
      ASSERT_TRUE(got.ok())
          << "seed " << seed << " strategy "
          << server::join_strategy_name(strategy) << ": "
          << got.status().ToString();
      expect_same_pairs(*got, *want,
                        server::join_strategy_name(strategy));
    }
    EXPECT_GT(injector.counters().dropped + injector.counters().corrupted,
              0u)
        << "seed " << seed << ": plan injected nothing — tighten rates";
  }
}

// A server killed mid-join (it answers a couple of requests, then dies —
// possibly between producing candidates and finishing its shuffle): the
// client must converge to the exact fault-free answer via a re-planned
// epoch, or fail cleanly with kUnavailable.  Never a wrong pair list.
TEST_F(JoinChaosTest, ServerDeathMidShuffleDegradesOrFailsClean) {
  query::ServiceOptions clean_options;
  clean_options.num_servers = 4;
  query::QueryService baseline(*store_, clean_options);
  const auto want = baseline.join(join_spec());
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  for (const std::uint32_t after : {0u, 1u, 2u}) {
    for (const auto strategy : {server::JoinStrategy::kZoneShuffle,
                                server::JoinStrategy::kBroadcast}) {
      rpc::FaultPlan plan;
      plan.server_faults.push_back(
          {/*server=*/2, /*after_requests=*/after, rpc::ServerFate::kKilled});
      rpc::FaultInjector injector(plan);
      query::ServiceOptions faulty_options = clean_options;
      faulty_options.fault_injector = &injector;
      faulty_options.retry = tight_retry();
      // The shuffle deadline must sit INSIDE the client's per-request retry
      // budget (~400 ms under tight_retry): survivors wedged shipping to
      // the dead server then fail their epoch with kUnavailable instead of
      // looking dead themselves and collapsing the whole fleet.
      faulty_options.join_shuffle_deadline_ms = 50;
      query::QueryService service(*store_, faulty_options);

      auto spec = join_spec();
      spec.strategy = strategy;
      auto got = service.join(spec);
      const std::string label =
          std::string(server::join_strategy_name(strategy)) +
          " after_requests=" + std::to_string(after);
      if (got.ok()) {
        expect_same_pairs(*got, *want, label);
      } else {
        EXPECT_EQ(got.status().code(), StatusCode::kUnavailable) << label;
      }
      // Whether this attempt degraded or failed, retries on the same
      // service must keep producing the exact answer.  Depending on
      // `after`, server 2 may die only after answering the joins above, so
      // keep joining until the service has actually observed the death.
      for (int retries = 0; retries < 3; ++retries) {
        auto again = service.join(spec);
        ASSERT_TRUE(again.ok())
            << label << " retry " << retries << ": "
            << again.status().ToString();
        expect_same_pairs(*again, *want, label + " (retry)");
        if (!service.dead_servers().empty()) break;
      }
      EXPECT_EQ(service.dead_servers(), (std::vector<ServerId>{2})) << label;
    }
  }
}

// Every server dead: join must fail fast with kUnavailable, not hang on
// the shuffle deadline forever.
TEST_F(JoinChaosTest, AllServersDeadJoinReturnsUnavailable) {
  rpc::FaultPlan plan;
  for (ServerId s = 0; s < 4; ++s) {
    plan.server_faults.push_back({s, /*after_requests=*/0,
                                  rpc::ServerFate::kKilled});
  }
  rpc::FaultInjector injector(plan);
  query::ServiceOptions options;
  options.num_servers = 4;
  options.fault_injector = &injector;
  options.retry = tight_retry();
  options.retry.attempt_timeout = std::chrono::milliseconds(50);
  options.retry.max_attempts = 2;
  query::QueryService service(*store_, options);

  auto result = service.join(join_spec());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

// ------------------------------------------------- distributed metadata

/// Metadata chaos helpers: a small BOSS metadata catalog (12 cells) and
/// the three condition shapes the sharded trie routes differently (exact
/// lane, numeric-range lane, prefix lane).
std::vector<meta::MetaCondition> meta_exact() {
  return {{"PLATE", QueryOp::kEQ, std::int64_t{3505},
           meta::MetaMatchKind::kValue}};
}
std::vector<meta::MetaCondition> meta_range() {
  return {{"PLATE", QueryOp::kGTE, std::int64_t{3502},
           meta::MetaMatchKind::kValue},
          {"PLATE", QueryOp::kLTE, std::int64_t{3504},
           meta::MetaMatchKind::kValue}};
}
std::vector<meta::MetaCondition> meta_prefix() {
  return {{"RUN", QueryOp::kEQ, std::string("r5_"),
           meta::MetaMatchKind::kPrefix}};
}

// Lossy-but-alive fleet: metadata queries retried through drops,
// duplicates and corrupted payloads must return exactly the oracle's
// posting lists — corruption is detected by checksum and retried, never
// silently decoded into a truncated answer.
TEST_F(ChaosTest, MetadataQueriesUnderLossyNetworkStayExact) {
  meta::MetaStore meta;
  workloads::BossMetaConfig cfg;
  cfg.num_objects = 3000;
  cfg.objects_per_cell = 250;
  ASSERT_TRUE(workloads::generate_boss_metadata(meta, cfg).ok());

  std::uint64_t injected = 0;
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    rpc::FaultPlan plan;
    plan.seed = seed;
    plan.drop_rate = 0.08;
    plan.duplicate_rate = 0.08;
    plan.corrupt_rate = 0.08;
    rpc::FaultInjector injector(plan);

    query::ServiceOptions options;
    options.num_servers = 4;
    options.metadata = &meta;
    options.meta_vnodes = 32;
    options.fault_injector = &injector;
    options.retry = tight_retry();
    query::QueryService service(*store_, options);

    for (const auto& conditions : {meta_exact(), meta_range(),
                                   meta_prefix()}) {
      const std::vector<ObjectId> want = meta.query(conditions);
      ASSERT_FALSE(want.empty());
      auto got = service.meta_query(conditions);
      ASSERT_TRUE(got.ok()) << "seed " << seed << ": "
                            << got.status().ToString();
      EXPECT_EQ(*got, want) << "seed " << seed;
    }
    injected += injector.counters().dropped + injector.counters().corrupted +
                injector.counters().duplicated;
  }
  // Across the three seeds the plans must actually have injected faults —
  // otherwise the "stays exact" half of the property proved nothing.
  EXPECT_GT(injected, 0u);
}

// One replica of every vnode dies mid-session (replicas=2): each metadata
// query either matches the oracle exactly (served by the surviving
// replica) or fails with a clean kUnavailable/kOverloaded — NEVER a
// silently truncated posting list.  Once the death is observed the
// service must settle back to exact answers, including through a
// replicated update.
TEST_F(ChaosTest, MetadataQueriesSurviveServerDeathOrFailClean) {
  meta::MetaStore meta;
  workloads::BossMetaConfig cfg;
  cfg.num_objects = 3000;
  cfg.objects_per_cell = 250;
  ASSERT_TRUE(workloads::generate_boss_metadata(meta, cfg).ok());

  rpc::FaultPlan plan;
  plan.seed = 5;
  plan.server_faults.push_back({/*server=*/1, /*after_requests=*/3,
                                rpc::ServerFate::kKilled});
  rpc::FaultInjector injector(plan);

  query::ServiceOptions options;
  options.num_servers = 4;
  options.metadata = &meta;
  options.meta_vnodes = 32;
  options.meta_replicas = 2;
  options.fault_injector = &injector;
  options.retry = tight_retry();
  query::QueryService service(*store_, options);

  const auto conditions = {meta_exact(), meta_range(), meta_prefix()};
  for (int round = 0; round < 4; ++round) {
    for (const auto& c : conditions) {
      const std::vector<ObjectId> want = meta.query(c);
      auto got = service.meta_query(c);
      if (got.ok()) {
        EXPECT_EQ(*got, want) << "round " << round;
      } else {
        EXPECT_TRUE(got.status().code() == StatusCode::kUnavailable ||
                    got.status().code() == StatusCode::kOverloaded)
            << got.status().ToString();
      }
    }
    if (!service.dead_servers().empty()) break;
  }
  EXPECT_EQ(service.dead_servers(), (std::vector<ServerId>{1}));

  // With the death observed, the surviving replicas answer exactly — and
  // keep doing so through a replicated attribute update.
  ASSERT_TRUE(
      service.meta_set_attribute(/*object=*/1, "RUN", std::string("r0_X"))
          .ok());
  for (const auto& c : conditions) {
    auto got = service.meta_query(c);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, meta.query(c));
  }
}

// Every server dead: metadata queries fail fast with kUnavailable (all
// replicas of some vnode are gone), not a hang and not an empty answer.
TEST_F(ChaosTest, MetadataAllServersDeadReturnsUnavailable) {
  meta::MetaStore meta;
  workloads::BossMetaConfig cfg;
  cfg.num_objects = 500;
  cfg.objects_per_cell = 250;
  ASSERT_TRUE(workloads::generate_boss_metadata(meta, cfg).ok());

  rpc::FaultPlan plan;
  for (ServerId s = 0; s < 4; ++s) {
    plan.server_faults.push_back({s, /*after_requests=*/0,
                                  rpc::ServerFate::kKilled});
  }
  rpc::FaultInjector injector(plan);
  query::ServiceOptions options;
  options.num_servers = 4;
  options.metadata = &meta;
  options.fault_injector = &injector;
  options.retry = tight_retry();
  options.retry.attempt_timeout = std::chrono::milliseconds(50);
  options.retry.max_attempts = 2;
  query::QueryService service(*store_, options);

  auto result = service.meta_query(meta_exact());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace pdc
