// Robustness and property tests across modules: serialization fuzzing
// (truncation/corruption must fail cleanly, never crash or hang), storage
// failure injection, precision-grid properties, metadata persistence, and
// storage-tier cost behaviour.
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "bitmap/binned_index.h"
#include "common/rng.h"
#include "histogram/histogram.h"
#include "metadata/meta_store.h"
#include "query/service.h"
#include "server/wire.h"
#include "sortrep/sorted_replica.h"

namespace pdc {
namespace {

// -------------------------------------------------- serialization fuzzing

/// Any prefix/bit-flipped variant of a valid wire blob must deserialize to
/// either success or a clean error — parameterized over truncation points.
class WireFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzz, TruncatedEvalRequestNeverCrashes) {
  server::EvalRequest request;
  request.strategy = server::Strategy::kHistogram;
  request.need_locations = true;
  for (int t = 0; t < 3; ++t) {
    server::AndTerm term;
    for (int c = 0; c < 4; ++c) {
      term.conjuncts.push_back(
          {static_cast<ObjectId>(c + 1),
           ValueInterval::from_op(QueryOp::kGT, c * 1.5)});
    }
    request.terms.push_back(term);
  }
  const auto bytes = request.serialize();
  const std::size_t cut =
      bytes.size() * static_cast<std::size_t>(GetParam()) / 16;
  std::vector<std::uint8_t> truncated(bytes.begin(),
                                      bytes.begin() + static_cast<long>(cut));
  SerialReader reader(truncated);
  auto result = server::EvalRequest::Deserialize(reader);
  if (cut < bytes.size()) {
    // Shortened input can never parse to a full request.
    EXPECT_FALSE(result.ok());
  }
}

TEST_P(WireFuzz, BitFlippedResponseFailsCleanly) {
  server::EvalResponse response;
  response.num_hits = 1234;
  response.has_positions = true;
  response.positions = {5, 6, 7, 100, 200};
  response.sorted_extents = {{0, 3}};
  auto bytes = response.serialize();
  // Flip one byte at a parameterized offset.
  const std::size_t at =
      (bytes.size() * static_cast<std::size_t>(GetParam())) / 16;
  if (at < bytes.size()) bytes[at] ^= 0xFF;
  SerialReader reader(bytes);
  auto result = server::EvalResponse::Deserialize(reader);
  // Either parses (flip hit payload bytes) or errors — but never crashes;
  // when it parses, allocation is bounded by the input: every container
  // was length-checked against the remaining bytes before resizing.
  if (result.ok()) {
    EXPECT_LE(result->positions.size(), bytes.size() / sizeof(std::uint64_t));
    EXPECT_LE(result->sorted_extents.size(), bytes.size() / sizeof(Extent1D));
  }
}

INSTANTIATE_TEST_SUITE_P(Cuts, WireFuzz, ::testing::Range(0, 16));

// A hostile length prefix (far beyond the buffer, or crafted so that
// pos + n*sizeof(T) wraps around) must fail with kCorruption *before* any
// allocation — the reader clamps the count to the remaining bytes.
TEST(SerialFuzz, HostileLengthPrefixesFailWithoutAllocating) {
  for (const std::uint64_t evil :
       {std::uint64_t{1} << 60, ~std::uint64_t{0}, ~std::uint64_t{0} / 8,
        std::uint64_t{0xFFFFFFFF00000000ull}}) {
    SerialWriter w;
    w.put<std::uint64_t>(evil);
    w.put_raw(std::vector<std::uint8_t>(16, 0xAB));  // some trailing bytes
    const auto blob = w.take();

    std::vector<std::uint64_t> v{1, 2, 3};
    SerialReader r1(blob);
    EXPECT_EQ(r1.get_vector(v).code(), StatusCode::kCorruption) << evil;
    EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 2, 3}));  // untouched

    std::string s = "keep";
    SerialReader r2(blob);
    EXPECT_EQ(r2.get_string(s).code(), StatusCode::kCorruption) << evil;
    EXPECT_EQ(s, "keep");

    std::span<const std::uint8_t> view;
    SerialReader r3(blob);
    EXPECT_EQ(r3.get_bytes_view(view).code(), StatusCode::kCorruption) << evil;
  }
}

// Length prefix exactly at / one past the boundary: the largest admissible
// count parses, one more is corruption.
TEST(SerialFuzz, LengthPrefixBoundaryIsExact) {
  SerialWriter w;
  w.put<std::uint64_t>(2);  // two u64 elements = 16 payload bytes
  w.put<std::uint64_t>(7);
  w.put<std::uint64_t>(8);
  const auto good = w.take();
  std::vector<std::uint64_t> v;
  SerialReader r(good);
  ASSERT_TRUE(r.get_vector(v).ok());
  EXPECT_EQ(v, (std::vector<std::uint64_t>{7, 8}));
  EXPECT_TRUE(r.exhausted());

  auto bad = good;
  bad[0] = 3;  // claims one element more than the payload holds
  std::vector<std::uint64_t> u;
  SerialReader rb(bad);
  EXPECT_EQ(rb.get_vector(u).code(), StatusCode::kCorruption);
  EXPECT_TRUE(u.empty());
}

TEST(SerialFuzz, RandomBytesNeverParseAsHistogramCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.bounded(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.bounded(256));
    SerialReader r1(junk);
    (void)hist::MergeableHistogram::Deserialize(r1);
    SerialReader r2(junk);
    (void)bitmap::BinnedBitmapIndex::Deserialize(r2);
    SerialReader r3(junk);
    (void)bitmap::PartitionedIndexView::ParseHeader(junk);
  }
  SUCCEED();  // reaching here without UB/crash is the assertion
}

// ------------------------------------------------- precision grid properties

TEST(PrecisionGrid, CoversRangeAndIsSorted) {
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {0.43, 4.26}, {0.011, 1.99}, {1.0, 9.99}, {0.5, 0.51}}) {
    const auto grid = bitmap::detail::precision_grid(lo, hi, 2, 2048);
    ASSERT_GE(grid.size(), 2u) << lo << " " << hi;
    EXPECT_LE(grid.front(), lo);
    EXPECT_GE(grid.back(), hi);
    for (std::size_t i = 1; i < grid.size(); ++i) {
      EXPECT_GT(grid[i], grid[i - 1]);
    }
  }
}

TEST(PrecisionGrid, EdgesMatchDecimalLiterals) {
  const auto grid = bitmap::detail::precision_grid(0.5, 5.0, 2, 2048);
  // Two-significant-digit constants a user would type must be exact edges.
  for (const double literal : {0.73, 0.99, 1.3, 2.1, 2.8, 3.5, 4.9}) {
    EXPECT_TRUE(std::find(grid.begin(), grid.end(), literal) != grid.end())
        << literal;
  }
}

TEST(PrecisionGrid, TooFineReturnsEmpty) {
  EXPECT_TRUE(bitmap::detail::precision_grid(1e-9, 1e9, 3, 64).empty());
}

TEST(PrecisionGrid, ThinEdgesKeepsEndsAndBound) {
  std::vector<double> edges;
  for (int i = 0; i < 1000; ++i) edges.push_back(i);
  const auto thinned = bitmap::detail::thin_edges(edges, 100);
  EXPECT_LE(thinned.size(), 102u);
  EXPECT_EQ(thinned.front(), 0.0);
  EXPECT_EQ(thinned.back(), 999.0);
}

TEST(SnapToPrecision, RoundsToSignificantDigits) {
  EXPECT_DOUBLE_EQ(bitmap::snap_to_precision(3.47, 2), 3.5);
  EXPECT_DOUBLE_EQ(bitmap::snap_to_precision(0.0347, 2), 0.035);
  EXPECT_DOUBLE_EQ(bitmap::snap_to_precision(123.4, 2), 120.0);
  EXPECT_DOUBLE_EQ(bitmap::snap_to_precision(2.1, 2), 2.1);
  EXPECT_DOUBLE_EQ(bitmap::snap_to_precision(0.0, 2), 0.0);
  EXPECT_DOUBLE_EQ(bitmap::snap_to_precision(-3.47, 2), -3.5);
}

// --------------------------------------------------------- aligned queries

TEST(BinnedIndexAlignment, TwoDigitConstantsNeedNoCandidates) {
  // The FastBit precision=2 guarantee: range queries with 2-digit
  // constants resolve from bitmaps alone on positive data.
  Rng rng(5);
  std::vector<float> data(50000);
  for (auto& v : data) {
    v = static_cast<float>(0.5 + rng.exponential(1.0));
  }
  const auto idx =
      bitmap::BinnedBitmapIndex::Build<float>(std::span<const float>(data));
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {1.2, 1.3}, {2.1, 2.2}, {0.9, 1.1}}) {
    const auto q = ValueInterval::from_op(QueryOp::kGT, lo)
                       .intersect(ValueInterval::from_op(QueryOp::kLT, hi));
    const auto probe = idx.probe(q);
    EXPECT_TRUE(probe.candidates.empty()) << lo << ".." << hi;
    // And the definite set equals the brute-force answer (float-equality
    // at a decimal edge is measure-zero for this generator).
    std::size_t truth = 0;
    for (const float v : data) truth += q.contains(v);
    EXPECT_EQ(probe.definite.size(), truth);
  }
}

// ------------------------------------------------------ failure injection

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/robust_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);
    const ObjectId container =
        std::move(store_->create_container("c")).value();
    Rng rng(1);
    data_.resize(20000);
    for (auto& v : data_) v = static_cast<float>(rng.uniform(0.0, 10.0));
    obj::ImportOptions options;
    options.region_size_bytes = 8192;
    object_ = std::move(store_->import_object<float>(
                            container, "v", std::span<const float>(data_),
                            options))
                  .value();
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  std::vector<float> data_;
  ObjectId object_ = kInvalidObjectId;
};

// Regression test: OpStats per-stage maxima must COVER redispatched work.
// Degraded rounds run sequentially — round N+1 is dispatched only after
// round N's responses arrive — so the modeled critical-path server time is
// the SUM of each round's critical server, not a global max over all
// responses.  The old code took the global max, which under-reported the
// degraded elapsed time by roughly the dead server's share.
TEST_F(FailureInjectionTest, DegradedStageMaximaCoverRedispatchedWork) {
  const auto q = query::q_and(query::create(object_, QueryOp::kGT, 2.0),
                              query::create(object_, QueryOp::kLT, 8.0));
  query::ServiceOptions options;
  options.num_servers = 2;
  options.strategy = server::Strategy::kFullScan;
  query::QueryService baseline(*store_, options);
  auto want = baseline.get_num_hits(q);
  ASSERT_TRUE(want.ok());
  const query::OpStats clean = baseline.last_stats();

  rpc::FaultPlan plan;
  plan.server_faults.push_back({/*server=*/1, /*after_requests=*/0,
                                rpc::ServerFate::kKilled});
  rpc::FaultInjector injector(plan);
  query::ServiceOptions faulty = options;
  faulty.fault_injector = &injector;
  faulty.retry.attempt_timeout = std::chrono::milliseconds(100);
  faulty.retry.max_attempts = 3;
  faulty.retry.backoff_base = std::chrono::milliseconds(2);
  faulty.retry.backoff_cap = std::chrono::milliseconds(20);
  query::QueryService degraded_service(*store_, faulty);
  auto got = degraded_service.get_num_hits(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *want);
  const query::OpStats degraded = degraded_service.last_stats();
  ASSERT_GT(degraded.redispatched_regions, 0u);

  // The survivor scanned its own half in round one and the dead server's
  // half in the redispatch round; both rounds must land in the maxima.
  // (The global-max bug reported ~clean.max_server_seconds here.)
  EXPECT_GT(degraded.max_server_seconds, clean.max_server_seconds * 1.5);
  EXPECT_GT(degraded.max_server_scan_seconds,
            clean.max_server_scan_seconds * 1.5);
  // Consistency of the split: io + cpu composes the critical-path total.
  EXPECT_NEAR(
      degraded.max_server_io_seconds + degraded.max_server_cpu_seconds,
      degraded.max_server_seconds, 1e-12);
  // And the end-to-end model includes the summed rounds.
  EXPECT_GE(degraded.sim_elapsed_seconds, degraded.max_server_seconds);
}

TEST_F(FailureInjectionTest, MissingDataFileSurfacesIoError) {
  auto desc = store_->get(object_);
  ASSERT_TRUE(desc.ok());
  ASSERT_TRUE(cluster_->remove((*desc)->data_file).ok());
  query::ServiceOptions options;
  options.num_servers = 2;
  query::QueryService service(*store_, options);
  auto result =
      service.get_num_hits(query::create(object_, QueryOp::kGT, 5.0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(FailureInjectionTest, IndexStrategyWithoutIndexFailsGracefully) {
  query::ServiceOptions options;
  options.num_servers = 2;
  options.strategy = server::Strategy::kHistogramIndex;
  query::QueryService service(*store_, options);
  auto result =
      service.get_num_hits(query::create(object_, QueryOp::kGT, 5.0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(FailureInjectionTest, CorruptIndexHeaderSurfacesCorruption) {
  ASSERT_TRUE(store_->build_bitmap_index(object_).ok());
  // Corrupt the in-metadata header copy of region 0 (a torn checkpoint).
  auto desc = store_->get(object_);
  auto* mutable_region = const_cast<obj::RegionDescriptor*>(
      &(*desc)->regions[0]);
  ASSERT_GE(mutable_region->index_header.size(), 16u);
  mutable_region->index_header.resize(10);
  query::ServiceOptions options;
  options.num_servers = 1;
  options.strategy = server::Strategy::kHistogramIndex;
  query::QueryService service(*store_, options);
  auto result =
      service.get_num_hits(query::create(object_, QueryOp::kGT, 5.0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(FailureInjectionTest, TruncatedDataFileFailsNotHangs) {
  auto desc = store_->get(object_);
  ASSERT_TRUE(desc.ok());
  // Rewrite the object's backing file with half the bytes.
  std::vector<std::uint8_t> half(data_.size() * sizeof(float) / 2, 0);
  auto file = cluster_->create((*desc)->data_file, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->write(0, half).ok());
  query::ServiceOptions options;
  options.num_servers = 2;
  query::QueryService service(*store_, options);
  auto result =
      service.get_num_hits(query::create(object_, QueryOp::kGT, 5.0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------------------ storage tiers

TEST_F(FailureInjectionTest, FasterTiersReduceSimulatedCostOnly) {
  const auto q = query::q_and(query::create(object_, QueryOp::kGT, 4.0),
                              query::create(object_, QueryOp::kLT, 6.0));
  std::uint64_t hits_disk = 0;
  double disk_s = 0;
  double nvram_s = 0;
  double memory_s = 0;
  for (const auto tier :
       {obj::StorageTier::kDisk, obj::StorageTier::kNvram,
        obj::StorageTier::kMemory}) {
    ASSERT_TRUE(store_->set_object_tier(object_, tier).ok());
    query::ServiceOptions options;
    options.num_servers = 2;
    options.cache_capacity_bytes = 0;  // isolate storage cost
    query::QueryService service(*store_, options);
    auto hits = service.get_num_hits(q);
    ASSERT_TRUE(hits.ok());
    const double s = service.last_stats().max_server_seconds;
    switch (tier) {
      case obj::StorageTier::kDisk:
        hits_disk = *hits;
        disk_s = s;
        break;
      case obj::StorageTier::kNvram:
        EXPECT_EQ(*hits, hits_disk);
        nvram_s = s;
        break;
      default:
        EXPECT_EQ(*hits, hits_disk);
        memory_s = s;
        break;
    }
  }
  EXPECT_LT(nvram_s, disk_s);
  EXPECT_LT(memory_s, nvram_s);
}

TEST_F(FailureInjectionTest, TierValidation) {
  EXPECT_EQ(store_->set_region_tier(999, 0, obj::StorageTier::kNvram).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      store_->set_region_tier(object_, 9999, obj::StorageTier::kNvram).code(),
      StatusCode::kOutOfRange);
  ASSERT_TRUE(store_->set_region_tier(object_, 0, obj::StorageTier::kNvram)
                  .ok());
  auto desc = store_->get(object_);
  EXPECT_EQ((*desc)->regions[0].tier, obj::StorageTier::kNvram);
  EXPECT_EQ((*desc)->regions[1].tier, obj::StorageTier::kDisk);
}

// ------------------------------------------------------ metadata persistence

TEST(MetaPersistence, RoundTripThroughPfs) {
  const std::string root = ::testing::TempDir() + "/meta_persist";
  std::filesystem::remove_all(root);
  pfs::PfsConfig cfg;
  cfg.root_dir = root;
  auto cluster = std::move(pfs::PfsCluster::Create(cfg)).value();

  meta::MetaStore store;
  for (ObjectId id = 1; id <= 100; ++id) {
    store.set_attribute(id, "RADEG", 150.0 + id);
    store.set_attribute(id, "name", "obj" + std::to_string(id));
    store.set_attribute(id, "plate", static_cast<std::int64_t>(id * 3));
  }
  ASSERT_TRUE(store.persist_to(*cluster, "meta.ckpt").ok());

  meta::MetaStore restored;
  ASSERT_TRUE(restored.load_from(*cluster, "meta.ckpt").ok());
  EXPECT_EQ(restored.num_objects(), 100u);
  // Values and indexes both survive.
  auto radeg = restored.get_attribute(42, "RADEG");
  ASSERT_TRUE(radeg.has_value());
  EXPECT_DOUBLE_EQ(std::get<double>(*radeg), 192.0);
  EXPECT_EQ(restored.query_tag("RADEG", 192.0), (std::vector<ObjectId>{42}));
  EXPECT_EQ(restored.query_tag("name", std::string("obj7")),
            (std::vector<ObjectId>{7}));
  const std::vector<meta::MetaCondition> range{
      {"plate", QueryOp::kLTE, std::int64_t{9}}};
  EXPECT_EQ(restored.query(range), (std::vector<ObjectId>{1, 2, 3}));

  // Loading into a non-empty store is rejected.
  EXPECT_EQ(restored.load_from(*cluster, "meta.ckpt").code(),
            StatusCode::kFailedPrecondition);
  // Missing checkpoint is NotFound.
  meta::MetaStore fresh;
  EXPECT_EQ(fresh.load_from(*cluster, "absent.ckpt").code(),
            StatusCode::kNotFound);
  std::filesystem::remove_all(root);
}

TEST(MetaPersistence, CorruptCheckpointRejected) {
  std::vector<std::uint8_t> junk(50, 0xC7);
  SerialReader r(junk);
  meta::MetaStore store;
  EXPECT_FALSE(store.load(r).ok());
}

}  // namespace
}  // namespace pdc
