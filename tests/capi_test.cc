// Tests for the paper-faithful C-style API shim (Fig. 1 entry points).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <vector>

#include "common/rng.h"
#include "query/pdc_capi.h"

namespace pdc::capi {
namespace {

class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/capi_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);
    const ObjectId container =
        std::move(store_->create_container("c")).value();

    Rng rng(3);
    data_.resize(30000);
    for (auto& v : data_) v = static_cast<float>(rng.uniform(0.0, 100.0));
    obj::ImportOptions options;
    options.region_size_bytes = 8192;
    object_ = std::move(store_->import_object<float>(
                            container, "values",
                            std::span<const float>(data_), options))
                  .value();
    meta_.set_attribute(object_, "kind", std::string("demo"));
    meta_.set_attribute(object_, "epoch", 42.0);

    query::ServiceOptions service_options;
    service_options.num_servers = 4;
    service_ = std::make_unique<query::QueryService>(*store_, service_options);
    PDC_attach(service_.get(), &meta_);
  }

  void TearDown() override {
    PDC_detach();
    std::filesystem::remove_all(root_);
  }

  std::uint64_t brute_count(double lo, double hi) const {
    std::uint64_t n = 0;
    for (const float v : data_) n += v > lo && v < hi;
    return n;
  }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  meta::MetaStore meta_;
  std::unique_ptr<query::QueryService> service_;
  std::vector<float> data_;
  ObjectId object_ = kInvalidObjectId;
};

TEST_F(CapiTest, CreateAndGetNhits) {
  double lo = 20.0;
  double hi = 30.0;
  pdcquery_t* ql = PDCquery_create(object_, PDC_GT, PDC_DOUBLE, &lo);
  pdcquery_t* qh = PDCquery_create(object_, PDC_LT, PDC_DOUBLE, &hi);
  ASSERT_NE(ql, nullptr);
  ASSERT_NE(qh, nullptr);
  pdcquery_t* q = PDCquery_and(ql, qh);
  ASSERT_NE(q, nullptr);

  std::uint64_t n = 0;
  ASSERT_EQ(PDCquery_get_nhits(q, &n), PDC_SUCCESS) << PDC_last_error();
  EXPECT_EQ(n, brute_count(20.0, 30.0));

  PDCquery_free(q);
  PDCquery_free(ql);
  PDCquery_free(qh);
}

TEST_F(CapiTest, TypedValuePointers) {
  const float f = 50.0F;
  pdcquery_t* qf = PDCquery_create(object_, PDC_GT, PDC_FLOAT, &f);
  const std::int32_t i = 50;
  pdcquery_t* qi = PDCquery_create(object_, PDC_GT, PDC_INT, &i);
  std::uint64_t nf = 0;
  std::uint64_t ni = 0;
  ASSERT_EQ(PDCquery_get_nhits(qf, &nf), PDC_SUCCESS);
  ASSERT_EQ(PDCquery_get_nhits(qi, &ni), PDC_SUCCESS);
  EXPECT_EQ(nf, ni);
  EXPECT_GT(nf, 0u);
  PDCquery_free(qf);
  PDCquery_free(qi);
}

TEST_F(CapiTest, SelectionAndGetData) {
  double lo = 90.0;
  pdcquery_t* q = PDCquery_create(object_, PDC_GT, PDC_DOUBLE, &lo);
  pdcselection_t* sel = nullptr;
  ASSERT_EQ(PDCquery_get_selection(q, &sel), PDC_SUCCESS) << PDC_last_error();
  ASSERT_NE(sel, nullptr);
  const std::uint64_t n = PDCselection_nhits(sel);
  EXPECT_EQ(n, brute_count(90.0, 1e30));
  const std::uint64_t* coords = PDCselection_coords(sel);
  ASSERT_NE(coords, nullptr);

  std::vector<float> values(n);
  ASSERT_EQ(PDCquery_get_data(object_, sel, values.data()), PDC_SUCCESS)
      << PDC_last_error();
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(values[i], data_[coords[i]]);
  }
  PDCselection_free(sel);
  PDCquery_free(q);
}

TEST_F(CapiTest, GetDataBatchWalksSelection) {
  double lo = 70.0;
  pdcquery_t* q = PDCquery_create(object_, PDC_GT, PDC_DOUBLE, &lo);
  pdcselection_t* sel = nullptr;
  ASSERT_EQ(PDCquery_get_selection(q, &sel), PDC_SUCCESS);
  const std::uint64_t total = PDCselection_nhits(sel);
  ASSERT_GT(total, 100u);

  std::vector<float> batch(256);
  std::uint64_t seen = 0;
  for (std::uint64_t bi = 0;; ++bi) {
    std::uint64_t got = 0;
    ASSERT_EQ(PDCquery_get_data_batch(object_, sel, 256, batch.data(), bi,
                                      &got),
              PDC_SUCCESS)
        << PDC_last_error();
    if (got == 0) break;
    for (std::uint64_t i = 0; i < got; ++i) {
      EXPECT_GT(batch[i], 70.0F);
    }
    seen += got;
  }
  EXPECT_EQ(seen, total);
  PDCselection_free(sel);
  PDCquery_free(q);
}

TEST_F(CapiTest, RegionConstraint) {
  double lo = 50.0;
  pdcquery_t* q = PDCquery_create(object_, PDC_GT, PDC_DOUBLE, &lo);
  const pdc_region_t region{1000, 5000};
  ASSERT_EQ(PDCquery_sel_region(q, &region), PDC_SUCCESS);
  pdcselection_t* sel = nullptr;
  ASSERT_EQ(PDCquery_get_selection(q, &sel), PDC_SUCCESS);
  const std::uint64_t* coords = PDCselection_coords(sel);
  for (std::uint64_t i = 0; i < PDCselection_nhits(sel); ++i) {
    EXPECT_GE(coords[i], 1000u);
    EXPECT_LT(coords[i], 6000u);
  }
  PDCselection_free(sel);
  PDCquery_free(q);
}

TEST_F(CapiTest, HistogramAccessors) {
  pdchistogram_t* hist = PDCquery_get_histogram(object_);
  ASSERT_NE(hist, nullptr);
  const std::uint64_t nbins = PDChistogram_nbins(hist);
  EXPECT_GT(nbins, 0u);
  std::uint64_t total = 0;
  for (std::uint64_t b = 0; b < nbins; ++b) {
    total += PDChistogram_bin_count(hist, b);
    if (b > 0) {
      EXPECT_GT(PDChistogram_bin_edge(hist, b),
                PDChistogram_bin_edge(hist, b - 1));
    }
  }
  EXPECT_EQ(total, data_.size());
  PDChistogram_free(hist);
  EXPECT_EQ(PDCquery_get_histogram(999999), nullptr);
}

TEST_F(CapiTest, TagQuery) {
  int nobj = 0;
  pdc_id_t* ids = nullptr;
  ASSERT_EQ(PDCquery_tag("kind", 4, "demo", &nobj, &ids), PDC_SUCCESS)
      << PDC_last_error();
  ASSERT_EQ(nobj, 1);
  EXPECT_EQ(ids[0], object_);
  std::free(ids);

  const double epoch = 42.0;
  ASSERT_EQ(PDCquery_tag("epoch", sizeof(double), &epoch, &nobj, &ids),
            PDC_SUCCESS);
  ASSERT_EQ(nobj, 1);
  std::free(ids);

  ASSERT_EQ(PDCquery_tag("kind", 4, "none", &nobj, &ids), PDC_SUCCESS);
  EXPECT_EQ(nobj, 0);
  EXPECT_EQ(ids, nullptr);
}

TEST_F(CapiTest, ErrorHandling) {
  EXPECT_EQ(PDCquery_create(object_, PDC_GT, PDC_DOUBLE, nullptr), nullptr);
  EXPECT_EQ(PDCquery_and(nullptr, nullptr), nullptr);
  std::uint64_t n = 0;
  EXPECT_EQ(PDCquery_get_nhits(nullptr, &n), PDC_FAILURE);
  EXPECT_NE(std::string(PDC_last_error()), "");

  PDC_detach();
  double v = 1.0;
  pdcquery_t* q = PDCquery_create(object_, PDC_GT, PDC_DOUBLE, &v);
  EXPECT_EQ(PDCquery_get_nhits(q, &n), PDC_FAILURE);
  PDCquery_free(q);
  PDC_attach(service_.get(), &meta_);
}

}  // namespace
}  // namespace pdc::capi
