file(REMOVE_RECURSE
  "CMakeFiles/h5lite_test.dir/h5lite_test.cc.o"
  "CMakeFiles/h5lite_test.dir/h5lite_test.cc.o.d"
  "h5lite_test"
  "h5lite_test.pdb"
  "h5lite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h5lite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
