# Empty compiler generated dependencies file for h5lite_test.
# This may be replaced when dependencies are built.
