file(REMOVE_RECURSE
  "CMakeFiles/overload_test.dir/overload_test.cc.o"
  "CMakeFiles/overload_test.dir/overload_test.cc.o.d"
  "overload_test"
  "overload_test.pdb"
  "overload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
