# Empty dependencies file for overload_test.
# This may be replaced when dependencies are built.
