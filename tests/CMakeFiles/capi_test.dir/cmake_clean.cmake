file(REMOVE_RECURSE
  "CMakeFiles/capi_test.dir/capi_test.cc.o"
  "CMakeFiles/capi_test.dir/capi_test.cc.o.d"
  "capi_test"
  "capi_test.pdb"
  "capi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
