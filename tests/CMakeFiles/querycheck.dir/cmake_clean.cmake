file(REMOVE_RECURSE
  "CMakeFiles/querycheck"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/querycheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
