# Empty custom commands generated dependencies file for querycheck.
# This may be replaced when dependencies are built.
