file(REMOVE_RECURSE
  "CMakeFiles/sortrep_test.dir/sortrep_test.cc.o"
  "CMakeFiles/sortrep_test.dir/sortrep_test.cc.o.d"
  "sortrep_test"
  "sortrep_test.pdb"
  "sortrep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sortrep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
