# Empty compiler generated dependencies file for sortrep_test.
# This may be replaced when dependencies are built.
