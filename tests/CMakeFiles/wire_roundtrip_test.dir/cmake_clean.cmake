file(REMOVE_RECURSE
  "CMakeFiles/wire_roundtrip_test.dir/wire_roundtrip_test.cc.o"
  "CMakeFiles/wire_roundtrip_test.dir/wire_roundtrip_test.cc.o.d"
  "wire_roundtrip_test"
  "wire_roundtrip_test.pdb"
  "wire_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
