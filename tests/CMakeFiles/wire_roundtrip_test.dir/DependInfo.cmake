
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wire_roundtrip_test.cc" "tests/CMakeFiles/wire_roundtrip_test.dir/wire_roundtrip_test.cc.o" "gcc" "tests/CMakeFiles/wire_roundtrip_test.dir/wire_roundtrip_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/server/CMakeFiles/pdc_server.dir/DependInfo.cmake"
  "/root/repo/src/rpc/CMakeFiles/pdc_rpc.dir/DependInfo.cmake"
  "/root/repo/src/bitmap/CMakeFiles/pdc_bitmap.dir/DependInfo.cmake"
  "/root/repo/src/histogram/CMakeFiles/pdc_histogram.dir/DependInfo.cmake"
  "/root/repo/src/sortrep/CMakeFiles/pdc_sortrep.dir/DependInfo.cmake"
  "/root/repo/src/obj/CMakeFiles/pdc_obj.dir/DependInfo.cmake"
  "/root/repo/src/kernels/CMakeFiles/pdc_kernels.dir/DependInfo.cmake"
  "/root/repo/src/pfs/CMakeFiles/pdc_pfs.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/pdc_obs.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/pdc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
