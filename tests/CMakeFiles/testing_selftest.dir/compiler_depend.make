# Empty compiler generated dependencies file for testing_selftest.
# This may be replaced when dependencies are built.
