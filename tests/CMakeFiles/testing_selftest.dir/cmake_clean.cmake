file(REMOVE_RECURSE
  "CMakeFiles/testing_selftest.dir/testing_selftest.cc.o"
  "CMakeFiles/testing_selftest.dir/testing_selftest.cc.o.d"
  "testing_selftest"
  "testing_selftest.pdb"
  "testing_selftest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testing_selftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
