# Empty dependencies file for querycheck_test.
# This may be replaced when dependencies are built.
