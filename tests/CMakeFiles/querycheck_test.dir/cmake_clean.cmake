file(REMOVE_RECURSE
  "CMakeFiles/querycheck_test.dir/querycheck_test.cc.o"
  "CMakeFiles/querycheck_test.dir/querycheck_test.cc.o.d"
  "querycheck_test"
  "querycheck_test.pdb"
  "querycheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querycheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
