# Empty compiler generated dependencies file for obj_test.
# This may be replaced when dependencies are built.
