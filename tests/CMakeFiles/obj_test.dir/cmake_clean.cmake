file(REMOVE_RECURSE
  "CMakeFiles/obj_test.dir/obj_test.cc.o"
  "CMakeFiles/obj_test.dir/obj_test.cc.o.d"
  "obj_test"
  "obj_test.pdb"
  "obj_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
