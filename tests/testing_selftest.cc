// Self-tests for the QueryCheck harness: generation must be deterministic
// per seed (so a printed PDC_QC_SEED line replays the exact case) and the
// shrinker must terminate and respect its contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "testing/querycheck.h"

namespace pdc::testing {
namespace {

std::uint64_t case_weight(const Case& c) {
  std::uint64_t w = c.dataset.size() * c.dataset.columns.size();
  for (const QuerySpec& q : c.queries) {
    for (const TermSpec& t : q.terms) w += 1 + t.leaves.size();
    w += 1;
  }
  return w;
}

// ------------------------------------------------------------ determinism

TEST(QueryGenDeterminism, SameSeedSameCase) {
  for (const std::uint64_t seed : {0ull, 1ull, 7ull, 123456789ull}) {
    QueryGen a(seed);
    QueryGen b(seed);
    const Case ca = a.draw_case();
    const Case cb = b.draw_case();
    EXPECT_EQ(ca, cb) << "seed " << seed << " is not reproducible";
    ASSERT_FALSE(ca.dataset.columns.empty());
    EXPECT_GT(ca.dataset.size(), 0u);
    EXPECT_FALSE(ca.queries.empty());
  }
}

TEST(QueryGenDeterminism, DifferentSeedsDiffer) {
  // Not a hard guarantee for any single pair, but across a few seeds at
  // least one case must differ or the generator is ignoring its seed.
  QueryGen g0(1), g1(2), g2(3);
  const Case c0 = g0.draw_case();
  const Case c1 = g1.draw_case();
  const Case c2 = g2.draw_case();
  EXPECT_TRUE(!(c0 == c1) || !(c1 == c2));
}

TEST(QueryGenDeterminism, OracleIsPureFunction) {
  QueryGen g(42);
  const Case c = g.draw_case();
  for (const QuerySpec& q : c.queries) {
    EXPECT_EQ(oracle_hits(c.dataset, q), oracle_hits(c.dataset, q));
  }
}

TEST(QueryGenDeterminism, ReproLineNamesTheSeedVariable) {
  const std::string line = repro_line(987);
  EXPECT_NE(line.find("PDC_QC_SEED=987"), std::string::npos) << line;
}

// --------------------------------------------------------------- shrinker

Case sample_case(std::uint64_t seed = 5) {
  QueryGen g(seed);
  Case c = g.draw_case();
  // Make sure there is something to shrink.
  while (c.dataset.size() < 8 || c.queries.size() < 2) {
    g = QueryGen(++seed);
    c = g.draw_case();
  }
  return c;
}

TEST(Shrinker, TerminatesOnAlwaysFailingPredicate) {
  const Case original = sample_case();
  const ShrinkResult r =
      shrink(original, [](const Case&) { return true; }, /*max_attempts=*/400);
  EXPECT_LE(r.attempts, 400u);
  // Every accepted step strictly shrinks, so the minimum is tiny: one
  // query, at most a handful of elements.
  EXPECT_EQ(r.minimal.queries.size(), 1u);
  EXPECT_LE(r.minimal.dataset.size(), 4u);
  EXPECT_LT(case_weight(r.minimal), case_weight(original));
}

TEST(Shrinker, NeverAcceptsWhenPredicateRejectsEverything) {
  const Case original = sample_case();
  const ShrinkResult r =
      shrink(original, [&original](const Case& c) { return c == original; });
  EXPECT_EQ(r.accepted_steps, 0u);
  EXPECT_EQ(r.minimal, original);
}

TEST(Shrinker, PreservesAPredicateDependingOnSize) {
  // Predicate: dataset still has more than 16 elements.  The shrinker must
  // keep it true at every accepted step and stop just above the threshold.
  const Case original = sample_case(11);
  ASSERT_GT(original.dataset.size(), 16u);
  const ShrinkResult r = shrink(
      original, [](const Case& c) { return c.dataset.size() > 16; });
  EXPECT_GT(r.minimal.dataset.size(), 16u);
  // It should still have made progress somewhere (queries, if not size).
  EXPECT_LT(case_weight(r.minimal), case_weight(original));
}

TEST(Shrinker, RespectsAttemptBudget) {
  const Case original = sample_case();
  const ShrinkResult r =
      shrink(original, [](const Case&) { return true; }, /*max_attempts=*/3);
  EXPECT_LE(r.attempts, 3u);
}

TEST(Shrinker, MinimalCaseStillDescribable) {
  const Case original = sample_case();
  const ShrinkResult r = shrink(original, [](const Case&) { return true; });
  const std::string desc = describe_case(r.minimal);
  EXPECT_FALSE(desc.empty());
  EXPECT_NE(desc.find("seed"), std::string::npos) << desc;
}

}  // namespace
}  // namespace pdc::testing
