// Tests for the WAH bitvector and the binned bitmap index.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bitmap/binned_index.h"
#include "bitmap/wah.h"
#include "common/rng.h"

namespace pdc::bitmap {
namespace {

// A plain bool-vector reference model for property tests.
WahBitVector from_bools(const std::vector<bool>& bits) {
  WahBitVector v;
  for (bool b : bits) v.append_bit(b);
  return v;
}

std::vector<bool> random_bits(std::size_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.next_double() < density;
  return bits;
}

TEST(Wah, EmptyVector) {
  WahBitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.count(), 0u);
  EXPECT_TRUE(v.to_positions().empty());
}

TEST(Wah, AppendBitsRoundTrip) {
  std::vector<bool> bits{true, false, false, true, true};
  auto v = from_bools(bits);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.count(), 3u);
  EXPECT_EQ(v.to_positions(), (std::vector<std::uint64_t>{0, 3, 4}));
}

TEST(Wah, LongRunsCompress) {
  WahBitVector v;
  v.append_run(false, 1'000'000);
  v.append_bit(true);
  v.append_run(false, 1'000'000);
  EXPECT_EQ(v.size(), 2'000'001u);
  EXPECT_EQ(v.count(), 1u);
  EXPECT_EQ(v.to_positions(), (std::vector<std::uint64_t>{1'000'000}));
  // Two million bits in a handful of words.
  EXPECT_LT(v.compressed_bytes(), 64u);
}

TEST(Wah, OnesRunCompresses) {
  WahBitVector v;
  v.append_run(true, 31 * 1000);
  EXPECT_EQ(v.count(), 31000u);
  EXPECT_LT(v.compressed_bytes(), 64u);
  auto pos = v.to_positions();
  ASSERT_EQ(pos.size(), 31000u);
  EXPECT_EQ(pos.front(), 0u);
  EXPECT_EQ(pos.back(), 30999u);
}

TEST(Wah, MixedRunsAndBitsMatchReference) {
  Rng rng(17);
  WahBitVector v;
  std::vector<bool> ref;
  for (int step = 0; step < 200; ++step) {
    if (rng.next_double() < 0.5) {
      const bool bit = rng.next_double() < 0.5;
      const std::uint64_t n = rng.bounded(200);
      v.append_run(bit, n);
      ref.insert(ref.end(), n, bit);
    } else {
      const bool bit = rng.next_double() < 0.3;
      v.append_bit(bit);
      ref.push_back(bit);
    }
  }
  EXPECT_EQ(v.size(), ref.size());
  std::vector<std::uint64_t> expect;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (ref[i]) expect.push_back(i);
  }
  EXPECT_EQ(v.to_positions(), expect);
  EXPECT_EQ(v.count(), expect.size());
}

class WahLogicSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(WahLogicSweep, AndOrMatchReferenceModel) {
  const auto [n, density] = GetParam();
  auto ba = random_bits(n, density, 101);
  auto bb = random_bits(n, density * 0.5 + 0.25, 202);
  auto va = from_bools(ba);
  auto vb = from_bools(bb);

  auto vand = WahBitVector::And(va, vb);
  auto vor = WahBitVector::Or(va, vb);
  ASSERT_TRUE(vand.ok());
  ASSERT_TRUE(vor.ok());

  std::vector<std::uint64_t> expect_and, expect_or;
  for (std::size_t i = 0; i < n; ++i) {
    if (ba[i] && bb[i]) expect_and.push_back(i);
    if (ba[i] || bb[i]) expect_or.push_back(i);
  }
  EXPECT_EQ(vand->to_positions(), expect_and);
  EXPECT_EQ(vor->to_positions(), expect_or);
  EXPECT_EQ(vand->count(), expect_and.size());
  EXPECT_EQ(vor->count(), expect_or.size());
  EXPECT_EQ(vand->size(), n);
  EXPECT_EQ(vor->size(), n);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDensities, WahLogicSweep,
    ::testing::Combine(::testing::Values(0, 1, 30, 31, 32, 62, 1000, 12345),
                       ::testing::Values(0.0, 0.01, 0.5, 0.99, 1.0)));

TEST(Wah, AndSizeMismatchRejected) {
  WahBitVector a, b;
  a.append_run(false, 10);
  b.append_run(false, 11);
  EXPECT_FALSE(WahBitVector::And(a, b).ok());
}

TEST(Wah, SparseAndSparseStaysCompressed) {
  WahBitVector a, b;
  // Set bits far apart; AND should stream fills without blowup.
  for (int i = 0; i < 100; ++i) {
    a.append_run(false, 10000);
    a.append_bit(true);
    b.append_run(false, 10000);
    b.append_bit(i % 2 == 0);
  }
  auto r = WahBitVector::And(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->count(), 50u);
  EXPECT_LT(r->compressed_bytes(), 4096u);
}

TEST(WahSerial, RoundTrip) {
  auto bits = random_bits(5000, 0.1, 77);
  auto v = from_bools(bits);
  SerialWriter w;
  v.serialize(w);
  auto bytes = w.take();
  SerialReader r(bytes);
  auto back = WahBitVector::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, v);
}

// ------------------------------------------------------------ binned index

std::vector<double> random_values(std::size_t n, double lo, double hi,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

TEST(BinnedIndex, EmptyData) {
  BinnedBitmapIndex idx =
      BinnedBitmapIndex::Build<double>(std::span<const double>{});
  EXPECT_EQ(idx.num_elements(), 0u);
  auto probe = idx.probe(ValueInterval::from_op(QueryOp::kGT, 0.0));
  EXPECT_TRUE(probe.definite.empty());
  EXPECT_TRUE(probe.candidates.empty());
}

TEST(BinnedIndex, DefiniteHitsActuallyMatch) {
  auto data = random_values(20000, 0.0, 100.0, 5);
  auto idx = BinnedBitmapIndex::Build<double>(data);
  auto q = ValueInterval::from_op(QueryOp::kGT, 25.0)
               .intersect(ValueInterval::from_op(QueryOp::kLT, 75.0));
  auto probe = idx.probe(q);
  for (auto pos : probe.definite) {
    EXPECT_TRUE(q.contains(data[pos])) << "pos " << pos;
  }
}

TEST(BinnedIndex, DefinitePlusCandidatesCoverAllMatches) {
  auto data = random_values(20000, 0.0, 100.0, 6);
  auto idx = BinnedBitmapIndex::Build<double>(data);
  for (double lo : {0.0, 10.5, 60.0, 99.5}) {
    auto q = ValueInterval::from_op(QueryOp::kGTE, lo)
                 .intersect(ValueInterval::from_op(QueryOp::kLT, lo + 15.0));
    auto probe = idx.probe(q);
    std::vector<std::uint64_t> covered = probe.definite;
    covered.insert(covered.end(), probe.candidates.begin(),
                   probe.candidates.end());
    std::sort(covered.begin(), covered.end());
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (q.contains(data[i])) {
        EXPECT_TRUE(std::binary_search(covered.begin(), covered.end(), i))
            << "matching element " << i << " missed by index";
      }
    }
  }
}

TEST(BinnedIndex, CandidatesAreBoundedByBoundaryBins) {
  IndexConfig cfg;
  cfg.num_bins = 64;
  auto data = random_values(64000, 0.0, 100.0, 7);
  auto idx = BinnedBitmapIndex::Build<double>(data, cfg);
  auto q = ValueInterval::from_op(QueryOp::kGT, 30.2)
               .intersect(ValueInterval::from_op(QueryOp::kLT, 60.8));
  auto probe = idx.probe(q);
  // At most the two boundary bins contribute candidates: ~2 * N / bins,
  // allow generous slack for equi-depth placement error.
  EXPECT_LT(probe.candidates.size(), 4u * 64000u / 64u);
  EXPECT_GT(probe.definite.size(), 0u);
}

TEST(BinnedIndex, DisjointQueryProducesNothing) {
  auto data = random_values(1000, 0.0, 1.0, 8);
  auto idx = BinnedBitmapIndex::Build<double>(data);
  auto probe = idx.probe(ValueInterval::from_op(QueryOp::kGT, 5.0));
  EXPECT_TRUE(probe.definite.empty());
  EXPECT_TRUE(probe.candidates.empty());
}

TEST(BinnedIndex, SkewedDataDoesNotLoseElements) {
  // 99% of values identical; equi-depth edges collapse.
  std::vector<double> data(10000, 5.0);
  for (int i = 0; i < 100; ++i) data[i * 100] = static_cast<double>(i);
  auto idx = BinnedBitmapIndex::Build<double>(data);
  auto q = ValueInterval::from_op(QueryOp::kGTE, 0.0)
               .intersect(ValueInterval::from_op(QueryOp::kLTE, 200.0));
  auto probe = idx.probe(q);
  EXPECT_EQ(probe.definite.size() + probe.candidates.size(), 10000u);
}

TEST(BinnedIndex, SerializeRoundTripProbesIdentically) {
  auto data = random_values(5000, -50.0, 50.0, 9);
  auto idx = BinnedBitmapIndex::Build<double>(data);
  SerialWriter w;
  idx.serialize(w);
  auto bytes = w.take();
  SerialReader r(bytes);
  auto back = BinnedBitmapIndex::Deserialize(r);
  ASSERT_TRUE(back.ok());
  auto q = ValueInterval::from_op(QueryOp::kGT, -10.0)
               .intersect(ValueInterval::from_op(QueryOp::kLT, 10.0));
  auto p1 = idx.probe(q);
  auto p2 = back->probe(q);
  EXPECT_EQ(p1.definite, p2.definite);
  EXPECT_EQ(p1.candidates, p2.candidates);
  EXPECT_EQ(back->num_elements(), 5000u);
}

TEST(BinnedIndex, CorruptBytesRejected) {
  std::vector<std::uint8_t> junk(32, 0x5A);
  SerialReader r(junk);
  EXPECT_FALSE(BinnedBitmapIndex::Deserialize(r).ok());
}

// ---------------------------------------- bin-classification edge cases

TEST(BinnedIndexSemantics, AlignedOpenBoundsAreCandidateFree) {
  // Positive data + precision grid: an open lower bound equal to a grid
  // edge is treated as aligned (FastBit's precision guarantee).
  Rng rng(21);
  std::vector<float> data(20000);
  for (auto& v : data) v = static_cast<float>(1.0 + 3.0 * rng.next_double());
  auto idx = BinnedBitmapIndex::Build<float>(std::span<const float>(data));
  const auto q = ValueInterval::from_op(QueryOp::kGT, 2.7)
                     .intersect(ValueInterval::from_op(QueryOp::kLT, 2.8));
  const auto probe = idx.probe(q);
  EXPECT_TRUE(probe.candidates.empty());
  std::size_t truth = 0;
  for (const float v : data) truth += q.contains(v);
  EXPECT_EQ(probe.definite.size(), truth);
}

TEST(BinnedIndexSemantics, QueryBeyondLastGridEdgeStaysExact) {
  // Data whose max (2.75) is inside the closing grid cell [2.7, 2.8): the
  // last bin must classify as half-open so (2.7, 2.8) resolves fully.
  Rng rng(22);
  std::vector<float> data(10000);
  for (auto& v : data) {
    v = static_cast<float>(1.0 + 1.75 * rng.next_double());
  }
  data[0] = 2.75F;  // pin the max inside the top grid cell
  auto idx = BinnedBitmapIndex::Build<float>(std::span<const float>(data));
  const auto q = ValueInterval::from_op(QueryOp::kGT, 2.7)
                     .intersect(ValueInterval::from_op(QueryOp::kLT, 2.8));
  const auto probe = idx.probe(q);
  EXPECT_TRUE(probe.candidates.empty());
  std::size_t truth = 0;
  for (const float v : data) truth += q.contains(v);
  EXPECT_EQ(probe.definite.size(), truth);
}

TEST(BinnedIndexSemantics, ExactMinimumKeepsStrictSemantics) {
  // Elements equal to the exact observed minimum must NOT be reported as
  // definite hits of an open lower-bound query at that minimum.
  std::vector<float> data(1000, 0.0F);
  Rng rng(23);
  for (std::size_t i = 0; i < 500; ++i) {
    data[i] = 2.0F;  // the exact min, many times
  }
  for (std::size_t i = 500; i < 1000; ++i) {
    data[i] = static_cast<float>(2.0 + 2.0 * rng.next_double() + 0.001);
  }
  auto idx = BinnedBitmapIndex::Build<float>(std::span<const float>(data));
  const auto q = ValueInterval::from_op(QueryOp::kGT, 2.0);
  const auto probe = idx.probe(q);
  for (const auto pos : probe.definite) {
    EXPECT_GT(data[pos], 2.0F) << "exact-min element leaked into definite";
  }
  // Union still covers every true hit.
  std::vector<std::uint64_t> covered = probe.definite;
  covered.insert(covered.end(), probe.candidates.begin(),
                 probe.candidates.end());
  std::sort(covered.begin(), covered.end());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] > 2.0F) {
      EXPECT_TRUE(std::binary_search(covered.begin(), covered.end(), i));
    }
  }
}

TEST(BinnedIndexSemantics, IntegerIndexesKeepStrictEdgeSemantics) {
  // Integer values sit exactly on decimal edges, so the open-bound
  // relaxation must not apply: "v > 20" must not count the 20s as
  // definite hits.
  std::vector<std::int32_t> data;
  Rng rng(25);
  for (int i = 0; i < 20000; ++i) {
    data.push_back(static_cast<std::int32_t>(rng.bounded(100)));
  }
  auto idx =
      BinnedBitmapIndex::Build<std::int32_t>(std::span<const std::int32_t>(data));
  const auto q = ValueInterval::from_op(QueryOp::kGT, 20.0);
  const auto probe = idx.probe(q);
  for (const auto pos : probe.definite) {
    EXPECT_GT(data[pos], 20) << "edge-valued int leaked into definite";
  }
  std::size_t truth = 0;
  for (const auto v : data) truth += v > 20;
  EXPECT_GE(probe.definite.size() + probe.candidates.size(), truth);
  EXPECT_LE(probe.definite.size(), truth);
}

TEST(BinnedIndexSemantics, NegativeDataFallsBackAndStaysCorrect) {
  // Precision grids need positive data; negative ranges use quantile bins
  // and must remain exact via candidate checks.
  Rng rng(24);
  std::vector<float> data(20000);
  for (auto& v : data) {
    v = static_cast<float>(rng.uniform(-100.0, 100.0));
  }
  auto idx = BinnedBitmapIndex::Build<float>(std::span<const float>(data));
  const auto q = ValueInterval::from_op(QueryOp::kGT, -10.0)
                     .intersect(ValueInterval::from_op(QueryOp::kLT, 10.0));
  const auto probe = idx.probe(q);
  for (const auto pos : probe.definite) {
    EXPECT_TRUE(q.contains(data[pos]));
  }
  std::size_t truth = 0;
  for (const float v : data) truth += q.contains(v);
  EXPECT_GE(probe.definite.size() + probe.candidates.size(), truth);
  EXPECT_LE(probe.definite.size(), truth);
}

class BinnedIndexBinSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BinnedIndexBinSweep, MoreBinsFewerCandidates) {
  IndexConfig cfg;
  cfg.num_bins = GetParam();
  auto data = random_values(30000, 0.0, 1000.0, 11);
  auto idx = BinnedBitmapIndex::Build<double>(data, cfg);
  auto q = ValueInterval::from_op(QueryOp::kGT, 200.0)
               .intersect(ValueInterval::from_op(QueryOp::kLT, 700.0));
  auto probe = idx.probe(q);
  // Candidates bounded by ~2 boundary bins' occupancy.
  EXPECT_LE(probe.candidates.size(),
            4u * 30000u / std::max(1u, GetParam()) + 64u);
  // Correctness at every bin count: union covers truth.
  std::size_t covered = probe.definite.size() + probe.candidates.size();
  std::size_t truth = 0;
  for (double v : data) truth += q.contains(v);
  EXPECT_GE(covered, truth);
}

INSTANTIATE_TEST_SUITE_P(Bins, BinnedIndexBinSweep,
                         ::testing::Values(4, 16, 32, 64, 128));

}  // namespace
}  // namespace pdc::bitmap
