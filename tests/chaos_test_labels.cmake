foreach(t IN LISTS chaos_test_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tsan")
endforeach()
