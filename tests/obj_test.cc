// Tests for the ODMS core: containers, objects, regions, ingest-time
// histograms, bitmap index files, metadata persistence.
#include <gtest/gtest.h>

#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/exec_pool.h"
#include "common/rng.h"
#include "obj/object_store.h"

namespace pdc::obj {
namespace {

class ObjectStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/obj_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    auto cluster = pfs::PfsCluster::Create(cfg);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    store_ = std::make_unique<ObjectStore>(*cluster_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::vector<float> make_data(std::size_t n, std::uint64_t seed = 3) {
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.uniform(0.0, 100.0));
    return v;
  }

  Result<ObjectId> import(const std::vector<float>& data,
                          std::uint64_t region_bytes = 4096,
                          const char* name = "obj") {
    auto container = store_->create_container(std::string("c_") + name);
    if (!container.ok()) return container.status();
    ImportOptions options;
    options.region_size_bytes = region_bytes;
    return store_->import_object<float>(*container, name,
                                        std::span<const float>(data), options);
  }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<ObjectStore> store_;
};

TEST_F(ObjectStoreTest, ContainerLifecycle) {
  auto c1 = store_->create_container("sim");
  ASSERT_TRUE(c1.ok());
  EXPECT_NE(*c1, kInvalidObjectId);
  EXPECT_EQ(store_->create_container("sim").status().code(),
            StatusCode::kAlreadyExists);
  auto c2 = store_->create_container("sim2");
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2);
}

TEST_F(ObjectStoreTest, ImportCreatesRegionsAndHistograms) {
  const auto data = make_data(10000);  // 40000 bytes
  auto id = import(data, 4096);        // 1024 elements per region
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto desc = store_->get(*id);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ((*desc)->num_elements, 10000u);
  EXPECT_EQ((*desc)->region_size_elements, 1024u);
  EXPECT_EQ((*desc)->regions.size(), 10u);  // ceil(10000/1024)
  // Last region is the remainder.
  EXPECT_EQ((*desc)->regions.back().extent.count, 10000u - 9u * 1024u);
  // Every region has a valid local histogram; global sums them.
  std::uint64_t total = 0;
  for (const auto& region : (*desc)->regions) {
    EXPECT_TRUE(region.histogram.valid());
    EXPECT_EQ(region.histogram.total_count(), region.extent.count);
    total += region.histogram.total_count();
  }
  EXPECT_EQ(total, 10000u);
  EXPECT_EQ((*desc)->global_histogram.total_count(), 10000u);
}

TEST_F(ObjectStoreTest, ImportValidation) {
  auto container = store_->create_container("v");
  ASSERT_TRUE(container.ok());
  const auto data = make_data(100);
  // empty object
  EXPECT_EQ(store_
                ->import_object<float>(*container, "empty",
                                       std::span<const float>{}, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // bad container
  EXPECT_EQ(store_
                ->import_object<float>(999999, "o",
                                       std::span<const float>(data), {})
                .status()
                .code(),
            StatusCode::kNotFound);
  // duplicate name
  ASSERT_TRUE(store_
                  ->import_object<float>(*container, "o",
                                         std::span<const float>(data), {})
                  .ok());
  EXPECT_EQ(store_
                ->import_object<float>(*container, "o",
                                       std::span<const float>(data), {})
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ObjectStoreTest, ReadRegionAndElementsRoundTrip) {
  const auto data = make_data(5000);
  auto id = import(data, 4096);
  ASSERT_TRUE(id.ok());
  auto desc = store_->get(*id);
  ASSERT_TRUE(desc.ok());

  // Whole region 2.
  const auto& region = (*desc)->regions[2];
  std::vector<float> buf(region.extent.count);
  ASSERT_TRUE(store_
                  ->read_region(**desc, 2,
                                {reinterpret_cast<std::uint8_t*>(buf.data()),
                                 buf.size() * sizeof(float)},
                                {})
                  .ok());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], data[region.extent.offset + i]);
  }

  // Arbitrary extent crossing region boundaries.
  std::vector<float> ext(1500);
  ASSERT_TRUE(store_
                  ->read_elements(**desc, {700, 1500},
                                  {reinterpret_cast<std::uint8_t*>(ext.data()),
                                   ext.size() * sizeof(float)},
                                  {})
                  .ok());
  for (std::size_t i = 0; i < ext.size(); ++i) {
    EXPECT_EQ(ext[i], data[700 + i]);
  }

  // Out-of-range extent rejected.
  std::vector<std::uint8_t> small(4);
  EXPECT_EQ(store_->read_elements(**desc, {4999, 2}, small, {}).code(),
            StatusCode::kOutOfRange);
}

TEST_F(ObjectStoreTest, ReadValuesAtScatteredPositions) {
  const auto data = make_data(5000);
  auto id = import(data, 2048);
  ASSERT_TRUE(id.ok());
  auto desc = store_->get(*id);
  std::vector<std::uint64_t> positions{3, 100, 101, 2047, 2048, 4999};
  std::vector<float> values(positions.size());
  CostLedger ledger;
  ASSERT_TRUE(store_
                  ->read_values_at(**desc, positions,
                                   {reinterpret_cast<std::uint8_t*>(values.data()),
                                    values.size() * sizeof(float)},
                                   {}, {&ledger, 1})
                  .ok());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    EXPECT_EQ(values[i], data[positions[i]]);
  }
  EXPECT_GT(ledger.io_seconds(), 0.0);

  // Non-ascending positions rejected.
  std::vector<std::uint64_t> bad{10, 5};
  std::vector<std::uint8_t> buf(8);
  EXPECT_EQ(store_->read_values_at(**desc, bad, buf, {}, {}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ObjectStoreTest, BitmapIndexBuildAndLoad) {
  const auto data = make_data(8192);
  auto id = import(data, 4096);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->build_bitmap_index(*id).ok());
  EXPECT_EQ(store_->build_bitmap_index(*id).code(),
            StatusCode::kAlreadyExists);

  auto desc = store_->get(*id);
  ASSERT_TRUE(desc.ok());
  EXPECT_FALSE((*desc)->index_file.empty());
  for (RegionIndex r = 0; r < (*desc)->regions.size(); ++r) {
    EXPECT_GT((*desc)->regions[r].index_bytes, 0u);
    auto index = store_->load_region_index(**desc, r, {});
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    EXPECT_EQ(index->num_elements(), (*desc)->regions[r].extent.count);
    // Probe agrees with brute force over the region.
    const auto q = ValueInterval::from_op(QueryOp::kGT, 80.0);
    auto probe = index->probe(q);
    std::size_t truth = 0;
    for (std::uint64_t i = 0; i < (*desc)->regions[r].extent.count; ++i) {
      truth += q.contains(data[(*desc)->regions[r].extent.offset + i]);
    }
    EXPECT_GE(probe.definite.size() + probe.candidates.size(), truth);
    EXPECT_LE(probe.definite.size(), truth);
  }
}

TEST_F(ObjectStoreTest, IndexOnMissingObjectFails) {
  EXPECT_EQ(store_->build_bitmap_index(42).code(), StatusCode::kNotFound);
}

// Parallel ingest and index builds are pure speedups: region metadata,
// per-region histograms, and the on-disk index file must be byte-identical
// to the serial build at every pool width.
TEST_F(ObjectStoreTest, ParallelImportAndIndexBuildByteIdentical) {
  const auto data = make_data(50'000, 21);

  const auto index_file_bytes = [&](ObjectId id) {
    auto desc = store_->get(id);
    EXPECT_TRUE(desc.ok());
    auto file = cluster_->open((*desc)->index_file);
    EXPECT_TRUE(file.ok());
    auto size = file->size();
    EXPECT_TRUE(size.ok());
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(*size));
    EXPECT_TRUE(file->read(0, bytes, {}).ok());
    return bytes;
  };

  // Serial baseline.
  auto serial_id = import(data, 2048, "serial");
  ASSERT_TRUE(serial_id.ok());
  ASSERT_TRUE(store_->build_bitmap_index(*serial_id).ok());
  const auto want_index = index_file_bytes(*serial_id);
  ASSERT_FALSE(want_index.empty());
  auto serial_desc = store_->get(*serial_id);
  ASSERT_TRUE(serial_desc.ok());

  for (const std::uint32_t threads : {1u, 4u, 8u}) {
    exec::ThreadPool pool(threads);
    const std::string name = "pool" + std::to_string(threads);
    auto container = store_->create_container("c_" + name);
    ASSERT_TRUE(container.ok());
    ImportOptions options;
    options.region_size_bytes = 2048;
    options.pool = &pool;
    auto id = store_->import_object<float>(*container, name,
                                           std::span<const float>(data),
                                           options);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(store_->build_bitmap_index(*id, {}, &pool).ok());
    EXPECT_GT(pool.stats().executed, 0u);

    auto desc = store_->get(*id);
    ASSERT_TRUE(desc.ok());
    ASSERT_EQ((*desc)->regions.size(), (*serial_desc)->regions.size());
    for (std::size_t r = 0; r < (*desc)->regions.size(); ++r) {
      const auto& got = (*desc)->regions[r];
      const auto& want = (*serial_desc)->regions[r];
      EXPECT_EQ(got.extent.offset, want.extent.offset);
      EXPECT_EQ(got.extent.count, want.extent.count);
      EXPECT_EQ(got.histogram, want.histogram) << "region " << r;
      EXPECT_EQ(got.index_offset, want.index_offset);
      EXPECT_EQ(got.index_bytes, want.index_bytes);
    }
    EXPECT_EQ(index_file_bytes(*id), want_index) << "threads=" << threads;
  }
}

TEST_F(ObjectStoreTest, LookupByNameAndList) {
  const auto data = make_data(100);
  auto id = import(data, 4096, "energy");
  ASSERT_TRUE(id.ok());
  auto by_name = store_->find_by_name("energy");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ((*by_name)->id, *id);
  EXPECT_EQ(store_->find_by_name("nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store_->list_objects().size(), 1u);
}

TEST_F(ObjectStoreTest, PersistAndReloadMetadata) {
  const auto data = make_data(5000);
  auto id = import(data, 2048);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->build_bitmap_index(*id).ok());
  ASSERT_TRUE(store_->persist_metadata("checkpoint.meta").ok());

  ObjectStore restored(*cluster_);
  ASSERT_TRUE(restored.load_metadata("checkpoint.meta").ok());
  auto desc = restored.get(*id);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ((*desc)->num_elements, 5000u);
  EXPECT_EQ((*desc)->regions.size(), 10u);
  EXPECT_EQ((*desc)->global_histogram.total_count(), 5000u);
  EXPECT_FALSE((*desc)->index_file.empty());

  // Data still readable through the restored metadata.
  std::vector<float> buf(10);
  ASSERT_TRUE(restored
                  .read_elements(**desc, {100, 10},
                                 {reinterpret_cast<std::uint8_t*>(buf.data()),
                                  buf.size() * sizeof(float)},
                                 {})
                  .ok());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(buf[i], data[100 + i]);

  // Restored index still probes.
  auto index = restored.load_region_index(**desc, 0, {});
  ASSERT_TRUE(index.ok());

  // Loading into a non-empty store fails.
  EXPECT_EQ(restored.load_metadata("checkpoint.meta").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ObjectStoreTest, TinyRegionSizeClampsToOneElement) {
  const auto data = make_data(16);
  auto id = import(data, 1);  // smaller than one element
  ASSERT_TRUE(id.ok());
  auto desc = store_->get(*id);
  EXPECT_EQ((*desc)->region_size_elements, 1u);
  EXPECT_EQ((*desc)->regions.size(), 16u);
}

}  // namespace
}  // namespace pdc::obj
