// Open-loop traffic battery (ctest label: traffic).
//
// Exercises the overload-control stack end to end at tier-1 scale: a
// deterministic schedule generator, the virtual-time simulator the bench
// gate relies on, and a live 4x-capacity burst through the full rpc stack
// where every admitted answer must equal the scan oracle, sheds must be
// explicit, and transport queues must stay bounded.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "obj/object_store.h"
#include "pfs/pfs.h"
#include "query/query.h"
#include "query/service.h"
#include "workloads/traffic.h"

namespace pdc {
namespace {

using workloads::Arrival;
using workloads::ArrivalProcess;
using workloads::SimParams;
using workloads::TrafficConfig;
using workloads::TrafficDriver;
using workloads::TrafficQuery;
using workloads::TrafficReport;

TrafficConfig small_config(ArrivalProcess arrival,
                           std::uint32_t num_tenants = 1) {
  TrafficConfig config;
  config.seed = 42;
  config.arrival = arrival;
  config.num_queries = 1000;
  config.num_tenants = num_tenants;
  return config;
}

SimParams small_params() {
  SimParams params;
  params.service_time_s = 1e-3;
  params.concurrency = 4;
  params.queue_limit = 32;
  params.retry_after_s = 2e-3;
  return params;
}

TEST(TrafficSchedule, DeterministicSortedAndComplete) {
  const TrafficConfig config = small_config(ArrivalProcess::kPoisson, 3);
  const auto a = workloads::make_schedule(config, 1000.0);
  const auto b = workloads::make_schedule(config, 1000.0);
  ASSERT_EQ(a.size(), config.num_queries);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_s, b[i].time_s) << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << i;
    EXPECT_EQ(a[i].query_index, b[i].query_index) << i;
    EXPECT_LT(a[i].tenant, 3u);
    if (i > 0) EXPECT_GE(a[i].time_s, a[i - 1].time_s);
  }
  // Mean inter-arrival ~ 1/rate: the whole schedule spans roughly
  // num_queries/rate seconds (Poisson: loose 2x band).
  const double span = a.back().time_s - a.front().time_s;
  EXPECT_GT(span, 0.5);
  EXPECT_LT(span, 2.0);
  // A different seed moves the arrivals.
  TrafficConfig other = config;
  other.seed = 43;
  const auto c = workloads::make_schedule(other, 1000.0);
  EXPECT_NE(a.front().time_s, c.front().time_s);
}

TEST(TrafficSchedule, BurstyConcentratesArrivals) {
  const TrafficConfig config = small_config(ArrivalProcess::kBursty);
  const auto schedule = workloads::make_schedule(config, 1000.0);
  ASSERT_EQ(schedule.size(), config.num_queries);
  // With 20% on-time at 4x rate, the busiest burst_period window must hold
  // well more than the uniform share of arrivals.
  std::size_t max_in_window = 0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    std::size_t j = i;
    while (j < schedule.size() &&
           schedule[j].time_s < schedule[i].time_s + 0.1) {
      ++j;
    }
    max_in_window = std::max(max_in_window, j - i);
  }
  const double span = schedule.back().time_s;
  const double uniform_share = 0.1 / span * config.num_queries;
  EXPECT_GT(static_cast<double>(max_in_window), 1.5 * uniform_share);
}

TEST(TrafficSim, ReplayIsBitDeterministic) {
  const SimParams params = small_params();
  const double rate = 2.0 * params.capacity_qps();
  TrafficDriver a(small_config(ArrivalProcess::kBursty));
  TrafficDriver b(small_config(ArrivalProcess::kBursty));
  const TrafficReport ra = a.simulate(params, rate);
  const TrafficReport rb = b.simulate(params, rate);
  EXPECT_EQ(ra.offered, rb.offered);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.dropped, rb.dropped);
  EXPECT_EQ(ra.shed_retries, rb.shed_retries);
  EXPECT_EQ(ra.goodput_qps, rb.goodput_qps);
  EXPECT_EQ(ra.p50_s, rb.p50_s);
  EXPECT_EQ(ra.p99_s, rb.p99_s);
  EXPECT_EQ(ra.queue_peak, rb.queue_peak);
}

TEST(TrafficSim, GoodputHoldsPastSaturationAndQueueStaysBounded) {
  const SimParams params = small_params();
  TrafficDriver at_capacity(small_config(ArrivalProcess::kPoisson));
  const TrafficReport pre =
      at_capacity.simulate(params, params.capacity_qps());
  TrafficDriver overloaded(small_config(ArrivalProcess::kPoisson));
  const TrafficReport over =
      overloaded.simulate(params, 4.0 * params.capacity_qps());
  EXPECT_GT(over.shed_retries, 0u);  // admission control engaged
  EXPECT_LE(over.queue_peak, static_cast<double>(params.queue_limit));
  EXPECT_GE(over.goodput_qps, 0.7 * pre.goodput_qps)
      << "goodput collapsed past saturation: " << over.goodput_qps
      << " vs pre-saturation " << pre.goodput_qps;
  // Everything is accounted for: completed + dropped = offered.
  EXPECT_EQ(over.completed + over.dropped, over.offered);
}

TEST(TrafficSim, UnboundedQueueNeverSheds) {
  SimParams params = small_params();
  params.queue_limit = 0;
  TrafficDriver driver(small_config(ArrivalProcess::kBursty));
  const TrafficReport report =
      driver.simulate(params, 4.0 * params.capacity_qps());
  EXPECT_EQ(report.shed_retries, 0u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.completed, report.offered);
}

TEST(TrafficSim, WeightedFairSplitsLatencyByWeight) {
  SimParams params = small_params();
  params.queue_limit = 0;  // isolate scheduling from shedding
  params.tenant_weights = {3.0, 1.0};
  TrafficDriver driver(small_config(ArrivalProcess::kPoisson, 2));
  const TrafficReport report =
      driver.simulate(params, 4.0 * params.capacity_qps());
  ASSERT_EQ(report.tenants.size(), 2u);
  const auto& heavy = report.tenants[0];
  const auto& light = report.tenants[1];
  EXPECT_EQ(heavy.completed, heavy.offered);
  EXPECT_EQ(light.completed, light.offered);
  // While both lanes are backlogged the weight-3 tenant is served ~3x as
  // often, so it must wait clearly less.
  EXPECT_LT(heavy.mean_s, 0.75 * light.mean_s);
  EXPECT_LT(heavy.p99_s, light.p99_s);
}

TEST(TrafficConfigEnv, ReadsSeedAndServiceKnobs) {
  ::setenv("PDC_TRAFFIC_SEED", "777", 1);
  ::setenv("PDC_QUEUE_LIMIT", "48", 1);
  ::setenv("PDC_SHED_POLICY", "drop-oldest", 1);
  ::setenv("PDC_TENANT_WEIGHTS", "3,1,2.5", 1);
  const TrafficConfig config = TrafficConfig::from_env();
  EXPECT_EQ(config.seed, 777u);
  const query::ServiceOptions options = query::ServiceOptions::from_env();
  EXPECT_EQ(options.queue_limit, 48u);
  EXPECT_EQ(options.shed_policy, rpc::ShedPolicy::kDropOldest);
  ASSERT_EQ(options.tenant_weights.size(), 3u);
  EXPECT_EQ(options.tenant_weights[0], 3.0);
  EXPECT_EQ(options.tenant_weights[1], 1.0);
  EXPECT_EQ(options.tenant_weights[2], 2.5);
  ::unsetenv("PDC_TRAFFIC_SEED");
  ::unsetenv("PDC_QUEUE_LIMIT");
  ::unsetenv("PDC_SHED_POLICY");
  ::unsetenv("PDC_TENANT_WEIGHTS");
  EXPECT_EQ(TrafficConfig::from_env().seed, 42u);
  EXPECT_EQ(query::ServiceOptions::from_env().queue_limit, 0u);
}

// ------------------------------------------------------------- live burst

/// One imported float column plus interval queries with scan oracles.
class TrafficLiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/traffic_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);
    const ObjectId container =
        std::move(store_->create_container("traffic")).value();
    Rng rng(11);
    data_.resize(40000);
    for (auto& v : data_) v = static_cast<float>(rng.uniform(0.0, 10.0));
    obj::ImportOptions import;
    import.region_size_bytes = 4096;
    object_ = std::move(store_->import_object<float>(
                            container, "v", std::span<const float>(data_),
                            import))
                  .value();
    const std::pair<double, double> intervals[] = {
        {1.0, 9.0}, {4.5, 5.5}, {0.2, 0.3}, {7.9, 8.0}, {2.0, 6.0}};
    for (const auto& [lo, hi] : intervals) {
      TrafficQuery tq;
      tq.query = query::q_and(query::create(object_, QueryOp::kGT, lo),
                              query::create(object_, QueryOp::kLT, hi));
      tq.expected_hits = 0;
      for (float v : data_) {
        if (v > lo && v < hi) ++tq.expected_hits;
      }
      queries_.push_back(std::move(tq));
    }
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  std::vector<float> data_;
  ObjectId object_ = kInvalidObjectId;
  std::vector<TrafficQuery> queries_;
};

// The tentpole acceptance run, tier-1 sized: a 4x-capacity burst must shed
// explicitly (kOverloaded, not timeouts), keep transport queues inside the
// configured bound, answer every admitted query bit-identically to the
// scan oracle, and keep goodput at >= 70% of the pre-saturation level.
TEST_F(TrafficLiveTest, BurstShedsBoundedAndBitExact) {
  query::ServiceOptions options;
  options.num_servers = 4;
  options.eval_threads = 2;
  options.max_inflight = 2;
  options.queue_limit = 8;
  rpc::RetryPolicy retry;
  retry.attempt_timeout = std::chrono::milliseconds(250);
  // Few transport-level attempts: sustained sheds must surface to the
  // traffic driver as kOverloaded (exercising its retry-after loop)
  // instead of being absorbed by rpc-internal retries.
  retry.max_attempts = 2;
  retry.backoff_jitter = 0.5;
  options.retry = retry;
  query::QueryService service(*store_, options);

  const double capacity =
      TrafficDriver::measure_capacity_qps(service, queries_, 64, 4);
  ASSERT_GT(capacity, 0.0);

  TrafficConfig config;
  config.seed = 42;
  config.arrival = ArrivalProcess::kBursty;
  config.num_queries = 400;
  // Plenty of client threads: a client sleeping out a retry backoff
  // delays its own later arrivals, so thin clients would throttle the
  // offered load right when the burst should peak.
  config.num_clients = 32;
  config.max_retries = 15;
  config.retry_backoff_us = 300;

  TrafficDriver pre_driver(config);
  const TrafficReport pre = pre_driver.run_live(service, queries_, capacity);
  EXPECT_EQ(pre.mismatches, 0u);
  EXPECT_EQ(pre.failed, 0u);

  TrafficDriver burst_driver(config);
  const TrafficReport burst =
      burst_driver.run_live(service, queries_, 4.0 * capacity);
  // Bit-exactness: every admitted answer equals the scan oracle.
  EXPECT_EQ(burst.mismatches, 0u);
  // Overload surfaces as kOverloaded sheds, never as other errors.
  EXPECT_EQ(burst.failed, 0u);
  EXPECT_GT(burst.shed_retries, 0u);
  EXPECT_GT(burst.server_sheds, 0.0);
  // Admission and transport bounds hold under the burst.
  EXPECT_LE(burst.queue_peak, static_cast<double>(options.queue_limit));
  EXPECT_LE(burst.mailbox_peak,
            static_cast<double>(options.queue_limit) * 4.0 + 64.0);
  // All arrivals accounted for.
  EXPECT_EQ(burst.completed + burst.dropped + burst.failed, burst.offered);
  // Goodput does not collapse past saturation.
  EXPECT_GE(burst.goodput_qps, 0.7 * pre.goodput_qps)
      << "burst goodput " << burst.goodput_qps << " vs pre-saturation "
      << pre.goodput_qps;
  // The driver's own metrics recorded the run.
  const auto snap = burst_driver.metrics().snapshot();
  EXPECT_EQ(snap.value("traffic.offered", 0.0),
            static_cast<double>(burst.offered));
  EXPECT_GT(snap.value("traffic.shed_retries", 0.0), 0.0);
}

// Weighted-fair shares reach the live scheduler: under sustained overload
// with 3:1 weights, the heavy tenant's latency distribution sits below the
// light tenant's.
TEST_F(TrafficLiveTest, LiveWeightsFavourHeavyTenant) {
  query::ServiceOptions options;
  options.num_servers = 2;
  options.eval_threads = 2;
  options.max_inflight = 1;
  options.queue_limit = 16;
  options.tenant_weights = {3.0, 1.0};
  rpc::RetryPolicy retry;
  retry.attempt_timeout = std::chrono::milliseconds(250);
  retry.max_attempts = 8;
  retry.backoff_jitter = 0.5;
  options.retry = retry;
  query::QueryService service(*store_, options);

  const double capacity =
      TrafficDriver::measure_capacity_qps(service, queries_, 64, 4);
  ASSERT_GT(capacity, 0.0);

  TrafficConfig config;
  config.seed = 42;
  config.num_queries = 300;
  config.num_clients = 12;
  config.num_tenants = 2;
  config.max_retries = 20;
  config.retry_backoff_us = 500;
  TrafficDriver driver(config);
  const TrafficReport report =
      driver.run_live(service, queries_, 2.0 * capacity);
  EXPECT_EQ(report.mismatches, 0u);
  ASSERT_EQ(report.tenants.size(), 2u);
  // Wall-clock latencies are noisy, so only the ordering is asserted —
  // and only when the run actually saturated (sheds happened).
  if (report.shed_retries > 0) {
    EXPECT_LT(report.tenants[0].mean_s, report.tenants[1].mean_s * 1.25);
  }
}

}  // namespace
}  // namespace pdc
