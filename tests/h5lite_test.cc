// Tests for the h5lite container format and the HDF5-F full-scan baseline.
#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "common/rng.h"
#include "h5lite/full_scan.h"
#include "h5lite/h5lite.h"

namespace pdc::h5lite {
namespace {

class H5LiteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/h5lite_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    auto cluster = pfs::PfsCluster::Create(cfg);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
};

std::vector<float> make_floats(std::size_t n, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-10.0, 10.0));
  return v;
}

TEST_F(H5LiteTest, WriteReadRoundTrip) {
  auto floats = make_floats(10000);
  std::vector<std::int64_t> ints(500);
  for (std::size_t i = 0; i < ints.size(); ++i) {
    ints[i] = static_cast<std::int64_t>(i) - 250;
  }
  {
    auto writer = H5LiteWriter::Create(*cluster_, "test.h5");
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->add_dataset<float>("floats", floats).ok());
    ASSERT_TRUE(writer->add_dataset<std::int64_t>("ints", ints).ok());
    ASSERT_TRUE(writer->finish().ok());
  }
  auto reader = H5LiteReader::Open(*cluster_, "test.h5");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->datasets().size(), 2u);

  auto info = reader->dataset("floats");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_elements, 10000u);
  EXPECT_EQ(info->type, PdcType::kFloat);
  std::vector<float> back(10000);
  ASSERT_TRUE(reader->read<float>(*info, 0, back, {}).ok());
  EXPECT_EQ(back, floats);

  auto iinfo = reader->dataset("ints");
  ASSERT_TRUE(iinfo.ok());
  std::vector<std::int64_t> iback(100);
  ASSERT_TRUE(reader->read<std::int64_t>(*iinfo, 400, iback, {}).ok());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(iback[i], ints[400 + i]);
  }
}

TEST_F(H5LiteTest, TypeMismatchRejected) {
  auto floats = make_floats(100);
  auto writer = H5LiteWriter::Create(*cluster_, "t.h5");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->add_dataset<float>("d", floats).ok());
  ASSERT_TRUE(writer->finish().ok());
  auto reader = H5LiteReader::Open(*cluster_, "t.h5");
  ASSERT_TRUE(reader.ok());
  auto info = reader->dataset("d");
  std::vector<double> wrong(100);
  EXPECT_EQ(reader->read<double>(*info, 0, wrong, {}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(H5LiteTest, ReadBeyondDatasetRejected) {
  auto writer = H5LiteWriter::Create(*cluster_, "t2.h5");
  ASSERT_TRUE(writer.ok());
  auto floats = make_floats(100);
  ASSERT_TRUE(writer->add_dataset<float>("d", floats).ok());
  ASSERT_TRUE(writer->finish().ok());
  auto reader = H5LiteReader::Open(*cluster_, "t2.h5");
  auto info = reader->dataset("d");
  std::vector<float> out(50);
  EXPECT_EQ(reader->read<float>(*info, 60, out, {}).code(),
            StatusCode::kOutOfRange);
}

TEST_F(H5LiteTest, DuplicateDatasetRejected) {
  auto writer = H5LiteWriter::Create(*cluster_, "dup.h5");
  ASSERT_TRUE(writer.ok());
  auto floats = make_floats(10);
  ASSERT_TRUE(writer->add_dataset<float>("d", floats).ok());
  EXPECT_EQ(writer->add_dataset<float>("d", floats).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(H5LiteTest, WriteAfterFinishRejected) {
  auto writer = H5LiteWriter::Create(*cluster_, "fin.h5");
  ASSERT_TRUE(writer.ok());
  auto floats = make_floats(10);
  ASSERT_TRUE(writer->add_dataset<float>("d", floats).ok());
  ASSERT_TRUE(writer->finish().ok());
  EXPECT_EQ(writer->add_dataset<float>("e", floats).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->finish().code(), StatusCode::kFailedPrecondition);
}

TEST_F(H5LiteTest, CorruptFileRejected) {
  auto file = cluster_->create("junk.h5");
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> junk(64, 0xAA);
  ASSERT_TRUE(file->write(0, junk).ok());
  EXPECT_EQ(H5LiteReader::Open(*cluster_, "junk.h5").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(H5LiteReader::Open(*cluster_, "absent.h5").status().code(),
            StatusCode::kNotFound);
}

TEST_F(H5LiteTest, MissingDatasetIsNotFound) {
  auto writer = H5LiteWriter::Create(*cluster_, "m.h5");
  ASSERT_TRUE(writer.ok());
  auto floats = make_floats(10);
  ASSERT_TRUE(writer->add_dataset<float>("d", floats).ok());
  ASSERT_TRUE(writer->finish().ok());
  auto reader = H5LiteReader::Open(*cluster_, "m.h5");
  EXPECT_EQ(reader->dataset("nope").status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------- full scan

class FullScanTest : public H5LiteTest {
 protected:
  void write_data(std::size_t n) {
    energy_ = make_floats(n, 7);
    x_ = make_floats(n, 8);
    auto writer = H5LiteWriter::Create(*cluster_, "scan.h5");
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->add_dataset<float>("Energy", energy_).ok());
    ASSERT_TRUE(writer->add_dataset<float>("x", x_).ok());
    ASSERT_TRUE(writer->finish().ok());
    reader_.emplace(std::move(H5LiteReader::Open(*cluster_, "scan.h5")).value());
  }

  std::vector<float> energy_, x_;
  std::optional<H5LiteReader> reader_;
};

TEST_F(FullScanTest, SingleConditionMatchesBruteForce) {
  write_data(50000);
  ParallelFullScan scan(*cluster_, *reader_, 4);
  const std::vector<std::string> names{"Energy"};
  ASSERT_TRUE(scan.load(names).ok());
  EXPECT_GT(scan.load_elapsed_seconds(), 0.0);
  EXPECT_EQ(scan.bytes_loaded(), 50000u * sizeof(float));

  const ValueInterval q = ValueInterval::from_op(QueryOp::kGT, 5.0);
  std::vector<ScanCondition> conditions{{"Energy", q}};
  auto result = scan.scan(conditions, /*collect_positions=*/true);
  ASSERT_TRUE(result.ok());
  std::uint64_t truth = 0;
  std::vector<std::uint64_t> expect;
  for (std::size_t i = 0; i < energy_.size(); ++i) {
    if (q.contains(energy_[i])) {
      ++truth;
      expect.push_back(i);
    }
  }
  EXPECT_EQ(result->num_hits, truth);
  EXPECT_EQ(result->positions, expect);
  EXPECT_GT(result->scan_elapsed_s, 0.0);
}

TEST_F(FullScanTest, CompoundConditionIsConjunction) {
  write_data(30000);
  ParallelFullScan scan(*cluster_, *reader_, 3);
  const std::vector<std::string> names{"Energy", "x"};
  ASSERT_TRUE(scan.load(names).ok());
  const auto qe = ValueInterval::from_op(QueryOp::kGT, 3.0);
  const auto qx = ValueInterval::from_op(QueryOp::kLT, -2.0);
  std::vector<ScanCondition> conditions{{"Energy", qe}, {"x", qx}};
  auto result = scan.scan(conditions, false);
  ASSERT_TRUE(result.ok());
  std::uint64_t truth = 0;
  for (std::size_t i = 0; i < energy_.size(); ++i) {
    truth += qe.contains(energy_[i]) && qx.contains(x_[i]);
  }
  EXPECT_EQ(result->num_hits, truth);
  EXPECT_TRUE(result->positions.empty());
}

TEST_F(FullScanTest, ScanBeforeLoadRejected) {
  write_data(100);
  ParallelFullScan scan(*cluster_, *reader_, 2);
  std::vector<ScanCondition> conditions{
      {"Energy", ValueInterval::from_op(QueryOp::kGT, 0.0)}};
  EXPECT_EQ(scan.scan(conditions, false).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FullScanTest, UnknownColumnRejected) {
  write_data(100);
  ParallelFullScan scan(*cluster_, *reader_, 2);
  const std::vector<std::string> names{"Energy"};
  ASSERT_TRUE(scan.load(names).ok());
  std::vector<ScanCondition> conditions{
      {"zzz", ValueInterval::from_op(QueryOp::kGT, 0.0)}};
  EXPECT_EQ(scan.scan(conditions, false).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FullScanTest, MoreRanksSameAnswerLessSimTime) {
  write_data(60000);
  ParallelFullScan one(*cluster_, *reader_, 1);
  ParallelFullScan eight(*cluster_, *reader_, 8);
  const std::vector<std::string> names{"Energy"};
  ASSERT_TRUE(one.load(names).ok());
  ASSERT_TRUE(eight.load(names).ok());
  const auto q = ValueInterval::from_op(QueryOp::kLT, 0.0);
  std::vector<ScanCondition> conditions{{"Energy", q}};
  auto r1 = one.scan(conditions, false);
  auto r8 = eight.scan(conditions, false);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r8.ok());
  EXPECT_EQ(r1->num_hits, r8->num_hits);
  EXPECT_GT(r1->scan_elapsed_s, r8->scan_elapsed_s);
}

}  // namespace
}  // namespace pdc::h5lite
