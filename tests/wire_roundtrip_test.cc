// Round-trip and robustness tests for every type that crosses a wire:
// the four query-service messages, the serial primitives beneath them, the
// RPC envelope, and the serialized histogram / WAH bitvector / bitmap
// index.  Truncated and corrupted inputs must be rejected cleanly — never
// crash, never allocate unbounded memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bitmap/binned_index.h"
#include "bitmap/wah.h"
#include "common/serial.h"
#include "histogram/histogram.h"
#include "rpc/exchange.h"
#include "rpc/message_bus.h"
#include "server/wire.h"

namespace pdc::server {
namespace {

void expect_status_eq(const Status& a, const Status& b) {
  EXPECT_EQ(a.code(), b.code());
  EXPECT_EQ(a.message(), b.message());
}

void expect_interval_eq(const ValueInterval& a, const ValueInterval& b) {
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(a.lo_inclusive, b.lo_inclusive);
  EXPECT_EQ(a.hi_inclusive, b.hi_inclusive);
}

/// Every strict prefix of a well-formed message must fail to parse (all
/// length prefixes are validated against the bytes actually present).
template <typename Parse>
void expect_all_prefixes_fail(const std::vector<std::uint8_t>& bytes,
                              Parse parse) {
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix{bytes.data(), len};
    SerialReader r(prefix);
    EXPECT_FALSE(parse(r)) << "prefix of length " << len << " parsed";
  }
}

/// Flipping any single byte must never crash the parser (success or clean
/// failure are both acceptable).
template <typename Parse>
void expect_no_crash_on_byte_flips(const std::vector<std::uint8_t>& bytes,
                                   Parse parse) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[i] ^= 0xFF;
    SerialReader r(mutated);
    (void)parse(r);
  }
}

EvalRequest sample_eval_request() {
  EvalRequest req;
  req.strategy = Strategy::kSortedHistogram;
  req.need_locations = true;
  req.region_constraint = {128, 4096};
  AndTerm t1;
  t1.driver_replica = 42;
  t1.conjuncts.push_back({7, ValueInterval::from_op(QueryOp::kGT, 2.5)});
  t1.conjuncts.push_back({8, ValueInterval::from_op(QueryOp::kLTE, 9.75)});
  AndTerm t2;
  t2.conjuncts.push_back({9, ValueInterval::from_op(QueryOp::kEQ, -1.0)});
  req.terms = {t1, t2};
  req.act_as = {1u, 2u, 5u};
  return req;
}

EvalResponse sample_eval_response() {
  EvalResponse resp;
  resp.status = Status::NotFound("object 9 missing");
  resp.num_hits = 12345;
  resp.has_positions = true;
  resp.positions = {1, 5, 7, 4096, 1ull << 40};
  resp.sorted_extents = {{0, 16}, {100, 3}};
  resp.replica_id = 77;
  resp.ledger = {1.5, 0.25, 1ull << 30, 42};
  resp.regions_scanned = 3;
  resp.regions_indexed = 5;
  resp.regions_allhit = 2;
  return resp;
}

GetDataRequest sample_get_data_request() {
  GetDataRequest req;
  req.object = 11;
  req.from_replica = true;
  req.positions = {3, 9, 27};
  req.extents = {{10, 20}, {50, 1}};
  return req;
}

GetDataResponse sample_get_data_response() {
  GetDataResponse resp;
  resp.status = Status::IoError("ost 3 unreachable");
  resp.values = {0x00, 0xFF, 0x10, 0x7F, 0x80};
  resp.ledger = {0.125, 2.0, 4096, 7};
  return resp;
}

// ------------------------------------------------------------ round trips

TEST(WireRoundTrip, EvalRequest) {
  const EvalRequest req = sample_eval_request();
  const std::vector<std::uint8_t> bytes = req.serialize();
  SerialReader r(bytes);
  const auto back = EvalRequest::Deserialize(r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->strategy, req.strategy);
  EXPECT_EQ(back->need_locations, req.need_locations);
  EXPECT_EQ(back->region_constraint, req.region_constraint);
  EXPECT_EQ(back->act_as, req.act_as);
  ASSERT_EQ(back->terms.size(), req.terms.size());
  for (std::size_t t = 0; t < req.terms.size(); ++t) {
    EXPECT_EQ(back->terms[t].driver_replica, req.terms[t].driver_replica);
    ASSERT_EQ(back->terms[t].conjuncts.size(),
              req.terms[t].conjuncts.size());
    for (std::size_t c = 0; c < req.terms[t].conjuncts.size(); ++c) {
      EXPECT_EQ(back->terms[t].conjuncts[c].object,
                req.terms[t].conjuncts[c].object);
      expect_interval_eq(back->terms[t].conjuncts[c].interval,
                         req.terms[t].conjuncts[c].interval);
    }
  }
}

TEST(WireRoundTrip, EvalRequestEveryStrategy) {
  for (const Strategy s :
       {Strategy::kFullScan, Strategy::kHistogram, Strategy::kHistogramIndex,
        Strategy::kSortedHistogram}) {
    EvalRequest req;
    req.strategy = s;
    const auto bytes = req.serialize();
    SerialReader r(bytes);
    const auto back = EvalRequest::Deserialize(r);
    ASSERT_TRUE(back.ok()) << strategy_name(s);
    EXPECT_EQ(back->strategy, s);
  }
}

TEST(WireRoundTrip, EvalResponse) {
  const EvalResponse resp = sample_eval_response();
  const auto bytes = resp.serialize();
  SerialReader r(bytes);
  const auto back = EvalResponse::Deserialize(r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  expect_status_eq(back->status, resp.status);
  EXPECT_EQ(back->num_hits, resp.num_hits);
  EXPECT_EQ(back->has_positions, resp.has_positions);
  EXPECT_EQ(back->positions, resp.positions);
  EXPECT_EQ(back->sorted_extents, resp.sorted_extents);
  EXPECT_EQ(back->replica_id, resp.replica_id);
  EXPECT_EQ(back->ledger.io_seconds, resp.ledger.io_seconds);
  EXPECT_EQ(back->ledger.cpu_seconds, resp.ledger.cpu_seconds);
  EXPECT_EQ(back->ledger.bytes_read, resp.ledger.bytes_read);
  EXPECT_EQ(back->ledger.read_ops, resp.ledger.read_ops);
  EXPECT_EQ(back->regions_scanned, resp.regions_scanned);
  EXPECT_EQ(back->regions_indexed, resp.regions_indexed);
  EXPECT_EQ(back->regions_allhit, resp.regions_allhit);
}

// A v1 payload (no region-choice trailer) must parse with zeroed counts:
// mixed-version deployments stay interoperable.
TEST(WireRoundTrip, EvalResponseLegacyPayloadParsesWithZeroCounts) {
  auto bytes = sample_eval_response().serialize();
  bytes.resize(bytes.size() - 3 * sizeof(std::uint64_t));
  SerialReader r(bytes);
  const auto back = EvalResponse::Deserialize(r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_hits, sample_eval_response().num_hits);
  EXPECT_EQ(back->regions_scanned, 0u);
  EXPECT_EQ(back->regions_indexed, 0u);
  EXPECT_EQ(back->regions_allhit, 0u);
}

TEST(WireRoundTrip, EvalResponseDefaultIsOk) {
  const EvalResponse resp;  // Ok status, nothing set
  const auto bytes = resp.serialize();
  SerialReader r(bytes);
  const auto back = EvalResponse::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->status.ok());
  EXPECT_EQ(back->num_hits, 0u);
  EXPECT_FALSE(back->has_positions);
  EXPECT_TRUE(back->positions.empty());
}

TEST(WireRoundTrip, GetDataRequestBothModes) {
  for (const bool from_replica : {false, true}) {
    GetDataRequest req = sample_get_data_request();
    req.from_replica = from_replica;
    const auto bytes = req.serialize();
    SerialReader r(bytes);
    const auto back = GetDataRequest::Deserialize(r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->object, req.object);
    EXPECT_EQ(back->from_replica, req.from_replica);
    EXPECT_EQ(back->positions, req.positions);
    EXPECT_EQ(back->extents, req.extents);
  }
}

TEST(WireRoundTrip, GetDataResponse) {
  const GetDataResponse resp = sample_get_data_response();
  const auto bytes = resp.serialize();
  SerialReader r(bytes);
  const auto back = GetDataResponse::Deserialize(r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  expect_status_eq(back->status, resp.status);
  EXPECT_EQ(back->values, resp.values);
  EXPECT_EQ(back->ledger.bytes_read, resp.ledger.bytes_read);
}

// ------------------------------------------------------- type dispatching

TEST(WireTypes, PeekRequestType) {
  const auto eval = sample_eval_request().serialize();
  const auto data = sample_get_data_request().serialize();
  ASSERT_TRUE(peek_request_type(eval).ok());
  EXPECT_EQ(*peek_request_type(eval), RequestType::kEvalQuery);
  ASSERT_TRUE(peek_request_type(data).ok());
  EXPECT_EQ(*peek_request_type(data), RequestType::kGetData);

  EXPECT_FALSE(peek_request_type({}).ok());
  const std::vector<std::uint8_t> unknown{0x7F, 0x00};
  EXPECT_FALSE(peek_request_type(unknown).ok());
  const std::vector<std::uint8_t> zero{0x00};
  EXPECT_FALSE(peek_request_type(zero).ok());
}

TEST(WireTypes, CrossParseRejected) {
  const auto eval = sample_eval_request().serialize();
  const auto data = sample_get_data_request().serialize();
  {
    SerialReader r(data);
    EXPECT_FALSE(EvalRequest::Deserialize(r).ok());
  }
  {
    SerialReader r(eval);
    EXPECT_FALSE(GetDataRequest::Deserialize(r).ok());
  }
}

TEST(WireTypes, InvalidStrategyRejected) {
  auto bytes = sample_eval_request().serialize();
  bytes[1] = 0x07;  // strategy byte past kSortedHistogram
  SerialReader r(bytes);
  EXPECT_FALSE(EvalRequest::Deserialize(r).ok());
}

TEST(WireTypes, InvalidStatusCodeRejected) {
  auto bytes = sample_eval_response().serialize();
  bytes[0] = 0xC8;  // status code byte: 200 is not a StatusCode
  SerialReader r(bytes);
  EXPECT_FALSE(EvalResponse::Deserialize(r).ok());
}

// ------------------------------------------------- truncation / corruption

TEST(WireTruncation, EveryStrictPrefixFails) {
  expect_all_prefixes_fail(sample_eval_request().serialize(),
                           [](SerialReader& r) {
                             return EvalRequest::Deserialize(r).ok();
                           });
  // EvalResponse has one legal strict prefix: the payload minus its v2
  // trailer (regions_scanned/indexed/allhit) is exactly a v1 response and
  // MUST keep parsing (version tolerance).  Every other prefix fails.
  {
    const auto bytes = sample_eval_response().serialize();
    const std::size_t v1_len = bytes.size() - 3 * sizeof(std::uint64_t);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      const std::span<const std::uint8_t> prefix{bytes.data(), len};
      SerialReader r(prefix);
      const bool parsed = EvalResponse::Deserialize(r).ok();
      EXPECT_EQ(parsed, len == v1_len)
          << "prefix of length " << len << (parsed ? " parsed" : " rejected");
    }
  }
  expect_all_prefixes_fail(sample_get_data_request().serialize(),
                           [](SerialReader& r) {
                             return GetDataRequest::Deserialize(r).ok();
                           });
  expect_all_prefixes_fail(sample_get_data_response().serialize(),
                           [](SerialReader& r) {
                             return GetDataResponse::Deserialize(r).ok();
                           });
}

TEST(WireTruncation, ByteFlipsNeverCrash) {
  expect_no_crash_on_byte_flips(sample_eval_request().serialize(),
                                [](SerialReader& r) {
                                  return EvalRequest::Deserialize(r).ok();
                                });
  expect_no_crash_on_byte_flips(sample_eval_response().serialize(),
                                [](SerialReader& r) {
                                  return EvalResponse::Deserialize(r).ok();
                                });
  expect_no_crash_on_byte_flips(sample_get_data_request().serialize(),
                                [](SerialReader& r) {
                                  return GetDataRequest::Deserialize(r).ok();
                                });
  expect_no_crash_on_byte_flips(sample_get_data_response().serialize(),
                                [](SerialReader& r) {
                                  return GetDataResponse::Deserialize(r).ok();
                                });
}

// -------------------------------------------------------- serial primitives

TEST(SerialPrimitives, ScalarStringVectorRoundTrip) {
  SerialWriter w;
  w.put<std::uint8_t>(0xAB);
  w.put<std::uint32_t>(0xDEADBEEFu);
  w.put<std::uint64_t>(1ull << 60);
  w.put<double>(-0.5);
  w.put_string(std::string("with\0nul", 8));
  const std::vector<std::uint64_t> vec{1, 2, 3};
  w.put_vector(vec);
  const std::vector<std::uint8_t> blob{9, 8, 7};
  w.put_bytes(blob);
  const auto bytes = w.take();

  SerialReader r(bytes);
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  double d = 0;
  std::string s;
  std::vector<std::uint64_t> v;
  std::span<const std::uint8_t> view;
  ASSERT_TRUE(r.get(u8).ok());
  ASSERT_TRUE(r.get(u32).ok());
  ASSERT_TRUE(r.get(u64).ok());
  ASSERT_TRUE(r.get(d).ok());
  ASSERT_TRUE(r.get_string(s).ok());
  ASSERT_TRUE(r.get_vector(v).ok());
  ASSERT_TRUE(r.get_bytes_view(view).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 1ull << 60);
  EXPECT_EQ(d, -0.5);
  EXPECT_EQ(s, std::string("with\0nul", 8));
  EXPECT_EQ(v, vec);
  ASSERT_EQ(view.size(), blob.size());
  EXPECT_EQ(std::memcmp(view.data(), blob.data(), blob.size()), 0);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerialPrimitives, HostileLengthPrefixDoesNotAllocate) {
  // A u64 length of ~2^64 followed by 4 real bytes: each read must reject
  // before resizing anything.
  SerialWriter w;
  w.put<std::uint64_t>(std::numeric_limits<std::uint64_t>::max() - 8);
  w.put<std::uint32_t>(0);
  const auto bytes = w.take();

  {
    SerialReader r(bytes);
    std::string s;
    EXPECT_EQ(r.get_string(s).code(), StatusCode::kCorruption);
  }
  {
    SerialReader r(bytes);
    std::vector<std::uint64_t> v;
    EXPECT_EQ(r.get_vector(v).code(), StatusCode::kCorruption);
  }
  {
    SerialReader r(bytes);
    std::span<const std::uint8_t> view;
    EXPECT_EQ(r.get_bytes_view(view).code(), StatusCode::kCorruption);
  }
}

TEST(SerialPrimitives, ScalarUnderrun) {
  const std::vector<std::uint8_t> three{1, 2, 3};
  SerialReader r(three);
  std::uint64_t u = 0;
  EXPECT_EQ(r.get(u).code(), StatusCode::kCorruption);
}

// ----------------------------------------------------------- rpc envelope

TEST(EnvelopeTransport, WrapUnwrapRoundTrip) {
  rpc::Envelope header;
  header.request_id = 0xFEEDFACE;
  header.attempt = 3;
  header.deadline_us = 123456789;
  const std::vector<std::uint8_t> payload{'h', 'e', 'l', 'l', 'o', 0x00,
                                          0xFF};
  const auto frame = rpc::envelope_wrap(header, payload);

  rpc::Envelope got;
  std::span<const std::uint8_t> got_payload;
  ASSERT_TRUE(rpc::envelope_unwrap(frame, got, got_payload));
  EXPECT_EQ(got.request_id, header.request_id);
  EXPECT_EQ(got.attempt, header.attempt);
  EXPECT_EQ(got.deadline_us, header.deadline_us);
  ASSERT_EQ(got_payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(got_payload.data(), payload.data(), payload.size()),
            0);
}

/// Overload-control fields: the tenant identity (weighted-fair scheduler
/// key) and the flags word (kFlagShed marks a shed reply, whose payload is
/// the retry-after hint) must survive the wire unchanged.
TEST(EnvelopeTransport, TenantAndFlagsRoundTrip) {
  rpc::Envelope header;
  header.request_id = 11;
  header.attempt = 2;
  header.tenant = 0xDEADBEEF;
  header.flags = rpc::kFlagShed | 0x80u;
  header.deadline_us = 999;
  const std::uint64_t retry_after_us = 4321;
  std::vector<std::uint8_t> payload(sizeof(retry_after_us));
  std::memcpy(payload.data(), &retry_after_us, sizeof(retry_after_us));
  const auto frame = rpc::envelope_wrap(header, payload);

  rpc::Envelope got;
  std::span<const std::uint8_t> got_payload;
  ASSERT_TRUE(rpc::envelope_unwrap(frame, got, got_payload));
  EXPECT_EQ(got.tenant, header.tenant);
  EXPECT_EQ(got.flags, header.flags);
  EXPECT_NE(got.flags & rpc::kFlagShed, 0u);
  ASSERT_EQ(got_payload.size(), sizeof(retry_after_us));
  std::uint64_t got_hint = 0;
  std::memcpy(&got_hint, got_payload.data(), sizeof(got_hint));
  EXPECT_EQ(got_hint, retry_after_us);

  // A default envelope reads back tenant 0 / no flags — untagged traffic
  // stays untagged.
  rpc::Envelope plain;
  const auto plain_frame = rpc::envelope_wrap(plain, {});
  rpc::Envelope got_plain;
  std::span<const std::uint8_t> got_plain_payload;
  ASSERT_TRUE(rpc::envelope_unwrap(plain_frame, got_plain,
                                   got_plain_payload));
  EXPECT_EQ(got_plain.tenant, 0u);
  EXPECT_EQ(got_plain.flags, 0u);
}

TEST(EnvelopeTransport, ChecksumCatchesPayloadCorruption) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  auto frame = rpc::envelope_wrap({}, payload);
  frame.back() ^= 0x01;  // payload bytes sit at the end of the frame
  rpc::Envelope header;
  std::span<const std::uint8_t> got;
  EXPECT_FALSE(rpc::envelope_unwrap(frame, header, got));
}

TEST(EnvelopeTransport, TruncatedFramesRejected) {
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const auto frame = rpc::envelope_wrap({}, payload);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    rpc::Envelope header;
    std::span<const std::uint8_t> got;
    EXPECT_FALSE(rpc::envelope_unwrap({frame.data(), len}, header, got))
        << "prefix of length " << len << " accepted";
  }
}

/// The v2 frame carries trace propagation fields plus optional trailing
/// trace baggage (serialized spans a server ships back to the client).
TEST(EnvelopeTransport, TraceBaggageRoundTrip) {
  rpc::Envelope header;
  header.request_id = 42;
  header.attempt = 1;
  header.trace_id = 0xABCDEF0123456789ull;
  header.parent_span = 0x1122334455667788ull;
  const std::vector<std::uint8_t> payload{9, 8, 7};
  const std::vector<std::uint8_t> baggage{'s', 'p', 'a', 'n', 's', 0x00};
  const auto frame = rpc::envelope_wrap(header, payload, baggage);

  rpc::Envelope got;
  std::span<const std::uint8_t> got_payload;
  std::span<const std::uint8_t> got_baggage;
  ASSERT_TRUE(rpc::envelope_unwrap(frame, got, got_payload, got_baggage));
  EXPECT_EQ(got.trace_id, header.trace_id);
  EXPECT_EQ(got.parent_span, header.parent_span);
  ASSERT_EQ(got_payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(got_payload.data(), payload.data(), payload.size()),
            0);
  ASSERT_EQ(got_baggage.size(), baggage.size());
  EXPECT_EQ(std::memcmp(got_baggage.data(), baggage.data(), baggage.size()),
            0);

  // The 3-arg overload still parses the same frame (baggage ignored).
  rpc::Envelope got3;
  std::span<const std::uint8_t> got3_payload;
  ASSERT_TRUE(rpc::envelope_unwrap(frame, got3, got3_payload));
  EXPECT_EQ(got3.trace_id, header.trace_id);
  ASSERT_EQ(got3_payload.size(), payload.size());
}

/// The checksum covers the trace baggage too: corrupting any byte of the
/// frame — header fields, payload, or baggage — loses the whole frame.
TEST(EnvelopeTransport, ChecksumCoversTraceBaggage) {
  rpc::Envelope header;
  header.trace_id = 7;
  header.parent_span = 9;
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const std::vector<std::uint8_t> baggage{4, 5, 6, 7};
  const auto frame = rpc::envelope_wrap(header, payload, baggage);
  // Flip the final byte (inside the baggage region).
  auto mutated = frame;
  mutated.back() ^= 0x01;
  rpc::Envelope got;
  std::span<const std::uint8_t> got_payload;
  std::span<const std::uint8_t> got_baggage;
  EXPECT_FALSE(rpc::envelope_unwrap(mutated, got, got_payload, got_baggage));
  // Every strict prefix must also be rejected.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(
        rpc::envelope_unwrap({frame.data(), len}, got, got_payload,
                             got_baggage))
        << "prefix of length " << len << " accepted";
  }
}

// --------------------------------------------------- metrics RPC messages

obs::MetricsSnapshot sample_snapshot() {
  obs::MetricsRegistry registry;
  registry.counter("bus.drops").add(17);
  registry.gauge("cache.bytes").set(123456.5);
  auto& h = registry.histogram("server0.eval_seconds");
  h.observe(0.000'5);
  h.observe(0.02);
  h.observe(4.0);
  return registry.snapshot();
}

TEST(WireRoundTrip, MetricsRequestAndResponse) {
  {
    MetricsRequest request;
    const auto bytes = request.serialize();
    const auto type = peek_request_type(bytes);
    ASSERT_TRUE(type.ok());
    EXPECT_EQ(*type, RequestType::kMetrics);
    SerialReader r(bytes);
    auto got = MetricsRequest::Deserialize(r);
    ASSERT_TRUE(got.ok());
  }
  MetricsResponse response;
  response.status = Status::Ok();
  response.snapshot = sample_snapshot();
  const auto bytes = response.serialize();

  SerialReader r(bytes);
  auto got = MetricsResponse::Deserialize(r);
  ASSERT_TRUE(got.ok());
  expect_status_eq(got->status, response.status);
  ASSERT_EQ(got->snapshot.samples.size(), response.snapshot.samples.size());
  for (std::size_t i = 0; i < response.snapshot.samples.size(); ++i) {
    const auto& want = response.snapshot.samples[i];
    const auto& have = got->snapshot.samples[i];
    EXPECT_EQ(have.name, want.name);
    EXPECT_EQ(have.kind, want.kind);
    EXPECT_EQ(have.value, want.value);
    EXPECT_EQ(have.count, want.count);
    EXPECT_EQ(have.buckets, want.buckets);
  }
}

TEST(WireTruncation, MetricsResponseEveryStrictPrefixFails) {
  MetricsResponse response;
  response.snapshot = sample_snapshot();
  const auto bytes = response.serialize();
  expect_all_prefixes_fail(bytes, [](SerialReader& r) {
    return MetricsResponse::Deserialize(r).ok();
  });
  expect_no_crash_on_byte_flips(bytes, [](SerialReader& r) {
    return MetricsResponse::Deserialize(r).ok();
  });
}

// ------------------------------------------- serialized index structures

bitmap::WahBitVector sample_wah() {
  bitmap::WahBitVector v;
  v.append_run(false, 100);
  v.append_run(true, 62);
  for (int i = 0; i < 45; ++i) v.append_bit(i % 3 == 0);
  v.append_run(true, 31 * 5);
  v.append_bit(false);
  return v;
}

TEST(SerializedStructures, WahRoundTripAndTruncation) {
  const bitmap::WahBitVector v = sample_wah();
  ASSERT_TRUE(v.check_invariants().ok());
  SerialWriter w;
  v.serialize(w);
  const auto bytes = w.take();
  {
    SerialReader r(bytes);
    const auto back = bitmap::WahBitVector::Deserialize(r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(back->check_invariants().ok());
  }
  expect_all_prefixes_fail(bytes, [](SerialReader& r) {
    return bitmap::WahBitVector::Deserialize(r).ok();
  });
  expect_no_crash_on_byte_flips(bytes, [](SerialReader& r) {
    return bitmap::WahBitVector::Deserialize(r).ok();
  });
}

TEST(SerializedStructures, HistogramRoundTripAndTruncation) {
  std::vector<float> data;
  for (int i = 0; i < 500; ++i) {
    data.push_back(static_cast<float>(i % 97) * 0.25f);
  }
  data.push_back(std::numeric_limits<float>::quiet_NaN());
  const auto h = hist::MergeableHistogram::Build<float>(data);
  SerialWriter w;
  h.serialize(w);
  const auto bytes = w.take();
  {
    SerialReader r(bytes);
    const auto back = hist::MergeableHistogram::Deserialize(r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, h);
  }
  expect_all_prefixes_fail(bytes, [](SerialReader& r) {
    return hist::MergeableHistogram::Deserialize(r).ok();
  });
  expect_no_crash_on_byte_flips(bytes, [](SerialReader& r) {
    return hist::MergeableHistogram::Deserialize(r).ok();
  });
}

TEST(SerializedStructures, BinnedIndexRoundTripAndTruncation) {
  std::vector<float> data;
  for (int i = 0; i < 1024; ++i) {
    data.push_back(static_cast<float>((i * 37) % 211) * 0.5f);
  }
  const auto index = bitmap::BinnedBitmapIndex::Build<float>(data);
  SerialWriter w;
  index.serialize(w);
  const auto bytes = w.take();

  SerialReader r(bytes);
  const auto back = bitmap::BinnedBitmapIndex::Deserialize(r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_elements(), index.num_elements());
  EXPECT_EQ(back->num_bins(), index.num_bins());
  EXPECT_EQ(back->compressed_bytes(), index.compressed_bytes());
  // Probes must decompose identically after the round trip.
  for (const double lo : {0.0, 10.0, 52.5, 105.0}) {
    const auto q = ValueInterval::from_op(QueryOp::kGT, lo);
    const auto a = index.probe(q);
    const auto b = back->probe(q);
    EXPECT_EQ(a.definite, b.definite);
    EXPECT_EQ(a.candidates, b.candidates);
  }

  expect_all_prefixes_fail(bytes, [](SerialReader& r2) {
    return bitmap::BinnedBitmapIndex::Deserialize(r2).ok();
  });
  expect_no_crash_on_byte_flips(bytes, [](SerialReader& r2) {
    return bitmap::BinnedBitmapIndex::Deserialize(r2).ok();
  });
}

// ------------------------------------------- scatter/gather (zero-copy)

// The GatherWriter contract: any interleaving of eager puts and borrowed
// _ref puts assembles to exactly the bytes the all-eager SerialWriter
// encoding produces.  Serialization happens exactly once, at take().
TEST(GatherWriter, MixedOpsByteIdenticalToSerialWriter) {
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  const std::vector<std::uint64_t> vec{7, 8, 9, 1ull << 50};
  const std::vector<std::uint8_t> empty;

  SerialWriter legacy;
  legacy.put<std::uint32_t>(0xABCD1234u);
  legacy.put_bytes(blob);
  legacy.put_string("hello");
  legacy.put_vector(vec);
  legacy.put_raw(blob);
  legacy.put_bytes(empty);
  legacy.put<double>(-2.5);
  const auto want = legacy.take();

  GatherWriter gather;
  gather.put<std::uint32_t>(0xABCD1234u);
  gather.put_bytes_ref(blob);  // borrowed
  gather.put_string("hello");
  gather.put_vector_ref(std::span<const std::uint64_t>(vec));  // borrowed
  gather.put_raw_ref(blob);                                    // borrowed
  gather.put_bytes_ref(empty);  // empty span: prefix only, no segment
  gather.put<double>(-2.5);
  EXPECT_EQ(gather.size(), want.size());
  EXPECT_EQ(gather.borrowed_segments(), 3u);
  const auto got = gather.take();
  EXPECT_EQ(got, want);

  // take() resets the writer: a second assembly is empty.
  EXPECT_EQ(gather.size(), 0u);
  EXPECT_TRUE(gather.take().empty());
}

// GetDataResponse in its zero-copy form (value_parts + pins) must emit the
// exact bytes of the legacy owned-values form — for any chunking.
TEST(GatherWriter, GetDataResponsePartsByteIdenticalToValues) {
  std::vector<std::uint8_t> payload(301);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  GetDataResponse legacy;
  legacy.status = Status::Ok();
  legacy.values = payload;
  legacy.ledger = {0.5, 0.25, 12345, 3, 0.1, 0.05, 0.02};
  const auto want = legacy.serialize();

  for (const std::size_t nparts : {1u, 2u, 3u, 7u}) {
    GetDataResponse zc;
    zc.status = Status::Ok();
    zc.ledger = legacy.ledger;
    auto pin = std::make_shared<std::vector<std::uint8_t>>(payload);
    const std::size_t chunk = (payload.size() + nparts - 1) / nparts;
    for (std::size_t off = 0; off < payload.size(); off += chunk) {
      const std::size_t len = std::min(chunk, payload.size() - off);
      zc.value_parts.emplace_back(pin->data() + off, len);
    }
    zc.pins.push_back(pin);
    EXPECT_EQ(zc.values_size(), payload.size());
    EXPECT_EQ(zc.serialize(), want) << "nparts=" << nparts;
  }

  // And the round trip materializes the same values on the client side.
  GetDataResponse zc;
  auto pin = std::make_shared<std::vector<std::uint8_t>>(payload);
  zc.value_parts.emplace_back(pin->data(), pin->size());
  zc.pins.push_back(pin);
  zc.ledger = legacy.ledger;
  const auto bytes = zc.serialize();
  SerialReader r(bytes);
  const auto back = GetDataResponse::Deserialize(r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->values, payload);
  EXPECT_EQ(back->ledger.merge_seconds, legacy.ledger.merge_seconds);
}

// EvalResponse now rides the gather path; its bytes must equal the legacy
// all-eager encoding, field for field (v2 trailer included).
TEST(GatherWriter, EvalResponseByteIdenticalToLegacyEncoding) {
  for (const bool with_trailer : {false, true}) {
    EvalResponse resp = sample_eval_response();
    if (!with_trailer) {
      resp.regions_scanned = resp.regions_indexed = resp.regions_allhit = 0;
    }
    SerialWriter w;  // hand-rolled legacy copy-path encoding
    w.put(static_cast<std::uint8_t>(resp.status.code()));
    w.put_string(resp.status.message());
    w.put(resp.num_hits);
    w.put<std::uint8_t>(resp.has_positions ? 1 : 0);
    w.put_vector(resp.positions);
    w.put<std::uint64_t>(resp.sorted_extents.size());
    for (const Extent1D& e : resp.sorted_extents) {
      w.put(e.offset);
      w.put(e.count);
    }
    w.put(resp.replica_id);
    w.put(resp.ledger.io_seconds);
    w.put(resp.ledger.cpu_seconds);
    w.put(resp.ledger.bytes_read);
    w.put(resp.ledger.read_ops);
    w.put(resp.ledger.scan_seconds);
    w.put(resp.ledger.decode_seconds);
    w.put(resp.ledger.merge_seconds);
    if (with_trailer) {
      w.put(resp.regions_scanned);
      w.put(resp.regions_indexed);
      w.put(resp.regions_allhit);
    }
    EXPECT_EQ(resp.serialize(), w.take()) << "with_trailer=" << with_trailer;
  }
}

// WAH blobs: the GatherWriter overload of serialize() must produce the
// bytes of the SerialWriter overload exactly.
TEST(GatherWriter, WahSerializeByteIdenticalToLegacy) {
  const bitmap::WahBitVector v = sample_wah();
  SerialWriter legacy;
  v.serialize(legacy);
  GatherWriter gather;
  v.serialize(gather);
  EXPECT_EQ(gather.borrowed_segments(), 1u);
  const auto got = gather.take();
  EXPECT_EQ(got, legacy.take());
  // ... and still deserializes to the same vector.
  SerialReader r(got);
  const auto back = bitmap::WahBitVector::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, v);
}

// Truncation/corruption robustness of the parts-form payload.  Since the
// bytes are identical to the values form this mostly re-checks the parser,
// but it pins the property against the zero-copy producer specifically.
TEST(GatherWriter, PartsFormTruncationAndCorruptionRejected) {
  GetDataResponse zc;
  auto pin = std::make_shared<std::vector<std::uint8_t>>(64, 0x5A);
  zc.value_parts.emplace_back(pin->data(), pin->size());
  zc.pins.push_back(pin);
  const auto bytes = zc.serialize();
  expect_all_prefixes_fail(bytes, [](SerialReader& r) {
    return GetDataResponse::Deserialize(r).ok();
  });
  expect_no_crash_on_byte_flips(bytes, [](SerialReader& r) {
    return GetDataResponse::Deserialize(r).ok();
  });
}

// A borrowed span must stay alive until take().  Violations are invisible
// in a plain build (freed heap often still readable) but are hard errors
// under ASan — this death test documents and enforces that contract in
// -DPDC_SANITIZE=address / address-undefined builds.
#if defined(__SANITIZE_ADDRESS__)
#define PDC_HAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PDC_HAS_ASAN 1
#endif
#endif
#ifndef PDC_HAS_ASAN
#define PDC_HAS_ASAN 0
#endif

// ---------------------------------------------------- write-path messages

TransferWriteRequest sample_transfer_write_request(WriteKind kind) {
  TransferWriteRequest req;
  req.object = 17;
  req.kind = kind;
  req.extent = {4096, 16};
  req.write_seq = 99;
  req.payload_storage = {0x01, 0x02, 0x03, 0x7F, 0x80, 0xFF, 0x00, 0x41};
  req.payload = req.payload_storage;
  return req;
}

TransferWriteResponse sample_transfer_write_response() {
  TransferWriteResponse resp;
  resp.status = Status::OutOfRange("overwrite extent beyond object");
  resp.data_epoch = 7;
  resp.regions_touched = 3;
  resp.duplicate = true;
  resp.compacted = true;
  resp.ledger = {0.5, 0.125, 1ull << 20, 9};
  return resp;
}

TEST(WireRoundTrip, TransferWriteRequestBothKinds) {
  for (const WriteKind kind : {WriteKind::kAppend, WriteKind::kOverwrite}) {
    const TransferWriteRequest req = sample_transfer_write_request(kind);
    const auto bytes = req.serialize();
    SerialReader r(bytes);
    const auto back = TransferWriteRequest::Deserialize(r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->object, req.object);
    EXPECT_EQ(back->kind, req.kind);
    EXPECT_EQ(back->extent, req.extent);
    EXPECT_EQ(back->write_seq, req.write_seq);
    EXPECT_EQ(back->payload_storage, req.payload_storage);
    // The deserialized payload span must alias its own storage.
    ASSERT_EQ(back->payload.size(), req.payload_storage.size());
    EXPECT_EQ(back->payload.data(), back->payload_storage.data());
  }
}

TEST(WireRoundTrip, TransferWriteResponse) {
  const TransferWriteResponse resp = sample_transfer_write_response();
  const auto bytes = resp.serialize();
  SerialReader r(bytes);
  const auto back = TransferWriteResponse::Deserialize(r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  expect_status_eq(back->status, resp.status);
  EXPECT_EQ(back->data_epoch, resp.data_epoch);
  EXPECT_EQ(back->regions_touched, resp.regions_touched);
  EXPECT_EQ(back->duplicate, resp.duplicate);
  EXPECT_EQ(back->compacted, resp.compacted);
  EXPECT_EQ(back->ledger.bytes_read, resp.ledger.bytes_read);
  EXPECT_EQ(back->ledger.read_ops, resp.ledger.read_ops);
}

TEST(WireTypes, PeekTransferWriteAndCrossParseRejected) {
  const auto bytes =
      sample_transfer_write_request(WriteKind::kOverwrite).serialize();
  ASSERT_TRUE(peek_request_type(bytes).ok());
  EXPECT_EQ(*peek_request_type(bytes), RequestType::kTransferWrite);
  {
    SerialReader r(bytes);
    EXPECT_FALSE(EvalRequest::Deserialize(r).ok());
  }
  {
    SerialReader r(bytes);
    EXPECT_FALSE(GetDataRequest::Deserialize(r).ok());
  }
  {
    const auto eval = sample_eval_request().serialize();
    SerialReader r(eval);
    EXPECT_FALSE(TransferWriteRequest::Deserialize(r).ok());
  }
}

TEST(WireTypes, InvalidWriteKindRejected) {
  auto bytes =
      sample_transfer_write_request(WriteKind::kOverwrite).serialize();
  bytes[9] = 0x07;  // kind byte sits after type (u8) + object (u64)
  SerialReader r(bytes);
  EXPECT_FALSE(TransferWriteRequest::Deserialize(r).ok());
}

TEST(WireTruncation, TransferWriteEveryStrictPrefixFails) {
  expect_all_prefixes_fail(
      sample_transfer_write_request(WriteKind::kAppend).serialize(),
      [](SerialReader& r) {
        return TransferWriteRequest::Deserialize(r).ok();
      });
  expect_all_prefixes_fail(sample_transfer_write_response().serialize(),
                           [](SerialReader& r) {
                             return TransferWriteResponse::Deserialize(r).ok();
                           });
}

TEST(WireTruncation, TransferWriteByteFlipsNeverCrash) {
  expect_no_crash_on_byte_flips(
      sample_transfer_write_request(WriteKind::kOverwrite).serialize(),
      [](SerialReader& r) {
        return TransferWriteRequest::Deserialize(r).ok();
      });
  expect_no_crash_on_byte_flips(sample_transfer_write_response().serialize(),
                                [](SerialReader& r) {
                                  return TransferWriteResponse::Deserialize(r)
                                      .ok();
                                });
}

// EvalResponse v3 trailer (regions_stale / max_data_epoch): emitted only
// when non-zero so read-only deployments stay byte-identical to v2, a v2
// payload parses with zeroed staleness fields, and the only legal strict
// prefixes of a v3 payload are exactly the v2 and v1 encodings.
TEST(WireRoundTrip, EvalResponseStaleTrailerRoundTrip) {
  EvalResponse resp = sample_eval_response();
  resp.regions_stale = 4;
  resp.max_data_epoch = 12;
  const auto bytes = resp.serialize();
  {
    SerialReader r(bytes);
    const auto back = EvalResponse::Deserialize(r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->regions_stale, 4u);
    EXPECT_EQ(back->max_data_epoch, 12u);
    EXPECT_EQ(back->num_hits, resp.num_hits);
  }
  // Read-only responses carry no v3 trailer: byte-identical to v2.
  const auto v2_bytes = sample_eval_response().serialize();
  EXPECT_EQ(bytes.size(), v2_bytes.size() + 2 * sizeof(std::uint64_t));
  EXPECT_TRUE(std::equal(v2_bytes.begin(), v2_bytes.end(), bytes.begin()));

  const std::size_t v2_len = bytes.size() - 2 * sizeof(std::uint64_t);
  const std::size_t v1_len = v2_len - 3 * sizeof(std::uint64_t);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix{bytes.data(), len};
    SerialReader r(prefix);
    const auto back = EvalResponse::Deserialize(r);
    EXPECT_EQ(back.ok(), len == v1_len || len == v2_len)
        << "prefix of length " << len;
    if (back.ok()) {
      // Older encodings parse with zeroed newer fields.
      EXPECT_EQ(back->regions_stale, 0u);
      EXPECT_EQ(back->max_data_epoch, 0u);
      if (len == v1_len) EXPECT_EQ(back->regions_scanned, 0u);
    }
  }
}

TEST(GatherWriterDeathTest, BorrowedSpanOutlivingBufferIsCaughtByAsan) {
  if (!PDC_HAS_ASAN) {
    GTEST_SKIP() << "span-lifetime enforcement needs an ASan build "
                    "(-DPDC_SANITIZE=address or address-undefined)";
  }
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        GatherWriter w;
        {
          std::vector<std::uint8_t> doomed(256, 0xAB);
          w.put_bytes_ref(doomed);
        }  // doomed freed; the writer still borrows its storage
        const auto bytes = w.take();  // reads freed memory -> ASan aborts
        (void)bytes;
      },
      "heap-use-after-free");
}

// TransferWriteRequest::serialize borrows `payload` the same way: the
// span must point at live storage when serialize() assembles the wire
// bytes.  Enforced under ASan like the GatherWriter contract above.
TEST(GatherWriterDeathTest, TransferWritePayloadOutlivingBufferIsCaught) {
  if (!PDC_HAS_ASAN) {
    GTEST_SKIP() << "span-lifetime enforcement needs an ASan build "
                    "(-DPDC_SANITIZE=address or address-undefined)";
  }
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        TransferWriteRequest req;
        req.object = 1;
        req.kind = WriteKind::kAppend;
        {
          std::vector<std::uint8_t> doomed(256, 0xCD);
          req.payload = doomed;
        }  // doomed freed; the request still borrows its storage
        const auto bytes = req.serialize();  // reads freed memory
        (void)bytes;
      },
      "heap-use-after-free");
}

// ----------------------------------------------------------- join messages

JoinEvalRequest sample_join_eval_request() {
  JoinEvalRequest req;
  req.join_id = 0xABCDEF01u;
  req.epoch = 3;
  req.strategy = JoinStrategy::kBroadcast;
  req.eval_strategy = Strategy::kFullScan;
  req.object_a = 11;
  req.object_b = 12;
  req.epsilon = 0.25;
  req.zone_height = 0.5;
  req.filter_a = ValueInterval::from_op(QueryOp::kGT, 1.5);
  req.filter_b = ValueInterval::from_op(QueryOp::kLTE, 9.0);
  req.participants = {0u, 1u, 2u, 3u};
  req.act_as = {1u, 3u};
  return req;
}

JoinEvalResponse sample_join_eval_response() {
  JoinEvalResponse resp;
  resp.zones.push_back({-4, {{1, 2}, {1, 7}, {3, 2}}});
  resp.zones.push_back({9, {{5, 5}}});
  resp.ledger = {0.25, 0.5, 1024, 3};
  resp.shuffle_bytes_sent = 4096;
  resp.shuffle_msgs_sent = 7;
  resp.shuffle_retransmits = 1;
  resp.shuffle_rounds = 1;
  resp.candidates_a = 42;
  resp.candidates_b = 77;
  return resp;
}

rpc::ExchangeFrame sample_exchange_batch() {
  rpc::ExchangeFrame f;
  f.kind = rpc::ExchangeFrameKind::kBatch;
  f.join_id = 0x1122334455667788u;
  f.epoch = 2;
  f.from = 1;
  f.seq = 5;
  f.side = rpc::kSideB;
  f.tuple_storage = {{-3, -1.5, 10}, {0, 0.0, 11}, {7, 3.75, 12}};
  f.tuples = f.tuple_storage;
  return f;
}

TEST(WireRoundTrip, JoinEvalRequest) {
  const JoinEvalRequest req = sample_join_eval_request();
  const auto bytes = req.serialize();
  SerialReader r(bytes);
  const auto back = JoinEvalRequest::Deserialize(r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->join_id, req.join_id);
  EXPECT_EQ(back->epoch, req.epoch);
  EXPECT_EQ(back->strategy, req.strategy);
  EXPECT_EQ(back->eval_strategy, req.eval_strategy);
  EXPECT_EQ(back->object_a, req.object_a);
  EXPECT_EQ(back->object_b, req.object_b);
  EXPECT_EQ(back->epsilon, req.epsilon);
  EXPECT_EQ(back->zone_height, req.zone_height);
  expect_interval_eq(back->filter_a, req.filter_a);
  expect_interval_eq(back->filter_b, req.filter_b);
  EXPECT_EQ(back->participants, req.participants);
  EXPECT_EQ(back->act_as, req.act_as);
}

TEST(WireRoundTrip, JoinEvalResponse) {
  const JoinEvalResponse resp = sample_join_eval_response();
  const auto bytes = resp.serialize();
  SerialReader r(bytes);
  const auto back = JoinEvalResponse::Deserialize(r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  expect_status_eq(back->status, resp.status);
  ASSERT_EQ(back->zones.size(), resp.zones.size());
  for (std::size_t z = 0; z < resp.zones.size(); ++z) {
    EXPECT_EQ(back->zones[z].zone, resp.zones[z].zone);
    ASSERT_EQ(back->zones[z].pairs.size(), resp.zones[z].pairs.size());
    for (std::size_t i = 0; i < resp.zones[z].pairs.size(); ++i) {
      EXPECT_EQ(back->zones[z].pairs[i].left_pos,
                resp.zones[z].pairs[i].left_pos);
      EXPECT_EQ(back->zones[z].pairs[i].right_pos,
                resp.zones[z].pairs[i].right_pos);
    }
  }
  EXPECT_EQ(back->ledger.io_seconds, resp.ledger.io_seconds);
  EXPECT_EQ(back->shuffle_bytes_sent, resp.shuffle_bytes_sent);
  EXPECT_EQ(back->shuffle_msgs_sent, resp.shuffle_msgs_sent);
  EXPECT_EQ(back->shuffle_retransmits, resp.shuffle_retransmits);
  EXPECT_EQ(back->shuffle_rounds, resp.shuffle_rounds);
  EXPECT_EQ(back->candidates_a, resp.candidates_a);
  EXPECT_EQ(back->candidates_b, resp.candidates_b);
}

TEST(WireRoundTrip, ExchangeFrameAllKinds) {
  {
    const rpc::ExchangeFrame f = sample_exchange_batch();
    const auto bytes = f.serialize();
    SerialReader r(bytes);
    const auto back = rpc::ExchangeFrame::Deserialize(r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->kind, f.kind);
    EXPECT_EQ(back->join_id, f.join_id);
    EXPECT_EQ(back->epoch, f.epoch);
    EXPECT_EQ(back->from, f.from);
    EXPECT_EQ(back->seq, f.seq);
    EXPECT_EQ(back->side, f.side);
    ASSERT_EQ(back->tuples.size(), f.tuple_storage.size());
    // The deserialized span must alias its own storage.
    EXPECT_EQ(back->tuples.data(), back->tuple_storage.data());
    for (std::size_t i = 0; i < f.tuple_storage.size(); ++i) {
      EXPECT_EQ(back->tuples[i].zone, f.tuple_storage[i].zone);
      EXPECT_EQ(back->tuples[i].value, f.tuple_storage[i].value);
      EXPECT_EQ(back->tuples[i].pos, f.tuple_storage[i].pos);
    }
  }
  {
    rpc::ExchangeFrame eos;
    eos.kind = rpc::ExchangeFrameKind::kEos;
    eos.join_id = 9;
    eos.epoch = 1;
    eos.from = 2;
    eos.seq = rpc::kEosSeq;
    eos.batches_total = 17;
    const auto bytes = eos.serialize();
    SerialReader r(bytes);
    const auto back = rpc::ExchangeFrame::Deserialize(r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->kind, rpc::ExchangeFrameKind::kEos);
    EXPECT_EQ(back->seq, rpc::kEosSeq);
    EXPECT_EQ(back->batches_total, 17u);
    EXPECT_TRUE(back->tuples.empty());
  }
  {
    rpc::ExchangeFrame ack;
    ack.kind = rpc::ExchangeFrameKind::kAck;
    ack.join_id = 9;
    ack.epoch = 1;
    ack.from = 3;
    ack.seq = 4;
    const auto bytes = ack.serialize();
    SerialReader r(bytes);
    const auto back = rpc::ExchangeFrame::Deserialize(r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->kind, rpc::ExchangeFrameKind::kAck);
    EXPECT_EQ(back->from, 3u);
    EXPECT_EQ(back->seq, 4u);
  }
}

TEST(WireTypes, PeekJoinAndExchangeTypes) {
  const auto join_bytes = sample_join_eval_request().serialize();
  ASSERT_TRUE(peek_request_type(join_bytes).ok());
  EXPECT_EQ(*peek_request_type(join_bytes), RequestType::kJoinEval);

  const auto frame_bytes = sample_exchange_batch().serialize();
  ASSERT_TRUE(peek_request_type(frame_bytes).ok());
  EXPECT_EQ(*peek_request_type(frame_bytes), RequestType::kExchange);

  EXPECT_EQ(join_strategy_name(JoinStrategy::kZoneShuffle), "zone");
  EXPECT_EQ(join_strategy_name(JoinStrategy::kBroadcast), "broadcast");
}

TEST(WireTypes, InvalidJoinStrategyRejected) {
  auto bytes = sample_join_eval_request().serialize();
  // Strategy byte sits after type (u8) + join_id (u64) + epoch (u32).
  bytes[13] = 0x09;
  SerialReader r(bytes);
  EXPECT_FALSE(JoinEvalRequest::Deserialize(r).ok());
}

TEST(WireTypes, JoinCrossParseRejected) {
  const auto join_bytes = sample_join_eval_request().serialize();
  {
    SerialReader r(join_bytes);
    EXPECT_FALSE(EvalRequest::Deserialize(r).ok());
  }
  {
    SerialReader r(join_bytes);
    EXPECT_FALSE(rpc::ExchangeFrame::Deserialize(r).ok());
  }
  {
    const auto eval = sample_eval_request().serialize();
    SerialReader r(eval);
    EXPECT_FALSE(JoinEvalRequest::Deserialize(r).ok());
  }
  {
    const auto frame = sample_exchange_batch().serialize();
    SerialReader r(frame);
    EXPECT_FALSE(JoinEvalRequest::Deserialize(r).ok());
  }
}

TEST(WireTruncation, JoinEveryStrictPrefixFails) {
  expect_all_prefixes_fail(sample_join_eval_request().serialize(),
                           [](SerialReader& r) {
                             return JoinEvalRequest::Deserialize(r).ok();
                           });
  expect_all_prefixes_fail(sample_join_eval_response().serialize(),
                           [](SerialReader& r) {
                             return JoinEvalResponse::Deserialize(r).ok();
                           });
  expect_all_prefixes_fail(sample_exchange_batch().serialize(),
                           [](SerialReader& r) {
                             return rpc::ExchangeFrame::Deserialize(r).ok();
                           });
}

TEST(WireTruncation, JoinByteFlipsNeverCrash) {
  expect_no_crash_on_byte_flips(sample_join_eval_request().serialize(),
                                [](SerialReader& r) {
                                  return JoinEvalRequest::Deserialize(r).ok();
                                });
  expect_no_crash_on_byte_flips(sample_join_eval_response().serialize(),
                                [](SerialReader& r) {
                                  return JoinEvalResponse::Deserialize(r).ok();
                                });
  expect_no_crash_on_byte_flips(sample_exchange_batch().serialize(),
                                [](SerialReader& r) {
                                  return rpc::ExchangeFrame::Deserialize(r)
                                      .ok();
                                });
}

// ExchangeFrame::serialize borrows `tuples` exactly like GatherWriter's
// put_vector_ref (it IS that mechanism): the span must outlive wire
// assembly.  Enforced under ASan like the other borrowed-span contracts.
TEST(GatherWriterDeathTest, ExchangeTupleSpanOutlivingBufferIsCaught) {
  if (!PDC_HAS_ASAN) {
    GTEST_SKIP() << "span-lifetime enforcement needs an ASan build "
                    "(-DPDC_SANITIZE=address or address-undefined)";
  }
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        rpc::ExchangeFrame f;
        f.kind = rpc::ExchangeFrameKind::kBatch;
        f.join_id = 1;
        {
          std::vector<rpc::JoinTuple> doomed(64, rpc::JoinTuple{1, 2.0, 3});
          f.tuples = doomed;
        }  // doomed freed; the frame still borrows its storage
        const auto bytes = f.serialize();  // reads freed memory
        (void)bytes;
      },
      "heap-use-after-free");
}

// ------------------------------------------- metadata service messages

// The samples are deliberately hostile: attribute bytes >= 0x80 (bucket
// routing is byte-exact, not ASCII), a literal '*' value (the kind field
// is the wildcard, the byte never is), an embedded NUL, and int64s at the
// edges of the domain (2^53 straddle, INT64_MIN/MAX).
MetaQueryRequest sample_meta_query_request() {
  MetaQueryRequest req;
  req.conditions.push_back({"RADEG", QueryOp::kEQ, 153.17,
                            meta::MetaMatchKind::kValue});
  req.conditions.push_back({std::string("run\xC3\xA9", 5), QueryOp::kEQ,
                            std::string("*"), meta::MetaMatchKind::kPrefix});
  req.conditions.push_back({std::string("n\0l", 3), QueryOp::kGT,
                            std::int64_t{9007199254740993LL},
                            meta::MetaMatchKind::kValue});
  req.conditions.push_back({"tail", QueryOp::kEQ,
                            std::string("\x80\xFF suffix"),
                            meta::MetaMatchKind::kSuffix});
  req.vnodes = {{0}, {7, 31}, {0, 1, 2}, {255}};
  return req;
}

MetaQueryResponse sample_meta_query_response() {
  MetaQueryResponse resp;
  resp.status = Status::FailedPrecondition("vnode 31 not owned here");
  resp.postings = {{1, 5, 1ull << 40}, {}, {2}, {3, 4}};
  resp.epochs = {{0u, 3ull}, {31u, 1ull << 33}};
  resp.probes = 1234;
  resp.ledger = {0.0, 0.5, 0, 0, 0.0, 0.0, 0.25};
  return resp;
}

MetaUpdateRequest sample_meta_update_request() {
  MetaUpdateRequest req;
  req.vnode = 19;
  req.seq = 1ull << 50;
  MetaUpdateOpWire with_old;
  with_old.object = 7;
  with_old.attribute = "RUN";
  with_old.has_old = true;
  with_old.old_value = std::string("r5_\xE2\x98\x83");
  with_old.new_value = std::int64_t{std::numeric_limits<std::int64_t>::min()};
  MetaUpdateOpWire fresh;
  fresh.object = 1ull << 45;
  fresh.attribute = std::string("a*b");
  fresh.new_value = -0.0;
  req.ops = {with_old, fresh};
  return req;
}

MetaUpdateResponse sample_meta_update_response() {
  MetaUpdateResponse resp;
  resp.status = Status();
  resp.epoch = 42;
  resp.duplicate = true;
  resp.ledger = {0.0, 0.125, 0, 0, 0.0, 0.0, 0.125};
  return resp;
}

void expect_meta_value_eq(const meta::MetaValue& a, const meta::MetaValue& b) {
  ASSERT_EQ(a.index(), b.index());
  EXPECT_EQ(a, b);
}

TEST(WireRoundTrip, MetaQueryRequest) {
  const MetaQueryRequest req = sample_meta_query_request();
  const auto bytes = req.serialize();
  SerialReader r(bytes);
  const auto parsed = MetaQueryRequest::Deserialize(r);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().conditions.size(), req.conditions.size());
  for (std::size_t i = 0; i < req.conditions.size(); ++i) {
    EXPECT_EQ(parsed.value().conditions[i].attribute,
              req.conditions[i].attribute);
    EXPECT_EQ(parsed.value().conditions[i].op, req.conditions[i].op);
    EXPECT_EQ(parsed.value().conditions[i].kind, req.conditions[i].kind);
    expect_meta_value_eq(parsed.value().conditions[i].value,
                         req.conditions[i].value);
  }
  EXPECT_EQ(parsed.value().vnodes, req.vnodes);
}

TEST(WireRoundTrip, MetaQueryResponse) {
  const MetaQueryResponse resp = sample_meta_query_response();
  const auto bytes = resp.serialize();
  SerialReader r(bytes);
  const auto parsed = MetaQueryResponse::Deserialize(r);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  expect_status_eq(parsed.value().status, resp.status);
  EXPECT_EQ(parsed.value().postings, resp.postings);
  EXPECT_EQ(parsed.value().epochs, resp.epochs);
  EXPECT_EQ(parsed.value().probes, resp.probes);
  EXPECT_EQ(parsed.value().ledger.merge_seconds, resp.ledger.merge_seconds);
}

TEST(WireRoundTrip, MetaUpdateRequestAndResponse) {
  const MetaUpdateRequest req = sample_meta_update_request();
  {
    const auto bytes = req.serialize();
    SerialReader r(bytes);
    const auto parsed = MetaUpdateRequest::Deserialize(r);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed.value().vnode, req.vnode);
    EXPECT_EQ(parsed.value().seq, req.seq);
    ASSERT_EQ(parsed.value().ops.size(), req.ops.size());
    for (std::size_t i = 0; i < req.ops.size(); ++i) {
      EXPECT_EQ(parsed.value().ops[i].object, req.ops[i].object);
      EXPECT_EQ(parsed.value().ops[i].attribute, req.ops[i].attribute);
      EXPECT_EQ(parsed.value().ops[i].has_old, req.ops[i].has_old);
      if (req.ops[i].has_old) {
        expect_meta_value_eq(parsed.value().ops[i].old_value,
                             req.ops[i].old_value);
      }
      expect_meta_value_eq(parsed.value().ops[i].new_value,
                           req.ops[i].new_value);
    }
  }
  const MetaUpdateResponse resp = sample_meta_update_response();
  const auto bytes = resp.serialize();
  SerialReader r(bytes);
  const auto parsed = MetaUpdateResponse::Deserialize(r);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  expect_status_eq(parsed.value().status, resp.status);
  EXPECT_EQ(parsed.value().epoch, resp.epoch);
  EXPECT_EQ(parsed.value().duplicate, resp.duplicate);
}

TEST(WireTypes, PeekMetaTypesAndCrossParseRejected) {
  const auto query_bytes = sample_meta_query_request().serialize();
  const auto update_bytes = sample_meta_update_request().serialize();
  EXPECT_EQ(peek_request_type(query_bytes).value(), RequestType::kMetaQuery);
  EXPECT_EQ(peek_request_type(update_bytes).value(),
            RequestType::kMetaUpdate);
  {
    SerialReader r(query_bytes);
    EXPECT_FALSE(MetaUpdateRequest::Deserialize(r).ok());
  }
  {
    SerialReader r(update_bytes);
    EXPECT_FALSE(MetaQueryRequest::Deserialize(r).ok());
  }
  {
    SerialReader r(query_bytes);
    EXPECT_FALSE(EvalRequest::Deserialize(r).ok());
  }
}

TEST(WireTruncation, MetaEveryStrictPrefixFails) {
  expect_all_prefixes_fail(sample_meta_query_request().serialize(),
                           [](SerialReader& r) {
                             return MetaQueryRequest::Deserialize(r).ok();
                           });
  expect_all_prefixes_fail(sample_meta_query_response().serialize(),
                           [](SerialReader& r) {
                             return MetaQueryResponse::Deserialize(r).ok();
                           });
  expect_all_prefixes_fail(sample_meta_update_request().serialize(),
                           [](SerialReader& r) {
                             return MetaUpdateRequest::Deserialize(r).ok();
                           });
  expect_all_prefixes_fail(sample_meta_update_response().serialize(),
                           [](SerialReader& r) {
                             return MetaUpdateResponse::Deserialize(r).ok();
                           });
}

TEST(WireTruncation, MetaByteFlipsNeverCrash) {
  expect_no_crash_on_byte_flips(sample_meta_query_request().serialize(),
                                [](SerialReader& r) {
                                  return MetaQueryRequest::Deserialize(r).ok();
                                });
  expect_no_crash_on_byte_flips(sample_meta_query_response().serialize(),
                                [](SerialReader& r) {
                                  return MetaQueryResponse::Deserialize(r)
                                      .ok();
                                });
  expect_no_crash_on_byte_flips(sample_meta_update_request().serialize(),
                                [](SerialReader& r) {
                                  return MetaUpdateRequest::Deserialize(r)
                                      .ok();
                                });
  expect_no_crash_on_byte_flips(sample_meta_update_response().serialize(),
                                [](SerialReader& r) {
                                  return MetaUpdateResponse::Deserialize(r)
                                      .ok();
                                });
}

// The MetaStore checkpoint ("periodically persisted to the storage
// system") must reject truncation and trailing garbage the same way the
// wire messages do: a damaged checkpoint is a load error, never a
// silently smaller catalog.
TEST(WireTruncation, MetaStoreCheckpointRejectsTruncationAndTrailingBytes) {
  meta::MetaStore store;
  store.set_attribute(1, "RUN", std::string("r5_\xC3\xA9*"));
  store.set_attribute(1, "PLATE", std::int64_t{9007199254740993LL});
  store.set_attribute(2, "RADEG", 153.17);
  SerialWriter w;
  store.serialize(w);
  const std::vector<std::uint8_t> bytes = w.take();

  {  // intact round trip first, so the rejections below mean something
    SerialReader r(bytes);
    meta::MetaStore loaded;
    ASSERT_TRUE(loaded.load(r).ok());
    EXPECT_EQ(loaded.num_objects(), store.num_objects());
    EXPECT_EQ(loaded.query_tag("RADEG", 153.17),
              (std::vector<ObjectId>{2}));
  }
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::span<const std::uint8_t> prefix{bytes.data(), len};
    SerialReader r(prefix);
    meta::MetaStore loaded;
    EXPECT_FALSE(loaded.load(r).ok()) << "prefix of length " << len;
  }
  {
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0x00);
    SerialReader r(padded);
    meta::MetaStore loaded;
    EXPECT_FALSE(loaded.load(r).ok()) << "trailing byte accepted";
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {  // flips never crash
    std::vector<std::uint8_t> mutated = bytes;
    mutated[i] ^= 0xFF;
    SerialReader r(mutated);
    meta::MetaStore loaded;
    (void)loaded.load(r);
  }
}

}  // namespace
}  // namespace pdc::server
