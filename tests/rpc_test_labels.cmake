foreach(t IN LISTS rpc_test_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tsan")
endforeach()
