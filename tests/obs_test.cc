// Observability test battery (PR 4).
//
// Three layers:
//   1. Unit tests of the obs primitives: tracer lifecycle, validation
//      failure modes, wire/file round-trips, Chrome JSON export, metric
//      instruments and snapshot serialization.
//   2. End-to-end span-tree invariants across all four strategies and pool
//      widths 1/4/8: every span closed and nested, per-query span counts
//      match the number of RPCs issued and regions evaluated, span-summed
//      stage times reconcile with OpStats (testing::check_trace_stats).
//   3. Overhead guarantees: tracing changes no simulated cost (bit-equal
//      sim_elapsed_seconds traced vs. untraced) and the disabled-path
//      instrumentation branch is cheap enough for the <=2% budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/service.h"
#include "sortrep/sorted_replica.h"
#include "testing/invariants.h"
#include "testing/querycheck.h"

namespace pdc {
namespace {

using query::QueryOptions;
using query::QueryService;
using query::ServiceOptions;
using server::Strategy;

// --------------------------------------------------------------- helpers

std::size_t count_spans(const obs::Trace& trace, std::string_view name) {
  std::size_t n = 0;
  for (const obs::Span& span : trace.spans) {
    if (span.name == name) ++n;
  }
  return n;
}

double sum_span_arg(const obs::Trace& trace, std::string_view span_name,
                    std::string_view arg) {
  double sum = 0.0;
  for (const obs::Span& span : trace.spans) {
    if (span.name == span_name) sum += span.arg(arg);
  }
  return sum;
}

// ---------------------------------------------------------- tracer units

TEST(TraceUnit, TracerCollectsWellFormedTree) {
  obs::Tracer tracer(obs::next_id());
  const obs::SpanId root = tracer.begin(0, "client.query", "client");
  const obs::SpanId child = tracer.begin(root, "rpc.gather", "client");
  tracer.add_arg(child, "retries", 0.0);
  tracer.end(child);
  tracer.end(root);

  const obs::Trace trace = tracer.take();
  EXPECT_EQ(trace.spans.size(), 2u);
  EXPECT_TRUE(obs::validate_trace(trace).ok());
  EXPECT_EQ(tracer.span_count(), 0u);  // take() empties the tracer
}

TEST(TraceUnit, ValidationCatchesUnclosedSpan) {
  obs::Tracer tracer(obs::next_id());
  const obs::SpanId root = tracer.begin(0, "client.query", "client");
  tracer.begin(root, "rpc.gather", "client");  // never ended
  tracer.end(root);
  const Status st = obs::validate_trace(tracer.take());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("never closed"), std::string::npos)
      << st.ToString();
}

TEST(TraceUnit, ValidationCatchesMissingParentAndEscapedNesting) {
  obs::Trace trace;
  trace.trace_id = 7;
  trace.spans.push_back({.id = 1, .parent = 99, .start_us = 0, .end_us = 1,
                         .name = "orphan", .actor = "x", .args = {}});
  EXPECT_FALSE(obs::validate_trace(trace).ok());

  trace.spans.clear();
  trace.spans.push_back({.id = 1, .parent = 0, .start_us = 100, .end_us = 200,
                         .name = "parent", .actor = "x", .args = {}});
  trace.spans.push_back({.id = 2, .parent = 1, .start_us = 150, .end_us = 250,
                         .name = "child", .actor = "x", .args = {}});
  EXPECT_FALSE(obs::validate_trace(trace).ok());  // child escapes parent
  obs::ValidateOptions lenient;
  lenient.require_nesting = false;
  EXPECT_TRUE(obs::validate_trace(trace, lenient).ok());
  lenient.require_nesting = true;
  lenient.nesting_slack_us = 50;
  EXPECT_TRUE(obs::validate_trace(trace, lenient).ok());
}

TEST(TraceUnit, AdoptSkipsDuplicateSpanIds) {
  obs::Tracer tracer(obs::next_id());
  const obs::SpanId root = tracer.begin(0, "client.query", "client");
  tracer.end(root);
  std::vector<obs::Span> remote;
  remote.push_back({.id = 500, .parent = root, .start_us = 1, .end_us = 2,
                    .name = "server.handle", .actor = "server0", .args = {}});
  tracer.adopt(remote);
  tracer.adopt(remote);  // duplicate blob (a retried response)
  const obs::Trace trace = tracer.take();
  EXPECT_EQ(trace.spans.size(), 2u);
  // Structural validity only: the synthetic timestamps don't nest.
  EXPECT_TRUE(
      obs::validate_trace(trace, {.require_nesting = false}).ok());
}

TEST(TraceUnit, SpanBlobRoundTrip) {
  obs::Tracer tracer(obs::next_id());
  const obs::SpanId root = tracer.begin(0, "server.handle", "server3");
  const obs::SpanId child = tracer.begin(root, "server.eval", "server3");
  tracer.add_arg(child, "elapsed_s", 0.125);
  tracer.add_arg(child, "bytes", 4096.0);
  tracer.end(child);
  tracer.end(root);
  const obs::Trace original = tracer.take();

  const std::vector<std::uint8_t> blob = obs::serialize_spans(original.spans);
  std::vector<obs::Span> decoded;
  ASSERT_TRUE(obs::deserialize_spans(blob, decoded).ok());
  ASSERT_EQ(decoded.size(), original.spans.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].id, original.spans[i].id);
    EXPECT_EQ(decoded[i].parent, original.spans[i].parent);
    EXPECT_EQ(decoded[i].start_us, original.spans[i].start_us);
    EXPECT_EQ(decoded[i].end_us, original.spans[i].end_us);
    EXPECT_EQ(decoded[i].name, original.spans[i].name);
    EXPECT_EQ(decoded[i].actor, original.spans[i].actor);
    EXPECT_EQ(decoded[i].args, original.spans[i].args);
  }

  // Corrupted blobs must fail loudly, not crash.
  std::vector<std::uint8_t> truncated(blob.begin(),
                                      blob.begin() + blob.size() / 2);
  std::vector<obs::Span> scratch;
  EXPECT_FALSE(obs::deserialize_spans(truncated, scratch).ok());
}

TEST(TraceUnit, TraceFileRoundTrip) {
  obs::Tracer tracer(obs::next_id());
  const obs::SpanId root = tracer.begin(0, "client.query", "client");
  tracer.add_arg(root, "num_hits", 42.0);
  tracer.end(root);
  obs::Trace original = tracer.take();

  const std::string path = ::testing::TempDir() + "/obs_roundtrip.pdctrace";
  ASSERT_TRUE(obs::write_trace_file(original, path).ok());
  Result<obs::Trace> reread = obs::read_trace_file(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_EQ(reread->trace_id, original.trace_id);
  ASSERT_EQ(reread->spans.size(), 1u);
  EXPECT_EQ(reread->spans[0].name, "client.query");
  EXPECT_EQ(reread->spans[0].arg("num_hits"), 42.0);
  std::filesystem::remove(path);

  EXPECT_FALSE(obs::read_trace_file("/nonexistent/trace").ok());
}

TEST(TraceUnit, ChromeJsonShape) {
  obs::Tracer tracer(obs::next_id());
  const obs::SpanId root = tracer.begin(0, "client.query", "client");
  const obs::SpanId child = tracer.begin(root, "server.eval", "server\"1\"");
  tracer.end(child);
  tracer.end(root);
  const std::string json = obs::chrome_trace_json(tracer.take());

  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"client.query\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Quotes in actor names must be escaped (valid JSON).
  EXPECT_NE(json.find("server\\\"1\\\""), std::string::npos);
  // Balanced braces is a cheap proxy for structural validity.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceUnit, DisabledInstrumentationIsCheap) {
  // Untraced operations hit every instrumentation point with a disabled
  // context: one null check, no locks, no allocation.  The loop below
  // covers the cost of ~10 queries' worth of instrumentation per
  // microsecond; the assert is a generous ceiling that still fails if the
  // disabled path ever grows a lock or an allocation (both >= tens of ns).
  constexpr int kIters = 1'000'000;
  const obs::TraceContext disabled;
  WallTimer timer;
  for (int i = 0; i < kIters; ++i) {
    obs::ScopedSpan span(disabled, "region", "server0");
    span.arg("bytes", static_cast<double>(i));
    asm volatile("" : : "r"(&span) : "memory");
  }
  const double per_op_ns = timer.elapsed_seconds() * 1e9 / kIters;
  EXPECT_LT(per_op_ns, 250.0) << "disabled span cost " << per_op_ns << " ns";
}

// --------------------------------------------------------- metrics units

TEST(MetricsUnit, InstrumentsAndSnapshot) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("server0.eval_requests");
  c.add();
  c.add(4);
  EXPECT_EQ(&c, &registry.counter("server0.eval_requests"));  // stable ref
  registry.gauge("pool.threads").set(8.0);
  obs::LatencyHistogram& h = registry.histogram("server0.eval_seconds");
  h.observe(5e-7);   // bucket 0 (< 1 us)
  h.observe(5e-3);   // < 1e-2
  h.observe(100.0);  // overflow bucket
  double polled = 17.0;
  registry.gauge_fn("bus.bytes", [&polled] { return polled; });

  obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_TRUE(std::is_sorted(snap.samples.begin(), snap.samples.end(),
                             [](const auto& a, const auto& b) {
                               return a.name < b.name;
                             }));
  EXPECT_EQ(snap.value("server0.eval_requests"), 5.0);
  EXPECT_EQ(snap.value("pool.threads"), 8.0);
  EXPECT_EQ(snap.value("bus.bytes"), 17.0);
  EXPECT_EQ(snap.value("missing", -1.0), -1.0);
  EXPECT_EQ(snap.find("missing"), nullptr);

  const obs::MetricSample* hist = snap.find("server0.eval_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(hist->count, 3u);
  EXPECT_NEAR(hist->value, 100.0 + 5e-3 + 5e-7, 1e-12);
  ASSERT_EQ(hist->buckets.size(), obs::LatencyHistogram::kNumBuckets);
  EXPECT_EQ(hist->buckets.front(), 1u);
  EXPECT_EQ(hist->buckets.back(), 1u);

  // gauge_fn polls at snapshot time, not registration time.
  polled = 99.0;
  EXPECT_EQ(registry.snapshot().value("bus.bytes"), 99.0);
}

// Percentile extraction against a known distribution: 1000 samples
// uniform over [0, 1e-2) put 90% of the mass in the [1e-3, 1e-2) bucket,
// where linear interpolation recovers the true quantiles exactly (a
// uniform in-bucket distribution is the interpolation's model).
TEST(MetricsUnit, HistogramQuantilesMatchKnownDistribution) {
  obs::LatencyHistogram hist;
  for (int i = 0; i < 1000; ++i) hist.observe(i * 1e-5);
  EXPECT_NEAR(hist.quantile(0.50), 5e-3, 1e-4);
  EXPECT_NEAR(hist.quantile(0.95), 9.5e-3, 1e-4);
  EXPECT_NEAR(hist.quantile(0.99), 9.9e-3, 1e-4);
  // Quantiles are monotone in q.
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = hist.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  // The free function agrees with the member on the same buckets.
  const auto buckets = hist.buckets();
  EXPECT_EQ(obs::histogram_quantile({buckets.begin(), buckets.end()}, 0.95),
            hist.quantile(0.95));

  // Edge cases: no data -> 0; all mass in the overflow bucket clamps to
  // the last finite bound (10 s) rather than inventing a value.
  obs::LatencyHistogram empty;
  EXPECT_EQ(empty.quantile(0.99), 0.0);
  obs::LatencyHistogram overflow;
  overflow.observe(50.0);
  overflow.observe(99.0);
  EXPECT_EQ(overflow.quantile(0.50),
            obs::LatencyHistogram::kBounds.back());
  // Malformed bucket vectors (wrong arity) yield 0, not UB.
  EXPECT_EQ(obs::histogram_quantile({1, 2, 3}, 0.5), 0.0);
}

// Every histogram's snapshot carries synthesized .p50/.p95/.p99 gauges so
// scrapes (kMetrics RPC included) expose tail latency without shipping
// raw buckets to the reader — and they survive the wire round trip.
TEST(MetricsUnit, SnapshotSynthesizesPercentileGauges) {
  obs::MetricsRegistry registry;
  obs::LatencyHistogram& hist = registry.histogram("rpc.handle_seconds");
  for (int i = 0; i < 1000; ++i) hist.observe(i * 1e-5);

  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricSample* base = snap.find("rpc.handle_seconds");
  ASSERT_NE(base, nullptr);
  for (const auto& [suffix, q] :
       {std::pair{".p50", 0.50}, {".p95", 0.95}, {".p99", 0.99}}) {
    const obs::MetricSample* pct =
        snap.find(std::string("rpc.handle_seconds") + suffix);
    ASSERT_NE(pct, nullptr) << suffix;
    EXPECT_EQ(pct->kind, obs::MetricKind::kGauge) << suffix;
    EXPECT_EQ(pct->value, hist.quantile(q)) << suffix;
  }

  SerialWriter w;
  obs::serialize_snapshot(w, snap);
  const std::vector<std::uint8_t> bytes = w.take();
  SerialReader r(bytes);
  obs::MetricsSnapshot decoded;
  ASSERT_TRUE(obs::deserialize_snapshot(r, decoded).ok());
  EXPECT_EQ(decoded.value("rpc.handle_seconds.p99", -1.0),
            snap.value("rpc.handle_seconds.p99", -2.0));
}

TEST(MetricsUnit, SnapshotWireRoundTrip) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").add(7);
  registry.gauge("b.gauge").set(-2.5);
  registry.histogram("c.hist").observe(0.5);
  const obs::MetricsSnapshot original = registry.snapshot();

  SerialWriter w;
  obs::serialize_snapshot(w, original);
  const std::vector<std::uint8_t> bytes = w.take();
  SerialReader r(bytes);
  obs::MetricsSnapshot decoded;
  ASSERT_TRUE(obs::deserialize_snapshot(r, decoded).ok());
  ASSERT_EQ(decoded.samples.size(), original.samples.size());
  for (std::size_t i = 0; i < decoded.samples.size(); ++i) {
    EXPECT_EQ(decoded.samples[i].name, original.samples[i].name);
    EXPECT_EQ(decoded.samples[i].kind, original.samples[i].kind);
    EXPECT_EQ(decoded.samples[i].value, original.samples[i].value);
    EXPECT_EQ(decoded.samples[i].count, original.samples[i].count);
    EXPECT_EQ(decoded.samples[i].buckets, original.samples[i].buckets);
  }

  std::vector<std::uint8_t> truncated(bytes.begin(),
                                      bytes.begin() + bytes.size() / 2);
  SerialReader tr(truncated);
  obs::MetricsSnapshot scratch;
  EXPECT_FALSE(obs::deserialize_snapshot(tr, scratch).ok());
}

// ------------------------------------------------------------ e2e fixture

/// Small three-column dataset with regions, histograms, bitmap indexes and
/// a sorted replica — every strategy can run.  24576 floats at 4096-byte
/// regions = exactly 24 regions per object.
class ObsEnv {
 public:
  static constexpr std::uint64_t kN = 24576;
  static constexpr std::uint64_t kRegions = 24;

  explicit ObsEnv(const std::string& root) : root_(root) {
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);

    Rng rng(0x0B5);
    energy_.resize(kN);
    x_.resize(kN);
    for (std::uint64_t i = 0; i < kN; ++i) {
      energy_[i] = static_cast<float>(
          1.0 + std::sin(static_cast<double>(i) / 700.0) +
          (rng.next_double() < 0.01 ? rng.exponential(3.0) : 0.0));
      x_[i] = static_cast<float>(rng.uniform(0.0, 100.0));
    }
    obj::ImportOptions options;
    options.region_size_bytes = 4096;
    const ObjectId container =
        std::move(store_->create_container("obs")).value();
    energy_id_ = std::move(store_->import_object<float>(
                               container, "Energy",
                               std::span<const float>(energy_), options))
                     .value();
    x_id_ = std::move(store_->import_object<float>(
                          container, "x", std::span<const float>(x_), options))
                .value();
    for (const ObjectId id : {energy_id_, x_id_}) {
      if (!store_->build_bitmap_index(id).ok()) std::abort();
    }
    if (!sortrep::build_sorted_replica(*store_, energy_id_, options).ok()) {
      std::abort();
    }
  }

  ~ObsEnv() { std::filesystem::remove_all(root_); }

  [[nodiscard]] query::QueryPtr range_query() const {
    return query::q_and(query::create(energy_id_, QueryOp::kGT, 1.5),
                        query::create(energy_id_, QueryOp::kLT, 2.5));
  }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  std::vector<float> energy_, x_;
  ObjectId energy_id_ = kInvalidObjectId;
  ObjectId x_id_ = kInvalidObjectId;
};

std::unique_ptr<ObsEnv> make_env() {
  return std::make_unique<ObsEnv>(
      ::testing::TempDir() + "/obs_e2e_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name());
}

class TraceSweep
    : public ::testing::TestWithParam<std::tuple<Strategy, std::uint32_t>> {
 protected:
  void SetUp() override {
    env_ = make_env();
    options_.strategy = std::get<0>(GetParam());
    options_.num_servers = 3;
    options_.eval_threads = std::get<1>(GetParam());
    service_ = std::make_unique<QueryService>(*env_->store_, options_);
  }

  std::unique_ptr<ObsEnv> env_;
  ServiceOptions options_;
  std::unique_ptr<QueryService> service_;
};

TEST_P(TraceSweep, TracedQueryProducesWellFormedTree) {
  auto nhits = service_->get_num_hits(env_->range_query(), {.trace = true});
  ASSERT_TRUE(nhits.ok()) << nhits.status().ToString();

  const std::shared_ptr<const obs::Trace> trace = service_->last_trace();
  ASSERT_NE(trace, nullptr);
  const Status valid = obs::validate_trace(*trace);
  EXPECT_TRUE(valid.ok()) << valid.ToString();

  // Per-query span counts match the RPCs issued: fault-free, one gather
  // round, one request/handle/eval triple per server.
  const std::uint32_t n = options_.num_servers;
  EXPECT_EQ(count_spans(*trace, "client.query"), 1u);
  EXPECT_EQ(count_spans(*trace, "client.plan"), 1u);
  EXPECT_EQ(count_spans(*trace, "rpc.gather"), 1u);
  EXPECT_EQ(count_spans(*trace, "rpc.request"), n);
  EXPECT_EQ(count_spans(*trace, "rpc.attempt"), 1u);
  EXPECT_EQ(count_spans(*trace, "server.queue"), n);
  EXPECT_EQ(count_spans(*trace, "server.handle"), n);
  EXPECT_EQ(count_spans(*trace, "server.eval"), n);

  // Span-summed stage times reconcile with the OpStats the same operation
  // reported (the CostLedger per-stage totals).
  const Status stats_ok =
      testing::check_trace_stats(*trace, service_->last_stats());
  EXPECT_TRUE(stats_ok.ok()) << stats_ok.ToString();
}

TEST_P(TraceSweep, RegionSpanCountMatchesEvaluatedRegions) {
  auto selection =
      service_->get_selection(env_->range_query(), {.trace = true});
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  const std::shared_ptr<const obs::Trace> trace = service_->last_trace();
  ASSERT_NE(trace, nullptr);

  // Every driver region iterated opens exactly one "region" span (pruned
  // and all-hit regions included), and each server.eval reports its count.
  const double reported =
      sum_span_arg(*trace, "server.eval", "regions_evaluated");
  EXPECT_EQ(static_cast<double>(count_spans(*trace, "region")), reported);
  EXPECT_GT(reported, 0.0);
  // The driver's regions partition across servers: each evaluated at most
  // (and for scan/sorted paths exactly) once.
  EXPECT_EQ(reported, static_cast<double>(ObsEnv::kRegions));
}

TEST_P(TraceSweep, TracedGetDataReconcilesWithStats) {
  auto selection = service_->get_selection(env_->range_query());
  ASSERT_TRUE(selection.ok());
  ASSERT_GT(selection->num_hits, 0u);

  std::vector<float> out(selection->num_hits);
  const Status st = service_->get_data<float>(
      env_->x_id_, *selection, out, query::GetDataMode::kByPositions,
      {.trace = true});
  ASSERT_TRUE(st.ok()) << st.ToString();

  const std::shared_ptr<const obs::Trace> trace = service_->last_trace();
  ASSERT_NE(trace, nullptr);
  const Status valid = obs::validate_trace(*trace);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_EQ(count_spans(*trace, "client.get_data"), 1u);
  EXPECT_GE(count_spans(*trace, "server.get_data"), 1u);
  EXPECT_GE(count_spans(*trace, "read_group"), 1u);
  const Status stats_ok =
      testing::check_trace_stats(*trace, service_->last_stats());
  EXPECT_TRUE(stats_ok.ok()) << stats_ok.ToString();
}

TEST_P(TraceSweep, TracingDoesNotPerturbSimulatedCost) {
  // Fresh service per run: identical cold caches, so any difference can
  // only come from tracing itself.  Tracing charges nothing to the cost
  // ledgers, so the modeled time must be bit-identical — the strongest
  // form of the <=2% tracing-off overhead budget for the simulated domain.
  const auto run = [&](bool traced) {
    QueryService service(*env_->store_, options_);
    auto nhits = service.get_num_hits(env_->range_query(), {.trace = traced});
    EXPECT_TRUE(nhits.ok()) << nhits.status().ToString();
    return service.last_stats().sim_elapsed_seconds;
  };
  const double untraced_a = run(false);
  const double untraced_b = run(false);
  const double traced = run(true);
  ASSERT_EQ(untraced_a, untraced_b);  // determinism baseline
  EXPECT_EQ(untraced_a, traced);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAllWidths, TraceSweep,
    ::testing::Combine(::testing::Values(Strategy::kFullScan,
                                         Strategy::kHistogram,
                                         Strategy::kHistogramIndex,
                                         Strategy::kSortedHistogram,
                                         Strategy::kAdaptive),
                       ::testing::Values(1u, 4u, 8u)),
    [](const auto& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case Strategy::kFullScan: name = "FullScan"; break;
        case Strategy::kHistogram: name = "Histogram"; break;
        case Strategy::kHistogramIndex: name = "HistogramIndex"; break;
        case Strategy::kSortedHistogram: name = "SortedHistogram"; break;
        case Strategy::kAdaptive: name = "Adaptive"; break;
      }
      return name + "_pool" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------------ metrics e2e

TEST(ObsE2E, MetricsSnapshotMatchesOpStats) {
  const auto env = make_env();
  ServiceOptions options;
  options.strategy = Strategy::kHistogram;
  options.num_servers = 3;
  options.eval_threads = 4;
  QueryService service(*env->store_, options);

  auto nhits = service.get_num_hits(env->range_query());
  ASSERT_TRUE(nhits.ok());
  const query::OpStats stats = service.last_stats();

  Result<obs::MetricsSnapshot> snap = service.scrape_metrics();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  double eval_requests = 0.0;
  double bytes_read = 0.0;
  double read_ops = 0.0;
  std::uint64_t latency_count = 0;
  for (std::uint32_t s = 0; s < options.num_servers; ++s) {
    const std::string prefix = "server" + std::to_string(s);
    eval_requests += snap->value(prefix + ".eval_requests");
    bytes_read += snap->value(prefix + ".bytes_read");
    read_ops += snap->value(prefix + ".read_ops");
    const obs::MetricSample* hist = snap->find(prefix + ".eval_seconds");
    ASSERT_NE(hist, nullptr);
    latency_count += hist->count;
  }
  // One eval request per server; per-server ledgers sum to the OpStats
  // cluster totals; one latency observation per eval request.
  EXPECT_EQ(eval_requests, static_cast<double>(options.num_servers));
  EXPECT_EQ(bytes_read, static_cast<double>(stats.server_bytes_read));
  EXPECT_EQ(read_ops, static_cast<double>(stats.server_read_ops));
  EXPECT_EQ(latency_count, options.num_servers);

  // Deployment-wide gauges are present and sane.
  EXPECT_GT(snap->value("bus.messages"), 0.0);
  EXPECT_GT(snap->value("bus.bytes"), 0.0);
  EXPECT_GT(snap->value("pfs.bytes_read"), 0.0);
  EXPECT_GT(snap->value("pfs.read_ops"), 0.0);
  EXPECT_EQ(snap->value("pool.threads"), 4.0);
}

TEST(ObsE2E, ScrapeMatchesLocalRegistryForServerCounters) {
  const auto env = make_env();
  ServiceOptions options;
  options.num_servers = 2;
  QueryService service(*env->store_, options);
  ASSERT_TRUE(service.get_num_hits(env->range_query()).ok());

  // The RPC-scraped snapshot and a direct registry snapshot agree on the
  // monotone server counters (gauges may legitimately move between the
  // two snapshots — the scrape itself crosses the bus).
  Result<obs::MetricsSnapshot> remote = service.scrape_metrics();
  ASSERT_TRUE(remote.ok());
  const obs::MetricsSnapshot local = service.metrics().snapshot();
  for (const obs::MetricSample& sample : local.samples) {
    if (sample.name.find(".eval_requests") == std::string::npos &&
        sample.name.find(".bytes_read") == std::string::npos) {
      continue;
    }
    EXPECT_EQ(remote->value(sample.name, -1.0), sample.value) << sample.name;
  }
}

TEST(ObsE2E, MetricsRpcWithoutRegistryFailsCleanly) {
  const auto env = make_env();
  server::ServerOptions options;  // metrics == nullptr
  server::QueryServer server(*env->store_, options);
  const server::MetricsResponse response = server.metrics_snapshot();
  EXPECT_FALSE(response.status.ok());
  EXPECT_TRUE(response.snapshot.samples.empty());
}

// ------------------------------------------------------- trace e2e extras

TEST(ObsE2E, TraceExportsRoundTripAndRenderChromeJson) {
  const auto env = make_env();
  ServiceOptions options;
  options.strategy = Strategy::kHistogram;
  options.num_servers = 3;
  QueryService service(*env->store_, options);
  ASSERT_TRUE(service.get_num_hits(env->range_query(), {.trace = true}).ok());
  const std::shared_ptr<const obs::Trace> trace = service.last_trace();
  ASSERT_NE(trace, nullptr);

  const std::string path = ::testing::TempDir() + "/obs_e2e.pdctrace";
  ASSERT_TRUE(obs::write_trace_file(*trace, path).ok());
  Result<obs::Trace> reread = obs::read_trace_file(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->spans.size(), trace->spans.size());
  EXPECT_TRUE(obs::validate_trace(*reread).ok());
  std::filesystem::remove(path);

  const std::string json = obs::chrome_trace_json(*reread);
  for (const char* name : {"client.query", "rpc.gather", "server.handle",
                           "server.eval", "pfs.read"}) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsE2E, PoolTaskSpansCarryWorkerAnnotations) {
  const auto env = make_env();
  ServiceOptions options;
  options.strategy = Strategy::kFullScan;
  options.num_servers = 2;
  options.eval_threads = 4;
  QueryService service(*env->store_, options);
  ASSERT_TRUE(service.get_num_hits(env->range_query(), {.trace = true}).ok());
  const std::shared_ptr<const obs::Trace> trace = service.last_trace();
  ASSERT_NE(trace, nullptr);

  std::size_t with_worker = 0;
  for (const obs::Span& span : trace->spans) {
    if (span.name != "region") continue;
    if (span.arg("worker", -1.0) >= 0.0) ++with_worker;
    EXPECT_GE(span.arg("io_s", -1.0), 0.0);  // task ledger split attached
  }
  // Pooled evaluation runs region tasks on workers (helping-wait may run
  // some inline on the server thread, so not necessarily all of them).
  EXPECT_GT(with_worker, 0u);
}

TEST(ObsE2E, QueryCheckValidatesTracesWhenEnabled) {
  // PDC_QC_TRACE=1 makes every generated QueryCheck case run traced and
  // cross-check span invariants + trace-vs-ledger reconciliation across
  // all four strategies and the degraded path.
  ASSERT_EQ(setenv("PDC_QC_TRACE", "1", 1), 0);
  testing::RunOptions options = testing::RunOptions::all_paths();
  const Status st = testing::run_querycheck(0xB5EED, 3, options);
  ASSERT_EQ(unsetenv("PDC_QC_TRACE"), 0);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace pdc
