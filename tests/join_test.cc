// Cross-object epsilon join: zone math unit battery plus service-level
// determinism — pairs must be byte-identical at any pool width, server
// count and shuffle strategy, and equal to the nested-loop oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "query/service.h"
#include "server/zone_join.h"
#include "testing/joincheck.h"
#include "workloads/boss.h"

namespace pdc {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------------- zone math

TEST(ZoneMath, AssignmentAtBoundaries) {
  EXPECT_EQ(server::zone_of(0.0, 1.0), 0);
  EXPECT_EQ(server::zone_of(-0.0, 1.0), 0);
  EXPECT_EQ(server::zone_of(0.5, 1.0), 0);
  // Exact zone edges belong to the upper zone (floor semantics).
  EXPECT_EQ(server::zone_of(1.0, 1.0), 1);
  EXPECT_EQ(server::zone_of(std::nextafter(1.0, 0.0), 1.0), 0);
  EXPECT_EQ(server::zone_of(-1.0, 1.0), -1);
  EXPECT_EQ(server::zone_of(std::nextafter(-1.0, 0.0), 1.0), -1);
  EXPECT_EQ(server::zone_of(-0.25, 0.5), -1);
  EXPECT_EQ(server::zone_of(7.75, 0.25), 31);
  // Extreme magnitudes clamp instead of overflowing.
  EXPECT_LE(server::zone_of(1e300, 1e-3), std::int64_t{2000000000000000000});
  EXPECT_GE(server::zone_of(-1e300, 1e-3),
            std::int64_t{-2000000000000000000});
}

TEST(ZoneMath, BandCoversEveryReachablePartner) {
  // Property: for any probe value vb, every va with |va - vb| <= eps has
  // zone_of(va) inside zone_band(vb).  Sampled densely around edges.
  Rng rng(11);
  const double heights[] = {0.25, 1.0, 1.0 / 1024.0, 64.0};
  for (const double h : heights) {
    for (const double eps : {0.0, h / 2.0, std::nextafter(h, 0.0), h}) {
      for (int trial = 0; trial < 200; ++trial) {
        double vb = rng.uniform(-8.0 * h, 8.0 * h);
        if (trial % 4 == 0) {
          vb = std::floor(vb / h) * h;  // exact edge
        }
        const auto [first, last] = server::zone_band(vb, eps, h);
        for (const double va :
             {vb - eps, vb + eps, vb,
              std::nextafter(vb - eps, vb), std::nextafter(vb + eps, vb)}) {
          if (!(std::fabs(va - vb) <= eps)) continue;
          const std::int64_t z = server::zone_of(va, h);
          EXPECT_GE(z, first) << "h=" << h << " eps=" << eps << " vb=" << vb;
          EXPECT_LE(z, last) << "h=" << h << " eps=" << eps << " vb=" << vb;
        }
        // Nominally 3 consecutive zones for zone_height >= epsilon; the
        // 2-ulp safety widening may cross one more boundary when
        // value -/+ epsilon lands exactly on a zone edge.
        EXPECT_LE(last - first, 3);
      }
    }
  }
}

TEST(ZoneMath, ParamValidation) {
  EXPECT_TRUE(server::validate_join_params(0.0, 1.0).ok());
  EXPECT_TRUE(server::validate_join_params(0.5, 0.5).ok());
  const auto bad = [](double eps, double h) {
    return server::validate_join_params(eps, h).code() ==
           StatusCode::kInvalidArgument;
  };
  EXPECT_TRUE(bad(kNan, 1.0));
  EXPECT_TRUE(bad(0.0, kNan));
  EXPECT_TRUE(bad(-0.5, 1.0));
  EXPECT_TRUE(bad(kInf, 1.0));
  EXPECT_TRUE(bad(0.0, 0.0));
  EXPECT_TRUE(bad(0.0, -1.0));
  EXPECT_TRUE(bad(0.0, kInf));
  EXPECT_TRUE(bad(1.0, 0.5));  // zone_height < epsilon inadmissible
}

TEST(ZoneMath, OwnerMapsNegativeZones) {
  const std::vector<ServerId> participants{0, 1, 2};
  for (std::int64_t z = -9; z <= 9; ++z) {
    const ServerId owner = server::zone_owner(z, participants);
    EXPECT_TRUE(owner == 0 || owner == 1 || owner == 2);
    // Consecutive zones round-robin (adjacent band zones spread out).
    EXPECT_NE(owner, server::zone_owner(z + 1, participants));
  }
  EXPECT_EQ(server::zone_owner(-3, participants),
            server::zone_owner(0, participants));
}

TEST(ZoneMergeJoin, Degenerates) {
  const auto t = [](double v, std::uint64_t pos) {
    return rpc::JoinTuple{0, v, pos};
  };
  // Empty sides.
  EXPECT_TRUE(server::zone_merge_join({}, {t(1.0, 0)}, 1.0).empty());
  EXPECT_TRUE(server::zone_merge_join({t(1.0, 0)}, {}, 1.0).empty());
  // All-match with duplicates: cross product, sorted by (left, right).
  const auto pairs = server::zone_merge_join(
      {t(1.0, 5), t(1.0, 2)}, {t(1.0, 9), t(1.5, 1), t(1.0, 9)}, 0.5);
  ASSERT_EQ(pairs.size(), 6u);
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_TRUE(pairs[i - 1].left_pos < pairs[i].left_pos ||
                (pairs[i - 1].left_pos == pairs[i].left_pos &&
                 pairs[i - 1].right_pos <= pairs[i].right_pos));
  }
  EXPECT_EQ(pairs.front().left_pos, 2u);
  // Inclusive epsilon boundary.
  EXPECT_EQ(server::zone_merge_join({t(0.0, 0)}, {t(0.5, 0)}, 0.5).size(), 1u);
  EXPECT_TRUE(server::zone_merge_join({t(0.0, 0)},
                                      {t(std::nextafter(0.5, 1.0), 0)}, 0.5)
                  .empty());
}

// --------------------------------------------------------- service level

class JoinServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/join_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);

    workloads::BossJoinConfig config;
    config.num_a = 900;
    config.num_b = 1100;
    config.zone_height = 0.5;
    config.region_size_bytes = 1024;
    pair_ = std::move(workloads::import_boss_join_pair(*store_, config))
                .value();

    // Mirror the catalogs for the oracle (same generator, same seed).
    oracle_case_.a = regenerate(config, config.num_a, /*first=*/true);
    oracle_case_.b = regenerate(config, config.num_b, /*first=*/false);
    oracle_case_.epsilon = 0.125;
    oracle_case_.zone_height = config.zone_height;
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  /// Re-draws import_boss_join_pair's catalogs (same Rng stream): catalog A
  /// is drawn first, catalog B continues the stream.
  static std::vector<double> regenerate(const workloads::BossJoinConfig& c,
                                        std::uint32_t n, bool first) {
    Rng rng(c.seed);
    std::vector<double> a, b;
    const auto draw = [&](std::vector<double>& out, std::uint32_t count) {
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t pick = rng.bounded(8);
        double v = rng.uniform(c.ra_min, c.ra_max);
        if (pick == 0) {
          v = std::floor(v / c.zone_height) * c.zone_height;
        } else if (pick == 1 && !out.empty()) {
          v = out[rng.bounded(out.size())];
        }
        out.push_back(v);
      }
    };
    draw(a, c.num_a);
    if (first) return a;
    draw(b, c.num_b);
    return b;
  }

  query::JoinSpec spec(server::JoinStrategy strategy) const {
    query::JoinSpec s;
    s.left = pair_.ra_a;
    s.right = pair_.ra_b;
    s.epsilon = oracle_case_.epsilon;
    s.zone_height = oracle_case_.zone_height;
    s.strategy = strategy;
    return s;
  }

  query::JoinResult run(std::uint32_t servers, std::uint32_t threads,
                        server::JoinStrategy strategy,
                        query::OpStats* stats = nullptr) const {
    query::ServiceOptions options;
    options.num_servers = servers;
    options.eval_threads = threads;
    query::QueryService service(*store_, options);
    auto result = service.join(spec(strategy));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (stats != nullptr) *stats = service.last_stats();
    return result.ok() ? std::move(*result) : query::JoinResult{};
  }

  static bool identical(const query::JoinResult& x,
                        const query::JoinResult& y) {
    return x.num_zones == y.num_zones &&
           x.pairs.size() == y.pairs.size() &&
           (x.pairs.empty() ||
            std::memcmp(x.pairs.data(), y.pairs.data(),
                        x.pairs.size() * sizeof(query::JoinPair)) == 0);
  }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  workloads::BossJoinPair pair_;
  testing::JoinCase oracle_case_;
};

// Acceptance criterion: bit-identical pairs at pool widths 1/4/8 and
// server counts 1/2/4, both strategies, all equal to the oracle.
TEST_F(JoinServiceTest, DeterministicAcrossWidthsServersAndStrategies) {
  const auto want = testing::join_oracle(oracle_case_);
  ASSERT_FALSE(want.empty());  // the catalogs overlap by construction

  query::JoinResult reference;
  bool have_reference = false;
  for (const std::uint32_t servers : {1u, 2u, 4u}) {
    for (const std::uint32_t threads : {1u, 4u, 8u}) {
      for (const auto strategy : {server::JoinStrategy::kZoneShuffle,
                                  server::JoinStrategy::kBroadcast}) {
        const query::JoinResult got = run(servers, threads, strategy);
        ASSERT_EQ(got.pairs.size(), want.size())
            << "servers=" << servers << " threads=" << threads;
        for (std::size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(got.pairs[i].left_pos, want[i].left_pos) << "rank " << i;
          ASSERT_EQ(got.pairs[i].right_pos, want[i].right_pos) << "rank " << i;
        }
        if (!have_reference) {
          reference = got;
          have_reference = true;
        } else {
          EXPECT_TRUE(identical(reference, got));
        }
      }
    }
  }
}

// The whole point of the exchange: at 4 servers the zone shuffle moves
// strictly fewer bytes than broadcasting both sides everywhere.
TEST_F(JoinServiceTest, ZoneShuffleBeatsBroadcastBytes) {
  query::OpStats zone_stats, broadcast_stats;
  const query::JoinResult zone =
      run(4, 2, server::JoinStrategy::kZoneShuffle, &zone_stats);
  const query::JoinResult broadcast =
      run(4, 2, server::JoinStrategy::kBroadcast, &broadcast_stats);
  EXPECT_TRUE(identical(zone, broadcast));
  EXPECT_GT(broadcast_stats.shuffle_bytes, 0u);
  EXPECT_LT(zone_stats.shuffle_bytes, broadcast_stats.shuffle_bytes);
  EXPECT_EQ(zone_stats.join_candidates_left,
            broadcast_stats.join_candidates_left);
}

// Single server: no cross-server traffic at all under zone shuffle.
TEST_F(JoinServiceTest, SingleServerShipsNothing) {
  query::OpStats stats;
  run(1, 2, server::JoinStrategy::kZoneShuffle, &stats);
  EXPECT_EQ(stats.shuffle_bytes, 0u);
  EXPECT_EQ(stats.shuffle_msgs, 0u);
}

// Pre-filters that exclude everything produce a clean empty result.
TEST_F(JoinServiceTest, EmptySideViaFilter) {
  query::ServiceOptions options;
  options.num_servers = 2;
  query::QueryService service(*store_, options);
  query::JoinSpec s = spec(server::JoinStrategy::kZoneShuffle);
  s.left_filter = ValueInterval::from_op(QueryOp::kLT, -1.0e6);
  const auto result = service.join(s);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->pairs.empty());
  EXPECT_EQ(result->num_zones, 0u);
}

// Plan-time rejections surface before any server work happens.
TEST_F(JoinServiceTest, PlanTimeValidation) {
  query::ServiceOptions options;
  options.num_servers = 2;
  query::QueryService service(*store_, options);

  query::JoinSpec s = spec(server::JoinStrategy::kZoneShuffle);
  s.epsilon = kNan;
  EXPECT_EQ(service.join(s).status().code(), StatusCode::kInvalidArgument);

  s = spec(server::JoinStrategy::kZoneShuffle);
  s.zone_height = 0.0;
  EXPECT_EQ(service.join(s).status().code(), StatusCode::kInvalidArgument);

  s = spec(server::JoinStrategy::kZoneShuffle);
  s.zone_height = s.epsilon / 2.0;
  EXPECT_EQ(service.join(s).status().code(), StatusCode::kInvalidArgument);

  s = spec(server::JoinStrategy::kZoneShuffle);
  s.right = 999999;
  EXPECT_EQ(service.join(s).status().code(), StatusCode::kNotFound);
}

// import_boss_join_pair rejects nonsense configurations.
TEST(BossJoinWorkload, ConfigValidation) {
  const std::string root = ::testing::TempDir() + "/boss_join_cfg";
  std::filesystem::remove_all(root);
  pfs::PfsConfig cfg;
  cfg.root_dir = root;
  auto cluster = std::move(pfs::PfsCluster::Create(cfg)).value();
  obj::ObjectStore store(*cluster);

  workloads::BossJoinConfig config;
  config.num_a = 0;
  EXPECT_FALSE(workloads::import_boss_join_pair(store, config).ok());
  config = {};
  config.zone_height = 0.0;
  EXPECT_FALSE(workloads::import_boss_join_pair(store, config).ok());
  config = {};
  config.ra_max = config.ra_min;
  EXPECT_FALSE(workloads::import_boss_join_pair(store, config).ok());
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace pdc
