foreach(t IN LISTS pipeline_test_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tsan")
endforeach()
