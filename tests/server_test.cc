// Tests for server-side pieces: region assignment, region cache, and the
// wire protocol.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/rng.h"
#include "obj/object_store.h"
#include "pfs/pfs.h"
#include "server/query_server.h"
#include "server/region_assignment.h"
#include "server/region_cache.h"
#include "server/wire.h"

namespace pdc::server {
namespace {

// ------------------------------------------------------------ assignment

obj::ObjectDescriptor make_object(std::uint64_t num_elements,
                                  std::uint64_t region_elems) {
  obj::ObjectDescriptor o;
  o.id = 1;
  o.num_elements = num_elements;
  o.region_size_elements = region_elems;
  const auto nregions = (num_elements + region_elems - 1) / region_elems;
  for (std::uint64_t r = 0; r < nregions; ++r) {
    obj::RegionDescriptor region;
    region.index = static_cast<RegionIndex>(r);
    region.extent.offset = r * region_elems;
    region.extent.count = std::min(region_elems,
                                   num_elements - region.extent.offset);
    o.regions.push_back(std::move(region));
  }
  return o;
}

TEST(RegionAssignment, RoundRobinCoversAllRegionsOnce) {
  const auto object = make_object(10000, 512);  // 20 regions
  const std::uint32_t num_servers = 3;
  std::vector<int> covered(object.regions.size(), 0);
  for (ServerId s = 0; s < num_servers; ++s) {
    for (const RegionIndex r : regions_of_server(object, s, num_servers)) {
      EXPECT_EQ(owner_of_region(object, r, num_servers), s);
      ++covered[r];
    }
  }
  for (const int c : covered) EXPECT_EQ(c, 1);
}

TEST(RegionAssignment, LoadIsBalanced) {
  const auto object = make_object(64 * 512, 512);  // 64 regions
  for (const std::uint32_t servers : {2u, 4u, 8u, 16u}) {
    std::vector<std::size_t> counts(servers, 0);
    for (ServerId s = 0; s < servers; ++s) {
      counts[s] = regions_of_server(object, s, servers).size();
    }
    const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
    EXPECT_LE(*mx - *mn, 1u) << servers << " servers";
  }
}

TEST(RegionAssignment, PositionPartitioning) {
  const auto object = make_object(1000, 100);  // 10 regions
  std::vector<std::uint64_t> positions{5, 105, 205, 206, 305, 999};
  auto parts = partition_positions(object, positions, 2);
  // Large object (10 regions >= 2 servers): aligned, owner = region % 2.
  EXPECT_EQ(parts[0], (std::vector<std::uint64_t>{5, 205, 206}));
  EXPECT_EQ(parts[1], (std::vector<std::uint64_t>{105, 305, 999}));
  EXPECT_EQ(region_of_position(object, 999), 9u);
}

TEST(RegionAssignment, LargeObjectsAlignAcrossObjectIds) {
  // Same-dimension objects must agree on region ownership regardless of
  // their ids, so multi-object position checks stay on one server.
  auto a = make_object(10000, 512);
  auto b = make_object(10000, 512);
  a.id = 2;
  b.id = 7;
  for (RegionIndex r = 0; r < a.regions.size(); ++r) {
    EXPECT_EQ(owner_of_region(a, r, 4), owner_of_region(b, r, 4));
  }
}

TEST(RegionAssignment, SmallObjectsSpreadByObjectId) {
  // Single-region objects land on different servers by id.
  std::set<ServerId> owners;
  for (ObjectId id = 1; id <= 8; ++id) {
    auto o = make_object(100, 100);  // one region
    o.id = id;
    owners.insert(owner_of_region(o, 0, 8));
  }
  EXPECT_EQ(owners.size(), 8u);
}

// ----------------------------------------------------------------- cache

RegionCache::Buffer make_buffer(std::size_t bytes, std::uint8_t fill) {
  return std::make_shared<std::vector<std::uint8_t>>(bytes, fill);
}

TEST(RegionCacheTest, HitAndMiss) {
  RegionCache cache(1024);
  EXPECT_EQ(cache.get({1, 0}), nullptr);
  cache.put({1, 0}, make_buffer(100, 7));
  auto hit = cache.get({1, 0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0], 7);
  EXPECT_EQ(cache.bytes(), 100u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(RegionCacheTest, EvictsLeastRecentlyUsed) {
  RegionCache cache(250);
  cache.put({1, 0}, make_buffer(100, 0));
  cache.put({1, 1}, make_buffer(100, 1));
  // Touch region 0 so region 1 is LRU.
  EXPECT_NE(cache.get({1, 0}), nullptr);
  cache.put({1, 2}, make_buffer(100, 2));  // exceeds 250 -> evict {1,1}
  EXPECT_EQ(cache.get({1, 1}), nullptr);
  EXPECT_NE(cache.get({1, 0}), nullptr);
  EXPECT_NE(cache.get({1, 2}), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.bytes(), 250u);
}

TEST(RegionCacheTest, ZeroCapacityDisables) {
  RegionCache cache(0);
  cache.put({1, 0}, make_buffer(10, 0));
  EXPECT_EQ(cache.get({1, 0}), nullptr);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(RegionCacheTest, EvictedBufferSurvivesWhileHeld) {
  RegionCache cache(100);
  cache.put({1, 0}, make_buffer(100, 9));
  auto held = cache.get({1, 0});
  cache.put({1, 1}, make_buffer(100, 1));  // evicts {1,0}
  EXPECT_EQ(cache.get({1, 0}), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ((*held)[0], 9);  // still alive through the shared_ptr
}

TEST(RegionCacheTest, DuplicatePutKeepsOneEntry) {
  RegionCache cache(1000);
  cache.put({1, 0}, make_buffer(100, 1));
  cache.put({1, 0}, make_buffer(100, 2));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 100u);
}

TEST(RegionCacheTest, RefreshReplacesBufferAndReconcilesBytes) {
  RegionCache cache(1000);
  cache.put({1, 0}, make_buffer(100, 1));
  // Refresh with new contents and a different size: the new bytes must be
  // served (keeping the old buffer would return stale data forever) and
  // the byte accounting must follow the size change.
  cache.put({1, 0}, make_buffer(60, 2));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 60u);
  auto buffer = cache.get({1, 0});
  ASSERT_NE(buffer, nullptr);
  ASSERT_EQ(buffer->size(), 60u);
  EXPECT_EQ((*buffer)[0], 2);
  // Growing refresh reconciles upward too, and may trigger eviction of
  // other entries — never of the refreshed key itself.
  cache.put({1, 1}, make_buffer(100, 3));
  cache.put({1, 0}, make_buffer(950, 4));
  EXPECT_EQ(cache.get({1, 1}), nullptr);  // evicted to make room
  auto grown = cache.get({1, 0});
  ASSERT_NE(grown, nullptr);
  EXPECT_EQ(grown->size(), 950u);
  EXPECT_EQ(cache.bytes(), 950u);
  EXPECT_GE(cache.evictions(), 1u);
}

TEST(RegionCacheTest, ClearResets) {
  RegionCache cache(1000);
  cache.put({1, 0}, make_buffer(100, 1));
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.get({1, 0}), nullptr);
}

// ------------------------------------------------------------------ wire

TEST(Wire, EvalRequestRoundTrip) {
  EvalRequest request;
  request.strategy = Strategy::kHistogramIndex;
  request.need_locations = true;
  request.region_constraint = {100, 5000};
  AndTerm term;
  term.driver_replica = 42;
  term.conjuncts.push_back({7, ValueInterval::from_op(QueryOp::kGT, 2.0)});
  term.conjuncts.push_back({8, ValueInterval::from_op(QueryOp::kLT, 5.0)});
  request.terms.push_back(term);
  AndTerm term2;
  term2.conjuncts.push_back({9, ValueInterval::from_op(QueryOp::kEQ, 1.0)});
  request.terms.push_back(term2);

  const auto bytes = request.serialize();
  SerialReader reader(bytes);
  auto back = EvalRequest::Deserialize(reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->strategy, Strategy::kHistogramIndex);
  EXPECT_TRUE(back->need_locations);
  EXPECT_EQ(back->region_constraint, (Extent1D{100, 5000}));
  ASSERT_EQ(back->terms.size(), 2u);
  EXPECT_EQ(back->terms[0].driver_replica, 42u);
  ASSERT_EQ(back->terms[0].conjuncts.size(), 2u);
  EXPECT_EQ(back->terms[0].conjuncts[0].object, 7u);
  EXPECT_DOUBLE_EQ(back->terms[0].conjuncts[0].interval.lo, 2.0);
  EXPECT_FALSE(back->terms[0].conjuncts[0].interval.lo_inclusive);
  EXPECT_EQ(back->terms[1].conjuncts[0].object, 9u);
}

TEST(Wire, EvalResponseRoundTrip) {
  EvalResponse response;
  response.status = Status::Ok();
  response.num_hits = 12345;
  response.has_positions = true;
  response.positions = {1, 5, 9};
  response.sorted_extents = {{100, 50}, {300, 5}};
  response.replica_id = 77;
  response.ledger = {1.5, 0.25, 4096, 3};

  const auto bytes = response.serialize();
  SerialReader reader(bytes);
  auto back = EvalResponse::Deserialize(reader);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->status.ok());
  EXPECT_EQ(back->num_hits, 12345u);
  EXPECT_EQ(back->positions, (std::vector<std::uint64_t>{1, 5, 9}));
  ASSERT_EQ(back->sorted_extents.size(), 2u);
  EXPECT_EQ(back->sorted_extents[1], (Extent1D{300, 5}));
  EXPECT_EQ(back->replica_id, 77u);
  EXPECT_DOUBLE_EQ(back->ledger.io_seconds, 1.5);
  EXPECT_EQ(back->ledger.read_ops, 3u);
}

TEST(Wire, ErrorStatusSurvivesRoundTrip) {
  EvalResponse response;
  response.status = Status::NotFound("object 9");
  const auto bytes = response.serialize();
  SerialReader reader(bytes);
  auto back = EvalResponse::Deserialize(reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->status.code(), StatusCode::kNotFound);
  EXPECT_EQ(back->status.message(), "object 9");
}

TEST(Wire, GetDataRoundTrip) {
  GetDataRequest request;
  request.object = 5;
  request.from_replica = true;
  request.extents = {{0, 10}, {100, 20}};
  const auto bytes = request.serialize();
  SerialReader reader(bytes);
  auto back = GetDataRequest::Deserialize(reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->object, 5u);
  EXPECT_TRUE(back->from_replica);
  EXPECT_EQ(back->extents.size(), 2u);

  GetDataResponse response;
  response.status = Status::Ok();
  response.values = {1, 2, 3, 4};
  const auto rbytes = response.serialize();
  SerialReader rr(rbytes);
  auto rback = GetDataResponse::Deserialize(rr);
  ASSERT_TRUE(rback.ok());
  EXPECT_EQ(rback->values, (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(Wire, PeekAndCorruptionHandling) {
  EvalRequest request;
  const auto bytes = request.serialize();
  auto type = peek_request_type(bytes);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, RequestType::kEvalQuery);

  EXPECT_FALSE(peek_request_type({}).ok());
  std::vector<std::uint8_t> junk{0x77, 1, 2};
  EXPECT_FALSE(peek_request_type(junk).ok());

  // Truncated request fails cleanly.
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + 4);
  SerialReader reader(truncated);
  EXPECT_FALSE(EvalRequest::Deserialize(reader).ok());
}

TEST(Wire, StrategyNames) {
  EXPECT_EQ(strategy_name(Strategy::kFullScan), "PDC-F");
  EXPECT_EQ(strategy_name(Strategy::kHistogram), "PDC-H");
  EXPECT_EQ(strategy_name(Strategy::kHistogramIndex), "PDC-HI");
  EXPECT_EQ(strategy_name(Strategy::kSortedHistogram), "PDC-SH");
  EXPECT_EQ(strategy_name(Strategy::kAdaptive), "PDC-A");
}

// ------------------------------------------------- dense-read crossover

// Crossing ServerOptions::dense_read_threshold switches PDC-A's per-region
// access path, which must show up as a different read *shape*: whole-region
// streaming reads below the crossover, bin probes + point reads above it.
// Both sides must return the identical answer.
TEST(QueryServerTest, DenseReadThresholdCrossoverSwitchesReadShape) {
  const std::string root = ::testing::TempDir() + "/server_crossover";
  std::filesystem::remove_all(root);
  pfs::PfsConfig cfg;
  cfg.root_dir = root;
  auto cluster = std::move(pfs::PfsCluster::Create(cfg)).value();
  obj::ObjectStore store(*cluster);

  // 8 regions of 1024 floats, uniform over [0,100): the query [10,13)
  // lands at ~3% selectivity in every region — between the two thresholds
  // exercised below, and selective enough that bin probes + point reads
  // genuinely move fewer bytes than whole-region streaming.
  constexpr std::uint64_t kRegionElems = 1024;
  constexpr std::uint64_t kRegions = 8;
  Rng rng(0xC0DE);
  std::vector<float> values(kRegionElems * kRegions);
  for (float& v : values) v = static_cast<float>(rng.uniform(0.0, 100.0));
  obj::ImportOptions import;
  import.region_size_bytes = kRegionElems * sizeof(float);
  const ObjectId container =
      std::move(store.create_container("crossover")).value();
  const ObjectId object =
      std::move(store.import_object<float>(
                    container, "values", std::span<const float>(values),
                    import))
          .value();
  ASSERT_TRUE(store.build_bitmap_index(object).ok());

  EvalRequest request;
  request.strategy = Strategy::kAdaptive;
  request.need_locations = true;
  request.terms.push_back(
      {{{object, ValueInterval::from_op(QueryOp::kGTE, 10.0).intersect(
                     ValueInterval::from_op(QueryOp::kLT, 13.0))}},
       kInvalidObjectId});

  const auto eval_with_threshold = [&](double threshold) {
    ServerOptions options;  // num_servers = 1: this server owns everything
    options.dense_read_threshold = threshold;
    QueryServer server(store, options);
    return server.eval(request);
  };

  const EvalResponse scan_side = eval_with_threshold(1e-9);
  const EvalResponse index_side = eval_with_threshold(0.999);
  ASSERT_TRUE(scan_side.status.ok()) << scan_side.status.ToString();
  ASSERT_TRUE(index_side.status.ok()) << index_side.status.ToString();

  // Identical answer on both sides of the crossover.
  EXPECT_GT(scan_side.num_hits, 0u);
  EXPECT_EQ(scan_side.num_hits, index_side.num_hits);
  EXPECT_EQ(scan_side.positions, index_side.positions);

  // Choice counters flip entirely.
  EXPECT_EQ(scan_side.regions_scanned, kRegions);
  EXPECT_EQ(scan_side.regions_indexed, 0u);
  EXPECT_EQ(index_side.regions_indexed, kRegions);
  EXPECT_EQ(index_side.regions_scanned, 0u);

  // Read shape: below the threshold every region streams in whole (exactly
  // the object's bytes, one read per region); above it only index bins and
  // coalesced candidate point-reads touch storage — a fraction of the
  // bytes across at least as many ops, i.e. far fewer bytes per op.
  EXPECT_EQ(scan_side.ledger.bytes_read, values.size() * sizeof(float));
  EXPECT_EQ(scan_side.ledger.read_ops, kRegions);
  EXPECT_LT(index_side.ledger.bytes_read * 2, scan_side.ledger.bytes_read);
  EXPECT_GE(index_side.ledger.read_ops, scan_side.ledger.read_ops);
  EXPECT_LT(index_side.ledger.bytes_read / index_side.ledger.read_ops,
            scan_side.ledger.bytes_read / scan_side.ledger.read_ops);

  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace pdc::server
