foreach(t IN LISTS querycheck_test_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tsan")
endforeach()
