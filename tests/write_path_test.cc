// Write-path tests (mutable regions): epoch/staleness bookkeeping,
// delta-WAH compaction byte-identity, sorted-delta merge determinism, and
// epoch-keyed region-cache invalidation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <span>
#include <utility>
#include <vector>

#include "obj/object_store.h"
#include "query/service.h"
#include "server/region_cache.h"
#include "sortrep/sorted_replica.h"

namespace pdc::query {
namespace {

using server::Strategy;

[[nodiscard]] std::span<const std::uint8_t> float_bytes(
    const std::vector<float>& values) {
  return {reinterpret_cast<const std::uint8_t*>(values.data()),
          values.size() * sizeof(float)};
}

/// One small float column (64 elements, 16 per region = 4 regions) with a
/// bitmap index and optionally a sorted replica, plus a shadow copy of the
/// values for brute-force checks.
class WriteEnv {
 public:
  static constexpr std::uint64_t kN = 64;
  static constexpr std::uint64_t kRegionBytes = 64;  // 16 floats per region

  explicit WriteEnv(const std::string& root, bool with_replica = false)
      : root_(root) {
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);

    values_.resize(kN);
    for (std::uint64_t i = 0; i < kN; ++i) {
      values_[i] = static_cast<float>(i) / static_cast<float>(kN);
    }
    obj::ImportOptions options;
    options.region_size_bytes = kRegionBytes;
    const ObjectId container =
        std::move(store_->create_container("wtest")).value();
    id_ = std::move(store_->import_object<float>(
                        container, "col", std::span<const float>(values_),
                        options))
              .value();
    if (!store_->build_bitmap_index(id_).ok()) std::abort();
    if (with_replica) {
      auto replica = sortrep::build_sorted_replica(*store_, id_, options);
      if (!replica.ok()) std::abort();
    }
  }

  ~WriteEnv() { std::filesystem::remove_all(root_); }

  // Overwrite the shadow copy in lockstep with the store.
  void shadow_overwrite(std::uint64_t offset,
                        const std::vector<float>& values) {
    std::copy(values.begin(), values.end(), values_.begin() + offset);
  }
  void shadow_append(const std::vector<float>& values) {
    values_.insert(values_.end(), values.begin(), values.end());
  }

  [[nodiscard]] std::vector<std::uint64_t> brute_force_gt(double x) const {
    std::vector<std::uint64_t> hits;
    for (std::uint64_t i = 0; i < values_.size(); ++i) {
      if (values_[i] > x) hits.push_back(i);
    }
    return hits;
  }

  [[nodiscard]] const obj::ObjectDescriptor& desc() const {
    return *std::move(store_->get(id_)).value();
  }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  std::vector<float> values_;
  ObjectId id_ = kInvalidObjectId;
};

[[nodiscard]] std::string test_root(const std::string& leaf) {
  return ::testing::TempDir() + "/write_path_" + leaf;
}

/// Run a kGT query through every read strategy and require the exact
/// brute-force answer; returns the stats of the last strategy run.
OpStats check_all_strategies(WriteEnv& env, double threshold) {
  OpStats last{};
  for (const Strategy strategy :
       {Strategy::kFullScan, Strategy::kHistogram, Strategy::kHistogramIndex,
        Strategy::kSortedHistogram, Strategy::kAdaptive}) {
    ServiceOptions options;
    options.num_servers = 3;
    options.strategy = strategy;
    QueryService service(std::as_const(*env.store_), options);
    const auto q = create(env.id_, QueryOp::kGT, threshold);
    auto selection = service.get_selection(q);
    EXPECT_TRUE(selection.ok()) << selection.status().ToString();
    if (!selection.ok()) continue;
    const auto want = env.brute_force_gt(threshold);
    EXPECT_EQ(selection->num_hits, want.size())
        << "strategy " << static_cast<int>(strategy);
    EXPECT_EQ(selection->positions, want)
        << "strategy " << static_cast<int>(strategy);
    last = service.last_stats();
  }
  return last;
}

// ---------------------------------------------------------------------------
// Group 1: epoch-staleness fallback table.
// ---------------------------------------------------------------------------

TEST(WritePathEpochs, AbsorbableOverwriteKeepsIndexFresh) {
  WriteEnv env(test_root("absorb"));
  // Region 0 holds values 0/64 .. 15/64; both replacement values lie
  // strictly inside that range and off every bin edge, so the delta-WAH
  // sidecar absorbs them and the index stays usable.
  const std::vector<float> repl{0.1234567f, 0.0712345f};
  auto result = env.store_->apply_write(env.id_, obj::WriteKind::kOverwrite,
                                        Extent1D{5, 2}, float_bytes(repl),
                                        /*write_seq=*/1, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  env.shadow_overwrite(5, repl);

  EXPECT_EQ(result->data_epoch, 2u);
  EXPECT_EQ(result->regions_touched, 1u);
  EXPECT_FALSE(result->duplicate);
  EXPECT_FALSE(result->compacted);

  const auto& desc = env.desc();
  EXPECT_EQ(desc.data_epoch, 2u);
  EXPECT_EQ(desc.regions[0].data_epoch, 2u);
  EXPECT_TRUE(desc.regions[0].index_fresh());
  EXPECT_EQ(desc.regions[0].delta.entries.size(), 2u);
  for (std::size_t r = 1; r < desc.regions.size(); ++r) {
    EXPECT_EQ(desc.regions[r].data_epoch, 1u) << "region " << r;
    EXPECT_TRUE(desc.regions[r].index_fresh()) << "region " << r;
    EXPECT_TRUE(desc.regions[r].delta.empty()) << "region " << r;
  }

  const OpStats stats = check_all_strategies(env, 0.07);
  EXPECT_EQ(stats.regions_stale, 0u);
  EXPECT_EQ(stats.max_data_epoch, 2u);
}

TEST(WritePathEpochs, OutOfRangeOverwriteFallsBackToScan) {
  WriteEnv env(test_root("oor"));
  // 7.5 is far outside region 1's base bin range: the delta cannot encode
  // it, so the region goes stale and every indexed read must scan it.
  const std::vector<float> repl{7.5f};
  auto result = env.store_->apply_write(env.id_, obj::WriteKind::kOverwrite,
                                        Extent1D{20, 1}, float_bytes(repl),
                                        /*write_seq=*/1, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  env.shadow_overwrite(20, repl);

  const auto& desc = env.desc();
  EXPECT_EQ(desc.regions[1].data_epoch, 2u);
  EXPECT_FALSE(desc.regions[1].index_fresh());

  // Queries must still be exact — including the new out-of-band hit.
  const auto want = env.brute_force_gt(5.0);
  ASSERT_EQ(want, std::vector<std::uint64_t>{20});
  ServiceOptions options;
  options.num_servers = 3;
  options.strategy = Strategy::kHistogramIndex;
  QueryService service(std::as_const(*env.store_), options);
  auto selection = service.get_selection(create(env.id_, QueryOp::kGT, 5.0));
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_EQ(selection->positions, want);
  const OpStats stats = service.last_stats();
  EXPECT_GE(stats.regions_stale, 1u);
  EXPECT_EQ(stats.max_data_epoch, 2u);

  check_all_strategies(env, 0.3);
}

TEST(WritePathEpochs, MaintenanceOffGoesStaleWithEmptyDelta) {
  WriteEnv env(test_root("nomaint"));
  const std::vector<float> repl{0.1234567f};
  obj::WriteOptions wopts;
  wopts.maintain_accelerators = false;
  auto result = env.store_->apply_write(env.id_, obj::WriteKind::kOverwrite,
                                        Extent1D{5, 1}, float_bytes(repl),
                                        /*write_seq=*/1, wopts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  env.shadow_overwrite(5, repl);

  const auto& desc = env.desc();
  EXPECT_FALSE(desc.regions[0].index_fresh());
  EXPECT_TRUE(desc.regions[0].delta.empty());
  // Histograms are always maintained, so pruning stays sound and every
  // strategy still returns the exact answer via scan fallback.
  const OpStats stats = check_all_strategies(env, 0.07);
  EXPECT_EQ(stats.max_data_epoch, 2u);
}

TEST(WritePathEpochs, AppendGrowsObjectAndMarksNewRegionsStale) {
  WriteEnv env(test_root("append"));
  std::vector<float> extra(20);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    extra[i] = 2.0f + static_cast<float>(i) * 0.125f;
  }
  auto result = env.store_->apply_write(env.id_, obj::WriteKind::kAppend,
                                        Extent1D{}, float_bytes(extra),
                                        /*write_seq=*/1, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  env.shadow_append(extra);

  const auto& desc = env.desc();
  EXPECT_EQ(desc.num_elements, WriteEnv::kN + 20);
  ASSERT_GE(desc.regions.size(), 5u);
  // Appended elements have no base index coverage: their regions are stale.
  bool any_stale = false;
  for (const auto& region : desc.regions) {
    if (!region.index_fresh()) any_stale = true;
  }
  EXPECT_TRUE(any_stale);
  // Every query over the grown object is exact, including appended hits.
  const auto want = env.brute_force_gt(1.5);
  ASSERT_EQ(want.size(), 20u);
  check_all_strategies(env, 1.5);
  check_all_strategies(env, 0.3);
}

TEST(WritePathEpochs, DuplicateWriteSeqAcknowledgedWithoutReapply) {
  WriteEnv env(test_root("dup"));
  const std::vector<float> first{0.1234567f};
  auto r1 = env.store_->apply_write(env.id_, obj::WriteKind::kOverwrite,
                                    Extent1D{5, 1}, float_bytes(first),
                                    /*write_seq=*/7, {});
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  env.shadow_overwrite(5, first);

  // A replay under the same sequence number — even with different bytes,
  // as a confused retry might carry — must be acknowledged, not applied.
  const std::vector<float> imposter{0.9f};
  auto r2 = env.store_->apply_write(env.id_, obj::WriteKind::kOverwrite,
                                    Extent1D{6, 1}, float_bytes(imposter),
                                    /*write_seq=*/7, {});
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(r2->duplicate);
  EXPECT_EQ(r2->data_epoch, r1->data_epoch);
  EXPECT_EQ(env.desc().data_epoch, r1->data_epoch);

  // Position 6 still holds its original value.
  float got = 0.0f;
  const pfs::ReadContext ctx{};
  ASSERT_TRUE(env.store_
                  ->read_elements(env.desc(), Extent1D{6, 1},
                                  {reinterpret_cast<std::uint8_t*>(&got),
                                   sizeof(got)},
                                  ctx)
                  .ok());
  EXPECT_EQ(got, 6.0f / 64.0f);
  check_all_strategies(env, 0.07);
}

// ---------------------------------------------------------------------------
// Group 2: delta-WAH compaction is byte-identical to a fresh build.
// ---------------------------------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> read_whole_file(
    pfs::PfsCluster& cluster, const std::string& name) {
  auto size = cluster.file_size(name);
  EXPECT_TRUE(size.ok()) << size.status().ToString();
  auto file = cluster.open(name);
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  std::vector<std::uint8_t> bytes(*size);
  const pfs::ReadContext ctx{};
  EXPECT_TRUE(file->read(0, bytes, ctx).ok());
  return bytes;
}

TEST(WritePathCompaction, CompactedIndexMatchesFreshBuildByteForByte) {
  // Store A: import, build, then overwrite through the write path with
  // compaction firing on every write (threshold 1).
  WriteEnv env(test_root("compact_a"));
  obj::WriteOptions wopts;
  wopts.compact_threshold = 1;
  const std::vector<std::pair<std::uint64_t, float>> writes{
      {3, 0.1234567f}, {17, 0.3177777f}, {40, 0.7012345f}, {62, 0.9712311f}};
  std::uint64_t seq = 0;
  bool saw_compaction = false;
  for (const auto& [pos, value] : writes) {
    const std::vector<float> one{value};
    auto result = env.store_->apply_write(env.id_, obj::WriteKind::kOverwrite,
                                          Extent1D{pos, 1}, float_bytes(one),
                                          ++seq, wopts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    saw_compaction |= result->compacted;
    env.shadow_overwrite(pos, one);
  }
  EXPECT_TRUE(saw_compaction);

  // Store B: import the final data directly and build the index once.
  const std::string root_b = test_root("compact_b");
  std::filesystem::remove_all(root_b);
  pfs::PfsConfig cfg;
  cfg.root_dir = root_b;
  auto cluster_b = std::move(pfs::PfsCluster::Create(cfg)).value();
  obj::ObjectStore store_b(*cluster_b);
  obj::ImportOptions import_options;
  import_options.region_size_bytes = WriteEnv::kRegionBytes;
  const ObjectId container =
      std::move(store_b.create_container("wtest")).value();
  const ObjectId id_b =
      std::move(store_b.import_object<float>(
                    container, "col", std::span<const float>(env.values_),
                    import_options))
          .value();
  ASSERT_TRUE(store_b.build_bitmap_index(id_b).ok());

  const auto& desc_a = env.desc();
  const auto& desc_b = *std::move(store_b.get(id_b)).value();

  // Region metadata: identical layout, headers, and epochs-all-synced.
  ASSERT_EQ(desc_a.regions.size(), desc_b.regions.size());
  for (std::size_t r = 0; r < desc_a.regions.size(); ++r) {
    const auto& ra = desc_a.regions[r];
    const auto& rb = desc_b.regions[r];
    EXPECT_TRUE(ra.index_fresh()) << "region " << r;
    EXPECT_TRUE(ra.delta.empty()) << "region " << r;
    EXPECT_EQ(ra.index_offset, rb.index_offset) << "region " << r;
    EXPECT_EQ(ra.index_bytes, rb.index_bytes) << "region " << r;
    EXPECT_EQ(ra.index_header, rb.index_header) << "region " << r;
  }

  // The whole index file is byte-for-byte the fresh build.
  const auto bytes_a = read_whole_file(*env.cluster_, desc_a.index_file);
  const auto bytes_b = read_whole_file(*cluster_b, desc_b.index_file);
  EXPECT_EQ(bytes_a, bytes_b);

  // And an explicit rebuild on top of the compacted state is a no-op at
  // the byte level.
  ASSERT_TRUE(env.store_->rebuild_bitmap_index(env.id_).ok());
  const auto bytes_a2 = read_whole_file(*env.cluster_, env.desc().index_file);
  EXPECT_EQ(bytes_a2, bytes_b);

  check_all_strategies(env, 0.3);
  std::filesystem::remove_all(root_b);
}

// ---------------------------------------------------------------------------
// Group 3: sorted-delta merge is deterministic across pool widths.
// ---------------------------------------------------------------------------

TEST(WritePathSortedDelta, MergeDeterministicAcrossPoolWidths) {
  WriteEnv env(test_root("sorted"), /*with_replica=*/true);
  // Leave a delta log pending: writes maintain the log but no rebuild
  // (threshold far above the write count), so the sorted strategy must
  // merge base + delta on every read.
  const std::vector<std::pair<std::uint64_t, float>> writes{
      {2, 0.8412345f}, {33, 0.0212345f}, {50, 0.4312345f}};
  std::uint64_t seq = 0;
  for (const auto& [pos, value] : writes) {
    const std::vector<float> one{value};
    auto result = env.store_->apply_write(env.id_, obj::WriteKind::kOverwrite,
                                          Extent1D{pos, 1}, float_bytes(one),
                                          ++seq, {});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    env.shadow_overwrite(pos, one);
  }
  ASSERT_FALSE(env.desc().sorted_delta.empty());

  const auto want = env.brute_force_gt(0.4);
  std::vector<std::uint64_t> first_positions;
  std::vector<float> first_values;
  for (const std::uint32_t threads : {1u, 4u, 8u}) {
    ServiceOptions options;
    options.num_servers = 3;
    options.strategy = Strategy::kSortedHistogram;
    options.eval_threads = threads;
    QueryService service(std::as_const(*env.store_), options);
    auto selection = service.get_selection(create(env.id_, QueryOp::kGT, 0.4));
    ASSERT_TRUE(selection.ok()) << selection.status().ToString();
    EXPECT_EQ(selection->positions, want) << "threads " << threads;

    std::vector<float> got(selection->num_hits);
    ASSERT_TRUE(service
                    .get_data<float>(env.id_, *selection, got,
                                     GetDataMode::kByPositions)
                    .ok());
    if (first_positions.empty() && !want.empty()) {
      first_positions = selection->positions;
      first_values = got;
    } else {
      EXPECT_EQ(selection->positions, first_positions)
          << "threads " << threads;
      EXPECT_EQ(std::memcmp(got.data(), first_values.data(),
                            got.size() * sizeof(float)),
                0)
          << "threads " << threads;
    }
  }
}

TEST(WritePathSortedDelta, BulkRebuildFoldsDeltaLog) {
  WriteEnv env(test_root("rebuild"), /*with_replica=*/true);
  const std::vector<float> repl{0.8412345f};
  auto result = env.store_->apply_write(env.id_, obj::WriteKind::kOverwrite,
                                        Extent1D{2, 1}, float_bytes(repl),
                                        /*write_seq=*/1, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  env.shadow_overwrite(2, repl);
  ASSERT_FALSE(env.desc().sorted_delta.empty());

  ASSERT_TRUE(sortrep::rebuild_sorted_replica(*env.store_, env.id_).ok());
  EXPECT_TRUE(env.desc().sorted_delta.empty());
  EXPECT_EQ(env.desc().replica_synced_epoch, env.desc().data_epoch);
  check_all_strategies(env, 0.4);
}

// ---------------------------------------------------------------------------
// Group 4: epoch-keyed cache invalidation.
// ---------------------------------------------------------------------------

TEST(WritePathCache, EpochMismatchDropsEntryAndCountsInvalidation) {
  server::RegionCache cache(1 << 20);
  const server::RegionCache::Key key{42, 3};
  auto buffer = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{1, 2, 3, 4});
  cache.put(key, buffer, /*epoch=*/1);
  ASSERT_NE(cache.get(key, 1), nullptr);
  EXPECT_EQ(cache.invalidations(), 0u);

  // A write bumped the region's epoch: the cached entry must be dropped,
  // never served.
  EXPECT_EQ(cache.get(key, 2), nullptr);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.entries(), 0u);

  // Re-populating under the new epoch serves again.
  cache.put(key, buffer, /*epoch=*/2);
  EXPECT_NE(cache.get(key, 2), nullptr);
}

TEST(WritePathCache, OverwriteThroughServiceInvalidatesWarmCache) {
  WriteEnv env(test_root("cache_e2e"));
  ServiceOptions options;
  options.num_servers = 3;
  options.strategy = Strategy::kFullScan;
  QueryService service(*env.store_, options);  // writable

  // Warm the region caches.
  const auto q = create(env.id_, QueryOp::kGT, 0.9);
  auto before = service.get_selection(q);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->positions, env.brute_force_gt(0.9));

  // Push a value across the query threshold through the service.
  const std::vector<float> repl{0.9512345f};
  auto report = service.overwrite(env.id_, Extent1D{10, 1},
                                  float_bytes(repl));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->data_epoch, 2u);
  EXPECT_EQ(report->regions_touched, 1u);
  env.shadow_overwrite(10, repl);

  // The re-run must see the new bytes (stale cache would miss position 10).
  auto after = service.get_selection(q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  const auto want = env.brute_force_gt(0.9);
  ASSERT_TRUE(std::find(want.begin(), want.end(), 10u) != want.end());
  EXPECT_EQ(after->positions, want);
  EXPECT_EQ(service.last_stats().max_data_epoch, 2u);
}

TEST(WritePathCache, ReadOnlyServiceRejectsWrites) {
  WriteEnv env(test_root("readonly"));
  ServiceOptions options;
  options.num_servers = 2;
  QueryService service(std::as_const(*env.store_), options);
  const std::vector<float> repl{0.5f};
  auto report = service.overwrite(env.id_, Extent1D{0, 1}, float_bytes(repl));
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace pdc::query
