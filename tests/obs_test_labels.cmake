foreach(t IN LISTS obs_test_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tsan")
endforeach()
