// Tests for sorted replica construction and permutation mapping.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "common/exec_pool.h"
#include "common/rng.h"
#include "sortrep/sorted_replica.h"

namespace pdc::sortrep {
namespace {

class SortRepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/sortrep_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    auto cluster = pfs::PfsCluster::Create(cfg);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);
    auto container = store_->create_container("c");
    ASSERT_TRUE(container.ok());
    container_ = *container;
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  ObjectId import(const std::vector<float>& data, const char* name = "key") {
    obj::ImportOptions options;
    options.region_size_bytes = 1024;
    auto id = store_->import_object<float>(container_, name,
                                           std::span<const float>(data),
                                           options);
    EXPECT_TRUE(id.ok());
    return id.ok() ? *id : kInvalidObjectId;
  }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  ObjectId container_ = kInvalidObjectId;
};

std::vector<float> random_floats(std::size_t n, std::uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-100.0, 100.0));
  return v;
}

TEST_F(SortRepTest, ReplicaIsSortedCopy) {
  auto data = random_floats(4000);
  const ObjectId source = import(data);
  auto report = build_sorted_replica(*store_, source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->build_cost_seconds, 0.0);
  EXPECT_GT(report->extra_bytes, data.size() * sizeof(float));

  auto replica = store_->get(report->replica_id);
  ASSERT_TRUE(replica.ok());
  EXPECT_TRUE((*replica)->is_sorted_replica());
  EXPECT_EQ((*replica)->sorted_source, source);
  EXPECT_EQ((*replica)->num_elements, data.size());

  std::vector<float> sorted_back(data.size());
  ASSERT_TRUE(store_
                  ->read_elements(**replica, {0, data.size()},
                                  {reinterpret_cast<std::uint8_t*>(
                                       sorted_back.data()),
                                   sorted_back.size() * sizeof(float)},
                                  {})
                  .ok());
  std::vector<float> expect = data;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted_back, expect);
}

TEST_F(SortRepTest, PermutationMapsBackToOriginalPositions) {
  auto data = random_floats(2000, 9);
  const ObjectId source = import(data);
  auto report = build_sorted_replica(*store_, source);
  ASSERT_TRUE(report.ok());
  auto replica = store_->get(report->replica_id);
  ASSERT_TRUE(replica.ok());

  std::vector<float> sorted(data.size());
  ASSERT_TRUE(store_
                  ->read_elements(**replica, {0, data.size()},
                                  {reinterpret_cast<std::uint8_t*>(sorted.data()),
                                   sorted.size() * sizeof(float)},
                                  {})
                  .ok());
  // Sorted value i came from original position perm[i].
  CostLedger ledger;
  auto positions = map_to_source_positions(*store_, **replica,
                                           {100, 500}, {&ledger, 1});
  ASSERT_TRUE(positions.ok());
  ASSERT_EQ(positions->size(), 500u);
  for (std::size_t i = 0; i < positions->size(); ++i) {
    EXPECT_EQ(data[(*positions)[i]], sorted[100 + i]);
  }
  EXPECT_GT(ledger.io_seconds(), 0.0);
}

TEST_F(SortRepTest, ReplicaRegionsHaveDisjointValueRanges) {
  auto data = random_floats(8000, 13);
  const ObjectId source = import(data);
  auto report = build_sorted_replica(*store_, source);
  ASSERT_TRUE(report.ok());
  auto replica = store_->get(report->replica_id);
  ASSERT_TRUE(replica.ok());
  const auto& regions = (*replica)->regions;
  ASSERT_GT(regions.size(), 4u);
  for (std::size_t r = 1; r < regions.size(); ++r) {
    EXPECT_LE(regions[r - 1].histogram.max_value(),
              regions[r].histogram.min_value());
  }
}

TEST_F(SortRepTest, DuplicateAndChainedReplicasRejected) {
  auto data = random_floats(500);
  const ObjectId source = import(data);
  auto report = build_sorted_replica(*store_, source);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(build_sorted_replica(*store_, source).status().code(),
            StatusCode::kAlreadyExists);
  // Sorting a replica is disallowed.
  EXPECT_EQ(build_sorted_replica(*store_, report->replica_id).status().code(),
            StatusCode::kInvalidArgument);
  // Lookup helper finds it.
  auto found = store_->sorted_replica_of(source);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, report->replica_id);
}

TEST_F(SortRepTest, MapValidation) {
  auto data = random_floats(100);
  const ObjectId source = import(data);
  auto report = build_sorted_replica(*store_, source);
  ASSERT_TRUE(report.ok());
  auto replica = store_->get(report->replica_id);
  auto source_desc = store_->get(source);
  // Not a replica.
  EXPECT_EQ(map_to_source_positions(*store_, **source_desc, {0, 10}, {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Beyond end.
  EXPECT_EQ(map_to_source_positions(*store_, **replica, {90, 20}, {})
                .status()
                .code(),
            StatusCode::kOutOfRange);
  // Empty extent is fine.
  auto empty = map_to_source_positions(*store_, **replica, {0, 0}, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(SortRepTest, StableSortKeepsEqualValuesInOriginalOrder) {
  std::vector<float> data{3.0F, 1.0F, 3.0F, 1.0F, 2.0F};
  const ObjectId source = import(data);
  auto report = build_sorted_replica(*store_, source);
  ASSERT_TRUE(report.ok());
  auto replica = store_->get(report->replica_id);
  auto positions = map_to_source_positions(*store_, **replica, {0, 5}, {});
  ASSERT_TRUE(positions.ok());
  // sorted: 1(idx1), 1(idx3), 2(idx4), 3(idx0), 3(idx2)
  EXPECT_EQ(*positions, (std::vector<std::uint64_t>{1, 3, 4, 0, 2}));
}

// ------------------------------------- parallel-build determinism

// The parallel sample-sort must be a pure speedup: replica bytes and the
// permutation file are byte-identical at any pool width, and identical to
// the serial stable_sort build.  Heavy value duplication makes this a real
// test of the (value, position) tie-break, not just of the sort.
TEST_F(SortRepTest, ParallelBuildBitIdenticalAcrossPoolSizes) {
  Rng rng(77);
  std::vector<float> data(200'000);
  for (auto& x : data) x = static_cast<float>(rng.bounded(512)) * 0.25F;

  const auto read_replica = [&](ObjectId rid) {
    auto desc = store_->get(rid);
    EXPECT_TRUE(desc.ok());
    std::vector<float> out(data.size());
    EXPECT_TRUE(store_
                    ->read_elements(**desc, {0, data.size()},
                                    {reinterpret_cast<std::uint8_t*>(out.data()),
                                     out.size() * sizeof(float)},
                                    {})
                    .ok());
    return out;
  };
  const auto read_perm = [&](ObjectId rid) {
    auto desc = store_->get(rid);
    EXPECT_TRUE(desc.ok());
    auto perm = map_to_source_positions(*store_, **desc, {0, data.size()}, {});
    EXPECT_TRUE(perm.ok());
    return perm.ok() ? *perm : std::vector<std::uint64_t>{};
  };

  obj::ImportOptions options;
  options.region_size_bytes = 1024;

  // Serial baseline: null pool, the classic stable_sort path.
  const ObjectId serial_src = import(data, "serial");
  auto serial = build_sorted_replica(*store_, serial_src, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ(serial->build_threads, 1u);
  EXPECT_GT(serial->wall_seconds, 0.0);
  const auto want_values = read_replica(serial->replica_id);
  const auto want_perm = read_perm(serial->replica_id);
  ASSERT_EQ(want_perm.size(), data.size());

  for (const std::uint32_t threads : {1u, 4u, 8u}) {
    exec::ThreadPool pool(threads);
    obj::ImportOptions pooled = options;
    pooled.pool = &pool;
    const std::string name = "pool" + std::to_string(threads);
    const ObjectId src = import(data, name.c_str());
    auto report = build_sorted_replica(*store_, src, pooled);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->build_threads, threads);
    EXPECT_GT(report->wall_seconds, 0.0);
    // Same simulated cost: wall_seconds is diagnostic-only and must never
    // leak into the deterministic cost model.
    EXPECT_EQ(report->build_cost_seconds, serial->build_cost_seconds);
    EXPECT_EQ(report->extra_bytes, serial->extra_bytes);
    EXPECT_EQ(read_replica(report->replica_id), want_values)
        << "threads=" << threads;
    EXPECT_EQ(read_perm(report->replica_id), want_perm)
        << "threads=" << threads;
    // The pool really ran the build (n crosses every parallel threshold).
    EXPECT_GT(pool.stats().executed, 0u) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace pdc::sortrep
