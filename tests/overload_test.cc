// Chaos x overload battery (ctest labels: tsan, traffic).
//
// Fault injection running *concurrently* with an overloaded open-loop
// driver: messages drop, delay, duplicate and corrupt while the admission
// queue sheds.  The invariants are the union of both batteries' promises:
// every query that completes — including ones shed and retried several
// times — returns the bit-exact oracle answer, overload surfaces as
// kOverloaded (never as a wrong answer), nothing deadlocks (the ctest
// TIMEOUT is the backstop; TSan re-runs this binary for data races), and
// a server death under load still degrades cleanly while the bounded
// queues keep their limits.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "query/query.h"
#include "query/service.h"
#include "rpc/fault.h"
#include "workloads/traffic.h"

namespace pdc {
namespace {

using workloads::ArrivalProcess;
using workloads::TrafficConfig;
using workloads::TrafficDriver;
using workloads::TrafficQuery;
using workloads::TrafficReport;

class OverloadChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/overload_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);
    const ObjectId container =
        std::move(store_->create_container("overload")).value();
    Rng rng(23);
    data_.resize(24576);
    for (auto& v : data_) v = static_cast<float>(rng.uniform(0.0, 10.0));
    obj::ImportOptions import;
    import.region_size_bytes = 4096;
    object_ = std::move(store_->import_object<float>(
                            container, "v", std::span<const float>(data_),
                            import))
                  .value();
    const std::pair<double, double> intervals[] = {
        {1.0, 9.0}, {4.5, 5.5}, {2.0, 6.0}};
    for (const auto& [lo, hi] : intervals) {
      TrafficQuery tq;
      tq.query = query::q_and(query::create(object_, QueryOp::kGT, lo),
                              query::create(object_, QueryOp::kLT, hi));
      for (float v : data_) {
        if (v > lo && v < hi) ++tq.expected_hits;
      }
      queries_.push_back(std::move(tq));
    }
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  [[nodiscard]] query::ServiceOptions overloadable_options() const {
    query::ServiceOptions options;
    options.num_servers = 4;
    options.eval_threads = 2;
    options.max_inflight = 2;
    options.queue_limit = 8;
    rpc::RetryPolicy retry;
    retry.attempt_timeout = std::chrono::milliseconds(200);
    retry.max_attempts = 8;
    retry.backoff_base = std::chrono::milliseconds(2);
    retry.backoff_cap = std::chrono::milliseconds(20);
    retry.backoff_jitter = 0.5;
    options.retry = retry;
    return options;
  }

  [[nodiscard]] TrafficConfig burst_config() const {
    TrafficConfig config;
    config.seed = 42;
    config.arrival = ArrivalProcess::kBursty;
    config.num_queries = 240;
    config.num_clients = 12;
    config.max_retries = 15;
    config.retry_backoff_us = 500;
    return config;
  }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  std::vector<float> data_;
  ObjectId object_ = kInvalidObjectId;
  std::vector<TrafficQuery> queries_;
};

// Transport faults during a 3x-capacity burst: shed-then-retried queries
// keep returning oracle answers; drops/duplicates/corruption cost retries,
// never correctness.  kOverloaded past the retry budget shows up as
// `dropped`, not as a wrong or failed answer.
TEST_F(OverloadChaosTest, FaultsDuringOverloadKeepAnswersBitExact) {
  rpc::FaultPlan plan;
  plan.seed = 42;
  plan.drop_rate = 0.05;
  plan.delay_rate = 0.10;
  plan.duplicate_rate = 0.05;
  plan.corrupt_rate = 0.02;
  plan.min_delay = std::chrono::milliseconds(1);
  plan.max_delay = std::chrono::milliseconds(5);
  rpc::FaultInjector injector(plan);

  query::ServiceOptions options = overloadable_options();
  options.fault_injector = &injector;
  query::QueryService service(*store_, options);

  const double capacity =
      TrafficDriver::measure_capacity_qps(service, queries_, 48, 4);
  ASSERT_GT(capacity, 0.0);

  TrafficDriver driver(burst_config());
  const TrafficReport report =
      driver.run_live(service, queries_, 3.0 * capacity);
  // The chaos invariant, under overload: zero wrong answers.
  EXPECT_EQ(report.mismatches, 0u);
  // Chaos costs retries and possibly drops, never non-overload errors.
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.completed + report.dropped, report.offered);
  EXPECT_GT(report.completed, 0u);
  // Bounds hold with the injector in the path too.
  EXPECT_LE(report.queue_peak, static_cast<double>(options.queue_limit));
  EXPECT_LE(report.mailbox_peak,
            static_cast<double>(options.queue_limit) * 4.0 + 64.0);
  EXPECT_GT(injector.counters().dropped + injector.counters().duplicated +
                injector.counters().corrupted,
            0u);
}

// A server killed mid-burst: the survivors absorb its regions (degraded
// mode) while their admission queues keep shedding within bounds.  The
// run must terminate (no deadlock between "server dead" redispatch and
// "server overloaded" retries) and completed answers stay bit-exact.
TEST_F(OverloadChaosTest, ServerDeathUnderOverloadDegradesCleanly) {
  rpc::FaultPlan plan;
  plan.seed = 7;
  plan.server_faults.push_back({/*server=*/3, /*after_requests=*/20,
                                rpc::ServerFate::kKilled});
  rpc::FaultInjector injector(plan);

  query::ServiceOptions options = overloadable_options();
  options.fault_injector = &injector;
  query::QueryService service(*store_, options);

  const double capacity =
      TrafficDriver::measure_capacity_qps(service, queries_, 48, 4);
  ASSERT_GT(capacity, 0.0);

  TrafficConfig config = burst_config();
  config.max_retries = 20;
  TrafficDriver driver(config);
  const TrafficReport report =
      driver.run_live(service, queries_, 2.0 * capacity);
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_EQ(report.completed + report.dropped + report.failed,
            report.offered);
  // Most of the load still completes on the three survivors.
  EXPECT_GT(report.completed, report.offered / 2);
  EXPECT_LE(report.queue_peak, static_cast<double>(options.queue_limit));
}

// A stalled (slow, not dead) server under overload: stalls inflate
// latency and force sheds/retries but every completion stays correct and
// the driver terminates inside the test timeout.
TEST_F(OverloadChaosTest, StalledServerUnderOverloadStaysCorrect) {
  rpc::FaultPlan plan;
  plan.seed = 13;
  plan.server_faults.push_back({/*server=*/1, /*after_requests=*/10,
                                rpc::ServerFate::kStalled});
  rpc::FaultInjector injector(plan);

  query::ServiceOptions options = overloadable_options();
  options.fault_injector = &injector;
  query::QueryService service(*store_, options);

  const double capacity =
      TrafficDriver::measure_capacity_qps(service, queries_, 48, 4);
  ASSERT_GT(capacity, 0.0);

  TrafficConfig config = burst_config();
  config.num_queries = 160;
  config.max_retries = 20;
  TrafficDriver driver(config);
  const TrafficReport report =
      driver.run_live(service, queries_, 2.0 * capacity);
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_EQ(report.completed + report.dropped + report.failed,
            report.offered);
  EXPECT_GT(report.completed, 0u);
}

// Concurrent gathers from many tenants while the fault injector drops
// messages: the per-tenant WFQ lanes and the shed/retry machinery share
// state guarded by one lock — this is the TSan target for the overload
// subsystem (races would surface here, deadlocks hit the ctest TIMEOUT).
TEST_F(OverloadChaosTest, ConcurrentTenantsUnderFaultsNoDeadlock) {
  rpc::FaultPlan plan;
  plan.seed = 99;
  plan.drop_rate = 0.10;
  rpc::FaultInjector injector(plan);

  query::ServiceOptions options = overloadable_options();
  options.fault_injector = &injector;
  options.tenant_weights = {4.0, 2.0, 1.0};
  query::QueryService service(*store_, options);

  constexpr int kThreads = 9;
  constexpr int kRounds = 12;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> wrong{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      query::QueryOptions opts;
      opts.tenant = static_cast<std::uint32_t>(t % 3);
      for (int round = 0; round < kRounds; ++round) {
        const TrafficQuery& tq = queries_[static_cast<std::size_t>(
            (t + round) % queries_.size())];
        auto result = service.get_num_hits(tq.query, opts);
        if (result.ok() && *result != tq.expected_hits) ++wrong;
        // kOverloaded / kUnavailable are acceptable under chaos; wrong
        // answers are not.
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0u);
}

}  // namespace
}  // namespace pdc
