// Unit tests for the common substrate: Status/Result, serialization,
// intervals, RNG determinism, thread pool, cost ledger.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/cost_model.h"
#include "common/interval.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/exec_pool.h"
#include "common/status.h"
#include "common/types.h"

namespace pdc {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("object 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "object 42");
  EXPECT_EQ(s.ToString(), "NotFound: object 42");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(status_code_name(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::IoError("disk");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status helper_propagates(bool fail) {
  PDC_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::Ok());
  return Status::Ok();
}

TEST(Result, ReturnIfErrorMacro) {
  EXPECT_TRUE(helper_propagates(false).ok());
  EXPECT_EQ(helper_propagates(true).code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Types

TEST(Types, SizesMatchCxxTypes) {
  EXPECT_EQ(pdc_type_size(PdcType::kFloat), sizeof(float));
  EXPECT_EQ(pdc_type_size(PdcType::kDouble), sizeof(double));
  EXPECT_EQ(pdc_type_size(PdcType::kInt64), sizeof(std::int64_t));
  EXPECT_EQ(kPdcTypeOf<float>, PdcType::kFloat);
  EXPECT_EQ(kPdcTypeOf<std::uint64_t>, PdcType::kUInt64);
}

TEST(Types, EvalOpAllOperators) {
  EXPECT_TRUE(eval_op(2.0, QueryOp::kGT, 1.0));
  EXPECT_FALSE(eval_op(1.0, QueryOp::kGT, 1.0));
  EXPECT_TRUE(eval_op(1.0, QueryOp::kGTE, 1.0));
  EXPECT_TRUE(eval_op(0.5, QueryOp::kLT, 1.0));
  EXPECT_FALSE(eval_op(1.0, QueryOp::kLT, 1.0));
  EXPECT_TRUE(eval_op(1.0, QueryOp::kLTE, 1.0));
  EXPECT_TRUE(eval_op(3, QueryOp::kEQ, 3));
  EXPECT_FALSE(eval_op(3, QueryOp::kEQ, 4));
}

TEST(Types, Extent1DIntersect) {
  Extent1D a{10, 20};  // [10, 30)
  Extent1D b{25, 10};  // [25, 35)
  Extent1D c = a.intersect(b);
  EXPECT_EQ(c.offset, 25u);
  EXPECT_EQ(c.count, 5u);
  Extent1D d{40, 5};
  EXPECT_TRUE(a.intersect(d).empty());
  EXPECT_TRUE(a.contains(10));
  EXPECT_FALSE(a.contains(30));
}

// ---------------------------------------------------------------- Interval

TEST(ValueInterval, FromOp) {
  auto gt = ValueInterval::from_op(QueryOp::kGT, 2.0);
  EXPECT_FALSE(gt.contains(2.0));
  EXPECT_TRUE(gt.contains(2.0000001));
  auto lte = ValueInterval::from_op(QueryOp::kLTE, 2.0);
  EXPECT_TRUE(lte.contains(2.0));
  EXPECT_FALSE(lte.contains(2.1));
  auto eq = ValueInterval::from_op(QueryOp::kEQ, 5.0);
  EXPECT_TRUE(eq.contains(5.0));
  EXPECT_FALSE(eq.contains(5.0001));
  EXPECT_FALSE(eq.empty());
}

TEST(ValueInterval, IntersectFormsRange) {
  auto gt = ValueInterval::from_op(QueryOp::kGT, 1.0);
  auto lt = ValueInterval::from_op(QueryOp::kLT, 2.0);
  auto range = gt.intersect(lt);
  EXPECT_TRUE(range.contains(1.5));
  EXPECT_FALSE(range.contains(1.0));
  EXPECT_FALSE(range.contains(2.0));
  EXPECT_FALSE(range.empty());
}

TEST(ValueInterval, EmptyDetection) {
  auto lt = ValueInterval::from_op(QueryOp::kLT, 1.0);
  auto gt = ValueInterval::from_op(QueryOp::kGT, 2.0);
  EXPECT_TRUE(lt.intersect(gt).empty());
  // Touching open endpoints: (1, 1) is empty.
  auto gt1 = ValueInterval::from_op(QueryOp::kGT, 1.0);
  auto lt1 = ValueInterval::from_op(QueryOp::kLT, 1.0);
  EXPECT_TRUE(gt1.intersect(lt1).empty());
  // [1,1] is not empty.
  auto gte = ValueInterval::from_op(QueryOp::kGTE, 1.0);
  auto lte = ValueInterval::from_op(QueryOp::kLTE, 1.0);
  EXPECT_FALSE(gte.intersect(lte).empty());
}

TEST(ValueInterval, OverlapsClosed) {
  auto q = ValueInterval::from_op(QueryOp::kGT, 5.0);
  EXPECT_FALSE(q.overlaps_closed(1.0, 5.0));   // max == open bound
  EXPECT_TRUE(q.overlaps_closed(1.0, 5.1));
  auto qe = ValueInterval::from_op(QueryOp::kGTE, 5.0);
  EXPECT_TRUE(qe.overlaps_closed(1.0, 5.0));
  EXPECT_TRUE(q.covers_closed(6.0, 7.0));
  EXPECT_FALSE(q.covers_closed(5.0, 7.0));
}

// ---------------------------------------------------------------- Serial

TEST(Serial, RoundTripScalarsAndStrings) {
  SerialWriter w;
  w.put<std::uint32_t>(0xDEADBEEF);
  w.put<double>(3.25);
  w.put_string("hello");
  w.put_vector(std::vector<std::uint64_t>{1, 2, 3});

  auto bytes = w.take();
  SerialReader r(bytes);
  std::uint32_t u = 0;
  double d = 0;
  std::string s;
  std::vector<std::uint64_t> v;
  ASSERT_TRUE(r.get(u).ok());
  ASSERT_TRUE(r.get(d).ok());
  ASSERT_TRUE(r.get_string(s).ok());
  ASSERT_TRUE(r.get_vector(v).ok());
  EXPECT_EQ(u, 0xDEADBEEF);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serial, UnderrunIsCorruptionNotCrash) {
  SerialWriter w;
  w.put<std::uint16_t>(7);
  auto bytes = w.take();
  SerialReader r(bytes);
  std::uint64_t big = 0;
  EXPECT_EQ(r.get(big).code(), StatusCode::kCorruption);
}

TEST(Serial, MaliciousLengthPrefixRejected) {
  SerialWriter w;
  w.put<std::uint64_t>(~0ull);  // vector length prefix claiming 2^64-1 elems
  auto bytes = w.take();
  SerialReader r(bytes);
  std::vector<std::uint64_t> v;
  EXPECT_EQ(r.get_vector(v).code(), StatusCode::kCorruption);
}

TEST(Serial, BytesViewBorrowsWithoutCopy) {
  SerialWriter w;
  std::vector<std::uint8_t> blob{1, 2, 3, 4};
  w.put_bytes(blob);
  auto bytes = w.take();
  SerialReader r(bytes);
  std::span<const std::uint8_t> view;
  ASSERT_TRUE(r.get_bytes_view(view).ok());
  ASSERT_EQ(view.size(), 4u);
  EXPECT_EQ(view.data(), bytes.data() + sizeof(std::uint64_t));
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BoundedNoModuloEscape) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.bounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues reached
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(3);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsAllTasks) {
  exec::ThreadPool pool(4);
  std::atomic<int> count{0};
  exec::TaskGroup group(&pool);
  for (int i = 0; i < 64; ++i) {
    group.spawn([&count] { ++count; });
  }
  group.wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  exec::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  exec::parallel_for(&pool, 1000, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  exec::ThreadPool pool(2);
  exec::parallel_for(&pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

// ---------------------------------------------------------------- Cost model

TEST(CostLedger, AccumulatesAndMerges) {
  CostLedger a, b;
  a.add_io(1.0);
  a.add_cpu(0.5);
  b.add_net(0.25);
  b.add_bytes_read(100);
  b.add_read_ops(2);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_seconds(), 1.75);
  EXPECT_EQ(a.bytes_read(), 100u);
  EXPECT_EQ(a.read_ops(), 2u);
  a.reset();
  EXPECT_DOUBLE_EQ(a.total_seconds(), 0.0);
}

TEST(CostModel, NetCostScalesWithBytes) {
  CostModel m;
  EXPECT_GT(m.net_cost(1 << 20), m.net_cost(0));
  EXPECT_DOUBLE_EQ(m.net_cost(0), m.net_latency_s);
  EXPECT_GT(m.scan_cost(1 << 20), 0.0);
}

}  // namespace
}  // namespace pdc
