// MetaCheck: differential testing of the distributed metadata service
// (sharded affix tries behind kMetaQuery/kMetaUpdate) against the
// MetaStore linear-scan oracle, across server counts and degraded mode.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "metadata/meta_store.h"
#include "testing/metacheck.h"

namespace pdc::testing {
namespace {

std::string test_temp_root() {
  return ::testing::TempDir() + "/metacheck_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name();
}

MetaRunOptions fast_options() {
  MetaRunOptions options;
  options.temp_root = test_temp_root();
  return options;
}

// ------------------------------------------------------------------ smoke

// The headline property: the sharded trie path returns the exact posting
// lists the linear-scan oracle computes at 1, 2 and 4 servers, through
// replicated updates, including the fault-injected deployment (one server
// killed mid-case) at the largest server count.  PDC_QC_CASES /
// PDC_QC_SEED override the defaults — that is how the extended suite and
// failure replays run.
TEST(MetaCheck, DistributedMatchesOracle) {
  MetaRunOptions options = fast_options();
  options.degraded = true;
  const Status status = run_metacheck(/*base_seed=*/1, /*num_cases=*/8,
                                      options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// Replays are only possible if the generator is a pure function of the
// seed: same seed, same catalog bytes, same ops.
TEST(MetaCheck, GeneratorIsDeterministic) {
  MetaGen a(0xC0FFEEu);
  MetaGen b(0xC0FFEEu);
  const std::string first = describe_meta_case(a.draw_case());
  const std::string second = describe_meta_case(b.draw_case());
  EXPECT_EQ(first, second);
  MetaGen c(0xC0FFEFu);
  EXPECT_NE(first, describe_meta_case(c.draw_case()));
}

// Adversarial coverage: across a handful of seeds the generator must
// actually emit the families the harness exists for — affix conditions,
// values with non-ASCII bytes, literal '*' bytes, and int64 magnitudes at
// or beyond 2^53 (where the numeric lane's double fold goes inexact).
TEST(MetaCheck, GeneratorCoversAdversarialFamilies) {
  bool saw_affix = false;
  bool saw_high_byte = false;
  bool saw_star = false;
  bool saw_big_int = false;
  constexpr std::int64_t kTwoPow53 = 9007199254740992LL;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    MetaGen gen(seed);
    const MetaCase c = gen.draw_case();
    const auto scan_value = [&](const meta::MetaValue& v) {
      if (const auto* s = std::get_if<std::string>(&v)) {
        for (const char ch : *s) {
          if (static_cast<unsigned char>(ch) >= 0x80) saw_high_byte = true;
          if (ch == '*') saw_star = true;
        }
      }
      if (const auto* i = std::get_if<std::int64_t>(&v)) {
        if (*i >= kTwoPow53 || *i <= -kTwoPow53) saw_big_int = true;
      }
    };
    for (const auto& object : c.catalog.objects) {
      for (const auto& [name, value] : object) scan_value(value);
    }
    for (const auto& op : c.ops) {
      if (op.is_update) {
        scan_value(op.value);
        continue;
      }
      for (const auto& cond : op.query) {
        if (cond.kind != meta::MetaMatchKind::kValue) saw_affix = true;
        scan_value(cond.value);
      }
    }
  }
  EXPECT_TRUE(saw_affix);
  EXPECT_TRUE(saw_high_byte);
  EXPECT_TRUE(saw_star);
  EXPECT_TRUE(saw_big_int);
}

// --------------------------------------------------------------- shrinker

// The shrinker must converge to a small case while preserving the failure
// predicate, and never return a case the predicate rejects.
TEST(MetaCheck, ShrinkerPreservesPredicate) {
  MetaGen gen(11);
  MetaCase big = gen.draw_case();
  // Synthetic "failure": the case still contains at least one query op.
  const auto still_fails = [](const MetaCase& c) {
    for (const auto& op : c.ops) {
      if (!op.is_update) return true;
    }
    return false;
  };
  ASSERT_TRUE(still_fails(big));
  const MetaShrinkResult result = shrink_meta(big, still_fails);
  EXPECT_TRUE(still_fails(result.minimal));
  EXPECT_LE(result.minimal.ops.size(), 1u);
  EXPECT_GT(result.attempts, 0u);
}

// ------------------------------------------------------------- pinned case

// Pinned adversarial case run end-to-end: shared prefixes that force trie
// edge splits, a literal '*' value (the kind field is the wildcard — the
// byte never is), and an int64 at 2^53 + 1 that a double fold would
// collapse onto 2^53.  Both paths must agree exactly at every server
// count, so this fails loudly if either side starts treating '*' as a
// wildcard or folds int64 exactness away.
TEST(MetaCheck, PinnedEdgeSplitStarAndBigIntCase) {
  constexpr std::int64_t kTwoPow53 = 9007199254740992LL;
  MetaCase c;
  c.seed = 0;
  c.catalog.first_object = 1;
  c.catalog.objects.resize(4);
  c.catalog.objects[0] = {{"run", std::string("plate53")},
                          {"n", kTwoPow53}};
  c.catalog.objects[1] = {{"run", std::string("plate537")},
                          {"n", kTwoPow53 + 1}};
  c.catalog.objects[2] = {{"run", std::string("*")}, {"n", kTwoPow53 - 1}};
  c.catalog.objects[3] = {{"run", std::string("plate5")}, {"n", std::int64_t{53}}};

  MetaOpSpec exact;
  exact.query.push_back(
      {"run", QueryOp::kEQ, std::string("*"), meta::MetaMatchKind::kValue});
  c.ops.push_back(exact);

  MetaOpSpec prefix;
  prefix.query.push_back({"run", QueryOp::kEQ, std::string("plate53"),
                          meta::MetaMatchKind::kPrefix});
  c.ops.push_back(prefix);

  MetaOpSpec update;  // replicated update, then re-query the prefix
  update.is_update = true;
  update.target = 3;
  update.attribute = "run";
  update.value = std::string("plate53x");
  c.ops.push_back(update);
  c.ops.push_back(prefix);

  MetaOpSpec big;
  big.query.push_back({"n", QueryOp::kGT,
                       static_cast<std::int64_t>(kTwoPow53 - 1),
                       meta::MetaMatchKind::kValue});
  c.ops.push_back(big);

  const auto result = run_meta_case(c, fast_options());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (result.value().has_value()) {
    const MetaMismatch& m = *result.value();
    FAIL() << "mismatch at op " << m.op_index << " [" << m.path
           << "]: " << m.detail;
  }
}

}  // namespace
}  // namespace pdc::testing
