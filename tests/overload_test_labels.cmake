foreach(t IN LISTS overload_test_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tsan;traffic")
endforeach()
