foreach(t IN LISTS traffic_test_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "traffic")
endforeach()
