foreach(t IN LISTS concurrency_test_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tsan")
endforeach()
