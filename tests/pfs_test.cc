// Tests for the simulated parallel file system and read aggregation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <vector>

#include "pfs/pfs.h"
#include "pfs/read_aggregator.h"

namespace pdc::pfs {
namespace {

class PfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/pfs_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    PfsConfig cfg;
    cfg.root_dir = root_;
    cfg.num_osts = 8;
    cfg.stripe_size = 1024;
    cfg.stripe_count = 4;
    auto cluster = PfsCluster::Create(cfg);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
  }

  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<PfsCluster> cluster_;
};

TEST_F(PfsTest, CreateWriteReadRoundTrip) {
  auto file = cluster_->create("obj_1.dat");
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> data(10000);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE(file->write(0, data).ok());

  std::vector<std::uint8_t> out(10000);
  CostLedger ledger;
  ASSERT_TRUE(file->read(0, out, {&ledger, 1}).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(ledger.bytes_read(), 10000u);
  EXPECT_EQ(ledger.read_ops(), 1u);
  EXPECT_GT(ledger.io_seconds(), 0.0);
}

TEST_F(PfsTest, PartialReadAtOffset) {
  auto file = cluster_->create("obj_2.dat");
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i % 251;
  ASSERT_TRUE(file->write(0, data).ok());

  std::vector<std::uint8_t> out(100);
  ASSERT_TRUE(file->read(1000, out, {}).ok());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], (1000 + i) % 251);
  }
}

TEST_F(PfsTest, ReadPastEndFails) {
  auto file = cluster_->create("small.dat");
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> data(10, 7);
  ASSERT_TRUE(file->write(0, data).ok());
  std::vector<std::uint8_t> out(20);
  EXPECT_EQ(file->read(0, out, {}).code(), StatusCode::kOutOfRange);
}

TEST_F(PfsTest, OpenMissingFileIsNotFound) {
  EXPECT_EQ(cluster_->open("nope.dat").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(cluster_->exists("nope.dat"));
}

TEST_F(PfsTest, CreateExclusiveCollision) {
  ASSERT_TRUE(cluster_->create("dup.dat").ok());
  EXPECT_EQ(cluster_->create("dup.dat", /*truncate=*/false).status().code(),
            StatusCode::kAlreadyExists);
  // Truncating create succeeds.
  EXPECT_TRUE(cluster_->create("dup.dat", /*truncate=*/true).ok());
}

TEST_F(PfsTest, RemoveAndSize) {
  auto file = cluster_->create("gone.dat");
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> data(123, 1);
  ASSERT_TRUE(file->write(0, data).ok());
  auto size = cluster_->file_size("gone.dat");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 123u);
  ASSERT_TRUE(cluster_->remove("gone.dat").ok());
  EXPECT_FALSE(cluster_->exists("gone.dat"));
  EXPECT_TRUE(cluster_->remove("gone.dat").ok());  // idempotent
}

TEST_F(PfsTest, StripedExtentTouchesMultipleOsts) {
  auto file = cluster_->create("striped.dat");
  ASSERT_TRUE(file.ok());
  // stripe_size=1024, stripe_count=4.
  EXPECT_EQ(file->osts_touched(0, 100), 1u);
  EXPECT_EQ(file->osts_touched(0, 1025), 2u);
  EXPECT_EQ(file->osts_touched(0, 4096), 4u);
  EXPECT_EQ(file->osts_touched(0, 1 << 20), 4u);  // capped at stripe_count
  EXPECT_EQ(file->osts_touched(0, 0), 0u);
}

TEST_F(PfsTest, ContentionReducesBandwidth) {
  const double solo = cluster_->effective_read_bandwidth(4, 1);
  const double busy = cluster_->effective_read_bandwidth(4, 64);
  EXPECT_GT(solo, busy);
  // 64 readers * 4 stripes over 8 OSTs -> 32x oversubscription.
  EXPECT_NEAR(solo / busy, 32.0, 1e-9);
}

TEST_F(PfsTest, LargerReadsCostMoreButFewerOpsWin) {
  auto file = cluster_->create("cost.dat");
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> data(64 * 1024, 9);
  ASSERT_TRUE(file->write(0, data).ok());

  // One 64 KiB read vs 64 x 1 KiB reads: same bytes, far fewer op latencies.
  CostLedger one, many;
  std::vector<std::uint8_t> buf(64 * 1024);
  ASSERT_TRUE(file->read(0, buf, {&one, 1}).ok());
  std::vector<std::uint8_t> small(1024);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(file->read(i * 1024, small, {&many, 1}).ok());
  }
  EXPECT_LT(one.io_seconds(), many.io_seconds());
  EXPECT_EQ(one.bytes_read(), many.bytes_read());
}

// ------------------------------------------------------------- aggregation

TEST(ReadAggregatorPlan, MergesCloseExtents) {
  AggregationPolicy policy;
  policy.max_gap_bytes = 10;
  policy.max_run_bytes = 1'000'000;
  std::vector<Extent1D> extents{{0, 100}, {105, 50}, {300, 10}};
  auto runs = plan_aggregated_reads(extents, policy);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].offset, 0u);
  EXPECT_EQ(runs[0].count, 155u);  // merged across the 5-byte gap
  EXPECT_EQ(runs[1].offset, 300u);
}

TEST(ReadAggregatorPlan, RespectsMaxRunBytes) {
  AggregationPolicy policy;
  policy.max_gap_bytes = 1000;
  policy.max_run_bytes = 150;
  std::vector<Extent1D> extents{{0, 100}, {110, 100}};
  auto runs = plan_aggregated_reads(extents, policy);
  EXPECT_EQ(runs.size(), 2u);  // merging would exceed 150 bytes
}

TEST(ReadAggregatorPlan, ZeroGapOnlyMergesAdjacent) {
  AggregationPolicy policy;
  policy.max_gap_bytes = 0;
  std::vector<Extent1D> extents{{0, 10}, {10, 10}, {21, 10}};
  auto runs = plan_aggregated_reads(extents, policy);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].count, 20u);
}

TEST(ReadAggregatorPlan, EmptyInput) {
  EXPECT_TRUE(plan_aggregated_reads({}, {}).empty());
}

TEST_F(PfsTest, AggregatedReadScattersCorrectly) {
  auto file = cluster_->create("agg.dat");
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i % 253;
  ASSERT_TRUE(file->write(0, data).ok());

  std::vector<Extent1D> extents{{10, 20}, {50, 30}, {4000, 100}};
  std::vector<std::vector<std::uint8_t>> bufs;
  std::vector<std::span<std::uint8_t>> dests;
  for (const auto& e : extents) {
    bufs.emplace_back(e.count);
    dests.emplace_back(bufs.back());
  }
  AggregationPolicy policy;
  policy.max_gap_bytes = 64;
  CostLedger ledger;
  ASSERT_TRUE(
      aggregated_read(*file, extents, dests, policy, {&ledger, 1}).ok());
  for (std::size_t e = 0; e < extents.size(); ++e) {
    for (std::size_t i = 0; i < extents[e].count; ++i) {
      EXPECT_EQ(bufs[e][i], (extents[e].offset + i) % 253);
    }
  }
  // Extents 0 and 1 merge (gap 20 <= 64); extent 2 stands alone.
  EXPECT_EQ(ledger.read_ops(), 2u);
}

TEST_F(PfsTest, AggregatedReadValidatesArguments) {
  auto file = cluster_->create("agg2.dat");
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> data(100, 1);
  ASSERT_TRUE(file->write(0, data).ok());

  std::vector<Extent1D> extents{{0, 10}};
  std::vector<std::uint8_t> buf(5);  // wrong size
  std::vector<std::span<std::uint8_t>> dests{std::span<std::uint8_t>(buf)};
  EXPECT_EQ(aggregated_read(*file, extents, dests, {}, {}).code(),
            StatusCode::kInvalidArgument);
}

TEST(ReadAggregatorPlan, OverlappingExtentsAlwaysMerge) {
  // Overlap merging ignores max_run_bytes: the scatter phase needs every
  // extent inside a single run, and the overlapped bytes are read once.
  AggregationPolicy policy;
  policy.max_gap_bytes = 0;
  policy.max_run_bytes = 50;
  std::vector<Extent1D> extents{{0, 40}, {30, 40}, {60, 40}};
  auto runs = plan_aggregated_reads(extents, policy);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].offset, 0u);
  EXPECT_EQ(runs[0].count, 100u);
}

TEST(ReadAggregatorPlan, ContainedExtentDoesNotShrinkRun) {
  AggregationPolicy policy;
  policy.max_gap_bytes = 0;
  std::vector<Extent1D> extents{{0, 100}, {10, 20}, {100, 10}};
  auto runs = plan_aggregated_reads(extents, policy);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].count, 110u);
}

/// Reference for the normalization tests: one read per extent.
void point_reads(const PfsFile& file, const std::vector<Extent1D>& extents,
                 std::vector<std::vector<std::uint8_t>>& out,
                 CostLedger* ledger) {
  out.clear();
  for (const Extent1D& e : extents) {
    out.emplace_back(e.count);
    if (e.count > 0) {
      ASSERT_TRUE(file.read(e.offset, out.back(), {ledger, 1}).ok());
    }
  }
}

TEST_F(PfsTest, AggregatedReadAcceptsAnyExtentOrder) {
  auto file = cluster_->create("agg_order.dat");
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> data(16384);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i % 241;
  ASSERT_TRUE(file->write(0, data).ok());

  // Out-of-order, adjacent, overlapping, duplicated and empty extents in
  // one request: every buffer must still receive exactly its own bytes,
  // with strictly fewer storage operations than one read per extent.
  std::vector<Extent1D> extents{
      {4000, 100},  // out of order
      {0, 64},      // adjacent pair start
      {64, 64},     // adjacent pair end
      {90, 50},     // overlaps the previous extent
      {4000, 100},  // exact duplicate
      {500, 0},     // empty
      {4010, 20},   // contained in an earlier extent
  };
  std::vector<std::vector<std::uint8_t>> bufs;
  std::vector<std::span<std::uint8_t>> dests;
  for (const auto& e : extents) {
    bufs.emplace_back(e.count);
    dests.emplace_back(bufs.back());
  }
  AggregationPolicy policy;
  policy.max_gap_bytes = 64;
  CostLedger agg;
  ASSERT_TRUE(
      aggregated_read(*file, extents, dests, policy, {&agg, 1}).ok());

  std::vector<std::vector<std::uint8_t>> expected;
  CostLedger raw;
  point_reads(*file, extents, expected, &raw);
  for (std::size_t e = 0; e < extents.size(); ++e) {
    EXPECT_EQ(bufs[e], expected[e]) << "extent " << e;
  }
  EXPECT_LT(agg.read_ops(), raw.read_ops());
  EXPECT_EQ(agg.read_ops(), 2u);  // {0..140} and {4000..4100}
}

TEST_F(PfsTest, AggregatedReadSortedAndShuffledAgree) {
  auto file = cluster_->create("agg_shuffle.dat");
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> data(32768);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = (i * 7) % 239;
  ASSERT_TRUE(file->write(0, data).ok());

  std::vector<Extent1D> sorted;
  for (int i = 0; i < 32; ++i) {
    sorted.push_back({static_cast<std::uint64_t>(i) * 1000, 128});
  }
  std::vector<Extent1D> shuffled = sorted;
  // Deterministic shuffle: reverse then swap odd/even pairs.
  std::reverse(shuffled.begin(), shuffled.end());
  for (std::size_t i = 0; i + 1 < shuffled.size(); i += 2) {
    std::swap(shuffled[i], shuffled[i + 1]);
  }

  const auto run = [&](const std::vector<Extent1D>& extents,
                       CostLedger* ledger) {
    std::vector<std::vector<std::uint8_t>> bufs;
    std::vector<std::span<std::uint8_t>> dests;
    for (const auto& e : extents) {
      bufs.emplace_back(e.count);
      dests.emplace_back(bufs.back());
    }
    AggregationPolicy policy;
    policy.max_gap_bytes = 2048;
    EXPECT_TRUE(
        aggregated_read(*file, extents, dests, policy, {ledger, 1}).ok());
    return bufs;
  };

  CostLedger a, b;
  const auto got_sorted = run(sorted, &a);
  const auto got_shuffled = run(shuffled, &b);
  ASSERT_EQ(got_sorted.size(), got_shuffled.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // shuffled[j] holds the same extent as some sorted[i]; match by offset.
    for (std::size_t j = 0; j < shuffled.size(); ++j) {
      if (shuffled[j].offset == sorted[i].offset) {
        EXPECT_EQ(got_sorted[i], got_shuffled[j]);
      }
    }
  }
  // Same plan either way: identical operation count and bytes.
  EXPECT_EQ(a.read_ops(), b.read_ops());
  EXPECT_EQ(a.bytes_read(), b.bytes_read());
}

TEST_F(PfsTest, AggregationReducesSimulatedCost) {
  auto file = cluster_->create("agg3.dat");
  ASSERT_TRUE(file.ok());
  std::vector<std::uint8_t> data(1 << 20, 3);
  ASSERT_TRUE(file->write(0, data).ok());

  // 256 scattered 64-byte extents, 4 KiB apart.
  std::vector<Extent1D> extents;
  std::vector<std::vector<std::uint8_t>> bufs;
  std::vector<std::span<std::uint8_t>> dests;
  for (int i = 0; i < 256; ++i) {
    extents.push_back({static_cast<std::uint64_t>(i) * 4096, 64});
    bufs.emplace_back(64);
  }
  for (auto& b : bufs) dests.emplace_back(b);

  AggregationPolicy coalesce;
  coalesce.max_gap_bytes = 1 << 16;
  AggregationPolicy none;
  none.max_gap_bytes = 0;

  CostLedger agg, raw;
  ASSERT_TRUE(aggregated_read(*file, extents, dests, coalesce, {&agg, 1}).ok());
  ASSERT_TRUE(aggregated_read(*file, extents, dests, none, {&raw, 1}).ok());
  EXPECT_LT(agg.read_ops(), raw.read_ops());
  EXPECT_LT(agg.io_seconds(), raw.io_seconds());
}

}  // namespace
}  // namespace pdc::pfs
