// Tests for DNF normalization and selectivity-ordered planning.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "query/planner.h"
#include "sortrep/sorted_replica.h"

namespace pdc::query {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/planner_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);
    const ObjectId container =
        std::move(store_->create_container("c")).value();

    Rng rng(11);
    // selective_: 95% of mass below 1, long tail above.
    std::vector<float> selective(20000);
    std::vector<float> broad(20000);
    for (std::size_t i = 0; i < selective.size(); ++i) {
      selective[i] = static_cast<float>(rng.exponential(3.0));
      broad[i] = static_cast<float>(rng.uniform(0.0, 100.0));
    }
    obj::ImportOptions options;
    options.region_size_bytes = 8192;
    selective_id_ = std::move(store_->import_object<float>(
                                  container, "selective",
                                  std::span<const float>(selective), options))
                        .value();
    broad_id_ = std::move(store_->import_object<float>(
                              container, "broad",
                              std::span<const float>(broad), options))
                    .value();
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  ObjectId selective_id_ = kInvalidObjectId;
  ObjectId broad_id_ = kInvalidObjectId;
};

TEST_F(PlannerTest, LeafPlansToSingleTerm) {
  const auto q = create(selective_id_, QueryOp::kGT, 1.0);
  auto plan = plan_query(*q, *store_, {});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->terms.size(), 1u);
  ASSERT_EQ(plan->terms[0].conjuncts.size(), 1u);
  EXPECT_EQ(plan->terms[0].conjuncts[0].object, selective_id_);
  EXPECT_DOUBLE_EQ(plan->terms[0].conjuncts[0].interval.lo, 1.0);
}

TEST_F(PlannerTest, SameObjectConditionsMergeToOneInterval) {
  const auto q = q_and(create(selective_id_, QueryOp::kGT, 1.0),
                       create(selective_id_, QueryOp::kLT, 2.0));
  auto plan = plan_query(*q, *store_, {});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->terms.size(), 1u);
  ASSERT_EQ(plan->terms[0].conjuncts.size(), 1u);
  const auto& interval = plan->terms[0].conjuncts[0].interval;
  EXPECT_DOUBLE_EQ(interval.lo, 1.0);
  EXPECT_DOUBLE_EQ(interval.hi, 2.0);
}

TEST_F(PlannerTest, ContradictionEliminatesTerm) {
  const auto q = q_and(create(selective_id_, QueryOp::kGT, 5.0),
                       create(selective_id_, QueryOp::kLT, 1.0));
  auto plan = plan_query(*q, *store_, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->terms.empty());
}

TEST_F(PlannerTest, OrProducesTwoTerms) {
  const auto q = q_or(create(selective_id_, QueryOp::kGT, 5.0),
                      create(broad_id_, QueryOp::kLT, 10.0));
  auto plan = plan_query(*q, *store_, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->terms.size(), 2u);
}

TEST_F(PlannerTest, AndOverOrDistributes) {
  // a AND (b OR c) -> (a AND b) OR (a AND c)
  const auto q = q_and(create(selective_id_, QueryOp::kGT, 1.0),
                       q_or(create(broad_id_, QueryOp::kLT, 10.0),
                            create(broad_id_, QueryOp::kGT, 90.0)));
  auto plan = plan_query(*q, *store_, {});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->terms.size(), 2u);
  for (const auto& term : plan->terms) {
    EXPECT_EQ(term.conjuncts.size(), 2u);
  }
}

TEST_F(PlannerTest, SelectivityOrderingPutsSelectiveFirst) {
  // selective > 2.0 keeps ~0.2% of an Exp(3) distribution;
  // broad < 90 keeps ~90%.
  const auto q = q_and(create(broad_id_, QueryOp::kLT, 90.0),
                       create(selective_id_, QueryOp::kGT, 2.0));
  auto plan = plan_query(*q, *store_, {});
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->terms.size(), 1u);
  ASSERT_EQ(plan->terms[0].conjuncts.size(), 2u);
  EXPECT_EQ(plan->terms[0].conjuncts[0].object, selective_id_)
      << "planner must order the selective condition first";
  EXPECT_EQ(plan->terms[0].conjuncts[1].object, broad_id_);

  PlanOptions no_order;
  no_order.order_by_selectivity = false;
  auto naive = plan_query(*q, *store_, no_order);
  ASSERT_TRUE(naive.ok());
  // Without ordering, conjuncts follow object-id order (map order).
  EXPECT_EQ(naive->terms[0].conjuncts[0].object,
            std::min(selective_id_, broad_id_));
}

TEST_F(PlannerTest, EstimateSelectivityIsMonotone) {
  auto object = store_->get(selective_id_);
  ASSERT_TRUE(object.ok());
  const double wide =
      estimate_selectivity(**object, ValueInterval::from_op(QueryOp::kGT, 0.5));
  const double narrow =
      estimate_selectivity(**object, ValueInterval::from_op(QueryOp::kGT, 3.0));
  EXPECT_GT(wide, narrow);
  EXPECT_GE(narrow, 0.0);
  EXPECT_LE(wide, 1.0);
}

TEST_F(PlannerTest, SortedStrategyAttachesReplicaOnlyForDriver) {
  auto replica = sortrep::build_sorted_replica(*store_, selective_id_);
  ASSERT_TRUE(replica.ok());

  PlanOptions options;
  options.strategy = server::Strategy::kSortedHistogram;

  // Driver (most selective) = selective_id_ -> replica attached.
  const auto q1 = q_and(create(selective_id_, QueryOp::kGT, 2.0),
                        create(broad_id_, QueryOp::kLT, 90.0));
  auto plan1 = plan_query(*q1, *store_, options);
  ASSERT_TRUE(plan1.ok());
  EXPECT_EQ(plan1->terms[0].driver_replica, replica->replica_id);

  // Driver = broad (more selective here) -> replica NOT attached, exactly
  // the paper's Fig. 4 "evaluates x first" situation.
  const auto q2 = q_and(create(selective_id_, QueryOp::kGT, 0.01),
                        create(broad_id_, QueryOp::kLT, 0.5));
  auto plan2 = plan_query(*q2, *store_, options);
  ASSERT_TRUE(plan2.ok());
  EXPECT_EQ(plan2->terms[0].conjuncts[0].object, broad_id_);
  EXPECT_EQ(plan2->terms[0].driver_replica, kInvalidObjectId);
}

TEST_F(PlannerTest, MismatchedDimensionsRejected) {
  const ObjectId container = std::move(store_->create_container("c2")).value();
  std::vector<float> small(100, 1.0F);
  const ObjectId small_id =
      std::move(store_->import_object<float>(container, "small",
                                             std::span<const float>(small), {}))
          .value();
  const auto q = q_and(create(selective_id_, QueryOp::kGT, 1.0),
                       create(small_id, QueryOp::kGT, 0.0));
  EXPECT_EQ(plan_query(*q, *store_, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PlannerTest, UnknownObjectRejected) {
  const auto q = create(424242, QueryOp::kGT, 1.0);
  EXPECT_EQ(plan_query(*q, *store_, {}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(PlannerTest, DnfBlowupGuard) {
  // (a1 OR a2) AND (b1 OR b2) AND ... with max_terms=4 must be rejected
  // once the cross product exceeds the cap.
  QueryPtr q = q_or(create(selective_id_, QueryOp::kGT, 1.0),
                    create(selective_id_, QueryOp::kLT, 0.5));
  for (int i = 0; i < 4; ++i) {
    q = q_and(q, q_or(create(broad_id_, QueryOp::kGT, 10.0 + i),
                      create(broad_id_, QueryOp::kLT, 5.0 - i)));
  }
  PlanOptions options;
  options.max_terms = 4;
  EXPECT_EQ(plan_query(*q, *store_, options).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace pdc::query
