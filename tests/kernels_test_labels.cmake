foreach(t IN LISTS kernels_test_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "tsan")
endforeach()
