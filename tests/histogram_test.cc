// Tests for Algorithm 1 histograms, global merging, pruning and estimation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/exec_pool.h"
#include "common/rng.h"
#include "histogram/histogram.h"

namespace pdc::hist {
namespace {

std::vector<double> uniform_data(std::size_t n, double lo, double hi,
                                 std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

TEST(RoundDownPow2, ExactAndInexact) {
  EXPECT_DOUBLE_EQ(round_down_pow2(8.0), 8.0);
  EXPECT_DOUBLE_EQ(round_down_pow2(9.5), 8.0);
  EXPECT_DOUBLE_EQ(round_down_pow2(1.0), 1.0);
  EXPECT_DOUBLE_EQ(round_down_pow2(0.3), 0.25);
  EXPECT_DOUBLE_EQ(round_down_pow2(0.125), 0.125);
  EXPECT_DOUBLE_EQ(round_down_pow2(0.0), 1.0);   // degenerate span
  EXPECT_DOUBLE_EQ(round_down_pow2(-3.0), 1.0);  // degenerate span
}

TEST(Histogram, EmptyDataIsInvalid) {
  MergeableHistogram h =
      MergeableHistogram::Build<double>(std::span<const double>{});
  EXPECT_FALSE(h.valid());
  EXPECT_EQ(h.total_count(), 0u);
}

TEST(Histogram, TotalCountAndMinMaxExact) {
  auto data = uniform_data(10000, -3.0, 7.0);
  auto h = MergeableHistogram::Build<double>(data);
  EXPECT_EQ(h.total_count(), 10000u);
  double mn = data[0], mx = data[0];
  for (double v : data) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_DOUBLE_EQ(h.min_value(), mn);
  EXPECT_DOUBLE_EQ(h.max_value(), mx);
}

TEST(Histogram, BinWidthIsPowerOfTwoAndEdgesAligned) {
  auto data = uniform_data(5000, 0.0, 100.0);
  auto h = MergeableHistogram::Build<double>(data);
  const double w = h.bin_width();
  // w is 2^k: frexp mantissa must be exactly 0.5.
  int exp = 0;
  EXPECT_DOUBLE_EQ(std::frexp(w, &exp), 0.5);
  // First edge is an integer multiple of the width.
  EXPECT_DOUBLE_EQ(std::fmod(h.bin_left_edge(0), w), 0.0);
}

TEST(Histogram, BinCountAtLeastTarget) {
  HistogramConfig cfg;
  cfg.target_bins = 50;
  auto data = uniform_data(20000, 0.0, 1000.0);
  auto h = MergeableHistogram::Build<double>(data, cfg);
  // Rounding the width DOWN can only increase the bin count (paper: the
  // result has at least Nbin bins).
  EXPECT_GE(h.num_bins(), 50u);
  // But not pathologically more than 2x (width is at most halved).
  EXPECT_LE(h.num_bins(), 110u);
}

TEST(Histogram, CountsSumToTotal) {
  auto data = uniform_data(12345, -5.0, 5.0);
  auto h = MergeableHistogram::Build<double>(data);
  std::uint64_t sum = 0;
  for (auto c : h.counts()) sum += c;
  EXPECT_EQ(sum, 12345u);
}

TEST(Histogram, ConstantDataSingleBin) {
  std::vector<double> data(1000, 42.0);
  auto h = MergeableHistogram::Build<double>(data);
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(h.total_count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min_value(), 42.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 42.0);
  auto est = h.estimate(ValueInterval::from_op(QueryOp::kEQ, 42.0));
  EXPECT_EQ(est.upper, 1000u);
}

TEST(Histogram, OutliersBeyondSampleLandInEdgeBins) {
  // Sampling may miss the single huge outlier; it must still be counted.
  auto data = uniform_data(50000, 0.0, 1.0);
  data.push_back(1e6);
  data.push_back(-1e6);
  auto h = MergeableHistogram::Build<double>(data);
  EXPECT_EQ(h.total_count(), 50002u);
  EXPECT_DOUBLE_EQ(h.max_value(), 1e6);
  EXPECT_DOUBLE_EQ(h.min_value(), -1e6);
  std::uint64_t sum = 0;
  for (auto c : h.counts()) sum += c;
  EXPECT_EQ(sum, 50002u);
  // The outlier is findable: a query around 1e6 must not be pruned.
  EXPECT_TRUE(h.may_overlap(ValueInterval::from_op(QueryOp::kGT, 999.0)));
}

TEST(Histogram, PruningRejectsDisjointQueries) {
  auto data = uniform_data(1000, 10.0, 20.0);
  auto h = MergeableHistogram::Build<double>(data);
  EXPECT_FALSE(h.may_overlap(ValueInterval::from_op(QueryOp::kGT, 25.0)));
  EXPECT_FALSE(h.may_overlap(ValueInterval::from_op(QueryOp::kLT, 5.0)));
  EXPECT_TRUE(h.may_overlap(ValueInterval::from_op(QueryOp::kGT, 15.0)));
}

TEST(Histogram, EstimateBoundsBracketTruth) {
  auto data = uniform_data(100000, 0.0, 10.0, 99);
  auto h = MergeableHistogram::Build<double>(data);
  for (const double lo : {1.0, 3.3, 7.9}) {
    const double hi = lo + 1.7;
    auto q = ValueInterval::from_op(QueryOp::kGT, lo)
                 .intersect(ValueInterval::from_op(QueryOp::kLT, hi));
    std::uint64_t truth = 0;
    for (double v : data) truth += q.contains(v);
    auto est = h.estimate(q);
    EXPECT_LE(est.lower, truth) << "lo=" << lo;
    EXPECT_GE(est.upper, truth) << "lo=" << lo;
    // Bounds are useful: within a few bins' worth of slack.
    const double bin_mass = static_cast<double>(h.total_count()) /
                            static_cast<double>(h.num_bins()) * 4.0;
    EXPECT_LT(static_cast<double>(est.upper - est.lower), bin_mass * 2);
  }
}

TEST(Histogram, EstimateEmptyQueryIsZero) {
  auto data = uniform_data(1000, 0.0, 1.0);
  auto h = MergeableHistogram::Build<double>(data);
  auto q = ValueInterval::from_op(QueryOp::kGT, 2.0);
  auto est = h.estimate(q);
  EXPECT_EQ(est.lower, 0u);
  EXPECT_EQ(est.upper, 0u);
}

// ------------------------------------------------------------------ merge

TEST(HistogramMerge, TwoRegionsSameDistribution) {
  auto d1 = uniform_data(5000, 0.0, 10.0, 1);
  auto d2 = uniform_data(5000, 0.0, 10.0, 2);
  auto h1 = MergeableHistogram::Build<double>(d1);
  auto h2 = MergeableHistogram::Build<double>(d2);
  std::vector<MergeableHistogram> parts{h1, h2};
  auto g = MergeableHistogram::Merge(parts);
  EXPECT_EQ(g.total_count(), 10000u);
  std::uint64_t sum = 0;
  for (auto c : g.counts()) sum += c;
  EXPECT_EQ(sum, 10000u);
  EXPECT_DOUBLE_EQ(g.min_value(), std::min(h1.min_value(), h2.min_value()));
  EXPECT_DOUBLE_EQ(g.max_value(), std::max(h1.max_value(), h2.max_value()));
}

TEST(HistogramMerge, DifferentWidthsAlignExactly) {
  // Region A spans 1 unit, region B spans 1000 units: very different widths.
  auto a = uniform_data(4000, 5.0, 6.0, 3);
  auto b = uniform_data(4000, 0.0, 1000.0, 4);
  auto ha = MergeableHistogram::Build<double>(a);
  auto hb = MergeableHistogram::Build<double>(b);
  EXPECT_NE(ha.bin_width(), hb.bin_width());
  std::vector<MergeableHistogram> parts{ha, hb};
  auto g = MergeableHistogram::Merge(parts);
  EXPECT_DOUBLE_EQ(g.bin_width(), std::max(ha.bin_width(), hb.bin_width()));
  EXPECT_EQ(g.total_count(), 8000u);
  std::uint64_t sum = 0;
  for (auto c : g.counts()) sum += c;
  EXPECT_EQ(sum, 8000u);
}

TEST(HistogramMerge, GlobalEstimateBracketsTruth) {
  // Build per-region histograms over disjoint subranges, merge, and verify
  // the global estimate brackets the true global count.
  std::vector<double> all;
  std::vector<MergeableHistogram> parts;
  for (int r = 0; r < 8; ++r) {
    auto d = uniform_data(10000, r * 2.0, r * 2.0 + 4.0, 100 + r);
    parts.push_back(MergeableHistogram::Build<double>(d));
    all.insert(all.end(), d.begin(), d.end());
  }
  auto g = MergeableHistogram::Merge(parts);
  auto q = ValueInterval::from_op(QueryOp::kGT, 6.5)
               .intersect(ValueInterval::from_op(QueryOp::kLT, 9.25));
  std::uint64_t truth = 0;
  for (double v : all) truth += q.contains(v);
  auto est = g.estimate(q);
  EXPECT_LE(est.lower, truth);
  EXPECT_GE(est.upper, truth);
  EXPECT_GT(est.upper, 0u);
}

TEST(HistogramMerge, MergeOfNothingIsInvalid) {
  auto g = MergeableHistogram::Merge({});
  EXPECT_FALSE(g.valid());
  std::vector<MergeableHistogram> empties(3);
  EXPECT_FALSE(MergeableHistogram::Merge(empties).valid());
}

TEST(HistogramMerge, MergeIsAssociativeOnCounts) {
  auto d1 = uniform_data(3000, 0.0, 8.0, 11);
  auto d2 = uniform_data(3000, 4.0, 12.0, 12);
  auto d3 = uniform_data(3000, -4.0, 2.0, 13);
  auto h1 = MergeableHistogram::Build<double>(d1);
  auto h2 = MergeableHistogram::Build<double>(d2);
  auto h3 = MergeableHistogram::Build<double>(d3);

  std::vector<MergeableHistogram> all{h1, h2, h3};
  auto g_once = MergeableHistogram::Merge(all);

  std::vector<MergeableHistogram> first_two{h1, h2};
  std::vector<MergeableHistogram> staged{MergeableHistogram::Merge(first_two),
                                         h3};
  auto g_staged = MergeableHistogram::Merge(staged);

  EXPECT_EQ(g_once.total_count(), g_staged.total_count());
  EXPECT_DOUBLE_EQ(g_once.bin_width(), g_staged.bin_width());
  // Same query -> same estimates regardless of merge order.
  auto q = ValueInterval::from_op(QueryOp::kGT, 1.0)
               .intersect(ValueInterval::from_op(QueryOp::kLT, 6.0));
  EXPECT_EQ(g_once.estimate(q).upper, g_staged.estimate(q).upper);
  EXPECT_EQ(g_once.estimate(q).lower, g_staged.estimate(q).lower);
}

// -------------------------------------------------------------- serialize

TEST(HistogramSerial, RoundTrip) {
  auto data = uniform_data(5000, -2.0, 9.0);
  auto h = MergeableHistogram::Build<double>(data);
  SerialWriter w;
  h.serialize(w);
  auto bytes = w.take();
  SerialReader r(bytes);
  auto back = MergeableHistogram::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, h);
}

TEST(HistogramSerial, CorruptRejected) {
  std::vector<std::uint8_t> junk(10, 0xAB);
  SerialReader r(junk);
  EXPECT_FALSE(MergeableHistogram::Deserialize(r).ok());
}

// -------------------------------------------------- parameterized sweeps

class HistogramTypeSweep : public ::testing::TestWithParam<int> {};

TEST_P(HistogramTypeSweep, IntTypesBracketTruth) {
  Rng rng(GetParam());
  std::vector<std::int64_t> data(20000);
  for (auto& v : data) v = static_cast<std::int64_t>(rng.bounded(1000)) - 500;
  auto h = MergeableHistogram::Build<std::int64_t>(data);
  auto q = ValueInterval::from_op(QueryOp::kGTE, -100.0)
               .intersect(ValueInterval::from_op(QueryOp::kLTE, 100.0));
  std::uint64_t truth = 0;
  for (auto v : data) truth += q.contains(static_cast<double>(v));
  auto est = h.estimate(q);
  EXPECT_LE(est.lower, truth);
  EXPECT_GE(est.upper, truth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramTypeSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

class HistogramBinSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HistogramBinSweep, MoreBinsTightenBounds) {
  auto data = uniform_data(50000, 0.0, 100.0, 7);
  HistogramConfig cfg;
  cfg.target_bins = GetParam();
  auto h = MergeableHistogram::Build<double>(data, cfg);
  auto q = ValueInterval::from_op(QueryOp::kGT, 30.0)
               .intersect(ValueInterval::from_op(QueryOp::kLT, 31.0));
  auto est = h.estimate(q);
  std::uint64_t truth = 0;
  for (double v : data) truth += q.contains(v);
  EXPECT_LE(est.lower, truth);
  EXPECT_GE(est.upper, truth);
  // Slack shrinks as bins grow: with B bins over span 100, the query edge
  // bins hold ~2*N/B elements.
  const double slack = static_cast<double>(est.upper - est.lower);
  EXPECT_LE(slack, 4.0 * 50000.0 / GetParam() + 1);
}

INSTANTIATE_TEST_SUITE_P(Bins, HistogramBinSweep,
                         ::testing::Values(16, 32, 64, 128, 256));

// --------------------------------------------------- parallel count phase

// The parallel count phase folds fixed-chunk partials in chunk order:
// integer adds are exact and the min/max fold keeps the serial tie
// representative, so the histogram is identical at any pool width.  The
// ±0.0 values below would expose a wrong-representative min/max fold.
TEST(HistogramParallel, BuildIdenticalAcrossPoolSizes) {
  Rng rng(17);
  std::vector<double> data(300'000);
  for (auto& x : data) x = rng.uniform(-5.0, 5.0);
  data[12345] = 0.0;
  data[234567] = -0.0;
  const auto serial = MergeableHistogram::Build<double>(data);
  for (const std::uint32_t threads : {1u, 4u, 8u}) {
    exec::ThreadPool pool(threads);
    const auto parallel = MergeableHistogram::Build<double>(data, {}, &pool);
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
    EXPECT_GT(pool.stats().executed, 0u);
  }
  // Below the parallel cutover the pooled build takes the serial path and
  // trivially matches too.
  std::vector<double> small(data.begin(), data.begin() + 1000);
  exec::ThreadPool pool(4);
  EXPECT_EQ(MergeableHistogram::Build<double>(small, {}, &pool),
            MergeableHistogram::Build<double>(small));
}

// NaNs are excluded from bins/min/max but counted; the parallel fold adds
// the per-chunk NaN tallies, so serialized bytes stay identical too.
TEST(HistogramParallel, NanCountsSurviveParallelFold) {
  Rng rng(29);
  std::vector<double> data(200'000);
  for (auto& x : data) x = rng.uniform(0.0, 1.0);
  for (std::size_t i = 0; i < data.size(); i += 997) {
    data[i] = std::numeric_limits<double>::quiet_NaN();
  }
  const auto serial = MergeableHistogram::Build<double>(data);
  exec::ThreadPool pool(8);
  const auto parallel = MergeableHistogram::Build<double>(data, {}, &pool);
  EXPECT_EQ(parallel, serial);
  EXPECT_EQ(parallel.nan_count(), serial.nan_count());
  EXPECT_GT(serial.nan_count(), 0u);
  SerialWriter sw;
  serial.serialize(sw);
  SerialWriter pw;
  parallel.serialize(pw);
  EXPECT_EQ(pw.take(), sw.take());
}

}  // namespace
}  // namespace pdc::hist
