// Tests for the metadata store (SoMeta-lite), the affix trie and the
// vnode-partitioned shard beneath the distributed metadata service.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/cost_model.h"
#include "metadata/affix_trie.h"
#include "metadata/meta_shard.h"
#include "metadata/meta_store.h"

namespace pdc::meta {
namespace {

TEST(MetaStore, SetAndGetAttribute) {
  MetaStore store;
  store.set_attribute(1, "RADEG", 153.17);
  store.set_attribute(1, "name", std::string("spectrum-1"));
  store.set_attribute(1, "PLATE", std::int64_t{3586});

  auto radeg = store.get_attribute(1, "RADEG");
  ASSERT_TRUE(radeg.has_value());
  EXPECT_DOUBLE_EQ(std::get<double>(*radeg), 153.17);
  auto name = store.get_attribute(1, "name");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(std::get<std::string>(*name), "spectrum-1");
  EXPECT_FALSE(store.get_attribute(1, "nope").has_value());
  EXPECT_FALSE(store.get_attribute(2, "RADEG").has_value());
  EXPECT_EQ(store.attributes(1).size(), 3u);
  EXPECT_EQ(store.num_objects(), 1u);
}

TEST(MetaStore, OverwriteUpdatesIndex) {
  MetaStore store;
  store.set_attribute(1, "v", 1.0);
  store.set_attribute(1, "v", 2.0);
  EXPECT_TRUE(store.query_tag("v", 1.0).empty());
  EXPECT_EQ(store.query_tag("v", 2.0), (std::vector<ObjectId>{1}));
}

TEST(MetaStore, TagQueryStringAndNumeric) {
  MetaStore store;
  for (ObjectId id = 1; id <= 10; ++id) {
    store.set_attribute(id, "kind",
                        std::string(id % 2 == 0 ? "galaxy" : "quasar"));
    store.set_attribute(id, "cell", static_cast<double>(id / 5));
  }
  EXPECT_EQ(store.query_tag("kind", std::string("galaxy")),
            (std::vector<ObjectId>{2, 4, 6, 8, 10}));
  EXPECT_EQ(store.query_tag("cell", 1.0), (std::vector<ObjectId>{5, 6, 7, 8, 9}));
  EXPECT_TRUE(store.query_tag("kind", std::string("nebula")).empty());
  EXPECT_TRUE(store.query_tag("missing", 1.0).empty());
}

TEST(MetaStore, ConjunctiveQueryIntersects) {
  MetaStore store;
  // 1000-object sky cell, as in Fig. 5.
  for (ObjectId id = 1; id <= 3000; ++id) {
    const double radeg = id <= 1000 ? 153.17 : 200.0;
    const double decdeg = (id % 2 == 0) ? 23.06 : -5.0;
    store.set_attribute(id, "RADEG", radeg);
    store.set_attribute(id, "DECDEG", decdeg);
  }
  const std::vector<MetaCondition> conditions{
      {"RADEG", QueryOp::kEQ, 153.17},
      {"DECDEG", QueryOp::kEQ, 23.06},
  };
  const auto hits = store.query(conditions);
  EXPECT_EQ(hits.size(), 500u);
  for (const ObjectId id : hits) {
    EXPECT_LE(id, 1000u);
    EXPECT_EQ(id % 2, 0u);
  }
}

TEST(MetaStore, NumericRangeOperators) {
  MetaStore store;
  for (ObjectId id = 1; id <= 9; ++id) {
    store.set_attribute(id, "z", static_cast<double>(id));
  }
  const auto run = [&store](QueryOp op, double v) {
    const std::vector<MetaCondition> c{{"z", op, v}};
    return store.query(c);
  };
  EXPECT_EQ(run(QueryOp::kGT, 7.0), (std::vector<ObjectId>{8, 9}));
  EXPECT_EQ(run(QueryOp::kGTE, 7.0), (std::vector<ObjectId>{7, 8, 9}));
  EXPECT_EQ(run(QueryOp::kLT, 3.0), (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(run(QueryOp::kLTE, 3.0), (std::vector<ObjectId>{1, 2, 3}));
  EXPECT_EQ(run(QueryOp::kEQ, 5.0), (std::vector<ObjectId>{5}));
}

TEST(MetaStore, Int64AttributesQueryAsNumbers) {
  MetaStore store;
  store.set_attribute(1, "FIBER", std::int64_t{42});
  store.set_attribute(2, "FIBER", std::int64_t{43});
  const std::vector<MetaCondition> c{{"FIBER", QueryOp::kEQ, std::int64_t{42}}};
  EXPECT_EQ(store.query(c), (std::vector<ObjectId>{1}));
  const std::vector<MetaCondition> range{{"FIBER", QueryOp::kGT, 42.0}};
  EXPECT_EQ(store.query(range), (std::vector<ObjectId>{2}));
}

TEST(MetaStore, StringRangeOperatorsMatchNothing) {
  MetaStore store;
  store.set_attribute(1, "name", std::string("abc"));
  const std::vector<MetaCondition> c{
      {"name", QueryOp::kGT, std::string("a")}};
  EXPECT_TRUE(store.query(c).empty());
}

TEST(MetaStore, EmptyConditionsMatchNothing) {
  MetaStore store;
  store.set_attribute(1, "a", 1.0);
  EXPECT_TRUE(store.query({}).empty());
}

TEST(MetaStore, ConjunctionShortCircuitsOnEmpty) {
  MetaStore store;
  store.set_attribute(1, "a", 1.0);
  store.set_attribute(1, "b", 2.0);
  const std::vector<MetaCondition> c{
      {"a", QueryOp::kEQ, 99.0},  // empty
      {"b", QueryOp::kEQ, 2.0},
  };
  EXPECT_TRUE(store.query(c).empty());
}

TEST(MetaStore, AffixConditionsMatchOracleSemantics) {
  MetaStore store;
  store.set_attribute(1, "RUN", std::string("r5_12"));
  store.set_attribute(2, "RUN", std::string("r51_2"));
  store.set_attribute(3, "RUN", std::string("x_r5_12"));
  store.set_attribute(4, "PLATE", std::int64_t{5340});
  store.set_attribute(5, "RADEG", 53.4);

  const MetaCondition prefix{"RUN", QueryOp::kEQ, std::string("r5_"),
                             MetaMatchKind::kPrefix};
  EXPECT_EQ(store.query({&prefix, 1}), (std::vector<ObjectId>{1}));
  const MetaCondition suffix{"RUN", QueryOp::kEQ, std::string("_12"),
                             MetaMatchKind::kSuffix};
  EXPECT_EQ(store.query({&suffix, 1}), (std::vector<ObjectId>{1, 3}));
  // Affix patterns see the DECIMAL form of int64 values...
  const MetaCondition int_prefix{"PLATE", QueryOp::kEQ, std::string("53"),
                                 MetaMatchKind::kPrefix};
  EXPECT_EQ(store.query({&int_prefix, 1}), (std::vector<ObjectId>{4}));
  // ...but doubles never affix-match.
  const MetaCondition dbl_prefix{"RADEG", QueryOp::kEQ, std::string("53"),
                                 MetaMatchKind::kPrefix};
  EXPECT_TRUE(store.query({&dbl_prefix, 1}).empty());
}

// Pins the conjunct-ordering optimization: probes = one estimate per
// conjunct + the SMALLEST posting list materialized + one re-check per
// surviving candidate.  With a 2000-object conjunct listed FIRST and a
// 3-object conjunct second, the ordered plan costs 2 + 3 + 3 = 8 probes;
// the naive left-to-right plan would cost 2 + 2000 + 2000.
TEST(MetaStore, ConjunctOrderingKeepsProbesNearSmallestList) {
  MetaStore store;
  for (ObjectId id = 1; id <= 2000; ++id) {
    store.set_attribute(id, "popular", 1.0);
  }
  for (ObjectId id = 1; id <= 3; ++id) {
    store.set_attribute(id, "rare", 7.0);
  }
  const std::vector<MetaCondition> conditions{
      {"popular", QueryOp::kEQ, 1.0},  // huge list deliberately first
      {"rare", QueryOp::kEQ, 7.0},
  };
  store.reset_index_probes();
  EXPECT_EQ(store.query(conditions), (std::vector<ObjectId>{1, 2, 3}));
  EXPECT_EQ(store.index_probes(), 8u);
}

// ----------------------------------------------------------- affix trie

TEST(AffixTrie, ExactPrefixAndEdgeSplitting) {
  AffixTrie trie;
  // Insertion order forces an edge split: "plate53" extends "plate5",
  // then "plate537" splits the "53" edge again.
  trie.insert_string("RUN", "plate5", /*int_origin=*/false, 10);
  trie.insert_string("RUN", "plate53", /*int_origin=*/false, 11);
  trie.insert_string("RUN", "plate537", /*int_origin=*/false, 12);
  trie.insert_string("RUN", "quasar", /*int_origin=*/false, 13);

  std::vector<ObjectId> out;
  trie.exact_string("RUN", "plate53", out);
  EXPECT_EQ(out, (std::vector<ObjectId>{11}));
  out.clear();
  trie.exact_string("RUN", "plate", out);  // interior node, no posting
  EXPECT_TRUE(out.empty());
  out.clear();
  trie.match_prefix("RUN", "plate53", out);
  EXPECT_EQ(out, (std::vector<ObjectId>{11, 12}));
  out.clear();
  trie.match_prefix("RUN", "", out);  // empty prefix = whole attribute
  EXPECT_EQ(out, (std::vector<ObjectId>{10, 11, 12, 13}));
  out.clear();
  trie.match_prefix("OTHER", "plate", out);  // unknown attribute
  EXPECT_TRUE(out.empty());
}

TEST(AffixTrie, SuffixTwinMatchesReversedKeys) {
  AffixTrie trie;
  trie.insert_suffix("name", "RADEG", /*int_origin=*/false, 1);
  trie.insert_suffix("name", "DECDEG", /*int_origin=*/false, 2);
  trie.insert_suffix("name", "DEGREE", /*int_origin=*/false, 3);
  std::vector<ObjectId> out;
  trie.match_suffix("name", "DEG", out);
  EXPECT_EQ(out, (std::vector<ObjectId>{1, 2}));
  out.clear();
  trie.match_suffix("name", "", out);
  EXPECT_EQ(out, (std::vector<ObjectId>{1, 2, 3}));
}

TEST(AffixTrie, IntOriginAffixMatchesButExactStringDoesNot) {
  AffixTrie trie;
  trie.insert_string("PLATE", "5340", /*int_origin=*/true, 4);
  trie.insert_string("PLATE", "5340", /*int_origin=*/false, 5);
  std::vector<ObjectId> out;
  trie.exact_string("PLATE", "5340", out);
  EXPECT_EQ(out, (std::vector<ObjectId>{5}));  // string EQ: str-origin only
  out.clear();
  trie.match_prefix("PLATE", "53", out);
  EXPECT_EQ(out, (std::vector<ObjectId>{4, 5}));  // affix: both origins
}

TEST(AffixTrie, NumericRangeOperators) {
  AffixTrie trie;
  trie.insert_number("v", 1.0, 1);
  trie.insert_number("v", 2.0, 2);
  trie.insert_number("v", 2.0, 3);
  trie.insert_number("v", 3.0, 4);
  std::vector<ObjectId> out;
  trie.range_number("v", QueryOp::kGT, 1.0, out);
  EXPECT_EQ(out, (std::vector<ObjectId>{2, 3, 4}));
  out.clear();
  trie.range_number("v", QueryOp::kLTE, 2.0, out);
  EXPECT_EQ(out, (std::vector<ObjectId>{1, 2, 3}));
  out.clear();
  trie.range_number("v", QueryOp::kEQ, 2.0, out);
  EXPECT_EQ(out, (std::vector<ObjectId>{2, 3}));
}

TEST(AffixTrie, RemoveUndoesInsertCompletely) {
  AffixTrie trie;
  trie.insert_string("a", "shared_prefix_x", false, 1);
  trie.insert_string("a", "shared_prefix_y", false, 2);
  trie.insert_suffix("a", "shared_prefix_x", false, 1);
  trie.insert_number("a", 5.0, 1);
  trie.remove_string("a", "shared_prefix_x", false, 1);
  trie.remove_suffix("a", "shared_prefix_x", false, 1);
  trie.remove_number("a", 5.0, 1);
  std::vector<ObjectId> out;
  trie.match_prefix("a", "shared", out);
  EXPECT_EQ(out, (std::vector<ObjectId>{2}));
  out.clear();
  trie.match_suffix("a", "x", out);
  EXPECT_TRUE(out.empty());
  out.clear();
  trie.range_number("a", QueryOp::kEQ, 5.0, out);
  EXPECT_TRUE(out.empty());
}

// --------------------------------------------------------- vnode routing

TEST(MetaRing, PlacementIsDeterministicWithDistinctReplicas) {
  MetaRingConfig ring;
  ring.vnodes = 64;
  ring.replicas = 3;
  ring.num_servers = 8;
  for (std::uint32_t v = 0; v < ring.vnodes; ++v) {
    const auto a = replicas_of(v, ring);
    const auto b = replicas_of(v, ring);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 3u);
    for (const ServerId s : a) EXPECT_LT(s, ring.num_servers);
    auto sorted = a;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
        << "vnode " << v << " placed twice on one server";
  }
  // Replica count clamps to the fleet.
  ring.num_servers = 2;
  EXPECT_EQ(replicas_of(0, ring).size(), 2u);
}

TEST(MetaRing, ConditionRoutingIsRestrictedNeverBroadcast) {
  MetaRingConfig ring;
  ring.vnodes = 64;
  ring.num_servers = 4;

  // Exact string EQ: exactly one vnode (prefix lane, first byte).
  const MetaCondition exact{"RUN", QueryOp::kEQ, std::string("r5_12")};
  EXPECT_EQ(vnodes_of_condition(exact, ring).size(), 1u);
  // A prefix pattern routes to the SAME vnode as exact values sharing its
  // first byte.
  const MetaCondition prefix{"RUN", QueryOp::kEQ, std::string("r5_"),
                             MetaMatchKind::kPrefix};
  EXPECT_EQ(vnodes_of_condition(prefix, ring),
            vnodes_of_condition(exact, ring));
  // Suffix: last byte of the pattern, suffix lane.
  const MetaCondition suffix{"RUN", QueryOp::kEQ, std::string("_12"),
                             MetaMatchKind::kSuffix};
  EXPECT_EQ(vnodes_of_condition(suffix, ring).size(), 1u);
  // Numeric conjuncts: the attribute's single numeric vnode.
  const MetaCondition range{"PLATE", QueryOp::kGTE, std::int64_t{3500}};
  EXPECT_EQ(vnodes_of_condition(range, ring).size(), 1u);

  // Provably-empty conditions route NOWHERE (empty set, not broadcast):
  // doubles never affix-match, and string values support kEQ only.
  const MetaCondition dbl_affix{"RADEG", QueryOp::kEQ, 153.17,
                                MetaMatchKind::kPrefix};
  EXPECT_TRUE(vnodes_of_condition(dbl_affix, ring).empty());
  const MetaCondition str_range{"RUN", QueryOp::kGT, std::string("a")};
  EXPECT_TRUE(vnodes_of_condition(str_range, ring).empty());

  // The one degenerate fan-out: an empty pattern consults every bucket of
  // the lane, still bounded by the ring size.
  const MetaCondition empty_prefix{"RUN", QueryOp::kEQ, std::string(""),
                                   MetaMatchKind::kPrefix};
  const auto fan = vnodes_of_condition(empty_prefix, ring);
  EXPECT_FALSE(fan.empty());
  EXPECT_LE(fan.size(), static_cast<std::size_t>(ring.vnodes));
  EXPECT_TRUE(std::is_sorted(fan.begin(), fan.end()));

  // Update routing covers query routing: the vnodes that index a value
  // include the vnode every matching condition consults.
  const auto write_set =
      vnodes_of_value("RUN", std::string("r5_12"), ring);
  for (const std::uint32_t v : vnodes_of_condition(exact, ring)) {
    EXPECT_NE(std::find(write_set.begin(), write_set.end(), v),
              write_set.end());
  }
  for (const std::uint32_t v : vnodes_of_condition(suffix, ring)) {
    // "_12" ends where "r5_12" ends: same last byte, same suffix vnode.
    EXPECT_NE(std::find(write_set.begin(), write_set.end(), v),
              write_set.end());
  }
}

// ------------------------------------------------------------ meta shard

TEST(MetaShard, ApplyIsExactlyOnceAndBumpsEpochs) {
  MetaRingConfig ring;
  ring.vnodes = 8;
  ring.replicas = 1;
  ring.num_servers = 1;  // one server owns everything
  MetaShard shard(ring, /*self=*/0);

  // An assignment touches one vnode per lane (prefix, suffix, numeric);
  // the client replicates the batch to each of them, so the test does too.
  const auto touched =
      vnodes_of_value("RUN", std::string("r5_12"), ring);
  ASSERT_FALSE(touched.empty());

  std::vector<MetaShard::UpdateOp> ops;
  ops.push_back({/*object=*/7, "RUN", std::nullopt,
                 std::string("r5_12")});
  std::uint64_t after_first = 0;
  for (const std::uint32_t vnode : touched) {
    bool applied = false;
    auto epoch = shard.apply(vnode, /*seq=*/1, ops, applied);
    ASSERT_TRUE(epoch.ok());
    EXPECT_TRUE(applied);
    after_first = epoch.value();

    // Same seq again (a retried/duplicated batch): acknowledged, NOT
    // re-applied, epoch unchanged.
    applied = true;
    epoch = shard.apply(vnode, /*seq=*/1, ops, applied);
    ASSERT_TRUE(epoch.ok());
    EXPECT_FALSE(applied);
    EXPECT_EQ(epoch.value(), after_first);
  }

  // The posting is queryable exactly once.
  const MetaCondition exact{"RUN", QueryOp::kEQ, std::string("r5_12")};
  std::vector<ObjectId> out;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> epochs;
  CostLedger ledger;
  std::uint64_t probes = 0;
  const auto route = vnodes_of_condition(exact, ring);
  ASSERT_TRUE(shard.query(exact, route, out, epochs, ledger, probes).ok());
  EXPECT_EQ(out, (std::vector<ObjectId>{7}));
  ASSERT_FALSE(epochs.empty());
  EXPECT_EQ(epochs.front().second, after_first);

  // A later seq replacing the value removes the old posting; the route
  // vnode's epoch moves past its post-insert value.
  ops.clear();
  ops.push_back({/*object=*/7, "RUN", std::string("r5_12"),
                 std::string("r6_0")});
  auto replaced =
      vnodes_of_value("RUN", std::string("r6_0"), ring);
  replaced.insert(replaced.end(), touched.begin(), touched.end());
  std::sort(replaced.begin(), replaced.end());
  replaced.erase(std::unique(replaced.begin(), replaced.end()),
                 replaced.end());
  for (const std::uint32_t vnode : replaced) {
    bool applied = false;
    ASSERT_TRUE(shard.apply(vnode, /*seq=*/2, ops, applied).ok());
    EXPECT_TRUE(applied);
  }
  out.clear();
  epochs.clear();
  ASSERT_TRUE(shard.query(exact, route, out, epochs, ledger, probes).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_FALSE(epochs.empty());
  EXPECT_GT(epochs.front().second, after_first);
}

TEST(MetaShard, RefusesUnownedVnodes) {
  MetaRingConfig ring;
  ring.vnodes = 64;
  ring.replicas = 1;
  ring.num_servers = 4;
  MetaShard shard(ring, /*self=*/0);

  std::uint32_t unowned = ring.vnodes;
  for (std::uint32_t v = 0; v < ring.vnodes; ++v) {
    if (!shard.owns(v)) {
      unowned = v;
      break;
    }
  }
  ASSERT_LT(unowned, ring.vnodes) << "server 0 owns every vnode?";

  const MetaCondition exact{"RUN", QueryOp::kEQ, std::string("x")};
  std::vector<ObjectId> out;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> epochs;
  CostLedger ledger;
  std::uint64_t probes = 0;
  const std::vector<std::uint32_t> route{unowned};
  const Status status =
      shard.query(exact, route, out, epochs, ledger, probes);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  bool applied = false;
  EXPECT_FALSE(shard.apply(unowned, 1, {}, applied).ok());
}

}  // namespace
}  // namespace pdc::meta
