// Tests for the metadata store (SoMeta-lite).
#include <gtest/gtest.h>

#include "metadata/meta_store.h"

namespace pdc::meta {
namespace {

TEST(MetaStore, SetAndGetAttribute) {
  MetaStore store;
  store.set_attribute(1, "RADEG", 153.17);
  store.set_attribute(1, "name", std::string("spectrum-1"));
  store.set_attribute(1, "PLATE", std::int64_t{3586});

  auto radeg = store.get_attribute(1, "RADEG");
  ASSERT_TRUE(radeg.has_value());
  EXPECT_DOUBLE_EQ(std::get<double>(*radeg), 153.17);
  auto name = store.get_attribute(1, "name");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(std::get<std::string>(*name), "spectrum-1");
  EXPECT_FALSE(store.get_attribute(1, "nope").has_value());
  EXPECT_FALSE(store.get_attribute(2, "RADEG").has_value());
  EXPECT_EQ(store.attributes(1).size(), 3u);
  EXPECT_EQ(store.num_objects(), 1u);
}

TEST(MetaStore, OverwriteUpdatesIndex) {
  MetaStore store;
  store.set_attribute(1, "v", 1.0);
  store.set_attribute(1, "v", 2.0);
  EXPECT_TRUE(store.query_tag("v", 1.0).empty());
  EXPECT_EQ(store.query_tag("v", 2.0), (std::vector<ObjectId>{1}));
}

TEST(MetaStore, TagQueryStringAndNumeric) {
  MetaStore store;
  for (ObjectId id = 1; id <= 10; ++id) {
    store.set_attribute(id, "kind",
                        std::string(id % 2 == 0 ? "galaxy" : "quasar"));
    store.set_attribute(id, "cell", static_cast<double>(id / 5));
  }
  EXPECT_EQ(store.query_tag("kind", std::string("galaxy")),
            (std::vector<ObjectId>{2, 4, 6, 8, 10}));
  EXPECT_EQ(store.query_tag("cell", 1.0), (std::vector<ObjectId>{5, 6, 7, 8, 9}));
  EXPECT_TRUE(store.query_tag("kind", std::string("nebula")).empty());
  EXPECT_TRUE(store.query_tag("missing", 1.0).empty());
}

TEST(MetaStore, ConjunctiveQueryIntersects) {
  MetaStore store;
  // 1000-object sky cell, as in Fig. 5.
  for (ObjectId id = 1; id <= 3000; ++id) {
    const double radeg = id <= 1000 ? 153.17 : 200.0;
    const double decdeg = (id % 2 == 0) ? 23.06 : -5.0;
    store.set_attribute(id, "RADEG", radeg);
    store.set_attribute(id, "DECDEG", decdeg);
  }
  const std::vector<MetaCondition> conditions{
      {"RADEG", QueryOp::kEQ, 153.17},
      {"DECDEG", QueryOp::kEQ, 23.06},
  };
  const auto hits = store.query(conditions);
  EXPECT_EQ(hits.size(), 500u);
  for (const ObjectId id : hits) {
    EXPECT_LE(id, 1000u);
    EXPECT_EQ(id % 2, 0u);
  }
}

TEST(MetaStore, NumericRangeOperators) {
  MetaStore store;
  for (ObjectId id = 1; id <= 9; ++id) {
    store.set_attribute(id, "z", static_cast<double>(id));
  }
  const auto run = [&store](QueryOp op, double v) {
    const std::vector<MetaCondition> c{{"z", op, v}};
    return store.query(c);
  };
  EXPECT_EQ(run(QueryOp::kGT, 7.0), (std::vector<ObjectId>{8, 9}));
  EXPECT_EQ(run(QueryOp::kGTE, 7.0), (std::vector<ObjectId>{7, 8, 9}));
  EXPECT_EQ(run(QueryOp::kLT, 3.0), (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(run(QueryOp::kLTE, 3.0), (std::vector<ObjectId>{1, 2, 3}));
  EXPECT_EQ(run(QueryOp::kEQ, 5.0), (std::vector<ObjectId>{5}));
}

TEST(MetaStore, Int64AttributesQueryAsNumbers) {
  MetaStore store;
  store.set_attribute(1, "FIBER", std::int64_t{42});
  store.set_attribute(2, "FIBER", std::int64_t{43});
  const std::vector<MetaCondition> c{{"FIBER", QueryOp::kEQ, std::int64_t{42}}};
  EXPECT_EQ(store.query(c), (std::vector<ObjectId>{1}));
  const std::vector<MetaCondition> range{{"FIBER", QueryOp::kGT, 42.0}};
  EXPECT_EQ(store.query(range), (std::vector<ObjectId>{2}));
}

TEST(MetaStore, StringRangeOperatorsMatchNothing) {
  MetaStore store;
  store.set_attribute(1, "name", std::string("abc"));
  const std::vector<MetaCondition> c{
      {"name", QueryOp::kGT, std::string("a")}};
  EXPECT_TRUE(store.query(c).empty());
}

TEST(MetaStore, EmptyConditionsMatchNothing) {
  MetaStore store;
  store.set_attribute(1, "a", 1.0);
  EXPECT_TRUE(store.query({}).empty());
}

TEST(MetaStore, ConjunctionShortCircuitsOnEmpty) {
  MetaStore store;
  store.set_attribute(1, "a", 1.0);
  store.set_attribute(1, "b", 2.0);
  const std::vector<MetaCondition> c{
      {"a", QueryOp::kEQ, 99.0},  // empty
      {"b", QueryOp::kEQ, 2.0},
  };
  EXPECT_TRUE(store.query(c).empty());
}

}  // namespace
}  // namespace pdc::meta
