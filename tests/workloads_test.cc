// Tests for the VPIC / BOSS workload generators: determinism, selectivity
// calibration against the paper's ladder, ingest integration.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "workloads/boss.h"
#include "workloads/vpic.h"

namespace pdc::workloads {
namespace {

TEST(VpicGenerator, DeterministicForSeed) {
  VpicConfig cfg;
  cfg.num_particles = 10000;
  const auto a = generate_vpic(cfg);
  const auto b = generate_vpic(cfg);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.x, b.x);
  cfg.seed += 1;
  const auto c = generate_vpic(cfg);
  EXPECT_NE(a.energy, c.energy);
}

TEST(VpicGenerator, ShapesAndBounds) {
  VpicConfig cfg;
  cfg.num_particles = 50000;
  const auto data = generate_vpic(cfg);
  EXPECT_EQ(data.size(), 50000u);
  for (std::size_t i = 0; i < data.size(); i += 97) {
    EXPECT_GE(data.energy[i], 0.0F);
    EXPECT_GE(data.x[i], 0.0F);
    EXPECT_LE(data.x[i], static_cast<float>(cfg.x_max));
    EXPECT_GE(data.y[i], static_cast<float>(cfg.y_min));
    EXPECT_LE(data.y[i], static_cast<float>(cfg.y_max));
    EXPECT_GE(data.z[i], 0.0F);
    EXPECT_LE(data.z[i], static_cast<float>(cfg.z_max));
  }
}

TEST(VpicGenerator, SelectivityLadderMatchesPaper) {
  VpicConfig cfg;
  cfg.num_particles = 2'000'000;
  const auto data = generate_vpic(cfg);
  const auto selectivity = [&](double lo, double hi) {
    std::uint64_t hits = 0;
    for (const float e : data.energy) hits += e > lo && e < hi;
    return static_cast<double>(hits) / static_cast<double>(data.size());
  };
  // Paper: 2.1<E<2.2 -> 1.3025 %; 3.5<E<3.6 -> 0.0004 %.
  EXPECT_NEAR(selectivity(2.1, 2.2), 0.013025, 0.002);
  EXPECT_NEAR(selectivity(3.5, 3.6), 0.000004, 0.00002);
  // Ladder decreases monotonically (up to sampling noise at the extreme
  // tail, where windows hold only a handful of the 2M particles).
  const double noise = 5.0 / static_cast<double>(data.size());
  double prev = 1.0;
  for (const auto& q : vpic_single_queries()) {
    const double s = selectivity(q.lo, q.hi);
    EXPECT_LT(s, prev + noise);
    prev = s;
  }
}

TEST(VpicGenerator, CompoundQuerySelectivityMatchesPaper) {
  VpicConfig cfg;
  cfg.num_particles = 2'000'000;
  const auto data = generate_vpic(cfg);
  // Paper query 1: Energy>2.0 AND 100<x<200 AND -90<y<0 AND 0<z<66
  // -> 0.0013 % (1.3e-5).
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    hits += data.energy[i] > 2.0F && data.x[i] > 100.0F && data.x[i] < 200.0F &&
            data.y[i] > -90.0F && data.y[i] < 0.0F && data.z[i] > 0.0F &&
            data.z[i] < 66.0F;
  }
  const double s = static_cast<double>(hits) / static_cast<double>(data.size());
  EXPECT_LT(s, 1e-4);  // strongly anti-correlated, as in the paper
  EXPECT_GT(s, 0.0);   // but not empty

  // Query suite sanity: 6 multi-object queries defined.
  EXPECT_EQ(vpic_multi_queries().size(), 6u);
  EXPECT_EQ(vpic_single_queries().size(), 15u);
}

TEST(VpicGenerator, EnergeticParticlesClusterSpatially) {
  VpicConfig cfg;
  cfg.num_particles = 500000;
  const auto data = generate_vpic(cfg);
  // P(in paper window | E > 2) must be far below the uniform 4.55 %.
  std::uint64_t tail = 0, tail_in_window = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.energy[i] <= 2.0F) continue;
    ++tail;
    tail_in_window += data.x[i] > 100.0F && data.x[i] < 200.0F &&
                      data.y[i] > -90.0F && data.y[i] < 0.0F &&
                      data.z[i] < 66.0F;
  }
  ASSERT_GT(tail, 0u);
  const double conditional =
      static_cast<double>(tail_in_window) / static_cast<double>(tail);
  EXPECT_LT(conditional, 0.005);
}

class WorkloadIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/workload_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
};

TEST_F(WorkloadIngestTest, VpicImportCreatesSevenObjects) {
  VpicConfig cfg;
  cfg.num_particles = 20000;
  const auto data = generate_vpic(cfg);
  obj::ImportOptions options;
  options.region_size_bytes = 16384;
  auto objects = import_vpic(*store_, data, options);
  ASSERT_TRUE(objects.ok()) << objects.status().ToString();
  for (const ObjectId id : {objects->energy, objects->x, objects->y,
                            objects->z, objects->ux, objects->uy,
                            objects->uz}) {
    auto desc = store_->get(id);
    ASSERT_TRUE(desc.ok());
    EXPECT_EQ((*desc)->num_elements, 20000u);
    EXPECT_TRUE((*desc)->global_histogram.valid());
  }
  auto energy = store_->find_by_name("Energy");
  ASSERT_TRUE(energy.ok());
  EXPECT_EQ((*energy)->id, objects->energy);
}

TEST_F(WorkloadIngestTest, VpicH5FileReadableByBaseline) {
  VpicConfig cfg;
  cfg.num_particles = 5000;
  const auto data = generate_vpic(cfg);
  ASSERT_TRUE(write_vpic_h5(*cluster_, data, "vpic.h5").ok());
  auto reader = h5lite::H5LiteReader::Open(*cluster_, "vpic.h5");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->datasets().size(), 7u);
  auto info = reader->dataset("Energy");
  ASSERT_TRUE(info.ok());
  std::vector<float> back(5000);
  ASSERT_TRUE(reader->read<float>(*info, 0, back, {}).ok());
  EXPECT_EQ(back, data.energy);
}

TEST_F(WorkloadIngestTest, BossCatalogMetadataCells) {
  meta::MetaStore meta;
  BossConfig cfg;
  cfg.num_objects = 600;
  cfg.objects_per_cell = 100;
  cfg.flux_samples = 64;
  auto catalog = import_boss(*store_, meta, cfg);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_EQ(catalog->flux_objects.size(), 600u);
  EXPECT_EQ(meta.num_objects(), 600u);

  // The Fig. 5 metadata query returns exactly one cell's objects.
  const std::vector<meta::MetaCondition> conditions{
      {"RADEG", QueryOp::kEQ, catalog->cell0_radeg},
      {"DECDEG", QueryOp::kEQ, catalog->cell0_decdeg},
  };
  const auto hits = meta.query(conditions);
  EXPECT_EQ(hits.size(), 100u);
  // Every hit has a readable single-region flux object.
  for (const ObjectId id : hits) {
    auto desc = store_->get(id);
    ASSERT_TRUE(desc.ok());
    EXPECT_EQ((*desc)->regions.size(), 1u);
    EXPECT_EQ((*desc)->num_elements, 64u);
  }
}

TEST_F(WorkloadIngestTest, BossFluxQuantileCalibratesSelectivity) {
  meta::MetaStore meta;
  BossConfig cfg;
  cfg.num_objects = 50;
  cfg.objects_per_cell = 50;
  cfg.flux_samples = 4096;
  auto catalog = import_boss(*store_, meta, cfg);
  ASSERT_TRUE(catalog.ok());

  // Measure actual flux selectivity of the quantile-derived threshold.
  for (const double target : {0.11, 0.35, 0.65}) {
    const double threshold = boss_flux_quantile(target);
    std::uint64_t hits = 0, total = 0;
    for (const ObjectId id : catalog->flux_objects) {
      auto desc = store_->get(id);
      ASSERT_TRUE(desc.ok());
      std::vector<float> flux((*desc)->num_elements);
      ASSERT_TRUE(store_
                      ->read_elements(**desc, {0, flux.size()},
                                      {reinterpret_cast<std::uint8_t*>(
                                           flux.data()),
                                       flux.size() * sizeof(float)},
                                      {})
                      .ok());
      for (const float f : flux) {
        hits += f < threshold;
        ++total;
      }
    }
    const double actual = static_cast<double>(hits) / static_cast<double>(total);
    EXPECT_NEAR(actual, target, 0.02) << "target " << target;
  }
}

TEST_F(WorkloadIngestTest, BossConfigValidation) {
  meta::MetaStore meta;
  BossConfig cfg;
  cfg.num_objects = 0;
  EXPECT_EQ(import_boss(*store_, meta, cfg).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pdc::workloads
