// Concurrency battery for the intra-server execution pool (PR 3).
//
// Two layers of coverage:
//   1. ThreadPool / TaskGroup self-tests — stealing actually happens,
//      exceptions propagate out of wait(), shutdown drains queued work,
//      nested fork-join on a size-1 pool cannot deadlock.
//   2. A multi-client stress test: N client threads issue overlapping
//      queries / get-data / metadata ops against one pooled QueryService
//      and every result must be bit-identical to a serial baseline.
//
// The whole file runs under the `tsan` ctest label (tools/run_tsan.sh), so
// any data race in the pool, the RPC demux or the shared server state is a
// hard failure, not a flake.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/exec_pool.h"
#include "common/rng.h"
#include "query/service.h"
#include "sortrep/sorted_replica.h"

namespace pdc {
namespace {

using exec::TaskGroup;
using exec::ThreadPool;

// ------------------------------------------------------------ pool basics

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> counts(kN);
  exec::parallel_for(&pool, kN, [&](std::size_t i) { counts[i]++; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);

  const exec::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, stats.executed);
  EXPECT_GE(stats.submitted, kN);
}

TEST(ThreadPoolTest, NullPoolParallelForRunsInline) {
  constexpr std::size_t kN = 64;
  std::vector<int> counts(kN, 0);
  const auto self = std::this_thread::get_id();
  exec::parallel_for(nullptr, kN, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    counts[i]++;
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i], 1);
}

TEST(ThreadPoolTest, WorkStealingMovesTasksAcrossWorkers) {
  ThreadPool pool(4);
  // A task spawned from inside a pool worker lands on that worker's own
  // deque; the only way another thread runs it is a steal.  Spawn a burst
  // of sleepy children from one parent task and repeat until the steal
  // counter moves (scheduling is nondeterministic; the loop keeps the test
  // robust on a loaded single-core CI box).
  std::set<std::thread::id> seen;
  std::mutex seen_mu;
  for (int round = 0; round < 20 && pool.stats().steals == 0; ++round) {
    TaskGroup group(&pool);
    group.spawn([&] {
      TaskGroup children(&pool);
      for (int i = 0; i < 64; ++i) {
        children.spawn([&] {
          {
            std::lock_guard lock(seen_mu);
            seen.insert(std::this_thread::get_id());
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        });
      }
      children.wait();
    });
    group.wait();
  }
  EXPECT_GT(pool.stats().steals, 0u);
  // The helping parent plus at least one thief.
  EXPECT_GT(seen.size(), 1u);
}

TEST(ThreadPoolTest, ExceptionPropagatesOutOfWait) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> survivors{0};
  group.spawn([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 8; ++i) group.spawn([&] { survivors++; });
  EXPECT_THROW(group.wait(), std::runtime_error);
  // A throwing sibling must not cancel or wedge the rest of the group...
  EXPECT_EQ(survivors.load(), 8);
  // ...and the pool stays usable afterwards.
  std::atomic<bool> ran{false};
  TaskGroup after(&pool);
  after.spawn([&] { ran = true; });
  after.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ShutdownWithQueuedWorkDrainsEverything) {
  std::atomic<std::uint64_t> executed{0};
  constexpr std::uint64_t kTasks = 200;
  {
    ThreadPool pool(2);
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        executed++;
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolTest, NestedGroupsOnSizeOnePoolDoNotDeadlock) {
  // wait() helps (runs queued tasks on the waiting thread), so even a
  // single worker can execute a request task that itself fans out region
  // tasks — the exact shape ServerRuntime + QueryServer produce.
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 4; ++i) {
    outer.spawn([&] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 8; ++j) inner.spawn([&] { leaves++; });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(leaves.load(), 32);
}

TEST(ThreadPoolTest, RapidGroupTurnoverDoesNotRaceDestruction) {
  // Regression: the last task's completion callback used to decrement
  // outstanding_ outside mu_, so the waiter could observe 0 through the
  // atomic fast path, return, and destroy the stack-allocated group while
  // the worker was still locking the (now destroyed) mutex to notify.
  // Tiny short-lived groups destroyed immediately after wait() maximize
  // that window; under TSan a regression shows up as a destroyed-lock
  // report, without TSan as a crash/hang under load.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> ran{0};
  for (int round = 0; round < 2000; ++round) {
    exec::parallel_for(&pool, 2, [&](std::size_t) { ran++; });
  }
  EXPECT_EQ(ran.load(), 4000u);
}

TEST(ThreadPoolTest, HelpingWaitSkipsUnrelatedTasks) {
  // A region-level wait must not inline a whole unrelated task (e.g. a
  // full request ServerRuntime queued on the same pool): helping is
  // filtered to the waiting group's own tasks.
  std::atomic<bool> gate_entered{false};
  std::atomic<bool> gate_release{false};
  std::atomic<bool> unrelated_ran{false};
  std::atomic<bool> own_ran{false};
  {
    ThreadPool pool(1);
    pool.submit([&] {
      gate_entered = true;
      while (!gate_release.load()) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
    while (!gate_entered.load()) std::this_thread::yield();
    // The only worker is parked in the gate; both tasks below stay queued.
    pool.submit([&] { unrelated_ran = true; });
    TaskGroup group(&pool);
    group.spawn([&] { own_ran = true; });
    group.wait();  // helps: runs its own task, must skip the unrelated one
    EXPECT_TRUE(own_ran.load());
    EXPECT_FALSE(unrelated_ran.load());
    gate_release = true;
    // Pool destructor drains the still-queued unrelated task.
  }
  EXPECT_TRUE(unrelated_ran.load());
}

TEST(ThreadPoolTest, StatsCountersAreConsistent) {
  ThreadPool pool(3);
  exec::parallel_for(&pool, 100, [](std::size_t) {});
  const exec::PoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 100u);
  EXPECT_EQ(stats.executed, 100u);
  EXPECT_GE(stats.queue_peak, 1u);
}

// -------------------------------------------------- multi-client stress

/// Small QueryEnv: two correlated float columns with regions, histograms,
/// bitmap indexes and a sorted replica over the key column.
class StressEnv {
 public:
  static constexpr std::uint64_t kN = 16384;

  explicit StressEnv(const std::string& root) : root_(root) {
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);

    Rng rng(0xC0C0);
    energy_.resize(kN);
    x_.resize(kN);
    for (std::uint64_t i = 0; i < kN; ++i) {
      const bool tail = rng.next_double() < 0.01;
      energy_[i] = static_cast<float>(tail ? 2.0 + rng.exponential(4.0)
                                           : rng.uniform(0.0, 2.0));
      x_[i] = static_cast<float>(rng.uniform(0.0, 100.0));
    }

    obj::ImportOptions options;
    options.region_size_bytes = 2048;  // 512 floats per region
    const ObjectId container =
        std::move(store_->create_container("stress")).value();
    energy_id_ =
        std::move(store_->import_object<float>(
                      container, "Energy", std::span<const float>(energy_),
                      options))
            .value();
    x_id_ = std::move(store_->import_object<float>(
                          container, "x", std::span<const float>(x_), options))
                .value();
    for (const ObjectId id : {energy_id_, x_id_}) {
      auto s = store_->build_bitmap_index(id);
      if (!s.ok()) std::abort();
    }
    auto replica = sortrep::build_sorted_replica(*store_, energy_id_, options);
    if (!replica.ok()) std::abort();
  }

  ~StressEnv() { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  std::vector<float> energy_, x_;
  ObjectId energy_id_ = kInvalidObjectId;
  ObjectId x_id_ = kInvalidObjectId;
};

struct ExpectedResult {
  std::uint64_t num_hits = 0;
  std::vector<std::uint64_t> positions;
  std::vector<float> values;  ///< energy values at positions
};

class ConcurrencyStress
    : public ::testing::TestWithParam<server::Strategy> {};

TEST_P(ConcurrencyStress, OverlappingClientsMatchSerialBaseline) {
  StressEnv env(::testing::TempDir() + "/pdc_concurrency_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());

  // A spread of queries: selective tail, broad bulk, conjunction, empty.
  std::vector<query::QueryPtr> queries;
  queries.push_back(
      query::q_and(query::create(env.energy_id_, QueryOp::kGT, 2.5),
                   query::create(env.energy_id_, QueryOp::kLT, 4.0)));
  queries.push_back(query::create(env.energy_id_, QueryOp::kLT, 0.25));
  queries.push_back(
      query::q_and(query::create(env.energy_id_, QueryOp::kGT, 1.5),
                   query::create(env.x_id_, QueryOp::kLT, 20.0)));
  queries.push_back(query::create(env.energy_id_, QueryOp::kGT, 1e9));

  // Serial baseline: eval_threads = 0 (no pool at all).
  query::ServiceOptions serial_options;
  serial_options.strategy = GetParam();
  serial_options.num_servers = 3;
  serial_options.eval_threads = 0;

  std::vector<ExpectedResult> expected;
  {
    query::QueryService serial(*env.store_, serial_options);
    for (const auto& q : queries) {
      auto sel = serial.get_selection(q);
      ASSERT_TRUE(sel.ok()) << sel.status().ToString();
      ExpectedResult e;
      e.num_hits = sel->num_hits;
      e.positions = sel->positions;
      e.values.resize(sel->num_hits);
      if (sel->num_hits > 0) {
        auto s = serial.get_data<float>(env.energy_id_, *sel,
                                        std::span<float>(e.values),
                                        query::GetDataMode::kByPositions);
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
      expected.push_back(std::move(e));
    }
  }

  // Pooled service: 4 workers, 4 in-flight requests per server, hammered
  // by 4 client threads issuing the same queries in different orders.
  query::ServiceOptions pooled_options = serial_options;
  pooled_options.eval_threads = 4;
  pooled_options.max_inflight = 4;
  query::QueryService pooled(*env.store_, pooled_options);

  auto baseline_hist = pooled.get_histogram(env.energy_id_);
  ASSERT_TRUE(baseline_hist.ok());

  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::vector<std::string> failures;
  std::mutex failures_mu;
  auto fail = [&](std::string msg) {
    std::lock_guard lock(failures_mu);
    failures.push_back(std::move(msg));
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t k = 0; k < queries.size(); ++k) {
          // Different visiting order per client => overlapping mixes.
          const std::size_t qi =
              (k + static_cast<std::size_t>(c)) % queries.size();
          const ExpectedResult& want = expected[qi];

          auto nhits = pooled.get_num_hits(queries[qi]);
          if (!nhits.ok() || *nhits != want.num_hits) {
            fail("get_num_hits mismatch on query " + std::to_string(qi));
            return;
          }

          auto sel = pooled.get_selection(queries[qi]);
          if (!sel.ok() || sel->num_hits != want.num_hits ||
              sel->positions != want.positions) {
            fail("get_selection mismatch on query " + std::to_string(qi));
            return;
          }

          if (want.num_hits > 0) {
            std::vector<float> got(want.num_hits);
            auto s = pooled.get_data<float>(env.energy_id_, *sel,
                                            std::span<float>(got),
                                            query::GetDataMode::kByPositions);
            if (!s.ok() ||
                std::memcmp(got.data(), want.values.data(),
                            got.size() * sizeof(float)) != 0) {
              fail("get_data mismatch on query " + std::to_string(qi));
              return;
            }
          }

          // Metadata op interleaved with the query traffic.
          auto hist = pooled.get_histogram(env.energy_id_);
          if (!hist.ok()) {
            fail("get_histogram failed under concurrency");
            return;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  for (const auto& f : failures) ADD_FAILURE() << f;
  EXPECT_TRUE(failures.empty());

  // The pool actually ran: stats from the last completed op carry the
  // worker count.
  const query::OpStats stats = pooled.last_stats();
  EXPECT_EQ(stats.pool_threads, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ConcurrencyStress,
    ::testing::Values(server::Strategy::kFullScan,
                      server::Strategy::kHistogram,
                      server::Strategy::kHistogramIndex,
                      server::Strategy::kSortedHistogram,
                      server::Strategy::kAdaptive),
    [](const ::testing::TestParamInfo<server::Strategy>& info) {
      switch (info.param) {
        case server::Strategy::kFullScan: return std::string("FullScan");
        case server::Strategy::kHistogram: return std::string("Histogram");
        case server::Strategy::kHistogramIndex:
          return std::string("HistogramIndex");
        case server::Strategy::kSortedHistogram:
          return std::string("SortedHistogram");
        case server::Strategy::kAdaptive: return std::string("Adaptive");
      }
      return std::string("Unknown");
    });

}  // namespace
}  // namespace pdc
