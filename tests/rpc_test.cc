// Tests for the message bus, server runtime threads and client aggregation.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "rpc/message_bus.h"
#include "rpc/server_runtime.h"

namespace pdc::rpc {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}
std::string string_of(const std::vector<std::uint8_t>& b) {
  return {b.begin(), b.end()};
}

TEST(Mailbox, PushPopFifo) {
  Mailbox box;
  ASSERT_TRUE(box.push({0, bytes_of("a")}));
  ASSERT_TRUE(box.push({1, bytes_of("b")}));
  EXPECT_EQ(box.pending(), 2u);
  auto m1 = box.pop();
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(string_of(m1->payload), "a");
  auto m2 = box.pop();
  EXPECT_EQ(string_of(m2->payload), "b");
}

TEST(Mailbox, CloseWakesBlockedPopper) {
  Mailbox box;
  std::atomic<bool> returned{false};
  std::thread popper([&] {
    auto m = box.pop();
    EXPECT_FALSE(m.has_value());
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.close();
  popper.join();
  EXPECT_TRUE(returned);
  EXPECT_FALSE(box.push({0, {}}));  // pushes after close dropped
}

TEST(Mailbox, DrainsQueuedMessagesAfterClose) {
  Mailbox box;
  ASSERT_TRUE(box.push({0, bytes_of("x")}));
  box.close();
  auto m = box.pop();
  ASSERT_TRUE(m.has_value());  // queued message still delivered
  EXPECT_FALSE(box.pop().has_value());
}

TEST(MessageBus, BroadcastReachesAllServers) {
  MessageBus bus(4);
  bus.broadcast(bytes_of("hello"));
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_EQ(bus.server_mailbox(s).pending(), 1u);
  }
  EXPECT_EQ(bus.messages_sent(), 4u);
  EXPECT_EQ(bus.bytes_transferred(), 20u);
}

TEST(ServerRuntime, EchoRoundTrip) {
  MessageBus bus(3);
  std::vector<std::unique_ptr<ServerRuntime>> servers;
  for (ServerId s = 0; s < 3; ++s) {
    servers.push_back(std::make_unique<ServerRuntime>(
        bus, s, [s](std::span<const std::uint8_t> req) {
          std::string reply = "server" + std::to_string(s) + ":" +
                              std::string(req.begin(), req.end());
          return bytes_of(reply);
        }));
  }
  Client client(bus);
  auto responses = client.broadcast_wait(bytes_of("ping"));
  ASSERT_EQ(responses.size(), 3u);
  // Sorted by sender id.
  for (ServerId s = 0; s < 3; ++s) {
    EXPECT_EQ(responses[s].sender, s);
    EXPECT_EQ(string_of(responses[s].payload),
              "server" + std::to_string(s) + ":ping");
  }
  servers.clear();
  bus.shutdown();
}

TEST(ServerRuntime, ScatterToSubset) {
  MessageBus bus(4);
  std::vector<std::unique_ptr<ServerRuntime>> servers;
  for (ServerId s = 0; s < 4; ++s) {
    servers.push_back(std::make_unique<ServerRuntime>(
        bus, s, [](std::span<const std::uint8_t> req) {
          return std::vector<std::uint8_t>(req.begin(), req.end());
        }));
  }
  Client client(bus);
  std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
  requests.emplace_back(1, bytes_of("one"));
  requests.emplace_back(3, bytes_of("three"));
  auto responses = client.scatter_wait(std::move(requests));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].sender, 1u);
  EXPECT_EQ(string_of(responses[0].payload), "one");
  EXPECT_EQ(responses[1].sender, 3u);
  EXPECT_EQ(string_of(responses[1].payload), "three");
  servers.clear();
  bus.shutdown();
}

TEST(ServerRuntime, AsyncCollectOverlapsClientWork) {
  MessageBus bus(2);
  std::vector<std::unique_ptr<ServerRuntime>> servers;
  for (ServerId s = 0; s < 2; ++s) {
    servers.push_back(std::make_unique<ServerRuntime>(
        bus, s, [](std::span<const std::uint8_t>) {
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          return bytes_of("done");
        }));
  }
  Client client(bus);
  auto future = client.broadcast_collect(bytes_of("work"));
  // The client thread is free while servers process.
  int side_work = 0;
  for (int i = 0; i < 1000; ++i) side_work += i;
  EXPECT_EQ(side_work, 499500);
  auto responses = future.get();
  EXPECT_EQ(responses.size(), 2u);
  servers.clear();
  bus.shutdown();
}

TEST(Mailbox, PopUntilTimesOutThenDelivers) {
  Mailbox box;
  const auto t0 = std::chrono::steady_clock::now();
  auto none = box.pop_until(t0 + std::chrono::milliseconds(30));
  EXPECT_FALSE(none.has_value());
  EXPECT_FALSE(box.closed());  // timed out, not closed
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(30));
  ASSERT_TRUE(box.push({0, bytes_of("late")}));
  auto m = box.pop_until(std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(30));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(string_of(m->payload), "late");
}

TEST(MessageBus, PushAfterCloseNotDeliveredNotAccounted) {
  MessageBus bus(2);
  bus.broadcast(bytes_of("pre"));
  const auto bytes_before = bus.bytes_transferred();
  const auto messages_before = bus.messages_sent();
  bus.server_mailbox(1).close();
  // In-flight send during shutdown: refused, and stats unchanged.
  EXPECT_FALSE(bus.send_to_server(1, bytes_of("during-shutdown")));
  EXPECT_EQ(bus.bytes_transferred(), bytes_before);
  EXPECT_EQ(bus.messages_sent(), messages_before);
  // The open mailbox still accepts and accounts.
  EXPECT_TRUE(bus.send_to_server(0, bytes_of("ok")));
  EXPECT_EQ(bus.messages_sent(), messages_before + 1);
  bus.shutdown();
  EXPECT_FALSE(bus.send_to_client(0, bytes_of("reply")));
}

TEST(Envelope, WrapUnwrapRoundTrip) {
  Envelope header;
  header.request_id = 77;
  header.attempt = 3;
  header.deadline_us = steady_now_us() + 1000000;
  const auto payload = bytes_of("payload bytes");
  const auto frame = envelope_wrap(header, payload);
  Envelope parsed;
  std::span<const std::uint8_t> body;
  ASSERT_TRUE(envelope_unwrap(frame, parsed, body));
  EXPECT_EQ(parsed.request_id, 77u);
  EXPECT_EQ(parsed.attempt, 3u);
  EXPECT_EQ(parsed.deadline_us, header.deadline_us);
  EXPECT_EQ(std::string(body.begin(), body.end()), "payload bytes");
}

TEST(Envelope, CorruptionDetectedAtEveryByte) {
  Envelope header;
  header.request_id = 1;
  const auto frame = envelope_wrap(header, bytes_of("abc"));
  for (std::size_t i = 0; i < frame.size(); ++i) {
    auto bad = frame;
    bad[i] ^= 0x5A;
    Envelope parsed;
    std::span<const std::uint8_t> body;
    // A flipped byte either breaks the magic/lengths or the checksum; a
    // frame that still parses must at least have an intact payload.
    if (envelope_unwrap(bad, parsed, body)) {
      EXPECT_EQ(std::string(body.begin(), body.end()), "abc") << "byte " << i;
    }
  }
  // Truncated frames never parse.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::vector<std::uint8_t> prefix(frame.begin(),
                                     frame.begin() + static_cast<long>(cut));
    Envelope parsed;
    std::span<const std::uint8_t> body;
    EXPECT_FALSE(envelope_unwrap(prefix, parsed, body)) << "cut " << cut;
  }
}

TEST(ClientGather, RetriesRecoverFromDrops) {
  MessageBus bus(2);
  FaultPlan plan;
  plan.seed = 17;
  plan.drop_rate = 0.3;
  FaultInjector injector(plan);
  bus.set_fault_injector(&injector);
  std::vector<std::unique_ptr<ServerRuntime>> servers;
  for (ServerId s = 0; s < 2; ++s) {
    servers.push_back(std::make_unique<ServerRuntime>(
        bus, s, [](std::span<const std::uint8_t> req) {
          return std::vector<std::uint8_t>(req.begin(), req.end());
        }));
  }
  RetryPolicy policy;
  policy.attempt_timeout = std::chrono::milliseconds(50);
  policy.max_attempts = 10;  // 30% loss per direction: retries must win
  Client client(bus, policy);
  bool saw_retry = false;
  for (int round = 0; round < 5; ++round) {
    auto result = client.gather({{0, bytes_of("a")}, {1, bytes_of("b")}});
    ASSERT_TRUE(result.complete()) << "round " << round;
    EXPECT_EQ(string_of(result.responses[0]->payload), "a");
    EXPECT_EQ(result.responses[1]->payload, bytes_of("b"));
    saw_retry |= result.stats.retries > 0;
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_GT(injector.counters().dropped, 0u);
  servers.clear();
  bus.shutdown();
}

TEST(ClientGather, KilledServerReportedAsMissing) {
  MessageBus bus(2);
  FaultPlan plan;
  plan.server_faults.push_back({/*server=*/1, /*after_requests=*/0,
                                ServerFate::kKilled});
  FaultInjector injector(plan);
  bus.set_fault_injector(&injector);
  std::vector<std::unique_ptr<ServerRuntime>> servers;
  for (ServerId s = 0; s < 2; ++s) {
    servers.push_back(std::make_unique<ServerRuntime>(
        bus, s, [](std::span<const std::uint8_t> req) {
          return std::vector<std::uint8_t>(req.begin(), req.end());
        }));
  }
  RetryPolicy policy;
  policy.attempt_timeout = std::chrono::milliseconds(40);
  policy.max_attempts = 2;
  Client client(bus, policy);
  const auto t0 = std::chrono::steady_clock::now();
  auto result = client.gather({{0, bytes_of("x")}, {1, bytes_of("y")}});
  // Bounded: two attempts of 40ms plus backoff, not a hang.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
  EXPECT_FALSE(result.complete());
  ASSERT_TRUE(result.responses[0].has_value());
  EXPECT_EQ(string_of(result.responses[0]->payload), "x");
  EXPECT_FALSE(result.responses[1].has_value());
  EXPECT_GT(result.stats.timeouts, 0u);
  EXPECT_GT(result.stats.retries, 0u);
  servers.clear();
  bus.shutdown();
}

TEST(ClientGather, DuplicatedResponsesDiscardedBySequenceId) {
  MessageBus bus(1);
  FaultPlan plan;
  plan.seed = 3;
  plan.duplicate_rate = 1.0;  // every message sent twice
  FaultInjector injector(plan);
  bus.set_fault_injector(&injector);
  ServerRuntime server(bus, 0, [](std::span<const std::uint8_t> req) {
    return std::vector<std::uint8_t>(req.begin(), req.end());
  });
  Client client(bus);
  for (std::uint8_t i = 0; i < 4; ++i) {
    auto result = client.gather({{0, {i}}});
    ASSERT_TRUE(result.complete());
    EXPECT_EQ(result.responses[0]->payload, (std::vector<std::uint8_t>{i}));
  }
  EXPECT_GT(injector.counters().duplicated, 0u);
}

// Regression: a gather issued while a broadcast_collect future is still
// outstanding shares the single client mailbox.  Without serialization the
// two poppers consume and discard each other's responses as stale, causing
// spurious timeouts; both must complete with their own responses intact.
TEST(ClientGather, ConcurrentBroadcastAndGatherDoNotStealResponses) {
  MessageBus bus(2);
  std::vector<std::unique_ptr<ServerRuntime>> servers;
  for (ServerId s = 0; s < 2; ++s) {
    servers.push_back(std::make_unique<ServerRuntime>(
        bus, s, [](std::span<const std::uint8_t> req) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          return std::vector<std::uint8_t>(req.begin(), req.end());
        }));
  }
  Client client(bus);
  for (int round = 0; round < 10; ++round) {
    auto future = client.broadcast_collect(bytes_of("bg"));
    auto result = client.gather({{0, bytes_of("fg0")}, {1, bytes_of("fg1")}});
    ASSERT_TRUE(result.complete()) << "round " << round;
    EXPECT_EQ(string_of(result.responses[0]->payload), "fg0");
    EXPECT_EQ(string_of(result.responses[1]->payload), "fg1");
    EXPECT_EQ(result.stats.timeouts, 0u);
    auto bg = future.get();
    ASSERT_EQ(bg.size(), 2u) << "round " << round;
    for (const auto& m : bg) EXPECT_EQ(string_of(m.payload), "bg");
  }
  servers.clear();
  bus.shutdown();
}

TEST(Mailbox, BoundedOfferRejectsAtCapacity) {
  Mailbox box;
  box.set_capacity(2);
  EXPECT_EQ(box.capacity(), 2u);
  EXPECT_EQ(box.offer({0, bytes_of("a")}), PushOutcome::kAccepted);
  EXPECT_EQ(box.offer({1, bytes_of("b")}), PushOutcome::kAccepted);
  EXPECT_EQ(box.offer({2, bytes_of("c")}), PushOutcome::kRejectedFull);
  EXPECT_EQ(box.rejected_full(), 1u);
  EXPECT_EQ(box.peak(), 2u);
  // Draining frees capacity again.
  ASSERT_TRUE(box.pop().has_value());
  EXPECT_EQ(box.offer({3, bytes_of("d")}), PushOutcome::kAccepted);
  box.close();
  EXPECT_EQ(box.offer({4, bytes_of("e")}), PushOutcome::kClosed);
}

// Regression for the overload scenario the capacity exists for: a burst
// far past the bound must not grow the queue (memory) beyond it — extra
// messages are rejected at the door, visibly counted.
TEST(Mailbox, BurstCannotGrowMemoryPastCapacity) {
  Mailbox box;
  box.set_capacity(8);
  constexpr std::size_t kBurst = 10000;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    if (box.offer({static_cast<std::uint32_t>(i), bytes_of("x")}) ==
        PushOutcome::kAccepted) {
      ++accepted;
    }
    ASSERT_LE(box.pending(), 8u) << "message " << i;
  }
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(box.peak(), 8u);
  EXPECT_EQ(box.rejected_full(), kBurst - 8u);
}

TEST(WeightedFairQueue, SingleTenantIsFifo) {
  WeightedFairQueue<int> queue;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.push(0, i).accepted);
  }
  for (int i = 0; i < 5; ++i) {
    auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->first, 0u);
    EXPECT_EQ(item->second, i);
  }
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_EQ(queue.peak(), 5u);
  EXPECT_EQ(queue.sheds(), 0u);
}

TEST(WeightedFairQueue, WeightsSplitServiceThreeToOne) {
  // Both tenants stay backlogged; weight-3 tenant must receive ~3 of
  // every 4 service slots under virtual-time WFQ.
  WeightedFairQueue<int> queue(0, ShedPolicy::kRejectNew, {3.0, 1.0});
  for (int i = 0; i < 40; ++i) {
    queue.push(0, i);
    queue.push(1, i);
  }
  int heavy_in_first_20 = 0;
  for (int i = 0; i < 20; ++i) {
    auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    if (item->first == 0) ++heavy_in_first_20;
  }
  EXPECT_EQ(heavy_in_first_20, 15);  // exactly 3:1 while both backlogged
}

TEST(WeightedFairQueue, PopOrderIsDeterministic) {
  const auto run = [] {
    WeightedFairQueue<int> queue(0, ShedPolicy::kRejectNew, {2.0, 1.0, 1.0});
    int next = 0;
    for (int round = 0; round < 10; ++round) {
      for (std::uint32_t t = 0; t < 3; ++t) queue.push(t, next++);
    }
    std::vector<std::pair<std::uint32_t, int>> order;
    while (auto item = queue.pop()) order.push_back(*item);
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(WeightedFairQueue, RejectNewShedsTheArrival) {
  WeightedFairQueue<int> queue(2, ShedPolicy::kRejectNew);
  EXPECT_TRUE(queue.push(0, 1).accepted);
  EXPECT_TRUE(queue.push(0, 2).accepted);
  auto result = queue.push(7, 3);
  EXPECT_FALSE(result.accepted);
  ASSERT_TRUE(result.victim.has_value());
  EXPECT_EQ(result.victim->tenant, 7u);
  EXPECT_EQ(result.victim->item, 3);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.sheds(), 1u);
  // The queue itself is untouched: 1 then 2 still come out.
  EXPECT_EQ(queue.pop()->second, 1);
  EXPECT_EQ(queue.pop()->second, 2);
}

TEST(WeightedFairQueue, DropOldestEvictsLongestWaiting) {
  WeightedFairQueue<int> queue(2, ShedPolicy::kDropOldest);
  EXPECT_TRUE(queue.push(3, 1).accepted);
  EXPECT_TRUE(queue.push(0, 2).accepted);
  auto result = queue.push(0, 3);
  EXPECT_TRUE(result.accepted);  // the arrival got in...
  ASSERT_TRUE(result.victim.has_value());
  EXPECT_EQ(result.victim->item, 1);  // ...at the oldest entry's expense
  EXPECT_EQ(result.victim->tenant, 3u);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop()->second, 2);
  EXPECT_EQ(queue.pop()->second, 3);
}

// Overload end-to-end: a server with one slot and a one-deep wait queue
// receives a burst of concurrent gathers.  Excess requests are shed with
// kFlagShed (visible in server sheds() and client RpcStats), the shed
// clients' retries honour the retry-after hint, and with generous retry
// budgets every request eventually completes — overload degrades to
// queueing delay, not to lost or wrongly-answered requests.
TEST(ServerRuntime, ShedsPastQueueLimitAndRetriesRecover) {
  MessageBus bus(1);
  exec::ThreadPool pool(2);
  ServerRuntimeOptions options;
  options.pool = &pool;
  options.max_inflight = 1;
  options.queue_limit = 1;
  options.shed_retry_after_us = 500;
  ServerRuntime server(bus, 0, [](std::span<const std::uint8_t> req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return std::vector<std::uint8_t>(req.begin(), req.end());
  }, options);
  RetryPolicy policy;
  policy.attempt_timeout = std::chrono::milliseconds(250);
  policy.max_attempts = 30;
  policy.backoff_jitter = 0.5;
  Client client(bus, policy);

  constexpr int kClients = 8;
  std::atomic<std::uint64_t> total_sheds{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto result = client.gather({{0, {static_cast<std::uint8_t>(c)}}});
      if (result.complete() &&
          result.responses[0]->payload ==
              std::vector<std::uint8_t>{static_cast<std::uint8_t>(c)}) {
        ++completed;
      }
      total_sheds += result.stats.sheds;
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(completed.load(), kClients);
  // 8 concurrent requests vs 1 running + 1 queued: someone was shed.
  EXPECT_GT(server.sheds(), 0u);
  EXPECT_GT(total_sheds.load(), 0u);
  EXPECT_LE(server.queue_peak(), 1u);
  bus.shutdown();
}

// A request that is only ever shed must be reported as shed (server
// overloaded, alive) rather than as a timeout (server dead) — the signal
// the query layer uses to return kOverloaded instead of degrading.
TEST(ClientGather, ShedMarkedDistinctFromTimeout) {
  MessageBus bus(1);
  exec::ThreadPool pool(1);
  ServerRuntimeOptions options;
  options.pool = &pool;
  options.max_inflight = 1;
  options.queue_limit = 1;
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  ServerRuntime server(bus, 0,
                       [released](std::span<const std::uint8_t> req) {
                         released.wait();
                         return std::vector<std::uint8_t>(req.begin(),
                                                          req.end());
                       },
                       options);
  RetryPolicy policy;
  policy.attempt_timeout = std::chrono::milliseconds(500);
  policy.max_attempts = 2;
  Client client(bus, policy);
  // Occupy the single slot, then the single queue entry.
  auto slot = std::async(std::launch::async, [&] {
    return client.gather({{0, bytes_of("slot")}});
  });
  auto queued = std::async(std::launch::async, [&] {
    return client.gather({{0, bytes_of("wait")}});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // This one finds slot + queue full: shed on every attempt.
  const auto t0 = std::chrono::steady_clock::now();
  auto result = client.gather({{0, bytes_of("extra")}});
  // Shed replies wake the gather early — it must not sit out full
  // attempt windows.
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(900));
  EXPECT_FALSE(result.complete());
  ASSERT_EQ(result.shed.size(), 1u);
  EXPECT_TRUE(result.shed[0]);
  EXPECT_GT(result.stats.sheds, 0u);
  EXPECT_EQ(result.stats.timeouts, 0u);
  release.set_value();
  EXPECT_TRUE(slot.get().complete());
  EXPECT_TRUE(queued.get().complete());
  bus.shutdown();
}

TEST(ServerRuntime, SequentialRequestsProcessedInOrder) {
  MessageBus bus(1);
  std::vector<int> seen;
  ServerRuntime server(bus, 0, [&seen](std::span<const std::uint8_t> req) {
    seen.push_back(req[0]);
    return std::vector<std::uint8_t>{req[0]};
  });
  Client client(bus);
  for (std::uint8_t i = 0; i < 5; ++i) {
    auto responses = client.broadcast_wait({i});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].payload[0], i);
  }
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace pdc::rpc
