// Tests for the message bus, server runtime threads and client aggregation.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "rpc/message_bus.h"
#include "rpc/server_runtime.h"

namespace pdc::rpc {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}
std::string string_of(const std::vector<std::uint8_t>& b) {
  return {b.begin(), b.end()};
}

TEST(Mailbox, PushPopFifo) {
  Mailbox box;
  ASSERT_TRUE(box.push({0, bytes_of("a")}));
  ASSERT_TRUE(box.push({1, bytes_of("b")}));
  EXPECT_EQ(box.pending(), 2u);
  auto m1 = box.pop();
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(string_of(m1->payload), "a");
  auto m2 = box.pop();
  EXPECT_EQ(string_of(m2->payload), "b");
}

TEST(Mailbox, CloseWakesBlockedPopper) {
  Mailbox box;
  std::atomic<bool> returned{false};
  std::thread popper([&] {
    auto m = box.pop();
    EXPECT_FALSE(m.has_value());
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.close();
  popper.join();
  EXPECT_TRUE(returned);
  EXPECT_FALSE(box.push({0, {}}));  // pushes after close dropped
}

TEST(Mailbox, DrainsQueuedMessagesAfterClose) {
  Mailbox box;
  ASSERT_TRUE(box.push({0, bytes_of("x")}));
  box.close();
  auto m = box.pop();
  ASSERT_TRUE(m.has_value());  // queued message still delivered
  EXPECT_FALSE(box.pop().has_value());
}

TEST(MessageBus, BroadcastReachesAllServers) {
  MessageBus bus(4);
  bus.broadcast(bytes_of("hello"));
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_EQ(bus.server_mailbox(s).pending(), 1u);
  }
  EXPECT_EQ(bus.messages_sent(), 4u);
  EXPECT_EQ(bus.bytes_transferred(), 20u);
}

TEST(ServerRuntime, EchoRoundTrip) {
  MessageBus bus(3);
  std::vector<std::unique_ptr<ServerRuntime>> servers;
  for (ServerId s = 0; s < 3; ++s) {
    servers.push_back(std::make_unique<ServerRuntime>(
        bus, s, [s](std::span<const std::uint8_t> req) {
          std::string reply = "server" + std::to_string(s) + ":" +
                              std::string(req.begin(), req.end());
          return bytes_of(reply);
        }));
  }
  Client client(bus);
  auto responses = client.broadcast_wait(bytes_of("ping"));
  ASSERT_EQ(responses.size(), 3u);
  // Sorted by sender id.
  for (ServerId s = 0; s < 3; ++s) {
    EXPECT_EQ(responses[s].sender, s);
    EXPECT_EQ(string_of(responses[s].payload),
              "server" + std::to_string(s) + ":ping");
  }
  servers.clear();
  bus.shutdown();
}

TEST(ServerRuntime, ScatterToSubset) {
  MessageBus bus(4);
  std::vector<std::unique_ptr<ServerRuntime>> servers;
  for (ServerId s = 0; s < 4; ++s) {
    servers.push_back(std::make_unique<ServerRuntime>(
        bus, s, [](std::span<const std::uint8_t> req) {
          return std::vector<std::uint8_t>(req.begin(), req.end());
        }));
  }
  Client client(bus);
  std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
  requests.emplace_back(1, bytes_of("one"));
  requests.emplace_back(3, bytes_of("three"));
  auto responses = client.scatter_wait(std::move(requests));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].sender, 1u);
  EXPECT_EQ(string_of(responses[0].payload), "one");
  EXPECT_EQ(responses[1].sender, 3u);
  EXPECT_EQ(string_of(responses[1].payload), "three");
  servers.clear();
  bus.shutdown();
}

TEST(ServerRuntime, AsyncCollectOverlapsClientWork) {
  MessageBus bus(2);
  std::vector<std::unique_ptr<ServerRuntime>> servers;
  for (ServerId s = 0; s < 2; ++s) {
    servers.push_back(std::make_unique<ServerRuntime>(
        bus, s, [](std::span<const std::uint8_t>) {
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          return bytes_of("done");
        }));
  }
  Client client(bus);
  auto future = client.broadcast_collect(bytes_of("work"));
  // The client thread is free while servers process.
  int side_work = 0;
  for (int i = 0; i < 1000; ++i) side_work += i;
  EXPECT_EQ(side_work, 499500);
  auto responses = future.get();
  EXPECT_EQ(responses.size(), 2u);
  servers.clear();
  bus.shutdown();
}

TEST(ServerRuntime, SequentialRequestsProcessedInOrder) {
  MessageBus bus(1);
  std::vector<int> seen;
  ServerRuntime server(bus, 0, [&seen](std::span<const std::uint8_t> req) {
    seen.push_back(req[0]);
    return std::vector<std::uint8_t>{req[0]};
  });
  Client client(bus);
  for (std::uint8_t i = 0; i < 5; ++i) {
    auto responses = client.broadcast_wait({i});
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].payload[0], i);
  }
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace pdc::rpc
