// Kernel differential battery: every SIMD kernel against its scalar
// reference on adversarial inputs, with exact equality on outputs.
//
// The contract under test is bit-identity: whatever backend
// active_backend() picks, query results, WAH word streams and probe
// indexes must not change.  On machines without AVX2 the avx2 entry
// points forward to scalar, so the battery degrades to a self-check
// instead of failing.
//
// Every randomized test derives its stream from one seed (overridable via
// PDC_KERNELS_TEST_SEED) and puts that seed in the failure trace, so any
// divergence is reproducible with a single env var.

#include "kernels/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bitmap/wah.h"
#include "common/interval.h"
#include "common/rng.h"

namespace pdc::kernels {
namespace {

std::uint64_t test_seed() {
  if (const char* env = std::getenv("PDC_KERNELS_TEST_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xC0FFEE5EEDULL;
}

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Adversarial value pool: signed zeros, NaN payload carriers, infinities,
/// denormals, extremes, and values straddling float<->double rounding.
template <typename T>
std::vector<T> value_pool() {
  return {
      T(0.0),
      T(-0.0),
      T(1.0),
      T(-1.0),
      std::numeric_limits<T>::quiet_NaN(),
      std::numeric_limits<T>::infinity(),
      -std::numeric_limits<T>::infinity(),
      std::numeric_limits<T>::denorm_min(),
      -std::numeric_limits<T>::denorm_min(),
      std::numeric_limits<T>::max(),
      std::numeric_limits<T>::lowest(),
      T(0.1),  // not exactly representable
      T(2.5),
      T(-3.75),
  };
}

template <typename T>
std::vector<T> random_values(Rng& rng, std::size_t n) {
  const std::vector<T> pool = value_pool<T>();
  std::vector<T> v(n);
  for (auto& x : v) {
    if (rng.bounded(4) == 0) {
      x = pool[rng.bounded(pool.size())];
    } else {
      x = static_cast<T>(rng.uniform(-100.0, 100.0));
    }
  }
  return v;
}

ValueInterval random_interval(Rng& rng, double spread) {
  ValueInterval q;
  switch (rng.bounded(6)) {
    case 0:  // whole line
      break;
    case 1:  // empty (inverted)
      q.lo = 1.0;
      q.hi = -1.0;
      break;
    case 2:  // point
      q.lo = q.hi = rng.uniform(-spread, spread);
      break;
    default:
      q.lo = rng.uniform(-spread, spread);
      q.hi = rng.uniform(-spread, spread);
      if (q.lo > q.hi) std::swap(q.lo, q.hi);
      break;
  }
  q.lo_inclusive = rng.bounded(2) == 0;
  q.hi_inclusive = rng.bounded(2) == 0;
  return q;
}

// ----------------------------------------------------------- dispatch

TEST(KernelDispatch, OverrideRoundTripAndNames) {
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
  {
    ScopedBackend force(Backend::kScalar);
    EXPECT_EQ(active_backend(), Backend::kScalar);
    {
      ScopedBackend inner(Backend::kAvx2);
      // Downgraded to scalar when the CPU cannot run AVX2.
      EXPECT_EQ(active_backend(),
                cpu_has_avx2() ? Backend::kAvx2 : Backend::kScalar);
    }
    EXPECT_EQ(active_backend(), Backend::kScalar);
  }
}

// ------------------------------------------------------ predicate scan

template <typename T>
void scan_with(bool use_avx2, std::span<const T> values,
               const ValueInterval& q, std::uint64_t base,
               std::vector<std::uint64_t>& out) {
  if constexpr (std::is_same_v<T, float>) {
    (use_avx2 ? avx2::scan_interval_f32 : scalar::scan_interval_f32)(
        values, q, base, out);
  } else {
    (use_avx2 ? avx2::scan_interval_f64 : scalar::scan_interval_f64)(
        values, q, base, out);
  }
}

template <typename T>
void run_scan_differential(std::uint64_t seed) {
  Rng rng(seed);
  // Shared backing buffer so subspans start at every lane alignment 0..7.
  const std::vector<T> backing = random_values<T>(rng, 4096 + 160);
  for (std::size_t len = 0; len <= 129; ++len) {
    for (std::size_t rep = 0; rep < 4; ++rep) {
      const std::size_t offset = rng.bounded(8);
      std::span<const T> values(backing.data() + offset + rng.bounded(64),
                                len);
      ValueInterval q = random_interval(rng, 150.0);
      // Half the time, pin a bound to an actual element so the ==bound
      // inclusivity branches are exercised.
      if (len > 0 && rng.bounded(2) == 0) {
        const double v = static_cast<double>(values[rng.bounded(len)]);
        if (v == v) (rng.bounded(2) == 0 ? q.lo : q.hi) = v;
        if (q.lo > q.hi) std::swap(q.lo, q.hi);
      }
      const std::uint64_t base = rng.bounded(1u << 20);
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " len=" + std::to_string(len) + " rep=" +
                   std::to_string(rep) + " lo=" + std::to_string(q.lo) +
                   " hi=" + std::to_string(q.hi));

      std::vector<std::uint64_t> got_scalar;
      std::vector<std::uint64_t> got_avx2;
      scan_with<T>(false, values, q, base, got_scalar);
      scan_with<T>(true, values, q, base, got_avx2);
      ASSERT_EQ(got_scalar, got_avx2);

      // Scalar reference is itself checked against the contains() oracle.
      std::vector<std::uint64_t> oracle;
      for (std::size_t i = 0; i < len; ++i) {
        if (q.contains(static_cast<double>(values[i]))) {
          oracle.push_back(base + i);
        }
      }
      ASSERT_EQ(got_scalar, oracle);
    }
  }
}

TEST(KernelScan, DifferentialF32AdversarialLengths) {
  run_scan_differential<float>(test_seed());
}

TEST(KernelScan, DifferentialF64AdversarialLengths) {
  run_scan_differential<double>(test_seed() ^ 0x9E3779B97F4A7C15ULL);
}

TEST(KernelScan, AllHitAndNoHitRuns) {
  for (const std::size_t len : {0u, 1u, 7u, 8u, 9u, 31u, 32u, 33u, 129u,
                                4096u, 4099u}) {
    const std::vector<double> values(len, 42.0);
    const ValueInterval all{0.0, 100.0, true, true};
    const ValueInterval none{43.0, 100.0, true, true};
    std::vector<std::uint64_t> s;
    std::vector<std::uint64_t> v;
    scalar::scan_interval_f64(values, all, 10, s);
    avx2::scan_interval_f64(values, all, 10, v);
    ASSERT_EQ(s, v) << "len=" << len;
    ASSERT_EQ(s.size(), len);
    s.clear();
    v.clear();
    scalar::scan_interval_f64(values, none, 10, s);
    avx2::scan_interval_f64(values, none, 10, v);
    ASSERT_EQ(s, v) << "len=" << len;
    ASSERT_TRUE(s.empty());
  }
}

TEST(KernelScan, FloatBoundsNotRepresentableInFloat) {
  // Bounds that fall strictly between adjacent floats: the kernel must
  // compare in the double domain (widen floats) or these diverge.
  const std::vector<float> values = {1.0f, std::nextafterf(1.0f, 2.0f),
                                     2.0f, 0.1f};
  ValueInterval q;
  q.lo = 1.0 + 1e-12;  // between 1.0f and nextafter(1.0f)
  q.hi = 2.0;
  std::vector<std::uint64_t> s;
  std::vector<std::uint64_t> v;
  scalar::scan_interval_f32(values, q, 0, s);
  avx2::scan_interval_f32(values, q, 0, v);
  EXPECT_EQ(s, v);
  const std::vector<std::uint64_t> expect = {1, 2};
  EXPECT_EQ(s, expect);
}

TEST(KernelScan, DispatchedMatchesBothBackends) {
  Rng rng(test_seed() + 7);
  const std::vector<double> values = random_values<double>(rng, 1000);
  const ValueInterval q = random_interval(rng, 120.0);
  std::vector<std::uint64_t> via_scalar;
  std::vector<std::uint64_t> via_avx2;
  {
    ScopedBackend b(Backend::kScalar);
    scan_interval(std::span<const double>(values), q, 5, via_scalar);
  }
  {
    ScopedBackend b(Backend::kAvx2);
    scan_interval(std::span<const double>(values), q, 5, via_avx2);
  }
  EXPECT_EQ(via_scalar, via_avx2);
}

// ------------------------------------------------------------ iota fill

TEST(KernelAppendRange, DifferentialAndExact) {
  for (const std::uint64_t lo : {0ull, 1ull, 17ull, 1ull << 40}) {
    for (std::uint64_t n = 0; n <= 130; ++n) {
      std::vector<std::uint64_t> s = {999};  // non-empty prefix preserved
      std::vector<std::uint64_t> v = {999};
      scalar::append_range(s, lo, lo + n);
      avx2::append_range(v, lo, lo + n);
      ASSERT_EQ(s, v) << "lo=" << lo << " n=" << n;
      ASSERT_EQ(s.size(), n + 1);
      for (std::uint64_t i = 0; i < n; ++i) ASSERT_EQ(s[i + 1], lo + i);
    }
  }
  // Degenerate: hi <= lo appends nothing.
  std::vector<std::uint64_t> s;
  std::vector<std::uint64_t> v;
  scalar::append_range(s, 10, 10);
  avx2::append_range(v, 10, 10);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(v.empty());
}

// ------------------------------------------------------------------ WAH

/// Oracle decoder: straightforward word walk, position filter.
std::vector<std::uint64_t> wah_expand_oracle(
    std::span<const std::uint32_t> words, std::uint32_t active,
    std::uint32_t active_bits, std::uint64_t base, std::uint64_t clip_lo,
    std::uint64_t clip_hi) {
  std::vector<std::uint64_t> out;
  std::uint64_t pos = base;
  const auto emit = [&](std::uint64_t p) {
    if (p >= clip_lo && p < clip_hi) out.push_back(p);
  };
  for (const std::uint32_t w : words) {
    if (w & 0x80000000u) {
      const std::uint64_t bits =
          static_cast<std::uint64_t>(w & 0x3FFFFFFFu) * 31;
      if (w & 0x40000000u) {
        for (std::uint64_t i = 0; i < bits; ++i) emit(pos + i);
      }
      pos += bits;
    } else {
      for (std::uint32_t b = 0; b < 31; ++b) {
        if (w & (1u << b)) emit(pos + b);
      }
      pos += 31;
    }
  }
  for (std::uint32_t b = 0; b < active_bits; ++b) {
    if (active & (1u << b)) emit(pos + b);
  }
  return out;
}

void check_expand(std::span<const std::uint32_t> words, std::uint32_t active,
                  std::uint32_t active_bits, std::uint64_t base,
                  std::uint64_t clip_lo, std::uint64_t clip_hi) {
  std::vector<std::uint64_t> s;
  std::vector<std::uint64_t> v;
  scalar::wah_expand(words, active, active_bits, base, clip_lo, clip_hi, s);
  avx2::wah_expand(words, active, active_bits, base, clip_lo, clip_hi, v);
  ASSERT_EQ(s, v);
  ASSERT_EQ(s, wah_expand_oracle(words, active, active_bits, base, clip_lo,
                                 clip_hi));
}

TEST(KernelWah, ExpandCraftedFillBoundaries) {
  const std::uint32_t lit = 0x2AAAAAAAu;      // alternating bits, literal
  const std::uint32_t ones = 0xC0000000u;     // 1-fill, count 0 -> invalid;
  const std::uint32_t fill1 = ones | 1u;      // 1-fill, one group
  const std::uint32_t fill3 = ones | 3u;      // 1-fill, three groups
  const std::uint32_t zfill2 = 0x80000002u;   // 0-fill, two groups
  const std::vector<std::vector<std::uint32_t>> streams = {
      {},                          // trailer only
      {lit},                       // single literal
      {fill1},                     // single 1-fill group
      {zfill2},                    // only zeros
      {lit, fill1, lit},           // literal / fill / literal
      {fill3, zfill2, fill1},      // fills back to back
      {lit, lit, lit, lit, lit},   // literal stretch
      {fill1, lit, zfill2, lit, fill3},
  };
  for (std::size_t si = 0; si < streams.size(); ++si) {
    const auto& words = streams[si];
    std::uint64_t bits = 0;
    for (const std::uint32_t w : words) {
      bits += (w & 0x80000000u) ? 31ull * (w & 0x3FFFFFFFu) : 31ull;
    }
    for (const std::uint32_t active_bits : {0u, 1u, 17u, 30u}) {
      const std::uint32_t active =
          active_bits == 0 ? 0u : (0x15555555u & ((1u << active_bits) - 1));
      const std::uint64_t total = bits + active_bits;
      // Clip windows crossing every interesting edge: word boundaries,
      // fill interiors, one-off-the-end.
      const std::uint64_t base = 1000;
      const std::vector<std::pair<std::uint64_t, std::uint64_t>> clips = {
          {0, ~0ull},                       // no clipping
          {base, base + total},             // exact extent
          {base + 1, base + total},         // drop first position
          {base + 31, base + 62},           // one whole group
          {base + 30, base + 32},           // straddle a word boundary
          {base + 17, base + (total > 5 ? total - 5 : total)},
          {base + total, base + total + 9},  // fully past the end
          {0, base},                         // fully before
      };
      for (const auto& [lo, hi] : clips) {
        SCOPED_TRACE("stream=" + std::to_string(si) + " active_bits=" +
                     std::to_string(active_bits) + " clip=[" +
                     std::to_string(lo) + "," + std::to_string(hi) + ")");
        check_expand(words, active, active_bits, base, lo, hi);
      }
    }
  }
}

TEST(KernelWah, ExpandRandomVectorsDifferential) {
  const std::uint64_t seed = test_seed() + 11;
  Rng rng(seed);
  for (int rep = 0; rep < 50; ++rep) {
    bitmap::WahBitVector bv;
    const std::uint64_t target = rng.bounded(5000) + 1;
    while (bv.size() < target) {
      if (rng.bounded(3) == 0) {
        bv.append_run(rng.bounded(2) == 1, rng.bounded(200) + 1);
      } else {
        bv.append_bit(rng.bounded(2) == 1);
      }
    }
    ASSERT_TRUE(bv.check_invariants().ok());
    const std::uint64_t base = rng.bounded(1u << 16);
    const std::uint64_t a = base + rng.bounded(bv.size() + 10);
    const std::uint64_t b = base + rng.bounded(bv.size() + 10);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " rep=" +
                 std::to_string(rep));
    check_expand(bv.words(), bv.active_word(), bv.active_bit_count(), base,
                 std::min(a, b), std::max(a, b));
    // And through the public clip API against the for_each_set oracle.
    std::vector<std::uint64_t> via_api;
    bv.append_set_positions(base, std::min(a, b), std::max(a, b), via_api);
    std::vector<std::uint64_t> oracle;
    bv.for_each_set([&](std::uint64_t p) {
      const std::uint64_t abs = base + p;
      if (abs >= std::min(a, b) && abs < std::max(a, b)) {
        oracle.push_back(abs);
      }
    });
    ASSERT_EQ(via_api, oracle);
  }
}

TEST(KernelWah, CombineLiteralsDifferential) {
  Rng rng(test_seed() + 13);
  for (std::size_t n = 0; n <= 129; ++n) {
    std::vector<std::uint32_t> a(n);
    std::vector<std::uint32_t> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::uint32_t>(rng.next_u64()) & 0x7FFFFFFFu;
      b[i] = static_cast<std::uint32_t>(rng.next_u64()) & 0x7FFFFFFFu;
    }
    for (const bool is_or : {false, true}) {
      std::vector<std::uint32_t> ds(n);
      std::vector<std::uint32_t> dv(n);
      scalar::wah_combine_literals(a.data(), b.data(), ds.data(), n, is_or);
      avx2::wah_combine_literals(a.data(), b.data(), dv.data(), n, is_or);
      ASSERT_EQ(ds, dv) << "n=" << n << " is_or=" << is_or;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(ds[i], is_or ? (a[i] | b[i]) : (a[i] & b[i]));
      }
    }
  }
}

TEST(KernelWah, LogicalOpsBackendIdentical) {
  const std::uint64_t seed = test_seed() + 17;
  Rng rng(seed);
  for (int rep = 0; rep < 30; ++rep) {
    const std::uint64_t nbits = rng.bounded(4000) + 64;
    bitmap::WahBitVector a;
    bitmap::WahBitVector b;
    // Long literal stretches (per-bit appends) mixed with runs, so the
    // SIMD literal-stretch path in Combine really triggers.
    while (a.size() < nbits) a.append_bit(rng.bounded(3) == 0);
    while (b.size() < nbits) {
      if (rng.bounded(4) == 0) {
        b.append_run(rng.bounded(2) == 1,
                     std::min<std::uint64_t>(97, nbits - b.size()));
      } else {
        b.append_bit(rng.bounded(2) == 0);
      }
    }
    SCOPED_TRACE("seed=" + std::to_string(seed) + " rep=" +
                 std::to_string(rep));
    bitmap::WahBitVector and_scalar;
    bitmap::WahBitVector and_avx2;
    bitmap::WahBitVector or_scalar;
    bitmap::WahBitVector or_avx2;
    {
      ScopedBackend force(Backend::kScalar);
      auto r_and = bitmap::WahBitVector::And(a, b);
      auto r_or = bitmap::WahBitVector::Or(a, b);
      ASSERT_TRUE(r_and.ok() && r_or.ok());
      and_scalar = std::move(r_and).value();
      or_scalar = std::move(r_or).value();
    }
    {
      ScopedBackend force(Backend::kAvx2);
      auto r_and = bitmap::WahBitVector::And(a, b);
      auto r_or = bitmap::WahBitVector::Or(a, b);
      ASSERT_TRUE(r_and.ok() && r_or.ok());
      and_avx2 = std::move(r_and).value();
      or_avx2 = std::move(r_or).value();
    }
    // Full structural equality: word streams, trailer, counts.
    ASSERT_EQ(and_scalar, and_avx2);
    ASSERT_EQ(or_scalar, or_avx2);
    ASSERT_TRUE(and_scalar.check_invariants().ok())
        << and_scalar.check_invariants().message();
    ASSERT_TRUE(or_scalar.check_invariants().ok())
        << or_scalar.check_invariants().message();
  }
}

TEST(KernelWah, PopcountWordsMatchesLoop) {
  Rng rng(test_seed() + 19);
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    std::vector<std::uint32_t> w(n);
    for (auto& x : w) x = static_cast<std::uint32_t>(rng.next_u64());
    std::uint64_t expect = 0;
    for (const std::uint32_t x : w) {
      expect += static_cast<std::uint64_t>(__builtin_popcount(x));
    }
    EXPECT_EQ(popcount_words(w.data(), n), expect) << "n=" << n;
  }
}

// -------------------------------------------------- sorted bound probes

template <typename T>
void run_bound_batch_differential(std::uint64_t seed) {
  Rng rng(seed);
  for (const std::size_t n :
       {0u, 1u, 2u, 3u, 7u, 8u, 9u, 64u, 127u, 128u, 129u, 1000u}) {
    std::vector<T> sorted(n);
    for (auto& x : sorted) {
      // Plateaus of duplicates stress the lower/upper distinction.
      x = static_cast<T>(std::floor(rng.uniform(-50.0, 50.0)));
    }
    std::sort(sorted.begin(), sorted.end());
    std::vector<T> keys;
    for (std::size_t k = 0; k < 100; ++k) {
      keys.push_back(static_cast<T>(std::floor(rng.uniform(-60.0, 60.0))));
    }
    if (n > 0) {
      keys.push_back(sorted.front());
      keys.push_back(sorted.back());
      keys.push_back(sorted[rng.bounded(n)]);
    }
    keys.push_back(std::numeric_limits<T>::infinity());
    keys.push_back(-std::numeric_limits<T>::infinity());
    keys.push_back(std::numeric_limits<T>::quiet_NaN());

    std::vector<std::uint64_t> lo_s(keys.size());
    std::vector<std::uint64_t> lo_v(keys.size());
    std::vector<std::uint64_t> up_s(keys.size());
    std::vector<std::uint64_t> up_v(keys.size());
    if constexpr (std::is_same_v<T, float>) {
      scalar::lower_bound_batch_f32(sorted, keys, lo_s);
      avx2::lower_bound_batch_f32(sorted, keys, lo_v);
      scalar::upper_bound_batch_f32(sorted, keys, up_s);
      avx2::upper_bound_batch_f32(sorted, keys, up_v);
    } else {
      scalar::lower_bound_batch_f64(sorted, keys, lo_s);
      avx2::lower_bound_batch_f64(sorted, keys, lo_v);
      scalar::upper_bound_batch_f64(sorted, keys, up_s);
      avx2::upper_bound_batch_f64(sorted, keys, up_v);
    }
    for (std::size_t k = 0; k < keys.size(); ++k) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" +
                   std::to_string(n) + " k=" + std::to_string(k) + " key=" +
                   std::to_string(static_cast<double>(keys[k])));
      // Backend identity holds for every key, NaN included.
      ASSERT_EQ(lo_s[k], lo_v[k]);
      ASSERT_EQ(up_s[k], up_v[k]);
      if (keys[k] == keys[k]) {
        // Non-NaN keys must agree with the std algorithms exactly.
        ASSERT_EQ(lo_s[k],
                  static_cast<std::uint64_t>(
                      std::lower_bound(sorted.begin(), sorted.end(),
                                       keys[k]) -
                      sorted.begin()));
        ASSERT_EQ(up_s[k],
                  static_cast<std::uint64_t>(
                      std::upper_bound(sorted.begin(), sorted.end(),
                                       keys[k]) -
                      sorted.begin()));
      }
      // And with the shared single-key branchless form.
      ASSERT_EQ(lo_s[k],
                lower_bound_index(std::span<const T>(sorted), keys[k]));
      ASSERT_EQ(up_s[k],
                upper_bound_index(std::span<const T>(sorted), keys[k]));
    }
  }
}

TEST(KernelBounds, BatchDifferentialF32) {
  run_bound_batch_differential<float>(test_seed() + 23);
}

TEST(KernelBounds, BatchDifferentialF64) {
  run_bound_batch_differential<double>(test_seed() + 29);
}

TEST(KernelBounds, EmptyAndSingleElement) {
  const std::vector<double> empty;
  const std::vector<double> one = {5.0};
  const std::vector<double> keys = {4.0, 5.0, 6.0, kNan, kInf, -kInf};
  std::vector<std::uint64_t> out_s(keys.size());
  std::vector<std::uint64_t> out_v(keys.size());
  scalar::lower_bound_batch_f64(empty, keys, out_s);
  avx2::lower_bound_batch_f64(empty, keys, out_v);
  EXPECT_EQ(out_s, out_v);
  for (const std::uint64_t i : out_s) EXPECT_EQ(i, 0u);
  scalar::upper_bound_batch_f64(one, keys, out_s);
  avx2::upper_bound_batch_f64(one, keys, out_v);
  EXPECT_EQ(out_s, out_v);
  EXPECT_EQ(out_s[0], 0u);  // 4.0 before 5.0
  EXPECT_EQ(out_s[1], 1u);  // upper_bound(5.0) past the element
  EXPECT_EQ(out_s[2], 1u);
}

}  // namespace
}  // namespace pdc::kernels
