// End-to-end tests of the PDC-Query service: every strategy, every server
// count must agree exactly with a brute-force reference evaluation.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "common/rng.h"
#include "query/service.h"
#include "sortrep/sorted_replica.h"

namespace pdc::query {
namespace {

using server::Strategy;

/// Shared fixture data: three correlated float columns imported as PDC
/// objects with regions, histograms, bitmap indexes and a sorted replica.
class QueryEnv {
 public:
  static constexpr std::uint64_t kN = 60000;

  explicit QueryEnv(const std::string& root) : root_(root) {
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);

    Rng rng(0xE2E);
    energy_.resize(kN);
    x_.resize(kN);
    y_.resize(kN);
    for (std::uint64_t i = 0; i < kN; ++i) {
      // Spatially-smooth bulk (array order tracks space, as in VPIC output)
      // with a hot zone holding most of the energetic tail.
      const double bulk = 1.0 + 0.8 * std::sin(static_cast<double>(i) / 1200.0);
      const bool hot_zone = i >= 10000 && i < 16000;
      const bool tail = rng.next_double() < (hot_zone ? 0.4 : 2e-4);
      energy_[i] = static_cast<float>(
          tail ? 2.0 + rng.exponential(5.0)
               : std::clamp(bulk + 0.1 * (rng.next_double() - 0.5), 0.01,
                            1.99));
      x_[i] = static_cast<float>(rng.uniform(0.0, 330.0));
      y_[i] = static_cast<float>(rng.uniform(-150.0, 150.0));
    }

    obj::ImportOptions options;
    options.region_size_bytes = 4096;  // 1024 floats per region
    const ObjectId container =
        std::move(store_->create_container("test")).value();
    energy_id_ = std::move(store_->import_object<float>(
                               container, "Energy", std::span<const float>(energy_), options))
                     .value();
    x_id_ = std::move(store_->import_object<float>(
                          container, "x", std::span<const float>(x_), options))
                .value();
    y_id_ = std::move(store_->import_object<float>(
                          container, "y", std::span<const float>(y_), options))
                .value();
    for (const ObjectId id : {energy_id_, x_id_, y_id_}) {
      auto s = store_->build_bitmap_index(id);
      if (!s.ok()) std::abort();
    }
    auto replica = sortrep::build_sorted_replica(*store_, energy_id_, options);
    if (!replica.ok()) std::abort();
  }

  ~QueryEnv() { std::filesystem::remove_all(root_); }

  [[nodiscard]] std::vector<std::uint64_t> brute_force(
      const ValueInterval& qe, const ValueInterval* qx = nullptr,
      const ValueInterval* qy = nullptr) const {
    std::vector<std::uint64_t> hits;
    for (std::uint64_t i = 0; i < kN; ++i) {
      if (!qe.contains(energy_[i])) continue;
      if (qx != nullptr && !qx->contains(x_[i])) continue;
      if (qy != nullptr && !qy->contains(y_[i])) continue;
      hits.push_back(i);
    }
    return hits;
  }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  std::vector<float> energy_, x_, y_;
  ObjectId energy_id_ = kInvalidObjectId;
  ObjectId x_id_ = kInvalidObjectId;
  ObjectId y_id_ = kInvalidObjectId;
};

class StrategySweep
    : public ::testing::TestWithParam<std::tuple<Strategy, std::uint32_t>> {
 protected:
  void SetUp() override {
    env_ = std::make_unique<QueryEnv>(
        ::testing::TempDir() + "/query_e2e_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    ServiceOptions options;
    options.strategy = std::get<0>(GetParam());
    options.num_servers = std::get<1>(GetParam());
    service_ = std::make_unique<QueryService>(*env_->store_, options);
  }

  std::unique_ptr<QueryEnv> env_;
  std::unique_ptr<QueryService> service_;
};

TEST_P(StrategySweep, SingleRangeMatchesBruteForce) {
  const auto q = q_and(create(env_->energy_id_, QueryOp::kGT, 2.1),
                       create(env_->energy_id_, QueryOp::kLT, 2.4));
  const auto qi = ValueInterval::from_op(QueryOp::kGT, 2.1)
                      .intersect(ValueInterval::from_op(QueryOp::kLT, 2.4));
  const auto expect = env_->brute_force(qi);

  auto nhits = service_->get_num_hits(q);
  ASSERT_TRUE(nhits.ok()) << nhits.status().ToString();
  EXPECT_EQ(*nhits, expect.size());
  EXPECT_GT(service_->last_stats().sim_elapsed_seconds, 0.0);

  auto selection = service_->get_selection(q);
  ASSERT_TRUE(selection.ok());
  EXPECT_EQ(selection->num_hits, expect.size());
  EXPECT_EQ(selection->positions, expect);
}

TEST_P(StrategySweep, OneSidedQueryMatches) {
  const auto q = create(env_->energy_id_, QueryOp::kGTE, 3.0);
  const auto expect =
      env_->brute_force(ValueInterval::from_op(QueryOp::kGTE, 3.0));
  auto selection = service_->get_selection(q);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_EQ(selection->positions, expect);
}

TEST_P(StrategySweep, MultiObjectAndMatchesBruteForce) {
  const auto q = q_and(
      q_and(create(env_->energy_id_, QueryOp::kGT, 2.0),
            create(env_->x_id_, QueryOp::kLT, 100.0)),
      q_and(create(env_->y_id_, QueryOp::kGT, -50.0),
            create(env_->y_id_, QueryOp::kLT, 50.0)));
  const auto qe = ValueInterval::from_op(QueryOp::kGT, 2.0);
  const auto qx = ValueInterval::from_op(QueryOp::kLT, 100.0);
  const auto qy = ValueInterval::from_op(QueryOp::kGT, -50.0)
                      .intersect(ValueInterval::from_op(QueryOp::kLT, 50.0));
  const auto expect = env_->brute_force(qe, &qx, &qy);

  auto selection = service_->get_selection(q);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_EQ(selection->positions, expect);
}

TEST_P(StrategySweep, OrAcrossObjectsMatchesBruteForce) {
  const auto q = q_or(create(env_->energy_id_, QueryOp::kGT, 3.2),
                      create(env_->x_id_, QueryOp::kLT, 2.0));
  std::vector<std::uint64_t> expect;
  for (std::uint64_t i = 0; i < QueryEnv::kN; ++i) {
    if (env_->energy_[i] > 3.2F || env_->x_[i] < 2.0F) expect.push_back(i);
  }
  auto selection = service_->get_selection(q);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_EQ(selection->positions, expect);
}

TEST_P(StrategySweep, EqualityQueryFindsExactValue) {
  const float needle = env_->energy_[12345];
  const auto q = create(env_->energy_id_, QueryOp::kEQ,
                        static_cast<double>(needle));
  auto selection = service_->get_selection(q);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_GE(selection->num_hits, 1u);
  EXPECT_TRUE(std::binary_search(selection->positions.begin(),
                                 selection->positions.end(), 12345u));
  for (const auto pos : selection->positions) {
    EXPECT_EQ(env_->energy_[pos], needle);
  }
}

TEST_P(StrategySweep, EmptyResultIsCleanZero) {
  const auto q = create(env_->energy_id_, QueryOp::kGT, 1e9);
  auto nhits = service_->get_num_hits(q);
  ASSERT_TRUE(nhits.ok()) << nhits.status().ToString();
  EXPECT_EQ(*nhits, 0u);
  auto selection = service_->get_selection(q);
  ASSERT_TRUE(selection.ok());
  EXPECT_TRUE(selection->positions.empty());
}

TEST_P(StrategySweep, ContradictoryAndEliminatedByPlanner) {
  const auto q = q_and(create(env_->energy_id_, QueryOp::kGT, 5.0),
                       create(env_->energy_id_, QueryOp::kLT, 1.0));
  auto nhits = service_->get_num_hits(q);
  ASSERT_TRUE(nhits.ok());
  EXPECT_EQ(*nhits, 0u);
  // Planner eliminated the term: no bytes were read at all.
  EXPECT_EQ(service_->last_stats().server_bytes_read, 0u);
}

TEST_P(StrategySweep, RegionConstraintFiltersPositions) {
  const Extent1D constraint{10000, 20000};
  const auto q =
      set_region(create(env_->energy_id_, QueryOp::kGT, 2.5), constraint);
  auto selection = service_->get_selection(q);
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  std::vector<std::uint64_t> expect;
  for (std::uint64_t i = constraint.offset; i < constraint.end(); ++i) {
    if (env_->energy_[i] > 2.5F) expect.push_back(i);
  }
  EXPECT_EQ(selection->positions, expect);
}

TEST_P(StrategySweep, GetDataReturnsSelectedValues) {
  const auto q = q_and(create(env_->energy_id_, QueryOp::kGT, 2.3),
                       create(env_->energy_id_, QueryOp::kLT, 2.6));
  auto selection = service_->get_selection(q);
  ASSERT_TRUE(selection.ok());
  ASSERT_GT(selection->num_hits, 0u);

  std::vector<float> values(selection->num_hits);
  ASSERT_TRUE(service_
                  ->get_data<float>(env_->energy_id_, *selection, values,
                                    GetDataMode::kByPositions)
                  .ok());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], env_->energy_[selection->positions[i]]);
  }
}

TEST_P(StrategySweep, GetDataOnDifferentObjectOfSameDims) {
  // Paper: "memory objects may have different structures from those in the
  // query condition" — select on Energy, fetch x.
  const auto q = q_and(create(env_->energy_id_, QueryOp::kGT, 3.0),
                       create(env_->energy_id_, QueryOp::kLT, 3.3));
  auto selection = service_->get_selection(q);
  ASSERT_TRUE(selection.ok());
  ASSERT_GT(selection->num_hits, 0u);
  std::vector<float> xs(selection->num_hits);
  ASSERT_TRUE(service_
                  ->get_data<float>(env_->x_id_, *selection, xs,
                                    GetDataMode::kByPositions)
                  .ok());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(xs[i], env_->x_[selection->positions[i]]);
  }
}

TEST_P(StrategySweep, GetDataBatchConcatenatesToFullResult) {
  const auto q = q_and(create(env_->energy_id_, QueryOp::kGT, 2.2),
                       create(env_->energy_id_, QueryOp::kLT, 2.8));
  auto selection = service_->get_selection(q);
  ASSERT_TRUE(selection.ok());
  ASSERT_GT(selection->num_hits, 100u);

  std::vector<float> streamed;
  std::uint64_t batches = 0;
  ASSERT_TRUE(service_
                  ->get_data_batch(
                      env_->energy_id_, *selection, 128,
                      [&](std::span<const std::uint8_t> bytes,
                          std::uint64_t first) {
                        EXPECT_EQ(first, streamed.size());
                        const auto* f =
                            reinterpret_cast<const float*>(bytes.data());
                        streamed.insert(streamed.end(), f,
                                        f + bytes.size() / sizeof(float));
                        ++batches;
                      })
                  .ok());
  EXPECT_EQ(streamed.size(), selection->num_hits);
  EXPECT_EQ(batches, (selection->num_hits + 127) / 128);
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], env_->energy_[selection->positions[i]]);
  }
}

TEST_P(StrategySweep, WrongGetDataBufferSizeRejected) {
  const auto q = create(env_->energy_id_, QueryOp::kGT, 3.0);
  auto selection = service_->get_selection(q);
  ASSERT_TRUE(selection.ok());
  std::vector<float> tiny(1);
  if (selection->num_hits > 1) {
    EXPECT_EQ(service_->get_data<float>(env_->energy_id_, *selection, tiny)
                  .code(),
              StatusCode::kInvalidArgument);
  }
  std::vector<double> wrong_type(selection->num_hits);
  EXPECT_EQ(
      service_->get_data<double>(env_->energy_id_, *selection, wrong_type)
          .code(),
      StatusCode::kInvalidArgument);
}

TEST_P(StrategySweep, RepeatedQueriesBenefitFromCache) {
  const auto q = q_and(create(env_->energy_id_, QueryOp::kGT, 2.1),
                       create(env_->energy_id_, QueryOp::kLT, 2.9));
  auto first = service_->get_num_hits(q);
  ASSERT_TRUE(first.ok());
  const double cold = service_->last_stats().sim_elapsed_seconds;
  auto second = service_->get_num_hits(q);
  ASSERT_TRUE(second.ok());
  const double warm = service_->last_stats().sim_elapsed_seconds;
  EXPECT_EQ(*first, *second);
  // Index strategy reads the (uncached) index each time; the others cache
  // region data and must get faster.
  if (std::get<0>(GetParam()) != Strategy::kHistogramIndex) {
    EXPECT_LE(warm, cold);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndScales, StrategySweep,
    ::testing::Combine(::testing::Values(Strategy::kFullScan,
                                         Strategy::kHistogram,
                                         Strategy::kHistogramIndex,
                                         Strategy::kSortedHistogram),
                       ::testing::Values(1u, 3u, 8u)),
    [](const auto& info) {
      return std::string(
                 server::strategy_name(std::get<0>(info.param)) ==
                         "PDC-F"
                     ? "FullScan"
                 : server::strategy_name(std::get<0>(info.param)) == "PDC-H"
                     ? "Histogram"
                 : server::strategy_name(std::get<0>(info.param)) == "PDC-HI"
                     ? "HistogramIndex"
                     : "SortedHistogram") +
             "_" + std::to_string(std::get<1>(info.param)) + "servers";
    });

// ------------------------------------------------- strategy-specific tests

class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<QueryEnv>(
        ::testing::TempDir() + "/query_svc_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }

  std::unique_ptr<QueryService> make_service(Strategy strategy,
                                             std::uint32_t servers = 4) {
    ServiceOptions options;
    options.strategy = strategy;
    options.num_servers = servers;
    return std::make_unique<QueryService>(*env_->store_, options);
  }

  std::unique_ptr<QueryEnv> env_;
};

TEST_F(QueryServiceTest, HistogramPruningReadsFewerBytesThanFullScan) {
  const auto q = q_and(create(env_->energy_id_, QueryOp::kGT, 3.4),
                       create(env_->energy_id_, QueryOp::kLT, 3.5));
  auto full = make_service(Strategy::kFullScan);
  auto hist = make_service(Strategy::kHistogram);
  auto nf = full->get_num_hits(q);
  auto nh = hist->get_num_hits(q);
  ASSERT_TRUE(nf.ok());
  ASSERT_TRUE(nh.ok());
  EXPECT_EQ(*nf, *nh);
  EXPECT_LT(hist->last_stats().server_bytes_read,
            full->last_stats().server_bytes_read);
  EXPECT_LT(hist->last_stats().sim_elapsed_seconds,
            full->last_stats().sim_elapsed_seconds);
}

TEST_F(QueryServiceTest, IndexBeatsHistogramWhenRegionsAreLarge) {
  // The index's advantage appears once region reads dominate per-op
  // latency (the paper's 4-128 MB regime; scaled here to 64 KiB regions).
  // Build a dedicated environment with larger, smooth-valued regions.
  const std::string root = ::testing::TempDir() + "/query_hi_large";
  std::filesystem::remove_all(root);
  pfs::PfsConfig cfg;
  cfg.root_dir = root;
  auto cluster = std::move(pfs::PfsCluster::Create(cfg)).value();
  obj::ObjectStore store(*cluster);
  const ObjectId container = std::move(store.create_container("c")).value();

  Rng rng(42);
  std::vector<float> values(4u << 20);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(
        1.0 + 0.8 * std::sin(static_cast<double>(i) / 150000.0) +
        0.05 * (rng.next_double() - 0.5));
  }
  obj::ImportOptions options;
  options.region_size_bytes = 4u << 20;  // 1M floats per region
  const ObjectId id = std::move(store.import_object<float>(
                                    container, "v",
                                    std::span<const float>(values), options))
                          .value();
  ASSERT_TRUE(store.build_bitmap_index(id).ok());

  const auto q = q_and(create(id, QueryOp::kGT, 0.9),
                       create(id, QueryOp::kLT, 1.0));
  query::ServiceOptions hist_options;
  hist_options.strategy = Strategy::kHistogram;
  hist_options.num_servers = 4;
  query::ServiceOptions index_options = hist_options;
  index_options.strategy = Strategy::kHistogramIndex;
  QueryService hist(store, hist_options);
  QueryService index(store, index_options);

  auto nh = hist.get_num_hits(q);
  auto ni = index.get_num_hits(q);
  ASSERT_TRUE(nh.ok()) << nh.status().ToString();
  ASSERT_TRUE(ni.ok()) << ni.status().ToString();
  EXPECT_EQ(*nh, *ni);
  // The index reads selected compressed bins + localized candidates
  // instead of whole regions: fewer bytes AND less simulated time.
  EXPECT_LT(index.last_stats().server_bytes_read,
            hist.last_stats().server_bytes_read);
  EXPECT_LT(index.last_stats().sim_elapsed_seconds,
            hist.last_stats().sim_elapsed_seconds);
  std::filesystem::remove_all(root);
}

TEST_F(QueryServiceTest, SortedFastPathCountsWithoutLocations) {
  auto sorted = make_service(Strategy::kSortedHistogram);
  const auto q = q_and(create(env_->energy_id_, QueryOp::kGT, 2.5),
                       create(env_->energy_id_, QueryOp::kLT, 3.0));
  const auto qi = ValueInterval::from_op(QueryOp::kGT, 2.5)
                      .intersect(ValueInterval::from_op(QueryOp::kLT, 3.0));
  auto nhits = sorted->get_num_hits(q);
  ASSERT_TRUE(nhits.ok()) << nhits.status().ToString();
  EXPECT_EQ(*nhits, env_->brute_force(qi).size());
}

TEST_F(QueryServiceTest, SortedReplicaGetDataReturnsValueSortedResult) {
  auto sorted = make_service(Strategy::kSortedHistogram);
  const auto q = q_and(create(env_->energy_id_, QueryOp::kGT, 2.4),
                       create(env_->energy_id_, QueryOp::kLT, 2.7));
  auto selection = sorted->get_selection(q);
  ASSERT_TRUE(selection.ok());
  ASSERT_GT(selection->num_hits, 0u);
  ASSERT_NE(selection->replica_id, kInvalidObjectId);
  ASSERT_FALSE(selection->sorted_extents.empty());

  std::vector<float> values(selection->num_hits);
  ASSERT_TRUE(sorted
                  ->get_data<float>(env_->energy_id_, *selection, values,
                                    GetDataMode::kFromReplica)
                  .ok());
  // Values arrive ascending and are exactly the selected multiset.
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  std::vector<float> expect;
  expect.reserve(selection->num_hits);
  for (const auto pos : selection->positions) {
    expect.push_back(env_->energy_[pos]);
  }
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(values, expect);
}

TEST_F(QueryServiceTest, ReplicaModeRejectedForUnrelatedObject) {
  auto sorted = make_service(Strategy::kSortedHistogram);
  const auto q = create(env_->energy_id_, QueryOp::kGT, 3.0);
  auto selection = sorted->get_selection(q);
  ASSERT_TRUE(selection.ok());
  ASSERT_GT(selection->num_hits, 0u);
  std::vector<float> values(selection->num_hits);
  EXPECT_EQ(sorted
                ->get_data<float>(env_->x_id_, *selection, values,
                                  GetDataMode::kFromReplica)
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(QueryServiceTest, MoreServersReduceSimulatedTime) {
  const auto q = create(env_->energy_id_, QueryOp::kGT, 2.0);
  auto few = make_service(Strategy::kHistogram, 1);
  auto many = make_service(Strategy::kHistogram, 8);
  auto nf = few->get_num_hits(q);
  auto nm = many->get_num_hits(q);
  ASSERT_TRUE(nf.ok());
  ASSERT_TRUE(nm.ok());
  EXPECT_EQ(*nf, *nm);
  EXPECT_GT(few->last_stats().sim_elapsed_seconds,
            many->last_stats().sim_elapsed_seconds);
}

TEST_F(QueryServiceTest, SelectivityOrderingPicksDriverWithFewerReads) {
  // Energy>3.3 is far more selective than x<300; ordering ON should read
  // fewer bytes than ordering OFF with the unselective condition first.
  const auto q = q_and(create(env_->x_id_, QueryOp::kLT, 300.0),
                       create(env_->energy_id_, QueryOp::kGT, 3.3));
  ServiceOptions ordered_options;
  ordered_options.strategy = Strategy::kHistogram;
  ordered_options.num_servers = 4;
  ServiceOptions naive_options = ordered_options;
  naive_options.order_by_selectivity = false;

  QueryService ordered(*env_->store_, ordered_options);
  QueryService naive(*env_->store_, naive_options);
  auto no = ordered.get_num_hits(q);
  auto nn = naive.get_num_hits(q);
  ASSERT_TRUE(no.ok());
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(*no, *nn);
  // Note: the naive plan keeps user order (x first), which is the DNF map
  // order here (object id order); either way both must agree on results.
  EXPECT_LE(ordered.last_stats().sim_elapsed_seconds,
            nn.ok() ? naive.last_stats().sim_elapsed_seconds * 1.5 : 0.0);
}

TEST_F(QueryServiceTest, GetHistogramIsFreeMetadata) {
  auto service = make_service(Strategy::kHistogram);
  auto histogram = service->get_histogram(env_->energy_id_);
  ASSERT_TRUE(histogram.ok());
  EXPECT_EQ(histogram->total_count(), QueryEnv::kN);
  EXPECT_FALSE(service->get_histogram(99999).ok());
}

TEST_F(QueryServiceTest, NullQueryRejected) {
  auto service = make_service(Strategy::kHistogram);
  EXPECT_EQ(service->get_num_hits(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

// Randomized property sweep: arbitrary (non-precision-aligned) query
// trees must produce identical results under every strategy and match
// brute force — this drives the candidate-check paths that the paper's
// aligned constants bypass.
class RandomQuerySweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomQuerySweep, AllStrategiesAgreeWithBruteForce) {
  QueryEnv env(::testing::TempDir() + "/query_rand_" +
               std::to_string(GetParam()));
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

  std::vector<std::unique_ptr<QueryService>> services;
  for (const Strategy strategy :
       {Strategy::kFullScan, Strategy::kHistogram, Strategy::kHistogramIndex,
        Strategy::kSortedHistogram}) {
    ServiceOptions options;
    options.strategy = strategy;
    options.num_servers = 4;
    services.push_back(std::make_unique<QueryService>(*env.store_, options));
  }

  for (int trial = 0; trial < 6; ++trial) {
    // Random energy interval with ragged (unaligned) bounds, optionally
    // conjoined with a random x condition and/or a disjunct.
    const double lo = rng.uniform(0.0, 4.0);
    const double hi = lo + rng.uniform(0.001, 1.5);
    QueryPtr q = q_and(
        create(env.energy_id_, rng.next_double() < 0.5 ? QueryOp::kGT
                                                       : QueryOp::kGTE,
               lo),
        create(env.energy_id_, rng.next_double() < 0.5 ? QueryOp::kLT
                                                       : QueryOp::kLTE,
               hi));
    const bool with_x = rng.next_double() < 0.5;
    const double x_hi = rng.uniform(10.0, 320.0);
    if (with_x) q = q_and(q, create(env.x_id_, QueryOp::kLT, x_hi));
    const bool with_or = rng.next_double() < 0.3;
    const double or_lo = rng.uniform(3.0, 5.0);
    if (with_or) q = q_or(q, create(env.energy_id_, QueryOp::kGT, or_lo));

    // Brute force.  GT-vs-GTE (and LT-vs-LTE) differ only when a float
    // element equals the random double bound exactly, which has
    // probability zero for this generator, so strict comparisons suffice.
    std::vector<std::uint64_t> expect;
    for (std::uint64_t i = 0; i < QueryEnv::kN; ++i) {
      const double e = env.energy_[i];
      const bool base =
          e > lo && e < hi && (!with_x || env.x_[i] < x_hi);
      const bool alt = with_or && e > or_lo;
      if (base || alt) expect.push_back(i);
    }

    std::vector<std::uint64_t>* reference = nullptr;
    std::vector<std::uint64_t> results[4];
    for (std::size_t s = 0; s < services.size(); ++s) {
      auto selection = services[s]->get_selection(q);
      ASSERT_TRUE(selection.ok())
          << "trial " << trial << " strategy " << s << ": "
          << selection.status().ToString();
      results[s] = std::move(selection->positions);
      if (reference == nullptr) {
        reference = &results[s];
        EXPECT_EQ(*reference, expect) << "trial " << trial;
      } else {
        EXPECT_EQ(results[s], *reference)
            << "trial " << trial << " strategy " << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQuerySweep, ::testing::Range(1, 6));

TEST_F(QueryServiceTest, StrategyFromEnvironment) {
  setenv("PDC_QUERY_STRATEGY", "index", 1);
  EXPECT_EQ(ServiceOptions::from_env().strategy, Strategy::kHistogramIndex);
  setenv("PDC_QUERY_STRATEGY", "sorted", 1);
  EXPECT_EQ(ServiceOptions::from_env().strategy, Strategy::kSortedHistogram);
  setenv("PDC_QUERY_STRATEGY", "fullscan", 1);
  EXPECT_EQ(ServiceOptions::from_env().strategy, Strategy::kFullScan);
  setenv("PDC_QUERY_STRATEGY", "nonsense", 1);
  EXPECT_EQ(ServiceOptions::from_env().strategy, Strategy::kHistogram);
  unsetenv("PDC_QUERY_STRATEGY");
}

}  // namespace
}  // namespace pdc::query
