// RegionPipeline battery: classify_region unit laws, PDC-A determinism,
// threshold-knob crossover at the service level, and traced-adaptive span
// invariants (validate_trace + trace-vs-OpStats reconciliation).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "histogram/histogram.h"
#include "obj/object_store.h"
#include "obs/trace.h"
#include "pfs/pfs.h"
#include "query/query.h"
#include "query/service.h"
#include "server/region_pipeline.h"
#include "testing/invariants.h"

namespace pdc {
namespace {

using query::QueryService;
using query::ServiceOptions;
using server::AdaptiveKnobs;
using server::RegionChoice;
using server::Strategy;

// ------------------------------------------------------- classify_region

hist::MergeableHistogram constant_hist(float value, std::size_t n = 1024) {
  const std::vector<float> data(n, value);
  return hist::MergeableHistogram::Build<float>(data);
}

hist::MergeableHistogram uniform_hist(double lo, double hi,
                                      std::size_t n = 4096) {
  Rng rng(42);
  std::vector<float> data(n);
  for (float& v : data) v = static_cast<float>(rng.uniform(lo, hi));
  return hist::MergeableHistogram::Build<float>(data);
}

TEST(ClassifyRegion, NonOverlappingRegionIsPruned) {
  const auto h = constant_hist(90.0f);
  const ValueInterval q{10.0, 40.0, /*lo_inclusive=*/true, /*hi_inclusive=*/false};
  EXPECT_EQ(server::classify_region(h, q, {0.25, true}), RegionChoice::kPruned);
  EXPECT_EQ(server::classify_region(h, q, {0.25, false}), RegionChoice::kPruned);
}

TEST(ClassifyRegion, CoveredRegionIsAllHitRegardlessOfIndex) {
  const auto h = constant_hist(20.0f);
  const ValueInterval q{10.0, 40.0, true, false};
  EXPECT_EQ(server::classify_region(h, q, {0.25, true}), RegionChoice::kAllHit);
  EXPECT_EQ(server::classify_region(h, q, {0.25, false}), RegionChoice::kAllHit);
}

TEST(ClassifyRegion, NoIndexAlwaysScans) {
  const auto h = uniform_hist(0.0, 100.0);
  const ValueInterval q{10.0, 40.0, true, false};
  EXPECT_EQ(server::classify_region(h, q, {1e-9, false}), RegionChoice::kScan);
  EXPECT_EQ(server::classify_region(h, q, {0.999, false}), RegionChoice::kScan);
}

TEST(ClassifyRegion, ThresholdSplitsScanFromIndex) {
  // Uniform over [0,100): the query [10,40) matches ~30% of the region.
  const auto h = uniform_hist(0.0, 100.0);
  const ValueInterval q{10.0, 40.0, true, false};
  const double sel =
      h.estimate(q).selectivity_mid(h.total_count());
  ASSERT_GT(sel, 0.1);
  ASSERT_LT(sel, 0.9);
  // Threshold below the selectivity: dense enough to scan.
  EXPECT_EQ(server::classify_region(h, q, {sel - 0.05, true}), RegionChoice::kScan);
  // Threshold above the selectivity: sparse enough to probe the index.
  EXPECT_EQ(server::classify_region(h, q, {sel + 0.05, true}), RegionChoice::kIndex);
  // Boundary: >= semantics, same as the dense-read crossover.
  EXPECT_EQ(server::classify_region(h, q, {sel, true}), RegionChoice::kScan);
}

TEST(ClassifyRegion, ChoiceCountsTallyIgnoresPruned) {
  server::RegionChoiceCounts counts;
  counts.tally(RegionChoice::kPruned);
  counts.tally(RegionChoice::kScan);
  counts.tally(RegionChoice::kScan);
  counts.tally(RegionChoice::kIndex);
  counts.tally(RegionChoice::kAllHit);
  EXPECT_EQ(counts.scanned, 2u);
  EXPECT_EQ(counts.indexed, 1u);
  EXPECT_EQ(counts.allhit, 1u);
}

// -------------------------------------------------------- service fixture

/// Dataset engineered for mixed per-region choices: interleaves uniform
/// "noise" regions (partial overlap, mid selectivity), constant in-range
/// regions (all-hit) and constant out-of-range regions (pruned).
class PipelineEnv {
 public:
  static constexpr std::uint64_t kRegionElems = 1024;  // 4096-byte regions
  static constexpr std::uint64_t kRegions = 18;
  static constexpr std::uint64_t kN = kRegionElems * kRegions;

  explicit PipelineEnv(const std::string& root) : root_(root) {
    std::filesystem::remove_all(root_);
    pfs::PfsConfig cfg;
    cfg.root_dir = root_;
    cluster_ = std::move(pfs::PfsCluster::Create(cfg)).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);

    Rng rng(0x9195);
    values_.resize(kN);
    for (std::uint64_t r = 0; r < kRegions; ++r) {
      for (std::uint64_t i = 0; i < kRegionElems; ++i) {
        const std::uint64_t pos = r * kRegionElems + i;
        switch (r % 3) {
          case 0:  // mixed region: ~30% of values inside [10, 40)
            values_[pos] = static_cast<float>(rng.uniform(0.0, 100.0));
            break;
          case 1:  // all-hit region: every value inside the interval
            values_[pos] = 25.0f;
            break;
          default:  // prunable region: nothing overlaps
            values_[pos] = 90.0f;
            break;
        }
      }
    }
    obj::ImportOptions options;
    options.region_size_bytes = kRegionElems * sizeof(float);
    const ObjectId container =
        std::move(store_->create_container("pipeline")).value();
    object_ = std::move(store_->import_object<float>(
                            container, "values",
                            std::span<const float>(values_), options))
                  .value();
    if (!store_->build_bitmap_index(object_).ok()) std::abort();
  }

  ~PipelineEnv() { std::filesystem::remove_all(root_); }

  [[nodiscard]] query::QueryPtr range_query() const {
    return query::q_and(query::create(object_, QueryOp::kGTE, 10.0),
                        query::create(object_, QueryOp::kLT, 40.0));
  }

  [[nodiscard]] std::vector<std::uint64_t> oracle_positions() const {
    std::vector<std::uint64_t> hits;
    for (std::uint64_t i = 0; i < kN; ++i) {
      if (values_[i] >= 10.0f && values_[i] < 40.0f) hits.push_back(i);
    }
    return hits;
  }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  std::vector<float> values_;
  ObjectId object_ = kInvalidObjectId;
};

std::unique_ptr<PipelineEnv> make_env() {
  return std::make_unique<PipelineEnv>(
      ::testing::TempDir() + "/pipeline_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name());
}

ServiceOptions adaptive_options(std::uint32_t eval_threads = 4) {
  ServiceOptions options;
  options.strategy = Strategy::kAdaptive;
  options.num_servers = 3;
  options.eval_threads = eval_threads;
  return options;
}

// ------------------------------------------------------------ adaptive

TEST(AdaptivePipeline, MatchesOracleAndReportsMixedChoices) {
  const auto env = make_env();
  QueryService service(*env->store_, adaptive_options());
  const auto selection = service.get_selection(env->range_query());
  ASSERT_TRUE(selection.ok()) << selection.status().ToString();
  EXPECT_EQ(selection->positions, env->oracle_positions());

  const query::OpStats stats = service.last_stats();
  // The dataset interleaves all three shapes; with the default 0.25
  // threshold the ~30%-selective noise regions scan, and every third
  // region is a provable all-hit.  Pruned regions appear in no counter.
  EXPECT_GT(stats.regions_scanned, 0u);
  EXPECT_GT(stats.regions_allhit, 0u);
  EXPECT_LE(stats.regions_scanned + stats.regions_indexed +
                stats.regions_allhit,
            PipelineEnv::kRegions);
}

TEST(AdaptivePipeline, FixedStrategiesReportNoChoices) {
  const auto env = make_env();
  for (const Strategy s : {Strategy::kFullScan, Strategy::kHistogram,
                           Strategy::kHistogramIndex}) {
    ServiceOptions options = adaptive_options();
    options.strategy = s;
    QueryService service(*env->store_, options);
    ASSERT_TRUE(service.get_num_hits(env->range_query()).ok());
    const query::OpStats stats = service.last_stats();
    EXPECT_EQ(stats.regions_scanned, 0u);
    EXPECT_EQ(stats.regions_indexed, 0u);
    EXPECT_EQ(stats.regions_allhit, 0u);
  }
}

TEST(AdaptivePipeline, ChoicesAreDeterministicAcrossRunsAndPoolWidths) {
  const auto env = make_env();
  std::vector<std::uint64_t> first_positions;
  std::uint64_t scanned = 0, indexed = 0, allhit = 0;
  bool first = true;
  for (const std::uint32_t threads : {1u, 4u, 8u}) {
    QueryService service(*env->store_, adaptive_options(threads));
    for (int run = 0; run < 2; ++run) {
      const auto selection = service.get_selection(env->range_query());
      ASSERT_TRUE(selection.ok()) << selection.status().ToString();
      const query::OpStats stats = service.last_stats();
      if (first) {
        first_positions = selection->positions;
        scanned = stats.regions_scanned;
        indexed = stats.regions_indexed;
        allhit = stats.regions_allhit;
        first = false;
        continue;
      }
      EXPECT_EQ(selection->positions, first_positions)
          << "threads=" << threads << " run=" << run;
      // Pool width must not change the plan, and within one width the warm
      // cache must not change the choice vector (only the I/O charged).
      EXPECT_EQ(stats.regions_scanned, scanned);
      EXPECT_EQ(stats.regions_indexed, indexed);
      EXPECT_EQ(stats.regions_allhit, allhit);
    }
  }
}

TEST(AdaptivePipeline, ThresholdKnobFlipsChoices) {
  const auto env = make_env();
  // Threshold below any mixed-region selectivity: everything scans.
  ServiceOptions scan_side = adaptive_options();
  scan_side.dense_read_threshold = 1e-9;
  QueryService scan_service(*env->store_, scan_side);
  const auto scan_sel = scan_service.get_selection(env->range_query());
  ASSERT_TRUE(scan_sel.ok()) << scan_sel.status().ToString();
  const query::OpStats scan_stats = scan_service.last_stats();

  // Threshold above: every non-all-hit survivor probes the index.
  ServiceOptions index_side = adaptive_options();
  index_side.dense_read_threshold = 0.999;
  QueryService index_service(*env->store_, index_side);
  const auto index_sel = index_service.get_selection(env->range_query());
  ASSERT_TRUE(index_sel.ok()) << index_sel.status().ToString();
  const query::OpStats index_stats = index_service.last_stats();

  // Same answer, opposite access paths.
  EXPECT_EQ(scan_sel->positions, index_sel->positions);
  EXPECT_GT(scan_stats.regions_scanned, 0u);
  EXPECT_EQ(scan_stats.regions_indexed, 0u);
  EXPECT_GT(index_stats.regions_indexed, 0u);
  EXPECT_EQ(index_stats.regions_scanned, 0u);
  EXPECT_EQ(scan_stats.regions_allhit, index_stats.regions_allhit);
}

TEST(AdaptivePipeline, TracedRunValidatesAndReconcilesStats) {
  const auto env = make_env();
  QueryService service(*env->store_, adaptive_options());
  ASSERT_TRUE(service.get_num_hits(env->range_query(), {.trace = true}).ok());
  const std::shared_ptr<const obs::Trace> trace = service.last_trace();
  ASSERT_NE(trace, nullptr);
  const Status valid = obs::validate_trace(*trace);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  const Status stats_ok =
      testing::check_trace_stats(*trace, service.last_stats());
  EXPECT_TRUE(stats_ok.ok()) << stats_ok.ToString();

  // One adaptive-plan phase per server, annotated with the choice split
  // that the response counters also report.
  std::size_t plan_spans = 0;
  double span_scanned = 0.0, span_indexed = 0.0, span_allhit = 0.0;
  for (const obs::Span& span : trace->spans) {
    if (span.name != "phase.adaptive_plan") continue;
    ++plan_spans;
    span_scanned += span.arg("scanned");
    span_indexed += span.arg("indexed");
    span_allhit += span.arg("allhit");
  }
  const query::OpStats stats = service.last_stats();
  EXPECT_EQ(plan_spans, 3u);
  EXPECT_EQ(span_scanned, static_cast<double>(stats.regions_scanned));
  EXPECT_EQ(span_indexed, static_cast<double>(stats.regions_indexed));
  EXPECT_EQ(span_allhit, static_cast<double>(stats.regions_allhit));
}

}  // namespace
}  // namespace pdc
