// QueryCheck: property-based differential testing across all query paths,
// plus pinned regression tests for the bugs the harness originally found.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <vector>

#include "bitmap/binned_index.h"
#include "common/interval.h"
#include "histogram/histogram.h"
#include "kernels/kernels.h"
#include "obj/object_store.h"
#include "pfs/pfs.h"
#include "query/planner.h"
#include "query/query.h"
#include "sortrep/sorted_replica.h"
#include "testing/invariants.h"
#include "testing/joincheck.h"
#include "testing/querycheck.h"

namespace pdc::testing {
namespace {

std::string test_temp_root() {
  return ::testing::TempDir() + "/querycheck_" +
         ::testing::UnitTest::GetInstance()->current_test_info()->name();
}

RunOptions fast_options() {
  RunOptions options = RunOptions::all_paths();
  options.temp_root = test_temp_root();
  return options;
}

// ------------------------------------------------------------------ smoke

// The headline property: every strategy, the degraded mode and the data
// fetch paths agree bit-identically with the element-wise oracle on
// generated datasets and queries.  PDC_QC_CASES / PDC_QC_SEED override the
// defaults (that is how the extended suite and failure replays run).
TEST(QueryCheck, AllPathsAgreeWithOracle) {
  RunOptions options = fast_options();
  const Status status = run_querycheck(/*base_seed=*/1, /*num_cases=*/20,
                                       options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// Pinned from the kernel-backend sweep added with the SIMD layer.  The
// query bound 1 + 1e-12 is not representable in float — every stored
// float is either <= 1.0 or >= nextafter(1,2) — and the sorted strategy's
// binary search cast the double bound to float with round-to-nearest:
// `key < 1.0 + 1e-12` searched for 1.0f and dropped the elements equal to
// 1.0 (PDC-SH returned 2 of the oracle's 5 hits, on BOTH backends — a
// shared-path bug, not SIMD divergence).  sorted_range now rounds the
// bound to the element domain directionally (smallest/largest
// representable key on the correct side).  The scan-kernel half of the
// same property lives in kernels_test (FloatBoundsNotRepresentableInFloat);
// this pins it end-to-end across the full strategy matrix, explicitly on
// each backend so a failure names the backend directly.
TEST(QueryCheckRegression, DoubleDomainBoundsOnEveryBackend) {
  Case c;
  c.seed = 3;
  c.dataset.names = {"key"};
  c.dataset.region_size_bytes = 512;
  c.dataset.columns = {{0.5f, 1.0f, 1.0f, 2.0f, 3.0f, 1.0f, 0.0f, 4.0f}};
  QuerySpec q;
  q.terms.push_back(TermSpec{{LeafSpec{0, QueryOp::kGT, 1.0 + 1e-12}}});
  c.queries.push_back(q);
  QuerySpec q2;  // and the mirrored upper bound
  q2.terms.push_back(TermSpec{{LeafSpec{0, QueryOp::kLT, 1.0 + 1e-12}}});
  c.queries.push_back(q2);

  for (const kernels::Backend backend :
       {kernels::Backend::kScalar, kernels::Backend::kAvx2}) {
    const kernels::ScopedBackend scoped(backend);
    RunOptions options = fast_options();
    auto result = run_case(c, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->has_value())
        << kernels::backend_name(kernels::active_backend()) << ": "
        << (*result)->path << ": " << (*result)->detail;
  }
}

// -------------------------------------------------------------- write mode

// The write-path headline property: with mutations interleaved between
// queries — appends and overwrites through the full kTransferWrite RPC
// path, with incremental maintenance of histograms, the delta-WAH index
// sidecar and the sorted-replica delta log — every strategy plus the
// degraded mode must stay bit-identical to the element-wise oracle after
// EVERY mutation prefix.  Maintenance thresholds (compaction, replica
// rebuild) are seed-derived so the battery cycles disabled / aggressive /
// threshold-crossing coverage; PDC_QC_CASES / PDC_QC_SEED replay as in
// the read-only suite, PDC_QC_COMPACT / PDC_QC_REBUILD pin the knobs.
TEST(QueryCheckWrites, AllPathsAgreeAfterEveryPrefix) {
  RunOptions options = fast_options();
  options.write_interleaved = true;
  const Status status = run_querycheck(/*base_seed=*/1001, /*num_cases=*/10,
                                       options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// Pinned end-to-end: an overwrite whose replacement values fall outside
// the region's indexed range cannot be absorbed into the delta-WAH
// sidecar; the region must be marked stale and served by scan fallback —
// on every strategy — until a compaction rebuild (disabled here) folds it.
TEST(QueryCheckWrites, OutOfRangeOverwriteFallsBackToScan) {
  Case c;
  c.seed = 7;
  c.dataset.names = {"key"};
  c.dataset.region_size_bytes = 64;  // 16 floats per region, 4 regions
  std::vector<float> key;
  for (int i = 0; i < 64; ++i) {
    key.push_back(static_cast<float>(i) / 64.0f);
  }
  c.dataset.columns.push_back(std::move(key));

  OpSpec before;  // baseline prefix: fresh indexes answer this one
  before.query.terms.push_back(
      TermSpec{{LeafSpec{0, QueryOp::kGT, 0.5}}});
  c.ops.push_back(before);

  OpSpec write;  // 9.5 / -3.0 lie outside [0, ~1): delta-WAH must reject
  write.is_write = true;
  write.write.column = 0;
  write.write.extent = {5, 2};
  write.write.values = {{9.5f, -3.0f}};
  c.ops.push_back(write);

  OpSpec after;  // the new out-of-range value must be found by the scan
  after.query.terms.push_back(
      TermSpec{{LeafSpec{0, QueryOp::kGT, 0.5}}});
  c.ops.push_back(after);

  RunOptions options = fast_options();
  options.compact_threshold = 0;          // keep the region stale
  options.replica_rebuild_threshold = 0;  // keep the delta log pending
  auto result = run_case(c, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->has_value())
      << (*result)->path << ": " << (*result)->detail;
}

// Write-mode harness acceptance: a silently corrupted base index must
// still be caught when reads combine it with the delta sidecar, and the
// shrinker must minimize over the COMBINED op sequence (the irrelevant
// write op gets dropped, the dataset still halves).
TEST(QueryCheckWritesSanity, CatchesCorruptionAndShrinksOpSequence) {
  Case c;
  c.seed = 0;
  c.dataset.names = {"key"};
  c.dataset.region_size_bytes = 128;  // 32 floats per region, 8 regions
  std::vector<float> key;
  for (int i = 0; i < 256; ++i) {
    key.push_back(static_cast<float>(i + 1) / 512.0f);
  }
  c.dataset.columns.push_back(std::move(key));

  OpSpec write;  // interior values: absorbed into region 1's delta sidecar
  write.is_write = true;
  write.write.column = 0;
  write.write.extent = {40, 4};
  write.write.values = {{0.25f, 0.26f, 0.27f, 0.28f}};
  c.ops.push_back(write);
  OpSpec probe;  // region 0 stays partial: the corrupted bins get probed
  probe.query.terms.push_back(TermSpec{{LeafSpec{0, QueryOp::kGT, 0.015},
                                        LeafSpec{0, QueryOp::kLT, 0.35}}});
  c.ops.push_back(probe);

  RunOptions options;
  options.temp_root = test_temp_root();
  options.strategies = {server::Strategy::kFullScan,
                        server::Strategy::kHistogramIndex};
  options.degraded = false;
  options.compact_threshold = 0;  // a compaction rebuild would heal it
  options.replica_rebuild_threshold = 0;
  options.post_build = [](obj::ObjectStore& store,
                          const std::vector<ObjectId>& ids) {
    return corrupt_region_index(store, ids.front(), 0);
  };

  // Control: without the corruption the whole op sequence passes.
  {
    RunOptions clean = options;
    clean.post_build = nullptr;
    auto result = run_case(c, clean);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->has_value())
        << (*result)->path << ": " << (*result)->detail;
  }

  auto result = run_case(c, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->has_value())
      << "corrupted base index was not detected through the delta combine";
  EXPECT_EQ((*result)->path, "PDC-HI");

  const ShrinkResult shrunk = shrink(c, [&options](const Case& candidate) {
    auto r = run_case(candidate, options);
    return r.ok() && r->has_value();
  });
  EXPECT_GT(shrunk.accepted_steps, 0u);
  EXPECT_LE(shrunk.minimal.ops.size(), 1u)
      << "irrelevant write op not dropped: " << describe_case(shrunk.minimal);
  EXPECT_LT(shrunk.minimal.dataset.size(), 256u);
  auto replay = run_case(shrunk.minimal, options);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->has_value());
}

// The oracle model replay is the write-mode ground truth; pin its
// semantics: appends extend every column, overwrites replace in place,
// and ill-fitting writes are rejected without touching the model.
TEST(QueryCheckWrites, ModelReplaySemantics) {
  Dataset d;
  d.names = {"key", "aux"};
  d.columns = {{1.0f, 2.0f}, {3.0f, 4.0f}};

  WriteSpec append;
  append.is_append = true;
  append.values = {{5.0f}, {6.0f}};
  EXPECT_TRUE(apply_write_model(d, append));
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.columns[0][2], 5.0f);
  EXPECT_EQ(d.columns[1][2], 6.0f);

  WriteSpec over;
  over.column = 1;
  over.extent = {1, 2};
  over.values = {{7.0f, 8.0f}};
  EXPECT_TRUE(apply_write_model(d, over));
  EXPECT_EQ(d.columns[1][1], 7.0f);
  EXPECT_EQ(d.columns[1][2], 8.0f);
  EXPECT_EQ(d.columns[0][1], 2.0f);  // other column untouched

  const Dataset snapshot = d;
  WriteSpec bad;  // extent past the end: rejected, model untouched
  bad.column = 0;
  bad.extent = {2, 2};
  bad.values = {{9.0f, 9.0f}};
  EXPECT_FALSE(apply_write_model(d, bad));
  WriteSpec ragged;  // column-count mismatch: rejected
  ragged.is_append = true;
  ragged.values = {{1.0f}};
  EXPECT_FALSE(apply_write_model(d, ragged));
  EXPECT_TRUE(d == snapshot);
}

// ------------------------------------------------------------- invariants

TEST(QueryCheckInvariants, WahAlgebraAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const std::uint64_t num_bits = 1 + (seed * 977) % 5000;
    const Status status = check_wah_random_algebra(seed, num_bits);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
  }
  // Sizes that land exactly on word boundaries.
  for (const std::uint64_t num_bits : {31ull, 62ull, 31ull * 64, 1ull}) {
    const Status status = check_wah_random_algebra(99, num_bits);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
}

TEST(QueryCheckInvariants, HistogramMergeLawsAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Status status = check_histogram_merge_laws(seed);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
  }
}

// --------------------------------------------------- sanity: finds planted bugs

// Acceptance check for the harness itself: silently corrupt one region's
// bitmap index, and QueryCheck must (a) catch the divergence and (b)
// shrink the failing case to at most two regions.
TEST(QueryCheckSanity, CatchesInjectedIndexCorruptionAndShrinks) {
  Case c;
  c.seed = 0;
  c.dataset.names = {"key"};
  c.dataset.region_size_bytes = 128;  // 32 floats per region, 8 regions
  std::vector<float> key;
  for (int i = 0; i < 256; ++i) {
    key.push_back(static_cast<float>(i + 1) / 512.0f);
  }
  c.dataset.columns.push_back(std::move(key));
  // Leaves region 0 PARTIAL (its min 0.002 < 0.015), so the index path
  // must actually probe the corrupted bins instead of taking the
  // histogram-covers fast path.
  QuerySpec q;
  q.terms.push_back(
      TermSpec{{LeafSpec{0, QueryOp::kGT, 0.015},
                LeafSpec{0, QueryOp::kLT, 0.35}}});
  c.queries.push_back(q);

  RunOptions options;
  options.temp_root = test_temp_root();
  options.strategies = {server::Strategy::kFullScan,
                        server::Strategy::kHistogramIndex};
  options.degraded = false;
  options.check_invariants = false;
  options.post_build = [](obj::ObjectStore& store,
                          const std::vector<ObjectId>& ids) {
    return corrupt_region_index(store, ids.front(), 0);
  };

  // Control: without corruption the case passes.
  {
    RunOptions clean = options;
    clean.post_build = nullptr;
    auto result = run_case(c, clean);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->has_value())
        << (*result)->path << ": " << (*result)->detail;
  }

  auto result = run_case(c, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->has_value())
      << "corrupted index was not detected as a mismatch";
  EXPECT_EQ((*result)->path, "PDC-HI");

  const ShrinkResult shrunk = shrink(c, [&options](const Case& candidate) {
    auto r = run_case(candidate, options);
    return r.ok() && r->has_value();
  });
  EXPECT_GT(shrunk.accepted_steps, 0u);
  const std::uint64_t per_region =
      std::max<std::uint64_t>(1, shrunk.minimal.dataset.region_size_bytes / 4);
  const std::uint64_t regions =
      (shrunk.minimal.dataset.size() + per_region - 1) / per_region;
  EXPECT_LE(regions, 2u) << describe_case(shrunk.minimal);
  EXPECT_LT(shrunk.minimal.dataset.size(), 256u);
  // The minimal case still reproduces.
  auto replay = run_case(shrunk.minimal, options);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->has_value());
}

// ------------------------------------- pinned regressions (harness finds)

// NaN must satisfy no range condition on any path.  ValueInterval::contains
// previously returned true for NaN on one-sided intervals because the
// negated comparisons (v < lo || v > hi) are all false for NaN.
TEST(QueryCheckRegression, NanSatisfiesNoInterval) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const QueryOp op : {QueryOp::kGT, QueryOp::kGTE, QueryOp::kLT,
                           QueryOp::kLTE, QueryOp::kEQ}) {
    EXPECT_FALSE(ValueInterval::from_op(op, 2.0).contains(nan))
        << query_op_name(op);
  }
  EXPECT_FALSE(ValueInterval{}.contains(nan));  // whole-line interval
}

// The binned index treats open lower bounds that align with a bin edge as
// "bin fully covered" (value-at-edge is measure zero for continuous data).
// That is unsound when an indexed value sits EXACTLY on the edge: for
// `key > 2.5` with 2.5 stored, the at-edge elements were reported as
// definite hits.  Probe soundness must hold regardless:
//   definite ⊆ truth ⊆ definite ∪ candidates.
TEST(QueryCheckRegression, ProbeSoundAtExactBinEdges) {
  std::vector<float> data;
  for (int rep = 0; rep < 8; ++rep) {
    for (int k = 20; k <= 36; ++k) {
      data.push_back(static_cast<float>(k) / 10.0f);  // 2.0, 2.1, ..., 3.6
    }
  }
  const bitmap::BinnedBitmapIndex index =
      bitmap::BinnedBitmapIndex::Build<float>(data);

  for (const double edge : {2.5, 3.0, 2.1}) {
    for (const QueryOp op : {QueryOp::kGT, QueryOp::kGTE, QueryOp::kLT,
                             QueryOp::kLTE, QueryOp::kEQ}) {
      const ValueInterval interval = ValueInterval::from_op(op, edge);
      const bitmap::IndexProbe probe = index.probe(interval);
      std::vector<bool> is_definite(data.size()), is_candidate(data.size());
      for (const std::uint64_t p : probe.definite) is_definite[p] = true;
      for (const std::uint64_t p : probe.candidates) is_candidate[p] = true;
      for (std::size_t i = 0; i < data.size(); ++i) {
        const bool truth = interval.contains(static_cast<double>(data[i]));
        if (is_definite[i]) {
          EXPECT_TRUE(truth) << "false definite hit: " << data[i] << " "
                             << query_op_name(op) << " " << edge;
        }
        if (truth) {
          EXPECT_TRUE(is_definite[i] || is_candidate[i])
              << "missed hit: " << data[i] << " " << query_op_name(op) << " "
              << edge;
        }
      }
    }
  }
}

// Histogram construction previously hit UB on NaN (clamp of NaN then a
// NaN->size_t cast) and could anchor an infinite bin lattice on ±inf.
TEST(QueryCheckRegression, HistogramHandlesNanAndInf) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> data{1.0f, nan, 2.0f, inf, 3.0f, -inf, 4.0f, nan};
  const auto h = hist::MergeableHistogram::Build<float>(data);
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.total_count(), data.size());
  EXPECT_EQ(h.nan_count(), 2u);

  // Estimates must stay sound in the presence of the specials.
  const ValueInterval all = ValueInterval{};  // whole line
  const auto est = h.estimate(all);
  EXPECT_LE(est.lower, 6u);   // 6 non-NaN elements actually match
  EXPECT_GE(est.upper, 6u);
  // covers() must refuse the all-hits shortcut: the NaN elements match
  // no interval, so "every element matches" is false.
  EXPECT_FALSE(h.covers(all));

  // All-NaN input must not crash and must never claim covers().
  std::vector<float> only_nan{nan, nan, nan};
  const auto hn = hist::MergeableHistogram::Build<float>(only_nan);
  EXPECT_EQ(hn.nan_count(), 3u);
  EXPECT_FALSE(hn.covers(all));
  EXPECT_EQ(hn.estimate(all).upper, 0u);
}

// The bitmap index previously binned NaN into the last bin (turning it
// into a false definite hit for wide queries) and fed non-finite values
// into the edge sampler.
TEST(QueryCheckRegression, IndexNeverMatchesNan) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> data{1.0f, 2.0f, nan, 3.0f, nan, 4.0f};
  const auto index = bitmap::BinnedBitmapIndex::Build<float>(data);
  const ValueInterval wide = ValueInterval{};  // matches every real value
  const auto probe = index.probe(wide);
  for (const std::uint64_t p : probe.definite) {
    EXPECT_FALSE(std::isnan(data[p])) << "NaN reported as definite hit";
  }
  for (const std::uint64_t p : probe.candidates) {
    EXPECT_FALSE(std::isnan(data[p])) << "NaN reported as candidate";
  }
}

class StoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/querycheck_store_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    pfs::PfsConfig config;
    config.root_dir = root_;
    auto cluster = pfs::PfsCluster::Create(config);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
    store_ = std::make_unique<obj::ObjectStore>(*cluster_);
    auto container = store_->create_container("c");
    ASSERT_TRUE(container.ok());
    container_ = *container;
  }

  void TearDown() override {
    store_.reset();
    cluster_.reset();
    std::filesystem::remove_all(root_);
  }

  std::string root_;
  std::unique_ptr<pfs::PfsCluster> cluster_;
  std::unique_ptr<obj::ObjectStore> store_;
  ObjectId container_ = kInvalidObjectId;
};

// Sorting NaN with operator< is UB (and the replica's binary search would
// be meaningless), so replica builds must reject NaN sources outright.
TEST_F(StoreFixture, SortedReplicaRejectsNan) {
  std::vector<float> data{3.0f, std::numeric_limits<float>::quiet_NaN(),
                          1.0f};
  auto id = store_->import_object<float>(container_, "v", data, {});
  ASSERT_TRUE(id.ok());
  const auto report = sortrep::build_sorted_replica(*store_, *id);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// A NaN query constant compares false against everything in a scan but
// breaks histogram pruning and replica binary search in path-dependent
// ways; the planner now rejects it up front.
TEST_F(StoreFixture, PlannerRejectsNanConstant) {
  std::vector<float> data{1.0f, 2.0f, 3.0f};
  auto id = store_->import_object<float>(container_, "v", data, {});
  ASSERT_TRUE(id.ok());
  const query::QueryPtr q = query::create(
      *id, QueryOp::kGT, std::numeric_limits<double>::quiet_NaN());
  const auto plan = query::plan_query(*q, *store_, {});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

// Importing an empty object is rejected cleanly (the harness relies on
// this contract instead of generating empty datasets).
TEST_F(StoreFixture, EmptyImportRejected) {
  const std::vector<float> empty;
  const auto id = store_->import_object<float>(container_, "e", empty, {});
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
}

// Pinned from PDC_QC_SEED=16 (found by the 20-case smoke run): under the
// sorted strategy, a multi-term OR whose first term was answered by the
// extents-only fast path lost that term's hits entirely — eval() merges
// ORs on positions and discards extents, but the fast path had never
// materialized positions.  Minimal shrunk case: one element, query
// `(key > lo) OR (b > hi)` where only the sorted-driver term matches.
TEST(QueryCheckRegression, SortedOrTermNotDropped) {
  Case c;
  c.seed = 16;
  c.dataset.names = {"key", "b"};
  c.dataset.region_size_bytes = 512;
  c.dataset.columns = {{0.0f}, {1.0f}};
  QuerySpec q;
  q.terms.push_back(TermSpec{{LeafSpec{0, QueryOp::kGT, -82.6827}}});
  q.terms.push_back(TermSpec{{LeafSpec{1, QueryOp::kGT, 28.292}}});
  c.queries.push_back(q);

  RunOptions options = fast_options();
  auto result = run_case(c, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->has_value())
      << (*result)->path << ": " << (*result)->detail;
}

// Also pinned from PDC_QC_SEED=16: OR-terms whose drivers are different
// objects are evaluated on different servers, and the client summed the
// per-server hit counts — an element satisfying both terms was counted on
// both servers (n=2 reported 3 hits).  The union must be deduplicated.
TEST(QueryCheckRegression, CrossServerOrUnionDeduplicated) {
  Case c;
  c.seed = 16;
  c.dataset.names = {"key", "b"};
  c.dataset.region_size_bytes = 512;
  c.dataset.columns = {{0.0f, 1.0f}, {100.0f, 1.0f}};
  QuerySpec q;
  // Element 0 satisfies both terms; element 1 only the first.
  q.terms.push_back(TermSpec{{LeafSpec{0, QueryOp::kGT, -1.0}}});
  q.terms.push_back(TermSpec{{LeafSpec{1, QueryOp::kGT, 50.0}}});
  c.queries.push_back(q);

  RunOptions options = fast_options();
  auto result = run_case(c, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->has_value())
      << (*result)->path << ": " << (*result)->detail;
}

// Pinned from PDC_QC_SEED=97: under the sorted strategy with a region
// constraint, servers filtered their POSITIONS by the constraint but still
// returned the unconstrained replica-space extents; a server whose entire
// share was filtered out reported the extent counts as phantom hits.
// Layout: 34 matching elements spanning both replica regions, constraint
// [10,16) that excludes the second region's share entirely.
TEST(QueryCheckRegression, SortedRegionConstraintDropsExtents) {
  Case c;
  c.seed = 97;
  c.dataset.names = {"key"};
  c.dataset.region_size_bytes = 128;  // 32 floats per region, 2 regions
  std::vector<float> key(35, -10.0f);
  key[0] = 10.0f;  // the only non-match, sorted to the replica's tail
  c.dataset.columns = {key};
  QuerySpec q;
  q.terms.push_back(TermSpec{{LeafSpec{0, QueryOp::kLTE, -5.0}}});
  q.region = {10, 6};
  c.queries.push_back(q);

  RunOptions options = fast_options();
  auto result = run_case(c, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->has_value())
      << (*result)->path << ": " << (*result)->detail;
}

// End-to-end pin for the all-hits shortcut: a region whose histogram range
// is covered by the query but which contains NaN elements must not be
// accepted wholesale.  All paths and the oracle agree on this dataset.
TEST(QueryCheckRegression, NanRegionNotAcceptedWholesale) {
  Case c;
  c.seed = 0;
  c.dataset.names = {"key", "special"};
  c.dataset.region_size_bytes = 64;  // 16 floats per region
  std::vector<float> key, special;
  for (int i = 0; i < 64; ++i) {
    key.push_back(static_cast<float>(i));
    special.push_back(i % 5 == 0 ? std::numeric_limits<float>::quiet_NaN()
                                 : static_cast<float>(i % 7));
  }
  c.dataset.columns = {key, special};
  // Covers the whole finite range of "special": the buggy shortcut
  // returned NaN positions as hits.
  QuerySpec q;
  q.terms.push_back(TermSpec{{LeafSpec{1, QueryOp::kGTE, -1.0e30}}});
  c.queries.push_back(q);

  RunOptions options = fast_options();
  options.degraded = false;
  auto result = run_case(c, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->has_value())
      << (*result)->path << ": " << (*result)->detail;
}

// ------------------------------------------------------------- join check

// The join headline property: zone-shuffle and broadcast, at every server
// count, pool width and candidate-production strategy in the sweep, return
// byte-identical pairs equal to the nested-loop oracle on adversarial
// two-catalog cases (exact zone edges, |va-vb| == epsilon boundaries,
// duplicates, non-finite values, negative zones, pre-filters).  The
// extended configuration re-runs this at PDC_QC_CASES=200.
TEST(JoinCheck, BothShuffleStrategiesAgreeWithOracle) {
  JoinRunOptions options;
  options.temp_root = test_temp_root();
  const Status status =
      run_joincheck(/*base_seed=*/1, /*num_cases=*/12, options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// Harness sanity: the oracle itself honors the exact inclusive predicate
// and the skip-non-finite rule, and the two-catalog shrinker converges to
// a minimal failing case.
TEST(JoinCheckSanity, OracleSemanticsAndShrinkerConverge) {
  JoinCase c;
  c.epsilon = 0.5;
  c.zone_height = 1.0;
  c.a = {0.0, 10.0, std::numeric_limits<double>::quiet_NaN(),
         std::numeric_limits<double>::infinity()};
  c.b = {0.5,  // exactly epsilon away: inclusive boundary -> pair
         std::nextafter(0.5, 1.0),  // one ulp past: no pair
         10.0, std::numeric_limits<double>::quiet_NaN()};
  const auto pairs = join_oracle(c);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].left_pos, 0u);
  EXPECT_EQ(pairs[0].right_pos, 0u);
  EXPECT_EQ(pairs[1].left_pos, 1u);
  EXPECT_EQ(pairs[1].right_pos, 2u);

  // Filters narrow the oracle with ValueInterval semantics.
  c.filter_a = ValueInterval::from_op(QueryOp::kGT, 0.0);
  EXPECT_EQ(join_oracle(c).size(), 1u);

  // Shrinker: against a synthetic predicate ("some a value equals some b
  // value"), a big case collapses to one element per side.
  JoinGen gen(0xD1FFu);
  JoinCase big = gen.draw_case();
  big.a.push_back(42.25);
  big.b.push_back(42.25);
  const auto pred = [](const JoinCase& candidate) {
    for (const double va : candidate.a) {
      for (const double vb : candidate.b) {
        if (va == vb) return true;
      }
    }
    return false;
  };
  const JoinShrinkResult shrunk = shrink_join(big, pred, /*max_attempts=*/600);
  EXPECT_TRUE(pred(shrunk.minimal));
  EXPECT_LE(shrunk.minimal.a.size(), 2u);
  EXPECT_LE(shrunk.minimal.b.size(), 2u);
}

}  // namespace
}  // namespace pdc::testing
