# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("kernels")
subdirs("obs")
subdirs("pfs")
subdirs("histogram")
subdirs("bitmap")
subdirs("h5lite")
subdirs("obj")
subdirs("metadata")
subdirs("rpc")
subdirs("sortrep")
subdirs("server")
subdirs("query")
subdirs("workloads")
subdirs("testing")
