file(REMOVE_RECURSE
  "CMakeFiles/pdc_obs.dir/metrics.cc.o"
  "CMakeFiles/pdc_obs.dir/metrics.cc.o.d"
  "CMakeFiles/pdc_obs.dir/trace.cc.o"
  "CMakeFiles/pdc_obs.dir/trace.cc.o.d"
  "libpdc_obs.a"
  "libpdc_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
