# Empty dependencies file for pdc_obs.
# This may be replaced when dependencies are built.
