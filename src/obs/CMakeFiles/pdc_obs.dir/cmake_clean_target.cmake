file(REMOVE_RECURSE
  "libpdc_obs.a"
)
