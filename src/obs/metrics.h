// Deployment-scoped metrics (PR 4 observability layer).
//
// A MetricsRegistry is owned by one QueryService deployment and shared by
// its components: the bus and pool export polled gauges, each QueryServer
// registers request/byte counters and latency histograms, the PFS exports
// cumulative read totals, and region caches export occupancy gauges.  A
// snapshot is serializable, and servers answer the kMetricsRequest RPC
// with one — so examples and the bench scrape a *live* deployment over the
// same wire discipline as queries, instead of poking library internals.
//
// Primitives are lock-free atomics (counters, gauges, fixed-bucket latency
// histograms); the registry itself takes a mutex only on registration and
// snapshot, never on the instrument hot path — instrumented code holds the
// returned reference, whose address is stable for the registry's lifetime.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/serial.h"
#include "common/status.h"

namespace pdc::obs {

/// Monotone counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram.  Bucket i counts observations strictly
/// below kBounds[i] seconds (and at/above the previous bound); the last
/// bucket is the +inf overflow.  Fixed bounds keep merging and wire
/// encoding trivial — the paper's latencies span us..s, so decades fit.
class LatencyHistogram {
 public:
  static constexpr std::array<double, 8> kBounds = {
      1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
  static constexpr std::size_t kNumBuckets = kBounds.size() + 1;

  void observe(double seconds) noexcept {
    std::size_t b = kNumBuckets - 1;
    for (std::size_t i = 0; i < kBounds.size(); ++i) {
      if (seconds < kBounds[i]) {
        b = i;
        break;
      }
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add(double) is C++20; relaxed is fine, sums are advisory.
    sum_.fetch_add(seconds, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::array<std::uint64_t, kNumBuckets> buckets()
      const noexcept {
    std::array<std::uint64_t, kNumBuckets> out{};
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Estimated q-quantile (q in [0,1]) in seconds, interpolated linearly
  /// within the bucket holding the target rank.  0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Estimate the q-quantile of a LatencyHistogram-shaped bucket vector
/// (kNumBuckets counts over kBounds).  The value is interpolated linearly
/// inside the bucket containing the target rank; ranks landing in the
/// overflow bucket clamp to the last finite bound.  Returns 0 for an empty
/// or malformed histogram.  Shared by live histograms and scraped
/// MetricSample buckets.
[[nodiscard]] double histogram_quantile(
    const std::vector<std::uint64_t>& buckets, double q) noexcept;

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

/// One metric's value at snapshot time (wire-serializable).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter value / gauge value / histogram sum of observations.
  double value = 0.0;
  std::uint64_t count = 0;             ///< histogram observations
  std::vector<std::uint64_t> buckets;  ///< histogram only
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  ///< sorted by name

  [[nodiscard]] const MetricSample* find(std::string_view name) const noexcept;
  /// Value of `name`, or `fallback` when absent.
  [[nodiscard]] double value(std::string_view name,
                             double fallback = 0.0) const noexcept;
};

void serialize_snapshot(SerialWriter& w, const MetricsSnapshot& snapshot);
Status deserialize_snapshot(SerialReader& r, MetricsSnapshot& out);

/// Name-keyed instrument registry.  counter()/gauge()/histogram() create on
/// first use and return stable references; gauge_fn() registers a callback
/// polled at snapshot time (for components that already keep their own
/// atomics — bus, pool, caches — re-registering a name replaces the
/// callback).  All methods are thread-safe.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);
  void gauge_fn(std::string_view name, std::function<double()> fn);

  /// Point-in-time view of every registered metric, sorted by name.
  /// Gauge callbacks run under the registry mutex: they must not call
  /// back into this registry.
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  // unique_ptr values keep instrument addresses stable across rehashing.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
  std::map<std::string, std::function<double()>, std::less<>> gauge_fns_;
};

}  // namespace pdc::obs
