#include "obs/metrics.h"

#include <algorithm>

namespace pdc::obs {

double histogram_quantile(const std::vector<std::uint64_t>& buckets,
                          double q) noexcept {
  if (buckets.size() != LatencyHistogram::kNumBuckets) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil as in nearest-rank).
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t below = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Target rank lands in bucket i: interpolate within [lo, hi).
    const double lo = i == 0 ? 0.0 : LatencyHistogram::kBounds[i - 1];
    if (i == LatencyHistogram::kNumBuckets - 1) {
      // Overflow bucket has no upper bound; clamp to the last finite one.
      return LatencyHistogram::kBounds.back();
    }
    const double hi = LatencyHistogram::kBounds[i];
    const double fraction =
        (rank - static_cast<double>(below)) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
  }
  return LatencyHistogram::kBounds.back();
}

double LatencyHistogram::quantile(double q) const noexcept {
  const auto counts = buckets();
  return histogram_quantile(
      std::vector<std::uint64_t>(counts.begin(), counts.end()), q);
}

const MetricSample* MetricsSnapshot::find(
    std::string_view name) const noexcept {
  for (const MetricSample& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

double MetricsSnapshot::value(std::string_view name,
                              double fallback) const noexcept {
  const MetricSample* sample = find(name);
  return sample != nullptr ? sample->value : fallback;
}

void serialize_snapshot(SerialWriter& w, const MetricsSnapshot& snapshot) {
  w.put<std::uint32_t>(static_cast<std::uint32_t>(snapshot.samples.size()));
  for (const MetricSample& sample : snapshot.samples) {
    w.put_string(sample.name);
    w.put(static_cast<std::uint8_t>(sample.kind));
    w.put(sample.value);
    w.put(sample.count);
    w.put_vector(sample.buckets);
  }
}

Status deserialize_snapshot(SerialReader& r, MetricsSnapshot& out) {
  std::uint32_t count = 0;
  PDC_RETURN_IF_ERROR(r.get(count));
  // A sample costs >= 33 bytes on the wire; reject hostile counts.
  if (count > r.remaining() / 33 + 1) {
    return Status::Corruption("metric sample count exceeds remaining bytes");
  }
  out.samples.clear();
  out.samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    MetricSample sample;
    std::uint8_t kind = 0;
    PDC_RETURN_IF_ERROR(r.get_string(sample.name));
    PDC_RETURN_IF_ERROR(r.get(kind));
    if (kind > static_cast<std::uint8_t>(MetricKind::kHistogram)) {
      return Status::Corruption("unknown metric kind");
    }
    sample.kind = static_cast<MetricKind>(kind);
    PDC_RETURN_IF_ERROR(r.get(sample.value));
    PDC_RETURN_IF_ERROR(r.get(sample.count));
    PDC_RETURN_IF_ERROR(r.get_vector(sample.buckets));
    out.samples.push_back(std::move(sample));
  }
  return Status::Ok();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::gauge_fn(std::string_view name,
                               std::function<double()> fn) {
  std::lock_guard lock(mu_);
  gauge_fns_.insert_or_assign(std::string(name), std::move(fn));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard lock(mu_);
  out.samples.reserve(counters_.size() + gauges_.size() + gauge_fns_.size() +
                      histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricKind::kCounter;
    sample.value = static_cast<double>(counter->value());
    out.samples.push_back(std::move(sample));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricKind::kGauge;
    sample.value = gauge->value();
    out.samples.push_back(std::move(sample));
  }
  for (const auto& [name, fn] : gauge_fns_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricKind::kGauge;
    sample.value = fn ? fn() : 0.0;
    out.samples.push_back(std::move(sample));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricKind::kHistogram;
    sample.value = hist->sum();
    sample.count = hist->count();
    const auto buckets = hist->buckets();
    sample.buckets.assign(buckets.begin(), buckets.end());
    // Synthesized percentile gauges ride along in the same scrape, so a
    // remote reader gets tail latencies without re-deriving them.
    for (const auto& [suffix, q] :
         {std::pair{".p50", 0.50}, {".p95", 0.95}, {".p99", 0.99}}) {
      MetricSample pct;
      pct.name = name + suffix;
      pct.kind = MetricKind::kGauge;
      pct.value = histogram_quantile(sample.buckets, q);
      out.samples.push_back(std::move(pct));
    }
    out.samples.push_back(std::move(sample));
  }
  std::sort(out.samples.begin(), out.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace pdc::obs
