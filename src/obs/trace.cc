#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>

#include "common/serial.h"

namespace pdc::obs {

namespace {
/// One process-wide id well: trace ids and span ids never collide, so
/// merging remote spans into a client tree needs no renumbering.
std::atomic<std::uint64_t> g_next_id{1};

/// Magic prefix of the binary trace-file format ("PDCT").
constexpr std::uint32_t kTraceFileMagic = 0x54434450u;
}  // namespace

double Span::arg(std::string_view key, double fallback) const noexcept {
  for (const auto& [k, v] : args) {
    if (k == key) return v;
  }
  return fallback;
}

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t next_id() noexcept {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

SpanId Tracer::begin(SpanId parent, std::string_view name,
                     std::string_view actor) {
  Span span;
  span.id = next_id();
  span.parent = parent;
  span.start_us = now_us();
  span.name.assign(name);
  span.actor.assign(actor);
  std::lock_guard lock(mu_);
  index_.emplace(span.id, spans_.size());
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::add_arg(SpanId id, std::string_view key, double value) {
  std::lock_guard lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  spans_[it->second].args.emplace_back(std::string(key), value);
}

void Tracer::end(SpanId id) {
  const std::uint64_t t = now_us();
  std::lock_guard lock(mu_);
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  Span& span = spans_[it->second];
  // Guard against double-close (keep the first end time).
  if (span.end_us == 0) span.end_us = std::max(t, span.start_us);
}

void Tracer::record(Span span) {
  std::lock_guard lock(mu_);
  index_.emplace(span.id, spans_.size());
  spans_.push_back(std::move(span));
}

void Tracer::adopt(std::vector<Span> spans) {
  std::lock_guard lock(mu_);
  for (Span& span : spans) {
    // Remote duplicates (a response delivered twice) would corrupt the
    // tree; keep the first copy of any id.
    if (!index_.emplace(span.id, spans_.size()).second) continue;
    spans_.push_back(std::move(span));
  }
}

std::size_t Tracer::span_count() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

Trace Tracer::take() {
  std::lock_guard lock(mu_);
  Trace trace;
  trace.trace_id = trace_id_;
  trace.spans = std::move(spans_);
  spans_.clear();
  index_.clear();
  return trace;
}

// ------------------------------------------------------------- wire blob

namespace {

void put_span(SerialWriter& w, const Span& span) {
  w.put(span.id);
  w.put(span.parent);
  w.put(span.start_us);
  w.put(span.end_us);
  w.put_string(span.name);
  w.put_string(span.actor);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(span.args.size()));
  for (const auto& [key, value] : span.args) {
    w.put_string(key);
    w.put(value);
  }
}

Status get_span(SerialReader& r, Span& span) {
  PDC_RETURN_IF_ERROR(r.get(span.id));
  PDC_RETURN_IF_ERROR(r.get(span.parent));
  PDC_RETURN_IF_ERROR(r.get(span.start_us));
  PDC_RETURN_IF_ERROR(r.get(span.end_us));
  PDC_RETURN_IF_ERROR(r.get_string(span.name));
  PDC_RETURN_IF_ERROR(r.get_string(span.actor));
  std::uint32_t num_args = 0;
  PDC_RETURN_IF_ERROR(r.get(num_args));
  // Each arg costs >= 16 bytes on the wire; reject hostile counts before
  // reserving.
  if (num_args > r.remaining() / 16) {
    return Status::Corruption("span arg count exceeds remaining bytes");
  }
  span.args.clear();
  span.args.reserve(num_args);
  for (std::uint32_t i = 0; i < num_args; ++i) {
    std::string key;
    double value = 0.0;
    PDC_RETURN_IF_ERROR(r.get_string(key));
    PDC_RETURN_IF_ERROR(r.get(value));
    span.args.emplace_back(std::move(key), value);
  }
  return Status::Ok();
}

}  // namespace

std::vector<std::uint8_t> serialize_spans(std::span<const Span> spans) {
  SerialWriter w(64 * spans.size());
  w.put<std::uint32_t>(static_cast<std::uint32_t>(spans.size()));
  for (const Span& span : spans) put_span(w, span);
  return w.take();
}

Status deserialize_spans(std::span<const std::uint8_t> blob,
                         std::vector<Span>& out) {
  SerialReader r(blob);
  std::uint32_t count = 0;
  PDC_RETURN_IF_ERROR(r.get(count));
  // A span costs >= 40 bytes on the wire.
  if (count > r.remaining() / 40) {
    return Status::Corruption("span count exceeds remaining bytes");
  }
  out.clear();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Span span;
    PDC_RETURN_IF_ERROR(get_span(r, span));
    out.push_back(std::move(span));
  }
  return Status::Ok();
}

Status write_trace_file(const Trace& trace, const std::string& path) {
  SerialWriter w;
  w.put(kTraceFileMagic);
  w.put(trace.trace_id);
  const std::vector<std::uint8_t> spans = serialize_spans(trace.spans);
  w.put_bytes(spans);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open trace file for writing");
  const auto bytes = w.bytes();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("short write to trace file");
  return Status::Ok();
}

Result<Trace> read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open trace file");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  SerialReader r(bytes);
  std::uint32_t magic = 0;
  PDC_RETURN_IF_ERROR(r.get(magic));
  if (magic != kTraceFileMagic) {
    return Status::Corruption("not a PDC trace file");
  }
  Trace trace;
  PDC_RETURN_IF_ERROR(r.get(trace.trace_id));
  std::span<const std::uint8_t> blob;
  PDC_RETURN_IF_ERROR(r.get_bytes_view(blob));
  PDC_RETURN_IF_ERROR(deserialize_spans(blob, trace.spans));
  return trace;
}

// ----------------------------------------------------------------- export

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const Trace& trace) {
  // Stable actor -> tid mapping (tid order = first appearance).
  std::vector<std::string> actors;
  auto tid_of = [&actors](const std::string& actor) {
    for (std::size_t i = 0; i < actors.size(); ++i) {
      if (actors[i] == actor) return i + 1;
    }
    actors.push_back(actor);
    return actors.size();
  };
  std::uint64_t t0 = std::numeric_limits<std::uint64_t>::max();
  for (const Span& span : trace.spans) t0 = std::min(t0, span.start_us);
  if (trace.spans.empty()) t0 = 0;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : trace.spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(tid_of(span.actor));
    out += ",\"name\":";
    append_json_string(out, span.name);
    out += ",\"cat\":";
    const std::size_t dot = span.name.find('.');
    append_json_string(out, dot == std::string::npos
                                ? std::string_view(span.name)
                                : std::string_view(span.name).substr(0, dot));
    out += ",\"ts\":";
    out += std::to_string(span.start_us - t0);
    out += ",\"dur\":";
    const std::uint64_t end = span.end_us == 0 ? span.start_us : span.end_us;
    out += std::to_string(end - span.start_us);
    out += ",\"args\":{\"span_id\":";
    out += std::to_string(span.id);
    out += ",\"parent\":";
    out += std::to_string(span.parent);
    for (const auto& [key, value] : span.args) {
      out.push_back(',');
      append_json_string(out, key);
      out.push_back(':');
      append_double(out, value);
    }
    out += "}}";
  }
  // Thread-name metadata rows so Perfetto labels tracks by actor.
  for (std::size_t i = 0; i < actors.size(); ++i) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(i + 1);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_string(out, actors[i]);
    out += "}}";
  }
  out += "]}";
  return out;
}

// ------------------------------------------------------------- validation

Status validate_trace(const Trace& trace, const ValidateOptions& options) {
  if (trace.trace_id == 0) {
    return Status::InvalidArgument("trace id is zero");
  }
  std::unordered_map<SpanId, const Span*> by_id;
  by_id.reserve(trace.spans.size());
  bool has_root = false;
  for (const Span& span : trace.spans) {
    if (span.id == 0) {
      return Status::Corruption("span '" + span.name + "' has id 0");
    }
    if (!by_id.emplace(span.id, &span).second) {
      return Status::Corruption("duplicate span id " + std::to_string(span.id) +
                                " ('" + span.name + "')");
    }
    if (span.end_us == 0) {
      return Status::Corruption("span '" + span.name + "' (id " +
                                std::to_string(span.id) + ") was never closed");
    }
    if (span.end_us < span.start_us) {
      return Status::Corruption("span '" + span.name + "' ends before it starts");
    }
    if (span.parent == 0) has_root = true;
  }
  if (!trace.spans.empty() && !has_root) {
    return Status::Corruption("trace has spans but no root span");
  }
  for (const Span& span : trace.spans) {
    if (span.parent == 0) continue;
    const auto it = by_id.find(span.parent);
    if (it == by_id.end()) {
      return Status::Corruption("span '" + span.name + "' (id " +
                                std::to_string(span.id) +
                                ") references missing parent " +
                                std::to_string(span.parent));
    }
    // Walk to the root; a cycle would loop longer than the span count.
    const Span* cursor = it->second;
    std::size_t hops = 0;
    while (cursor->parent != 0) {
      if (++hops > trace.spans.size()) {
        return Status::Corruption("parent cycle involving span id " +
                                  std::to_string(span.id));
      }
      const auto up = by_id.find(cursor->parent);
      if (up == by_id.end()) break;  // reported above for that span
      cursor = up->second;
    }
    if (options.require_nesting) {
      const Span& parent = *it->second;
      const std::uint64_t slack = options.nesting_slack_us;
      if (span.start_us + slack < parent.start_us ||
          span.end_us > parent.end_us + slack) {
        return Status::Corruption(
            "span '" + span.name + "' [" + std::to_string(span.start_us) +
            ", " + std::to_string(span.end_us) + "] escapes parent '" +
            parent.name + "' [" + std::to_string(parent.start_us) + ", " +
            std::to_string(parent.end_us) + "]");
      }
    }
  }
  return Status::Ok();
}

}  // namespace pdc::obs
