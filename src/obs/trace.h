// Per-query distributed tracing (PR 4 observability layer).
//
// A traced operation produces one span tree: the client opens a root span,
// every layer it crosses (RPC gather, server runtime, query server phases,
// pool tasks, PFS reads) opens child spans, and the trace id + parent span
// id travel inside the rpc::Envelope so server-side spans attach to the
// client-side tree.  Server spans come back to the client as a compact
// serialized blob appended to the response frame — the transport carries
// trace baggage, the wire protocol in server/wire.h is untouched.
//
// Span ids are allocated from one process-wide atomic counter, so spans
// created by any actor (client thread, server threads, pool workers) in the
// same process never collide and can be merged into one tree without
// renumbering.  The Tracer is a mutex-protected span collector: concurrent
// begin/end/adopt from pool workers is safe by construction (the TSan label
// covers the traced paths).
//
// Everything is pay-for-what-you-use: a default TraceContext is disabled
// and every instrumentation point is a branch on a null pointer, so the
// untraced hot path stays within the <=2% overhead budget asserted by
// obs_test.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pdc::obs {

using SpanId = std::uint64_t;

/// One closed-or-open interval of work attributed to an actor.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;           ///< 0 = root of the trace
  std::uint64_t start_us = 0;  ///< steady-clock microseconds
  std::uint64_t end_us = 0;    ///< 0 = still open (a validation failure)
  std::string name;            ///< taxonomy: "client.query", "rpc.gather", ...
  std::string actor;           ///< "client", "server3", "pfs", ...
  /// Numeric key/value annotations (ids, bytes, simulated seconds).
  std::vector<std::pair<std::string, double>> args;

  /// First arg named `key`, or `fallback` when absent.
  [[nodiscard]] double arg(std::string_view key,
                           double fallback = 0.0) const noexcept;
};

/// A completed span tree for one trace id.
struct Trace {
  std::uint64_t trace_id = 0;
  std::vector<Span> spans;
};

/// Steady-clock now in Span time units.
[[nodiscard]] std::uint64_t now_us() noexcept;

/// Process-unique nonzero id (shared counter for trace ids and span ids).
[[nodiscard]] std::uint64_t next_id() noexcept;

/// Thread-safe span collector for one trace id.
class Tracer {
 public:
  explicit Tracer(std::uint64_t trace_id) : trace_id_(trace_id) {}

  [[nodiscard]] std::uint64_t trace_id() const noexcept { return trace_id_; }

  /// Open a span now; returns its id.
  SpanId begin(SpanId parent, std::string_view name, std::string_view actor);
  /// Attach a numeric annotation to an open (or closed) span.
  void add_arg(SpanId id, std::string_view key, double value);
  /// Close a span now.  Unknown ids are ignored (a span adopted twice
  /// under races would otherwise corrupt the tree).
  void end(SpanId id);

  /// Record a fully-formed span (used for intervals timed outside the
  /// tracer, e.g. a queue wait measured before the tracer existed).
  void record(Span span);
  /// Merge spans deserialized from a remote blob into this trace.
  void adopt(std::vector<Span> spans);

  [[nodiscard]] std::size_t span_count() const;

  /// Move the collected spans out as a Trace (the tracer is empty after).
  [[nodiscard]] Trace take();

 private:
  mutable std::mutex mu_;
  std::uint64_t trace_id_;
  std::vector<Span> spans_;
  std::unordered_map<SpanId, std::size_t> index_;  ///< id -> spans_ slot
};

/// Propagation handle passed down call stacks and across the wire.  A
/// default-constructed context is disabled; every instrumentation point
/// checks enabled() first, so untraced paths cost one branch.
struct TraceContext {
  Tracer* tracer = nullptr;
  std::uint64_t trace_id = 0;
  SpanId parent = 0;

  [[nodiscard]] bool enabled() const noexcept { return tracer != nullptr; }
  [[nodiscard]] TraceContext child_of(SpanId span) const noexcept {
    return {tracer, trace_id, span};
  }
};

/// RAII span: opens on construction (no-op when the context is disabled),
/// closes on destruction or explicit close().
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(const TraceContext& ctx, std::string_view name,
             std::string_view actor) {
    if (!ctx.enabled()) return;
    tracer_ = ctx.tracer;
    id_ = tracer_->begin(ctx.parent, name, actor);
    ctx_ = {tracer_, ctx.trace_id, id_};
  }
  ~ScopedSpan() { close(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(std::string_view key, double value) {
    if (tracer_ != nullptr) tracer_->add_arg(id_, key, value);
  }
  void close() {
    if (tracer_ != nullptr) tracer_->end(id_);
    tracer_ = nullptr;
  }

  [[nodiscard]] SpanId id() const noexcept { return id_; }
  /// Context for children of this span (disabled when this span is).
  [[nodiscard]] const TraceContext& context() const noexcept { return ctx_; }

 private:
  Tracer* tracer_ = nullptr;
  TraceContext ctx_{};
  SpanId id_ = 0;
};

// ------------------------------------------------------------- wire blob

/// Compact binary form of a span list (the response-frame baggage).
[[nodiscard]] std::vector<std::uint8_t> serialize_spans(
    std::span<const Span> spans);
Status deserialize_spans(std::span<const std::uint8_t> blob,
                         std::vector<Span>& out);

/// Whole-trace binary file (tools/trace2json input).
Status write_trace_file(const Trace& trace, const std::string& path);
Result<Trace> read_trace_file(const std::string& path);

// ----------------------------------------------------------- export

/// Chrome trace_event JSON (open in chrome://tracing or Perfetto).  One
/// complete ("ph":"X") event per span; actors map to tids with metadata
/// naming events.
[[nodiscard]] std::string chrome_trace_json(const Trace& trace);

// ------------------------------------------------------------- validation

struct ValidateOptions {
  /// Child span intervals must lie within their parent's interval (up to
  /// `nesting_slack_us`).  Disable for chaos runs where late/retried
  /// server work may straddle client attempt windows.
  bool require_nesting = true;
  std::uint64_t nesting_slack_us = 0;
};

/// Well-formedness of a span tree: nonzero trace id, unique nonzero span
/// ids, every span closed with end >= start, every nonzero parent resolves
/// to a span in the trace, no parent cycles, at least one root, and
/// (optionally) child intervals nested within their parents.  Returns the
/// first violation as a descriptive error.
Status validate_trace(const Trace& trace, const ValidateOptions& options = {});

}  // namespace pdc::obs
