#include "testing/metacheck.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <utility>

#include "obj/object_store.h"
#include "pfs/pfs.h"
#include "query/service.h"
#include "rpc/fault.h"

namespace pdc::testing {
namespace {

// Adversarial building blocks.  Shared prefixes stress trie edge
// splitting; high bytes stress byte-exact bucket routing; '*' stresses
// literal-wildcard separation; the 2^53 family stresses the numeric fold.
constexpr std::string_view kPrefixBases[] = {"53", "obs_20", "run",
                                             "plate53"};
constexpr std::string_view kUnicodeish[] = {
    "caf\xC3\xA9", "\xE2\x98\x85", "\xC3\xA9clair", "x\xF0\x9F\x9A\x80"};
constexpr std::string_view kStarLiterals[] = {"*", "*DEG", "53*", "a*b"};
constexpr std::int64_t kTwoPow53 = 9007199254740992LL;  // 2^53

std::string printable(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    const auto b = static_cast<unsigned char>(c);
    if (b >= 0x20 && b < 0x7F) {
      os << c;
    } else {
      static const char* hex = "0123456789ABCDEF";
      os << "\\x" << hex[b >> 4] << hex[b & 0xF];
    }
  }
  return os.str();
}

std::string value_repr(const meta::MetaValue& v) {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&v)) {
    os << '"' << printable(*s) << '"';
  } else if (const auto* d = std::get_if<double>(&v)) {
    os << *d;
  } else {
    os << std::get<std::int64_t>(v) << "i64";
  }
  return os.str();
}

std::string condition_repr(const meta::MetaCondition& c) {
  std::ostringstream os;
  os << printable(c.attribute);
  switch (c.kind) {
    case meta::MetaMatchKind::kValue:
      os << " op" << static_cast<int>(c.op) << " ";
      break;
    case meta::MetaMatchKind::kPrefix:
      os << " prefix* ";
      break;
    case meta::MetaMatchKind::kSuffix:
      os << " *suffix ";
      break;
  }
  os << value_repr(c.value);
  return os.str();
}

std::string ids_summary(const std::vector<ObjectId>& want,
                        const std::vector<ObjectId>& got) {
  std::ostringstream os;
  os << "expected " << want.size() << " ids, got " << got.size();
  for (std::size_t i = 0; i < std::max(want.size(), got.size()); ++i) {
    const bool w = i < want.size();
    const bool g = i < got.size();
    if (w && g && want[i] == got[i]) continue;
    os << "; first divergence at rank " << i << " (expected "
       << (w ? std::to_string(want[i]) : std::string("<end>")) << ", got "
       << (g ? std::to_string(got[i]) : std::string("<end>")) << ")";
    break;
  }
  return os.str();
}

}  // namespace

// -------------------------------------------------------------- generator

MetaGen::MetaGen(std::uint64_t seed) : seed_(seed), rng_(seed) {}

std::string MetaGen::draw_attribute_name() {
  // A small pool with deliberate shared prefixes ("run" / "run_id").
  static const char* kNames[] = {"PLATE", "run", "run_id", "tag", "RADEG"};
  return kNames[rng_.bounded(std::size(kNames))];
}

meta::MetaValue MetaGen::draw_value() {
  switch (rng_.bounded(6)) {
    case 0: {  // shared-prefix string: base + a few digits
      std::string v(kPrefixBases[rng_.bounded(std::size(kPrefixBases))]);
      const std::uint64_t extra = rng_.bounded(4);
      for (std::uint64_t i = 0; i < extra; ++i) {
        v.push_back(static_cast<char>('0' + rng_.bounded(10)));
      }
      return v;
    }
    case 1:  // unicode-adjacent bytes
      return std::string(kUnicodeish[rng_.bounded(std::size(kUnicodeish))]);
    case 2:  // '*' as a literal value byte
      return std::string(kStarLiterals[rng_.bounded(std::size(kStarLiterals))]);
    case 3: {  // int64 straddling 2^53 (plus small/negative ints)
      switch (rng_.bounded(4)) {
        case 0:
          return kTwoPow53 + static_cast<std::int64_t>(rng_.bounded(3)) - 1;
        case 1:
          return -(kTwoPow53 + static_cast<std::int64_t>(rng_.bounded(3)) - 1);
        case 2:
          return static_cast<std::int64_t>(rng_.bounded(100)) - 50;
        default:
          return static_cast<std::int64_t>(5340);
      }
    }
    case 4:  // doubles, including the paper's query constants
      switch (rng_.bounded(3)) {
        case 0:
          return 153.17;
        case 1:
          return -0.0;
        default:
          return std::round(rng_.uniform(-10.0, 10.0) * 4.0) / 4.0;
      }
    default:  // empty and single-byte strings (degenerate trie keys)
      return rng_.bounded(2) == 0 ? std::string()
                                  : std::string(1, static_cast<char>(
                                                       rng_.bounded(256)));
  }
}

std::string MetaGen::draw_pattern(const MetaCatalog& catalog) {
  // Mostly an affix of a value that actually exists (so matches happen);
  // sometimes a fresh adversarial string; sometimes empty (full fan-out).
  const std::uint64_t pick = rng_.bounded(8);
  if (pick == 0) return std::string();
  if (pick <= 5 && !catalog.objects.empty()) {
    const auto& attrs =
        catalog.objects[rng_.bounded(catalog.objects.size())];
    if (!attrs.empty()) {
      auto it = attrs.begin();
      std::advance(it, static_cast<long>(rng_.bounded(attrs.size())));
      if (const auto pattern = meta::affix_pattern(it->second)) {
        if (pattern->empty()) return std::string();
        // Chop to a random prefix/suffix length >= 1.
        const std::size_t len = 1 + rng_.bounded(pattern->size());
        return rng_.bounded(2) == 0 ? pattern->substr(0, len)
                                    : pattern->substr(pattern->size() - len);
      }
    }
  }
  const auto fresh = draw_value();
  return meta::affix_pattern(fresh).value_or("5");
}

meta::MetaCondition MetaGen::draw_condition(const MetaCatalog& catalog) {
  meta::MetaCondition c;
  // 1/8 of conditions target an attribute nobody has (matches nothing on
  // both paths).
  c.attribute =
      rng_.bounded(8) == 0 ? std::string("nope") : draw_attribute_name();
  const std::uint64_t kind = rng_.bounded(10);
  if (kind < 4) {
    c.kind = meta::MetaMatchKind::kValue;
    // Mostly a value that exists somewhere, for non-trivial hit sets.
    if (rng_.bounded(4) != 0 && !catalog.objects.empty()) {
      const auto& attrs =
          catalog.objects[rng_.bounded(catalog.objects.size())];
      const auto it = attrs.find(c.attribute);
      if (it != attrs.end()) c.value = it->second;
      else c.value = draw_value();
    } else {
      c.value = draw_value();
    }
    if (std::holds_alternative<std::string>(c.value)) {
      // Strings support kEQ only; occasionally draw kGT to pin the
      // "matches nothing" agreement between both paths.
      c.op = rng_.bounded(8) == 0 ? QueryOp::kGT : QueryOp::kEQ;
    } else {
      static const QueryOp kOps[] = {QueryOp::kEQ, QueryOp::kGT,
                                     QueryOp::kGTE, QueryOp::kLT,
                                     QueryOp::kLTE};
      c.op = kOps[rng_.bounded(std::size(kOps))];
    }
  } else {
    c.kind = kind < 7 ? meta::MetaMatchKind::kPrefix
                      : meta::MetaMatchKind::kSuffix;
    c.op = QueryOp::kEQ;
    // Affix patterns ride in the value: usually a string, sometimes an
    // int64 (decimal-text pattern), rarely a double (provably empty).
    const std::uint64_t form = rng_.bounded(8);
    if (form == 0) {
      c.value = kTwoPow53 + static_cast<std::int64_t>(rng_.bounded(3)) - 1;
    } else if (form == 1) {
      c.value = 1.5;
    } else {
      c.value = draw_pattern(catalog);
    }
  }
  return c;
}

MetaCase MetaGen::draw_case() {
  MetaCase c;
  c.seed = seed_;
  c.catalog.first_object = 1 + rng_.bounded(100);
  const std::size_t num_objects = 8 + rng_.bounded(40);
  c.catalog.objects.resize(num_objects);
  for (auto& attrs : c.catalog.objects) {
    const std::size_t num_attrs = 1 + rng_.bounded(4);
    for (std::size_t a = 0; a < num_attrs; ++a) {
      attrs[draw_attribute_name()] = draw_value();
    }
  }
  const std::size_t num_ops = 4 + rng_.bounded(6);
  for (std::size_t i = 0; i < num_ops; ++i) {
    MetaOpSpec op;
    op.is_update = rng_.bounded(3) == 0;
    if (op.is_update) {
      op.target = static_cast<std::uint32_t>(rng_.bounded(num_objects));
      op.attribute = draw_attribute_name();
      op.value = draw_value();  // type changes included
    } else {
      const std::size_t conjuncts = 1 + rng_.bounded(3);
      for (std::size_t k = 0; k < conjuncts; ++k) {
        op.query.push_back(draw_condition(c.catalog));
      }
    }
    c.ops.push_back(std::move(op));
  }
  // Always end on a query so updates get observed.
  if (c.ops.back().is_update) {
    MetaOpSpec final_query;
    final_query.query.push_back(draw_condition(c.catalog));
    c.ops.push_back(std::move(final_query));
  }
  return c;
}

// ----------------------------------------------------------------- runner

namespace {

struct MetaEnv {
  std::unique_ptr<pfs::PfsCluster> cluster;
  std::unique_ptr<obj::ObjectStore> store;
  std::string dir;
};

Result<MetaEnv> build_meta_env(std::uint64_t tag,
                               const std::string& temp_root) {
  static std::atomic<std::uint64_t> counter{0};
  MetaEnv env;
  std::ostringstream dir;
  dir << temp_root << "/case_" << tag << "_" << counter.fetch_add(1);
  env.dir = dir.str();
  std::error_code ec;
  std::filesystem::remove_all(env.dir, ec);
  pfs::PfsConfig config;
  config.root_dir = env.dir;
  PDC_ASSIGN_OR_RETURN(env.cluster, pfs::PfsCluster::Create(config));
  env.store = std::make_unique<obj::ObjectStore>(*env.cluster);
  return env;
}

/// Replay the case against one deployment.  `degraded` relaxes the
/// contract from "must succeed and match" to "must match or fail with a
/// clean kUnavailable/kOverloaded".
Result<std::optional<MetaMismatch>> run_deployment(
    const MetaCase& c, const MetaRunOptions& options,
    std::uint32_t num_servers, bool degraded) {
  PDC_ASSIGN_OR_RETURN(MetaEnv env,
                       build_meta_env(c.seed, options.temp_root));
  meta::MetaStore authoritative;
  for (std::size_t i = 0; i < c.catalog.objects.size(); ++i) {
    const ObjectId id = c.catalog.first_object + i;
    for (const auto& [name, value] : c.catalog.objects[i]) {
      authoritative.set_attribute(id, name, value);
    }
  }

  rpc::FaultPlan plan;
  std::optional<rpc::FaultInjector> injector;
  query::ServiceOptions service_options;
  service_options.num_servers = num_servers;
  service_options.metadata = &authoritative;
  service_options.meta_vnodes = options.vnodes;
  service_options.meta_replicas = options.replicas;
  if (degraded) {
    // Kill the highest server after a couple of requests — mid-case, so
    // some vnode replicas vanish while queries are in flight.
    plan.server_faults.push_back({/*server=*/num_servers - 1,
                                  /*after_requests=*/2,
                                  rpc::ServerFate::kKilled});
    injector.emplace(plan);
    service_options.fault_injector = &*injector;
    service_options.retry.attempt_timeout = std::chrono::milliseconds(100);
    service_options.retry.max_attempts = 3;
    service_options.retry.backoff_base = std::chrono::milliseconds(2);
    service_options.retry.backoff_cap = std::chrono::milliseconds(20);
  }
  query::QueryService service(*env.store, service_options);

  const std::string path = "servers=" + std::to_string(num_servers) +
                           (degraded ? " (degraded)" : "");
  for (std::size_t i = 0; i < c.ops.size(); ++i) {
    const MetaOpSpec& op = c.ops[i];
    if (op.is_update) {
      if (op.target >= c.catalog.objects.size()) continue;  // shrunk away
      const ObjectId id = c.catalog.first_object + op.target;
      const Status status =
          service.meta_set_attribute(id, op.attribute, op.value);
      if (!status.ok()) {
        if (degraded && (status.code() == StatusCode::kUnavailable ||
                         status.code() == StatusCode::kOverloaded)) {
          // Clean refusal; the authoritative store was written last, so
          // it was NOT updated and later queries stay consistent.
          continue;
        }
        return std::optional<MetaMismatch>(
            MetaMismatch{i, path, "update failed: " + status.ToString()});
      }
      continue;
    }
    const std::vector<ObjectId> want = authoritative.query(op.query);
    const Result<std::vector<ObjectId>> got = service.meta_query(op.query);
    if (!got.ok()) {
      if (degraded && (got.status().code() == StatusCode::kUnavailable ||
                       got.status().code() == StatusCode::kOverloaded)) {
        continue;  // clean refusal beats a truncated posting list
      }
      return std::optional<MetaMismatch>(MetaMismatch{
          i, path, "query failed: " + got.status().ToString()});
    }
    if (*got != want) {
      return std::optional<MetaMismatch>(
          MetaMismatch{i, path, ids_summary(want, *got)});
    }
  }
  return std::optional<MetaMismatch>(std::nullopt);
}

}  // namespace

Result<std::optional<MetaMismatch>> run_meta_case(
    const MetaCase& c, const MetaRunOptions& options) {
  for (const std::uint32_t servers : options.server_counts) {
    PDC_ASSIGN_OR_RETURN(
        std::optional<MetaMismatch> mismatch,
        run_deployment(c, options, servers, /*degraded=*/false));
    if (mismatch) return mismatch;
  }
  if (options.degraded && !options.server_counts.empty()) {
    const std::uint32_t servers = *std::max_element(
        options.server_counts.begin(), options.server_counts.end());
    PDC_ASSIGN_OR_RETURN(
        std::optional<MetaMismatch> mismatch,
        run_deployment(c, options, servers, /*degraded=*/true));
    if (mismatch) return mismatch;
  }
  return std::optional<MetaMismatch>(std::nullopt);
}

// ---------------------------------------------------------------- shrinker

MetaShrinkResult shrink_meta(
    MetaCase failing, const std::function<bool(const MetaCase&)>& still_fails,
    std::size_t max_attempts) {
  MetaShrinkResult result;
  bool progress = true;
  while (progress && result.attempts < max_attempts) {
    progress = false;

    // Drop ops, last first (later ops depend on earlier updates).
    for (std::size_t i = failing.ops.size(); i-- > 0;) {
      if (result.attempts >= max_attempts) break;
      MetaCase candidate = failing;
      candidate.ops.erase(candidate.ops.begin() + static_cast<long>(i));
      ++result.attempts;
      if (!candidate.ops.empty() && still_fails(candidate)) {
        failing = std::move(candidate);
        ++result.accepted_steps;
        progress = true;
      }
    }

    // Halve the catalog (object indices in update ops stay valid or are
    // skipped by the runner).
    while (failing.catalog.objects.size() > 1 &&
           result.attempts < max_attempts) {
      MetaCase candidate = failing;
      candidate.catalog.objects.resize(candidate.catalog.objects.size() / 2);
      ++result.attempts;
      if (!still_fails(candidate)) break;
      failing = std::move(candidate);
      ++result.accepted_steps;
      progress = true;
    }

    // Drop attributes object by object.
    for (std::size_t o = 0; o < failing.catalog.objects.size(); ++o) {
      std::vector<std::string> names;
      for (const auto& [name, value] : failing.catalog.objects[o]) {
        names.push_back(name);
      }
      for (const std::string& name : names) {
        if (result.attempts >= max_attempts) break;
        MetaCase candidate = failing;
        candidate.catalog.objects[o].erase(name);
        ++result.attempts;
        if (still_fails(candidate)) {
          failing = std::move(candidate);
          ++result.accepted_steps;
          progress = true;
        }
      }
    }

    // Drop conjuncts from query ops.
    for (std::size_t i = 0; i < failing.ops.size(); ++i) {
      if (failing.ops[i].is_update) continue;
      for (std::size_t k = failing.ops[i].query.size(); k-- > 0;) {
        if (result.attempts >= max_attempts) break;
        if (failing.ops[i].query.size() <= 1) break;
        MetaCase candidate = failing;
        candidate.ops[i].query.erase(candidate.ops[i].query.begin() +
                                     static_cast<long>(k));
        ++result.attempts;
        if (still_fails(candidate)) {
          failing = std::move(candidate);
          ++result.accepted_steps;
          progress = true;
        }
      }
    }
  }
  result.minimal = std::move(failing);
  return result;
}

std::string describe_meta_case(const MetaCase& c) {
  std::ostringstream os;
  os << "case seed=" << c.seed << ": " << c.catalog.objects.size()
     << " objects (first id " << c.catalog.first_object << "), "
     << c.ops.size() << " ops\n";
  for (std::size_t i = 0; i < c.catalog.objects.size(); ++i) {
    os << "  obj " << c.catalog.first_object + i << ":";
    for (const auto& [name, value] : c.catalog.objects[i]) {
      os << " " << printable(name) << "=" << value_repr(value);
    }
    os << "\n";
  }
  for (std::size_t i = 0; i < c.ops.size(); ++i) {
    const MetaOpSpec& op = c.ops[i];
    os << "  op " << i << ": ";
    if (op.is_update) {
      os << "update obj+" << op.target << " " << printable(op.attribute)
         << " := " << value_repr(op.value);
    } else {
      os << "query";
      for (const auto& cond : op.query) {
        os << " [" << condition_repr(cond) << "]";
      }
    }
    os << "\n";
  }
  return os.str();
}

// ------------------------------------------------------------ entry point

Status run_metacheck(std::uint64_t base_seed, std::size_t num_cases,
                     const MetaRunOptions& options) {
  if (const char* env = std::getenv("PDC_QC_SEED")) {
    base_seed = std::strtoull(env, nullptr, 10);
    num_cases = 1;
  }
  if (const char* env = std::getenv("PDC_QC_CASES")) {
    num_cases = std::strtoull(env, nullptr, 10);
    if (num_cases == 0) num_cases = 1;
  }

  for (std::size_t i = 0; i < num_cases; ++i) {
    const std::uint64_t seed = base_seed + i;
    MetaGen gen(seed);
    const MetaCase c = gen.draw_case();
    PDC_ASSIGN_OR_RETURN(std::optional<MetaMismatch> mismatch,
                         run_meta_case(c, options));
    if (!mismatch) continue;

    const auto pred = [&options](const MetaCase& candidate) {
      Result<std::optional<MetaMismatch>> r =
          run_meta_case(candidate, options);
      return r.ok() && r->has_value();
    };
    const MetaShrinkResult shrunk = shrink_meta(c, pred);
    Result<std::optional<MetaMismatch>> minimal_run =
        run_meta_case(shrunk.minimal, options);
    const MetaMismatch& report =
        (minimal_run.ok() && minimal_run->has_value()) ? **minimal_run
                                                       : *mismatch;
    std::ostringstream os;
    os << "MetaCheck failure on path '" << report.path << "', op #"
       << report.op_index << ": " << report.detail
       << "\n  rerun with PDC_QC_SEED=" << seed
       << "\n  minimal " << describe_meta_case(shrunk.minimal)
       << "  (shrunk in " << shrunk.accepted_steps << " steps, "
       << shrunk.attempts << " attempts)";
    return Status::Internal(os.str());
  }
  return Status::Ok();
}

}  // namespace pdc::testing
