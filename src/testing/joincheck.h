// JoinCheck — seed-reproducible differential testing of the cross-object
// epsilon join (QueryService::join).
//
// The join's correctness claim mirrors QueryCheck's: the zone-shuffle
// exchange plan and the broadcast baseline are *transparent* distribution
// strategies — at any server count, pool width and eval strategy they must
// return byte-identical pairs, equal to the element-wise nested-loop
// oracle.  A JoinGen draws adversarial two-catalog cases: values sitting
// EXACTLY on k*zone_height zone edges (band-expansion boundaries), values
// exactly epsilon apart (the inclusive predicate boundary), duplicates
// within and across catalogs, non-finite values (skipped by candidate
// production and by the oracle alike), epsilon = 0 and
// epsilon = zone_height extremes, negative values (negative zone ids
// through the modulo ownership map), and optional per-side pre-filters.
//
// On mismatch the harness auto-shrinks both catalogs and reports a
// one-line `PDC_QC_SEED=<n>` reproduction (replayed through the joincheck
// entry point).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/rng.h"
#include "common/status.h"
#include "query/service.h"
#include "testing/querycheck.h"

namespace pdc::testing {

/// One generated join case: two f64 catalogs plus the join parameters.
/// Equality is bit-exact (memcmp) so cases containing NaN still satisfy
/// the seed-replay reproducibility contract.
struct JoinCase {
  std::uint64_t seed = 0;
  std::vector<double> a;  ///< build-side catalog (left)
  std::vector<double> b;  ///< probe-side catalog (right)
  double epsilon = 0.0;
  double zone_height = 1.0;
  std::uint64_t region_size_bytes = 256;
  ValueInterval filter_a;  ///< pre-filter on the build side
  ValueInterval filter_b;  ///< pre-filter on the probe side

  bool operator==(const JoinCase& o) const noexcept {
    const auto bits_eq = [](const std::vector<double>& x,
                            const std::vector<double>& y) {
      return x.size() == y.size() &&
             (x.empty() || std::memcmp(x.data(), y.data(),
                                       x.size() * sizeof(double)) == 0);
    };
    const auto iv_eq = [](const ValueInterval& x, const ValueInterval& y) {
      return std::memcmp(&x.lo, &y.lo, sizeof(double)) == 0 &&
             std::memcmp(&x.hi, &y.hi, sizeof(double)) == 0 &&
             x.lo_inclusive == y.lo_inclusive &&
             x.hi_inclusive == y.hi_inclusive;
    };
    return seed == o.seed && bits_eq(a, o.a) && bits_eq(b, o.b) &&
           std::memcmp(&epsilon, &o.epsilon, sizeof(double)) == 0 &&
           std::memcmp(&zone_height, &o.zone_height, sizeof(double)) == 0 &&
           region_size_bytes == o.region_size_bytes &&
           iv_eq(filter_a, o.filter_a) && iv_eq(filter_b, o.filter_b);
  }
};

/// Deterministic case generator: two JoinGens with the same seed produce
/// identical cases.
class JoinGen {
 public:
  explicit JoinGen(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  JoinCase draw_case();

 private:
  std::uint64_t seed_;
  Rng rng_;
};

/// Element-wise nested-loop oracle with exactly the server's semantics:
/// non-finite values are skipped on both sides, pre-filters use
/// ValueInterval::contains, the predicate is the exact
/// |va - vb| <= epsilon, and the output is ordered by
/// (zone_of(va), left_pos, right_pos) — the deterministic order the
/// client-side zone merge produces.
[[nodiscard]] std::vector<query::JoinPair> join_oracle(const JoinCase& c);

struct JoinRunOptions {
  /// Deployment sizes to sweep; every (server count x shuffle strategy x
  /// eval strategy) cell must match the oracle byte-for-byte.
  std::vector<std::uint32_t> server_counts{1, 2, 4};
  /// Candidate-production strategies to sweep.  Empty = full scan +
  /// histogram.
  std::vector<server::Strategy> eval_strategies;
  /// Evaluation pool width.  0 = derive per seed (1..8), the same
  /// derivation QueryCheck uses, overridable with PDC_QC_THREADS.
  std::uint32_t eval_threads = 0;
  /// Scratch directory root; each case uses a fresh subdirectory.
  std::string temp_root = "/tmp/pdc_joincheck";
};

/// Build the two-catalog environment for `c` and run the full sweep.
/// Returns the first mismatch (path names the diverging cell), nullopt
/// when every cell equals the oracle; non-Ok only on environment errors.
Result<std::optional<Mismatch>> run_join_case(const JoinCase& c,
                                              const JoinRunOptions& options);

struct JoinShrinkResult {
  JoinCase minimal;
  std::size_t accepted_steps = 0;
  std::size_t attempts = 0;
};

/// Greedily minimize `failing` while `still_fails` holds: halve either
/// catalog (front/back), drop single elements, widen the filters back to
/// the whole line.  Every accepted step strictly simplifies the case.
JoinShrinkResult shrink_join(JoinCase failing,
                             const std::function<bool(const JoinCase&)>&
                                 still_fails,
                             std::size_t max_attempts = 300);

/// Run `num_cases` generated cases starting at `base_seed` (case i uses
/// seed base_seed + i); PDC_QC_SEED / PDC_QC_CASES / PDC_QC_THREADS
/// override the arguments exactly as in run_querycheck.  On the first
/// mismatch, shrinks it and returns Internal with a replayable report.
Status run_joincheck(std::uint64_t base_seed, std::size_t num_cases,
                     const JoinRunOptions& options);

/// Render a JoinCase for failure reports.
[[nodiscard]] std::string describe_join_case(const JoinCase& c);

}  // namespace pdc::testing
