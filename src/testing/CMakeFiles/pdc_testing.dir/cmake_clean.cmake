file(REMOVE_RECURSE
  "CMakeFiles/pdc_testing.dir/invariants.cc.o"
  "CMakeFiles/pdc_testing.dir/invariants.cc.o.d"
  "CMakeFiles/pdc_testing.dir/querycheck.cc.o"
  "CMakeFiles/pdc_testing.dir/querycheck.cc.o.d"
  "libpdc_testing.a"
  "libpdc_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
