file(REMOVE_RECURSE
  "libpdc_testing.a"
)
