# Empty compiler generated dependencies file for pdc_testing.
# This may be replaced when dependencies are built.
