#include "testing/joincheck.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <memory>
#include <sstream>
#include <tuple>

#include "obj/object_store.h"
#include "pfs/pfs.h"
#include "server/zone_join.h"

namespace pdc::testing {
namespace {

/// Same seed->width derivation as QueryCheck's, so one PDC_QC_THREADS knob
/// bisects both batteries and a bare seed replay re-derives the width.
std::uint32_t effective_threads(const JoinRunOptions& options,
                                std::uint64_t seed) {
  if (options.eval_threads != 0) return options.eval_threads;
  return 1 +
         static_cast<std::uint32_t>(((seed * 0x9E3779B97F4A7C15ull) >> 60) % 8);
}

struct JoinEnv {
  std::unique_ptr<pfs::PfsCluster> cluster;
  std::unique_ptr<obj::ObjectStore> store;
  ObjectId left = kInvalidObjectId;
  ObjectId right = kInvalidObjectId;
};

Result<JoinEnv> build_join_env(const JoinCase& c, const std::string& temp_root) {
  static std::atomic<std::uint64_t> counter{0};
  JoinEnv env;
  std::ostringstream dir;
  dir << temp_root << "/case_" << c.seed << "_" << counter.fetch_add(1);
  std::error_code ec;
  std::filesystem::remove_all(dir.str(), ec);

  pfs::PfsConfig config;
  config.root_dir = dir.str();
  PDC_ASSIGN_OR_RETURN(env.cluster, pfs::PfsCluster::Create(config));
  env.store = std::make_unique<obj::ObjectStore>(*env.cluster);
  PDC_ASSIGN_OR_RETURN(ObjectId container,
                       env.store->create_container("joincheck"));

  obj::ImportOptions import;
  import.region_size_bytes = c.region_size_bytes;
  PDC_ASSIGN_OR_RETURN(
      env.left,
      env.store->import_object<double>(container, "join_a", c.a, import));
  PDC_ASSIGN_OR_RETURN(
      env.right,
      env.store->import_object<double>(container, "join_b", c.b, import));
  return env;
}

std::string pairs_summary(const std::vector<query::JoinPair>& want,
                          const std::vector<query::JoinPair>& got) {
  std::ostringstream os;
  os << "expected " << want.size() << " pairs, got " << got.size();
  for (std::size_t i = 0; i < std::max(want.size(), got.size()); ++i) {
    const bool w_ok = i < want.size();
    const bool g_ok = i < got.size();
    if (w_ok && g_ok && want[i].left_pos == got[i].left_pos &&
        want[i].right_pos == got[i].right_pos) {
      continue;
    }
    os << "; first divergence at rank " << i << " (expected ";
    if (w_ok) {
      os << "(" << want[i].left_pos << "," << want[i].right_pos << ")";
    } else {
      os << "<none>";
    }
    os << ", got ";
    if (g_ok) {
      os << "(" << got[i].left_pos << "," << got[i].right_pos << ")";
    } else {
      os << "<none>";
    }
    os << ")";
    break;
  }
  return os.str();
}

}  // namespace

JoinCase JoinGen::draw_case() {
  JoinCase c;
  c.seed = seed_;

  static constexpr double kZoneMenu[] = {0.25, 0.5, 1.0,
                                         2.0,  64.0, 1.0 / 1024.0};
  c.zone_height = kZoneMenu[rng_.bounded(6)];
  switch (rng_.bounded(5)) {
    case 0:
      c.epsilon = 0.0;  // exact-equality join
      break;
    case 1:
      c.epsilon = c.zone_height;  // widest admissible band (3 zones)
      break;
    case 2:
      c.epsilon = c.zone_height / 2.0;
      break;
    case 3:
      // Just under the admissibility edge: bands still span 3 zones but
      // the +/- epsilon arithmetic rounds close to zone boundaries.
      c.epsilon = std::nextafter(c.zone_height, 0.0);
      break;
    default:
      c.epsilon = rng_.uniform(0.0, c.zone_height);
      break;
  }
  static constexpr std::uint64_t kRegionMenu[] = {64, 256, 1024};
  c.region_size_bytes = kRegionMenu[rng_.bounded(3)];

  // Negative values matter: negative zone ids exercise floor semantics and
  // the ((z % p) + p) % p ownership map.
  const double lo = -32.0 * c.zone_height;
  const double hi = 32.0 * c.zone_height;
  const auto draw_catalog = [&](std::vector<double>& out, std::uint32_t n,
                                const std::vector<double>& other) {
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      double v = rng_.uniform(lo, hi);
      switch (rng_.bounded(16)) {
        case 0:
        case 1: {
          // Exactly on a k*zone_height zone edge: the case band expansion
          // and floor-based zone assignment must agree on.
          const std::int64_t k =
              static_cast<std::int64_t>(rng_.bounded(65)) - 32;
          v = static_cast<double>(k) * c.zone_height;
          break;
        }
        case 2: {
          // One ulp off a zone edge, both directions.
          const std::int64_t k =
              static_cast<std::int64_t>(rng_.bounded(65)) - 32;
          const double edge = static_cast<double>(k) * c.zone_height;
          v = std::nextafter(edge, rng_.bounded(2) == 0
                                       ? -std::numeric_limits<double>::infinity()
                                       : std::numeric_limits<double>::infinity());
          break;
        }
        case 3:
          if (!out.empty()) v = out[rng_.bounded(out.size())];
          break;
        case 4:
          // Cross-catalog duplicate: exact hit even at epsilon = 0.
          if (!other.empty()) v = other[rng_.bounded(other.size())];
          break;
        case 5:
          // Exactly epsilon away from an existing value on the other side:
          // the inclusive predicate boundary |va - vb| == epsilon.
          if (!other.empty()) {
            v = other[rng_.bounded(other.size())] +
                (rng_.bounded(2) == 0 ? c.epsilon : -c.epsilon);
          }
          break;
        case 6:
          // Just past the boundary: must NOT match that partner.
          if (!other.empty()) {
            const double base = other[rng_.bounded(other.size())];
            v = std::nextafter(base + c.epsilon,
                               std::numeric_limits<double>::infinity());
          }
          break;
        case 7: {
          // Non-finite: skipped by candidate production and the oracle.
          const std::uint64_t which = rng_.bounded(3);
          v = which == 0 ? std::numeric_limits<double>::quiet_NaN()
              : which == 1 ? std::numeric_limits<double>::infinity()
                           : -std::numeric_limits<double>::infinity();
          break;
        }
        default:
          break;  // keep the uniform draw
      }
      out.push_back(v);
    }
  };
  const std::uint32_t na = 1 + static_cast<std::uint32_t>(rng_.bounded(96));
  const std::uint32_t nb = 1 + static_cast<std::uint32_t>(rng_.bounded(96));
  draw_catalog(c.a, na, c.b);
  draw_catalog(c.b, nb, c.a);

  const auto draw_filter = [&](ValueInterval& filter) {
    if (rng_.bounded(4) != 0) return;  // usually unfiltered
    double f_lo = rng_.uniform(lo, hi);
    double f_hi = rng_.uniform(lo, hi);
    if (f_lo > f_hi) std::swap(f_lo, f_hi);
    filter.lo = f_lo;
    filter.hi = f_hi;
    filter.lo_inclusive = rng_.bounded(2) == 0;
    filter.hi_inclusive = rng_.bounded(2) == 0;
  };
  draw_filter(c.filter_a);
  draw_filter(c.filter_b);
  return c;
}

std::vector<query::JoinPair> join_oracle(const JoinCase& c) {
  std::vector<std::tuple<std::int64_t, std::uint64_t, std::uint64_t>> rows;
  for (std::size_t i = 0; i < c.a.size(); ++i) {
    const double va = c.a[i];
    if (!std::isfinite(va) || !c.filter_a.contains(va)) continue;
    for (std::size_t j = 0; j < c.b.size(); ++j) {
      const double vb = c.b[j];
      if (!std::isfinite(vb) || !c.filter_b.contains(vb)) continue;
      if (!(std::fabs(va - vb) <= c.epsilon)) continue;
      rows.emplace_back(server::zone_of(va, c.zone_height),
                        static_cast<std::uint64_t>(i),
                        static_cast<std::uint64_t>(j));
    }
  }
  std::sort(rows.begin(), rows.end());
  std::vector<query::JoinPair> pairs;
  pairs.reserve(rows.size());
  for (const auto& [zone, l, r] : rows) pairs.push_back({l, r});
  return pairs;
}

Result<std::optional<Mismatch>> run_join_case(const JoinCase& c,
                                              const JoinRunOptions& options) {
  // Invalid parameters are a harness bug (the generator only draws
  // admissible ones); surface them as setup errors, not mismatches.
  PDC_RETURN_IF_ERROR(server::validate_join_params(c.epsilon, c.zone_height));
  PDC_ASSIGN_OR_RETURN(JoinEnv env, build_join_env(c, options.temp_root));
  const std::vector<query::JoinPair> want = join_oracle(c);
  const std::uint32_t threads = effective_threads(options, c.seed);

  std::vector<server::Strategy> evals = options.eval_strategies;
  if (evals.empty()) {
    evals = {server::Strategy::kFullScan, server::Strategy::kHistogram};
  }
  static constexpr server::JoinStrategy kShuffles[] = {
      server::JoinStrategy::kZoneShuffle, server::JoinStrategy::kBroadcast};

  for (const std::uint32_t servers : options.server_counts) {
    for (const server::JoinStrategy shuffle : kShuffles) {
      for (const server::Strategy eval : evals) {
        std::ostringstream path;
        path << server::join_strategy_name(shuffle) << "/servers=" << servers
             << "/" << server::strategy_name(eval) << "/threads=" << threads;

        query::ServiceOptions service_options;
        service_options.num_servers = servers;
        service_options.strategy = eval;
        service_options.eval_threads = threads;
        query::QueryService service(*env.store, service_options);

        query::JoinSpec spec;
        spec.left = env.left;
        spec.right = env.right;
        spec.epsilon = c.epsilon;
        spec.zone_height = c.zone_height;
        spec.left_filter = c.filter_a;
        spec.right_filter = c.filter_b;
        spec.strategy = shuffle;

        const Result<query::JoinResult> got = service.join(spec);
        if (!got.ok()) {
          return std::optional<Mismatch>(Mismatch{
              0, path.str(),
              std::string("join failed: ") +
                  std::string(status_code_name(got.status().code())) + ": " +
                  got.status().message()});
        }
        const bool equal =
            got->pairs.size() == want.size() &&
            std::equal(got->pairs.begin(), got->pairs.end(), want.begin(),
                       [](const query::JoinPair& x, const query::JoinPair& y) {
                         return x.left_pos == y.left_pos &&
                                x.right_pos == y.right_pos;
                       });
        if (!equal) {
          return std::optional<Mismatch>(
              Mismatch{0, path.str(), pairs_summary(want, got->pairs)});
        }
      }
    }
  }
  return std::optional<Mismatch>();
}

JoinShrinkResult shrink_join(JoinCase failing,
                             const std::function<bool(const JoinCase&)>&
                                 still_fails,
                             std::size_t max_attempts) {
  JoinShrinkResult out;
  const auto whole_line = ValueInterval{};
  bool progressed = true;
  while (progressed && out.attempts < max_attempts) {
    progressed = false;
    const auto try_candidate = [&](JoinCase candidate) {
      if (candidate == failing) return;
      if (out.attempts >= max_attempts) return;
      ++out.attempts;
      if (still_fails(candidate)) {
        failing = std::move(candidate);
        ++out.accepted_steps;
        progressed = true;
      }
    };

    // Halve either catalog, keeping front or back.
    for (const bool left : {true, false}) {
      const std::vector<double>& src = left ? failing.a : failing.b;
      if (src.size() < 2) continue;
      for (const bool front : {true, false}) {
        JoinCase candidate = failing;
        std::vector<double>& dst = left ? candidate.a : candidate.b;
        const std::size_t half = src.size() / 2;
        if (front) {
          dst.assign(src.begin(), src.begin() + half);
        } else {
          dst.assign(src.begin() + half, src.end());
        }
        try_candidate(std::move(candidate));
        if (progressed) break;
      }
      if (progressed) break;
    }
    if (progressed) continue;

    // Drop single elements.
    for (const bool left : {true, false}) {
      const std::vector<double>& src = left ? failing.a : failing.b;
      for (std::size_t i = 0; i < src.size() && !progressed; ++i) {
        JoinCase candidate = failing;
        std::vector<double>& dst = left ? candidate.a : candidate.b;
        dst.erase(dst.begin() + static_cast<std::ptrdiff_t>(i));
        try_candidate(std::move(candidate));
      }
      if (progressed) break;
    }
    if (progressed) continue;

    // Widen the filters back to the whole line.
    for (const bool left : {true, false}) {
      JoinCase candidate = failing;
      (left ? candidate.filter_a : candidate.filter_b) = whole_line;
      try_candidate(std::move(candidate));
      if (progressed) break;
    }
  }
  out.minimal = std::move(failing);
  return out;
}

Status run_joincheck(std::uint64_t base_seed, std::size_t num_cases,
                     const JoinRunOptions& options) {
  JoinRunOptions run_options = options;
  if (const char* env = std::getenv("PDC_QC_SEED")) {
    base_seed = std::strtoull(env, nullptr, 10);
    num_cases = 1;
  }
  if (const char* env = std::getenv("PDC_QC_CASES")) {
    num_cases = std::strtoull(env, nullptr, 10);
    if (num_cases == 0) num_cases = 1;
  }
  if (const char* env = std::getenv("PDC_QC_THREADS")) {
    run_options.eval_threads = static_cast<std::uint32_t>(
        std::min(64ul, std::strtoul(env, nullptr, 10)));
  }

  for (std::size_t i = 0; i < num_cases; ++i) {
    const std::uint64_t seed = base_seed + i;
    JoinGen gen(seed);
    const JoinCase c = gen.draw_case();
    PDC_ASSIGN_OR_RETURN(std::optional<Mismatch> mismatch,
                         run_join_case(c, run_options));
    if (!mismatch) continue;

    const auto pred = [&run_options](const JoinCase& candidate) {
      Result<std::optional<Mismatch>> r = run_join_case(candidate, run_options);
      return r.ok() && r->has_value();
    };
    const JoinShrinkResult shrunk = shrink_join(c, pred);
    Result<std::optional<Mismatch>> minimal_run =
        run_join_case(shrunk.minimal, run_options);
    const Mismatch& report =
        (minimal_run.ok() && minimal_run->has_value()) ? **minimal_run
                                                       : *mismatch;
    std::ostringstream os;
    os << "JoinCheck failure on path '" << report.path
       << "': " << report.detail << "\n  PDC_QC_SEED=" << seed
       << " (re-run the joincheck battery with this environment variable to"
          " replay)\n  eval_threads="
       << effective_threads(run_options, shrunk.minimal.seed)
       << (run_options.eval_threads == 0 ? " (seed-derived)" : " (pinned)")
       << "\n  minimal " << describe_join_case(shrunk.minimal)
       << "\n  (shrunk in " << shrunk.accepted_steps << " steps, "
       << shrunk.attempts << " attempts)";
    return Status::Internal(os.str());
  }
  return Status::Ok();
}

std::string describe_join_case(const JoinCase& c) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "case{seed=" << c.seed << ", epsilon=" << c.epsilon
     << ", zone_height=" << c.zone_height
     << ", region_size=" << c.region_size_bytes << ", |a|=" << c.a.size()
     << ", |b|=" << c.b.size();
  const auto dump = [&os](const char* name, const std::vector<double>& v) {
    os << ", " << name << "=[";
    const std::size_t shown = std::min<std::size_t>(v.size(), 16);
    for (std::size_t i = 0; i < shown; ++i) {
      if (i != 0) os << ", ";
      os << v[i];
    }
    if (shown < v.size()) os << ", ... (" << v.size() - shown << " more)";
    os << "]";
  };
  dump("a", c.a);
  dump("b", c.b);
  const auto dump_filter = [&os](const char* name, const ValueInterval& f) {
    const ValueInterval whole;
    if (f.lo == whole.lo && f.hi == whole.hi && f.lo_inclusive &&
        f.hi_inclusive) {
      return;
    }
    os << ", " << name << "=" << (f.lo_inclusive ? "[" : "(") << f.lo << ", "
       << f.hi << (f.hi_inclusive ? "]" : ")");
  };
  dump_filter("filter_a", c.filter_a);
  dump_filter("filter_b", c.filter_b);
  os << "}";
  return os.str();
}

}  // namespace pdc::testing
