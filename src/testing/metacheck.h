// MetaCheck — seed-reproducible differential testing of the distributed
// metadata service against the MetaStore linear-scan oracle.
//
// The sharded affix-trie path (meta_shard.h + QueryService::meta_query)
// must return the EXACT posting lists MetaStore::query computes, for every
// condition kind (exact, numeric range, prefix/suffix affix), at every
// server count, through replicated updates, and in degraded mode.  The
// attribute generator is adversarial by construction: values share long
// common prefixes (trie edge-splitting), contain unicode-adjacent bytes
// (≥ 0x80 — bucket routing must be byte-exact, not ASCII-lucky), use `*`
// as a literal byte (the kind field is the wildcard, the value never is),
// and int64s straddle 2^53 (where the double fold of the numeric lane
// stops being exact — both paths must agree on the SAME fold).
//
// On mismatch the harness shrinks the failing case (dropping ops, objects,
// attributes and conjuncts) and prints a one-line PDC_QC_SEED repro.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "metadata/meta_store.h"

namespace pdc::testing {

// ------------------------------------------------------------------ model

/// A generated catalog: object i (id = first_object + i) carries the
/// attribute map objects[i].
struct MetaCatalog {
  ObjectId first_object = 1;
  std::vector<std::map<std::string, meta::MetaValue>> objects;
};

/// One step of a case: run a metadata query (conjunction of conditions)
/// or update one attribute of one object through the replicated path.
struct MetaOpSpec {
  bool is_update = false;
  std::vector<meta::MetaCondition> query;  ///< executed when !is_update
  std::uint32_t target = 0;                ///< object INDEX (is_update)
  std::string attribute;                   ///< update target attribute
  meta::MetaValue value;                   ///< update replacement value
};

struct MetaCase {
  std::uint64_t seed = 0;
  MetaCatalog catalog;
  std::vector<MetaOpSpec> ops;
};

// -------------------------------------------------------------- generator

class MetaGen {
 public:
  explicit MetaGen(std::uint64_t seed);

  /// Deterministic: two MetaGens with the same seed produce identical
  /// cases (values, queries and updates included).
  MetaCase draw_case();

 private:
  std::string draw_attribute_name();
  meta::MetaValue draw_value();
  std::string draw_pattern(const MetaCatalog& catalog);
  meta::MetaCondition draw_condition(const MetaCatalog& catalog);

  std::uint64_t seed_;
  Rng rng_;
};

// ----------------------------------------------------------------- runner

struct MetaMismatch {
  std::size_t op_index = 0;
  std::string path;    ///< which deployment diverged ("servers=4" etc.)
  std::string detail;  ///< human-readable expected-vs-got summary
};

struct MetaRunOptions {
  /// Deployments to differentially execute; the oracle is the (fresh per
  /// deployment) authoritative MetaStore itself.
  std::vector<std::uint32_t> server_counts{1, 2, 4};
  std::uint32_t vnodes = 32;
  std::uint32_t replicas = 2;
  /// Also run a fault-injected deployment at the LARGEST server count: one
  /// server is killed after a few requests.  Every op must still match the
  /// oracle exactly, or fail with a clean kUnavailable/kOverloaded —
  /// never a silently truncated posting list.
  bool degraded = false;
  /// Scratch directory root; each run uses a fresh subdirectory (the
  /// service needs a PFS-backed object store even though no data objects
  /// exist in a metadata-only case).
  std::string temp_root = "/tmp/pdc_metacheck";
};

/// Replay `c` against every configured deployment, comparing each query op
/// to MetaStore::query on the deployment's authoritative store.  Returns
/// the first mismatch, or nullopt; non-Ok only on harness/setup errors.
Result<std::optional<MetaMismatch>> run_meta_case(const MetaCase& c,
                                                  const MetaRunOptions& options);

// ---------------------------------------------------------------- shrinker

struct MetaShrinkResult {
  MetaCase minimal;
  std::size_t accepted_steps = 0;
  std::size_t attempts = 0;
};

/// Greedily minimize `failing` while `still_fails` holds: drop ops, halve
/// the catalog, drop attributes, drop conjuncts.
MetaShrinkResult shrink_meta(
    MetaCase failing, const std::function<bool(const MetaCase&)>& still_fails,
    std::size_t max_attempts = 300);

// ------------------------------------------------------------ entry point

/// Run `num_cases` generated cases starting at `base_seed`; shrink and
/// report (with a PDC_QC_SEED repro line) on the first mismatch.
/// PDC_QC_SEED / PDC_QC_CASES environment variables override the
/// arguments, exactly as in run_querycheck.
Status run_metacheck(std::uint64_t base_seed, std::size_t num_cases,
                     const MetaRunOptions& options);

/// Render a MetaCase for failure reports (non-printable value bytes are
/// hex-escaped so unicode-adjacent reproductions survive a terminal).
[[nodiscard]] std::string describe_meta_case(const MetaCase& c);

}  // namespace pdc::testing
