#include "testing/querycheck.h"

#include <algorithm>
#include <atomic>
#include <span>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "common/interval.h"
#include "kernels/kernels.h"
#include "obs/trace.h"
#include "pfs/pfs.h"
#include "query/planner.h"
#include "query/query.h"
#include "query/service.h"
#include "rpc/fault.h"
#include "sortrep/sorted_replica.h"
#include "testing/invariants.h"
#include "workloads/vpic.h"

namespace pdc::testing {

namespace {

constexpr std::uint32_t kNumOps = 5;  // kGT..kEQ

float finite_or_zero(float v) { return std::isfinite(v) ? v : 0.0f; }

/// Finite min/max of a column ([0,1] fallback for all-non-finite columns).
std::pair<double, double> finite_range(const std::vector<float>& column) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const float v : column) {
    if (!std::isfinite(v)) continue;
    lo = std::min(lo, static_cast<double>(v));
    hi = std::max(hi, static_cast<double>(v));
  }
  if (lo > hi) return {0.0, 1.0};
  return {lo, hi};
}

void truncate_dataset(Dataset& dataset, std::uint64_t new_size) {
  for (auto& column : dataset.columns) {
    if (column.size() > new_size) {
      column.resize(static_cast<std::size_t>(new_size));
    }
  }
}

/// Elements per region for a float dataset (region_size_bytes floor 4).
std::uint64_t elements_per_region(const Dataset& dataset) {
  return std::max<std::uint64_t>(1, dataset.region_size_bytes / sizeof(float));
}

std::uint64_t num_regions(const Dataset& dataset) {
  const std::uint64_t per = elements_per_region(dataset);
  return (dataset.size() + per - 1) / per;
}

}  // namespace

// ---------------------------------------------------------------- QueryGen

Dataset QueryGen::draw_dataset() {
  Dataset dataset;
  const std::uint64_t shape = rng_.bounded(6);
  switch (shape) {
    case 0: {  // tiny: down to one element, sometimes one element per region
      const std::uint64_t n = 1 + rng_.bounded(64);
      dataset.region_size_bytes = rng_.bounded(2) == 0 ? 4 : 64;
      dataset.names = {"key"};
      std::vector<float> key;
      key.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        key.push_back(static_cast<float>(rng_.uniform(-4.0, 4.0)));
      }
      dataset.columns.push_back(std::move(key));
      break;
    }
    case 1: {  // VPIC-shaped: spatially ordered energy + position
      const std::uint64_t n = 128 + rng_.bounded(384);
      const workloads::VpicConfig config =
          workloads::tiny_vpic_config(n, rng_.next_u64());
      workloads::VpicData data = workloads::generate_vpic(config);
      dataset.region_size_bytes = 256ull << rng_.bounded(3);
      dataset.names = {"key", "x"};
      dataset.columns.push_back(std::move(data.energy));
      dataset.columns.push_back(std::move(data.x));
      break;
    }
    case 2: {  // constant key column (degenerate histograms and bins)
      const std::uint64_t n = 32 + rng_.bounded(200);
      dataset.region_size_bytes = 128;
      const float c = static_cast<float>(rng_.uniform(-10.0, 10.0));
      dataset.names = {"key", "aux"};
      dataset.columns.emplace_back(static_cast<std::size_t>(n), c);
      std::vector<float> aux;
      aux.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        aux.push_back(static_cast<float>(rng_.uniform(0.0, 1.0)));
      }
      dataset.columns.push_back(std::move(aux));
      break;
    }
    case 3: {  // values straddling precision-2 bin edges (2.0, 2.1, ...)
      const std::uint64_t n = 64 + rng_.bounded(256);
      dataset.region_size_bytes = 256;
      dataset.names = {"key"};
      std::vector<float> key;
      key.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        float v = static_cast<float>(
            static_cast<double>(20 + rng_.bounded(17)) / 10.0);
        const std::uint64_t nudge = rng_.bounded(4);
        if (nudge == 1) {
          v = std::nextafter(v, std::numeric_limits<float>::infinity());
        } else if (nudge == 2) {
          v = std::nextafter(v, -std::numeric_limits<float>::infinity());
        }
        key.push_back(v);
      }
      dataset.columns.push_back(std::move(key));
      break;
    }
    case 4: {  // NaN / ±inf sprinkled into a non-key column
      const std::uint64_t n = 64 + rng_.bounded(256);
      dataset.region_size_bytes = 256;
      dataset.names = {"key", "special"};
      std::vector<float> key, special;
      key.reserve(n);
      special.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        key.push_back(static_cast<float>(rng_.uniform(0.0, 100.0)));
        const std::uint64_t kind = rng_.bounded(8);
        if (kind == 0) {
          special.push_back(std::numeric_limits<float>::quiet_NaN());
        } else if (kind == 1) {
          special.push_back(rng_.bounded(2) == 0
                                ? std::numeric_limits<float>::infinity()
                                : -std::numeric_limits<float>::infinity());
        } else {
          special.push_back(static_cast<float>(rng_.uniform(-5.0, 5.0)));
        }
      }
      dataset.columns.push_back(std::move(key));
      dataset.columns.push_back(std::move(special));
      break;
    }
    default: {  // multi-column uniform
      const std::uint64_t n = 64 + rng_.bounded(512);
      dataset.region_size_bytes = 128ull << rng_.bounded(3);
      dataset.names = {"key", "a", "b"};
      for (int c = 0; c < 3; ++c) {
        std::vector<float> column;
        column.reserve(n);
        const double lo = rng_.uniform(-100.0, 0.0);
        const double hi = lo + rng_.uniform(1.0, 200.0);
        for (std::uint64_t i = 0; i < n; ++i) {
          column.push_back(static_cast<float>(rng_.uniform(lo, hi)));
        }
        dataset.columns.push_back(std::move(column));
      }
      break;
    }
  }
  return dataset;
}

QuerySpec QueryGen::draw_query(const Dataset& dataset) {
  QuerySpec query;
  const std::uint64_t n = dataset.size();
  const std::size_t num_terms = 1 + (rng_.bounded(4) == 0 ? 1 : 0);
  for (std::size_t t = 0; t < num_terms; ++t) {
    TermSpec term;
    const std::size_t num_leaves = 1 + rng_.bounded(3);
    for (std::size_t l = 0; l < num_leaves; ++l) {
      LeafSpec leaf;
      leaf.column =
          static_cast<std::uint32_t>(rng_.bounded(dataset.columns.size()));
      leaf.op = static_cast<QueryOp>(rng_.bounded(kNumOps));
      const std::vector<float>& column = dataset.columns[leaf.column];
      const auto [lo, hi] = finite_range(column);
      switch (rng_.bounded(4)) {
        case 0:  // exact element value (bin-edge and equality stress)
          leaf.value = static_cast<double>(
              finite_or_zero(column[rng_.bounded(std::max<std::uint64_t>(
                  1, column.size()))]));
          break;
        case 1:  // somewhere inside the value range
          leaf.value = rng_.uniform(lo, hi + 1e-9);
          break;
        case 2:  // short-decimal constant, as a user would type
          leaf.value =
              static_cast<double>(static_cast<std::int64_t>(rng_.bounded(201)) -
                                  100) /
              10.0;
          break;
        default:  // beyond the range: empty or full result sets
          leaf.value = rng_.bounded(2) == 0 ? lo - 1.0 - rng_.bounded(5)
                                            : hi + 1.0 + rng_.bounded(5);
          break;
      }
      term.leaves.push_back(leaf);
    }
    query.terms.push_back(std::move(term));
  }
  if (n > 0 && rng_.bounded(5) == 0) {
    const std::uint64_t offset = rng_.bounded(n);
    query.region = {offset, 1 + rng_.bounded(n - offset)};
  }
  return query;
}

Case QueryGen::draw_case() {
  Case c;
  c.seed = seed_;
  c.dataset = draw_dataset();
  const std::size_t num_queries = 1 + rng_.bounded(3);
  for (std::size_t i = 0; i < num_queries; ++i) {
    c.queries.push_back(draw_query(c.dataset));
  }
  return c;
}

WriteSpec QueryGen::draw_write(const Dataset& dataset) {
  WriteSpec w;
  const std::uint64_t n = dataset.size();
  w.is_append = rng_.bounded(3) == 0;
  if (w.is_append) {
    // Rectangular: the same count for every column so the objects keep
    // identical dimensions (a query-plan precondition).
    const std::uint64_t count = 1 + rng_.bounded(48);
    for (std::size_t col = 0; col < dataset.columns.size(); ++col) {
      const auto [lo, hi] = finite_range(dataset.columns[col]);
      std::vector<float> vals;
      vals.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        if (col != 0 && rng_.bounded(10) == 0) {
          // Specials in non-key columns only (the key stays finite so the
          // sorted replica remains rebuildable).
          vals.push_back(rng_.bounded(3) == 0
                             ? std::numeric_limits<float>::quiet_NaN()
                             : (rng_.bounded(2) == 0
                                    ? std::numeric_limits<float>::infinity()
                                    : -std::numeric_limits<float>::infinity()));
        } else if (rng_.bounded(4) == 0) {
          // Outside the historical range: appended histograms/bins must
          // actually extend coverage, not clamp.
          vals.push_back(static_cast<float>(hi + 1.0 + rng_.uniform(0.0, 4.0)));
        } else {
          vals.push_back(static_cast<float>(rng_.uniform(lo, hi + 1e-9)));
        }
      }
      w.values.push_back(std::move(vals));
    }
    return w;
  }
  w.column = static_cast<std::uint32_t>(rng_.bounded(dataset.columns.size()));
  const std::vector<float>& column = dataset.columns[w.column];
  const auto [lo, hi] = finite_range(column);
  w.extent.offset = rng_.bounded(n);
  w.extent.count =
      1 + rng_.bounded(std::min<std::uint64_t>(n - w.extent.offset, 32));
  std::vector<float> vals;
  vals.reserve(static_cast<std::size_t>(w.extent.count));
  for (std::uint64_t i = 0; i < w.extent.count; ++i) {
    switch (rng_.bounded(5)) {
      case 0:  // exact existing value (bin-edge / equality stress)
        vals.push_back(finite_or_zero(column[rng_.bounded(column.size())]));
        break;
      case 1:  // beyond the indexed range: forces the delta-WAH sidecar to
               // reject the value and the region to fall back to scans
        vals.push_back(static_cast<float>(
            rng_.bounded(2) == 0 ? lo - 1.0 - rng_.bounded(5)
                                 : hi + 1.0 + rng_.bounded(5)));
        break;
      case 2:  // specials (non-key columns; key writes stay finite)
        if (w.column != 0) {
          vals.push_back(rng_.bounded(3) == 0
                             ? std::numeric_limits<float>::quiet_NaN()
                             : (rng_.bounded(2) == 0
                                    ? std::numeric_limits<float>::infinity()
                                    : -std::numeric_limits<float>::infinity()));
          break;
        }
        [[fallthrough]];
      default:  // inside the historical range: delta-WAH absorbable
        vals.push_back(static_cast<float>(rng_.uniform(lo, hi + 1e-9)));
        break;
    }
  }
  w.values.push_back(std::move(vals));
  return w;
}

Case QueryGen::draw_write_case() {
  Case c;
  c.seed = seed_;
  c.dataset = draw_dataset();
  // Queries are drawn against the MODEL state at their point in the
  // sequence, so their constants chase the mutated data.
  Dataset model = c.dataset;
  const std::size_t num_ops = 4 + rng_.bounded(7);
  bool wrote = false;
  for (std::size_t i = 0; i < num_ops; ++i) {
    OpSpec op;
    op.is_write = rng_.bounded(2) == 0;
    if (op.is_write) {
      op.write = draw_write(model);
      apply_write_model(model, op.write);  // generator writes always fit
      wrote = true;
    } else {
      op.query = draw_query(model);
    }
    c.ops.push_back(std::move(op));
  }
  if (!wrote) {
    OpSpec op;
    op.is_write = true;
    op.write = draw_write(model);
    apply_write_model(model, op.write);
    c.ops.push_back(std::move(op));
  }
  if (c.ops.back().is_write) {
    // Always end on a query: the final mutation prefix gets checked.
    OpSpec op;
    op.query = draw_query(model);
    c.ops.push_back(std::move(op));
  }
  return c;
}

// ------------------------------------------------------------------ oracle

std::vector<std::uint64_t> oracle_hits(const Dataset& dataset,
                                       const QuerySpec& query) {
  std::vector<std::uint64_t> hits;
  const std::uint64_t n = dataset.size();
  const bool constrained = !query.region.empty();
  for (std::uint64_t i = 0; i < n; ++i) {
    if (constrained && !query.region.contains(i)) continue;
    bool any = false;
    for (const TermSpec& term : query.terms) {
      bool all = true;
      for (const LeafSpec& leaf : term.leaves) {
        const ValueInterval interval =
            ValueInterval::from_op(leaf.op, leaf.value);
        if (!interval.contains(
                static_cast<double>(dataset.columns[leaf.column][i]))) {
          all = false;
          break;
        }
      }
      if (all) {
        any = true;
        break;
      }
    }
    if (any) hits.push_back(i);
  }
  return hits;
}

bool apply_write_model(Dataset& dataset, const WriteSpec& write) {
  if (write.is_append) {
    if (write.values.empty() ||
        write.values.size() != dataset.columns.size()) {
      return false;
    }
    const std::size_t count = write.values.front().size();
    if (count == 0) return false;
    for (const std::vector<float>& v : write.values) {
      if (v.size() != count) return false;
    }
    for (std::size_t col = 0; col < dataset.columns.size(); ++col) {
      dataset.columns[col].insert(dataset.columns[col].end(),
                                  write.values[col].begin(),
                                  write.values[col].end());
    }
    return true;
  }
  if (write.values.size() != 1 || write.column >= dataset.columns.size()) {
    return false;
  }
  const std::vector<float>& vals = write.values.front();
  if (write.extent.count == 0 || vals.size() != write.extent.count ||
      write.extent.end() > dataset.size()) {
    return false;
  }
  std::copy(vals.begin(), vals.end(),
            dataset.columns[write.column].begin() +
                static_cast<std::ptrdiff_t>(write.extent.offset));
  return true;
}

// ------------------------------------------------------------------ runner

RunOptions RunOptions::all_paths() {
  RunOptions options;
  options.strategies = {
      server::Strategy::kFullScan,
      server::Strategy::kHistogram,
      server::Strategy::kHistogramIndex,
      server::Strategy::kSortedHistogram,
      server::Strategy::kAdaptive,
  };
  return options;
}

Result<BuiltEnv> build_dataset_env(const Dataset& dataset, std::uint64_t tag,
                                   const std::string& temp_root,
                                   bool want_index, bool want_replica) {
  static std::atomic<std::uint64_t> counter{0};
  BuiltEnv env;
  std::ostringstream dir;
  dir << temp_root << "/case_" << tag << "_" << counter.fetch_add(1);
  env.dir = dir.str();
  std::error_code ec;
  std::filesystem::remove_all(env.dir, ec);

  pfs::PfsConfig config;
  config.root_dir = env.dir;
  PDC_ASSIGN_OR_RETURN(env.cluster, pfs::PfsCluster::Create(config));
  env.store = std::make_unique<obj::ObjectStore>(*env.cluster);
  PDC_ASSIGN_OR_RETURN(ObjectId container,
                       env.store->create_container("querycheck"));

  obj::ImportOptions import;
  import.region_size_bytes = dataset.region_size_bytes;
  for (std::size_t col = 0; col < dataset.columns.size(); ++col) {
    PDC_ASSIGN_OR_RETURN(
        ObjectId id,
        env.store->import_object<float>(container, dataset.names[col],
                                        dataset.columns[col], import));
    env.object_ids.push_back(id);
    if (want_index) {
      PDC_RETURN_IF_ERROR(env.store->build_bitmap_index(id));
    }
  }
  if (want_replica) {
    PDC_RETURN_IF_ERROR(
        sortrep::build_sorted_replica(*env.store, env.object_ids.front())
            .status());
  }
  return env;
}

query::QueryPtr build_query_from_spec(const QuerySpec& spec,
                                      const std::vector<ObjectId>& objects) {
  query::QueryPtr root;
  for (const TermSpec& term : spec.terms) {
    query::QueryPtr conj;
    for (const LeafSpec& leaf : term.leaves) {
      conj = query::q_and(
          std::move(conj),
          query::create(objects[leaf.column], leaf.op, leaf.value));
    }
    root = query::q_or(std::move(root), std::move(conj));
  }
  if (!spec.region.empty()) {
    root = query::set_region(root, spec.region);
  }
  return root;
}

namespace {

using Env = BuiltEnv;

Result<Env> build_env(const Case& c, const RunOptions& options,
                      bool want_index, bool want_replica) {
  return build_dataset_env(c.dataset, c.seed, options.temp_root, want_index,
                           want_replica);
}

query::QueryPtr build_query(const QuerySpec& spec,
                            const std::vector<ObjectId>& objects) {
  return build_query_from_spec(spec, objects);
}

std::string positions_summary(const std::vector<std::uint64_t>& want,
                              const std::vector<std::uint64_t>& got) {
  std::ostringstream os;
  os << "expected " << want.size() << " hits, got " << got.size();
  for (std::size_t i = 0; i < std::max(want.size(), got.size()); ++i) {
    const bool w_ok = i < want.size();
    const bool g_ok = i < got.size();
    if (w_ok && g_ok && want[i] == got[i]) continue;
    os << "; first divergence at rank " << i << " (expected ";
    if (w_ok) {
      os << want[i];
    } else {
      os << "<none>";
    }
    os << ", got ";
    if (g_ok) {
      os << got[i];
    } else {
      os << "<none>";
    }
    os << ")";
    break;
  }
  return os.str();
}

/// PDC_QC_TRACE=1: every generated case also runs its get_num_hits traced
/// and checks the span tree (well-formedness + trace-vs-OpStats stage-time
/// reconciliation) on top of the differential result comparison.
bool trace_checks_enabled() {
  const char* env = std::getenv("PDC_QC_TRACE");
  return env != nullptr && env[0] == '1';
}

/// Validate the trace of the op that just finished on `service` against its
/// OpStats.  Fault-injected paths use lenient nesting: retried server work
/// may straddle the client's attempt windows.  On failure the offending
/// trace is dumped as Chrome JSON for post-mortem and the message returned.
std::optional<std::string> check_op_trace(query::QueryService& service,
                                          bool lenient_nesting) {
  const std::shared_ptr<const obs::Trace> trace = service.last_trace();
  if (trace == nullptr) return "traced operation published no trace";
  obs::ValidateOptions vopts;
  vopts.require_nesting = !lenient_nesting;
  Status st = obs::validate_trace(*trace, vopts);
  if (st.ok()) st = check_trace_stats(*trace, service.last_stats());
  if (st.ok()) return std::nullopt;
  const std::string dump =
      "/tmp/pdc_qc_trace_" + std::to_string(trace->trace_id) + ".json";
  std::ofstream out(dump);
  out << obs::chrome_trace_json(*trace);
  return st.ToString() + " (trace JSON dumped to " + dump + ")";
}

/// Differentially check ONE query against the oracle hits `want` computed
/// on `dataset` (write mode: the model with the mutation prefix applied).
/// Fills `mismatch` and returns true on the first divergence.
Result<bool> check_query(const Dataset& dataset, const QuerySpec& spec,
                         std::size_t op_index, const Env& env,
                         query::QueryService& service, const std::string& path,
                         bool is_sorted, const std::vector<std::uint64_t>& want,
                         std::optional<Mismatch>& mismatch) {
  const bool traced = trace_checks_enabled();
  const std::size_t qi = op_index;
  {
    const query::QueryPtr q = build_query(spec, env.object_ids);

    Result<std::uint64_t> nhits =
        service.get_num_hits(q, query::QueryOptions{.trace = traced});
    if (!nhits.ok()) {
      mismatch = Mismatch{qi, path,
                          "get_num_hits failed: " + nhits.status().ToString()};
      return true;
    }
    if (traced) {
      // Check before the next operation overwrites last_stats()/last_trace().
      const std::optional<std::string> trace_error =
          check_op_trace(service, /*lenient_nesting=*/path == "degraded");
      if (trace_error.has_value()) {
        mismatch = Mismatch{qi, path + ":trace", *trace_error};
        return true;
      }
    }
    if (*nhits != want.size()) {
      std::ostringstream os;
      os << "get_num_hits = " << *nhits << ", oracle = " << want.size();
      mismatch = Mismatch{qi, path, os.str()};
      return true;
    }

    Result<query::Selection> sel = service.get_selection(q);
    if (!sel.ok()) {
      mismatch = Mismatch{qi, path,
                          "get_selection failed: " + sel.status().ToString()};
      return true;
    }
    if (sel->num_hits != want.size() || sel->positions != want) {
      mismatch =
          Mismatch{qi, path, positions_summary(want, sel->positions)};
      return true;
    }

    // PDC-A determinism: per-region choices are a pure function of (region
    // histogram, interval, knobs), so re-running the identical query must
    // reproduce the exact choice tally and positions — pool width, steal
    // order and cache state must not leak into the plan.
    if (service.options().strategy == server::Strategy::kAdaptive) {
      const query::OpStats first = service.last_stats();
      Result<query::Selection> again = service.get_selection(q);
      if (!again.ok()) {
        mismatch = Mismatch{qi, path, "adaptive re-run failed: " +
                                          again.status().ToString()};
        return true;
      }
      const query::OpStats second = service.last_stats();
      if (again->positions != sel->positions ||
          second.regions_scanned != first.regions_scanned ||
          second.regions_indexed != first.regions_indexed ||
          second.regions_allhit != first.regions_allhit) {
        std::ostringstream os;
        os << "adaptive choices not deterministic: run1 (scan="
           << first.regions_scanned << ", index=" << first.regions_indexed
           << ", allhit=" << first.regions_allhit << ") run2 (scan="
           << second.regions_scanned << ", index=" << second.regions_indexed
           << ", allhit=" << second.regions_allhit << ")";
        mismatch = Mismatch{qi, path + ":determinism", os.str()};
        return true;
      }
    }

    // Fetched bytes must be bit-identical too, for every column (NaN
    // payloads included — hence memcmp, not float compare).
    for (std::size_t col = 0; col < dataset.columns.size(); ++col) {
      std::vector<float> got(want.size());
      const Status st =
          service.get_data<float>(env.object_ids[col], *sel, got,
                                  query::GetDataMode::kByPositions);
      if (!st.ok()) {
        mismatch = Mismatch{qi, path, "get_data failed: " + st.ToString()};
        return true;
      }
      std::vector<float> exp;
      exp.reserve(want.size());
      for (const std::uint64_t pos : want) {
        exp.push_back(dataset.columns[col][pos]);
      }
      if (!exp.empty() &&
          std::memcmp(got.data(), exp.data(), exp.size() * sizeof(float)) !=
              0) {
        mismatch = Mismatch{
            qi, path,
            "get_data bytes differ on column " + dataset.names[col]};
        return true;
      }
    }

    // Sorted strategy: sequential replica reads return the same multiset,
    // value-sorted.
    std::uint64_t extent_hits = 0;
    for (const auto& [server, extents] : sel->sorted_extents) {
      (void)server;
      for (const Extent1D& e : extents) extent_hits += e.count;
    }
    if (is_sorted && sel->replica_id != kInvalidObjectId &&
        extent_hits == want.size() && !want.empty()) {
      std::vector<float> got(want.size());
      const Status st =
          service.get_data<float>(env.object_ids.front(), *sel, got,
                                  query::GetDataMode::kFromReplica);
      if (!st.ok()) {
        mismatch =
            Mismatch{qi, path, "replica get_data failed: " + st.ToString()};
        return true;
      }
      std::vector<float> exp;
      exp.reserve(want.size());
      for (const std::uint64_t pos : want) {
        exp.push_back(dataset.columns.front()[pos]);
      }
      std::sort(exp.begin(), exp.end());  // key column is NaN-free
      if (std::memcmp(got.data(), exp.data(), exp.size() * sizeof(float)) !=
          0) {
        mismatch = Mismatch{qi, path, "replica-read bytes differ"};
        return true;
      }
    }
  }
  return false;
}

/// Run all queries of `c` through one service; fills `mismatch` and returns
/// true on the first divergence.
Result<bool> run_service(const Case& c, const Env& env,
                         query::QueryService& service, const std::string& path,
                         bool is_sorted,
                         const std::vector<std::vector<std::uint64_t>>& expected,
                         std::optional<Mismatch>& mismatch) {
  for (std::size_t qi = 0; qi < c.queries.size(); ++qi) {
    PDC_ASSIGN_OR_RETURN(
        const bool failed,
        check_query(c.dataset, c.queries[qi], qi, env, service, path,
                    is_sorted, expected[qi], mismatch));
    if (failed) return true;
  }
  return false;
}

[[nodiscard]] std::span<const std::uint8_t> float_bytes(
    const std::vector<float>& values) {
  return {reinterpret_cast<const std::uint8_t*>(values.data()),
          values.size() * sizeof(float)};
}

/// Replay the write-interleaved op sequence of `c` through one service,
/// maintaining the element-wise oracle model in lockstep; every query op
/// is checked against the oracle on the mutation prefix applied so far.
Result<bool> run_write_ops(const Case& c, const Env& env,
                           query::QueryService& service,
                           const std::string& path, bool is_sorted,
                           std::optional<Mismatch>& mismatch) {
  Dataset model = c.dataset;
  for (std::size_t i = 0; i < c.ops.size(); ++i) {
    const OpSpec& op = c.ops[i];
    if (!op.is_write) {
      const std::vector<std::uint64_t> want = oracle_hits(model, op.query);
      PDC_ASSIGN_OR_RETURN(const bool failed,
                           check_query(model, op.query, i, env, service, path,
                                       is_sorted, want, mismatch));
      if (failed) return true;
      continue;
    }
    // Fit check and model application are one step: a write that no longer
    // fits (shrinker-truncated dataset) is skipped on BOTH sides — the
    // decision is a pure function of the model, so model and store never
    // diverge.
    if (!apply_write_model(model, op.write)) continue;
    if (op.write.is_append) {
      for (std::size_t col = 0; col < op.write.values.size(); ++col) {
        const auto report =
            service.append(env.object_ids[col], float_bytes(op.write.values[col]));
        if (!report.ok()) {
          mismatch = Mismatch{i, path, "append failed on column " +
                                           model.names[col] + ": " +
                                           report.status().ToString()};
          return true;
        }
      }
    } else {
      const auto report =
          service.overwrite(env.object_ids[op.write.column], op.write.extent,
                            float_bytes(op.write.values.front()));
      if (!report.ok()) {
        mismatch = Mismatch{i, path,
                            "overwrite failed: " + report.status().ToString()};
        return true;
      }
    }
  }
  return false;
}

}  // namespace

static std::uint32_t effective_eval_threads(const RunOptions& options,
                                            std::uint64_t seed) {
  if (options.eval_threads != 0) return options.eval_threads;
  // Derived deterministically from the seed so a replayed PDC_QC_SEED runs
  // with the same pool width; spreads over 1..8 including the 1-worker
  // pool (pooled code path, serial schedule).
  return 1 +
         static_cast<std::uint32_t>(((seed * 0x9E3779B97F4A7C15ull) >> 60) % 8);
}

/// Kernel backend for a case: alternate scalar / best-SIMD per seed so the
/// full strategy matrix differentials the kernels end-to-end against the
/// oracle (half the cases re-prove the scalar path, half the SIMD path).
/// An explicit PDC_KERNELS pin wins — the usual repro / bisect knob — and
/// a replayed PDC_QC_SEED re-derives the same backend automatically.
static kernels::Backend effective_kernel_backend(std::uint64_t seed) {
  // An enclosing ScopedBackend (pinned-regression sweeps) or an explicit
  // PDC_KERNELS pin wins over the per-seed derivation.
  if (kernels::has_backend_override() ||
      std::getenv("PDC_KERNELS") != nullptr) {
    return kernels::active_backend();
  }
  if (((seed * 0xD1B54A32D192ED03ull) >> 62) & 1) {
    return kernels::Backend::kScalar;
  }
  // Best available: the override setter downgrades to scalar on hardware
  // without AVX2, so this is safe everywhere.
  return kernels::Backend::kAvx2;
}

/// Write-mode accelerator maintenance knobs for a case: explicit pins
/// (RunOptions or PDC_QC_COMPACT / PDC_QC_REBUILD) win; otherwise derived
/// from the seed so the battery cycles disabled / aggressive / default
/// coverage and a replayed PDC_QC_SEED re-derives the same knobs.
struct WriteKnobs {
  std::uint64_t compact = 0;
  std::uint64_t rebuild = 0;
};

static WriteKnobs effective_write_knobs(const RunOptions& options,
                                        std::uint64_t seed) {
  WriteKnobs k{options.compact_threshold, options.replica_rebuild_threshold};
  if (const char* env = std::getenv("PDC_QC_COMPACT")) {
    k.compact = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("PDC_QC_REBUILD")) {
    k.rebuild = std::strtoull(env, nullptr, 10);
  }
  if (k.compact == ~0ull) {
    // 0 = never compact (pure base+delta combine reads), 1 = compact on
    // every absorbed write (rebuild path), 8 = threshold crossing.
    static constexpr std::uint64_t kCompact[3] = {0, 1, 8};
    k.compact = kCompact[((seed * 0xBF58476D1CE4E5B9ull) >> 59) % 3];
  }
  if (k.rebuild == ~0ull) {
    // 0 = never rebuild (merged delta-log reads only), 1 = rebuild after
    // every write, 16 = threshold crossing.
    static constexpr std::uint64_t kRebuild[3] = {0, 1, 16};
    k.rebuild = kRebuild[((seed * 0x94D049BB133111EBull) >> 59) % 3];
  }
  return k;
}

/// Write-interleaved evaluation of one case: every strategy (plus the
/// degraded mode) replays the FULL op sequence on a fresh environment —
/// writes go through the kTransferWrite RPC path with incremental index
/// maintenance — and must match the element-wise oracle after every
/// mutation prefix.  Indexes and the sorted replica are always built:
/// write-path maintenance must keep them correct (or correctly marked
/// stale) regardless of which strategy reads them.
static Result<std::optional<Mismatch>> run_write_case(
    const Case& c, const RunOptions& options) {
  std::optional<Mismatch> mismatch;
  if (c.dataset.size() == 0 || c.ops.empty()) return mismatch;
  for (const std::vector<float>& column : c.dataset.columns) {
    if (column.size() != c.dataset.size()) {
      return Status::InvalidArgument("ragged dataset columns");
    }
  }

  const std::uint32_t eval_threads = effective_eval_threads(options, c.seed);
  const kernels::ScopedBackend kernel_backend(
      effective_kernel_backend(c.seed));
  const WriteKnobs knobs = effective_write_knobs(options, c.seed);

  const auto drop_env = [](Env& env) {
    env.store.reset();
    env.cluster.reset();
    std::error_code ec;
    std::filesystem::remove_all(env.dir, ec);
  };

  for (const server::Strategy strategy : options.strategies) {
    PDC_ASSIGN_OR_RETURN(Env env, build_env(c, options, /*want_index=*/true,
                                            /*want_replica=*/true));
    if (options.post_build) {
      PDC_RETURN_IF_ERROR(options.post_build(*env.store, env.object_ids));
    }
    query::ServiceOptions service_options;
    service_options.num_servers = options.num_servers;
    service_options.strategy = strategy;
    service_options.eval_threads = eval_threads;
    service_options.compact_threshold = knobs.compact;
    service_options.replica_rebuild_threshold = knobs.rebuild;
    {
      query::QueryService service(*env.store, service_options);
      PDC_ASSIGN_OR_RETURN(
          const bool failed,
          run_write_ops(c, env, service,
                        std::string(server::strategy_name(strategy)),
                        strategy == server::Strategy::kSortedHistogram,
                        mismatch));
      (void)failed;
    }
    drop_env(env);
    if (mismatch) break;
  }

  if (!mismatch && options.degraded && options.num_servers > 1) {
    PDC_ASSIGN_OR_RETURN(Env env, build_env(c, options, /*want_index=*/true,
                                            /*want_replica=*/true));
    if (options.post_build) {
      PDC_RETURN_IF_ERROR(options.post_build(*env.store, env.object_ids));
    }
    rpc::FaultPlan plan;
    plan.server_faults.push_back(
        {options.num_servers - 1, 0, rpc::ServerFate::kKilled});
    rpc::FaultInjector injector(plan);
    query::ServiceOptions service_options;
    service_options.num_servers = options.num_servers;
    service_options.strategy = server::Strategy::kHistogram;
    service_options.eval_threads = eval_threads;
    service_options.compact_threshold = knobs.compact;
    service_options.replica_rebuild_threshold = knobs.rebuild;
    service_options.fault_injector = &injector;
    service_options.retry.attempt_timeout = std::chrono::milliseconds(100);
    service_options.retry.max_attempts = 3;
    service_options.retry.backoff_base = std::chrono::milliseconds(2);
    service_options.retry.backoff_cap = std::chrono::milliseconds(20);
    {
      query::QueryService service(*env.store, service_options);
      PDC_ASSIGN_OR_RETURN(const bool failed,
                           run_write_ops(c, env, service, "degraded", false,
                                         mismatch));
      (void)failed;
    }
    drop_env(env);
  }
  return mismatch;
}

Result<std::optional<Mismatch>> run_case(const Case& c,
                                         const RunOptions& options) {
  if (!c.ops.empty()) return run_write_case(c, options);
  std::optional<Mismatch> mismatch;
  if (c.dataset.size() == 0 || c.queries.empty()) return mismatch;
  for (const std::vector<float>& column : c.dataset.columns) {
    if (column.size() != c.dataset.size()) {
      return Status::InvalidArgument("ragged dataset columns");
    }
  }

  const auto uses = [&](server::Strategy s) {
    return std::find(options.strategies.begin(), options.strategies.end(),
                     s) != options.strategies.end();
  };
  PDC_ASSIGN_OR_RETURN(
      Env env, build_env(c, options,
                         uses(server::Strategy::kHistogramIndex) ||
                             uses(server::Strategy::kAdaptive),
                         uses(server::Strategy::kSortedHistogram)));
  if (options.post_build) {
    PDC_RETURN_IF_ERROR(options.post_build(*env.store, env.object_ids));
  }

  std::vector<std::vector<std::uint64_t>> expected;
  expected.reserve(c.queries.size());
  for (const QuerySpec& q : c.queries) {
    expected.push_back(oracle_hits(c.dataset, q));
  }

  const std::uint32_t eval_threads = effective_eval_threads(options, c.seed);
  const kernels::ScopedBackend kernel_backend(
      effective_kernel_backend(c.seed));
  for (const server::Strategy strategy : options.strategies) {
    query::ServiceOptions service_options;
    service_options.num_servers = options.num_servers;
    service_options.strategy = strategy;
    service_options.eval_threads = eval_threads;
    query::QueryService service(*env.store, service_options);
    PDC_ASSIGN_OR_RETURN(
        bool failed,
        run_service(c, env, service,
                    std::string(server::strategy_name(strategy)),
                    strategy == server::Strategy::kSortedHistogram, expected,
                    mismatch));
    if (failed) break;
  }

  if (!mismatch && options.degraded && options.num_servers > 1) {
    rpc::FaultPlan plan;
    plan.server_faults.push_back(
        {options.num_servers - 1, 0, rpc::ServerFate::kKilled});
    rpc::FaultInjector injector(plan);
    query::ServiceOptions service_options;
    service_options.num_servers = options.num_servers;
    service_options.strategy = server::Strategy::kHistogram;
    service_options.eval_threads = eval_threads;
    service_options.fault_injector = &injector;
    service_options.retry.attempt_timeout = std::chrono::milliseconds(100);
    service_options.retry.max_attempts = 3;
    service_options.retry.backoff_base = std::chrono::milliseconds(2);
    service_options.retry.backoff_cap = std::chrono::milliseconds(20);
    query::QueryService service(*env.store, service_options);
    PDC_ASSIGN_OR_RETURN(bool failed,
                         run_service(c, env, service, "degraded", false,
                                     expected, mismatch));
    (void)failed;
  }

  if (!mismatch && options.check_invariants) {
    for (std::size_t qi = 0; qi < c.queries.size(); ++qi) {
      const Status st = check_planner_monotonicity(
          *env.store, build_query(c.queries[qi], env.object_ids));
      if (!st.ok()) {
        mismatch = Mismatch{qi, "invariant:planner", st.ToString()};
        break;
      }
    }
    if (!mismatch && uses(server::Strategy::kSortedHistogram)) {
      const Status st =
          check_sorted_replica(*env.store, env.object_ids.front());
      if (!st.ok()) {
        mismatch = Mismatch{0, "invariant:replica", st.ToString()};
      }
    }
  }

  env.store.reset();
  env.cluster.reset();
  std::error_code ec;
  std::filesystem::remove_all(env.dir, ec);
  return mismatch;
}

// --------------------------------------------------------------- shrinker

namespace {

std::uint64_t query_weight(const QuerySpec& q) {
  std::uint64_t w = 8;
  for (const TermSpec& t : q.terms) w += 4 + t.leaves.size();
  if (!q.region.empty()) w += 1;
  return w;
}

/// Strictly decreasing under every accepted shrink step.
std::uint64_t case_weight(const Case& c) {
  std::uint64_t w = c.dataset.size() * (1 + c.dataset.columns.size());
  for (const QuerySpec& q : c.queries) w += query_weight(q);
  for (const OpSpec& op : c.ops) {
    if (!op.is_write) {
      w += query_weight(op.query);
      continue;
    }
    w += 8;
    for (const std::vector<float>& v : op.write.values) w += v.size();
  }
  return w;
}

void clip_query_region(QuerySpec& q, std::uint64_t n) {
  if (q.region.empty()) return;
  if (q.region.offset >= n) {
    q.region = {0, 0};
  } else {
    q.region.count = std::min(q.region.count, n - q.region.offset);
  }
}

void clip_regions(Case& c) {
  const std::uint64_t n = c.dataset.size();
  for (QuerySpec& q : c.queries) clip_query_region(q, n);
  for (OpSpec& op : c.ops) {
    if (!op.is_write) clip_query_region(op.query, n);
    // Writes that no longer fit the truncated dataset are skipped at
    // replay time (apply_write_model), identically on the model and the
    // store — no clipping needed here.
  }
}

/// Pointers to every query spec of a case (standalone queries plus query
/// ops of the write-interleaved sequence), for the structural shrink steps.
std::vector<QuerySpec*> query_slots(Case& c) {
  std::vector<QuerySpec*> slots;
  for (QuerySpec& q : c.queries) slots.push_back(&q);
  for (OpSpec& op : c.ops) {
    if (!op.is_write) slots.push_back(&op.query);
  }
  return slots;
}

}  // namespace

ShrinkResult shrink(Case failing,
                    const std::function<bool(const Case&)>& still_fails,
                    std::size_t max_attempts) {
  ShrinkResult out;
  out.minimal = std::move(failing);

  const auto try_accept = [&](Case candidate) {
    if (out.attempts >= max_attempts) return false;
    ++out.attempts;
    if (case_weight(candidate) >= case_weight(out.minimal)) return false;
    if (!still_fails(candidate)) return false;
    out.minimal = std::move(candidate);
    ++out.accepted_steps;
    return true;
  };

  bool progress = true;
  while (progress && out.attempts < max_attempts) {
    progress = false;

    // 1a. Fewer ops (write-interleaved cases shrink over the combined op
    //     sequence): each single op alone — one cheap attempt, usually
    //     rejected because a failure needs a write AND a query — then
    //     drop one op at a time.
    if (out.minimal.ops.size() > 1) {
      for (std::size_t i = 0; i < out.minimal.ops.size() && !progress; ++i) {
        Case candidate = out.minimal;
        candidate.ops = {out.minimal.ops[i]};
        progress = try_accept(std::move(candidate));
      }
      for (std::size_t i = 0; i < out.minimal.ops.size() && !progress; ++i) {
        Case candidate = out.minimal;
        candidate.ops.erase(candidate.ops.begin() +
                            static_cast<std::ptrdiff_t>(i));
        progress = try_accept(std::move(candidate));
      }
      if (progress) continue;
    }

    // 1b. Fewer queries: first try each single query alone, then drop one.
    if (out.minimal.queries.size() > 1) {
      for (std::size_t i = 0; i < out.minimal.queries.size() && !progress;
           ++i) {
        Case candidate = out.minimal;
        candidate.queries = {out.minimal.queries[i]};
        progress = try_accept(std::move(candidate));
      }
      for (std::size_t i = 0; i < out.minimal.queries.size() && !progress;
           ++i) {
        Case candidate = out.minimal;
        candidate.queries.erase(candidate.queries.begin() +
                                static_cast<std::ptrdiff_t>(i));
        progress = try_accept(std::move(candidate));
      }
      if (progress) continue;
    }

    // 2. Smaller dataset: halve, then drop the trailing partial region.
    const std::uint64_t n = out.minimal.dataset.size();
    if (n > 1) {
      Case candidate = out.minimal;
      truncate_dataset(candidate.dataset, n / 2);
      clip_regions(candidate);
      progress = try_accept(std::move(candidate));
      if (!progress && num_regions(out.minimal.dataset) > 1) {
        const std::uint64_t per = elements_per_region(out.minimal.dataset);
        const std::uint64_t tail = n % per == 0 ? per : n % per;
        Case chopped = out.minimal;
        truncate_dataset(chopped.dataset, n - tail);
        clip_regions(chopped);
        progress = try_accept(std::move(chopped));
      }
      if (progress) continue;
    }

    // 3. Drop OR terms (standalone queries and query ops alike).
    const std::size_t num_slots = query_slots(out.minimal).size();
    for (std::size_t qi = 0; qi < num_slots && !progress; ++qi) {
      const std::size_t num_terms = query_slots(out.minimal)[qi]->terms.size();
      for (std::size_t t = 0; t < num_terms && num_terms > 1; ++t) {
        Case candidate = out.minimal;
        QuerySpec& q = *query_slots(candidate)[qi];
        q.terms.erase(q.terms.begin() + static_cast<std::ptrdiff_t>(t));
        if ((progress = try_accept(std::move(candidate)))) break;
      }
    }
    if (progress) continue;

    // 4. Drop conjunct leaves (keeping at least one per term).
    for (std::size_t qi = 0; qi < num_slots && !progress; ++qi) {
      const QuerySpec snapshot = *query_slots(out.minimal)[qi];
      for (std::size_t t = 0; t < snapshot.terms.size() && !progress; ++t) {
        for (std::size_t l = 0; l < snapshot.terms[t].leaves.size() &&
                                snapshot.terms[t].leaves.size() > 1;
             ++l) {
          Case candidate = out.minimal;
          TermSpec& term = query_slots(candidate)[qi]->terms[t];
          term.leaves.erase(term.leaves.begin() +
                            static_cast<std::ptrdiff_t>(l));
          if ((progress = try_accept(std::move(candidate)))) break;
        }
      }
    }
    if (progress) continue;

    // 5. Drop region constraints.
    for (std::size_t qi = 0; qi < num_slots && !progress; ++qi) {
      if (query_slots(out.minimal)[qi]->region.empty()) continue;
      Case candidate = out.minimal;
      query_slots(candidate)[qi]->region = {0, 0};
      progress = try_accept(std::move(candidate));
    }
    if (progress) continue;

    // 6. Halve write payloads: appends truncate every column in lockstep
    //    (rectangularity), overwrites shrink the extent and values
    //    together.
    for (std::size_t oi = 0; oi < out.minimal.ops.size() && !progress;
         ++oi) {
      if (!out.minimal.ops[oi].is_write) continue;
      const WriteSpec& w = out.minimal.ops[oi].write;
      if (w.values.empty()) continue;
      const std::size_t count = w.values.front().size();
      if (count <= 1) continue;
      Case candidate = out.minimal;
      WriteSpec& cw = candidate.ops[oi].write;
      for (std::vector<float>& v : cw.values) {
        v.resize(std::min(v.size(), count / 2));
      }
      if (!cw.is_append) cw.extent.count = count / 2;
      progress = try_accept(std::move(candidate));
    }
  }
  return out;
}

std::string repro_line(std::uint64_t seed) {
  std::ostringstream os;
  os << "PDC_QC_SEED=" << seed << " (re-run the querycheck binary with this "
     << "environment variable to replay the failing case)";
  return os.str();
}

std::string describe_case(const Case& c) {
  std::ostringstream os;
  os << "Case{seed=" << c.seed << ", n=" << c.dataset.size() << ", columns=[";
  for (std::size_t i = 0; i < c.dataset.names.size(); ++i) {
    os << (i ? "," : "") << c.dataset.names[i];
  }
  os << "], region_size_bytes=" << c.dataset.region_size_bytes << " ("
     << num_regions(c.dataset) << " regions)";
  const auto render_query = [&os, &c](const QuerySpec& q) {
    for (std::size_t t = 0; t < q.terms.size(); ++t) {
      if (t) os << " OR ";
      os << "(";
      for (std::size_t l = 0; l < q.terms[t].leaves.size(); ++l) {
        const LeafSpec& leaf = q.terms[t].leaves[l];
        if (l) os << " AND ";
        os << c.dataset.names[leaf.column] << " "
           << query_op_name(leaf.op) << " " << leaf.value;
      }
      os << ")";
    }
    if (!q.region.empty()) {
      os << " in [" << q.region.offset << "," << q.region.end() << ")";
    }
  };
  for (std::size_t qi = 0; qi < c.queries.size(); ++qi) {
    os << ", q" << qi << "=";
    render_query(c.queries[qi]);
  }
  for (std::size_t oi = 0; oi < c.ops.size(); ++oi) {
    const OpSpec& op = c.ops[oi];
    os << ", op" << oi << "=";
    if (!op.is_write) {
      os << "query ";
      render_query(op.query);
    } else if (op.write.is_append) {
      os << "append(+"
         << (op.write.values.empty() ? 0 : op.write.values.front().size())
         << " elements/column)";
    } else {
      os << "overwrite(" << c.dataset.names[op.write.column] << "["
         << op.write.extent.offset << "," << op.write.extent.end() << "))";
    }
  }
  os << "}";
  return os.str();
}

// ------------------------------------------------------------- entry point

Status run_querycheck(std::uint64_t base_seed, std::size_t num_cases,
                      const RunOptions& options) {
  RunOptions run_options = options;
  if (const char* env = std::getenv("PDC_QC_SEED")) {
    base_seed = std::strtoull(env, nullptr, 10);
    num_cases = 1;
  }
  if (const char* env = std::getenv("PDC_QC_CASES")) {
    num_cases = std::strtoull(env, nullptr, 10);
    if (num_cases == 0) num_cases = 1;
  }
  if (const char* env = std::getenv("PDC_QC_THREADS")) {
    // Repro knob: pin the pool width (a bare seed replay already derives
    // the same width, this is for bisecting thread-count sensitivity).
    run_options.eval_threads = static_cast<std::uint32_t>(
        std::min(64ul, std::strtoul(env, nullptr, 10)));
  }

  for (std::size_t i = 0; i < num_cases; ++i) {
    const std::uint64_t seed = base_seed + i;
    QueryGen gen(seed);
    const Case c = run_options.write_interleaved ? gen.draw_write_case()
                                                 : gen.draw_case();
    PDC_ASSIGN_OR_RETURN(std::optional<Mismatch> mismatch,
                         run_case(c, run_options));
    if (!mismatch) continue;

    const auto pred = [&run_options](const Case& candidate) {
      Result<std::optional<Mismatch>> r = run_case(candidate, run_options);
      return r.ok() && r->has_value();
    };
    const ShrinkResult shrunk = shrink(c, pred);
    Result<std::optional<Mismatch>> minimal_run =
        run_case(shrunk.minimal, run_options);
    const Mismatch& report =
        (minimal_run.ok() && minimal_run->has_value()) ? **minimal_run
                                                       : *mismatch;
    std::ostringstream os;
    os << "QueryCheck failure on path '" << report.path << "', query #"
       << report.query_index << ": " << report.detail << "\n  "
       << repro_line(seed) << "\n  eval_threads="
       << effective_eval_threads(run_options, shrunk.minimal.seed)
       << (run_options.eval_threads == 0 ? " (seed-derived)" : " (pinned)")
       << "\n  kernel_backend="
       << kernels::backend_name(
              effective_kernel_backend(shrunk.minimal.seed))
       << (std::getenv("PDC_KERNELS") == nullptr ? " (seed-derived)"
                                                 : " (PDC_KERNELS pin)");
    if (run_options.write_interleaved) {
      const WriteKnobs knobs =
          effective_write_knobs(run_options, shrunk.minimal.seed);
      os << "\n  write knobs: compact_threshold=" << knobs.compact
         << ", replica_rebuild_threshold=" << knobs.rebuild
         << " (pin with PDC_QC_COMPACT / PDC_QC_REBUILD)";
    }
    os << "\n  minimal " << describe_case(shrunk.minimal)
       << "\n  (shrunk in " << shrunk.accepted_steps << " steps, "
       << shrunk.attempts << " attempts)";
    return Status::Internal(os.str());
  }
  return Status::Ok();
}

// ------------------------------------------------------- fault injection

Status corrupt_region_index(obj::ObjectStore& store, ObjectId object,
                            RegionIndex region) {
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* desc, store.get(object));
  if (desc->index_file.empty() || region >= desc->regions.size()) {
    return Status::InvalidArgument("object has no index for that region");
  }
  const obj::RegionDescriptor& rd = desc->regions[region];
  if (rd.index_bytes == 0) {
    return Status::InvalidArgument("region has no bitmap index");
  }

  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file,
                       store.cluster().open(desc->index_file));
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(rd.index_bytes));
  const pfs::ReadContext ctx{nullptr, 1, {}};
  PDC_RETURN_IF_ERROR(file.read(rd.index_offset, blob, ctx));

  PDC_ASSIGN_OR_RETURN(
      bitmap::PartitionedIndexView view,
      bitmap::PartitionedIndexView::ParseHeader(rd.index_header));

  // Serialized WAH bin layout (see WahBitVector::serialize):
  //   [num_bits u64][num_set u64][active u32][active_bits u32]
  //   [word count u64][words u32 x count]
  // Zero the active trailer and every literal word but leave num_set (and
  // all sizes) intact — a silent corruption the decoder cannot reject.
  bool mutated = false;
  for (std::uint32_t b = 0; b < view.num_bins(); ++b) {
    const Extent1D extent = view.bin_extent(b);
    if (extent.end() > blob.size()) {
      return Status::Corruption("bin extent outside the index blob");
    }
    std::uint8_t* bin = blob.data() + extent.offset;
    if (extent.count < 32) continue;
    std::uint32_t active;
    std::memcpy(&active, bin + 16, sizeof(active));
    if (active != 0) {
      active = 0;
      std::memcpy(bin + 16, &active, sizeof(active));
      mutated = true;
    }
    std::uint64_t num_words;
    std::memcpy(&num_words, bin + 24, sizeof(num_words));
    for (std::uint64_t w = 0; w < num_words; ++w) {
      std::uint32_t word;
      std::memcpy(&word, bin + 32 + 4 * w, sizeof(word));
      if ((word & 0x80000000u) == 0 && word != 0) {
        word = 0;
        std::memcpy(bin + 32 + 4 * w, &word, sizeof(word));
        mutated = true;
      }
    }
  }
  if (!mutated) {
    return Status::FailedPrecondition(
        "region index has no set bits to corrupt");
  }
  return file.write(rd.index_offset, blob);
}

}  // namespace pdc::testing
