#include "testing/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "bitmap/wah.h"
#include "common/interval.h"
#include "common/rng.h"
#include "common/serial.h"
#include "histogram/histogram.h"
#include "obj/type_dispatch.h"
#include "query/planner.h"
#include "sortrep/sorted_replica.h"

namespace pdc::testing {

namespace {

Status fail(const char* what, const std::string& detail) {
  return Status::Internal(std::string(what) + ": " + detail);
}

/// Random bitvector mixing dense literal stretches with long fills, plus
/// the uncompressed reference bits.
bitmap::WahBitVector random_wah(Rng& rng, std::uint64_t num_bits,
                                std::vector<bool>& ref) {
  bitmap::WahBitVector v;
  ref.assign(static_cast<std::size_t>(num_bits), false);
  std::uint64_t pos = 0;
  while (pos < num_bits) {
    const std::uint64_t remaining = num_bits - pos;
    if (rng.bounded(2) == 0) {
      // Long same-bit run — exercises fill words and coalescing.
      const bool bit = rng.bounded(2) == 0;
      const std::uint64_t len =
          std::min<std::uint64_t>(1 + rng.bounded(40 * 31), remaining);
      v.append_run(bit, len);
      if (bit) {
        std::fill_n(ref.begin() + static_cast<std::ptrdiff_t>(pos),
                    static_cast<std::ptrdiff_t>(len), true);
      }
      pos += len;
    } else {
      // Dense noise — exercises literal words.
      const std::uint64_t len =
          std::min<std::uint64_t>(1 + rng.bounded(64), remaining);
      for (std::uint64_t i = 0; i < len; ++i) {
        const bool bit = rng.bounded(2) == 0;
        v.append_bit(bit);
        ref[static_cast<std::size_t>(pos + i)] = bit;
      }
      pos += len;
    }
  }
  return v;
}

Status check_positions(const bitmap::WahBitVector& v,
                       const std::vector<bool>& ref, const char* what) {
  const std::vector<std::uint64_t> got = v.to_positions();
  std::vector<std::uint64_t> want;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (ref[i]) want.push_back(i);
  }
  if (got != want) {
    std::ostringstream os;
    os << "position set mismatch (" << got.size() << " got vs " << want.size()
       << " expected set bits over " << ref.size() << ")";
    return fail(what, os.str());
  }
  if (v.count() != want.size()) {
    return fail(what, "count() disagrees with position set");
  }
  return Status::Ok();
}

/// Counts with trailing empty bins removed (merge associativity holds up
/// to trailing padding: the intermediate merge order decides how far the
/// coarser lattice extends past max).
std::vector<std::uint64_t> trimmed_counts(const hist::MergeableHistogram& h) {
  std::vector<std::uint64_t> c(h.counts().begin(), h.counts().end());
  while (!c.empty() && c.back() == 0) c.pop_back();
  return c;
}

Status check_hist_equal_mod_padding(const hist::MergeableHistogram& a,
                                    const hist::MergeableHistogram& b,
                                    const char* what) {
  if (a.bin_width() != b.bin_width()) return fail(what, "bin_width differs");
  if (a.total_count() != b.total_count()) return fail(what, "total differs");
  if (a.nan_count() != b.nan_count()) return fail(what, "nan_count differs");
  if (a.min_value() != b.min_value() || a.max_value() != b.max_value()) {
    return fail(what, "min/max differ");
  }
  if (a.bin_left_edge(0) != b.bin_left_edge(0)) {
    return fail(what, "first edge differs");
  }
  if (trimmed_counts(a) != trimmed_counts(b)) {
    return fail(what, "bin counts differ");
  }
  return Status::Ok();
}

}  // namespace

Status check_wah_random_algebra(std::uint64_t seed, std::uint64_t num_bits) {
  if (num_bits == 0) return Status::InvalidArgument("num_bits must be > 0");
  Rng rng(seed);
  std::vector<bool> ref_a, ref_b;
  const bitmap::WahBitVector a = random_wah(rng, num_bits, ref_a);
  const bitmap::WahBitVector b = random_wah(rng, num_bits, ref_b);

  PDC_RETURN_IF_ERROR(a.check_invariants());
  PDC_RETURN_IF_ERROR(b.check_invariants());
  PDC_RETURN_IF_ERROR(check_positions(a, ref_a, "wah build a"));
  PDC_RETURN_IF_ERROR(check_positions(b, ref_b, "wah build b"));

  // Idempotence.
  PDC_ASSIGN_OR_RETURN(bitmap::WahBitVector aa, bitmap::WahBitVector::And(a, a));
  PDC_ASSIGN_OR_RETURN(bitmap::WahBitVector oa, bitmap::WahBitVector::Or(a, a));
  if (!(aa == a)) return fail("wah algebra", "a & a != a");
  if (!(oa == a)) return fail("wah algebra", "a | a != a");

  // And/Or against the set-algebra reference.
  std::vector<bool> ref_and(ref_a.size()), ref_or(ref_a.size());
  for (std::size_t i = 0; i < ref_a.size(); ++i) {
    ref_and[i] = ref_a[i] && ref_b[i];
    ref_or[i] = ref_a[i] || ref_b[i];
  }
  PDC_ASSIGN_OR_RETURN(bitmap::WahBitVector ab, bitmap::WahBitVector::And(a, b));
  PDC_ASSIGN_OR_RETURN(bitmap::WahBitVector ob, bitmap::WahBitVector::Or(a, b));
  PDC_RETURN_IF_ERROR(ab.check_invariants());
  PDC_RETURN_IF_ERROR(ob.check_invariants());
  PDC_RETURN_IF_ERROR(check_positions(ab, ref_and, "wah and"));
  PDC_RETURN_IF_ERROR(check_positions(ob, ref_or, "wah or"));

  // Complement algebra: a | ~a = all ones, a & ~a = empty.  There is no
  // NOT operator, so build the complement bit by bit.
  bitmap::WahBitVector c;
  for (std::size_t i = 0; i < ref_a.size(); ++i) c.append_bit(!ref_a[i]);
  PDC_RETURN_IF_ERROR(c.check_invariants());
  PDC_ASSIGN_OR_RETURN(bitmap::WahBitVector all,
                       bitmap::WahBitVector::Or(a, c));
  PDC_ASSIGN_OR_RETURN(bitmap::WahBitVector none,
                       bitmap::WahBitVector::And(a, c));
  if (all.count() != num_bits) return fail("wah algebra", "a | ~a not full");
  if (none.count() != 0) return fail("wah algebra", "a & ~a not empty");

  // Serialize round trip.
  SerialWriter w;
  a.serialize(w);
  std::vector<std::uint8_t> bytes = w.take();
  SerialReader r(bytes);
  PDC_ASSIGN_OR_RETURN(bitmap::WahBitVector back,
                       bitmap::WahBitVector::Deserialize(r));
  if (!(back == a)) return fail("wah serialize", "round trip not identical");
  return Status::Ok();
}

Status check_histogram_merge_laws(std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t n = 1000 + rng.bounded(2000);
  const bool with_nan = rng.bounded(2) == 0;
  std::vector<float> data;
  data.reserve(n);
  std::uint64_t true_nan = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (with_nan && rng.bounded(100) == 0) {
      data.push_back(std::numeric_limits<float>::quiet_NaN());
      ++true_nan;
    } else if (rng.bounded(4) == 0) {
      // Clustered values so some bins get heavy and some stay empty.
      data.push_back(static_cast<float>(10.0 + rng.bounded(3)));
    } else {
      data.push_back(static_cast<float>(rng.uniform(-50.0, 50.0)));
    }
  }

  // Split into chunks built with different target bin counts (hence
  // different widths), the situation the lattice anchoring exists for.
  const std::size_t num_chunks = 3 + static_cast<std::size_t>(rng.bounded(4));
  std::vector<hist::MergeableHistogram> parts;
  std::size_t start = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    std::size_t len = (c + 1 == num_chunks)
                          ? data.size() - start
                          : 1 + rng.bounded(data.size() / num_chunks);
    len = std::min(len, data.size() - start);
    if (len == 0) continue;
    hist::HistogramConfig config;
    config.target_bins = 16u << rng.bounded(3);
    config.seed = seed + c;
    parts.push_back(hist::MergeableHistogram::Build<float>(
        {data.data() + start, len}, config));
    start += len;
  }
  if (parts.size() < 3) return Status::Ok();  // degenerate draw, nothing to do

  // Commutativity: exact equality.
  {
    std::vector<hist::MergeableHistogram> fwd{parts[0], parts[1]};
    std::vector<hist::MergeableHistogram> rev{parts[1], parts[0]};
    if (!(hist::MergeableHistogram::Merge(fwd) ==
          hist::MergeableHistogram::Merge(rev))) {
      return fail("histogram merge", "not commutative");
    }
  }

  // Associativity up to trailing empty-bin padding.
  {
    std::vector<hist::MergeableHistogram> left01{parts[0], parts[1]};
    std::vector<hist::MergeableHistogram> l{
        hist::MergeableHistogram::Merge(left01), parts[2]};
    std::vector<hist::MergeableHistogram> right12{parts[1], parts[2]};
    std::vector<hist::MergeableHistogram> r{
        parts[0], hist::MergeableHistogram::Merge(right12)};
    PDC_RETURN_IF_ERROR(check_hist_equal_mod_padding(
        hist::MergeableHistogram::Merge(l), hist::MergeableHistogram::Merge(r),
        "histogram merge associativity"));
  }

  // Accounting on the full merge.
  const hist::MergeableHistogram global = hist::MergeableHistogram::Merge(parts);
  if (global.total_count() != n) return fail("histogram merge", "total != n");
  if (global.nan_count() != true_nan) {
    return fail("histogram merge", "nan_count wrong");
  }
  double true_min = std::numeric_limits<double>::infinity();
  double true_max = -std::numeric_limits<double>::infinity();
  for (const float v : data) {
    if (v != v) continue;
    true_min = std::min(true_min, static_cast<double>(v));
    true_max = std::max(true_max, static_cast<double>(v));
  }
  if (global.min_value() != true_min || global.max_value() != true_max) {
    return fail("histogram merge", "min/max wrong");
  }

  // Estimate soundness on a sweep of random intervals.
  for (int q = 0; q < 40; ++q) {
    ValueInterval interval;
    if (rng.bounded(4) == 0) {
      // Point interval at an exact data value.
      float v = data[rng.bounded(n)];
      while (v != v) v = data[rng.bounded(n)];
      interval = ValueInterval::from_op(QueryOp::kEQ, static_cast<double>(v));
    } else {
      double lo = rng.uniform(-60.0, 60.0);
      double hi = rng.uniform(-60.0, 60.0);
      if (lo > hi) std::swap(lo, hi);
      interval.lo = lo;
      interval.hi = hi;
      interval.lo_inclusive = rng.bounded(2) == 0;
      interval.hi_inclusive = rng.bounded(2) == 0;
    }
    std::uint64_t truth = 0;
    for (const float v : data) {
      truth += interval.contains(static_cast<double>(v)) ? 1 : 0;
    }
    const hist::HitEstimate est = global.estimate(interval);
    if (est.lower > truth || truth > est.upper) {
      std::ostringstream os;
      os << "estimate [" << est.lower << ", " << est.upper
         << "] does not bracket true count " << truth << " for ["
         << interval.lo << ", " << interval.hi << "]";
      return fail("histogram estimate", os.str());
    }
    if (truth > 0 && !global.may_overlap(interval)) {
      return fail("histogram may_overlap", "false negative");
    }
    if (global.covers(interval) && truth != n) {
      return fail("histogram covers", "claimed all-hits but count < n");
    }
  }
  return Status::Ok();
}

Status check_planner_monotonicity(const obj::ObjectStore& store,
                                  const query::QueryPtr& query) {
  query::PlanOptions options;
  options.order_by_selectivity = true;
  PDC_ASSIGN_OR_RETURN(query::Plan plan,
                       query::plan_query(*query, store, options));
  for (const server::AndTerm& term : plan.terms) {
    double prev = -1.0;
    for (const server::Conjunct& conjunct : term.conjuncts) {
      PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* desc,
                           store.get(conjunct.object));
      const double est = query::estimate_selectivity(*desc, conjunct.interval);
      if (est < prev) {
        std::ostringstream os;
        os << "conjunct on object " << conjunct.object << " has estimate "
           << est << " after " << prev;
        return fail("planner selectivity order", os.str());
      }
      prev = est;
    }
  }
  return Status::Ok();
}

Status check_sorted_replica(const obj::ObjectStore& store, ObjectId source) {
  const std::optional<ObjectId> replica_id = store.sorted_replica_of(source);
  if (!replica_id) {
    return Status::InvalidArgument("object has no sorted replica");
  }
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* src, store.get(source));
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* rep,
                       store.get(*replica_id));
  const std::uint64_t n = src->num_elements;
  if (rep->num_elements != n) {
    return fail("sorted replica", "element count differs from source");
  }
  if (n == 0) return Status::Ok();
  const std::size_t elem = src->element_size();
  const pfs::ReadContext ctx{nullptr, 1, {}};

  std::vector<std::uint8_t> src_bytes(n * elem), rep_bytes(n * elem);
  PDC_RETURN_IF_ERROR(store.read_elements(*src, {0, n}, src_bytes, ctx));
  PDC_RETURN_IF_ERROR(store.read_elements(*rep, {0, n}, rep_bytes, ctx));

  // Permutation file: one u64 original position per sorted position.
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile perm_file,
                       store.cluster().open(rep->permutation_file));
  std::vector<std::uint64_t> perm(n);
  PDC_RETURN_IF_ERROR(perm_file.read(
      0,
      {reinterpret_cast<std::uint8_t*>(perm.data()), n * sizeof(std::uint64_t)},
      ctx));

  std::vector<bool> seen(n, false);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (perm[i] >= n || seen[perm[i]]) {
      return fail("sorted replica", "permutation is not a bijection");
    }
    seen[perm[i]] = true;
    if (std::memcmp(rep_bytes.data() + i * elem,
                    src_bytes.data() + perm[i] * elem, elem) != 0) {
      return fail("sorted replica", "replica[i] != source[perm[i]]");
    }
  }

  const bool ascending = obj::dispatch_type(rep->type, [&](auto tag) {
    using T = decltype(tag);
    const T* values = reinterpret_cast<const T*>(rep_bytes.data());
    for (std::uint64_t i = 1; i < n; ++i) {
      if (values[i] < values[i - 1]) return false;
    }
    return true;
  });
  if (!ascending) return fail("sorted replica", "values not ascending");

  std::uint64_t next = 0;
  for (const obj::RegionDescriptor& region : rep->regions) {
    if (region.extent.offset != next) {
      return fail("sorted replica", "regions do not tile [0, n)");
    }
    next = region.extent.end();
  }
  if (next != n) return fail("sorted replica", "regions do not cover n");
  return Status::Ok();
}

Status check_trace_stats(const obs::Trace& trace, const query::OpStats& stats) {
  std::unordered_map<obs::SpanId, const obs::Span*> by_id;
  by_id.reserve(trace.spans.size());
  for (const obs::Span& span : trace.spans) by_id.emplace(span.id, &span);

  // Does `span` have ancestor `root`?  Parent chains are acyclic (validated
  // separately), but guard with a depth cap anyway.
  const auto descends_from = [&](const obs::Span& span, obs::SpanId root) {
    obs::SpanId cursor = span.parent;
    for (std::size_t depth = 0; cursor != 0 && depth < trace.spans.size();
         ++depth) {
      if (cursor == root) return true;
      const auto it = by_id.find(cursor);
      if (it == by_id.end()) return false;
      cursor = it->second->parent;
    }
    return false;
  };

  double sum_elapsed = 0.0;
  double sum_io = 0.0;
  double sum_cpu = 0.0;
  double sum_scan = 0.0;
  double sum_decode = 0.0;
  double sum_merge = 0.0;
  for (const obs::Span& gather : trace.spans) {
    if (gather.name != "rpc.gather") continue;
    const obs::Span* critical = nullptr;
    for (const obs::Span& span : trace.spans) {
      if (span.name != "server.eval" && span.name != "server.get_data") {
        continue;
      }
      if (!descends_from(span, gather.id)) continue;
      if (critical == nullptr ||
          span.arg("elapsed_s") > critical->arg("elapsed_s")) {
        critical = &span;
      }
    }
    if (critical == nullptr) continue;
    sum_elapsed += critical->arg("elapsed_s");
    sum_io += critical->arg("io_s");
    sum_cpu += critical->arg("cpu_s");
    sum_scan += critical->arg("scan_s");
    sum_decode += critical->arg("decode_s");
    sum_merge += critical->arg("merge_s");
  }

  const auto mismatch = [](const char* field, double from_trace,
                           double from_stats) {
    std::ostringstream os;
    os << field << ": trace says " << from_trace << ", OpStats says "
       << from_stats;
    return fail("trace/stats reconciliation", os.str());
  };
  const auto close_enough = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max(1.0, std::max(a, b));
  };
  if (!close_enough(sum_elapsed, stats.max_server_seconds)) {
    return mismatch("max_server_seconds", sum_elapsed,
                    stats.max_server_seconds);
  }
  if (!close_enough(sum_io, stats.max_server_io_seconds)) {
    return mismatch("max_server_io_seconds", sum_io,
                    stats.max_server_io_seconds);
  }
  if (!close_enough(sum_cpu, stats.max_server_cpu_seconds)) {
    return mismatch("max_server_cpu_seconds", sum_cpu,
                    stats.max_server_cpu_seconds);
  }
  if (!close_enough(sum_scan, stats.max_server_scan_seconds)) {
    return mismatch("max_server_scan_seconds", sum_scan,
                    stats.max_server_scan_seconds);
  }
  if (!close_enough(sum_decode, stats.max_server_decode_seconds)) {
    return mismatch("max_server_decode_seconds", sum_decode,
                    stats.max_server_decode_seconds);
  }
  if (!close_enough(sum_merge, stats.max_server_merge_seconds)) {
    return mismatch("max_server_merge_seconds", sum_merge,
                    stats.max_server_merge_seconds);
  }
  return Status::Ok();
}

}  // namespace pdc::testing
