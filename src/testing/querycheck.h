// QueryCheck — seed-reproducible property-based differential testing of
// every query path.
//
// The paper's central correctness claim is that histogram pruning, the WAH
// bitmap index, the sorted replica and (since the fault-tolerance work)
// degraded-mode redispatch are *transparent* accelerations: every path must
// return bit-identical results to a full scan.  QueryCheck turns that claim
// into an executable property: a QueryGen draws random datasets (VPIC-shaped
// plus adversarial shapes: constant columns, NaN/±inf values, values sitting
// exactly on precision bin edges, single-element regions) and random range
// queries (open/closed/half-open bounds, equality, empty-result, full-range,
// multi-variable conjunctions, OR terms, region constraints), executes each
// query through every strategy plus a fault-injected degraded run, and
// compares positions and fetched bytes against an element-wise oracle.
//
// On mismatch the harness auto-shrinks the failing case — dropping queries,
// halving the dataset region by region, dropping OR terms and conjuncts —
// and reports a one-line `PDC_QC_SEED=<n>` reproduction.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "obj/object_store.h"
#include "pfs/pfs.h"
#include "query/query.h"
#include "server/wire.h"

namespace pdc::testing {

// ------------------------------------------------------------------ model

/// A generated dataset: equal-length float columns.  Column 0 is the "key"
/// (always NaN-free so a sorted replica can be built over it); other
/// columns may contain NaN/±inf.
struct Dataset {
  std::vector<std::string> names;
  std::vector<std::vector<float>> columns;
  std::uint64_t region_size_bytes = 512;

  [[nodiscard]] std::uint64_t size() const noexcept {
    return columns.empty() ? 0 : columns.front().size();
  }

  /// Bit-exact equality.  Float `==` would make a dataset containing NaN
  /// unequal to itself, breaking the seed-replay reproducibility contract.
  bool operator==(const Dataset& o) const noexcept {
    if (names != o.names || region_size_bytes != o.region_size_bytes ||
        columns.size() != o.columns.size()) {
      return false;
    }
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].size() != o.columns[i].size()) return false;
      if (!columns[i].empty() &&
          std::memcmp(columns[i].data(), o.columns[i].data(),
                      columns[i].size() * sizeof(float)) != 0) {
        return false;
      }
    }
    return true;
  }
};

/// One comparison leaf: `column <op> value`.
struct LeafSpec {
  std::uint32_t column = 0;
  QueryOp op = QueryOp::kGT;
  double value = 0.0;
  bool operator==(const LeafSpec&) const = default;
};

/// AND of leaves.
struct TermSpec {
  std::vector<LeafSpec> leaves;
  bool operator==(const TermSpec&) const = default;
};

/// OR of AND-terms, optionally region-constrained ({0,0} = none).
struct QuerySpec {
  std::vector<TermSpec> terms;
  Extent1D region{0, 0};
  bool operator==(const QuerySpec&) const = default;
};

/// One mutation in a write-interleaved case.  Appends are rectangular —
/// one value vector per dataset column, equal lengths, so every column
/// keeps the common element count — and the key column stays finite (the
/// sorted-replica source contract).  Overwrites target one column's
/// element extent.
struct WriteSpec {
  bool is_append = false;
  std::uint32_t column = 0;  ///< overwrite target (ignored for appends)
  Extent1D extent{0, 0};     ///< overwrite target range (element space)
  /// Append: values[col], one per column.  Overwrite: values[0] holds the
  /// extent.count replacement values.
  std::vector<std::vector<float>> values;

  /// Bit-exact equality (same NaN rationale as Dataset).
  bool operator==(const WriteSpec& o) const noexcept {
    if (is_append != o.is_append || column != o.column ||
        extent.offset != o.extent.offset || extent.count != o.extent.count ||
        values.size() != o.values.size()) {
      return false;
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i].size() != o.values[i].size()) return false;
      if (!values[i].empty() &&
          std::memcmp(values[i].data(), o.values[i].data(),
                      values[i].size() * sizeof(float)) != 0) {
        return false;
      }
    }
    return true;
  }
};

/// One step of a write-interleaved op sequence: run a query or apply a
/// mutation.
struct OpSpec {
  bool is_write = false;
  QuerySpec query;  ///< executed when !is_write
  WriteSpec write;  ///< applied when is_write
  bool operator==(const OpSpec&) const = default;
};

/// One complete generated test case.  `ops` empty: the original read-only
/// mode — every query in `queries` runs against the immutable dataset.
/// `ops` non-empty: write-interleaved mode — `dataset` is the INITIAL
/// state, the op sequence replays in order through the full RPC write path
/// on every strategy, each query op is differentially checked against the
/// element-wise oracle on the mutation prefix applied so far, and
/// `queries` is ignored.
struct Case {
  std::uint64_t seed = 0;
  Dataset dataset;
  std::vector<QuerySpec> queries;
  std::vector<OpSpec> ops;
  bool operator==(const Case&) const = default;
};

// -------------------------------------------------------------- generator

class QueryGen {
 public:
  explicit QueryGen(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  /// Draw a dataset plus a handful of queries against it.  Deterministic:
  /// two QueryGens with the same seed produce identical cases.
  Case draw_case();

  /// Write-interleaved variant: an initial dataset plus an op sequence of
  /// mutations and queries (always ends on a query, always contains at
  /// least one write).  Queries are drawn against the model state at their
  /// point in the sequence so their constants exercise the mutated data.
  Case draw_write_case();

  Dataset draw_dataset();
  QuerySpec draw_query(const Dataset& dataset);
  /// A mutation valid against the current model state: 1/3 rectangular
  /// appends, 2/3 single-column overwrites mixing in-range values
  /// (delta-WAH absorbable), exact existing values, out-of-range values
  /// (force index staleness) and — on non-key columns — NaN/±inf.
  WriteSpec draw_write(const Dataset& dataset);

 private:
  std::uint64_t seed_;
  Rng rng_;
};

/// Element-wise reference evaluation with exactly the comparison semantics
/// of the scan path (double-promoted ValueInterval::contains).
[[nodiscard]] std::vector<std::uint64_t> oracle_hits(const Dataset& dataset,
                                                     const QuerySpec& query);

/// Oracle-side mutation replay: validate `write` against the CURRENT model
/// shape and, when it fits, apply it element-wise.  Returns false — with
/// the model untouched — when it does not fit (possible after shrinking
/// truncated the dataset).  The fit decision is a pure function of the
/// model state, so the service-side replay skips exactly the same ops and
/// the two stay in lockstep.
bool apply_write_model(Dataset& dataset, const WriteSpec& write);

// ------------------------------------------------------------- environment

/// A materialized dataset environment: PFS cluster + object store with the
/// dataset's columns imported, ready to back a QueryService.  Public so
/// workload drivers (the traffic generator, benches) reuse QueryGen
/// datasets without duplicating the import pipeline.
struct BuiltEnv {
  std::unique_ptr<pfs::PfsCluster> cluster;
  std::unique_ptr<obj::ObjectStore> store;
  std::vector<ObjectId> object_ids;  ///< one per dataset column, in order
  std::string dir;                   ///< on-disk root (left behind; /tmp)
};

/// Import `dataset` into a fresh PFS cluster under `temp_root` (a unique
/// subdirectory is derived from `tag` plus a process-wide counter),
/// optionally building bitmap indexes on every column and a sorted replica
/// over column 0.
Result<BuiltEnv> build_dataset_env(const Dataset& dataset, std::uint64_t tag,
                                   const std::string& temp_root,
                                   bool want_index = true,
                                   bool want_replica = true);

/// Compile a QuerySpec against the imported column objects
/// (BuiltEnv::object_ids).
[[nodiscard]] query::QueryPtr build_query_from_spec(
    const QuerySpec& spec, const std::vector<ObjectId>& objects);

// ----------------------------------------------------------------- runner

/// First observed divergence between a query path and the oracle.
struct Mismatch {
  std::size_t query_index = 0;
  std::string path;    ///< which strategy / mode diverged
  std::string detail;  ///< human-readable expected-vs-got summary
};

struct RunOptions {
  /// Strategies to differentially execute (the full-scan oracle always
  /// runs implicitly via oracle_hits).
  std::vector<server::Strategy> strategies;
  std::uint32_t num_servers = 3;
  /// Also run a fault-injected degraded evaluation (one server killed at
  /// startup; results must stay bit-identical).
  bool degraded = true;
  /// Intra-server evaluation pool size for every service under test.
  /// 0 = derive per seed (1..8, including the degenerate 1-worker pool),
  /// so the battery covers serial-equivalence across pool widths for free.
  /// Overridable with the PDC_QC_THREADS environment variable (repro knob:
  /// a printed seed replays with the same derived width automatically).
  std::uint32_t eval_threads = 0;
  /// Also verify planner selectivity ordering and sorted-replica structure
  /// on each case (invariants.h).  Ignored for write-interleaved cases:
  /// mid-sequence accelerator staleness is expected there and the
  /// differential prefix checks are the property.
  bool check_invariants = true;
  /// run_querycheck generator mode: draw write-interleaved cases
  /// (draw_write_case) instead of read-only ones.  Replays of a printed
  /// PDC_QC_SEED must use the same mode they were found under (the
  /// write-mode test/binary sets this).
  bool write_interleaved = false;
  /// Write-mode accelerator maintenance knobs, passed to every service
  /// under test.  ~0 (the default) derives both per seed, cycling
  /// disabled / aggressive / default so the battery covers pure delta-WAH
  /// reads, constant compaction and threshold-crossing rebuilds; pin them
  /// here (or via PDC_QC_COMPACT / PDC_QC_REBUILD) to bisect.
  std::uint64_t compact_threshold = ~0ull;
  std::uint64_t replica_rebuild_threshold = ~0ull;
  /// Scratch directory root; each run uses a fresh subdirectory.
  std::string temp_root = "/tmp/pdc_querycheck";
  /// Applied after the store (objects + indexes + replica) is built and
  /// before any query runs — the harness sanity check uses this to corrupt
  /// an index and prove mismatch detection.  Receives the store and the
  /// per-column object ids.
  std::function<Status(obj::ObjectStore&, const std::vector<ObjectId>&)>
      post_build;

  /// Default strategy set: full scan, histogram, index, sorted.
  static RunOptions all_paths();
};

/// Build the environment for `c`, run every query through every configured
/// path and compare against the oracle.  Returns the first mismatch, or
/// nullopt when all paths agree; non-Ok only on environment/setup errors
/// (which are failures of the harness, not of the system under test).
Result<std::optional<Mismatch>> run_case(const Case& c,
                                         const RunOptions& options);

// ---------------------------------------------------------------- shrinker

struct ShrinkResult {
  Case minimal;
  std::size_t accepted_steps = 0;  ///< shrink transformations that kept failure
  std::size_t attempts = 0;        ///< candidate evaluations performed
};

/// Greedily minimize `failing` while `still_fails` holds: keep only the
/// failing query, halve the dataset, drop trailing regions, drop OR terms,
/// drop conjunct leaves.  Every accepted step strictly shrinks the case, so
/// the loop terminates; `max_attempts` additionally bounds the candidate
/// evaluations for safety.
ShrinkResult shrink(Case failing,
                    const std::function<bool(const Case&)>& still_fails,
                    std::size_t max_attempts = 400);

/// The one-line reproduction string printed on failure.
[[nodiscard]] std::string repro_line(std::uint64_t seed);

// ------------------------------------------------------------ entry point

/// Run `num_cases` generated cases starting at `base_seed` (case i uses
/// seed base_seed + i).  On the first mismatch, shrinks it (re-running
/// run_case as the predicate) and returns Internal with a report that
/// includes the PDC_QC_SEED repro line and the minimal case; Ok() when
/// every case passes.  PDC_QC_SEED / PDC_QC_CASES environment variables
/// override the arguments (that is how a printed repro is replayed).
Status run_querycheck(std::uint64_t base_seed, std::size_t num_cases,
                      const RunOptions& options);

/// Silently corrupt the on-disk bitmap index of `region` of `object`:
/// zeroes every literal word and the active trailer of every bin while
/// leaving sizes and the (now stale) set-bit counts intact — the shape of a
/// real index bug.  Used by the harness sanity check.
Status corrupt_region_index(obj::ObjectStore& store, ObjectId object,
                            RegionIndex region);

/// Render a Case for failure reports.
[[nodiscard]] std::string describe_case(const Case& c);

}  // namespace pdc::testing
