// QueryCheck — seed-reproducible property-based differential testing of
// every query path.
//
// The paper's central correctness claim is that histogram pruning, the WAH
// bitmap index, the sorted replica and (since the fault-tolerance work)
// degraded-mode redispatch are *transparent* accelerations: every path must
// return bit-identical results to a full scan.  QueryCheck turns that claim
// into an executable property: a QueryGen draws random datasets (VPIC-shaped
// plus adversarial shapes: constant columns, NaN/±inf values, values sitting
// exactly on precision bin edges, single-element regions) and random range
// queries (open/closed/half-open bounds, equality, empty-result, full-range,
// multi-variable conjunctions, OR terms, region constraints), executes each
// query through every strategy plus a fault-injected degraded run, and
// compares positions and fetched bytes against an element-wise oracle.
//
// On mismatch the harness auto-shrinks the failing case — dropping queries,
// halving the dataset region by region, dropping OR terms and conjuncts —
// and reports a one-line `PDC_QC_SEED=<n>` reproduction.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "obj/object_store.h"
#include "pfs/pfs.h"
#include "query/query.h"
#include "server/wire.h"

namespace pdc::testing {

// ------------------------------------------------------------------ model

/// A generated dataset: equal-length float columns.  Column 0 is the "key"
/// (always NaN-free so a sorted replica can be built over it); other
/// columns may contain NaN/±inf.
struct Dataset {
  std::vector<std::string> names;
  std::vector<std::vector<float>> columns;
  std::uint64_t region_size_bytes = 512;

  [[nodiscard]] std::uint64_t size() const noexcept {
    return columns.empty() ? 0 : columns.front().size();
  }

  /// Bit-exact equality.  Float `==` would make a dataset containing NaN
  /// unequal to itself, breaking the seed-replay reproducibility contract.
  bool operator==(const Dataset& o) const noexcept {
    if (names != o.names || region_size_bytes != o.region_size_bytes ||
        columns.size() != o.columns.size()) {
      return false;
    }
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].size() != o.columns[i].size()) return false;
      if (!columns[i].empty() &&
          std::memcmp(columns[i].data(), o.columns[i].data(),
                      columns[i].size() * sizeof(float)) != 0) {
        return false;
      }
    }
    return true;
  }
};

/// One comparison leaf: `column <op> value`.
struct LeafSpec {
  std::uint32_t column = 0;
  QueryOp op = QueryOp::kGT;
  double value = 0.0;
  bool operator==(const LeafSpec&) const = default;
};

/// AND of leaves.
struct TermSpec {
  std::vector<LeafSpec> leaves;
  bool operator==(const TermSpec&) const = default;
};

/// OR of AND-terms, optionally region-constrained ({0,0} = none).
struct QuerySpec {
  std::vector<TermSpec> terms;
  Extent1D region{0, 0};
  bool operator==(const QuerySpec&) const = default;
};

/// One complete generated test case.
struct Case {
  std::uint64_t seed = 0;
  Dataset dataset;
  std::vector<QuerySpec> queries;
  bool operator==(const Case&) const = default;
};

// -------------------------------------------------------------- generator

class QueryGen {
 public:
  explicit QueryGen(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  /// Draw a dataset plus a handful of queries against it.  Deterministic:
  /// two QueryGens with the same seed produce identical cases.
  Case draw_case();

  Dataset draw_dataset();
  QuerySpec draw_query(const Dataset& dataset);

 private:
  std::uint64_t seed_;
  Rng rng_;
};

/// Element-wise reference evaluation with exactly the comparison semantics
/// of the scan path (double-promoted ValueInterval::contains).
[[nodiscard]] std::vector<std::uint64_t> oracle_hits(const Dataset& dataset,
                                                     const QuerySpec& query);

// ------------------------------------------------------------- environment

/// A materialized dataset environment: PFS cluster + object store with the
/// dataset's columns imported, ready to back a QueryService.  Public so
/// workload drivers (the traffic generator, benches) reuse QueryGen
/// datasets without duplicating the import pipeline.
struct BuiltEnv {
  std::unique_ptr<pfs::PfsCluster> cluster;
  std::unique_ptr<obj::ObjectStore> store;
  std::vector<ObjectId> object_ids;  ///< one per dataset column, in order
  std::string dir;                   ///< on-disk root (left behind; /tmp)
};

/// Import `dataset` into a fresh PFS cluster under `temp_root` (a unique
/// subdirectory is derived from `tag` plus a process-wide counter),
/// optionally building bitmap indexes on every column and a sorted replica
/// over column 0.
Result<BuiltEnv> build_dataset_env(const Dataset& dataset, std::uint64_t tag,
                                   const std::string& temp_root,
                                   bool want_index = true,
                                   bool want_replica = true);

/// Compile a QuerySpec against the imported column objects
/// (BuiltEnv::object_ids).
[[nodiscard]] query::QueryPtr build_query_from_spec(
    const QuerySpec& spec, const std::vector<ObjectId>& objects);

// ----------------------------------------------------------------- runner

/// First observed divergence between a query path and the oracle.
struct Mismatch {
  std::size_t query_index = 0;
  std::string path;    ///< which strategy / mode diverged
  std::string detail;  ///< human-readable expected-vs-got summary
};

struct RunOptions {
  /// Strategies to differentially execute (the full-scan oracle always
  /// runs implicitly via oracle_hits).
  std::vector<server::Strategy> strategies;
  std::uint32_t num_servers = 3;
  /// Also run a fault-injected degraded evaluation (one server killed at
  /// startup; results must stay bit-identical).
  bool degraded = true;
  /// Intra-server evaluation pool size for every service under test.
  /// 0 = derive per seed (1..8, including the degenerate 1-worker pool),
  /// so the battery covers serial-equivalence across pool widths for free.
  /// Overridable with the PDC_QC_THREADS environment variable (repro knob:
  /// a printed seed replays with the same derived width automatically).
  std::uint32_t eval_threads = 0;
  /// Also verify planner selectivity ordering and sorted-replica structure
  /// on each case (invariants.h).
  bool check_invariants = true;
  /// Scratch directory root; each run uses a fresh subdirectory.
  std::string temp_root = "/tmp/pdc_querycheck";
  /// Applied after the store (objects + indexes + replica) is built and
  /// before any query runs — the harness sanity check uses this to corrupt
  /// an index and prove mismatch detection.  Receives the store and the
  /// per-column object ids.
  std::function<Status(obj::ObjectStore&, const std::vector<ObjectId>&)>
      post_build;

  /// Default strategy set: full scan, histogram, index, sorted.
  static RunOptions all_paths();
};

/// Build the environment for `c`, run every query through every configured
/// path and compare against the oracle.  Returns the first mismatch, or
/// nullopt when all paths agree; non-Ok only on environment/setup errors
/// (which are failures of the harness, not of the system under test).
Result<std::optional<Mismatch>> run_case(const Case& c,
                                         const RunOptions& options);

// ---------------------------------------------------------------- shrinker

struct ShrinkResult {
  Case minimal;
  std::size_t accepted_steps = 0;  ///< shrink transformations that kept failure
  std::size_t attempts = 0;        ///< candidate evaluations performed
};

/// Greedily minimize `failing` while `still_fails` holds: keep only the
/// failing query, halve the dataset, drop trailing regions, drop OR terms,
/// drop conjunct leaves.  Every accepted step strictly shrinks the case, so
/// the loop terminates; `max_attempts` additionally bounds the candidate
/// evaluations for safety.
ShrinkResult shrink(Case failing,
                    const std::function<bool(const Case&)>& still_fails,
                    std::size_t max_attempts = 400);

/// The one-line reproduction string printed on failure.
[[nodiscard]] std::string repro_line(std::uint64_t seed);

// ------------------------------------------------------------ entry point

/// Run `num_cases` generated cases starting at `base_seed` (case i uses
/// seed base_seed + i).  On the first mismatch, shrinks it (re-running
/// run_case as the predicate) and returns Internal with a report that
/// includes the PDC_QC_SEED repro line and the minimal case; Ok() when
/// every case passes.  PDC_QC_SEED / PDC_QC_CASES environment variables
/// override the arguments (that is how a printed repro is replayed).
Status run_querycheck(std::uint64_t base_seed, std::size_t num_cases,
                      const RunOptions& options);

/// Silently corrupt the on-disk bitmap index of `region` of `object`:
/// zeroes every literal word and the active trailer of every bin while
/// leaving sizes and the (now stale) set-bit counts intact — the shape of a
/// real index bug.  Used by the harness sanity check.
Status corrupt_region_index(obj::ObjectStore& store, ObjectId object,
                            RegionIndex region);

/// Render a Case for failure reports.
[[nodiscard]] std::string describe_case(const Case& c);

}  // namespace pdc::testing
