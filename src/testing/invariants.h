// Debug invariant checks for the core query data structures.
//
// Each check returns Ok() when the invariant holds and a descriptive
// Corruption/Internal status naming the first violation otherwise, so the
// QueryCheck harness (and unit tests) can assert them wholesale.  The
// checks are property-style: seeded random inputs, algebraic laws, and
// brute-force reference comparisons.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "obj/object_store.h"
#include "obs/trace.h"
#include "query/query.h"
#include "query/service.h"

namespace pdc::testing {

/// WAH bitvector laws over seeded random vectors (mixing dense noise and
/// long runs): structural check_invariants(), idempotence (a&a == a,
/// a|a == a), And/Or position sets equal set intersection/union of the
/// operand position sets, complement algebra (a|~a all ones, a&~a empty)
/// and serialize/deserialize round-trip identity.
Status check_wah_random_algebra(std::uint64_t seed, std::uint64_t num_bits);

/// Mergeable-histogram laws over seeded random partitions of one dataset:
/// Merge commutativity (exact equality), associativity up to trailing
/// empty-bin padding, merged total/min/max/nan accounting, and estimate()
/// soundness (lower <= true hit count <= upper) against brute force for a
/// sweep of intervals.
Status check_histogram_merge_laws(std::uint64_t seed);

/// Planner ordering invariant: in every AND-term of the plan for `query`,
/// conjunct selectivity estimates are non-decreasing (the driver is the
/// most selective conjunct).  Uses the same estimate the planner uses.
Status check_planner_monotonicity(const obj::ObjectStore& store,
                                  const query::QueryPtr& query);

/// Sorted-replica structural invariants for the replica of `source`:
/// replica values ascending, permutation is a bijection onto [0, n),
/// replica[i] bit-identical to source[perm[i]], and the replica's regions
/// tile [0, n) exactly.
Status check_sorted_replica(const obj::ObjectStore& store, ObjectId source);

/// Trace-vs-ledger reconciliation: for each "rpc.gather" span in `trace`,
/// take the critical (max elapsed_s) "server.eval" / "server.get_data"
/// descendant and sum its per-stage args across gathers; the sums must
/// match the OpStats max_server_* fields the same operation reported
/// (within floating-point rounding).  This pins the invariant that span
/// annotations carry the *final* post-rescale ledger split and that the
/// per-round degraded-mode maxima accumulate the same way in both views.
Status check_trace_stats(const obs::Trace& trace, const query::OpStats& stats);

}  // namespace pdc::testing
