// Minimal leveled logger.  Off by default at Debug level; benches and
// examples raise the level via PDC_LOG_LEVEL or set_log_level().
#pragma once

#include <mutex>
#include <sstream>
#include <string_view>

namespace pdc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global minimum level that is actually emitted.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line (thread-safe, flushed) if `level` passes the filter.
void log_line(LogLevel level, std::string_view msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace pdc
