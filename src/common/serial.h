// Bounds-checked binary (de)serialization buffers.
//
// Everything that crosses a client<->server boundary in this codebase is
// serialized through these two classes — queries, region metadata,
// histograms, bitmap indexes, result selections.  That forces the same
// no-shared-memory discipline the real PDC system has over Mercury RPC, and
// gives a single place to audit wire-format safety.
//
// Format: little-endian, fixed-width integers, no alignment padding.
// Variable-length payloads are length-prefixed with a u64.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace pdc {

/// Append-only binary writer.
class SerialWriter {
 public:
  SerialWriter() = default;
  explicit SerialWriter(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  /// Write one trivially-copyable scalar.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Append raw bytes with no length prefix (caller manages framing).
  void put_raw(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Write a length-prefixed byte blob.
  void put_bytes(std::span<const std::uint8_t> bytes) {
    put<std::uint64_t>(bytes.size());
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Write a length-prefixed string.
  void put_string(std::string_view s) {
    put_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  /// Write a length-prefixed vector of trivially-copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return buf_;
  }

  /// Move the accumulated buffer out; the writer is empty afterwards.
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Scatter/gather binary writer: scalars and headers are copied eagerly
/// into an owned buffer, but bulk payloads can be appended as *borrowed*
/// spans that are not copied until take() assembles the final wire image.
/// A bulk byte therefore travels producer -> wire with exactly one copy,
/// and the assembled bytes are byte-identical to a SerialWriter fed the
/// same logical sequence (the _ref methods emit the same length prefixes).
///
/// Ownership contract: every borrowed span must stay valid until take()
/// (or until the writer is destroyed unassembled).  Response structs that
/// hold borrowed views across a call boundary pin the backing buffers
/// alongside them (see server::GetDataResponse::pins); violations are the
/// ASan-targeted span-lifetime tests' subject.
class GatherWriter {
 public:
  GatherWriter() = default;

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    owned_.insert(owned_.end(), p, p + sizeof(T));
  }

  /// Eagerly-copied raw bytes (no length prefix).
  void put_raw(std::span<const std::uint8_t> bytes) {
    owned_.insert(owned_.end(), bytes.begin(), bytes.end());
  }

  /// Eagerly-copied length-prefixed blob.
  void put_bytes(std::span<const std::uint8_t> bytes) {
    put<std::uint64_t>(bytes.size());
    put_raw(bytes);
  }

  void put_string(std::string_view s) {
    put_bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  /// Eagerly-copied length-prefixed vector.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    owned_.insert(owned_.end(), p, p + v.size() * sizeof(T));
  }

  /// Borrowed raw bytes (no length prefix, no copy until take()).
  void put_raw_ref(std::span<const std::uint8_t> bytes) {
    if (bytes.empty()) return;
    segments_.push_back({owned_.size(), bytes});
    borrowed_total_ += bytes.size();
  }

  /// Borrowed length-prefixed blob: the u64 prefix is owned, the payload
  /// is borrowed.  Wire bytes match put_bytes exactly.
  void put_bytes_ref(std::span<const std::uint8_t> bytes) {
    put<std::uint64_t>(bytes.size());
    put_raw_ref(bytes);
  }

  /// Borrowed length-prefixed vector; wire bytes match put_vector exactly.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector_ref(std::span<const T> v) {
    put<std::uint64_t>(v.size());
    put_raw_ref({reinterpret_cast<const std::uint8_t*>(v.data()),
                 v.size() * sizeof(T)});
  }

  /// Total assembled size (owned + borrowed).
  [[nodiscard]] std::size_t size() const noexcept {
    return owned_.size() + borrowed_total_;
  }

  [[nodiscard]] std::size_t borrowed_segments() const noexcept {
    return segments_.size();
  }

  /// Assemble owned and borrowed pieces, in order, into one buffer — the
  /// single copy of every borrowed payload.  The writer is empty after.
  [[nodiscard]] std::vector<std::uint8_t> take() {
    std::vector<std::uint8_t> out;
    out.reserve(size());
    std::size_t done = 0;
    for (const Segment& seg : segments_) {
      out.insert(out.end(), owned_.begin() + done,
                 owned_.begin() + seg.owned_end);
      done = seg.owned_end;
      out.insert(out.end(), seg.bytes.begin(), seg.bytes.end());
    }
    out.insert(out.end(), owned_.begin() + done, owned_.end());
    owned_.clear();
    segments_.clear();
    borrowed_total_ = 0;
    return out;
  }

 private:
  /// Borrowed bytes spliced in after the first `owned_end` owned bytes.
  struct Segment {
    std::size_t owned_end;
    std::span<const std::uint8_t> bytes;
  };

  std::vector<std::uint8_t> owned_;
  std::vector<Segment> segments_;
  std::size_t borrowed_total_ = 0;
};

/// Bounds-checked binary reader over a borrowed byte span.
/// The underlying bytes must outlive the reader.
class SerialReader {
 public:
  explicit SerialReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Read one scalar; fails with Corruption on underrun.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Status get(T& out) {
    if (pos_ + sizeof(T) > bytes_.size()) {
      return Status::Corruption("serial underrun reading scalar");
    }
    std::memcpy(&out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::Ok();
  }

  /// Read a length-prefixed string.  The length is validated against the
  /// bytes actually remaining BEFORE any allocation, so a hostile prefix
  /// can never trigger a large allocation (and `pos_ + n` can never wrap).
  Status get_string(std::string& out) {
    std::uint64_t n = 0;
    PDC_RETURN_IF_ERROR(get(n));
    if (n > remaining()) {
      return Status::Corruption("serial underrun reading string");
    }
    out.assign(reinterpret_cast<const char*>(bytes_.data() + pos_),
               static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return Status::Ok();
  }

  /// Read a length-prefixed vector of trivially-copyable elements.  The
  /// element count is clamped to what the remaining bytes could possibly
  /// hold before resizing, so untrusted input cannot force an allocation
  /// larger than the input itself.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Status get_vector(std::vector<T>& out) {
    std::uint64_t n = 0;
    PDC_RETURN_IF_ERROR(get(n));
    if (n > remaining() / sizeof(T)) {
      return Status::Corruption("serial underrun reading vector");
    }
    const std::size_t nbytes = static_cast<std::size_t>(n) * sizeof(T);
    out.resize(static_cast<std::size_t>(n));
    std::memcpy(out.data(), bytes_.data() + pos_, nbytes);
    pos_ += nbytes;
    return Status::Ok();
  }

  /// Read a length-prefixed blob as a borrowed view (no copy).
  Status get_bytes_view(std::span<const std::uint8_t>& out) {
    std::uint64_t n = 0;
    PDC_RETURN_IF_ERROR(get(n));
    if (n > remaining()) {
      return Status::Corruption("serial underrun reading bytes");
    }
    out = bytes_.subspan(pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return Status::Ok();
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace pdc
