#include "common/status.h"

namespace pdc {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kOverloaded: return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(status_code_name(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace pdc
