// Fixed-size worker pool used for parallel ingest, sorting and the
// full-scan baseline.  PDC servers themselves own dedicated threads via the
// rpc module; this pool is for data-parallel helper loops.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pdc {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Work is divided into contiguous blocks, one per worker.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pdc
