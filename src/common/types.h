// Core identifier and runtime-type vocabulary shared by every PDC module.
//
// Mirrors the paper's public API surface (Fig. 1): `pdc_id_t` object ids,
// `pdc_query_op_t` comparison operators and `pdc_type_t` element types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pdc {

/// Globally unique id for containers, objects and metadata objects.
/// Id 0 is reserved as "invalid".
using ObjectId = std::uint64_t;
inline constexpr ObjectId kInvalidObjectId = 0;

/// Id of a PDC server within a deployment (dense, 0..num_servers-1).
using ServerId = std::uint32_t;

/// Index of a region within its object (dense, 0..num_regions-1).
using RegionIndex = std::uint32_t;

/// Comparison operator of a simple query condition (paper: pdc_query_op_t).
enum class QueryOp : std::uint8_t {
  kGT = 0,  ///<  >
  kGTE,     ///<  >=
  kLT,      ///<  <
  kLTE,     ///<  <=
  kEQ,      ///<  ==
};

std::string_view query_op_name(QueryOp op) noexcept;

/// Runtime element type of an object (paper: pdc_type_t).
enum class PdcType : std::uint8_t {
  kFloat = 0,
  kDouble,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
};

/// Size in bytes of one element of `type`.
constexpr std::size_t pdc_type_size(PdcType type) noexcept {
  switch (type) {
    case PdcType::kFloat: return 4;
    case PdcType::kDouble: return 8;
    case PdcType::kInt32: return 4;
    case PdcType::kUInt32: return 4;
    case PdcType::kInt64: return 8;
    case PdcType::kUInt64: return 8;
  }
  return 0;
}

std::string_view pdc_type_name(PdcType type) noexcept;

/// Compile-time map from C++ element type to PdcType tag.
template <typename T> struct PdcTypeOf;
template <> struct PdcTypeOf<float> {
  static constexpr PdcType value = PdcType::kFloat;
};
template <> struct PdcTypeOf<double> {
  static constexpr PdcType value = PdcType::kDouble;
};
template <> struct PdcTypeOf<std::int32_t> {
  static constexpr PdcType value = PdcType::kInt32;
};
template <> struct PdcTypeOf<std::uint32_t> {
  static constexpr PdcType value = PdcType::kUInt32;
};
template <> struct PdcTypeOf<std::int64_t> {
  static constexpr PdcType value = PdcType::kInt64;
};
template <> struct PdcTypeOf<std::uint64_t> {
  static constexpr PdcType value = PdcType::kUInt64;
};

template <typename T>
inline constexpr PdcType kPdcTypeOf = PdcTypeOf<T>::value;

/// Element types accepted by the templated query/data entry points.
template <typename T>
concept PdcElement = requires { PdcTypeOf<T>::value; };

/// A half-open 1-D element range [offset, offset+count) within an object.
/// Used both for region extents and for user spatial query constraints
/// (paper: PDCquery_set_region).
struct Extent1D {
  std::uint64_t offset = 0;
  std::uint64_t count = 0;

  [[nodiscard]] std::uint64_t end() const noexcept { return offset + count; }
  [[nodiscard]] bool empty() const noexcept { return count == 0; }

  /// True if `pos` lies inside the extent.
  [[nodiscard]] bool contains(std::uint64_t pos) const noexcept {
    return pos >= offset && pos < end();
  }

  /// Intersection with another extent (possibly empty).
  [[nodiscard]] Extent1D intersect(const Extent1D& other) const noexcept {
    const std::uint64_t lo = offset > other.offset ? offset : other.offset;
    const std::uint64_t hi = end() < other.end() ? end() : other.end();
    return hi > lo ? Extent1D{lo, hi - lo} : Extent1D{lo, 0};
  }

  bool operator==(const Extent1D&) const = default;
};

/// Evaluate `value <op> rhs` for one element.
template <typename T>
[[nodiscard]] constexpr bool eval_op(T value, QueryOp op, T rhs) noexcept {
  switch (op) {
    case QueryOp::kGT: return value > rhs;
    case QueryOp::kGTE: return value >= rhs;
    case QueryOp::kLT: return value < rhs;
    case QueryOp::kLTE: return value <= rhs;
    case QueryOp::kEQ: return value == rhs;
  }
  return false;
}

}  // namespace pdc
