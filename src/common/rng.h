// Deterministic, platform-independent random number generation.
//
// Workload generators and the histogram sampling step (Algorithm 1, line 1)
// must be reproducible across runs and machines, so we ship our own
// xoshiro256** instead of relying on libstdc++ distribution internals.
#pragma once

#include <cmath>
#include <cstdint>

namespace pdc {

/// SplitMix64 — used only to seed Xoshiro256 from a single 64-bit seed.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const unsigned __int128 product =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal() noexcept {
    double u1 = next_double();
    const double u2 = next_double();
    // Avoid log(0).
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586 * u2);
  }

  /// Exponential with rate `lambda`.
  double exponential(double lambda) noexcept {
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -std::log(u) / lambda;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace pdc
