// Status / Result error-handling primitives for the PDC-Query codebase.
//
// All fallible public APIs return either a `Status` (operations with no
// payload) or a `Result<T>` (operations producing a value).  Exceptions are
// reserved for programming errors (contract violations); expected runtime
// failures (missing object, I/O error, malformed query) travel as statuses.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace pdc {

/// Error category for a failed operation.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< object / region / attribute does not exist
  kAlreadyExists,     ///< create collided with an existing entity
  kOutOfRange,        ///< offset/size outside the entity bounds
  kIoError,           ///< backing storage failed
  kCorruption,        ///< on-disk or on-wire bytes failed validation
  kUnimplemented,     ///< feature not available in this configuration
  kFailedPrecondition,///< call sequencing violated (e.g. selection before data)
  kResourceExhausted, ///< memory cap or capacity exceeded
  kInternal,          ///< invariant broken inside the library
  kUnavailable,       ///< no server can currently serve the request
  kOverloaded,        ///< request shed by admission control; retry later
};

/// Human-readable name of a status code ("Ok", "NotFound", ...).
std::string_view status_code_name(StatusCode code) noexcept;

/// Lightweight error-or-success value.  Success carries no allocation.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs an error status with a message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status NotFound(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status AlreadyExists(std::string msg) {
    return {StatusCode::kAlreadyExists, std::move(msg)};
  }
  static Status OutOfRange(std::string msg) {
    return {StatusCode::kOutOfRange, std::move(msg)};
  }
  static Status IoError(std::string msg) {
    return {StatusCode::kIoError, std::move(msg)};
  }
  static Status Corruption(std::string msg) {
    return {StatusCode::kCorruption, std::move(msg)};
  }
  static Status Unimplemented(std::string msg) {
    return {StatusCode::kUnimplemented, std::move(msg)};
  }
  static Status FailedPrecondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status ResourceExhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status Internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static Status Unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  static Status Overloaded(std::string msg) {
    return {StatusCode::kOverloaded, std::move(msg)};
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "NotFound: object 42" or "Ok".
  [[nodiscard]] std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-Status.  Mirrors the subset of std::expected we need on C++20.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return 42;`
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from an error status: `return Status::NotFound(...);`
  /// Precondition: `status` is not OK (an OK status carries no value).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(payload_);
  }

  [[nodiscard]] const Status& status() const noexcept {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  /// Access the value.  Precondition: ok().
  [[nodiscard]] T& value() & { return std::get<T>(payload_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(payload_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(payload_)); }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace pdc

/// Propagate a non-OK Status out of the current function.
#define PDC_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::pdc::Status pdc_status_ = (expr);            \
    if (!pdc_status_.ok()) return pdc_status_;     \
  } while (0)

#define PDC_INTERNAL_CONCAT2(a, b) a##b
#define PDC_INTERNAL_CONCAT(a, b) PDC_INTERNAL_CONCAT2(a, b)
#define PDC_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

/// Evaluate a Result expression; on error propagate, on success bind `lhs`.
#define PDC_ASSIGN_OR_RETURN(lhs, expr) \
  PDC_INTERNAL_ASSIGN_OR_RETURN(        \
      PDC_INTERNAL_CONCAT(pdc_result_, __LINE__), lhs, expr)
