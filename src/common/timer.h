// Wall-clock stopwatch for the real-time measurements that accompany the
// simulated CostLedger numbers in benchmark output.
#pragma once

#include <chrono>

namespace pdc {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds since construction or last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pdc
