#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace pdc {
namespace {

std::atomic<int> g_level = [] {
  if (const char* env = std::getenv("PDC_LOG_LEVEL")) {
    return std::atoi(env);
  }
  return static_cast<int>(LogLevel::kWarn);
}();

std::mutex g_log_mu;

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, std::string_view msg) {
  if (level < log_level()) return;
  std::lock_guard lock(g_log_mu);
  std::fprintf(stderr, "[pdc %.*s] %.*s\n",
               static_cast<int>(level_tag(level).size()), level_tag(level).data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace pdc
