// Work-stealing execution pool for intra-server parallelism.
//
// The paper's servers overlap region I/O and evaluation; this pool is the
// lever that turns per-server latency from sum-of-regions into
// max-over-workers.  Two layers use it:
//   - QueryServer region loops (full scan, bitmap bin decode, sorted
//     boundary search, conjunct restriction) submit per-region tasks;
//   - ServerRuntime keeps up to K requests per server in flight so one
//     slow query does not head-of-line-block metadata/get-data traffic.
//
// Design: fixed worker count, one mutex-protected deque per worker.  A
// worker pushes and pops its own deque LIFO (cache-warm depth-first) and
// steals FIFO from the backs of its peers (oldest, largest-grained work) —
// the classic work-stealing discipline, with plain mutexes instead of a
// lock-free Chase-Lev deque because tasks here are region-sized (>=
// microseconds) and TSan-provable correctness matters more than nanosecond
// push/pop latency.
//
// Nested parallelism is the norm (a request task spawns region tasks on
// the same pool), so blocking a worker inside TaskGroup::wait() would
// deadlock a size-1 pool.  wait() therefore *helps*: while its tasks are
// outstanding it executes queued tasks of its own group on the waiting
// thread.  Helping is restricted to the waiting group so a region-level
// wait never inlines an unrelated whole-request task (which would add
// that request's full latency to this one and nest handler stacks).
//
// This is the one pool implementation in the tree: the h5lite full-scan
// baseline shares it (one short-lived pool per load/scan, sized to the
// modeled rank count) via parallel_for.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pdc::exec {

/// Execution context of the pool task running on the calling thread, for
/// trace annotation (worker id, steal vs. own-pop).  Thread-local; valid
/// only while a task body is executing.
struct TaskInfo {
  bool in_task = false;      ///< a pool task is executing on this thread
  std::uint32_t worker = ~std::uint32_t{0};  ///< deque owner; ~0 = helper
                                             ///< thread (TaskGroup::wait)
  bool stolen = false;       ///< task migrated off the deque it was pushed to
};

/// Context of the innermost pool task on this thread (zero-initialized
/// when none is running).
[[nodiscard]] TaskInfo current_task() noexcept;

/// Lifetime counters (atomically maintained, monotone).
struct PoolStats {
  std::uint64_t submitted = 0;   ///< tasks accepted
  std::uint64_t executed = 0;    ///< tasks completed
  std::uint64_t steals = 0;      ///< tasks taken from another worker's deque
  std::uint64_t queue_peak = 0;  ///< high-water mark of queued (not yet
                                 ///< started) tasks
};

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(std::uint32_t threads);

  /// Drains every queued task (shutdown-with-queued-work still runs the
  /// work — submitters may be waiting on side effects), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Enqueue a task.  Tasks must not throw (wrap user code in TaskGroup,
  /// which captures exceptions and rethrows from wait()).  Safe from any
  /// thread, including pool workers (goes to the local deque, LIFO).
  /// `tag` labels the task for filtered helping (TaskGroup passes its own
  /// address); workers ignore it.
  void submit(Task task, const void* tag = nullptr);

  /// Execute one queued task on the calling thread; false if none was
  /// eligible.  With a null `tag` any queued task qualifies; with a tag
  /// only tasks submitted under that tag do.  This is the "helping"
  /// primitive TaskGroup::wait uses so nested parallel sections cannot
  /// deadlock, even at pool size 1 — the tag filter keeps a region-level
  /// wait from inlining an unrelated whole-request task (which would
  /// inflate its latency and nest handler stacks).
  bool try_run_one(const void* tag = nullptr);

  [[nodiscard]] PoolStats stats() const noexcept;

  /// Process-wide shared pool, created on first use.  Sized by the
  /// PDC_THREADS environment variable; defaults to the hardware
  /// concurrency (clamped to [1, 8] so a laptop does not oversubscribe).
  static ThreadPool& process_pool();

 private:
  /// A queued task plus the helping tag it was submitted under.
  struct Entry {
    Task fn;
    const void* tag = nullptr;
  };
  struct Worker {
    std::mutex mu;
    std::deque<Entry> deque;  ///< front = newest (LIFO pop), back = steal end
  };

  void worker_loop(std::uint32_t self);
  bool pop_or_steal(std::uint32_t self, const void* tag, Task& out,
                    bool& stolen);
  /// Run `task` with thread-local TaskInfo published for current_task(),
  /// restoring the previous context afterwards (helping nests tasks).
  void run_task(Task& task, bool stolen);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  /// Sleep coordination: workers block here when every deque is empty.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<std::uint64_t> queued_{0};  ///< tasks pushed, not yet popped
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> queue_peak_{0};
};

/// Fork-join scope over a pool.  spawn() forks tasks; wait() helps run
/// queued work until every spawned task finished, then rethrows the first
/// captured exception.  With a null pool, spawn() runs inline (serial
/// fallback, used when a server is configured without parallelism).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) noexcept : pool_(pool) {}
  ~TaskGroup() { wait_no_throw(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void spawn(std::function<void()> fn);

  /// Blocks (helping) until all spawned tasks completed; rethrows the
  /// first exception any task threw.
  void wait();

 private:
  void run_captured(const std::function<void()>& fn) noexcept;
  void wait_no_throw() noexcept;

  ThreadPool* pool_;
  std::atomic<std::uint64_t> outstanding_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::exception_ptr first_error_;  ///< guarded by mu_
};

/// Run body(i) for i in [0, n): one pool task per index when `pool` is
/// non-null, inline otherwise.  Blocks until every index completed.  The
/// per-index granularity is deliberate — callers pass region-sized work
/// items, and per-region tasks are what lets an imbalanced region list
/// load-balance across workers.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace pdc::exec
