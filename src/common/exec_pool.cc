#include "common/exec_pool.h"

#include <algorithm>
#include <cstdlib>

namespace pdc::exec {
namespace {

/// Which worker deque the calling thread owns, or kNotWorker.
constexpr std::uint32_t kNotWorker = ~std::uint32_t{0};
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::uint32_t tls_worker = kNotWorker;

}  // namespace

ThreadPool::ThreadPool(std::uint32_t threads) {
  const std::uint32_t n = std::max<std::uint32_t>(1, threads);
  workers_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  // A worker submits to its own deque (front: depth-first, cache-warm);
  // external threads scatter round-robin so no single deque becomes the
  // bottleneck before stealing kicks in.
  std::uint32_t target;
  if (tls_pool == this && tls_worker != kNotWorker) {
    target = tls_worker;
  } else {
    target = static_cast<std::uint32_t>(
        submitted_.load(std::memory_order_relaxed) % workers_.size());
  }
  {
    std::lock_guard lock(workers_[target]->mu);
    workers_[target]->deque.push_front(std::move(task));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t depth = queued_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = queue_peak_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !queue_peak_.compare_exchange_weak(peak, depth,
                                            std::memory_order_relaxed)) {
  }
  {
    // Pairing the notify with the sleep mutex closes the lost-wakeup
    // window between a worker's empty scan and its cv wait.
    std::lock_guard lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::pop_or_steal(std::uint32_t self, Task& out) {
  // Own deque first, newest-first.
  if (self != kNotWorker) {
    Worker& own = *workers_[self];
    std::lock_guard lock(own.mu);
    if (!own.deque.empty()) {
      out = std::move(own.deque.front());
      own.deque.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal oldest-first from peers, starting after ourselves so victims
  // rotate instead of everyone hammering worker 0.
  const std::uint32_t n = static_cast<std::uint32_t>(workers_.size());
  const std::uint32_t start = self == kNotWorker ? 0 : self + 1;
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::uint32_t victim = (start + k) % n;
    if (victim == self) continue;
    Worker& w = *workers_[victim];
    std::lock_guard lock(w.mu);
    if (w.deque.empty()) continue;
    out = std::move(w.deque.back());
    w.deque.pop_back();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    // External helper threads (TaskGroup::wait callers) count too: the
    // task still migrated off the deque it was pushed to.
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool ThreadPool::try_run_one() {
  const std::uint32_t self = tls_pool == this ? tls_worker : kNotWorker;
  Task task;
  if (!pop_or_steal(self, task)) return false;
  task();
  executed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadPool::worker_loop(std::uint32_t self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    Task task;
    if (pop_or_steal(self, task)) {
      task();
      executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock lock(sleep_mu_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_relaxed) > 0;
    });
    // Shutdown drains: exit only once every deque is empty so queued work
    // still runs (the destructor's contract).
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

PoolStats ThreadPool::stats() const noexcept {
  PoolStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.queue_peak = queue_peak_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& ThreadPool::process_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("PDC_THREADS")) {
      const unsigned long v = std::strtoul(env, nullptr, 10);
      if (v > 0) return static_cast<std::uint32_t>(std::min(v, 64ul));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::clamp<std::uint32_t>(hw, 1, 8);
  }());
  return pool;
}

void TaskGroup::run_captured(const std::function<void()>& fn) noexcept {
  try {
    fn();
  } catch (...) {
    std::lock_guard lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void TaskGroup::spawn(std::function<void()> fn) {
  if (pool_ == nullptr) {
    run_captured(fn);
    return;
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  pool_->submit([this, fn = std::move(fn)] {
    run_captured(fn);
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task out: wake the waiter.  Taking mu_ orders this notify
      // after the waiter's predicate check, closing the lost-wakeup race.
      std::lock_guard lock(mu_);
      cv_.notify_all();
    }
  });
}

void TaskGroup::wait_no_throw() noexcept {
  if (pool_ != nullptr) {
    while (outstanding_.load(std::memory_order_acquire) > 0) {
      // Help: run queued pool work (ours or anyone's) on this thread.  If
      // nothing is queued, our tasks are mid-execution on other workers —
      // block until the last one signals.
      if (pool_->try_run_one()) continue;
      // Safe to block without re-scanning the deques: tasks of this group
      // can only be queued by tasks of this group, and those run on pool
      // workers — which never sleep while work is queued.
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] {
        return outstanding_.load(std::memory_order_acquire) == 0;
      });
    }
  }
}

void TaskGroup::wait() {
  wait_no_throw();
  std::lock_guard lock(mu_);
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || n < 2) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  TaskGroup group(pool);
  for (std::size_t i = 0; i < n; ++i) {
    group.spawn([&body, i] { body(i); });
  }
  group.wait();
}

}  // namespace pdc::exec
