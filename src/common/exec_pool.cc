#include "common/exec_pool.h"

#include <algorithm>
#include <cstdlib>
#include <iterator>

namespace pdc::exec {
namespace {

/// Which worker deque the calling thread owns, or kNotWorker.
constexpr std::uint32_t kNotWorker = ~std::uint32_t{0};
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::uint32_t tls_worker = kNotWorker;
/// Innermost executing task on this thread (helping nests execution, so
/// run_task saves and restores around the body).
thread_local TaskInfo tls_task;

}  // namespace

TaskInfo current_task() noexcept { return tls_task; }

ThreadPool::ThreadPool(std::uint32_t threads) {
  const std::uint32_t n = std::max<std::uint32_t>(1, threads);
  workers_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(Task task, const void* tag) {
  // A worker submits to its own deque (front: depth-first, cache-warm);
  // external threads scatter round-robin so no single deque becomes the
  // bottleneck before stealing kicks in.
  std::uint32_t target;
  if (tls_pool == this && tls_worker != kNotWorker) {
    target = tls_worker;
  } else {
    target = static_cast<std::uint32_t>(
        submitted_.load(std::memory_order_relaxed) % workers_.size());
  }
  {
    std::lock_guard lock(workers_[target]->mu);
    workers_[target]->deque.push_front(Entry{std::move(task), tag});
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t depth = queued_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = queue_peak_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !queue_peak_.compare_exchange_weak(peak, depth,
                                            std::memory_order_relaxed)) {
  }
  {
    // Pairing the notify with the sleep mutex closes the lost-wakeup
    // window between a worker's empty scan and its cv wait.
    std::lock_guard lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::pop_or_steal(std::uint32_t self, const void* tag,
                              Task& out, bool& stolen) {
  // Own deque first, newest-first.  With a tag filter, take the newest
  // matching entry (the deque may hold other groups' tasks in between).
  if (self != kNotWorker) {
    Worker& own = *workers_[self];
    std::lock_guard lock(own.mu);
    for (auto it = own.deque.begin(); it != own.deque.end(); ++it) {
      if (tag != nullptr && it->tag != tag) continue;
      out = std::move(it->fn);
      own.deque.erase(it);
      queued_.fetch_sub(1, std::memory_order_relaxed);
      stolen = false;
      return true;
    }
  }
  // Steal oldest-first from peers, starting after ourselves so victims
  // rotate instead of everyone hammering worker 0.
  const std::uint32_t n = static_cast<std::uint32_t>(workers_.size());
  const std::uint32_t start = self == kNotWorker ? 0 : self + 1;
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::uint32_t victim = (start + k) % n;
    if (victim == self) continue;
    Worker& w = *workers_[victim];
    std::lock_guard lock(w.mu);
    for (auto it = w.deque.rbegin(); it != w.deque.rend(); ++it) {
      if (tag != nullptr && it->tag != tag) continue;
      out = std::move(it->fn);
      w.deque.erase(std::next(it).base());
      queued_.fetch_sub(1, std::memory_order_relaxed);
      // External helper threads (TaskGroup::wait callers) count too: the
      // task still migrated off the deque it was pushed to.
      steals_.fetch_add(1, std::memory_order_relaxed);
      stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(Task& task, bool stolen) {
  const TaskInfo saved = tls_task;
  tls_task.in_task = true;
  tls_task.worker = tls_pool == this ? tls_worker : kNotWorker;
  tls_task.stolen = stolen;
  task();
  tls_task = saved;
  executed_.fetch_add(1, std::memory_order_relaxed);
}

bool ThreadPool::try_run_one(const void* tag) {
  const std::uint32_t self = tls_pool == this ? tls_worker : kNotWorker;
  Task task;
  bool stolen = false;
  if (!pop_or_steal(self, tag, task, stolen)) return false;
  run_task(task, stolen);
  return true;
}

void ThreadPool::worker_loop(std::uint32_t self) {
  tls_pool = this;
  tls_worker = self;
  for (;;) {
    Task task;
    bool stolen = false;
    if (pop_or_steal(self, /*tag=*/nullptr, task, stolen)) {
      run_task(task, stolen);
      continue;
    }
    std::unique_lock lock(sleep_mu_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_relaxed) > 0;
    });
    // Shutdown drains: exit only once every deque is empty so queued work
    // still runs (the destructor's contract).
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

PoolStats ThreadPool::stats() const noexcept {
  PoolStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.queue_peak = queue_peak_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& ThreadPool::process_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("PDC_THREADS")) {
      const unsigned long v = std::strtoul(env, nullptr, 10);
      if (v > 0) return static_cast<std::uint32_t>(std::min(v, 64ul));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::clamp<std::uint32_t>(hw, 1, 8);
  }());
  return pool;
}

void TaskGroup::run_captured(const std::function<void()>& fn) noexcept {
  try {
    fn();
  } catch (...) {
    std::lock_guard lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void TaskGroup::spawn(std::function<void()> fn) {
  if (pool_ == nullptr) {
    run_captured(fn);
    return;
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  pool_->submit(
      [this, fn = std::move(fn)] {
        run_captured(fn);
        // Decrement and notify while holding mu_.  The waiter's exit path
        // (wait_no_throw) also takes mu_ after observing outstanding_==0,
        // so it cannot return — and destroy this group — until this block
        // has released the mutex; without the lock the waiter could free
        // the group between our decrement and the notify.
        std::lock_guard lock(mu_);
        if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          cv_.notify_all();
        }
      },
      /*tag=*/this);
}

void TaskGroup::wait_no_throw() noexcept {
  if (pool_ == nullptr) return;
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    // Help: run queued tasks *of this group* on this thread (the tag
    // filter keeps us from inlining an unrelated whole-request task).  If
    // none is queued, our tasks are mid-execution on other workers —
    // block until the last one signals.
    if (pool_->try_run_one(/*tag=*/this)) continue;
    // Safe to block without re-scanning the deques: if no group task is
    // queued, the outstanding ones are running on pool workers; any they
    // spawn into this group get drained by workers (which never sleep
    // while work is queued), and the final completion signals cv_.
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  // The loop can exit on the bare atomic load while the last task's
  // callback is still inside its mu_-protected decrement/notify block.
  // Taking mu_ here orders our return — and the caller's destruction of
  // this group — after that block has released the mutex.
  std::lock_guard lock(mu_);
}

void TaskGroup::wait() {
  wait_no_throw();
  std::lock_guard lock(mu_);
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || n < 2) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  TaskGroup group(pool);
  for (std::size_t i = 0; i < n; ++i) {
    group.spawn([&body, i] { body(i); });
  }
  group.wait();
}

}  // namespace pdc::exec
