// Simulated cost accounting.
//
// The paper evaluates PDC-Query on 64–512 Cori nodes against Lustre; this
// reproduction runs the same algorithms on one machine.  To report
// cluster-shaped elapsed times, every expensive action (PFS read, predicate
// scan, index decode, network transfer) charges its modeled cost into a
// CostLedger.  Work is still executed for real — ledgers only decide what a
// benchmark *reports*, never what a query *returns*.
//
// A query's simulated elapsed time is assembled by the query service as
//   broadcast + max over servers(server io+cpu) + response transfer + merge,
// matching the paper's end-to-end "query time" definition (§V).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

namespace pdc {

/// Tunable constants of the performance model.  Defaults approximate one
/// Cori Haswell node against Lustre (order-of-magnitude fidelity is all the
/// reproduction needs; shapes are driven by ratios, not absolutes).
struct CostModel {
  // --- storage ---
  // Note: the benchmarks scale the paper's 4-128 MB regions down ~128x;
  // the per-op latency is scaled correspondingly so the transfer/latency
  // regime (which decides full-read vs index tradeoffs) matches the paper.
  double disk_read_latency_s = 5.0e-4;   ///< per PFS read op (seek + server RPC)
  double ost_bandwidth_bps = 1.2e9;      ///< one OST, streaming, bytes/s
  double disk_write_latency_s = 6.0e-4;  ///< per PFS write op
  double ost_write_bandwidth_bps = 0.9e9;

  // --- deep memory hierarchy (per-region placement, paper §II) ---
  double nvram_read_latency_s = 2.0e-5;  ///< burst buffer / NVMe class
  double nvram_bandwidth_bps = 3.0e9;
  double memory_read_latency_s = 2.0e-7;  ///< another process's DRAM
  double memory_bandwidth_bps = 8.0e9;

  // --- compute (per server process) ---
  double scan_bandwidth_bps = 4.0e9;     ///< raw-value predicate evaluation (SIMD)
  double index_decode_bandwidth_bps = 3.0e9;  ///< WAH word decode/combine
  double memcpy_bandwidth_bps = 6.0e9;   ///< in-memory gather of result data
  double sort_bandwidth_bps = 2.0e8;     ///< replica build (reported once)

  // --- network (client <-> server) ---
  double net_latency_s = 2.0e-5;         ///< per message
  double net_bandwidth_bps = 5.0e9;      ///< payload streaming

  /// Cost of one network message carrying `bytes` of payload.
  [[nodiscard]] double net_cost(std::uint64_t bytes) const noexcept {
    return net_latency_s + static_cast<double>(bytes) / net_bandwidth_bps;
  }

  /// Cost of scanning `bytes` of raw values with a predicate.
  [[nodiscard]] double scan_cost(std::uint64_t bytes) const noexcept {
    return static_cast<double>(bytes) / scan_bandwidth_bps;
  }
};

/// What a charged CPU interval was spent on.  Stage attribution feeds the
/// per-stage OpStats breakdown (io/decode/scan/merge) without changing any
/// total: every add_cpu lands in exactly one stage bucket.
enum class CpuStage : std::uint8_t {
  kOther = 0,  ///< uncategorized (setup, bookkeeping)
  kScan,       ///< predicate evaluation over raw values
  kDecode,     ///< WAH bitmap word decode/combine
  kMerge,      ///< sorts, unions, gathers — result data movement
};

/// Per-actor accumulator of simulated seconds, split by resource.
/// One ledger per task (or per client), so no locking is needed;
/// aggregation happens after the parallel section — sequentially via
/// merge(), or with the parallel accounting rule via merge_parallel().
class CostLedger {
 public:
  void add_io(double seconds) noexcept { io_s_ += seconds; }
  void add_cpu(double seconds, CpuStage stage = CpuStage::kOther) noexcept {
    cpu_s_ += seconds;
    stage_s_[static_cast<std::size_t>(stage)] += seconds;
  }
  void add_net(double seconds) noexcept { net_s_ += seconds; }
  void add_read_ops(std::uint64_t n) noexcept { read_ops_ += n; }
  void add_bytes_read(std::uint64_t n) noexcept { bytes_read_ += n; }

  [[nodiscard]] double io_seconds() const noexcept { return io_s_; }
  [[nodiscard]] double cpu_seconds() const noexcept { return cpu_s_; }
  [[nodiscard]] double net_seconds() const noexcept { return net_s_; }
  [[nodiscard]] double total_seconds() const noexcept {
    return io_s_ + cpu_s_ + net_s_;
  }
  [[nodiscard]] double stage_seconds(CpuStage stage) const noexcept {
    return stage_s_[static_cast<std::size_t>(stage)];
  }
  [[nodiscard]] std::uint64_t read_ops() const noexcept { return read_ops_; }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept {
    return bytes_read_;
  }

  /// Merge another ledger into this one (sequential composition).
  void merge(const CostLedger& other) noexcept {
    io_s_ += other.io_s_;
    cpu_s_ += other.cpu_s_;
    net_s_ += other.net_s_;
    for (std::size_t i = 0; i < kStages; ++i) stage_s_[i] += other.stage_s_[i];
    read_ops_ += other.read_ops_;
    bytes_read_ += other.bytes_read_;
  }

  /// Parallel composition: `parts` ran concurrently on `threads` cores of
  /// one server.  CPU elapsed time becomes the work-stealing bound
  /// max(longest task, total work / threads) — ceil(work/threads) floored
  /// by the critical task, so the reported time is monotonically
  /// non-increasing in `threads` and never beats the slowest single task.
  /// I/O, read ops and bytes stay summed: threads on one node share its
  /// PFS link, and the OST-contention model (effective_read_bandwidth) is
  /// deliberately unchanged by intra-server threading.  Per-stage CPU is
  /// scaled proportionally so the stage breakdown still sums to the total.
  void merge_parallel(std::span<const CostLedger> parts,
                      std::uint32_t threads) noexcept {
    CostLedger sum;
    double max_task_cpu = 0.0;
    for (const CostLedger& part : parts) {
      sum.merge(part);
      max_task_cpu = std::max(max_task_cpu, part.cpu_s_);
    }
    const double elapsed_cpu =
        threads <= 1 ? sum.cpu_s_
                     : std::max(max_task_cpu,
                                sum.cpu_s_ / static_cast<double>(threads));
    const double scale = sum.cpu_s_ > 0.0 ? elapsed_cpu / sum.cpu_s_ : 0.0;
    io_s_ += sum.io_s_;
    cpu_s_ += elapsed_cpu;
    net_s_ += sum.net_s_;
    for (std::size_t i = 0; i < kStages; ++i) {
      stage_s_[i] += sum.stage_s_[i] * scale;
    }
    read_ops_ += sum.read_ops_;
    bytes_read_ += sum.bytes_read_;
  }

  void reset() noexcept { *this = CostLedger{}; }

 private:
  static constexpr std::size_t kStages = 4;

  double io_s_ = 0.0;
  double cpu_s_ = 0.0;
  double net_s_ = 0.0;
  double stage_s_[kStages] = {0.0, 0.0, 0.0, 0.0};
  std::uint64_t read_ops_ = 0;
  std::uint64_t bytes_read_ = 0;
};

/// Critical-path combinator: elapsed time of actors running in parallel.
[[nodiscard]] inline double parallel_elapsed(double a, double b) noexcept {
  return std::max(a, b);
}

}  // namespace pdc
