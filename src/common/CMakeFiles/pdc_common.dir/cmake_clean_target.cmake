file(REMOVE_RECURSE
  "libpdc_common.a"
)
