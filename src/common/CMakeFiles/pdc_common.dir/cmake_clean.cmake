file(REMOVE_RECURSE
  "CMakeFiles/pdc_common.dir/exec_pool.cc.o"
  "CMakeFiles/pdc_common.dir/exec_pool.cc.o.d"
  "CMakeFiles/pdc_common.dir/log.cc.o"
  "CMakeFiles/pdc_common.dir/log.cc.o.d"
  "CMakeFiles/pdc_common.dir/status.cc.o"
  "CMakeFiles/pdc_common.dir/status.cc.o.d"
  "CMakeFiles/pdc_common.dir/types.cc.o"
  "CMakeFiles/pdc_common.dir/types.cc.o.d"
  "libpdc_common.a"
  "libpdc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
