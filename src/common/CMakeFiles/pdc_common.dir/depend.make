# Empty dependencies file for pdc_common.
# This may be replaced when dependencies are built.
