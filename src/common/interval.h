// Value-domain intervals for query conditions.
//
// A simple condition (`Energy > 2.0`) and any AND-combination of conditions
// on the same object reduce to one interval of the value domain.  Histogram
// estimation, bitmap-bin selection, sorted-replica range lookup and region
// min/max pruning all consume this form.
#pragma once

#include <limits>

#include "common/types.h"

namespace pdc {

/// An interval of the (real) value domain with independently open/closed
/// endpoints.  Default-constructed: the whole line.
struct ValueInterval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_inclusive = true;
  bool hi_inclusive = true;

  /// Interval selected by a single comparison `x <op> value`.
  [[nodiscard]] static ValueInterval from_op(QueryOp op, double value) noexcept {
    ValueInterval r;
    switch (op) {
      case QueryOp::kGT:
        r.lo = value;
        r.lo_inclusive = false;
        break;
      case QueryOp::kGTE:
        r.lo = value;
        break;
      case QueryOp::kLT:
        r.hi = value;
        r.hi_inclusive = false;
        break;
      case QueryOp::kLTE:
        r.hi = value;
        break;
      case QueryOp::kEQ:
        r.lo = r.hi = value;
        break;
    }
    return r;
  }

  /// True if no value satisfies the interval.
  [[nodiscard]] bool empty() const noexcept {
    if (lo > hi) return true;
    if (lo == hi) return !(lo_inclusive && hi_inclusive);
    return false;
  }

  [[nodiscard]] bool contains(double v) const noexcept {
    if (v != v) return false;  // NaN satisfies no range condition
    if (v < lo || v > hi) return false;
    if (v == lo && !lo_inclusive) return false;
    if (v == hi && !hi_inclusive) return false;
    return true;
  }

  /// Conjunction of two conditions on the same variable.
  [[nodiscard]] ValueInterval intersect(const ValueInterval& o) const noexcept {
    ValueInterval r = *this;
    if (o.lo > r.lo || (o.lo == r.lo && !o.lo_inclusive)) {
      r.lo = o.lo;
      r.lo_inclusive = o.lo_inclusive;
    }
    if (o.hi < r.hi || (o.hi == r.hi && !o.hi_inclusive)) {
      r.hi = o.hi;
      r.hi_inclusive = o.hi_inclusive;
    }
    return r;
  }

  /// True if the interval intersects the closed range [min_v, max_v]
  /// (used for region pruning against stored min/max).
  [[nodiscard]] bool overlaps_closed(double min_v, double max_v) const noexcept {
    if (max_v < lo || (max_v == lo && !lo_inclusive)) return false;
    if (min_v > hi || (min_v == hi && !hi_inclusive)) return false;
    return true;
  }

  /// True if the whole closed range [min_v, max_v] satisfies the interval
  /// (region is all-hits; no element check needed).
  [[nodiscard]] bool covers_closed(double min_v, double max_v) const noexcept {
    return contains(min_v) && contains(max_v);
  }
};

}  // namespace pdc
