#include "common/types.h"

namespace pdc {

std::string_view query_op_name(QueryOp op) noexcept {
  switch (op) {
    case QueryOp::kGT: return ">";
    case QueryOp::kGTE: return ">=";
    case QueryOp::kLT: return "<";
    case QueryOp::kLTE: return "<=";
    case QueryOp::kEQ: return "==";
  }
  return "?";
}

std::string_view pdc_type_name(PdcType type) noexcept {
  switch (type) {
    case PdcType::kFloat: return "float";
    case PdcType::kDouble: return "double";
    case PdcType::kInt32: return "int32";
    case PdcType::kUInt32: return "uint32";
    case PdcType::kInt64: return "int64";
    case PdcType::kUInt64: return "uint64";
  }
  return "?";
}

}  // namespace pdc
