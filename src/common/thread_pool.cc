#include "common/thread_pool.h"

#include <algorithm>

namespace pdc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t num_blocks = std::min(n, workers_.size());
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(n, lo + block);
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace pdc
