// Mergeable histograms — the paper's core contribution (§III-D2, §IV).
//
// A "local" histogram is built for every region at ingest time using the
// paper's Algorithm 1: the bin width is rounded DOWN to a power of two and
// bin boundaries are anchored on the integer lattice of that width, so any
// set of local histograms — even with different widths — can later be merged
// into one "global" histogram of the whole object without touching the data
// again and without any global communication at build time.
//
// The histogram serves two query-time purposes:
//   1. region elimination — a region whose [min,max] misses the query
//      interval is never read from storage;
//   2. selectivity estimation — summing fully/partially overlapping bins
//      gives lower/upper bounds on the hit count, which the planner uses to
//      order multi-object query evaluation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/interval.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/status.h"
#include "common/types.h"

namespace pdc::exec {
class ThreadPool;
}  // namespace pdc::exec

namespace pdc::hist {

/// Build-time parameters (paper: 50–100 bins per region, 10 % sampling).
struct HistogramConfig {
  std::uint32_t target_bins = 64;  ///< lower bound on the number of bins
  double sample_fraction = 0.1;    ///< fraction sampled for approx min/max
  std::uint64_t min_samples = 1024;///< floor on the sample size
  std::uint64_t seed = 0x5D7C0FFEEULL;  ///< sampling RNG seed
};

/// Lower/upper bound on the number of elements matching a query interval.
struct HitEstimate {
  std::uint64_t lower = 0;
  std::uint64_t upper = 0;

  /// Bounds divided by the element count -> selectivity bounds.
  [[nodiscard]] double selectivity_mid(std::uint64_t total) const noexcept {
    if (total == 0) return 0.0;
    return 0.5 * (static_cast<double>(lower) + static_cast<double>(upper)) /
           static_cast<double>(total);
  }
};

/// A histogram whose bin boundaries lie on the lattice {k * bin_width} with
/// bin_width an exact power of two, making any two instances mergeable.
class MergeableHistogram {
 public:
  MergeableHistogram() = default;

  /// Paper Algorithm 1.  Samples for approximate min/max, rounds the bin
  /// width down to a power of two, anchors boundaries on the width lattice,
  /// then counts all elements (outliers beyond the sampled range stretch
  /// the first/last bin, as in the paper's lines 13–17).
  ///
  /// With a non-null `pool` the counting pass runs as a parallel reduction
  /// over fixed-size chunks whose partial tallies are folded in chunk
  /// order; the result is bit-identical to the serial build for every
  /// thread count (integer adds are exact, and in-order min/max folding
  /// preserves which representative of a tie — e.g. ±0.0 — is kept).
  template <PdcElement T>
  static MergeableHistogram Build(std::span<const T> data,
                                  const HistogramConfig& config = {},
                                  exec::ThreadPool* pool = nullptr);

  /// Merge many histograms built by Build() into one.  The result uses the
  /// largest input bin width; finer input bins nest exactly into coarser
  /// output bins (power-of-two lattice), so no count is ever split.
  static MergeableHistogram Merge(
      std::span<const MergeableHistogram> histograms);

  // --- query-side API ---

  /// True if some element might satisfy `q` (min/max check; the region
  /// cannot be pruned).
  [[nodiscard]] bool may_overlap(const ValueInterval& q) const noexcept;

  /// True if EVERY element provably satisfies `q` (all-hits fast path:
  /// the region can be accepted wholesale without reading its values).
  /// Requires a NaN-free region — NaN satisfies no range condition — so
  /// this is the check query paths must use instead of raw
  /// `q.covers_closed(min, max)`.
  [[nodiscard]] bool covers(const ValueInterval& q) const noexcept;

  /// Lower/upper bound on the number of matching elements.
  [[nodiscard]] HitEstimate estimate(const ValueInterval& q) const noexcept;

  // --- observers ---
  [[nodiscard]] bool valid() const noexcept { return total_ > 0; }
  [[nodiscard]] std::uint64_t total_count() const noexcept { return total_; }
  /// Number of NaN elements (counted in total_ but in no bin; min/max
  /// ignore them).
  [[nodiscard]] std::uint64_t nan_count() const noexcept { return nan_count_; }
  [[nodiscard]] double min_value() const noexcept { return min_; }
  [[nodiscard]] double max_value() const noexcept { return max_; }
  [[nodiscard]] double bin_width() const noexcept { return bin_width_; }
  [[nodiscard]] std::size_t num_bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::span<const std::uint64_t> counts() const noexcept {
    return counts_;
  }
  /// Left edge of bin `i` (right edge = left edge + bin_width, except the
  /// first/last bin which are stretched to min/max).
  [[nodiscard]] double bin_left_edge(std::size_t i) const noexcept {
    return first_edge_ + static_cast<double>(i) * bin_width_;
  }

  // --- wire format ---
  void serialize(SerialWriter& w) const;
  static Result<MergeableHistogram> Deserialize(SerialReader& r);

  bool operator==(const MergeableHistogram&) const = default;

 private:
  double bin_width_ = 0.0;   ///< exact power of two (possibly < 1)
  double first_edge_ = 0.0;  ///< integer multiple of bin_width_
  double min_ = 0.0;         ///< exact observed minimum (NaN ignored)
  double max_ = 0.0;         ///< exact observed maximum (NaN ignored)
  std::uint64_t total_ = 0;
  std::uint64_t nan_count_ = 0;  ///< NaN elements: binless, never match
  std::vector<std::uint64_t> counts_;
};

/// Round `x` (> 0) down to the nearest exact power of two (2^k, k ∈ ℤ).
[[nodiscard]] double round_down_pow2(double x) noexcept;

extern template MergeableHistogram MergeableHistogram::Build<float>(
    std::span<const float>, const HistogramConfig&, exec::ThreadPool*);
extern template MergeableHistogram MergeableHistogram::Build<double>(
    std::span<const double>, const HistogramConfig&, exec::ThreadPool*);
extern template MergeableHistogram MergeableHistogram::Build<std::int32_t>(
    std::span<const std::int32_t>, const HistogramConfig&, exec::ThreadPool*);
extern template MergeableHistogram MergeableHistogram::Build<std::uint32_t>(
    std::span<const std::uint32_t>, const HistogramConfig&, exec::ThreadPool*);
extern template MergeableHistogram MergeableHistogram::Build<std::int64_t>(
    std::span<const std::int64_t>, const HistogramConfig&, exec::ThreadPool*);
extern template MergeableHistogram MergeableHistogram::Build<std::uint64_t>(
    std::span<const std::uint64_t>, const HistogramConfig&, exec::ThreadPool*);

}  // namespace pdc::hist
