#include "histogram/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/exec_pool.h"

namespace pdc::hist {

double round_down_pow2(double x) noexcept {
  if (!(x > 0.0) || !std::isfinite(x)) return 1.0;
  int exp = 0;
  std::frexp(x, &exp);  // x = m * 2^exp, m in [0.5, 1)
  return std::ldexp(1.0, exp - 1);
}

namespace {

/// floor(x / w) * w for w an exact power of two — exact in binary FP.
double floor_to_lattice(double x, double w) noexcept {
  return std::floor(x / w) * w;
}

}  // namespace

template <PdcElement T>
MergeableHistogram MergeableHistogram::Build(std::span<const T> data,
                                             const HistogramConfig& config,
                                             exec::ThreadPool* pool) {
  MergeableHistogram h;
  if (data.empty()) return h;

  // Line 1: random-sample ~10 % of the data for approximate min/max.
  const std::uint64_t n = data.size();
  std::uint64_t sample_size = static_cast<std::uint64_t>(
      config.sample_fraction * static_cast<double>(n));
  sample_size = std::clamp<std::uint64_t>(sample_size, config.min_samples, n);

  // Only finite values may anchor the bin lattice: a NaN or ±inf sample
  // would poison the width/first-edge arithmetic below.  Non-finite
  // elements are still counted (NaN separately; ±inf in the edge bins).
  Rng rng(config.seed);
  double approx_min = std::numeric_limits<double>::infinity();
  double approx_max = -std::numeric_limits<double>::infinity();
  if (sample_size >= n) {
    for (const T& v : data) {
      const double d = static_cast<double>(v);
      if (!std::isfinite(d)) continue;
      approx_min = std::min(approx_min, d);
      approx_max = std::max(approx_max, d);
    }
  } else {
    for (std::uint64_t i = 0; i < sample_size; ++i) {
      const double d = static_cast<double>(data[rng.bounded(n)]);
      if (!std::isfinite(d)) continue;
      approx_min = std::min(approx_min, d);
      approx_max = std::max(approx_max, d);
    }
  }
  if (!std::isfinite(approx_min)) {
    // No finite value sampled (all-NaN/inf data): fall back to a trivial
    // one-bin lattice anchored at zero.
    approx_min = 0.0;
    approx_max = 0.0;
  }

  // Lines 2-3: bin width = span / target bins, rounded DOWN to a power of 2.
  // The span itself can overflow to +inf when the endpoints sit near
  // ±DBL_MAX; clamping it only widens the bins, which estimation tolerates.
  const std::uint32_t target = std::max<std::uint32_t>(1, config.target_bins);
  double span = approx_max - approx_min;
  if (!std::isfinite(span)) span = std::numeric_limits<double>::max();
  double width = span / static_cast<double>(target);
  width = round_down_pow2(width);  // maps non-positive spans to 1.0 too

  // Lines 4-7: anchor the first boundary on the width lattice (the paper's
  // "natural numbers" anchor generalised to the 2^x lattice) and derive the
  // actual bin count, which may exceed the target.  Near -DBL_MAX the
  // lattice anchor one step below approx_min can overflow to -inf;
  // anchoring on approx_min itself only misaligns the lattice, it never
  // miscounts.
  const double lattice_edge = floor_to_lattice(approx_min, width);
  const double first_edge =
      std::isfinite(lattice_edge) ? lattice_edge : approx_min;
  double nbins_f = std::ceil((approx_max - first_edge) / width);
  if (!std::isfinite(nbins_f)) {
    // max - first_edge overflowed: divide the endpoints separately (each
    // quotient is bounded by DBL_MAX / width, so the difference is a small
    // multiple of the target).
    nbins_f = std::ceil(approx_max / width - first_edge / width);
  }
  if (!(nbins_f >= 1.0)) nbins_f = 1.0;
  auto nbins = static_cast<std::size_t>(std::min(nbins_f, 1.0e7));

  h.bin_width_ = width;
  h.first_edge_ = first_edge;
  h.counts_.assign(nbins, 0);

  // Lines 11-18: count every element.  Values outside the sampled range are
  // absorbed by the first/last bin, which stretch to the true min/max.
  struct Tally {
    std::vector<std::uint64_t> counts;
    std::uint64_t nan = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  const double nbins_d = static_cast<double>(nbins);
  const auto count_range = [&](std::uint64_t lo, std::uint64_t hi, Tally& t) {
    for (std::uint64_t i = lo; i < hi; ++i) {
      const double d = static_cast<double>(data[i]);
      if (d != d) {
        // NaN: no bin can hold it and no range condition can match it.
        // Counting it into a bin would both be UB (NaN -> size_t cast) and
        // poison the all-hits fast path.
        ++t.nan;
        continue;
      }
      t.min = std::min(t.min, d);
      t.max = std::max(t.max, d);
      double j = std::floor((d - first_edge) / width);
      j = std::clamp(j, 0.0, nbins_d - 1.0);  // ±inf lands in the edge bins
      ++t.counts[static_cast<std::size_t>(j)];
    }
  };

  constexpr std::uint64_t kCountChunk = 1u << 16;
  Tally total;
  total.counts.assign(nbins, 0);
  if (pool != nullptr && n > 2 * kCountChunk) {
    // Parallel reduction over fixed chunks (boundaries independent of the
    // thread count), partials folded in chunk order.  Bin counts are
    // integer adds and min/max folded in index order keeps the serial
    // tie representative, so the result is bit-identical to the serial
    // pass below at any pool size.
    const auto nchunks = static_cast<std::size_t>((n + kCountChunk - 1) /
                                                  kCountChunk);
    std::vector<Tally> parts(nchunks);
    exec::parallel_for(pool, nchunks, [&](std::size_t c) {
      Tally& t = parts[c];
      t.counts.assign(nbins, 0);
      count_range(c * kCountChunk, std::min<std::uint64_t>(n, (c + 1) * kCountChunk),
                  t);
    });
    for (const Tally& t : parts) {
      for (std::size_t b = 0; b < nbins; ++b) total.counts[b] += t.counts[b];
      total.nan += t.nan;
      total.min = std::min(total.min, t.min);
      total.max = std::max(total.max, t.max);
    }
  } else {
    count_range(0, n, total);
  }
  h.counts_ = std::move(total.counts);
  h.nan_count_ = total.nan;
  h.min_ = total.min;
  h.max_ = total.max;
  h.total_ = n;
  return h;
}

MergeableHistogram MergeableHistogram::Merge(
    std::span<const MergeableHistogram> histograms) {
  MergeableHistogram out;
  double width = 0.0;
  double min_edge = std::numeric_limits<double>::infinity();
  double max_edge = -std::numeric_limits<double>::infinity();
  double true_min = std::numeric_limits<double>::infinity();
  double true_max = -std::numeric_limits<double>::infinity();
  for (const MergeableHistogram& h : histograms) {
    if (!h.valid()) continue;
    width = std::max(width, h.bin_width_);
    min_edge = std::min(min_edge, h.first_edge_);
    max_edge = std::max(
        max_edge, h.first_edge_ + static_cast<double>(h.counts_.size()) *
                                      h.bin_width_);
    true_min = std::min(true_min, h.min_);
    true_max = std::max(true_max, h.max_);
  }
  if (width == 0.0) return out;  // no valid inputs

  // Same overflow guards as Build: inputs anchored near ±DBL_MAX can push
  // the lattice anchor or the edge difference past the double range.
  const double lattice_edge = floor_to_lattice(min_edge, width);
  const double first_edge =
      std::isfinite(lattice_edge) ? lattice_edge : min_edge;
  double nbins_f = std::ceil((max_edge - first_edge) / width);
  if (!std::isfinite(nbins_f)) {
    nbins_f = std::ceil(max_edge / width - first_edge / width);
  }
  if (!(nbins_f >= 1.0)) nbins_f = 1.0;
  const auto nbins = static_cast<std::size_t>(std::min(nbins_f, 1.0e7));
  out.bin_width_ = width;
  out.first_edge_ = first_edge;
  out.counts_.assign(std::max<std::size_t>(1, nbins), 0);
  out.min_ = true_min;
  out.max_ = true_max;

  // Every input bin nests exactly inside one output bin: input edges lie on
  // a finer power-of-two lattice that subdivides the output lattice.
  for (const MergeableHistogram& h : histograms) {
    if (!h.valid()) continue;
    for (std::size_t i = 0; i < h.counts_.size(); ++i) {
      const double left = h.bin_left_edge(i);
      // Clamp in the double domain: the edge difference can overflow and a
      // size_t cast of an out-of-range double is UB.
      double j_f = std::floor((left - first_edge) / width);
      j_f = std::clamp(j_f, 0.0,
                       static_cast<double>(out.counts_.size() - 1));
      const auto j = static_cast<std::size_t>(j_f);
      out.counts_[j] += h.counts_[i];
    }
    out.total_ += h.total_;
    out.nan_count_ += h.nan_count_;
  }
  return out;
}

bool MergeableHistogram::may_overlap(const ValueInterval& q) const noexcept {
  return valid() && q.overlaps_closed(min_, max_);
}

bool MergeableHistogram::covers(const ValueInterval& q) const noexcept {
  // A single NaN element breaks "every element matches": NaN satisfies no
  // range condition, so the region must be scanned element by element.
  return valid() && nan_count_ == 0 && q.covers_closed(min_, max_);
}

HitEstimate MergeableHistogram::estimate(const ValueInterval& q) const noexcept {
  HitEstimate est;
  if (!may_overlap(q)) return est;
  const std::size_t last = counts_.size() - 1;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    // The first/last bin stretch to the true min/max (outlier absorption).
    const double lo = i == 0 ? std::min(min_, bin_left_edge(0))
                             : bin_left_edge(i);
    const double hi = i == last
                          ? std::max(max_, bin_left_edge(i) + bin_width_)
                          : bin_left_edge(i) + bin_width_;
    if (!q.overlaps_closed(lo, hi)) continue;
    est.upper += counts_[i];
    if (q.covers_closed(lo, hi)) est.lower += counts_[i];
  }
  return est;
}

void MergeableHistogram::serialize(SerialWriter& w) const {
  w.put(bin_width_);
  w.put(first_edge_);
  w.put(min_);
  w.put(max_);
  w.put(total_);
  w.put(nan_count_);
  w.put_vector(counts_);
}

Result<MergeableHistogram> MergeableHistogram::Deserialize(SerialReader& r) {
  MergeableHistogram h;
  PDC_RETURN_IF_ERROR(r.get(h.bin_width_));
  PDC_RETURN_IF_ERROR(r.get(h.first_edge_));
  PDC_RETURN_IF_ERROR(r.get(h.min_));
  PDC_RETURN_IF_ERROR(r.get(h.max_));
  PDC_RETURN_IF_ERROR(r.get(h.total_));
  PDC_RETURN_IF_ERROR(r.get(h.nan_count_));
  PDC_RETURN_IF_ERROR(r.get_vector(h.counts_));
  if (h.nan_count_ > h.total_) {
    return Status::Corruption("histogram NaN count exceeds total");
  }
  // min_ > max_ is the legitimate "no finite values seen" sentinel when
  // every element is NaN; otherwise it marks corruption.
  if (h.total_ > 0 &&
      (h.counts_.empty() || !(h.bin_width_ > 0.0) ||
       (h.min_ > h.max_ && h.nan_count_ != h.total_))) {
    return Status::Corruption("histogram fields inconsistent");
  }
  return h;
}

template MergeableHistogram MergeableHistogram::Build<float>(
    std::span<const float>, const HistogramConfig&, exec::ThreadPool*);
template MergeableHistogram MergeableHistogram::Build<double>(
    std::span<const double>, const HistogramConfig&, exec::ThreadPool*);
template MergeableHistogram MergeableHistogram::Build<std::int32_t>(
    std::span<const std::int32_t>, const HistogramConfig&, exec::ThreadPool*);
template MergeableHistogram MergeableHistogram::Build<std::uint32_t>(
    std::span<const std::uint32_t>, const HistogramConfig&, exec::ThreadPool*);
template MergeableHistogram MergeableHistogram::Build<std::int64_t>(
    std::span<const std::int64_t>, const HistogramConfig&, exec::ThreadPool*);
template MergeableHistogram MergeableHistogram::Build<std::uint64_t>(
    std::span<const std::uint64_t>, const HistogramConfig&, exec::ThreadPool*);

}  // namespace pdc::hist
