# Empty dependencies file for pdc_histogram.
# This may be replaced when dependencies are built.
