file(REMOVE_RECURSE
  "libpdc_histogram.a"
)
