file(REMOVE_RECURSE
  "CMakeFiles/pdc_histogram.dir/histogram.cc.o"
  "CMakeFiles/pdc_histogram.dir/histogram.cc.o.d"
  "libpdc_histogram.a"
  "libpdc_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
