// Runtime PdcType -> compile-time element type dispatch.
#pragma once

#include <utility>

#include "common/types.h"

namespace pdc::obj {

/// Invoke `fn` with a value-initialized element of the C++ type matching
/// `type` (use `decltype(tag)` inside a templated lambda).
template <typename Fn>
decltype(auto) dispatch_type(PdcType type, Fn&& fn) {
  switch (type) {
    case PdcType::kFloat: return std::forward<Fn>(fn)(float{});
    case PdcType::kDouble: return std::forward<Fn>(fn)(double{});
    case PdcType::kInt32: return std::forward<Fn>(fn)(std::int32_t{});
    case PdcType::kUInt32: return std::forward<Fn>(fn)(std::uint32_t{});
    case PdcType::kInt64: return std::forward<Fn>(fn)(std::int64_t{});
    case PdcType::kUInt64: return std::forward<Fn>(fn)(std::uint64_t{});
  }
  // Enum is exhaustive; keep the compiler satisfied.
  return std::forward<Fn>(fn)(float{});
}

}  // namespace pdc::obj
