#include "obj/object_store.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/exec_pool.h"
#include "common/log.h"
#include "common/serial.h"
#include "obj/type_dispatch.h"

namespace pdc::obj {
namespace {

std::string data_file_name(ObjectId id) {
  return "obj_" + std::to_string(id) + ".dat";
}
std::string index_file_name(ObjectId id) {
  return "obj_" + std::to_string(id) + ".idx";
}

double element_as_double(PdcType type, std::span<const std::uint8_t> bytes,
                         std::uint64_t i) {
  return dispatch_type(type, [&](auto tag) {
    using T = decltype(tag);
    T v;
    std::memcpy(&v, bytes.data() + i * sizeof(T), sizeof(T));
    return static_cast<double>(v);
  });
}

hist::MergeableHistogram build_histogram_erased(
    PdcType type, std::span<const std::uint8_t> bytes, std::uint64_t count,
    const hist::HistogramConfig& config,
    exec::ThreadPool* pool = nullptr) {
  return dispatch_type(type, [&](auto tag) {
    using T = decltype(tag);
    return hist::MergeableHistogram::Build<T>(
        {reinterpret_cast<const T*>(bytes.data()),
         static_cast<std::size_t>(count)},
        config, pool);
  });
}

void serialize_region(SerialWriter& w, const RegionDescriptor& r) {
  w.put(r.index);
  w.put(r.extent.offset);
  w.put(r.extent.count);
  w.put(static_cast<std::uint8_t>(r.tier));
  r.histogram.serialize(w);
  w.put(r.index_offset);
  w.put(r.index_bytes);
  w.put(r.index_header_bytes);
  w.put_vector(r.index_header);
  w.put(r.data_epoch);
  w.put(r.index_epoch);
  w.put(r.index_synced_epoch);
  w.put<std::uint64_t>(r.delta.entries.size());
  for (const auto& [pos, bin] : r.delta.entries) {
    w.put(pos);
    w.put(bin);
  }
}

Status deserialize_region(SerialReader& r, RegionDescriptor& out) {
  PDC_RETURN_IF_ERROR(r.get(out.index));
  PDC_RETURN_IF_ERROR(r.get(out.extent.offset));
  PDC_RETURN_IF_ERROR(r.get(out.extent.count));
  std::uint8_t tier = 0;
  PDC_RETURN_IF_ERROR(r.get(tier));
  if (tier > static_cast<std::uint8_t>(StorageTier::kTape)) {
    return Status::Corruption("region tier invalid");
  }
  out.tier = static_cast<StorageTier>(tier);
  PDC_ASSIGN_OR_RETURN(out.histogram,
                       hist::MergeableHistogram::Deserialize(r));
  PDC_RETURN_IF_ERROR(r.get(out.index_offset));
  PDC_RETURN_IF_ERROR(r.get(out.index_bytes));
  PDC_RETURN_IF_ERROR(r.get(out.index_header_bytes));
  PDC_RETURN_IF_ERROR(r.get_vector(out.index_header));
  PDC_RETURN_IF_ERROR(r.get(out.data_epoch));
  PDC_RETURN_IF_ERROR(r.get(out.index_epoch));
  PDC_RETURN_IF_ERROR(r.get(out.index_synced_epoch));
  std::uint64_t ndelta = 0;
  PDC_RETURN_IF_ERROR(r.get(ndelta));
  if (ndelta > r.remaining() / (sizeof(std::uint64_t) + sizeof(std::uint32_t))) {
    return Status::Corruption("region delta length implausible");
  }
  out.delta.entries.resize(static_cast<std::size_t>(ndelta));
  for (auto& [pos, bin] : out.delta.entries) {
    PDC_RETURN_IF_ERROR(r.get(pos));
    PDC_RETURN_IF_ERROR(r.get(bin));
  }
  return Status::Ok();
}

void serialize_object(SerialWriter& w, const ObjectDescriptor& o) {
  w.put(o.id);
  w.put(o.container_id);
  w.put_string(o.name);
  w.put(static_cast<std::uint8_t>(o.type));
  w.put(o.num_elements);
  w.put(o.region_size_elements);
  w.put_string(o.data_file);
  w.put_string(o.index_file);
  w.put<std::uint64_t>(o.regions.size());
  for (const RegionDescriptor& r : o.regions) serialize_region(w, r);
  o.global_histogram.serialize(w);
  w.put(o.sorted_source);
  w.put_string(o.permutation_file);
  w.put(o.data_epoch);
  w.put(o.last_write_seq);
  w.put(o.hist_config.target_bins);
  w.put(o.hist_config.sample_fraction);
  w.put(o.hist_config.min_samples);
  w.put(o.hist_config.seed);
  w.put(o.index_config.num_bins);
  w.put(o.index_config.edge_sample);
  w.put(o.index_config.precision);
  w.put(o.index_config.seed);
  w.put<std::uint64_t>(o.sorted_delta.size());
  for (const auto& [pos, bytes] : o.sorted_delta) {
    w.put(pos);
    w.put_vector(bytes);
  }
  w.put(o.replica_synced_epoch);
}

Status deserialize_object(SerialReader& r, ObjectDescriptor& o) {
  PDC_RETURN_IF_ERROR(r.get(o.id));
  PDC_RETURN_IF_ERROR(r.get(o.container_id));
  PDC_RETURN_IF_ERROR(r.get_string(o.name));
  std::uint8_t type = 0;
  PDC_RETURN_IF_ERROR(r.get(type));
  if (type > static_cast<std::uint8_t>(PdcType::kUInt64)) {
    return Status::Corruption("object type invalid");
  }
  o.type = static_cast<PdcType>(type);
  PDC_RETURN_IF_ERROR(r.get(o.num_elements));
  PDC_RETURN_IF_ERROR(r.get(o.region_size_elements));
  PDC_RETURN_IF_ERROR(r.get_string(o.data_file));
  PDC_RETURN_IF_ERROR(r.get_string(o.index_file));
  std::uint64_t nregions = 0;
  PDC_RETURN_IF_ERROR(r.get(nregions));
  o.regions.resize(static_cast<std::size_t>(nregions));
  for (auto& region : o.regions) {
    PDC_RETURN_IF_ERROR(deserialize_region(r, region));
  }
  PDC_ASSIGN_OR_RETURN(o.global_histogram,
                       hist::MergeableHistogram::Deserialize(r));
  PDC_RETURN_IF_ERROR(r.get(o.sorted_source));
  PDC_RETURN_IF_ERROR(r.get_string(o.permutation_file));
  PDC_RETURN_IF_ERROR(r.get(o.data_epoch));
  PDC_RETURN_IF_ERROR(r.get(o.last_write_seq));
  PDC_RETURN_IF_ERROR(r.get(o.hist_config.target_bins));
  PDC_RETURN_IF_ERROR(r.get(o.hist_config.sample_fraction));
  PDC_RETURN_IF_ERROR(r.get(o.hist_config.min_samples));
  PDC_RETURN_IF_ERROR(r.get(o.hist_config.seed));
  PDC_RETURN_IF_ERROR(r.get(o.index_config.num_bins));
  PDC_RETURN_IF_ERROR(r.get(o.index_config.edge_sample));
  PDC_RETURN_IF_ERROR(r.get(o.index_config.precision));
  PDC_RETURN_IF_ERROR(r.get(o.index_config.seed));
  std::uint64_t ndelta = 0;
  PDC_RETURN_IF_ERROR(r.get(ndelta));
  if (ndelta > r.remaining() / (2 * sizeof(std::uint64_t))) {
    return Status::Corruption("sorted delta length implausible");
  }
  for (std::uint64_t i = 0; i < ndelta; ++i) {
    std::uint64_t pos = 0;
    std::vector<std::uint8_t> bytes;
    PDC_RETURN_IF_ERROR(r.get(pos));
    PDC_RETURN_IF_ERROR(r.get_vector(bytes));
    o.sorted_delta.emplace(pos, std::move(bytes));
  }
  PDC_RETURN_IF_ERROR(r.get(o.replica_synced_epoch));
  return Status::Ok();
}

}  // namespace

Result<ObjectId> ObjectStore::create_container(std::string_view name) {
  std::unique_lock lock(mu_);
  for (const auto& [id, existing] : containers_) {
    if (existing == name) {
      return Status::AlreadyExists("container exists: " + std::string(name));
    }
  }
  const ObjectId id = next_id_locked();
  containers_.emplace(id, std::string(name));
  return id;
}

Result<ObjectId> ObjectStore::import_raw(ObjectId container,
                                         std::string_view name, PdcType type,
                                         std::span<const std::uint8_t> bytes,
                                         std::uint64_t num_elements,
                                         const ImportOptions& options) {
  const std::size_t elem_size = pdc_type_size(type);
  if (bytes.size() != num_elements * elem_size) {
    return Status::InvalidArgument("byte size / element count mismatch");
  }
  if (num_elements == 0) {
    return Status::InvalidArgument("cannot import an empty object");
  }
  {
    std::shared_lock lock(mu_);
    if (!containers_.contains(container)) {
      return Status::NotFound("container " + std::to_string(container));
    }
    for (const auto& [id, o] : objects_) {
      if (o->name == name) {
        return Status::AlreadyExists("object exists: " + std::string(name));
      }
    }
  }

  auto desc = std::make_unique<ObjectDescriptor>();
  {
    std::unique_lock lock(mu_);
    desc->id = next_id_locked();
  }
  desc->container_id = container;
  desc->name = std::string(name);
  desc->type = type;
  desc->num_elements = num_elements;
  desc->region_size_elements =
      std::max<std::uint64_t>(1, options.region_size_bytes / elem_size);
  desc->data_file = data_file_name(desc->id);
  desc->hist_config = options.histogram;

  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.create(desc->data_file));
  PDC_RETURN_IF_ERROR(file.write(0, bytes));

  build_regions(*desc, bytes, options.pool);

  const ObjectId id = desc->id;
  const std::size_t nregions = desc->regions.size();
  std::unique_lock lock(mu_);
  objects_.emplace(id, std::move(desc));
  log_debug("imported object ", id, " '", name, "' with ", nregions,
            " regions");
  return id;
}

void ObjectStore::build_regions(ObjectDescriptor& desc,
                                std::span<const std::uint8_t> bytes,
                                exec::ThreadPool* pool) const {
  // Decompose into regions and build one local histogram per region.
  // Region seeds are independent (`seed + i`), so the per-region builds
  // can run concurrently and still produce exactly the serial metadata.
  // A single-region object has no region-level parallelism to exploit,
  // so it hands the pool down into the histogram's counting pass instead.
  const std::size_t elem_size = desc.element_size();
  const std::uint64_t num_elements = desc.num_elements;
  const std::uint64_t rsize = desc.region_size_elements;
  const auto nregions =
      static_cast<std::size_t>((num_elements + rsize - 1) / rsize);
  desc.regions.assign(nregions, RegionDescriptor{});
  exec::parallel_for(pool, nregions, [&](std::size_t i) {
    RegionDescriptor& region = desc.regions[i];
    region.index = static_cast<RegionIndex>(i);
    region.extent.offset = i * rsize;
    region.extent.count = std::min(rsize, num_elements - region.extent.offset);
    region.data_epoch = desc.data_epoch;
    // Vary the sampling seed per region so identical regions do not sample
    // identical offsets.
    hist::HistogramConfig hist_cfg = desc.hist_config;
    hist_cfg.seed = desc.hist_config.seed + i;
    region.histogram = build_histogram_erased(
        desc.type,
        bytes.subspan(region.extent.offset * elem_size,
                      region.extent.count * elem_size),
        region.extent.count, hist_cfg, nregions == 1 ? pool : nullptr);
  });
  std::vector<hist::MergeableHistogram> locals;
  locals.reserve(nregions);
  for (const RegionDescriptor& region : desc.regions) {
    locals.push_back(region.histogram);
  }
  desc.global_histogram = hist::MergeableHistogram::Merge(locals);
}

Status ObjectStore::build_bitmap_index(ObjectId id,
                                       const bitmap::IndexConfig& config,
                                       exec::ThreadPool* pool) {
  ObjectDescriptor* desc = nullptr;
  {
    std::shared_lock lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("object " + std::to_string(id));
    }
    desc = it->second.get();
  }
  if (!desc->index_file.empty()) {
    return Status::AlreadyExists("index already built for object " +
                                 std::to_string(id));
  }
  desc->index_config = config;
  return build_index_into(desc, config, pool);
}

Status ObjectStore::rebuild_bitmap_index(ObjectId id, exec::ThreadPool* pool) {
  ObjectDescriptor* desc = nullptr;
  {
    std::shared_lock lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("object " + std::to_string(id));
    }
    desc = it->second.get();
  }
  if (desc->index_file.empty()) {
    return Status::FailedPrecondition("no index to rebuild for object " +
                                      std::to_string(id));
  }
  return build_index_into(desc, desc->index_config, pool);
}

Status ObjectStore::build_index_into(ObjectDescriptor* desc,
                                     const bitmap::IndexConfig& config,
                                     exec::ThreadPool* pool) {
  const std::string fname = index_file_name(desc->id);
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.create(fname));
  const std::size_t elem_size = desc->element_size();

  // Per-region read + index build + serialize are independent, so they
  // fan out over the pool; the offset assignment and file writes below
  // stay serial and in region order, making the index file byte-identical
  // to a serial build at any pool size.
  struct BuiltIndex {
    Status status;
    std::vector<std::uint8_t> bytes;
    std::uint64_t header_bytes = 0;
  };
  std::vector<BuiltIndex> built(desc->regions.size());
  exec::parallel_for(pool, desc->regions.size(), [&](std::size_t i) {
    const RegionDescriptor& region = desc->regions[i];
    BuiltIndex& b = built[i];
    std::vector<std::uint8_t> region_bytes(
        static_cast<std::size_t>(region.extent.count * elem_size));
    b.status = read_region(*desc, region.index, region_bytes, {});
    if (!b.status.ok()) return;
    SerialWriter w;
    dispatch_type(desc->type, [&](auto tag) {
      using T = decltype(tag);
      const auto idx = bitmap::BinnedBitmapIndex::Build<T>(
          {reinterpret_cast<const T*>(region_bytes.data()),
           static_cast<std::size_t>(region.extent.count)},
          config);
      idx.serialize(w);
      b.header_bytes = idx.header_bytes();
    });
    b.bytes = w.take();
  });

  std::uint64_t cursor = 0;
  for (std::size_t i = 0; i < desc->regions.size(); ++i) {
    RegionDescriptor& region = desc->regions[i];
    BuiltIndex& b = built[i];
    PDC_RETURN_IF_ERROR(b.status);
    PDC_RETURN_IF_ERROR(file.write(cursor, b.bytes));
    region.index_offset = cursor;
    region.index_bytes = b.bytes.size();
    region.index_header_bytes = b.header_bytes;
    region.index_header.assign(
        b.bytes.begin(),
        b.bytes.begin() + static_cast<std::ptrdiff_t>(b.header_bytes));
    region.index_epoch = region.data_epoch;
    region.index_synced_epoch = region.data_epoch;
    region.delta.entries.clear();
    cursor += b.bytes.size();
  }
  desc->index_file = fname;
  return Status::Ok();
}

Status ObjectStore::link_sorted_replica(ObjectId replica, ObjectId source,
                                        std::string permutation_file) {
  std::unique_lock lock(mu_);
  auto rep = objects_.find(replica);
  auto src = objects_.find(source);
  if (rep == objects_.end() || src == objects_.end()) {
    return Status::NotFound("replica or source object missing");
  }
  rep->second->sorted_source = source;
  rep->second->permutation_file = std::move(permutation_file);
  // The replica reflects the source's data as of right now.
  src->second->replica_synced_epoch = src->second->data_epoch;
  src->second->sorted_delta.clear();
  return Status::Ok();
}

Result<WriteResult> ObjectStore::apply_write(ObjectId id, WriteKind kind,
                                             Extent1D extent,
                                             std::span<const std::uint8_t> bytes,
                                             std::uint64_t write_seq,
                                             const WriteOptions& options) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  ObjectDescriptor* d = it->second.get();
  if (d->is_sorted_replica()) {
    return Status::InvalidArgument("cannot write a sorted replica directly");
  }
  WriteResult result;
  for (const auto& [oid, o] : objects_) {
    if (o->sorted_source == id) {
      result.replica_id = oid;
      break;
    }
  }
  // Exactly-once: a replayed sequence number (retry, reroute, duplicated
  // bus delivery) is acknowledged without touching data or indexes.
  if (write_seq != 0 && write_seq <= d->last_write_seq) {
    result.data_epoch = d->data_epoch;
    result.duplicate = true;
    result.sorted_delta_entries = d->sorted_delta.size();
    return result;
  }
  const std::size_t elem_size = d->element_size();
  if (bytes.empty() || bytes.size() % elem_size != 0) {
    return Status::InvalidArgument(
        "write payload is not a whole number of elements");
  }
  const std::uint64_t count = bytes.size() / elem_size;
  if (kind == WriteKind::kOverwrite) {
    if (extent.count != count) {
      return Status::InvalidArgument("overwrite extent / payload mismatch");
    }
    if (extent.end() > d->num_elements) {
      return Status::OutOfRange("overwrite extent beyond object");
    }
  } else {
    extent = {d->num_elements, count};
  }

  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.open(d->data_file));
  PDC_RETURN_IF_ERROR(
      file.write(extent.offset * elem_size, bytes, options.ledger));

  const std::uint64_t epoch_before = d->data_epoch;
  const std::uint64_t rsize = d->region_size_elements;
  const std::size_t old_nregions = d->regions.size();
  if (kind == WriteKind::kAppend) {
    d->num_elements += count;
    // Extend the trailing region up to its capacity, then add new regions.
    if (!d->regions.empty()) {
      RegionDescriptor& last = d->regions.back();
      last.extent.count =
          std::min(rsize, d->num_elements - last.extent.offset);
    }
    while (d->regions.back().extent.end() < d->num_elements) {
      RegionDescriptor region;
      region.index = static_cast<RegionIndex>(d->regions.size());
      region.extent.offset = d->regions.back().extent.end();
      region.extent.count =
          std::min(rsize, d->num_elements - region.extent.offset);
      region.tier = d->regions.back().tier;
      d->regions.push_back(std::move(region));
    }
  }
  const std::size_t first_touched =
      static_cast<std::size_t>(extent.offset / rsize);
  const std::size_t last_touched =
      static_cast<std::size_t>((extent.end() - 1) / rsize);

  // Snapshot per-region freshness before epochs advance: a region whose
  // base+delta covered its own pre-write data can absorb this overwrite
  // even when writes to *other* regions moved the object epoch since the
  // region's index was last synced.
  std::vector<bool> was_fresh_before(last_touched - first_touched + 1);
  for (std::size_t r = first_touched; r <= last_touched; ++r) {
    was_fresh_before[r - first_touched] = d->regions[r].index_fresh();
  }

  d->data_epoch += 1;
  for (std::size_t r = first_touched; r <= last_touched; ++r) {
    d->regions[r].data_epoch = d->data_epoch;
  }

  // ---- histograms (always maintained: pruning must stay sound) ----
  for (std::size_t r = first_touched; r <= last_touched; ++r) {
    RegionDescriptor& region = d->regions[r];
    hist::HistogramConfig hist_cfg = d->hist_config;
    hist_cfg.seed = d->hist_config.seed + r;
    const std::uint64_t lo = std::max(extent.offset, region.extent.offset);
    const std::uint64_t hi = std::min(extent.end(), region.extent.end());
    const auto slice =
        bytes.subspan((lo - extent.offset) * elem_size, (hi - lo) * elem_size);
    if (kind == WriteKind::kAppend && r < old_nregions) {
      // Algorithm-1 merge: old region histogram + histogram of the
      // appended slice (power-of-two lattices nest exactly).
      const std::array<hist::MergeableHistogram, 2> parts = {
          region.histogram,
          build_histogram_erased(d->type, slice, hi - lo, hist_cfg)};
      region.histogram = hist::MergeableHistogram::Merge(parts);
    } else if (lo == region.extent.offset && hi == region.extent.end()) {
      // Whole region covered by the payload: build straight from it.
      region.histogram =
          build_histogram_erased(d->type, slice, hi - lo, hist_cfg);
    } else {
      // Partial overwrite: rebuild from the post-write region data.
      std::vector<std::uint8_t> region_bytes(
          static_cast<std::size_t>(region.extent.count * elem_size));
      pfs::ReadContext rctx;
      rctx.ledger = options.ledger;
      PDC_RETURN_IF_ERROR(
          read_region(*d, region.index, region_bytes, rctx));
      region.histogram = build_histogram_erased(
          d->type, region_bytes, region.extent.count, hist_cfg);
    }
  }
  std::vector<hist::MergeableHistogram> locals;
  locals.reserve(d->regions.size());
  for (const RegionDescriptor& region : d->regions) {
    locals.push_back(region.histogram);
  }
  d->global_histogram = hist::MergeableHistogram::Merge(locals);

  // ---- bitmap-index delta sidecar ----
  bool need_compact = false;
  if (!d->index_file.empty()) {
    for (std::size_t r = first_touched; r <= last_touched; ++r) {
      RegionDescriptor& region = d->regions[r];
      // Only overwrites of a region whose base+delta was in sync before
      // this write can be absorbed into the sidecar; anything else
      // (appends change the region's element count; an already-stale
      // region has an incomplete delta) leaves the region stale until
      // compaction, and queries scan it.
      const bool was_fresh = was_fresh_before[r - first_touched];
      if (kind != WriteKind::kOverwrite || !was_fresh ||
          !options.maintain_accelerators) {
        region.delta.entries.clear();
        continue;
      }
      auto view = bitmap::PartitionedIndexView::ParseHeader(
          region.index_header);
      bool absorbed = view.ok();
      auto entries = region.delta.entries;
      const std::uint64_t lo = std::max(extent.offset, region.extent.offset);
      const std::uint64_t hi = std::min(extent.end(), region.extent.end());
      for (std::uint64_t p = lo; absorbed && p < hi; ++p) {
        const double value =
            element_as_double(d->type, bytes, p - extent.offset);
        const auto bin = view.value().delta_bin_of(value);
        if (!bin.has_value()) {
          // Unsafe assignment (NaN / out of range / on a bin edge):
          // the whole region falls back to scan instead.
          absorbed = false;
          break;
        }
        const std::uint64_t local = p - region.extent.offset;
        const auto at = std::lower_bound(
            entries.begin(), entries.end(), local,
            [](const auto& e, std::uint64_t pos) { return e.first < pos; });
        if (at != entries.end() && at->first == local) {
          at->second = *bin;
        } else {
          entries.insert(at, {local, *bin});
        }
      }
      if (absorbed) {
        region.delta.entries = std::move(entries);
        region.index_synced_epoch = d->data_epoch;
        if (options.compact_threshold > 0 &&
            region.delta.entries.size() >= options.compact_threshold) {
          need_compact = true;
        }
      } else {
        region.delta.entries.clear();
      }
    }
  }

  // ---- sorted-replica delta log ----
  if (result.replica_id != kInvalidObjectId) {
    if (options.maintain_accelerators &&
        d->replica_synced_epoch == epoch_before) {
      for (std::uint64_t i = 0; i < count; ++i) {
        auto& slot = d->sorted_delta[extent.offset + i];
        slot.assign(bytes.begin() + static_cast<std::ptrdiff_t>(i * elem_size),
                    bytes.begin() +
                        static_cast<std::ptrdiff_t>((i + 1) * elem_size));
      }
      d->replica_synced_epoch = d->data_epoch;
    } else {
      // Replica goes (or stays) stale; the planner stops using it.
      d->sorted_delta.clear();
    }
    result.sorted_delta_entries = d->sorted_delta.size();
  }

  if (write_seq != 0) {
    d->last_write_seq = std::max(d->last_write_seq, write_seq);
  }
  result.data_epoch = d->data_epoch;
  result.regions_touched = last_touched - first_touched + 1;
  lock.unlock();

  // Compaction folds every delta by rebuilding the index file — joined
  // here, before the write is acknowledged, so results are deterministic.
  if (need_compact) {
    PDC_RETURN_IF_ERROR(rebuild_bitmap_index(id, options.pool));
    result.compacted = true;
  }
  return result;
}

Status ObjectStore::reset_object_data(ObjectId id,
                                      std::span<const std::uint8_t> bytes,
                                      std::uint64_t num_elements,
                                      exec::ThreadPool* pool) {
  ObjectDescriptor* desc = nullptr;
  {
    std::shared_lock lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("object " + std::to_string(id));
    }
    desc = it->second.get();
  }
  if (num_elements == 0 ||
      bytes.size() != num_elements * desc->element_size()) {
    return Status::InvalidArgument("byte size / element count mismatch");
  }
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file,
                       cluster_.create(desc->data_file));
  PDC_RETURN_IF_ERROR(file.write(0, bytes));
  desc->num_elements = num_elements;
  desc->data_epoch += 1;
  build_regions(*desc, bytes, pool);
  if (!desc->index_file.empty()) {
    return build_index_into(desc, desc->index_config, pool);
  }
  return Status::Ok();
}

Status ObjectStore::mark_replica_synced(ObjectId source) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(source);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(source));
  }
  it->second->sorted_delta.clear();
  it->second->replica_synced_epoch = it->second->data_epoch;
  return Status::Ok();
}

Result<const ObjectDescriptor*> ObjectStore::get(ObjectId id) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  return static_cast<const ObjectDescriptor*>(it->second.get());
}

Result<const ObjectDescriptor*> ObjectStore::find_by_name(
    std::string_view name) const {
  std::shared_lock lock(mu_);
  for (const auto& [id, o] : objects_) {
    if (o->name == name) return static_cast<const ObjectDescriptor*>(o.get());
  }
  return Status::NotFound("object named " + std::string(name));
}

std::vector<ObjectId> ObjectStore::list_objects() const {
  std::shared_lock lock(mu_);
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, o] : objects_) ids.push_back(id);
  return ids;
}

std::optional<ObjectId> ObjectStore::sorted_replica_of(ObjectId source) const {
  std::shared_lock lock(mu_);
  for (const auto& [id, o] : objects_) {
    if (o->sorted_source == source) return id;
  }
  return std::nullopt;
}

Status ObjectStore::set_region_tier(ObjectId id, RegionIndex region,
                                    StorageTier tier) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  if (region >= it->second->regions.size()) {
    return Status::OutOfRange("region index " + std::to_string(region));
  }
  it->second->regions[region].tier = tier;
  return Status::Ok();
}

Status ObjectStore::set_object_tier(ObjectId id, StorageTier tier) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  for (RegionDescriptor& region : it->second->regions) region.tier = tier;
  return Status::Ok();
}

Status ObjectStore::read_region(const ObjectDescriptor& object,
                                RegionIndex region,
                                std::span<std::uint8_t> out,
                                const pfs::ReadContext& ctx) const {
  if (region >= object.regions.size()) {
    return Status::OutOfRange("region index " + std::to_string(region));
  }
  const RegionDescriptor& desc = object.regions[region];
  if (desc.tier == StorageTier::kDisk || desc.tier == StorageTier::kTape) {
    return read_elements(object, desc.extent, out, ctx);
  }
  // Faster tier: perform the real read uncharged, then charge the tier's
  // own latency/bandwidth instead of the PFS cost model's.
  PDC_RETURN_IF_ERROR(read_elements(object, desc.extent, out, {}));
  if (ctx.ledger != nullptr) {
    const CostModel& cost = cluster_.config().cost;
    const bool memory = desc.tier == StorageTier::kMemory;
    const double latency =
        memory ? cost.memory_read_latency_s : cost.nvram_read_latency_s;
    const double bandwidth =
        memory ? cost.memory_bandwidth_bps : cost.nvram_bandwidth_bps;
    ctx.ledger->add_io(latency + static_cast<double>(out.size()) / bandwidth);
    ctx.ledger->add_read_ops(1);
    ctx.ledger->add_bytes_read(out.size());
  }
  return Status::Ok();
}

Status ObjectStore::read_elements(const ObjectDescriptor& object,
                                  Extent1D elements,
                                  std::span<std::uint8_t> out,
                                  const pfs::ReadContext& ctx) const {
  const std::size_t elem_size = object.element_size();
  if (elements.end() > object.num_elements) {
    return Status::OutOfRange("element extent beyond object");
  }
  if (out.size() != elements.count * elem_size) {
    return Status::InvalidArgument("output buffer size mismatch");
  }
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.open(object.data_file));
  return file.read(elements.offset * elem_size, out, ctx);
}

Status ObjectStore::read_values_at(const ObjectDescriptor& object,
                                   std::span<const std::uint64_t> positions,
                                   std::span<std::uint8_t> out,
                                   const pfs::AggregationPolicy& policy,
                                   const pfs::ReadContext& ctx) const {
  const std::size_t elem_size = object.element_size();
  if (out.size() != positions.size() * elem_size) {
    return Status::InvalidArgument("output buffer size mismatch");
  }
  if (positions.empty()) return Status::Ok();
  std::vector<Extent1D> extents;
  std::vector<std::span<std::uint8_t>> dests;
  extents.reserve(positions.size());
  dests.reserve(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] >= object.num_elements) {
      return Status::OutOfRange("position beyond object");
    }
    if (i > 0 && positions[i] <= positions[i - 1]) {
      return Status::InvalidArgument("positions must be strictly ascending");
    }
    extents.push_back(
        {positions[i] * elem_size, static_cast<std::uint64_t>(elem_size)});
    dests.push_back(out.subspan(i * elem_size, elem_size));
  }
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.open(object.data_file));
  return pfs::aggregated_read(file, extents, dests, policy, ctx);
}

Result<bitmap::BinnedBitmapIndex> ObjectStore::load_region_index(
    const ObjectDescriptor& object, RegionIndex region,
    const pfs::ReadContext& ctx) const {
  if (object.index_file.empty()) {
    return Status::FailedPrecondition("no bitmap index for object " +
                                      std::to_string(object.id));
  }
  if (region >= object.regions.size()) {
    return Status::OutOfRange("region index " + std::to_string(region));
  }
  const RegionDescriptor& r = object.regions[region];
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(r.index_bytes));
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.open(object.index_file));
  PDC_RETURN_IF_ERROR(file.read(r.index_offset, bytes, ctx));
  SerialReader reader(bytes);
  return bitmap::BinnedBitmapIndex::Deserialize(reader);
}

Status ObjectStore::persist_metadata(std::string_view checkpoint_file) const {
  SerialWriter w;
  std::shared_lock lock(mu_);
  w.put(next_id_);
  w.put<std::uint64_t>(containers_.size());
  for (const auto& [id, name] : containers_) {
    w.put(id);
    w.put_string(name);
  }
  w.put<std::uint64_t>(objects_.size());
  for (const auto& [id, o] : objects_) serialize_object(w, *o);
  lock.unlock();
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.create(checkpoint_file));
  return file.write(0, w.bytes());
}

Status ObjectStore::load_metadata(std::string_view checkpoint_file) {
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.open(checkpoint_file));
  PDC_ASSIGN_OR_RETURN(const std::uint64_t fsize, file.size());
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(fsize));
  PDC_RETURN_IF_ERROR(file.read(0, bytes, {}));
  SerialReader r(bytes);

  std::unique_lock lock(mu_);
  if (!objects_.empty() || !containers_.empty()) {
    return Status::FailedPrecondition("store is not empty");
  }
  PDC_RETURN_IF_ERROR(r.get(next_id_));
  std::uint64_t ncontainers = 0;
  PDC_RETURN_IF_ERROR(r.get(ncontainers));
  for (std::uint64_t i = 0; i < ncontainers; ++i) {
    ObjectId id = 0;
    std::string name;
    PDC_RETURN_IF_ERROR(r.get(id));
    PDC_RETURN_IF_ERROR(r.get_string(name));
    containers_.emplace(id, std::move(name));
  }
  std::uint64_t nobjects = 0;
  PDC_RETURN_IF_ERROR(r.get(nobjects));
  for (std::uint64_t i = 0; i < nobjects; ++i) {
    auto o = std::make_unique<ObjectDescriptor>();
    PDC_RETURN_IF_ERROR(deserialize_object(r, *o));
    const ObjectId id = o->id;
    objects_.emplace(id, std::move(o));
  }
  return Status::Ok();
}

}  // namespace pdc::obj
