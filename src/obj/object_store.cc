#include "obj/object_store.h"

#include <algorithm>

#include "common/exec_pool.h"
#include "common/log.h"
#include "common/serial.h"
#include "obj/type_dispatch.h"

namespace pdc::obj {
namespace {

std::string data_file_name(ObjectId id) {
  return "obj_" + std::to_string(id) + ".dat";
}
std::string index_file_name(ObjectId id) {
  return "obj_" + std::to_string(id) + ".idx";
}

hist::MergeableHistogram build_histogram_erased(
    PdcType type, std::span<const std::uint8_t> bytes, std::uint64_t count,
    const hist::HistogramConfig& config,
    exec::ThreadPool* pool = nullptr) {
  return dispatch_type(type, [&](auto tag) {
    using T = decltype(tag);
    return hist::MergeableHistogram::Build<T>(
        {reinterpret_cast<const T*>(bytes.data()),
         static_cast<std::size_t>(count)},
        config, pool);
  });
}

void serialize_region(SerialWriter& w, const RegionDescriptor& r) {
  w.put(r.index);
  w.put(r.extent.offset);
  w.put(r.extent.count);
  w.put(static_cast<std::uint8_t>(r.tier));
  r.histogram.serialize(w);
  w.put(r.index_offset);
  w.put(r.index_bytes);
  w.put(r.index_header_bytes);
  w.put_vector(r.index_header);
}

Status deserialize_region(SerialReader& r, RegionDescriptor& out) {
  PDC_RETURN_IF_ERROR(r.get(out.index));
  PDC_RETURN_IF_ERROR(r.get(out.extent.offset));
  PDC_RETURN_IF_ERROR(r.get(out.extent.count));
  std::uint8_t tier = 0;
  PDC_RETURN_IF_ERROR(r.get(tier));
  if (tier > static_cast<std::uint8_t>(StorageTier::kTape)) {
    return Status::Corruption("region tier invalid");
  }
  out.tier = static_cast<StorageTier>(tier);
  PDC_ASSIGN_OR_RETURN(out.histogram,
                       hist::MergeableHistogram::Deserialize(r));
  PDC_RETURN_IF_ERROR(r.get(out.index_offset));
  PDC_RETURN_IF_ERROR(r.get(out.index_bytes));
  PDC_RETURN_IF_ERROR(r.get(out.index_header_bytes));
  PDC_RETURN_IF_ERROR(r.get_vector(out.index_header));
  return Status::Ok();
}

void serialize_object(SerialWriter& w, const ObjectDescriptor& o) {
  w.put(o.id);
  w.put(o.container_id);
  w.put_string(o.name);
  w.put(static_cast<std::uint8_t>(o.type));
  w.put(o.num_elements);
  w.put(o.region_size_elements);
  w.put_string(o.data_file);
  w.put_string(o.index_file);
  w.put<std::uint64_t>(o.regions.size());
  for (const RegionDescriptor& r : o.regions) serialize_region(w, r);
  o.global_histogram.serialize(w);
  w.put(o.sorted_source);
  w.put_string(o.permutation_file);
}

Status deserialize_object(SerialReader& r, ObjectDescriptor& o) {
  PDC_RETURN_IF_ERROR(r.get(o.id));
  PDC_RETURN_IF_ERROR(r.get(o.container_id));
  PDC_RETURN_IF_ERROR(r.get_string(o.name));
  std::uint8_t type = 0;
  PDC_RETURN_IF_ERROR(r.get(type));
  if (type > static_cast<std::uint8_t>(PdcType::kUInt64)) {
    return Status::Corruption("object type invalid");
  }
  o.type = static_cast<PdcType>(type);
  PDC_RETURN_IF_ERROR(r.get(o.num_elements));
  PDC_RETURN_IF_ERROR(r.get(o.region_size_elements));
  PDC_RETURN_IF_ERROR(r.get_string(o.data_file));
  PDC_RETURN_IF_ERROR(r.get_string(o.index_file));
  std::uint64_t nregions = 0;
  PDC_RETURN_IF_ERROR(r.get(nregions));
  o.regions.resize(static_cast<std::size_t>(nregions));
  for (auto& region : o.regions) {
    PDC_RETURN_IF_ERROR(deserialize_region(r, region));
  }
  PDC_ASSIGN_OR_RETURN(o.global_histogram,
                       hist::MergeableHistogram::Deserialize(r));
  PDC_RETURN_IF_ERROR(r.get(o.sorted_source));
  PDC_RETURN_IF_ERROR(r.get_string(o.permutation_file));
  return Status::Ok();
}

}  // namespace

Result<ObjectId> ObjectStore::create_container(std::string_view name) {
  std::unique_lock lock(mu_);
  for (const auto& [id, existing] : containers_) {
    if (existing == name) {
      return Status::AlreadyExists("container exists: " + std::string(name));
    }
  }
  const ObjectId id = next_id_locked();
  containers_.emplace(id, std::string(name));
  return id;
}

Result<ObjectId> ObjectStore::import_raw(ObjectId container,
                                         std::string_view name, PdcType type,
                                         std::span<const std::uint8_t> bytes,
                                         std::uint64_t num_elements,
                                         const ImportOptions& options) {
  const std::size_t elem_size = pdc_type_size(type);
  if (bytes.size() != num_elements * elem_size) {
    return Status::InvalidArgument("byte size / element count mismatch");
  }
  if (num_elements == 0) {
    return Status::InvalidArgument("cannot import an empty object");
  }
  {
    std::shared_lock lock(mu_);
    if (!containers_.contains(container)) {
      return Status::NotFound("container " + std::to_string(container));
    }
    for (const auto& [id, o] : objects_) {
      if (o->name == name) {
        return Status::AlreadyExists("object exists: " + std::string(name));
      }
    }
  }

  auto desc = std::make_unique<ObjectDescriptor>();
  {
    std::unique_lock lock(mu_);
    desc->id = next_id_locked();
  }
  desc->container_id = container;
  desc->name = std::string(name);
  desc->type = type;
  desc->num_elements = num_elements;
  desc->region_size_elements =
      std::max<std::uint64_t>(1, options.region_size_bytes / elem_size);
  desc->data_file = data_file_name(desc->id);

  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.create(desc->data_file));
  PDC_RETURN_IF_ERROR(file.write(0, bytes));

  // Decompose into regions and build one local histogram per region.
  // Region seeds are independent (`seed + i`), so the per-region builds
  // can run concurrently and still produce exactly the serial metadata.
  // A single-region object has no region-level parallelism to exploit,
  // so it hands the pool down into the histogram's counting pass instead.
  const std::uint64_t rsize = desc->region_size_elements;
  const auto nregions =
      static_cast<std::size_t>((num_elements + rsize - 1) / rsize);
  desc->regions.resize(nregions);
  exec::parallel_for(options.pool, nregions, [&](std::size_t i) {
    RegionDescriptor& region = desc->regions[i];
    region.index = static_cast<RegionIndex>(i);
    region.extent.offset = i * rsize;
    region.extent.count = std::min(rsize, num_elements - region.extent.offset);
    // Vary the sampling seed per region so identical regions do not sample
    // identical offsets.
    hist::HistogramConfig hist_cfg = options.histogram;
    hist_cfg.seed = options.histogram.seed + i;
    region.histogram = build_histogram_erased(
        type, bytes.subspan(region.extent.offset * elem_size,
                            region.extent.count * elem_size),
        region.extent.count, hist_cfg,
        nregions == 1 ? options.pool : nullptr);
  });
  std::vector<hist::MergeableHistogram> locals;
  locals.reserve(nregions);
  for (const RegionDescriptor& region : desc->regions) {
    locals.push_back(region.histogram);
  }
  desc->global_histogram = hist::MergeableHistogram::Merge(locals);

  const ObjectId id = desc->id;
  std::unique_lock lock(mu_);
  objects_.emplace(id, std::move(desc));
  log_debug("imported object ", id, " '", name, "' with ", nregions,
            " regions");
  return id;
}

Status ObjectStore::build_bitmap_index(ObjectId id,
                                       const bitmap::IndexConfig& config,
                                       exec::ThreadPool* pool) {
  ObjectDescriptor* desc = nullptr;
  {
    std::shared_lock lock(mu_);
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      return Status::NotFound("object " + std::to_string(id));
    }
    desc = it->second.get();
  }
  if (!desc->index_file.empty()) {
    return Status::AlreadyExists("index already built for object " +
                                 std::to_string(id));
  }

  const std::string fname = index_file_name(id);
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.create(fname));
  const std::size_t elem_size = desc->element_size();

  // Per-region read + index build + serialize are independent, so they
  // fan out over the pool; the offset assignment and file writes below
  // stay serial and in region order, making the index file byte-identical
  // to a serial build at any pool size.
  struct BuiltIndex {
    Status status;
    std::vector<std::uint8_t> bytes;
    std::uint64_t header_bytes = 0;
  };
  std::vector<BuiltIndex> built(desc->regions.size());
  exec::parallel_for(pool, desc->regions.size(), [&](std::size_t i) {
    const RegionDescriptor& region = desc->regions[i];
    BuiltIndex& b = built[i];
    std::vector<std::uint8_t> region_bytes(
        static_cast<std::size_t>(region.extent.count * elem_size));
    b.status = read_region(*desc, region.index, region_bytes, {});
    if (!b.status.ok()) return;
    SerialWriter w;
    dispatch_type(desc->type, [&](auto tag) {
      using T = decltype(tag);
      const auto idx = bitmap::BinnedBitmapIndex::Build<T>(
          {reinterpret_cast<const T*>(region_bytes.data()),
           static_cast<std::size_t>(region.extent.count)},
          config);
      idx.serialize(w);
      b.header_bytes = idx.header_bytes();
    });
    b.bytes = w.take();
  });

  std::uint64_t cursor = 0;
  for (std::size_t i = 0; i < desc->regions.size(); ++i) {
    RegionDescriptor& region = desc->regions[i];
    BuiltIndex& b = built[i];
    PDC_RETURN_IF_ERROR(b.status);
    PDC_RETURN_IF_ERROR(file.write(cursor, b.bytes));
    region.index_offset = cursor;
    region.index_bytes = b.bytes.size();
    region.index_header_bytes = b.header_bytes;
    region.index_header.assign(
        b.bytes.begin(),
        b.bytes.begin() + static_cast<std::ptrdiff_t>(b.header_bytes));
    cursor += b.bytes.size();
  }
  desc->index_file = fname;
  return Status::Ok();
}

Status ObjectStore::link_sorted_replica(ObjectId replica, ObjectId source,
                                        std::string permutation_file) {
  std::unique_lock lock(mu_);
  auto rep = objects_.find(replica);
  if (rep == objects_.end() || !objects_.contains(source)) {
    return Status::NotFound("replica or source object missing");
  }
  rep->second->sorted_source = source;
  rep->second->permutation_file = std::move(permutation_file);
  return Status::Ok();
}

Result<const ObjectDescriptor*> ObjectStore::get(ObjectId id) const {
  std::shared_lock lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  return static_cast<const ObjectDescriptor*>(it->second.get());
}

Result<const ObjectDescriptor*> ObjectStore::find_by_name(
    std::string_view name) const {
  std::shared_lock lock(mu_);
  for (const auto& [id, o] : objects_) {
    if (o->name == name) return static_cast<const ObjectDescriptor*>(o.get());
  }
  return Status::NotFound("object named " + std::string(name));
}

std::vector<ObjectId> ObjectStore::list_objects() const {
  std::shared_lock lock(mu_);
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, o] : objects_) ids.push_back(id);
  return ids;
}

std::optional<ObjectId> ObjectStore::sorted_replica_of(ObjectId source) const {
  std::shared_lock lock(mu_);
  for (const auto& [id, o] : objects_) {
    if (o->sorted_source == source) return id;
  }
  return std::nullopt;
}

Status ObjectStore::set_region_tier(ObjectId id, RegionIndex region,
                                    StorageTier tier) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  if (region >= it->second->regions.size()) {
    return Status::OutOfRange("region index " + std::to_string(region));
  }
  it->second->regions[region].tier = tier;
  return Status::Ok();
}

Status ObjectStore::set_object_tier(ObjectId id, StorageTier tier) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(id));
  }
  for (RegionDescriptor& region : it->second->regions) region.tier = tier;
  return Status::Ok();
}

Status ObjectStore::read_region(const ObjectDescriptor& object,
                                RegionIndex region,
                                std::span<std::uint8_t> out,
                                const pfs::ReadContext& ctx) const {
  if (region >= object.regions.size()) {
    return Status::OutOfRange("region index " + std::to_string(region));
  }
  const RegionDescriptor& desc = object.regions[region];
  if (desc.tier == StorageTier::kDisk || desc.tier == StorageTier::kTape) {
    return read_elements(object, desc.extent, out, ctx);
  }
  // Faster tier: perform the real read uncharged, then charge the tier's
  // own latency/bandwidth instead of the PFS cost model's.
  PDC_RETURN_IF_ERROR(read_elements(object, desc.extent, out, {}));
  if (ctx.ledger != nullptr) {
    const CostModel& cost = cluster_.config().cost;
    const bool memory = desc.tier == StorageTier::kMemory;
    const double latency =
        memory ? cost.memory_read_latency_s : cost.nvram_read_latency_s;
    const double bandwidth =
        memory ? cost.memory_bandwidth_bps : cost.nvram_bandwidth_bps;
    ctx.ledger->add_io(latency + static_cast<double>(out.size()) / bandwidth);
    ctx.ledger->add_read_ops(1);
    ctx.ledger->add_bytes_read(out.size());
  }
  return Status::Ok();
}

Status ObjectStore::read_elements(const ObjectDescriptor& object,
                                  Extent1D elements,
                                  std::span<std::uint8_t> out,
                                  const pfs::ReadContext& ctx) const {
  const std::size_t elem_size = object.element_size();
  if (elements.end() > object.num_elements) {
    return Status::OutOfRange("element extent beyond object");
  }
  if (out.size() != elements.count * elem_size) {
    return Status::InvalidArgument("output buffer size mismatch");
  }
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.open(object.data_file));
  return file.read(elements.offset * elem_size, out, ctx);
}

Status ObjectStore::read_values_at(const ObjectDescriptor& object,
                                   std::span<const std::uint64_t> positions,
                                   std::span<std::uint8_t> out,
                                   const pfs::AggregationPolicy& policy,
                                   const pfs::ReadContext& ctx) const {
  const std::size_t elem_size = object.element_size();
  if (out.size() != positions.size() * elem_size) {
    return Status::InvalidArgument("output buffer size mismatch");
  }
  if (positions.empty()) return Status::Ok();
  std::vector<Extent1D> extents;
  std::vector<std::span<std::uint8_t>> dests;
  extents.reserve(positions.size());
  dests.reserve(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] >= object.num_elements) {
      return Status::OutOfRange("position beyond object");
    }
    if (i > 0 && positions[i] <= positions[i - 1]) {
      return Status::InvalidArgument("positions must be strictly ascending");
    }
    extents.push_back(
        {positions[i] * elem_size, static_cast<std::uint64_t>(elem_size)});
    dests.push_back(out.subspan(i * elem_size, elem_size));
  }
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.open(object.data_file));
  return pfs::aggregated_read(file, extents, dests, policy, ctx);
}

Result<bitmap::BinnedBitmapIndex> ObjectStore::load_region_index(
    const ObjectDescriptor& object, RegionIndex region,
    const pfs::ReadContext& ctx) const {
  if (object.index_file.empty()) {
    return Status::FailedPrecondition("no bitmap index for object " +
                                      std::to_string(object.id));
  }
  if (region >= object.regions.size()) {
    return Status::OutOfRange("region index " + std::to_string(region));
  }
  const RegionDescriptor& r = object.regions[region];
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(r.index_bytes));
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.open(object.index_file));
  PDC_RETURN_IF_ERROR(file.read(r.index_offset, bytes, ctx));
  SerialReader reader(bytes);
  return bitmap::BinnedBitmapIndex::Deserialize(reader);
}

Status ObjectStore::persist_metadata(std::string_view checkpoint_file) const {
  SerialWriter w;
  std::shared_lock lock(mu_);
  w.put(next_id_);
  w.put<std::uint64_t>(containers_.size());
  for (const auto& [id, name] : containers_) {
    w.put(id);
    w.put_string(name);
  }
  w.put<std::uint64_t>(objects_.size());
  for (const auto& [id, o] : objects_) serialize_object(w, *o);
  lock.unlock();
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.create(checkpoint_file));
  return file.write(0, w.bytes());
}

Status ObjectStore::load_metadata(std::string_view checkpoint_file) {
  PDC_ASSIGN_OR_RETURN(pfs::PfsFile file, cluster_.open(checkpoint_file));
  PDC_ASSIGN_OR_RETURN(const std::uint64_t fsize, file.size());
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(fsize));
  PDC_RETURN_IF_ERROR(file.read(0, bytes, {}));
  SerialReader r(bytes);

  std::unique_lock lock(mu_);
  if (!objects_.empty() || !containers_.empty()) {
    return Status::FailedPrecondition("store is not empty");
  }
  PDC_RETURN_IF_ERROR(r.get(next_id_));
  std::uint64_t ncontainers = 0;
  PDC_RETURN_IF_ERROR(r.get(ncontainers));
  for (std::uint64_t i = 0; i < ncontainers; ++i) {
    ObjectId id = 0;
    std::string name;
    PDC_RETURN_IF_ERROR(r.get(id));
    PDC_RETURN_IF_ERROR(r.get_string(name));
    containers_.emplace(id, std::move(name));
  }
  std::uint64_t nobjects = 0;
  PDC_RETURN_IF_ERROR(r.get(nobjects));
  for (std::uint64_t i = 0; i < nobjects; ++i) {
    auto o = std::make_unique<ObjectDescriptor>();
    PDC_RETURN_IF_ERROR(deserialize_object(r, *o));
    const ObjectId id = o->id;
    objects_.emplace(id, std::move(o));
  }
  return Status::Ok();
}

}  // namespace pdc::obj
