// ODMS core: containers, data objects, and regions (paper §II, §III-B).
//
// A data object is a typed 1-D array.  Large objects are decomposed into
// fixed-size *regions* — the basic unit of placement, I/O and parallel query
// evaluation.  At ingest time every region gets a local mergeable histogram
// (Algorithm 1) and the object gets the merged *global* histogram; both are
// metadata, cheap to ship to query servers.
//
// Raw values live in one PFS file per object; an optional bitmap-index file
// holds one serialized BinnedBitmapIndex per region.  Object/region metadata
// can be persisted to a checkpoint file and reloaded (the paper's
// "periodically persisted for fault tolerance").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bitmap/binned_index.h"
#include "common/status.h"
#include "common/types.h"
#include "histogram/histogram.h"
#include "pfs/pfs.h"
#include "pfs/read_aggregator.h"

namespace pdc::obj {

/// Memory/storage hierarchy layer a region currently resides on.
enum class StorageTier : std::uint8_t { kMemory = 0, kNvram, kDisk, kTape };

/// Metadata of one region of an object.
struct RegionDescriptor {
  RegionIndex index = 0;
  Extent1D extent;                     ///< element range within the object
  StorageTier tier = StorageTier::kDisk;
  hist::MergeableHistogram histogram;  ///< local histogram (Algorithm 1)
  std::uint64_t index_offset = 0;      ///< byte offset in the index file
  std::uint64_t index_bytes = 0;       ///< 0 = no bitmap index built
  std::uint64_t index_header_bytes = 0;  ///< prefix enabling partial loads
  /// Copy of the index header (bin edges + bin sizes).  Small, kept with
  /// the region metadata so query servers can plan partial bin reads
  /// without a storage round trip (FastBit keeps this resident too).
  std::vector<std::uint8_t> index_header;
};

/// Metadata of one data object.
struct ObjectDescriptor {
  ObjectId id = kInvalidObjectId;
  ObjectId container_id = kInvalidObjectId;
  std::string name;
  PdcType type = PdcType::kFloat;
  std::uint64_t num_elements = 0;
  std::uint64_t region_size_elements = 0;
  std::string data_file;    ///< PFS file with the raw values
  std::string index_file;   ///< PFS file with per-region bitmap indexes ("" = none)
  std::vector<RegionDescriptor> regions;
  hist::MergeableHistogram global_histogram;

  /// For sorted replicas: the object this is a value-sorted copy of, and the
  /// PFS file holding the permutation (original element positions, u64 each).
  ObjectId sorted_source = kInvalidObjectId;
  std::string permutation_file;

  [[nodiscard]] std::size_t element_size() const noexcept {
    return pdc_type_size(type);
  }
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return num_elements * element_size();
  }
  [[nodiscard]] bool is_sorted_replica() const noexcept {
    return sorted_source != kInvalidObjectId;
  }
};

/// Ingest parameters.
struct ImportOptions {
  std::uint64_t region_size_bytes = 4ull << 20;  ///< paper sweeps 4–128 MB
  hist::HistogramConfig histogram;               ///< local histogram params
  /// Optional worker pool for the build side of ingest (per-region
  /// histogram construction).  Region seeds are independent (`seed + i`)
  /// and each region's histogram build is deterministic, so any pool size
  /// — including the null (serial) default — produces bit-identical
  /// metadata.  Not owned; must outlive the call.
  exec::ThreadPool* pool = nullptr;
};

/// The object directory + ingest/read paths.  Reads are thread-safe;
/// create/import/build calls must not race with each other.
class ObjectStore {
 public:
  explicit ObjectStore(pfs::PfsCluster& cluster) : cluster_(cluster) {}

  // ---- containers ----
  Result<ObjectId> create_container(std::string_view name);

  // ---- ingest ----
  /// Create an object inside `container` and import its data: write values
  /// to a PFS file, decompose into regions, build local histograms and the
  /// merged global histogram.
  template <PdcElement T>
  Result<ObjectId> import_object(ObjectId container, std::string_view name,
                                 std::span<const T> data,
                                 const ImportOptions& options = {}) {
    return import_raw(container, name, kPdcTypeOf<T>,
                      {reinterpret_cast<const std::uint8_t*>(data.data()),
                       data.size_bytes()},
                      data.size(), options);
  }

  /// Type-erased ingest (used by replicas and format converters).
  Result<ObjectId> import_raw(ObjectId container, std::string_view name,
                              PdcType type,
                              std::span<const std::uint8_t> bytes,
                              std::uint64_t num_elements,
                              const ImportOptions& options);

  /// Build the per-region bitmap index file for an object (§III-D4).
  /// With a non-null `pool`, regions are read and their indexes built and
  /// serialized concurrently; the file writes and offset assignment stay
  /// serial and in region order, so the index file is byte-identical to a
  /// serial build at any pool size.
  Status build_bitmap_index(ObjectId id,
                            const bitmap::IndexConfig& config = {},
                            exec::ThreadPool* pool = nullptr);

  /// Register an already-built sorted replica (used by sortrep).
  Status link_sorted_replica(ObjectId replica, ObjectId source,
                             std::string permutation_file);

  /// Move a region to another layer of the memory/storage hierarchy
  /// (paper §II: "a region ... can reside on any layer").  Placement only
  /// affects the simulated access cost; the backing bytes stay on the PFS
  /// (standing in for the tier's media).
  Status set_region_tier(ObjectId id, RegionIndex region, StorageTier tier);

  /// Move every region of an object at once.
  Status set_object_tier(ObjectId id, StorageTier tier);

  // ---- lookup ----
  [[nodiscard]] Result<const ObjectDescriptor*> get(ObjectId id) const;
  [[nodiscard]] Result<const ObjectDescriptor*> find_by_name(
      std::string_view name) const;
  [[nodiscard]] std::vector<ObjectId> list_objects() const;
  /// The sorted replica of `source`, if one has been linked.
  [[nodiscard]] std::optional<ObjectId> sorted_replica_of(
      ObjectId source) const;

  // ---- data access (query side) ----
  /// Read a whole region's raw bytes.  The region's storage tier decides
  /// the charged cost: kDisk goes through the PFS cost model, kNvram and
  /// kMemory charge that layer's latency/bandwidth instead.
  Status read_region(const ObjectDescriptor& object, RegionIndex region,
                     std::span<std::uint8_t> out,
                     const pfs::ReadContext& ctx) const;

  /// Read an arbitrary element extent's raw bytes.
  Status read_elements(const ObjectDescriptor& object, Extent1D elements,
                       std::span<std::uint8_t> out,
                       const pfs::ReadContext& ctx) const;

  /// Gather the values at sorted element `positions` (aggregated reads).
  Status read_values_at(const ObjectDescriptor& object,
                        std::span<const std::uint64_t> positions,
                        std::span<std::uint8_t> out,
                        const pfs::AggregationPolicy& policy,
                        const pfs::ReadContext& ctx) const;

  /// Load one region's serialized bitmap index.
  Result<bitmap::BinnedBitmapIndex> load_region_index(
      const ObjectDescriptor& object, RegionIndex region,
      const pfs::ReadContext& ctx) const;

  // ---- persistence ----
  /// Checkpoint all metadata (descriptors + histograms) to a PFS file.
  Status persist_metadata(std::string_view checkpoint_file) const;
  /// Restore metadata from a checkpoint into an empty store.
  Status load_metadata(std::string_view checkpoint_file);

  [[nodiscard]] pfs::PfsCluster& cluster() const noexcept { return cluster_; }

 private:
  ObjectId next_id_locked() { return next_id_++; }

  pfs::PfsCluster& cluster_;
  mutable std::shared_mutex mu_;
  ObjectId next_id_ = 1;
  std::map<ObjectId, std::string> containers_;
  std::map<ObjectId, std::unique_ptr<ObjectDescriptor>> objects_;
};

}  // namespace pdc::obj
