// ODMS core: containers, data objects, and regions (paper §II, §III-B).
//
// A data object is a typed 1-D array.  Large objects are decomposed into
// fixed-size *regions* — the basic unit of placement, I/O and parallel query
// evaluation.  At ingest time every region gets a local mergeable histogram
// (Algorithm 1) and the object gets the merged *global* histogram; both are
// metadata, cheap to ship to query servers.
//
// Raw values live in one PFS file per object; an optional bitmap-index file
// holds one serialized BinnedBitmapIndex per region.  Object/region metadata
// can be persisted to a checkpoint file and reloaded (the paper's
// "periodically persisted for fault tolerance").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bitmap/binned_index.h"
#include "common/cost_model.h"
#include "common/status.h"
#include "common/types.h"
#include "histogram/histogram.h"
#include "pfs/pfs.h"
#include "pfs/read_aggregator.h"

namespace pdc::obj {

/// Memory/storage hierarchy layer a region currently resides on.
enum class StorageTier : std::uint8_t { kMemory = 0, kNvram, kDisk, kTape };

/// Delta-WAH sidecar of one region's bitmap index: the region-local
/// positions overwritten since the base index was built, each paired with
/// the bin its *current* value falls in under the base edge grid.  Entries
/// stay sorted by position; queries combine them with the base bins via
/// bitmap::combine_base_delta, and compaction folds them by rebuilding the
/// index file.
struct RegionDelta {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;

  [[nodiscard]] bool empty() const noexcept { return entries.empty(); }
  /// Sorted dirty positions (first of every entry).
  [[nodiscard]] std::vector<std::uint64_t> dirty_positions() const {
    std::vector<std::uint64_t> out;
    out.reserve(entries.size());
    for (const auto& [pos, bin] : entries) out.push_back(pos);
    return out;
  }
  /// Sorted positions whose current value falls in bin `b`.
  [[nodiscard]] std::vector<std::uint64_t> bin_positions(
      std::uint32_t b) const {
    std::vector<std::uint64_t> out;
    for (const auto& [pos, bin] : entries) {
      if (bin == b) out.push_back(pos);
    }
    return out;
  }
};

/// Metadata of one region of an object.
struct RegionDescriptor {
  RegionIndex index = 0;
  Extent1D extent;                     ///< element range within the object
  StorageTier tier = StorageTier::kDisk;
  hist::MergeableHistogram histogram;  ///< local histogram (Algorithm 1)
  std::uint64_t index_offset = 0;      ///< byte offset in the index file
  std::uint64_t index_bytes = 0;       ///< 0 = no bitmap index built
  std::uint64_t index_header_bytes = 0;  ///< prefix enabling partial loads
  /// Copy of the index header (bin edges + bin sizes).  Small, kept with
  /// the region metadata so query servers can plan partial bin reads
  /// without a storage round trip (FastBit keeps this resident too).
  std::vector<std::uint8_t> index_header;
  /// Epoch of this region's data; starts at 1 at import and bumps to the
  /// object's data epoch on every write touching the region.  Region
  /// caches key their entries on it.
  std::uint64_t data_epoch = 1;
  /// Data epoch the base bitmap index was built at (0 = none).
  std::uint64_t index_epoch = 0;
  /// Data epoch the base index PLUS delta sidecar together account for.
  /// The index is usable for queries iff index_bytes > 0 and this equals
  /// data_epoch; otherwise the region is *stale* and the pipeline falls
  /// back to scanning it.
  std::uint64_t index_synced_epoch = 0;
  RegionDelta delta;

  [[nodiscard]] bool index_fresh() const noexcept {
    return index_bytes > 0 && index_synced_epoch == data_epoch;
  }
};

/// Metadata of one data object.
struct ObjectDescriptor {
  ObjectId id = kInvalidObjectId;
  ObjectId container_id = kInvalidObjectId;
  std::string name;
  PdcType type = PdcType::kFloat;
  std::uint64_t num_elements = 0;
  std::uint64_t region_size_elements = 0;
  std::string data_file;    ///< PFS file with the raw values
  std::string index_file;   ///< PFS file with per-region bitmap indexes ("" = none)
  std::vector<RegionDescriptor> regions;
  hist::MergeableHistogram global_histogram;

  /// For sorted replicas: the object this is a value-sorted copy of, and the
  /// PFS file holding the permutation (original element positions, u64 each).
  ObjectId sorted_source = kInvalidObjectId;
  std::string permutation_file;

  // ---- write path ----
  /// Bumped on every applied write; region data epochs chase it.
  std::uint64_t data_epoch = 1;
  /// Exactly-once high-water mark of client write sequence numbers: a
  /// transfer with write_seq at or below this is acknowledged as a
  /// duplicate without re-applying.
  std::uint64_t last_write_seq = 0;
  /// Configs stored at import/index-build time so incremental maintenance
  /// and compaction rebuild byte-identical metadata (region histogram
  /// seeds derive from hist_config.seed + region index).
  hist::HistogramConfig hist_config;
  bitmap::IndexConfig index_config;
  /// Log-structured sorted-replica delta (source objects only): source
  /// position -> current raw value bytes for every element written since
  /// the replica was built/rebuilt.  The sorted strategy merges it on
  /// read; a bulk rebuild folds it.
  std::map<std::uint64_t, std::vector<std::uint8_t>> sorted_delta;
  /// Source data epoch the replica (base + sorted_delta) accounts for.
  /// The planner uses the replica only when this equals data_epoch.
  std::uint64_t replica_synced_epoch = 0;

  [[nodiscard]] std::size_t element_size() const noexcept {
    return pdc_type_size(type);
  }
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return num_elements * element_size();
  }
  [[nodiscard]] bool is_sorted_replica() const noexcept {
    return sorted_source != kInvalidObjectId;
  }
};

/// Ingest parameters.
struct ImportOptions {
  std::uint64_t region_size_bytes = 4ull << 20;  ///< paper sweeps 4–128 MB
  hist::HistogramConfig histogram;               ///< local histogram params
  /// Optional worker pool for the build side of ingest (per-region
  /// histogram construction).  Region seeds are independent (`seed + i`)
  /// and each region's histogram build is deterministic, so any pool size
  /// — including the null (serial) default — produces bit-identical
  /// metadata.  Not owned; must outlive the call.
  exec::ThreadPool* pool = nullptr;
};

/// What a write transfer does to the target object.
enum class WriteKind : std::uint8_t { kAppend = 0, kOverwrite = 1 };

/// Per-write knobs (server-side policy, surfaced via PDC_COMPACT_THRESHOLD
/// and PDC_WRITE_NO_MAINT).
struct WriteOptions {
  /// Maintain the bitmap-index delta sidecar and sorted-replica delta log.
  /// Off: indexes/replicas simply go stale (queries fall back to scan and
  /// the planner skips the replica) — correctness is never at stake,
  /// histograms are always kept sound.
  bool maintain_accelerators = true;
  /// Dirty positions per region at which a write triggers a synchronous
  /// index compaction (full rebuild folding every delta).
  std::uint64_t compact_threshold = 64;
  /// Pool for compaction rebuilds (byte-identical at any width).
  exec::ThreadPool* pool = nullptr;
  /// Where to charge the write + maintenance I/O (may be null).
  CostLedger* ledger = nullptr;
};

/// Outcome of apply_write.
struct WriteResult {
  std::uint64_t data_epoch = 0;     ///< object epoch after the write
  std::uint64_t regions_touched = 0;
  bool duplicate = false;           ///< seq replay: acknowledged, not applied
  bool compacted = false;           ///< triggered a delta-folding rebuild
  /// Size of the sorted-replica delta log after this write (0 when no
  /// replica is linked) — the caller's replica-rebuild decision input.
  std::uint64_t sorted_delta_entries = 0;
  ObjectId replica_id = kInvalidObjectId;  ///< linked replica, if any
};

/// The object directory + ingest/read paths.  Reads are thread-safe;
/// create/import/build calls must not race with each other.
class ObjectStore {
 public:
  explicit ObjectStore(pfs::PfsCluster& cluster) : cluster_(cluster) {}

  // ---- containers ----
  Result<ObjectId> create_container(std::string_view name);

  // ---- ingest ----
  /// Create an object inside `container` and import its data: write values
  /// to a PFS file, decompose into regions, build local histograms and the
  /// merged global histogram.
  template <PdcElement T>
  Result<ObjectId> import_object(ObjectId container, std::string_view name,
                                 std::span<const T> data,
                                 const ImportOptions& options = {}) {
    return import_raw(container, name, kPdcTypeOf<T>,
                      {reinterpret_cast<const std::uint8_t*>(data.data()),
                       data.size_bytes()},
                      data.size(), options);
  }

  /// Type-erased ingest (used by replicas and format converters).
  Result<ObjectId> import_raw(ObjectId container, std::string_view name,
                              PdcType type,
                              std::span<const std::uint8_t> bytes,
                              std::uint64_t num_elements,
                              const ImportOptions& options);

  /// Build the per-region bitmap index file for an object (§III-D4).
  /// With a non-null `pool`, regions are read and their indexes built and
  /// serialized concurrently; the file writes and offset assignment stay
  /// serial and in region order, so the index file is byte-identical to a
  /// serial build at any pool size.
  Status build_bitmap_index(ObjectId id,
                            const bitmap::IndexConfig& config = {},
                            exec::ThreadPool* pool = nullptr);

  /// Register an already-built sorted replica (used by sortrep).
  Status link_sorted_replica(ObjectId replica, ObjectId source,
                             std::string permutation_file);

  // ---- write path (mutable regions) ----
  /// Apply a region transfer: append `bytes` to the object or overwrite
  /// `extent` (element space) with them.  Updates the data file, region
  /// decomposition and epochs, rebuilds/merges the affected local
  /// histograms (always — pruning soundness is never traded away), and
  /// incrementally maintains the bitmap-index delta sidecar and the
  /// sorted-replica delta log per `options`.  Exactly-once: a write_seq at
  /// or below the object's high-water mark returns duplicate=true without
  /// re-applying (write_seq 0 opts out of dedup).  Writes serialize with
  /// each other internally; callers must not overlap writes with queries
  /// on the same object (descriptor fields are read lock-free by the
  /// query pipeline).
  Result<WriteResult> apply_write(ObjectId id, WriteKind kind,
                                  Extent1D extent,
                                  std::span<const std::uint8_t> bytes,
                                  std::uint64_t write_seq,
                                  const WriteOptions& options = {});

  /// Fold every region's delta sidecar by rebuilding the object's bitmap
  /// index file from current data with the stored IndexConfig — byte
  /// identical to a from-scratch build.  Re-syncs every region's index
  /// epoch (including regions stale from appends).
  Status rebuild_bitmap_index(ObjectId id, exec::ThreadPool* pool = nullptr);

  /// Replace an object's data wholesale: rewrite the data file, rebuild
  /// regions/histograms (and the bitmap index, when one exists) from the
  /// new bytes.  Used by the sorted-replica bulk rebuild.
  Status reset_object_data(ObjectId id, std::span<const std::uint8_t> bytes,
                           std::uint64_t num_elements,
                           exec::ThreadPool* pool = nullptr);

  /// Declare `source`'s replica fully synced: clears the sorted-delta log
  /// and fast-forwards replica_synced_epoch (called after a bulk rebuild).
  Status mark_replica_synced(ObjectId source);

  /// Move a region to another layer of the memory/storage hierarchy
  /// (paper §II: "a region ... can reside on any layer").  Placement only
  /// affects the simulated access cost; the backing bytes stay on the PFS
  /// (standing in for the tier's media).
  Status set_region_tier(ObjectId id, RegionIndex region, StorageTier tier);

  /// Move every region of an object at once.
  Status set_object_tier(ObjectId id, StorageTier tier);

  // ---- lookup ----
  [[nodiscard]] Result<const ObjectDescriptor*> get(ObjectId id) const;
  [[nodiscard]] Result<const ObjectDescriptor*> find_by_name(
      std::string_view name) const;
  [[nodiscard]] std::vector<ObjectId> list_objects() const;
  /// The sorted replica of `source`, if one has been linked.
  [[nodiscard]] std::optional<ObjectId> sorted_replica_of(
      ObjectId source) const;

  // ---- data access (query side) ----
  /// Read a whole region's raw bytes.  The region's storage tier decides
  /// the charged cost: kDisk goes through the PFS cost model, kNvram and
  /// kMemory charge that layer's latency/bandwidth instead.
  Status read_region(const ObjectDescriptor& object, RegionIndex region,
                     std::span<std::uint8_t> out,
                     const pfs::ReadContext& ctx) const;

  /// Read an arbitrary element extent's raw bytes.
  Status read_elements(const ObjectDescriptor& object, Extent1D elements,
                       std::span<std::uint8_t> out,
                       const pfs::ReadContext& ctx) const;

  /// Gather the values at sorted element `positions` (aggregated reads).
  Status read_values_at(const ObjectDescriptor& object,
                        std::span<const std::uint64_t> positions,
                        std::span<std::uint8_t> out,
                        const pfs::AggregationPolicy& policy,
                        const pfs::ReadContext& ctx) const;

  /// Load one region's serialized bitmap index.
  Result<bitmap::BinnedBitmapIndex> load_region_index(
      const ObjectDescriptor& object, RegionIndex region,
      const pfs::ReadContext& ctx) const;

  // ---- persistence ----
  /// Checkpoint all metadata (descriptors + histograms) to a PFS file.
  Status persist_metadata(std::string_view checkpoint_file) const;
  /// Restore metadata from a checkpoint into an empty store.
  Status load_metadata(std::string_view checkpoint_file);

  [[nodiscard]] pfs::PfsCluster& cluster() const noexcept { return cluster_; }

 private:
  ObjectId next_id_locked() { return next_id_++; }
  /// Region decomposition + per-region/global histograms from raw bytes
  /// (shared by import_raw, append growth and reset_object_data).
  void build_regions(ObjectDescriptor& desc,
                     std::span<const std::uint8_t> bytes,
                     exec::ThreadPool* pool) const;
  /// (Re)create the index file and fill every region's index fields +
  /// epochs.  Caller owns locking discipline.
  Status build_index_into(ObjectDescriptor* desc,
                          const bitmap::IndexConfig& config,
                          exec::ThreadPool* pool);

  pfs::PfsCluster& cluster_;
  mutable std::shared_mutex mu_;
  ObjectId next_id_ = 1;
  std::map<ObjectId, std::string> containers_;
  std::map<ObjectId, std::unique_ptr<ObjectDescriptor>> objects_;
};

}  // namespace pdc::obj
