# Empty dependencies file for pdc_obj.
# This may be replaced when dependencies are built.
