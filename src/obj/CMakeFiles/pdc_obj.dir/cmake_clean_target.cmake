file(REMOVE_RECURSE
  "libpdc_obj.a"
)
