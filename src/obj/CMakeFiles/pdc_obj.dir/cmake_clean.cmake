file(REMOVE_RECURSE
  "CMakeFiles/pdc_obj.dir/object_store.cc.o"
  "CMakeFiles/pdc_obj.dir/object_store.cc.o.d"
  "libpdc_obj.a"
  "libpdc_obj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_obj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
