#include "workloads/vpic.h"

#include <cmath>

#include "common/rng.h"

namespace pdc::workloads {

namespace {

struct Box {
  double x_lo, x_hi, y_lo, y_hi, z_lo, z_hi;

  [[nodiscard]] bool contains(double x, double y, double z) const noexcept {
    return x >= x_lo && x < x_hi && y >= y_lo && y < y_hi && z >= z_lo &&
           z < z_hi;
  }
};

/// The reconnection sheet: the subvolume where energetic particles
/// concentrate.  Chosen disjoint from the paper's compound-query window
/// (100<x<200, -90<y<0, 0<z<66) so query 1's selectivity matches the paper.
constexpr Box kSheet{200.0, 330.0, 0.0, 150.0, 66.0, 132.0};

/// Secondary energization zone: a thin leak of energetic particles over a
/// slightly larger box than the query window.  Everything outside
/// kSheet ∪ kLeakZone is purely thermal, so those regions prune by min/max.
constexpr Box kLeakZone{90.0, 210.0, -95.0, 5.0, 0.0, 70.0};

}  // namespace

VpicConfig tiny_vpic_config(std::uint64_t num_particles,
                            std::uint64_t seed) noexcept {
  VpicConfig config;
  config.num_particles = num_particles;
  config.seed = seed;
  config.grid_x = 4;
  config.grid_y = 4;
  config.grid_z = 2;
  // With only O(1k) particles the paper-calibrated tail fractions would
  // leave the energetic range empty; inflate them so tail queries hit.
  config.tail_fraction = 0.08;
  config.leak_tail_fraction = 0.02;
  return config;
}

VpicData generate_vpic(const VpicConfig& config) {
  VpicData data;
  const std::uint64_t n = config.num_particles;
  data.energy.reserve(n);
  data.x.reserve(n);
  data.y.reserve(n);
  data.z.reserve(n);
  data.ux.reserve(n);
  data.uy.reserve(n);
  data.uz.reserve(n);

  Rng rng(config.seed);
  const std::uint64_t num_cells = static_cast<std::uint64_t>(config.grid_x) *
                                  config.grid_y * config.grid_z;
  const double dx = config.x_max / config.grid_x;
  const double dy = (config.y_max - config.y_min) / config.grid_y;
  const double dz = config.z_max / config.grid_z;

  // Zone volume fractions -> per-zone tail probabilities realizing the
  // configured overall fractions.
  std::uint64_t sheet_cells = 0;
  std::uint64_t leak_cells = 0;
  for (std::uint32_t cz = 0; cz < config.grid_z; ++cz) {
    for (std::uint32_t cy = 0; cy < config.grid_y; ++cy) {
      for (std::uint32_t cx = 0; cx < config.grid_x; ++cx) {
        const double x = (cx + 0.5) * dx;
        const double y = config.y_min + (cy + 0.5) * dy;
        const double z = (cz + 0.5) * dz;
        sheet_cells += kSheet.contains(x, y, z);
        leak_cells += !kSheet.contains(x, y, z) && kLeakZone.contains(x, y, z);
      }
    }
  }
  const double sheet_fraction =
      static_cast<double>(sheet_cells) / static_cast<double>(num_cells);
  const double leak_fraction =
      static_cast<double>(leak_cells) / static_cast<double>(num_cells);
  const double p_leak =
      leak_fraction > 0.0 ? config.leak_tail_fraction / leak_fraction : 0.0;
  const double p_hot =
      sheet_fraction > 0.0
          ? std::clamp(
                (config.tail_fraction - config.leak_tail_fraction) /
                    sheet_fraction,
                0.0, 1.0)
          : 0.0;

  // Emit particles cell by cell in raster order (as VPIC writes them), so
  // array position tracks spatial position.
  for (std::uint64_t cell = 0; cell < num_cells; ++cell) {
    const std::uint32_t cx = static_cast<std::uint32_t>(cell % config.grid_x);
    const std::uint32_t cy =
        static_cast<std::uint32_t>((cell / config.grid_x) % config.grid_y);
    const std::uint32_t cz =
        static_cast<std::uint32_t>(cell / (config.grid_x * config.grid_y));
    const double x0 = cx * dx;
    const double y0 = config.y_min + cy * dy;
    const double z0 = cz * dz;
    const double xc = x0 + 0.5 * dx;
    const double yc = y0 + 0.5 * dy;
    const double zc = z0 + 0.5 * dz;
    const bool hot = kSheet.contains(xc, yc, zc);
    const bool leak = !hot && kLeakZone.contains(xc, yc, zc);
    const double p_tail = hot ? p_hot : (leak ? p_leak : 0.0);

    // Smooth bulk temperature field in [0.2, 1.85]: hotter near the sheet,
    // gently varying across the box.
    const double u = static_cast<double>(cx) / config.grid_x;
    const double v = static_cast<double>(cy) / config.grid_y;
    const double w = static_cast<double>(cz) / config.grid_z;
    const double temperature =
        0.2 + 0.8 * (1.0 + std::sin(6.283 * u) * std::cos(6.283 * v)) * 0.5 +
        0.6 * w + (hot ? 0.2 : 0.0);

    // Equal particle count per cell (+ remainder spread over leading cells).
    const std::uint64_t base = n / num_cells;
    const std::uint64_t count = base + (cell < n % num_cells ? 1 : 0);
    for (std::uint64_t p = 0; p < count; ++p) {
      const bool tail = p_tail > 0.0 && rng.next_double() < p_tail;
      double energy;
      if (tail) {
        energy = 2.0 + rng.exponential(config.tail_lambda);
      } else {
        energy = std::clamp(temperature + 0.15 * (rng.next_double() - 0.5),
                            0.01, 1.99);
      }
      data.energy.push_back(static_cast<float>(energy));
      data.x.push_back(static_cast<float>(x0 + rng.next_double() * dx));
      data.y.push_back(static_cast<float>(y0 + rng.next_double() * dy));
      data.z.push_back(static_cast<float>(z0 + rng.next_double() * dz));
      const double sigma = tail ? 1.5 : 0.5;
      data.ux.push_back(static_cast<float>(sigma * rng.normal()));
      data.uy.push_back(static_cast<float>(sigma * rng.normal()));
      data.uz.push_back(static_cast<float>(sigma * rng.normal()));
    }
  }
  return data;
}

Result<VpicObjects> import_vpic(obj::ObjectStore& store, const VpicData& data,
                                const obj::ImportOptions& options) {
  VpicObjects objects;
  PDC_ASSIGN_OR_RETURN(objects.container, store.create_container("vpic"));
  const auto import = [&](const char* name,
                          const std::vector<float>& column) -> Result<ObjectId> {
    return store.import_object<float>(objects.container, name, column,
                                      options);
  };
  PDC_ASSIGN_OR_RETURN(objects.energy, import("Energy", data.energy));
  PDC_ASSIGN_OR_RETURN(objects.x, import("x", data.x));
  PDC_ASSIGN_OR_RETURN(objects.y, import("y", data.y));
  PDC_ASSIGN_OR_RETURN(objects.z, import("z", data.z));
  PDC_ASSIGN_OR_RETURN(objects.ux, import("Ux", data.ux));
  PDC_ASSIGN_OR_RETURN(objects.uy, import("Uy", data.uy));
  PDC_ASSIGN_OR_RETURN(objects.uz, import("Uz", data.uz));
  return objects;
}

Status write_vpic_h5(pfs::PfsCluster& cluster, const VpicData& data,
                     std::string_view filename) {
  PDC_ASSIGN_OR_RETURN(h5lite::H5LiteWriter writer,
                       h5lite::H5LiteWriter::Create(cluster, filename));
  PDC_RETURN_IF_ERROR(writer.add_dataset<float>("Energy", data.energy));
  PDC_RETURN_IF_ERROR(writer.add_dataset<float>("x", data.x));
  PDC_RETURN_IF_ERROR(writer.add_dataset<float>("y", data.y));
  PDC_RETURN_IF_ERROR(writer.add_dataset<float>("z", data.z));
  PDC_RETURN_IF_ERROR(writer.add_dataset<float>("Ux", data.ux));
  PDC_RETURN_IF_ERROR(writer.add_dataset<float>("Uy", data.uy));
  PDC_RETURN_IF_ERROR(writer.add_dataset<float>("Uz", data.uz));
  return writer.finish();
}

std::vector<SingleQuerySpec> vpic_single_queries() {
  // 15 windows [2.1,2.2] .. [3.5,3.6]: the calibrated tail maps these onto
  // the paper's selectivity ladder (1.3025 % down to 0.0004 %).
  std::vector<SingleQuerySpec> queries;
  queries.reserve(15);
  for (int i = 0; i < 15; ++i) {
    // Integer-scaled division yields the exact doubles a user would write
    // as decimal literals (2.8, not 2.1+0.7 = 2.800000000000000266...),
    // matching how the paper's query constants are specified.
    queries.push_back({static_cast<double>(21 + i) / 10.0,
                       static_cast<double>(22 + i) / 10.0});
  }
  return queries;
}

std::vector<MultiQuerySpec> vpic_multi_queries() {
  // Paper §V: from "Energy>2.0 AND 100<x<200 AND -90<y<0 AND 0<z<66"
  // (0.0013 %) to "Energy>1.3 AND 100<x<140 AND -100<y<0 AND 0<z<66"
  // (0.0442 %).  Energy loosens while x narrows, so the planner's driver
  // flips from Energy to x for the last queries (paper Fig. 4 discussion).
  return {
      {2.0, 100, 200, -90, 0, 0, 66},
      {1.9, 100, 190, -90, 0, 0, 66},
      {1.8, 100, 180, -95, 0, 0, 66},
      {1.6, 100, 170, -95, 0, 0, 66},
      {1.4, 100, 150, -100, 0, 0, 66},
      {1.3, 100, 140, -100, 0, 0, 66},
  };
}

}  // namespace pdc::workloads
