#include "workloads/traffic.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <queue>
#include <string>
#include <thread>

#include "common/rng.h"

namespace pdc::workloads {

namespace {

/// Exact percentile of a sorted latency sample (nearest-rank).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Per-tenant latency samples -> TenantReport vector + overall percentiles.
void finalize_latencies(std::vector<std::vector<double>>& by_tenant,
                        const std::vector<std::uint64_t>& offered_by_tenant,
                        const std::vector<std::uint64_t>& dropped_by_tenant,
                        obs::MetricsRegistry& metrics, TrafficReport& report) {
  std::vector<double> all;
  for (std::uint32_t t = 0; t < by_tenant.size(); ++t) {
    auto& lat = by_tenant[t];
    std::sort(lat.begin(), lat.end());
    all.insert(all.end(), lat.begin(), lat.end());
    auto& hist = metrics.histogram("traffic.tenant" + std::to_string(t) +
                                   ".latency_seconds");
    double sum = 0.0;
    for (const double s : lat) {
      hist.observe(s);
      sum += s;
    }
    TenantReport tenant;
    tenant.tenant = t;
    tenant.offered = offered_by_tenant[t];
    tenant.completed = lat.size();
    tenant.dropped = dropped_by_tenant[t];
    tenant.p50_s = percentile(lat, 0.50);
    tenant.p95_s = percentile(lat, 0.95);
    tenant.p99_s = percentile(lat, 0.99);
    tenant.mean_s = lat.empty() ? 0.0 : sum / static_cast<double>(lat.size());
    report.tenants.push_back(tenant);
  }
  std::sort(all.begin(), all.end());
  report.p50_s = percentile(all, 0.50);
  report.p95_s = percentile(all, 0.95);
  report.p99_s = percentile(all, 0.99);
}

}  // namespace

TrafficConfig TrafficConfig::from_env() {
  TrafficConfig config;
  if (const char* env = std::getenv("PDC_TRAFFIC_SEED")) {
    config.seed = std::strtoull(env, nullptr, 10);
  }
  return config;
}

std::vector<Arrival> make_schedule(const TrafficConfig& config,
                                   double rate_qps) {
  std::vector<Arrival> schedule;
  if (rate_qps <= 0.0 || config.num_queries == 0) return schedule;
  schedule.reserve(config.num_queries);
  Rng rng(config.seed);
  // Bursty arrivals are on/off modulated Poisson with the same mean rate:
  // rate_on during the first burst_on_fraction of each period, rate_off
  // (derived, floored at 1% of the mean) for the rest.
  const double on_frac = std::clamp(config.burst_on_fraction, 0.01, 0.99);
  const double rate_on = rate_qps * std::max(1.0, config.burst_multiplier);
  const double rate_off = std::max(
      rate_qps * 0.01,
      rate_qps * (1.0 - on_frac * std::max(1.0, config.burst_multiplier)) /
          (1.0 - on_frac));
  double t = 0.0;
  for (std::uint32_t i = 0; i < config.num_queries; ++i) {
    double rate = rate_qps;
    if (config.arrival == ArrivalProcess::kBursty &&
        config.burst_period_s > 0.0) {
      const double phase =
          std::fmod(t, config.burst_period_s) / config.burst_period_s;
      rate = phase < on_frac ? rate_on : rate_off;
    }
    t += rng.exponential(rate);
    Arrival arrival;
    arrival.time_s = t;
    arrival.tenant = static_cast<std::uint32_t>(
        rng.bounded(std::max<std::uint32_t>(1, config.num_tenants)));
    arrival.query_index = i;
    schedule.push_back(arrival);
  }
  return schedule;
}

TrafficDriver::TrafficDriver(TrafficConfig config)
    : config_(std::move(config)) {
  if (config_.num_clients == 0) config_.num_clients = 1;
  if (config_.num_tenants == 0) config_.num_tenants = 1;
}

double TrafficDriver::measure_capacity_qps(
    query::QueryService& service, const std::vector<TrafficQuery>& queries,
    std::uint32_t probes, std::uint32_t threads) {
  if (queries.empty() || probes == 0) return 0.0;
  threads = std::max(1u, threads);
  // Warm the region caches first so capacity reflects steady state.
  (void)service.get_num_hits(queries.front().query);
  std::atomic<std::uint32_t> next{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      for (std::uint32_t i = next.fetch_add(1); i < probes;
           i = next.fetch_add(1)) {
        (void)service.get_num_hits(queries[i % queries.size()].query);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return elapsed > 0.0 ? static_cast<double>(probes) / elapsed : 0.0;
}

TrafficReport TrafficDriver::run_live(query::QueryService& service,
                                      const std::vector<TrafficQuery>& queries,
                                      double rate_qps) {
  TrafficReport report;
  if (queries.empty()) return report;
  const std::vector<Arrival> schedule = make_schedule(config_, rate_qps);
  report.offered = schedule.size();

  struct ClientState {
    std::vector<std::vector<double>> latency_by_tenant;
    std::vector<std::uint64_t> offered_by_tenant;
    std::vector<std::uint64_t> dropped_by_tenant;
    std::uint64_t completed = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t failed = 0;
    std::uint64_t shed_retries = 0;
    double last_completion_s = 0.0;
  };
  const std::uint32_t clients =
      std::min<std::uint32_t>(config_.num_clients,
                              static_cast<std::uint32_t>(schedule.size()));
  std::vector<ClientState> states(clients);
  for (ClientState& state : states) {
    state.latency_by_tenant.resize(config_.num_tenants);
    state.offered_by_tenant.assign(config_.num_tenants, 0);
    state.dropped_by_tenant.assign(config_.num_tenants, 0);
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientState& state = states[c];
      Rng backoff_rng(config_.seed ^ (0x9E3779B97F4A7C15ull * (c + 1)));
      // Round-robin assignment keeps each client's arrivals time-ordered.
      for (std::size_t i = c; i < schedule.size(); i += clients) {
        const Arrival& arrival = schedule[i];
        ++state.offered_by_tenant[arrival.tenant];
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(arrival.time_s));
        std::this_thread::sleep_until(due);
        const TrafficQuery& tq = queries[arrival.query_index % queries.size()];
        query::QueryOptions opts;
        opts.tenant = arrival.tenant;
        bool done = false;
        for (std::uint32_t attempt = 0; attempt <= config_.max_retries;
             ++attempt) {
          const auto result = service.get_num_hits(tq.query, opts);
          if (result.ok()) {
            const double now_s =
                std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
            // Open-loop latency: scheduled arrival -> completion, so time
            // spent queued behind this client's earlier queries counts.
            state.latency_by_tenant[arrival.tenant].push_back(
                std::max(0.0, now_s - arrival.time_s));
            state.last_completion_s = std::max(state.last_completion_s, now_s);
            ++state.completed;
            if (*result != tq.expected_hits) ++state.mismatches;
            done = true;
            break;
          }
          if (result.status().code() != StatusCode::kOverloaded) {
            ++state.failed;
            done = true;
            break;
          }
          ++state.shed_retries;
          if (attempt == config_.max_retries) break;
          // Jittered exponential backoff: base doubles per attempt, the
          // jitter decorrelates this client's retry from the others'.  The
          // cap keeps clients re-offering near the shed-retry-after scale
          // so post-burst capacity is reclaimed instead of idling.
          const std::uint64_t base = config_.retry_backoff_us
                                     << std::min<std::uint32_t>(attempt, 4);
          const auto sleep_us = static_cast<std::uint64_t>(
              static_cast<double>(base) *
              (1.0 + backoff_rng.next_double()));
          std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
        }
        if (!done) ++state.dropped_by_tenant[arrival.tenant];
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<std::vector<double>> latency_by_tenant(config_.num_tenants);
  std::vector<std::uint64_t> offered_by_tenant(config_.num_tenants, 0);
  std::vector<std::uint64_t> dropped_by_tenant(config_.num_tenants, 0);
  double last_completion_s = 0.0;
  for (const ClientState& state : states) {
    report.completed += state.completed;
    report.mismatches += state.mismatches;
    report.failed += state.failed;
    report.shed_retries += state.shed_retries;
    last_completion_s = std::max(last_completion_s, state.last_completion_s);
    for (std::uint32_t t = 0; t < config_.num_tenants; ++t) {
      latency_by_tenant[t].insert(latency_by_tenant[t].end(),
                                  state.latency_by_tenant[t].begin(),
                                  state.latency_by_tenant[t].end());
      offered_by_tenant[t] += state.offered_by_tenant[t];
      dropped_by_tenant[t] += state.dropped_by_tenant[t];
      report.dropped += state.dropped_by_tenant[t];
    }
  }
  report.duration_s = std::max(last_completion_s, 1e-9);
  report.goodput_qps =
      static_cast<double>(report.completed) / report.duration_s;
  finalize_latencies(latency_by_tenant, offered_by_tenant, dropped_by_tenant,
                     metrics_, report);
  metrics_.counter("traffic.offered").add(report.offered);
  metrics_.counter("traffic.completed").add(report.completed);
  metrics_.counter("traffic.shed_retries").add(report.shed_retries);
  metrics_.counter("traffic.dropped").add(report.dropped);

  // Scrape the service's overload counters/gauges for the report.
  const obs::MetricsSnapshot snapshot = service.metrics().snapshot();
  for (const obs::MetricSample& sample : snapshot.samples) {
    const std::string_view name = sample.name;
    if (name.starts_with("rpc.server") &&
        name.ends_with(".shed")) {
      report.server_sheds += sample.value;
    } else if (name.starts_with("rpc.server") &&
               name.ends_with(".queue_peak")) {
      report.queue_peak = std::max(report.queue_peak, sample.value);
    }
  }
  report.mailbox_peak = snapshot.value("bus.mailbox_peak");
  report.mailbox_rejects = snapshot.value("bus.mailbox_rejects");
  return report;
}

TrafficReport TrafficDriver::simulate(const SimParams& params,
                                      double rate_qps) {
  TrafficReport report;
  const std::vector<Arrival> schedule = make_schedule(config_, rate_qps);
  report.offered = schedule.size();
  if (schedule.empty() || params.concurrency == 0) return report;

  // Deterministic per-query service time: mean * [0.5, 1.5), drawn from a
  // hash of (seed, query index) so it is independent of event order.
  const auto service_time = [&](std::uint32_t query_index) {
    std::uint64_t h = config_.seed ^ (0xD1B54A32D192ED03ull *
                                      (static_cast<std::uint64_t>(query_index) + 1));
    const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
    return params.service_time_s * (0.5 + u);
  };

  struct Job {
    double first_arrival_s = 0.0;
    std::uint32_t tenant = 0;
    std::uint32_t query_index = 0;
    std::uint32_t attempt = 0;
  };
  struct Event {
    double time_s = 0.0;
    std::uint64_t seq = 0;  ///< deterministic tie-break
    bool completion = false;
    Job job;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> events;
  std::uint64_t seq = 0;
  for (const Arrival& arrival : schedule) {
    Event ev;
    ev.time_s = arrival.time_s;
    ev.seq = seq++;
    ev.job = Job{arrival.time_s, arrival.tenant,
                 arrival.query_index, 0};
    events.push(ev);
  }

  rpc::WeightedFairQueue<Job> queue(params.queue_limit, params.shed_policy,
                                    params.tenant_weights);
  std::uint32_t busy = 0;
  std::vector<std::vector<double>> latency_by_tenant(config_.num_tenants);
  std::vector<std::uint64_t> offered_by_tenant(config_.num_tenants, 0);
  std::vector<std::uint64_t> dropped_by_tenant(config_.num_tenants, 0);
  for (const Arrival& arrival : schedule) {
    ++offered_by_tenant[arrival.tenant];
  }
  double last_completion_s = 0.0;

  const auto start_job = [&](double now_s, Job job) {
    ++busy;
    Event done;
    done.time_s = now_s + service_time(job.query_index);
    done.seq = seq++;
    done.completion = true;
    done.job = job;
    events.push(done);
  };
  const auto shed_job = [&](double now_s, Job job) {
    ++report.shed_retries;
    if (job.attempt >= config_.max_retries) {
      ++report.dropped;
      ++dropped_by_tenant[job.tenant];
      return;
    }
    // The simulated client honours the retry-after hint, scaled up per
    // attempt like the live jittered backoff (deterministically, from the
    // job identity, so replays are bit-stable).  The exponent is capped
    // low: a client pacing off retry-after keeps re-offering work at
    // roughly the hint interval, so capacity freed after a burst is
    // reclaimed promptly instead of sitting idle behind multi-second
    // backoffs (which would collapse goodput past saturation).
    std::uint64_t h = config_.seed ^
                      (0xBF58476D1CE4E5B9ull * (job.query_index + 1)) ^
                      (0x94D049BB133111EBull * (job.attempt + 1));
    const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
    const double delay_s = params.retry_after_s *
                           static_cast<double>(1u << std::min(job.attempt, 4u)) *
                           (1.0 + u);
    Event retry;
    retry.time_s = now_s + delay_s;
    retry.seq = seq++;
    retry.job = job;
    ++retry.job.attempt;
    events.push(retry);
  };

  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    if (ev.completion) {
      --busy;
      ++report.completed;
      last_completion_s = std::max(last_completion_s, ev.time_s);
      latency_by_tenant[ev.job.tenant].push_back(
          std::max(0.0, ev.time_s - ev.job.first_arrival_s));
      if (auto next = queue.pop()) {
        start_job(ev.time_s, std::move(next->second));
      }
      continue;
    }
    // Arrival (or retry): start immediately when a slot is free and the
    // fair queue is empty; otherwise queue, shedding per policy.
    if (busy < params.concurrency && queue.empty()) {
      start_job(ev.time_s, ev.job);
      continue;
    }
    auto pushed = queue.push(ev.job.tenant, ev.job);
    if (pushed.victim.has_value()) {
      shed_job(ev.time_s, std::move(pushed.victim->item));
    }
  }

  report.queue_peak = static_cast<double>(queue.peak());
  report.server_sheds = static_cast<double>(queue.sheds());
  report.duration_s = std::max(last_completion_s, 1e-9);
  report.goodput_qps =
      static_cast<double>(report.completed) / report.duration_s;
  finalize_latencies(latency_by_tenant, offered_by_tenant, dropped_by_tenant,
                     metrics_, report);
  metrics_.counter("traffic.offered").add(report.offered);
  metrics_.counter("traffic.completed").add(report.completed);
  metrics_.counter("traffic.shed_retries").add(report.shed_retries);
  metrics_.counter("traffic.dropped").add(report.dropped);
  return report;
}

}  // namespace pdc::workloads
