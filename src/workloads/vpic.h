// Synthetic VPIC plasma-physics particle workload (paper §V).
//
// The paper's dataset: 125 billion particles from a magnetic-reconnection
// simulation, 7 float properties (Energy, x, y, z, Ux, Uy, Uz), queried by
// energy windows with selectivities 0.0004 %–1.3025 % and by compound
// energy+position conditions at 0.0013 %–0.0442 %.
//
// This generator reproduces both the paper's *selectivities* and the
// *spatial structure* the paper's optimizations rely on:
//   - particles are emitted in cell-raster order (as VPIC writes them), so
//     array order tracks spatial position — region min/max pruning and
//     WAH-compressible value runs arise naturally, as for real VPIC data;
//   - bulk energy follows a smooth per-cell temperature field below 2.0,
//     plus an exponential tail above 2.0 calibrated so the paper's 15
//     windows [2.1,2.2] ... [3.5,3.6] land on the paper's selectivity
//     ladder (1.3 % down to 0.0004 %);
//   - the tail concentrates in a "reconnection sheet" subvolume disjoint
//     from the paper's compound-query window, reproducing the strong
//     negative energy/position correlation implied by the paper's
//     compound-query selectivities (0.0013 % for query 1);
//   - momenta Ux/Uy/Uz: thermal gaussians (payload variables).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "h5lite/h5lite.h"
#include "metadata/meta_store.h"
#include "obj/object_store.h"

namespace pdc::workloads {

struct VpicConfig {
  std::uint64_t num_particles = 1ull << 22;
  std::uint64_t seed = 0x7591C0DEULL;

  // Simulation box (paper's queries use 100<x<200, -90<y<0, 0<z<66).
  double x_max = 330.0;
  double y_min = -150.0, y_max = 150.0;
  double z_max = 132.0;

  // Spatial cell grid (particles are emitted cell by cell, raster order).
  std::uint32_t grid_x = 32, grid_y = 32, grid_z = 16;

  // Energy model: P(E > 2.0) = tail_fraction; above 2.0,
  // E = 2 + Exp(tail_lambda).  Defaults calibrated to the paper's ladder.
  double tail_fraction = 0.0526;
  double tail_lambda = 5.78;
  /// Overall fraction of particles that are energetic "leak" particles:
  /// tail particles outside the main sheet, confined to a secondary zone
  /// that contains the paper's query window.  Calibrated so compound
  /// query 1 hits ~0.0013 %.  Cells outside both zones have NO energetic
  /// particles, so their regions prune perfectly — as for real VPIC data,
  /// where energization is spatially confined.
  double leak_tail_fraction = 1.84e-5;
};

/// Columnar particle data (struct-of-arrays, as VPIC stores it).
struct VpicData {
  std::vector<float> energy, x, y, z, ux, uy, uz;

  [[nodiscard]] std::uint64_t size() const noexcept { return energy.size(); }
};

/// Generate the dataset (deterministic for a given config).
VpicData generate_vpic(const VpicConfig& config);

/// Downscaled config for property-testing harnesses (QueryCheck): a small
/// grid and `num_particles` particles with an inflated energetic tail so
/// even tiny datasets exercise tail-query paths.  Deterministic in `seed`.
[[nodiscard]] VpicConfig tiny_vpic_config(std::uint64_t num_particles,
                                          std::uint64_t seed) noexcept;

/// Object ids after ingesting into a PDC object store.
struct VpicObjects {
  ObjectId container = kInvalidObjectId;
  ObjectId energy = kInvalidObjectId;
  ObjectId x = kInvalidObjectId, y = kInvalidObjectId, z = kInvalidObjectId;
  ObjectId ux = kInvalidObjectId, uy = kInvalidObjectId,
           uz = kInvalidObjectId;
};

/// Import all 7 variables as PDC objects (builds regions + histograms).
Result<VpicObjects> import_vpic(obj::ObjectStore& store, const VpicData& data,
                                const obj::ImportOptions& options);

/// Write all 7 variables to one h5lite file (the HDF5-F baseline's input).
Status write_vpic_h5(pfs::PfsCluster& cluster, const VpicData& data,
                     std::string_view filename);

// ---- the paper's query suites ----

/// Energy window of one single-object query.
struct SingleQuerySpec {
  double lo = 0.0, hi = 0.0;  ///< lo < Energy < hi
};

/// The paper's 15 single-object queries: [2.1,2.2] up to [3.5,3.6],
/// selectivity 1.3 % down to 0.0004 % under the calibrated energy model.
std::vector<SingleQuerySpec> vpic_single_queries();

/// One compound query: Energy > energy_min AND x,y,z windows.
struct MultiQuerySpec {
  double energy_min = 0.0;
  double x_lo = 0.0, x_hi = 0.0;
  double y_lo = 0.0, y_hi = 0.0;
  double z_lo = 0.0, z_hi = 0.0;
};

/// The paper's 6 multi-object queries (§V): energy thresholds 2.0 down to
/// 1.3 with narrowing x windows, selectivity 0.0013 %–0.0442 %.
std::vector<MultiQuerySpec> vpic_multi_queries();

}  // namespace pdc::workloads
