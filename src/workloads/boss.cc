#include "workloads/boss.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/rng.h"

namespace pdc::workloads {
namespace {

constexpr double kFluxRate = 1.0 / 8.0;  // Exp(1/8): mean flux 8

}  // namespace

double boss_flux_quantile(double selectivity) {
  // CDF(f) = 1 - exp(-rate * f)  =>  f = -ln(1 - s) / rate.
  return -std::log(1.0 - selectivity) / kFluxRate;
}

Result<BossCatalog> import_boss(obj::ObjectStore& store, meta::MetaStore& meta,
                                const BossConfig& config) {
  if (config.num_objects == 0 || config.objects_per_cell == 0 ||
      config.flux_samples == 0) {
    return Status::InvalidArgument("BossConfig fields must be nonzero");
  }
  BossCatalog catalog;
  PDC_ASSIGN_OR_RETURN(catalog.container, store.create_container("boss"));
  catalog.flux_objects.reserve(config.num_objects);

  Rng rng(config.seed);
  obj::ImportOptions options;
  // Small objects: one region each (paper §VI-C: "each object has one
  // region only").
  options.region_size_bytes =
      static_cast<std::uint64_t>(config.flux_samples) * sizeof(float);
  options.histogram.target_bins = 32;

  std::vector<float> flux(config.flux_samples);
  const std::uint32_t num_cells =
      (config.num_objects + config.objects_per_cell - 1) /
      config.objects_per_cell;
  for (std::uint32_t i = 0; i < config.num_objects; ++i) {
    const std::uint32_t cell = i / config.objects_per_cell;
    // One sky coordinate pair per cell, rounded to 1/100 degree the way
    // the paper's query constants are ("RADEG=153.17").
    const double radeg =
        std::round((10.0 + 340.0 * cell / num_cells) * 100.0) / 100.0;
    const double decdeg =
        std::round((-5.0 + 60.0 * cell / num_cells) * 100.0) / 100.0;

    for (float& f : flux) {
      f = static_cast<float>(rng.exponential(kFluxRate));
    }
    PDC_ASSIGN_OR_RETURN(
        const ObjectId flux_id,
        store.import_object<float>(catalog.container,
                                   "boss_flux_" + std::to_string(i), flux,
                                   options));
    catalog.flux_objects.push_back(flux_id);
    meta.set_attribute(flux_id, "RADEG", radeg);
    meta.set_attribute(flux_id, "DECDEG", decdeg);
    meta.set_attribute(flux_id, "PLATE",
                       static_cast<std::int64_t>(3500 + cell));
    meta.set_attribute(flux_id, "FIBER",
                       static_cast<std::int64_t>(i % config.objects_per_cell));
    if (i == 0) {
      catalog.cell0_radeg = radeg;
      catalog.cell0_decdeg = decdeg;
    }
  }
  return catalog;
}

Result<BossMetaSummary> generate_boss_metadata(meta::MetaStore& meta,
                                               const BossMetaConfig& config,
                                               exec::ThreadPool* pool) {
  if (config.num_objects == 0 || config.objects_per_cell == 0) {
    return Status::InvalidArgument("BossMetaConfig fields must be nonzero");
  }
  BossMetaSummary summary;
  summary.num_cells = (config.num_objects + config.objects_per_cell - 1) /
                      config.objects_per_cell;

  // Stage the formatted attribute tuples in parallel (the string builds
  // dominate generation at 1M objects), then insert in ascending object
  // order — the store contents never depend on the pool width.
  struct Staged {
    double radeg = 0.0;
    double decdeg = 0.0;
    std::int64_t plate = 0;
    std::int64_t fiber = 0;
    std::string run;
  };
  std::vector<Staged> staged(config.num_objects);
  constexpr std::uint32_t kChunk = 65536;
  const std::size_t chunks = (config.num_objects + kChunk - 1) / kChunk;
  exec::parallel_for(pool, chunks, [&](std::size_t chunk) {
    const std::uint32_t begin = static_cast<std::uint32_t>(chunk) * kChunk;
    const std::uint32_t end =
        std::min(config.num_objects, begin + kChunk);
    for (std::uint32_t i = begin; i < end; ++i) {
      const std::uint32_t cell = i / config.objects_per_cell;
      const std::uint32_t fiber = i % config.objects_per_cell;
      Staged& s = staged[i];
      s.radeg = std::round((10.0 + 340.0 * cell / summary.num_cells) * 100.0) /
                100.0;
      s.decdeg = std::round((-5.0 + 60.0 * cell / summary.num_cells) * 100.0) /
                 100.0;
      s.plate = 3500 + cell;
      s.fiber = fiber;
      s.run = "r" + std::to_string(cell) + "_" + std::to_string(fiber);
    }
  });
  summary.cell0_radeg = staged.front().radeg;
  summary.cell0_decdeg = staged.front().decdeg;

  for (std::uint32_t i = 0; i < config.num_objects; ++i) {
    const ObjectId id = config.first_object + i;
    Staged& s = staged[i];
    meta.set_attribute(id, "RADEG", s.radeg);
    meta.set_attribute(id, "DECDEG", s.decdeg);
    meta.set_attribute(id, "PLATE", s.plate);
    meta.set_attribute(id, "FIBER", s.fiber);
    meta.set_attribute(id, "RUN", std::move(s.run));
  }
  return summary;
}

Result<BossJoinPair> import_boss_join_pair(obj::ObjectStore& store,
                                           const BossJoinConfig& config) {
  if (config.num_a == 0 || config.num_b == 0 ||
      config.region_size_bytes == 0) {
    return Status::InvalidArgument("BossJoinConfig fields must be nonzero");
  }
  if (!(config.zone_height > 0.0) || !(config.ra_max > config.ra_min)) {
    return Status::InvalidArgument("BossJoinConfig ranges must be ordered");
  }
  BossJoinPair pair;
  PDC_ASSIGN_OR_RETURN(pair.container, store.create_container("boss_join"));

  Rng rng(config.seed);
  const auto draw_catalog = [&](std::uint32_t n) {
    std::vector<double> ra;
    ra.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t pick = rng.bounded(8);
      double v = rng.uniform(config.ra_min, config.ra_max);
      if (pick == 0) {
        // Exact zone edge: k * zone_height, the boundary case the band
        // expansion must get right.
        v = std::floor(v / config.zone_height) * config.zone_height;
      } else if (pick == 1 && !ra.empty()) {
        // Duplicate coordinate (same cell observed twice).
        v = ra[rng.bounded(ra.size())];
      }
      ra.push_back(v);
    }
    return ra;
  };
  const std::vector<double> ra_a = draw_catalog(config.num_a);
  const std::vector<double> ra_b = draw_catalog(config.num_b);

  obj::ImportOptions options;
  options.region_size_bytes = config.region_size_bytes;
  options.histogram.target_bins = 32;
  PDC_ASSIGN_OR_RETURN(
      pair.ra_a,
      store.import_object<double>(pair.container, "boss_ra_a", ra_a, options));
  PDC_ASSIGN_OR_RETURN(
      pair.ra_b,
      store.import_object<double>(pair.container, "boss_ra_b", ra_b, options));
  return pair;
}

}  // namespace pdc::workloads
