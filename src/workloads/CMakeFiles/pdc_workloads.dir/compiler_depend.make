# Empty compiler generated dependencies file for pdc_workloads.
# This may be replaced when dependencies are built.
