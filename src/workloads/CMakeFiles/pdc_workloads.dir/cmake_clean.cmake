file(REMOVE_RECURSE
  "CMakeFiles/pdc_workloads.dir/boss.cc.o"
  "CMakeFiles/pdc_workloads.dir/boss.cc.o.d"
  "CMakeFiles/pdc_workloads.dir/traffic.cc.o"
  "CMakeFiles/pdc_workloads.dir/traffic.cc.o.d"
  "CMakeFiles/pdc_workloads.dir/vpic.cc.o"
  "CMakeFiles/pdc_workloads.dir/vpic.cc.o.d"
  "libpdc_workloads.a"
  "libpdc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
