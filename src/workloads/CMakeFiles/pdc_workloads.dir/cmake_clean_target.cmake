file(REMOVE_RECURSE
  "libpdc_workloads.a"
)
