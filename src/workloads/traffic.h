// Open-loop traffic driver for overload experiments.
//
// Replays thousands of simulated client queries against a QueryService
// with Poisson or bursty arrival processes, per-tenant identities and a
// fixed query mix.  Open loop means the arrival schedule is independent of
// completions — exactly the regime where an unprotected service queues
// without bound — so it exercises the admission-control path (bounded
// queues, kOverloaded shedding, retry-after) end to end.
//
// Two modes share one schedule generator and one fairness model:
//
//  * run_live() pushes real queries through the full rpc stack on worker
//    threads (wall clock).  It proves the robustness properties — bounded
//    mailboxes, explicit sheds, every admitted answer bit-identical to the
//    oracle — but its latencies are machine-dependent.
//  * simulate() runs a deterministic virtual-time queueing model (the same
//    WeightedFairQueue the servers use) over the same schedule.  Its
//    goodput/latency numbers are bit-stable for a given seed, which is
//    what the committed BENCH_traffic.json gate compares against.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "query/query.h"
#include "query/service.h"
#include "rpc/admission.h"

namespace pdc::workloads {

enum class ArrivalProcess : std::uint8_t {
  kPoisson = 0,  ///< memoryless arrivals at the offered rate
  kBursty = 1,   ///< on/off modulated Poisson (same mean rate, 4x-ish bursts)
};

[[nodiscard]] constexpr std::string_view arrival_name(
    ArrivalProcess arrival) noexcept {
  return arrival == ArrivalProcess::kBursty ? "bursty" : "poisson";
}

struct TrafficConfig {
  /// Master seed: schedule, tenant assignment, per-query service-time
  /// draws and client backoff jitter all derive from it.
  std::uint64_t seed = 42;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// Total query arrivals in the schedule.
  std::uint32_t num_queries = 2000;
  /// Simulated client identities issuing them (live mode runs one thread
  /// per client; each client's own arrivals stay time-ordered).
  std::uint32_t num_clients = 32;
  /// Tenants to spread arrivals over (uniformly at random).
  std::uint32_t num_tenants = 1;
  /// Bursty modulation: fraction of each period spent "on" and the rate
  /// multiplier while on; the off-rate is derived so the mean offered rate
  /// is unchanged.
  double burst_period_s = 0.5;
  double burst_on_fraction = 0.2;
  double burst_multiplier = 4.0;
  /// Client reaction to kOverloaded: retries with exponential backoff
  /// (base doubling per attempt, jittered) before giving up.
  std::uint32_t max_retries = 10;
  std::uint64_t retry_backoff_us = 1000;

  /// Seed from PDC_TRAFFIC_SEED when set; other fields keep defaults.
  static TrafficConfig from_env();
};

/// One query of the mix plus its oracle answer (pre-computed by the
/// caller, e.g. testing::oracle_hits, so workloads stays independent of
/// the testing library).
struct TrafficQuery {
  query::QueryPtr query;
  std::uint64_t expected_hits = 0;
};

/// One scheduled arrival.
struct Arrival {
  double time_s = 0.0;           ///< offset from traffic start
  std::uint32_t tenant = 0;
  std::uint32_t query_index = 0; ///< into the query mix (mod its size)
};

/// Deterministic arrival schedule at mean rate `rate_qps`, sorted by time.
[[nodiscard]] std::vector<Arrival> make_schedule(const TrafficConfig& config,
                                                 double rate_qps);

struct TenantReport {
  std::uint32_t tenant = 0;
  std::uint64_t offered = 0;    ///< first arrivals (not counting retries)
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;    ///< gave up after max_retries
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double mean_s = 0.0;
};

struct TrafficReport {
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t mismatches = 0;   ///< answers differing from the oracle
  std::uint64_t failed = 0;       ///< non-overload errors
  std::uint64_t dropped = 0;      ///< overloaded past max_retries
  std::uint64_t shed_retries = 0; ///< kOverloaded responses clients saw
  double duration_s = 0.0;        ///< first arrival -> last completion
  double goodput_qps = 0.0;       ///< completed / duration
  double p50_s = 0.0;             ///< end-to-end simulated-client latency
  double p95_s = 0.0;
  double p99_s = 0.0;
  std::vector<TenantReport> tenants;
  // Live mode only: scraped from the service's metrics after the run.
  double server_sheds = 0.0;      ///< sum of rpc.server*.shed
  double queue_peak = 0.0;        ///< max rpc.server*.queue_peak
  double mailbox_peak = 0.0;      ///< bus.mailbox_peak
  double mailbox_rejects = 0.0;   ///< bus.mailbox_rejects
};

/// Virtual-time queueing model parameters for simulate().  Mirrors one
/// service's admission configuration.
struct SimParams {
  /// Mean per-query service time; individual queries draw a deterministic
  /// factor in [0.5, 1.5) of it from the seed.
  double service_time_s = 1e-3;
  /// Concurrent service slots (servers x max_inflight).
  std::uint32_t concurrency = 4;
  /// Admission queue bound (0 = unbounded, never sheds).
  std::uint32_t queue_limit = 64;
  rpc::ShedPolicy shed_policy = rpc::ShedPolicy::kRejectNew;
  std::vector<double> tenant_weights;
  /// Retry-after hint a shed client honours (scaled by its attempt).
  double retry_after_s = 2e-3;

  /// Offered capacity of this model in queries/sec.
  [[nodiscard]] double capacity_qps() const noexcept {
    return static_cast<double>(concurrency) / service_time_s;
  }
};

class TrafficDriver {
 public:
  explicit TrafficDriver(TrafficConfig config);

  [[nodiscard]] const TrafficConfig& config() const noexcept {
    return config_;
  }

  /// Per-tenant latency histograms ("traffic.tenant<k>.latency_seconds",
  /// with .p50/.p95/.p99 synthesized at snapshot time) plus offered/
  /// completed/shed counters, populated by both modes.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Closed-loop capacity probe: `probes` queries over `threads` workers,
  /// back to back; returns completed/elapsed in queries/sec.  Use it to
  /// express live offered load as a multiple of actual capacity.
  static double measure_capacity_qps(query::QueryService& service,
                                     const std::vector<TrafficQuery>& queries,
                                     std::uint32_t probes = 64,
                                     std::uint32_t threads = 4);

  /// Replay the schedule against a live service at mean rate `rate_qps`.
  /// Every completed answer is checked against its oracle; clients retry
  /// kOverloaded per config.  Wall-clock latencies; counts are exact.
  TrafficReport run_live(query::QueryService& service,
                         const std::vector<TrafficQuery>& queries,
                         double rate_qps);

  /// Deterministic virtual-time replay of the same schedule through a
  /// weighted-fair bounded queue model.  Same seed + params => bit-stable
  /// report (the bench gate's contract).  Wall clock is never consulted.
  TrafficReport simulate(const SimParams& params, double rate_qps);

 private:
  TrafficConfig config_;
  obs::MetricsRegistry metrics_;
};

}  // namespace pdc::workloads
