// Synthetic BOSS/H5BOSS sky-survey workload (paper §V, §VI-C).
//
// The paper's dataset: ~25 million small objects (spectra of galaxies and
// quasars), each with rich metadata (sky coordinates RADEG/DECDEG, plate,
// fiber) and a flux array.  The Fig. 5 experiment runs a metadata query
// that selects exactly 1000 objects ("RADEG=153.17 AND DECDEG=23.06") and
// then a flux-range data query over those objects at 11 %–65 % selectivity.
//
// The generator groups objects into "sky cells": every object in a cell
// shares one (RADEG, DECDEG) pair, so an equality metadata query on a cell
// returns exactly `objects_per_cell` objects, as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/exec_pool.h"
#include "common/status.h"
#include "common/types.h"
#include "metadata/meta_store.h"
#include "obj/object_store.h"

namespace pdc::workloads {

struct BossConfig {
  std::uint32_t num_objects = 10000;     ///< paper: 25 million (scaled)
  std::uint32_t objects_per_cell = 1000; ///< metadata-query hit count
  std::uint32_t flux_samples = 2048;     ///< spectrum length per object
  std::uint64_t seed = 0xB055ULL;
};

/// Handles to the imported catalog.
struct BossCatalog {
  ObjectId container = kInvalidObjectId;
  std::vector<ObjectId> flux_objects;  ///< one per survey object
  /// Sky coordinates of cell 0 (the cell Fig. 5 queries).
  double cell0_radeg = 0.0;
  double cell0_decdeg = 0.0;
};

/// Generate and import the catalog: one small flux object per survey
/// object (single region each), with RADEG/DECDEG/plate/fiber metadata
/// registered in `meta`.
Result<BossCatalog> import_boss(obj::ObjectStore& store, meta::MetaStore& meta,
                                const BossConfig& config);

/// Metadata-only BOSS catalog at 1M+ object scale (the distributed-
/// metadata pipeline: no flux payloads are imported, so a million-object
/// catalog costs megabytes, not gigabytes).  Object ids are synthetic and
/// contiguous from `first_object`.  Every object gets the survey
/// attributes of import_boss (RADEG/DECDEG per cell, PLATE = 3500 + cell,
/// FIBER = position in cell) plus a RUN string "r<cell>_<fiber>" — the
/// affix-query target ("r5_*" selects exactly cell 5 at any scale).
struct BossMetaConfig {
  std::uint32_t num_objects = 100000;
  std::uint32_t objects_per_cell = 1000;  ///< metadata-query hit count
  ObjectId first_object = 1;
};

struct BossMetaSummary {
  std::uint32_t num_cells = 0;
  double cell0_radeg = 0.0;
  double cell0_decdeg = 0.0;
};

/// Populate `meta` with the metadata-only catalog.  Deterministic (no RNG:
/// every attribute is a function of the object index); the per-object
/// attribute tuples are formatted in parallel on `pool` (null = serial)
/// and inserted in ascending object order, so the store contents are
/// identical at any pool width.
Result<BossMetaSummary> generate_boss_metadata(meta::MetaStore& meta,
                                               const BossMetaConfig& config,
                                               exec::ThreadPool* pool = nullptr);

/// Flux value whose lower tail holds `selectivity` of the flux mass (used
/// by the Fig. 5 bench to build ranges of 11 %–65 % selectivity).  The flux
/// distribution is Exp(1/8) scaled to [0, ~100), so the quantile has a
/// closed form.
[[nodiscard]] double boss_flux_quantile(double selectivity);

/// Two-catalog cross-match input (paper §VI-C meets the zones algorithm):
/// two RADEG column objects with overlapping sky coverage, the classic
/// "match survey A sources to survey B sources within epsilon" workload.
struct BossJoinConfig {
  std::uint32_t num_a = 4000;  ///< sources in catalog A (build side)
  std::uint32_t num_b = 4000;  ///< sources in catalog B (probe side)
  double ra_min = 10.0;
  double ra_max = 350.0;
  /// Zone height the adversarial values are snapped against: ~1/8 of the
  /// sources sit EXACTLY on a k*zone_height edge and ~1/8 duplicate an
  /// earlier coordinate, so epsilon joins exercise boundary and duplicate
  /// handling rather than only generic interior matches.
  double zone_height = 0.5;
  std::uint64_t region_size_bytes = 4096;
  std::uint64_t seed = 0xB055u;
};

struct BossJoinPair {
  ObjectId container = kInvalidObjectId;
  ObjectId ra_a = kInvalidObjectId;  ///< f64 RADEG column of catalog A
  ObjectId ra_b = kInvalidObjectId;  ///< f64 RADEG column of catalog B
};

/// Generate and import the two RADEG columns (multi-region f64 objects).
Result<BossJoinPair> import_boss_join_pair(obj::ObjectStore& store,
                                           const BossJoinConfig& config);

}  // namespace pdc::workloads
