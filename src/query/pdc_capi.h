// C-style compatibility API mirroring the paper's Fig. 1 exactly.
//
// The PDC system exposes a C interface; this shim reproduces those entry
// points (names, argument shapes, ownership rules) on top of the C++
// QueryService.  Like the real PDC client library, the service connection
// is process-global state established once at startup:
//
//   pdc::capi::PDC_attach(&service, &meta_store);
//   double v = 2.0;
//   pdcquery_t* q = PDCquery_create(energy_id, PDC_GT, PDC_DOUBLE, &v);
//   uint64_t n = 0;
//   PDCquery_get_nhits(q, &n);
//   PDCquery_free(q);
//
// All functions return perr_t (0 = success) or a pointer that is null on
// failure, matching PDC conventions.  Callers own returned query/selection/
// histogram objects and must release them with the matching *_free call;
// PDCquery_get_data requires the caller to have allocated `data` large
// enough for the selection's hit count (paper §III-A).
#pragma once

#include <cstdint>

#include "metadata/meta_store.h"
#include "query/service.h"

namespace pdc::capi {

using perr_t = int;
inline constexpr perr_t PDC_SUCCESS = 0;
inline constexpr perr_t PDC_FAILURE = -1;

/// Comparison operators (paper: pdc_query_op_t).
enum pdc_query_op_t {
  PDC_GT = 0,
  PDC_GTE,
  PDC_LT,
  PDC_LTE,
  PDC_EQ,
};

/// Element types (paper: pdc_type_t).
enum pdc_type_t {
  PDC_FLOAT = 0,
  PDC_DOUBLE,
  PDC_INT,
  PDC_UINT,
  PDC_INT64,
  PDC_UINT64,
};

using pdc_id_t = std::uint64_t;

/// Opaque query-condition handle.
struct pdcquery_t;

/// Selection handle (paper: pdc_selection_t).
struct pdcselection_t;

/// 1-D region constraint (paper: pdc_region_t, restricted to 1-D).
struct pdc_region_t {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;  ///< element count
};

/// Histogram handle (paper: pdchistogram_t).
struct pdchistogram_t;

/// Bind the process-global service endpoints (the real PDC client does
/// this inside PDCinit).  `meta` may be null if tag queries are unused.
void PDC_attach(query::QueryService* service, meta::MetaStore* meta);
void PDC_detach();

// ---- query construction (paper Fig. 1) ----
pdcquery_t* PDCquery_create(pdc_id_t obj_id, pdc_query_op_t op,
                            pdc_type_t type, const void* value);
pdcquery_t* PDCquery_and(pdcquery_t* query1, pdcquery_t* query2);
pdcquery_t* PDCquery_or(pdcquery_t* query1, pdcquery_t* query2);
perr_t PDCquery_sel_region(pdcquery_t* query, const pdc_region_t* region);

// ---- query execution ----
perr_t PDCquery_get_nhits(pdcquery_t* query, std::uint64_t* n);
perr_t PDCquery_get_selection(pdcquery_t* query, pdcselection_t** sel);
perr_t PDCquery_get_data(pdc_id_t obj_id, pdcselection_t* sel, void* data);
perr_t PDCquery_get_data_batch(pdc_id_t obj_id, pdcselection_t* sel,
                               std::uint64_t batch_size, void* data,
                               std::uint64_t batch_index,
                               std::uint64_t* batch_elements);
pdchistogram_t* PDCquery_get_histogram(pdc_id_t obj_id);

// ---- metadata (paper: PDCquery_tag) ----
/// Objects whose attribute `name` equals the value (val_size selects the
/// interpretation: sizeof(double) = numeric, else string bytes).
/// On success `*obj_ids` is a malloc'd array the caller frees with free().
perr_t PDCquery_tag(const char* name, std::uint32_t val_size, const void* val,
                    int* nobj, pdc_id_t** obj_ids);

// ---- selection / histogram accessors ----
std::uint64_t PDCselection_nhits(const pdcselection_t* sel);
const std::uint64_t* PDCselection_coords(const pdcselection_t* sel);
std::uint64_t PDChistogram_nbins(const pdchistogram_t* hist);
std::uint64_t PDChistogram_bin_count(const pdchistogram_t* hist,
                                     std::uint64_t bin);
double PDChistogram_bin_edge(const pdchistogram_t* hist, std::uint64_t bin);

// ---- frees (not listed in the paper's figure, present in its API) ----
void PDCquery_free(pdcquery_t* query);
void PDCselection_free(pdcselection_t* sel);
void PDChistogram_free(pdchistogram_t* hist);

/// Last error message for diagnostics (thread-local).
const char* PDC_last_error();

}  // namespace pdc::capi
