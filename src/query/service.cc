#include "query/service.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/timer.h"
#include "server/region_assignment.h"

namespace pdc::query {

ServiceOptions ServiceOptions::from_env() {
  ServiceOptions options;
  if (const char* env = std::getenv("PDC_QUERY_STRATEGY")) {
    const std::string value(env);
    if (value == "fullscan") {
      options.strategy = server::Strategy::kFullScan;
    } else if (value == "histogram") {
      options.strategy = server::Strategy::kHistogram;
    } else if (value == "index") {
      options.strategy = server::Strategy::kHistogramIndex;
    } else if (value == "sorted") {
      options.strategy = server::Strategy::kSortedHistogram;
    }
  }
  return options;
}

QueryService::QueryService(const obj::ObjectStore& store,
                           ServiceOptions options)
    : store_(store),
      options_(options),
      bus_(std::max<std::uint32_t>(1, options.num_servers)),
      client_(bus_) {
  options_.num_servers = bus_.num_servers();
  servers_.reserve(options_.num_servers);
  runtimes_.reserve(options_.num_servers);
  for (ServerId s = 0; s < options_.num_servers; ++s) {
    server::ServerOptions server_options;
    server_options.id = s;
    server_options.num_servers = options_.num_servers;
    server_options.cache_capacity_bytes = options_.cache_capacity_bytes;
    server_options.aggregation = options_.aggregation;
    servers_.push_back(
        std::make_unique<server::QueryServer>(store_, server_options));
    server::QueryServer* qs = servers_.back().get();
    runtimes_.push_back(std::make_unique<rpc::ServerRuntime>(
        bus_, s, [qs](std::span<const std::uint8_t> payload) {
          return qs->handle(payload);
        }));
  }
}

QueryService::~QueryService() { bus_.shutdown(); }

Result<Selection> QueryService::eval(const QueryPtr& query,
                                     bool need_locations) {
  if (!query) {
    return Status::InvalidArgument("null query");
  }
  WallTimer wall;
  stats_ = OpStats{};
  const CostModel& cost = store_.cluster().config().cost;

  PlanOptions plan_options;
  plan_options.strategy = options_.strategy;
  plan_options.order_by_selectivity = options_.order_by_selectivity;
  PDC_ASSIGN_OR_RETURN(Plan plan, plan_query(*query, store_, plan_options));

  Selection selection;
  if (plan.terms.empty()) {
    stats_.wall_seconds = wall.elapsed_seconds();
    return selection;  // provably empty
  }

  server::EvalRequest request;
  request.strategy = options_.strategy;
  request.need_locations = need_locations;
  request.region_constraint = plan.region_constraint;
  request.terms = std::move(plan.terms);
  std::vector<std::uint8_t> payload = request.serialize();
  stats_.request_bytes = payload.size();
  // Broadcast happens in parallel over the interconnect: one message cost.
  stats_.net_seconds += cost.net_cost(payload.size());

  std::vector<rpc::Message> responses =
      client_.broadcast_wait(std::move(payload));
  if (responses.size() != options_.num_servers) {
    return Status::Internal("missing server responses");
  }

  for (const rpc::Message& message : responses) {
    SerialReader reader(message.payload);
    PDC_ASSIGN_OR_RETURN(server::EvalResponse response,
                         server::EvalResponse::Deserialize(reader));
    PDC_RETURN_IF_ERROR(response.status);
    selection.num_hits += response.num_hits;
    if (response.has_positions) {
      selection.positions.insert(selection.positions.end(),
                                 response.positions.begin(),
                                 response.positions.end());
    }
    if (!response.sorted_extents.empty()) {
      selection.replica_id = response.replica_id != kInvalidObjectId
                                 ? response.replica_id
                                 : selection.replica_id;
      selection.sorted_extents.emplace_back(message.sender,
                                            std::move(response.sorted_extents));
    }
    if (response.ledger.elapsed() > stats_.max_server_seconds) {
      stats_.max_server_seconds = response.ledger.elapsed();
      stats_.max_server_io_seconds = response.ledger.io_seconds;
      stats_.max_server_cpu_seconds = response.ledger.cpu_seconds;
    }
    stats_.server_bytes_read += response.ledger.bytes_read;
    stats_.server_read_ops += response.ledger.read_ops;
    stats_.response_bytes += message.payload.size();
  }

  // Responses stream back to the one client NIC.
  stats_.net_seconds +=
      cost.net_latency_s +
      static_cast<double>(stats_.response_bytes) / cost.net_bandwidth_bps;

  // Client-side aggregation: merge per-server position lists.
  if (!selection.positions.empty()) {
    stats_.client_cpu_seconds += 2.0 * cost.scan_cost(
        selection.positions.size() * sizeof(std::uint64_t));
    std::sort(selection.positions.begin(), selection.positions.end());
  }
  // The replica id may be known even when extents were not retained.
  if (selection.replica_id == kInvalidObjectId &&
      options_.strategy == server::Strategy::kSortedHistogram &&
      request.terms.size() == 1) {
    selection.replica_id = request.terms.front().driver_replica;
  }

  stats_.sim_elapsed_seconds = stats_.net_seconds + stats_.max_server_seconds +
                               stats_.client_cpu_seconds;
  stats_.wall_seconds = wall.elapsed_seconds();
  return selection;
}

Result<std::uint64_t> QueryService::get_num_hits(const QueryPtr& query) {
  PDC_ASSIGN_OR_RETURN(Selection selection,
                       eval(query, /*need_locations=*/false));
  return selection.num_hits;
}

Result<Selection> QueryService::get_selection(const QueryPtr& query) {
  return eval(query, /*need_locations=*/true);
}

Status QueryService::get_data_raw(ObjectId object, const Selection& selection,
                                  std::span<std::uint8_t> out, PdcType type,
                                  GetDataMode mode) {
  WallTimer wall;
  stats_ = OpStats{};
  const CostModel& cost = store_.cluster().config().cost;
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* target,
                       store_.get(object));
  if (target->type != type) {
    return Status::InvalidArgument("get_data element type mismatch");
  }
  const std::size_t elem_size = target->element_size();
  if (out.size() != selection.num_hits * elem_size) {
    return Status::InvalidArgument(
        "get_data buffer must hold num_hits elements");
  }
  if (selection.num_hits == 0) return Status::Ok();

  // Resolve the fetch mode.
  bool use_replica = false;
  ObjectId replica_source = kInvalidObjectId;
  if (selection.replica_id != kInvalidObjectId &&
      !selection.sorted_extents.empty()) {
    const auto replica = store_.get(selection.replica_id);
    if (replica.ok()) replica_source = (*replica)->sorted_source;
  }
  switch (mode) {
    case GetDataMode::kAuto:
      use_replica = replica_source == object;
      break;
    case GetDataMode::kFromReplica:
      if (replica_source != object) {
        return Status::FailedPrecondition(
            "selection has no replica extents for this object");
      }
      use_replica = true;
      break;
    case GetDataMode::kByPositions:
      use_replica = false;
      break;
  }

  std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
  if (use_replica) {
    for (const auto& [server, extents] : selection.sorted_extents) {
      server::GetDataRequest request;
      request.object = selection.replica_id;
      request.from_replica = true;
      request.extents = extents;
      requests.emplace_back(server, request.serialize());
    }
  } else {
    if (selection.positions.size() != selection.num_hits) {
      return Status::FailedPrecondition(
          "selection has no locations; call get_selection first");
    }
    auto parts = server::partition_positions(*target, selection.positions,
                                             options_.num_servers);
    for (ServerId s = 0; s < options_.num_servers; ++s) {
      if (parts[s].empty()) continue;
      server::GetDataRequest request;
      request.object = object;
      request.positions = std::move(parts[s]);
      requests.emplace_back(s, request.serialize());
    }
  }

  double max_request_net = 0.0;
  for (const auto& [server, payload] : requests) {
    stats_.request_bytes += payload.size();
    max_request_net = std::max(max_request_net, cost.net_cost(payload.size()));
  }
  stats_.net_seconds += max_request_net;

  std::vector<rpc::Message> responses = client_.scatter_wait(std::move(requests));

  std::vector<std::vector<std::uint8_t>> values_by_server(
      options_.num_servers);
  for (rpc::Message& message : responses) {
    SerialReader reader(message.payload);
    PDC_ASSIGN_OR_RETURN(server::GetDataResponse response,
                         server::GetDataResponse::Deserialize(reader));
    PDC_RETURN_IF_ERROR(response.status);
    if (response.ledger.elapsed() > stats_.max_server_seconds) {
      stats_.max_server_seconds = response.ledger.elapsed();
      stats_.max_server_io_seconds = response.ledger.io_seconds;
      stats_.max_server_cpu_seconds = response.ledger.cpu_seconds;
    }
    stats_.server_bytes_read += response.ledger.bytes_read;
    stats_.server_read_ops += response.ledger.read_ops;
    stats_.response_bytes += message.payload.size();
    values_by_server[message.sender] = std::move(response.values);
  }
  stats_.net_seconds +=
      cost.net_latency_s +
      static_cast<double>(stats_.response_bytes) / cost.net_bandwidth_bps;

  if (use_replica) {
    // Slice each server's blob per extent, then lay extents out in
    // ascending replica offset: the output is globally value-sorted.
    struct Piece {
      std::uint64_t offset;
      const std::uint8_t* bytes;
      std::uint64_t count;
    };
    std::vector<Piece> pieces;
    for (const auto& [server, extents] : selection.sorted_extents) {
      const std::uint8_t* cursor = values_by_server[server].data();
      for (const Extent1D& e : extents) {
        pieces.push_back({e.offset, cursor, e.count});
        cursor += e.count * elem_size;
      }
    }
    std::sort(pieces.begin(), pieces.end(),
              [](const Piece& a, const Piece& b) {
                return a.offset < b.offset;
              });
    std::uint8_t* dest = out.data();
    for (const Piece& p : pieces) {
      std::memcpy(dest, p.bytes, static_cast<std::size_t>(p.count * elem_size));
      dest += p.count * elem_size;
    }
  } else {
    // Merge per-server streams back into ascending-position order.
    std::vector<std::size_t> cursor(options_.num_servers, 0);
    std::uint8_t* dest = out.data();
    for (const std::uint64_t pos : selection.positions) {
      const ServerId owner = server::owner_of_region(
          *target, server::region_of_position(*target, pos),
          options_.num_servers);
      std::memcpy(dest,
                  values_by_server[owner].data() + cursor[owner] * elem_size,
                  elem_size);
      ++cursor[owner];
      dest += elem_size;
    }
  }
  stats_.client_cpu_seconds +=
      static_cast<double>(out.size()) / cost.memcpy_bandwidth_bps;

  stats_.sim_elapsed_seconds = stats_.net_seconds + stats_.max_server_seconds +
                               stats_.client_cpu_seconds;
  stats_.wall_seconds = wall.elapsed_seconds();
  return Status::Ok();
}

Status QueryService::get_data_bytes(ObjectId object,
                                    const Selection& selection,
                                    std::uint8_t* out, GetDataMode mode) {
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* target,
                       store_.get(object));
  return get_data_raw(
      object, selection,
      {out, static_cast<std::size_t>(selection.num_hits *
                                     target->element_size())},
      target->type, mode);
}

Status QueryService::get_data_batch(
    ObjectId object, const Selection& selection, std::uint64_t batch_elements,
    const std::function<void(std::span<const std::uint8_t>, std::uint64_t)>&
        consume) {
  if (batch_elements == 0) {
    return Status::InvalidArgument("batch_elements must be positive");
  }
  if (selection.positions.size() != selection.num_hits) {
    return Status::FailedPrecondition(
        "selection has no locations; call get_selection first");
  }
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* target,
                       store_.get(object));
  const std::size_t elem_size = target->element_size();
  std::vector<std::uint8_t> buffer;
  OpStats accumulated;
  for (std::uint64_t first = 0; first < selection.num_hits;
       first += batch_elements) {
    const std::uint64_t count =
        std::min<std::uint64_t>(batch_elements, selection.num_hits - first);
    Selection batch;
    batch.num_hits = count;
    batch.positions.assign(
        selection.positions.begin() + static_cast<std::ptrdiff_t>(first),
        selection.positions.begin() + static_cast<std::ptrdiff_t>(first + count));
    buffer.resize(static_cast<std::size_t>(count * elem_size));
    PDC_RETURN_IF_ERROR(get_data_raw(object, batch, buffer, target->type,
                                     GetDataMode::kByPositions));
    accumulated.sim_elapsed_seconds += stats_.sim_elapsed_seconds;
    accumulated.wall_seconds += stats_.wall_seconds;
    accumulated.net_seconds += stats_.net_seconds;
    accumulated.max_server_seconds += stats_.max_server_seconds;
    accumulated.client_cpu_seconds += stats_.client_cpu_seconds;
    accumulated.request_bytes += stats_.request_bytes;
    accumulated.response_bytes += stats_.response_bytes;
    accumulated.server_bytes_read += stats_.server_bytes_read;
    accumulated.server_read_ops += stats_.server_read_ops;
    consume(buffer, first);
  }
  stats_ = accumulated;
  return Status::Ok();
}

Result<hist::MergeableHistogram> QueryService::get_histogram(
    ObjectId object) const {
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* desc, store_.get(object));
  return desc->global_histogram;
}

std::uint64_t QueryService::cached_bytes() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) total += server->cache().bytes();
  return total;
}

}  // namespace pdc::query
