#include "query/service.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "common/timer.h"
#include "server/region_assignment.h"

namespace pdc::query {

ServiceOptions ServiceOptions::from_env() {
  ServiceOptions options;
  if (const char* env = std::getenv("PDC_QUERY_STRATEGY")) {
    const std::string value(env);
    if (value == "fullscan") {
      options.strategy = server::Strategy::kFullScan;
    } else if (value == "histogram") {
      options.strategy = server::Strategy::kHistogram;
    } else if (value == "index") {
      options.strategy = server::Strategy::kHistogramIndex;
    } else if (value == "sorted") {
      options.strategy = server::Strategy::kSortedHistogram;
    } else if (value == "adaptive") {
      options.strategy = server::Strategy::kAdaptive;
    }
  }
  if (const char* env = std::getenv("PDC_QUERY_THREADS")) {
    const long threads = std::strtol(env, nullptr, 10);
    if (threads >= 0 && threads <= 64) {
      options.eval_threads = static_cast<std::uint32_t>(threads);
    }
  }
  if (const char* env = std::getenv("PDC_QUERY_DENSE_THRESHOLD")) {
    char* end = nullptr;
    const double threshold = std::strtod(env, &end);
    if (end != env && threshold >= 0.0 && threshold <= 1.0) {
      options.dense_read_threshold = threshold;
    }
  }
  if (const char* env = std::getenv("PDC_QUEUE_LIMIT")) {
    const long limit = std::strtol(env, nullptr, 10);
    if (limit >= 0 && limit <= 1 << 20) {
      options.queue_limit = static_cast<std::uint32_t>(limit);
    }
  }
  if (const char* env = std::getenv("PDC_SHED_POLICY")) {
    if (const auto policy = rpc::parse_shed_policy(env)) {
      options.shed_policy = *policy;
    }
  }
  if (const char* env = std::getenv("PDC_TENANT_WEIGHTS")) {
    // Comma-separated shares, e.g. "3,1,1"; a parse failure keeps the
    // weights accumulated so far (trailing garbage is ignored).
    std::vector<double> weights;
    const char* cursor = env;
    while (*cursor != '\0') {
      char* end = nullptr;
      const double w = std::strtod(cursor, &end);
      if (end == cursor) break;
      weights.push_back(w);
      cursor = *end == ',' ? end + 1 : end;
      if (end == cursor) break;
    }
    options.tenant_weights = std::move(weights);
  }
  if (const char* env = std::getenv("PDC_COMPACT_THRESHOLD")) {
    const long threshold = std::strtol(env, nullptr, 10);
    if (threshold >= 0 && threshold <= 1 << 20) {
      options.compact_threshold = static_cast<std::uint64_t>(threshold);
    }
  }
  if (const char* env = std::getenv("PDC_WRITE_NO_MAINT")) {
    const std::string value(env);
    options.write_no_maint = value == "1" || value == "true";
  }
  if (const char* env = std::getenv("PDC_REPLICA_REBUILD_THRESHOLD")) {
    const long threshold = std::strtol(env, nullptr, 10);
    if (threshold >= 0 && threshold <= 1 << 24) {
      options.replica_rebuild_threshold =
          static_cast<std::uint64_t>(threshold);
    }
  }
  if (const char* env = std::getenv("PDC_JOIN_STRATEGY")) {
    const std::string value(env);
    if (value == "zone") {
      options.join_strategy = server::JoinStrategy::kZoneShuffle;
    } else if (value == "broadcast") {
      options.join_strategy = server::JoinStrategy::kBroadcast;
    }
  }
  if (const char* env = std::getenv("PDC_JOIN_SHUFFLE_DEADLINE_MS")) {
    const long ms = std::strtol(env, nullptr, 10);
    if (ms > 0 && ms <= 60'000) {
      options.join_shuffle_deadline_ms = static_cast<std::uint32_t>(ms);
    }
  }
  if (const char* env = std::getenv("PDC_META_VNODES")) {
    const long vnodes = std::strtol(env, nullptr, 10);
    if (vnodes >= 1 && vnodes <= 1 << 16) {
      options.meta_vnodes = static_cast<std::uint32_t>(vnodes);
    }
  }
  if (const char* env = std::getenv("PDC_META_REPLICAS")) {
    const long replicas = std::strtol(env, nullptr, 10);
    if (replicas >= 1 && replicas <= 64) {
      options.meta_replicas = static_cast<std::uint32_t>(replicas);
    }
  }
  return options;
}

QueryService::QueryService(const obj::ObjectStore& store,
                           ServiceOptions options)
    : QueryService(store, nullptr, std::move(options)) {}

QueryService::QueryService(obj::ObjectStore& store, ServiceOptions options)
    : QueryService(store, &store, std::move(options)) {}

QueryService::QueryService(const obj::ObjectStore& store,
                           obj::ObjectStore* mutable_store,
                           ServiceOptions options)
    : store_(store),
      mutable_store_(mutable_store),
      options_(options),
      pool_(options.eval_threads > 0
                ? std::make_unique<exec::ThreadPool>(options.eval_threads)
                : nullptr),
      bus_(std::max<std::uint32_t>(1, options.num_servers)),
      client_(bus_, options.retry) {
  options_.num_servers = bus_.num_servers();
  bus_.set_fault_injector(options_.fault_injector);
  dead_.assign(options_.num_servers, false);
  servers_.reserve(options_.num_servers);
  runtimes_.reserve(options_.num_servers);
  ports_.reserve(options_.num_servers);
  rpc::ExchangePort::Options port_options;
  port_options.deadline =
      std::chrono::milliseconds(options_.join_shuffle_deadline_ms);
  for (ServerId s = 0; s < options_.num_servers; ++s) {
    ports_.push_back(
        std::make_unique<rpc::ExchangePort>(bus_, s, port_options));
  }
  build_meta_shards();
  for (ServerId s = 0; s < options_.num_servers; ++s) {
    server::ServerOptions server_options;
    server_options.id = s;
    server_options.num_servers = options_.num_servers;
    server_options.cache_capacity_bytes = options_.cache_capacity_bytes;
    server_options.index_cache_capacity_bytes =
        options_.index_cache_capacity_bytes;
    server_options.dense_read_threshold = options_.dense_read_threshold;
    server_options.aggregation = options_.aggregation;
    server_options.pool = pool_.get();
    server_options.metrics = &metrics_;
    server_options.mutable_store = mutable_store_;
    server_options.compact_threshold = options_.compact_threshold;
    server_options.maintain_accelerators = !options_.write_no_maint;
    server_options.replica_rebuild_threshold =
        options_.replica_rebuild_threshold;
    server_options.exchange = ports_[s].get();
    if (!meta_shards_.empty()) {
      server_options.meta_shard = meta_shards_[s].get();
    }
    servers_.push_back(
        std::make_unique<server::QueryServer>(store_, server_options));
    server::QueryServer* qs = servers_.back().get();
    rpc::ServerRuntimeOptions runtime_options;
    runtime_options.pool = pool_.get();
    runtime_options.max_inflight = options_.max_inflight;
    runtime_options.queue_limit = options_.queue_limit;
    runtime_options.shed_policy = options_.shed_policy;
    runtime_options.tenant_weights = options_.tenant_weights;
    runtime_options.metrics = &metrics_;
    // Join rounds block waiting for tuples from OTHER servers' handlers;
    // dispatching them through the shared pool could park every worker in
    // collect() with no thread left to produce, so they run inline on the
    // mailbox thread.
    runtime_options.inline_only = [](std::span<const std::uint8_t> payload) {
      const auto type = server::peek_request_type(payload);
      return type.ok() && *type == server::RequestType::kJoinEval;
    };
    runtimes_.push_back(std::make_unique<rpc::ServerRuntime>(
        bus_, s,
        rpc::ServerRuntime::TracedHandler(
            [qs](std::span<const std::uint8_t> payload,
                 const obs::TraceContext& trace) {
              return qs->handle(payload, trace);
            }),
        runtime_options));
  }
  if (options_.queue_limit != 0) {
    // Transport backstop beneath admission control: large enough that
    // normal shedding happens in the runtime (with explicit replies), the
    // mailbox bound only catches pathological floods.
    bus_.set_server_mailbox_capacity(
        static_cast<std::size_t>(options_.queue_limit) * 4 + 64);
  }
  // Components that keep their own atomics export polled gauges.
  metrics_.gauge_fn("bus.bytes", [this] {
    return static_cast<double>(bus_.bytes_transferred());
  });
  metrics_.gauge_fn("bus.messages", [this] {
    return static_cast<double>(bus_.messages_sent());
  });
  metrics_.gauge_fn("bus.mailbox_peak", [this] {
    return static_cast<double>(bus_.peak_server_mailbox_depth());
  });
  metrics_.gauge_fn("bus.mailbox_rejects", [this] {
    return static_cast<double>(bus_.mailbox_rejects());
  });
  metrics_.gauge_fn("pfs.read_ops", [this] {
    return static_cast<double>(store_.cluster().total_read_ops());
  });
  metrics_.gauge_fn("pfs.bytes_read", [this] {
    return static_cast<double>(store_.cluster().total_bytes_read());
  });
  if (pool_ != nullptr) {
    metrics_.gauge_fn("pool.threads", [this] {
      return static_cast<double>(pool_->size());
    });
    metrics_.gauge_fn("pool.executed", [this] {
      return static_cast<double>(pool_->stats().executed);
    });
    metrics_.gauge_fn("pool.steals", [this] {
      return static_cast<double>(pool_->stats().steals);
    });
    metrics_.gauge_fn("pool.queue_peak", [this] {
      return static_cast<double>(pool_->stats().queue_peak);
    });
  }
}

QueryService::~QueryService() {
  // Close the exchange endpoints first: a join handler blocked in
  // collect()/ship() wakes with failure and its runtime thread can drain.
  for (auto& port : ports_) port->close();
  bus_.shutdown();
}

void QueryService::publish_stats(const OpStats& stats) {
  std::lock_guard lock(state_mu_);
  stats_ = stats;
}

std::vector<bool> QueryService::dead_snapshot() const {
  std::lock_guard lock(state_mu_);
  return dead_;
}

void QueryService::mark_dead(ServerId server) {
  std::lock_guard lock(state_mu_);
  dead_[server] = true;
}

std::vector<ServerId> QueryService::alive_servers() const {
  const std::vector<bool> dead = dead_snapshot();
  std::vector<ServerId> alive;
  for (ServerId s = 0; s < options_.num_servers; ++s) {
    if (!dead[s]) alive.push_back(s);
  }
  return alive;
}

std::vector<ServerId> QueryService::dead_servers() const {
  const std::vector<bool> dead_flags = dead_snapshot();
  std::vector<ServerId> dead;
  for (ServerId s = 0; s < options_.num_servers; ++s) {
    if (dead_flags[s]) dead.push_back(s);
  }
  return dead;
}

std::uint64_t QueryService::regions_of_identity(
    const std::vector<server::AndTerm>& terms, ServerId identity) const {
  std::uint64_t regions = 0;
  for (const server::AndTerm& term : terms) {
    if (term.conjuncts.empty()) continue;
    const auto object = store_.get(term.conjuncts.front().object);
    if (!object.ok()) continue;
    regions += server::regions_of_server(**object, identity,
                                         options_.num_servers)
                   .size();
  }
  return regions;
}

void QueryService::publish_trace(obs::Tracer& tracer, bool traced) {
  if (!traced) return;
  auto trace = std::make_shared<obs::Trace>(tracer.take());
  std::lock_guard lock(state_mu_);
  last_trace_ = std::move(trace);
}

Result<Selection> QueryService::eval(const QueryPtr& query,
                                     bool need_locations,
                                     const QueryOptions& opts) {
  if (!query) {
    return Status::InvalidArgument("null query");
  }
  WallTimer wall;
  // One tracer per traced operation; its spans (plus the server spans
  // adopted from response baggage) become last_trace() when we finish.
  obs::Tracer tracer(opts.trace ? obs::next_id() : 0);
  const obs::TraceContext root =
      opts.trace ? obs::TraceContext{&tracer, tracer.trace_id(), 0}
                 : obs::TraceContext{};
  obs::ScopedSpan query_span(root, "client.query", "client");
  // Per-operation stats stay local until the operation finishes, so
  // concurrent queries never scribble over each other's counters; the
  // publisher stores the finished snapshot for last_stats().
  OpStats stats;
  struct Publisher {
    QueryService* service;
    OpStats* stats;
    WallTimer* wall;
    ~Publisher() {
      stats->wall_seconds = wall->elapsed_seconds();
      if (service->pool_ != nullptr) {
        stats->pool_threads = service->pool_->size();
        stats->pool_queue_peak = service->pool_->stats().queue_peak;
      }
      service->publish_stats(*stats);
    }
  } publisher{this, &stats, &wall};
  const CostModel& cost = store_.cluster().config().cost;

  PlanOptions plan_options;
  plan_options.strategy = options_.strategy;
  plan_options.order_by_selectivity = options_.order_by_selectivity;
  obs::ScopedSpan plan_span(query_span.context(), "client.plan", "client");
  PDC_ASSIGN_OR_RETURN(Plan plan, plan_query(*query, store_, plan_options));
  plan_span.arg("terms", static_cast<double>(plan.terms.size()));
  plan_span.close();

  Selection selection;
  if (plan.terms.empty()) {
    query_span.close();
    publish_trace(tracer, opts.trace);
    return selection;  // provably empty
  }

  server::EvalRequest request;
  request.strategy = options_.strategy;
  // OR-terms whose drivers are different objects are evaluated on different
  // servers (region ownership is per object), so one element can satisfy
  // two terms on two servers and per-server hit counts would double-count
  // it.  Multi-term queries therefore always materialize positions and the
  // client dedupes the union below.
  const bool multi_term = plan.terms.size() > 1;
  request.need_locations = need_locations || multi_term;
  request.region_constraint = plan.region_constraint;
  request.terms = std::move(plan.terms);

  // Degraded-mode dispatch loop.  Each alive server evaluates its own
  // identity plus any previously-dead identities re-planned onto it.  When
  // a server exhausts its retries it is marked dead and the identities it
  // was covering are re-dispatched to the survivors — so the final answer
  // is exactly the fault-free one, only slower.  Only when every server is
  // dead does the call surface kUnavailable.
  std::vector<ServerId> alive = alive_servers();
  if (alive.empty()) {
    return Status::Unavailable("all PDC servers are dead");
  }
  std::vector<std::pair<ServerId, std::vector<ServerId>>> work;
  {
    const auto extra =
        server::plan_reassignment(dead_servers(), alive);
    for (std::size_t i = 0; i < alive.size(); ++i) {
      std::vector<ServerId> identities{alive[i]};
      for (const ServerId dead_identity : extra[i]) {
        identities.push_back(dead_identity);
        stats.redispatched_regions +=
            regions_of_identity(request.terms, dead_identity);
      }
      work.emplace_back(alive[i], std::move(identities));
    }
  }

  while (!work.empty()) {
    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
    requests.reserve(work.size());
    double max_request_net = 0.0;
    for (const auto& [target, identities] : work) {
      request.act_as = identities;
      std::vector<std::uint8_t> payload = request.serialize();
      stats.request_bytes += payload.size();
      // Requests travel in parallel over the interconnect: max, not sum.
      max_request_net = std::max(max_request_net,
                                 cost.net_cost(payload.size()));
      requests.emplace_back(target, std::move(payload));
    }
    stats.net_seconds += max_request_net;

    const rpc::GatherResult gathered =
        client_.gather(requests, query_span.context(), opts.tenant);
    stats.retries += gathered.stats.retries;
    stats.timeouts += gathered.stats.timeouts;
    stats.sheds += gathered.stats.sheds;
    if (gathered.bus_closed) {
      return Status::Unavailable("message bus shut down mid-query");
    }

    // Per-ROUND critical server.  Degraded rounds run sequentially (round
    // N+1 is dispatched only after round N's responses are in), so the
    // modeled server time is the SUM of per-round maxima — taking one
    // global max would credit redispatched work as free.
    bool round_has_response = false;
    server::LedgerSummary round_critical;
    std::vector<ServerId> orphaned;
    for (std::size_t i = 0; i < work.size(); ++i) {
      const auto& message = gathered.responses[i];
      if (!message.has_value()) {
        if (gathered.shed[i]) {
          // The server explicitly shed this request: it is overloaded, not
          // dead.  Declaring it dead would trigger a redispatch storm onto
          // the survivors — exactly the wrong move under overload — so the
          // whole operation fails fast and the caller retries later.
          return Status::Overloaded(
              "server " + std::to_string(work[i].first) +
              " shed the request; retry later");
        }
        mark_dead(work[i].first);
        orphaned.insert(orphaned.end(), work[i].second.begin(),
                        work[i].second.end());
        continue;
      }
      SerialReader reader(message->payload);
      PDC_ASSIGN_OR_RETURN(server::EvalResponse response,
                           server::EvalResponse::Deserialize(reader));
      PDC_RETURN_IF_ERROR(response.status);
      selection.num_hits += response.num_hits;
      if (response.has_positions) {
        selection.positions.insert(selection.positions.end(),
                                   response.positions.begin(),
                                   response.positions.end());
      }
      if (!response.sorted_extents.empty()) {
        selection.replica_id = response.replica_id != kInvalidObjectId
                                   ? response.replica_id
                                   : selection.replica_id;
        selection.sorted_extents.emplace_back(
            message->sender, std::move(response.sorted_extents));
      }
      if (!round_has_response ||
          response.ledger.elapsed() > round_critical.elapsed()) {
        round_critical = response.ledger;
        round_has_response = true;
      }
      stats.server_bytes_read += response.ledger.bytes_read;
      stats.server_read_ops += response.ledger.read_ops;
      stats.response_bytes += message->payload.size();
      stats.regions_scanned += response.regions_scanned;
      stats.regions_indexed += response.regions_indexed;
      stats.regions_allhit += response.regions_allhit;
      stats.regions_stale += response.regions_stale;
      stats.max_data_epoch =
          std::max(stats.max_data_epoch, response.max_data_epoch);
    }
    if (round_has_response) {
      stats.max_server_seconds += round_critical.elapsed();
      stats.max_server_io_seconds += round_critical.io_seconds;
      stats.max_server_cpu_seconds += round_critical.cpu_seconds;
      stats.max_server_scan_seconds += round_critical.scan_seconds;
      stats.max_server_decode_seconds += round_critical.decode_seconds;
      stats.max_server_merge_seconds += round_critical.merge_seconds;
    }

    if (orphaned.empty()) break;
    alive = alive_servers();
    if (alive.empty()) {
      stats.dead_servers = options_.num_servers;
      return Status::Unavailable(
          "all PDC servers failed; query cannot complete");
    }
    log_warn("query degraded: ", orphaned.size(),
             " server identities re-dispatched onto ", alive.size(),
             " survivors");
    for (const ServerId identity : orphaned) {
      stats.redispatched_regions +=
          regions_of_identity(request.terms, identity);
    }
    const auto extra = server::plan_reassignment(orphaned, alive);
    work.clear();
    for (std::size_t i = 0; i < alive.size(); ++i) {
      if (!extra[i].empty()) work.emplace_back(alive[i], extra[i]);
    }
  }
  stats.dead_servers = dead_servers().size();

  // Responses stream back to the one client NIC.
  stats.net_seconds +=
      cost.net_latency_s +
      static_cast<double>(stats.response_bytes) / cost.net_bandwidth_bps;

  // Client-side aggregation: merge per-server position lists.
  if (!selection.positions.empty()) {
    obs::ScopedSpan merge_span(query_span.context(), "client.merge", "client");
    merge_span.arg("positions", static_cast<double>(selection.positions.size()));
    stats.client_cpu_seconds += 2.0 * cost.scan_cost(
        selection.positions.size() * sizeof(std::uint64_t));
    std::sort(selection.positions.begin(), selection.positions.end());
    if (multi_term) {
      selection.positions.erase(
          std::unique(selection.positions.begin(), selection.positions.end()),
          selection.positions.end());
      selection.num_hits = selection.positions.size();
    }
  }
  // The replica id may be known even when extents were not retained.
  if (selection.replica_id == kInvalidObjectId &&
      options_.strategy == server::Strategy::kSortedHistogram &&
      request.terms.size() == 1) {
    selection.replica_id = request.terms.front().driver_replica;
  }

  stats.sim_elapsed_seconds = stats.net_seconds + stats.max_server_seconds +
                              stats.client_cpu_seconds;
  if (opts.trace) {
    query_span.arg("sim_elapsed_s", stats.sim_elapsed_seconds);
    query_span.arg("num_hits", static_cast<double>(selection.num_hits));
    query_span.close();
    publish_trace(tracer, /*traced=*/true);
  }
  return selection;
}

Result<std::uint64_t> QueryService::get_num_hits(const QueryPtr& query,
                                                 const QueryOptions& opts) {
  PDC_ASSIGN_OR_RETURN(Selection selection,
                       eval(query, /*need_locations=*/false, opts));
  return selection.num_hits;
}

Result<Selection> QueryService::get_selection(const QueryPtr& query,
                                              const QueryOptions& opts) {
  return eval(query, /*need_locations=*/true, opts);
}

Result<obs::MetricsSnapshot> QueryService::scrape_metrics() {
  const std::vector<ServerId> alive = alive_servers();
  if (alive.empty()) {
    return Status::Unavailable("all PDC servers are dead");
  }
  std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
  requests.emplace_back(alive.front(), server::MetricsRequest{}.serialize());
  const rpc::GatherResult gathered = client_.gather(requests);
  if (gathered.bus_closed || !gathered.responses.front().has_value()) {
    if (!gathered.bus_closed && gathered.shed.front()) {
      return Status::Overloaded("metrics scrape shed; retry later");
    }
    return Status::Unavailable("metrics scrape received no response");
  }
  SerialReader reader(gathered.responses.front()->payload);
  PDC_ASSIGN_OR_RETURN(server::MetricsResponse response,
                       server::MetricsResponse::Deserialize(reader));
  PDC_RETURN_IF_ERROR(response.status);
  return std::move(response.snapshot);
}

Status QueryService::get_data_raw(ObjectId object, const Selection& selection,
                                  std::span<std::uint8_t> out, PdcType type,
                                  GetDataMode mode, const QueryOptions& opts) {
  WallTimer wall;
  obs::Tracer tracer(opts.trace ? obs::next_id() : 0);
  const obs::TraceContext root =
      opts.trace ? obs::TraceContext{&tracer, tracer.trace_id(), 0}
                 : obs::TraceContext{};
  obs::ScopedSpan query_span(root, "client.get_data", "client");
  OpStats stats;
  struct Publisher {
    QueryService* service;
    OpStats* stats;
    WallTimer* wall;
    ~Publisher() {
      stats->wall_seconds = wall->elapsed_seconds();
      if (service->pool_ != nullptr) {
        stats->pool_threads = service->pool_->size();
        stats->pool_queue_peak = service->pool_->stats().queue_peak;
      }
      service->publish_stats(*stats);
    }
  } publisher{this, &stats, &wall};
  const CostModel& cost = store_.cluster().config().cost;
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* target,
                       store_.get(object));
  if (target->type != type) {
    return Status::InvalidArgument("get_data element type mismatch");
  }
  const std::size_t elem_size = target->element_size();
  if (out.size() != selection.num_hits * elem_size) {
    return Status::InvalidArgument(
        "get_data buffer must hold num_hits elements");
  }
  if (selection.num_hits == 0) {
    query_span.close();
    publish_trace(tracer, opts.trace);
    return Status::Ok();
  }

  // Resolve the fetch mode.
  bool use_replica = false;
  ObjectId replica_source = kInvalidObjectId;
  if (selection.replica_id != kInvalidObjectId &&
      !selection.sorted_extents.empty()) {
    const auto replica = store_.get(selection.replica_id);
    if (replica.ok()) replica_source = (*replica)->sorted_source;
  }
  switch (mode) {
    case GetDataMode::kAuto:
      use_replica = replica_source == object;
      break;
    case GetDataMode::kFromReplica:
      if (replica_source != object) {
        return Status::FailedPrecondition(
            "selection has no replica extents for this object");
      }
      use_replica = true;
      break;
    case GetDataMode::kByPositions:
      use_replica = false;
      break;
  }

  // Build the data-fetch parts.  Any server can serve any part (requests
  // carry explicit positions/extents), so when an owner is dead — or dies
  // mid-fetch — its part is re-routed to a survivor.  Fetched values are
  // keyed by part, not by owner: in degraded mode two sorted_extents
  // entries can name the same server (its own round-1 answer plus a dead
  // identity it covered in round 2), and per-owner keying would let one
  // response clobber the other.
  struct Part {
    ServerId owner;                  ///< nominal (cache-local) server
    std::uint64_t regions;           ///< work units, for redispatch stats
    std::size_t expected_bytes;      ///< exact response size, validated
    std::vector<std::uint8_t> payload;
  };
  std::vector<Part> parts;
  std::vector<std::size_t> part_of_owner;
  if (use_replica) {
    // One part per sorted_extents entry, in order: entry i <-> parts[i].
    for (const auto& [server, extents] : selection.sorted_extents) {
      server::GetDataRequest request;
      request.object = selection.replica_id;
      request.from_replica = true;
      request.extents = extents;
      std::uint64_t count = 0;
      for (const Extent1D& e : extents) count += e.count;
      parts.push_back({server, extents.size(),
                       static_cast<std::size_t>(count * elem_size),
                       request.serialize()});
    }
  } else {
    if (selection.positions.size() != selection.num_hits) {
      return Status::FailedPrecondition(
          "selection has no locations; call get_selection first");
    }
    auto split = server::partition_positions(*target, selection.positions,
                                             options_.num_servers);
    part_of_owner.assign(options_.num_servers, 0);
    for (ServerId s = 0; s < options_.num_servers; ++s) {
      if (split[s].empty()) continue;
      std::uint64_t regions = 0;
      RegionIndex last = ~RegionIndex{0};
      for (const std::uint64_t pos : split[s]) {
        const RegionIndex r = server::region_of_position(*target, pos);
        regions += r != last;
        last = r;
      }
      server::GetDataRequest request;
      request.object = object;
      const std::size_t expected = split[s].size() * elem_size;
      request.positions = std::move(split[s]);
      part_of_owner[s] = parts.size();
      parts.push_back({s, regions, expected, request.serialize()});
    }
  }

  std::vector<std::vector<std::uint8_t>> values_by_part(parts.size());
  std::vector<std::size_t> pending(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) pending[i] = i;
  while (!pending.empty()) {
    const std::vector<ServerId> alive = alive_servers();
    if (alive.empty()) {
      stats.dead_servers = options_.num_servers;
      return Status::Unavailable(
          "all PDC servers failed; get_data cannot complete");
    }
    // Route each pending part: its owner when alive, else a survivor.
    const std::vector<bool> dead = dead_snapshot();
    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
    std::vector<ServerId> targets;
    double max_request_net = 0.0;
    std::size_t reroute_index = 0;
    for (const std::size_t p : pending) {
      ServerId to = parts[p].owner;
      if (dead[to]) {
        to = alive[reroute_index++ % alive.size()];
        stats.redispatched_regions += parts[p].regions;
      }
      stats.request_bytes += parts[p].payload.size();
      max_request_net = std::max(max_request_net,
                                 cost.net_cost(parts[p].payload.size()));
      requests.emplace_back(to, parts[p].payload);
      targets.push_back(to);
    }
    stats.net_seconds += max_request_net;

    const rpc::GatherResult gathered =
        client_.gather(requests, query_span.context(), opts.tenant);
    stats.retries += gathered.stats.retries;
    stats.timeouts += gathered.stats.timeouts;
    stats.sheds += gathered.stats.sheds;
    if (gathered.bus_closed) {
      return Status::Unavailable("message bus shut down mid-fetch");
    }
    // Same per-round maxima discipline as eval(): sequential redispatch
    // rounds each add their critical server to the modeled elapsed time.
    bool round_has_response = false;
    server::LedgerSummary round_critical;
    std::vector<std::size_t> still_pending;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const auto& message = gathered.responses[i];
      if (!message.has_value()) {
        if (gathered.shed[i]) {
          // Overloaded, not dead (see eval()): fail fast, caller retries.
          return Status::Overloaded(
              "server " + std::to_string(targets[i]) +
              " shed the data fetch; retry later");
        }
        mark_dead(targets[i]);
        still_pending.push_back(pending[i]);
        continue;
      }
      SerialReader reader(message->payload);
      PDC_ASSIGN_OR_RETURN(server::GetDataResponse response,
                           server::GetDataResponse::Deserialize(reader));
      PDC_RETURN_IF_ERROR(response.status);
      if (!round_has_response ||
          response.ledger.elapsed() > round_critical.elapsed()) {
        round_critical = response.ledger;
        round_has_response = true;
      }
      stats.server_bytes_read += response.ledger.bytes_read;
      stats.server_read_ops += response.ledger.read_ops;
      stats.response_bytes += message->payload.size();
      if (response.values.size() != parts[pending[i]].expected_bytes) {
        return Status::Corruption(
            "get_data response does not match requested element count");
      }
      values_by_part[pending[i]] = std::move(response.values);
    }
    if (round_has_response) {
      stats.max_server_seconds += round_critical.elapsed();
      stats.max_server_io_seconds += round_critical.io_seconds;
      stats.max_server_cpu_seconds += round_critical.cpu_seconds;
      stats.max_server_scan_seconds += round_critical.scan_seconds;
      stats.max_server_decode_seconds += round_critical.decode_seconds;
      stats.max_server_merge_seconds += round_critical.merge_seconds;
    }
    pending = std::move(still_pending);
  }
  stats.dead_servers = dead_servers().size();
  stats.net_seconds +=
      cost.net_latency_s +
      static_cast<double>(stats.response_bytes) / cost.net_bandwidth_bps;

  if (use_replica) {
    // Slice each server's blob per extent, then lay extents out in
    // ascending replica offset: the output is globally value-sorted.
    struct Piece {
      std::uint64_t offset;
      const std::uint8_t* bytes;
      std::uint64_t count;
    };
    std::vector<Piece> pieces;
    for (std::size_t pi = 0; pi < selection.sorted_extents.size(); ++pi) {
      const std::uint8_t* cursor = values_by_part[pi].data();
      for (const Extent1D& e : selection.sorted_extents[pi].second) {
        pieces.push_back({e.offset, cursor, e.count});
        cursor += e.count * elem_size;
      }
    }
    std::sort(pieces.begin(), pieces.end(),
              [](const Piece& a, const Piece& b) {
                return a.offset < b.offset;
              });
    std::uint8_t* dest = out.data();
    for (const Piece& p : pieces) {
      std::memcpy(dest, p.bytes, static_cast<std::size_t>(p.count * elem_size));
      dest += p.count * elem_size;
    }
  } else {
    // Merge per-server streams back into ascending-position order.
    std::vector<std::size_t> cursor(options_.num_servers, 0);
    std::uint8_t* dest = out.data();
    for (const std::uint64_t pos : selection.positions) {
      const ServerId owner = server::owner_of_region(
          *target, server::region_of_position(*target, pos),
          options_.num_servers);
      std::memcpy(dest,
                  values_by_part[part_of_owner[owner]].data() +
                      cursor[owner] * elem_size,
                  elem_size);
      ++cursor[owner];
      dest += elem_size;
    }
  }
  stats.client_cpu_seconds +=
      static_cast<double>(out.size()) / cost.memcpy_bandwidth_bps;

  stats.sim_elapsed_seconds = stats.net_seconds + stats.max_server_seconds +
                              stats.client_cpu_seconds;
  if (opts.trace) {
    query_span.arg("sim_elapsed_s", stats.sim_elapsed_seconds);
    query_span.arg("bytes", static_cast<double>(out.size()));
    query_span.close();
    publish_trace(tracer, true);
  }
  return Status::Ok();
}

Status QueryService::get_data_bytes(ObjectId object,
                                    const Selection& selection,
                                    std::uint8_t* out, GetDataMode mode) {
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* target,
                       store_.get(object));
  return get_data_raw(
      object, selection,
      {out, static_cast<std::size_t>(selection.num_hits *
                                     target->element_size())},
      target->type, mode);
}

Status QueryService::get_data_batch(
    ObjectId object, const Selection& selection, std::uint64_t batch_elements,
    const std::function<void(std::span<const std::uint8_t>, std::uint64_t)>&
        consume) {
  if (batch_elements == 0) {
    return Status::InvalidArgument("batch_elements must be positive");
  }
  if (selection.positions.size() != selection.num_hits) {
    return Status::FailedPrecondition(
        "selection has no locations; call get_selection first");
  }
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* target,
                       store_.get(object));
  const std::size_t elem_size = target->element_size();
  std::vector<std::uint8_t> buffer;
  OpStats accumulated;
  for (std::uint64_t first = 0; first < selection.num_hits;
       first += batch_elements) {
    const std::uint64_t count =
        std::min<std::uint64_t>(batch_elements, selection.num_hits - first);
    Selection batch;
    batch.num_hits = count;
    batch.positions.assign(
        selection.positions.begin() + static_cast<std::ptrdiff_t>(first),
        selection.positions.begin() + static_cast<std::ptrdiff_t>(first + count));
    buffer.resize(static_cast<std::size_t>(count * elem_size));
    PDC_RETURN_IF_ERROR(get_data_raw(object, batch, buffer, target->type,
                                     GetDataMode::kByPositions));
    const OpStats batch_stats = last_stats();
    accumulated.sim_elapsed_seconds += batch_stats.sim_elapsed_seconds;
    accumulated.wall_seconds += batch_stats.wall_seconds;
    accumulated.net_seconds += batch_stats.net_seconds;
    accumulated.max_server_seconds += batch_stats.max_server_seconds;
    accumulated.client_cpu_seconds += batch_stats.client_cpu_seconds;
    accumulated.request_bytes += batch_stats.request_bytes;
    accumulated.response_bytes += batch_stats.response_bytes;
    accumulated.server_bytes_read += batch_stats.server_bytes_read;
    accumulated.server_read_ops += batch_stats.server_read_ops;
    accumulated.retries += batch_stats.retries;
    accumulated.timeouts += batch_stats.timeouts;
    accumulated.dead_servers = batch_stats.dead_servers;
    accumulated.redispatched_regions += batch_stats.redispatched_regions;
    accumulated.pool_threads = batch_stats.pool_threads;
    accumulated.pool_queue_peak = batch_stats.pool_queue_peak;
    consume(buffer, first);
  }
  publish_stats(accumulated);
  return Status::Ok();
}

Result<WriteReport> QueryService::append(ObjectId object,
                                         std::span<const std::uint8_t> values,
                                         const QueryOptions& opts) {
  return transfer_write(object, server::WriteKind::kAppend, Extent1D{}, values,
                        opts);
}

Result<WriteReport> QueryService::overwrite(ObjectId object, Extent1D extent,
                                            std::span<const std::uint8_t> values,
                                            const QueryOptions& opts) {
  return transfer_write(object, server::WriteKind::kOverwrite, extent, values,
                        opts);
}

Result<WriteReport> QueryService::transfer_write(
    ObjectId object, server::WriteKind kind, Extent1D extent,
    std::span<const std::uint8_t> payload, const QueryOptions& opts) {
  WallTimer wall;
  obs::Tracer tracer(opts.trace ? obs::next_id() : 0);
  const obs::TraceContext root =
      opts.trace ? obs::TraceContext{&tracer, tracer.trace_id(), 0}
                 : obs::TraceContext{};
  obs::ScopedSpan write_span(root, "client.transfer_write", "client");
  OpStats stats;
  struct Publisher {
    QueryService* service;
    OpStats* stats;
    WallTimer* wall;
    ~Publisher() {
      stats->wall_seconds = wall->elapsed_seconds();
      if (service->pool_ != nullptr) {
        stats->pool_threads = service->pool_->size();
        stats->pool_queue_peak = service->pool_->stats().queue_peak;
      }
      service->publish_stats(*stats);
    }
  } publisher{this, &stats, &wall};
  if (mutable_store_ == nullptr) {
    return Status::FailedPrecondition(
        "service opened read-only; use the writable constructor to enable "
        "transfer_write");
  }
  const CostModel& cost = store_.cluster().config().cost;
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* target,
                       store_.get(object));

  // Client-assigned per-object monotone sequence number: servers apply a
  // seq at most once, so a retried or rerouted request (a write applied
  // whose ack was lost) is acknowledged as a duplicate, never re-applied.
  std::uint64_t seq = 0;
  {
    std::lock_guard lock(state_mu_);
    seq = ++write_seq_[object];
  }
  server::TransferWriteRequest request;
  request.object = object;
  request.kind = kind;
  request.extent = extent;
  request.write_seq = seq;
  request.payload = payload;
  const std::vector<std::uint8_t> bytes = request.serialize();

  // Nominal target: the owner of the first region the write lands in
  // (appends: the trailing region).  Any server can apply a write — the
  // store is shared and the mutation takes the store's writer lock — so a
  // dead owner's write reroutes to a survivor instead of blocking.
  const std::uint64_t anchor_pos =
      kind == server::WriteKind::kOverwrite
          ? extent.offset
          : (target->num_elements == 0 ? 0 : target->num_elements - 1);
  const ServerId owner = server::owner_of_region(
      *target, server::region_of_position(*target, anchor_pos),
      options_.num_servers);

  std::size_t attempt = 0;
  while (true) {
    const std::vector<ServerId> alive = alive_servers();
    if (alive.empty()) {
      stats.dead_servers = options_.num_servers;
      return Status::Unavailable(
          "all PDC servers failed; transfer_write cannot complete");
    }
    const std::vector<bool> dead = dead_snapshot();
    ServerId to = owner;
    if (dead[to]) to = alive[attempt % alive.size()];
    ++attempt;
    stats.request_bytes += bytes.size();
    stats.net_seconds += cost.net_cost(bytes.size());

    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
    requests.emplace_back(to, bytes);
    const rpc::GatherResult gathered =
        client_.gather(requests, write_span.context(), opts.tenant);
    stats.retries += gathered.stats.retries;
    stats.timeouts += gathered.stats.timeouts;
    stats.sheds += gathered.stats.sheds;
    if (gathered.bus_closed) {
      return Status::Unavailable("message bus shut down mid-write");
    }
    const auto& message = gathered.responses.front();
    if (!message.has_value()) {
      if (gathered.shed.front()) {
        // Overloaded, not dead: the write was rejected at admission, so it
        // was NOT applied.  Fail fast; the caller may retry under the same
        // seq only via a fresh call (which assigns a new one) — this call's
        // seq is burned but never observed, which is harmless.
        return Status::Overloaded("server " + std::to_string(to) +
                                  " shed the write; retry later");
      }
      // No answer: the server may or may not have applied the write before
      // dying.  Reroute under the SAME seq — a survivor either applies it
      // (never happened) or acks it as a duplicate (happened; ack lost).
      mark_dead(to);
      stats.redispatched_regions += 1;
      continue;
    }
    SerialReader reader(message->payload);
    PDC_ASSIGN_OR_RETURN(server::TransferWriteResponse response,
                         server::TransferWriteResponse::Deserialize(reader));
    PDC_RETURN_IF_ERROR(response.status);
    stats.response_bytes += message->payload.size();
    stats.server_bytes_read += response.ledger.bytes_read;
    stats.server_read_ops += response.ledger.read_ops;
    stats.max_server_seconds += response.ledger.elapsed();
    stats.max_server_io_seconds += response.ledger.io_seconds;
    stats.max_server_cpu_seconds += response.ledger.cpu_seconds;
    stats.max_server_scan_seconds += response.ledger.scan_seconds;
    stats.max_server_decode_seconds += response.ledger.decode_seconds;
    stats.max_server_merge_seconds += response.ledger.merge_seconds;
    stats.net_seconds += cost.net_latency_s +
                         static_cast<double>(message->payload.size()) /
                             cost.net_bandwidth_bps;
    stats.dead_servers = dead_servers().size();
    stats.max_data_epoch = response.data_epoch;

    WriteReport report;
    report.data_epoch = response.data_epoch;
    report.regions_touched = response.regions_touched;
    report.duplicate = response.duplicate;
    report.compacted = response.compacted;
    if (!report.duplicate && metadata_enabled()) {
      // Write-path hook: the object's new data epoch propagates into the
      // metadata service through the same replicated update path (per-
      // vnode seq, epoch bump on every replica), so metadata queries can
      // see write recency (`__data_epoch >= N`) with exact semantics.
      PDC_RETURN_IF_ERROR(meta_apply_update(
          object, "__data_epoch",
          static_cast<std::int64_t>(response.data_epoch), opts, &stats));
    }
    stats.sim_elapsed_seconds = stats.net_seconds + stats.max_server_seconds;
    if (opts.trace) {
      write_span.arg("sim_elapsed_s", stats.sim_elapsed_seconds);
      write_span.arg("bytes", static_cast<double>(payload.size()));
      write_span.arg("data_epoch", static_cast<double>(response.data_epoch));
      write_span.close();
      publish_trace(tracer, true);
    }
    return report;
  }
}

Result<hist::MergeableHistogram> QueryService::get_histogram(
    ObjectId object) const {
  PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* desc, store_.get(object));
  return desc->global_histogram;
}

std::uint64_t QueryService::cached_bytes() const {
  std::uint64_t total = 0;
  for (const auto& server : servers_) total += server->cache().bytes();
  return total;
}

}  // namespace pdc::query
