// Query planner: condition tree -> wire-level evaluation plan.
//
// 1. Normalize the AND/OR tree into disjunctive normal form (OR of
//    AND-terms), intersecting conditions that target the same object into a
//    single interval per object.
// 2. Order each term's conjuncts by estimated selectivity, ascending, using
//    the objects' *global histograms* (paper §III-D2: "execution order has a
//    significant impact ... histogram provides an approximate estimation at
//    very low cost").  The most selective conjunct becomes the driver.
// 3. For the sorted strategy, attach the driver's sorted replica when one
//    exists; terms whose driver has no replica fall back to histogram
//    evaluation (paper Fig. 4: when the engine evaluates 'x' first, the
//    sorted reorganization is less effective).
#pragma once

#include <vector>

#include "obj/object_store.h"
#include "query/query.h"
#include "server/wire.h"

namespace pdc::query {

struct PlanOptions {
  server::Strategy strategy = server::Strategy::kHistogram;
  /// Safety valve for DNF blowup on adversarial trees.
  std::size_t max_terms = 256;
  /// If false, the planner keeps the user's condition order instead of
  /// reordering by selectivity (ablation knob).
  bool order_by_selectivity = true;
};

struct Plan {
  std::vector<server::AndTerm> terms;
  Extent1D region_constraint;  ///< {0,0} = none
};

/// Build the evaluation plan for `query`.
Result<Plan> plan_query(const Query& query, const obj::ObjectStore& store,
                        const PlanOptions& options);

/// Estimated selectivity midpoint of `interval` on `object`'s global
/// histogram (0 when the histogram proves no overlap).
[[nodiscard]] double estimate_selectivity(const obj::ObjectDescriptor& object,
                                          const ValueInterval& interval);

}  // namespace pdc::query
