#include "query/planner.h"

#include <algorithm>
#include <map>

namespace pdc::query {
namespace {

/// A DNF term under construction: object -> intersected interval.
using TermMap = std::map<ObjectId, ValueInterval>;

Status to_dnf(const Query& node, std::vector<TermMap>& out,
              std::size_t max_terms) {
  switch (node.kind) {
    case Query::Kind::kLeaf: {
      if (node.object == kInvalidObjectId) {
        return Status::InvalidArgument("query leaf without object");
      }
      if (node.value != node.value) {
        // A NaN constant makes every comparison vacuously false in IEEE
        // semantics but breaks interval/binary-search reasoning downstream;
        // reject it up front instead of answering inconsistently per path.
        return Status::InvalidArgument("query constant is NaN");
      }
      TermMap term;
      term.emplace(node.object, ValueInterval::from_op(node.op, node.value));
      out.push_back(std::move(term));
      return Status::Ok();
    }
    case Query::Kind::kOr: {
      PDC_RETURN_IF_ERROR(to_dnf(*node.left, out, max_terms));
      PDC_RETURN_IF_ERROR(to_dnf(*node.right, out, max_terms));
      if (out.size() > max_terms) {
        return Status::ResourceExhausted("query DNF exceeds term limit");
      }
      return Status::Ok();
    }
    case Query::Kind::kAnd: {
      std::vector<TermMap> left;
      std::vector<TermMap> right;
      PDC_RETURN_IF_ERROR(to_dnf(*node.left, left, max_terms));
      PDC_RETURN_IF_ERROR(to_dnf(*node.right, right, max_terms));
      if (left.size() * right.size() > max_terms) {
        return Status::ResourceExhausted("query DNF exceeds term limit");
      }
      for (const TermMap& l : left) {
        for (const TermMap& r : right) {
          TermMap merged = l;
          for (const auto& [object, interval] : r) {
            const auto it = merged.find(object);
            if (it == merged.end()) {
              merged.emplace(object, interval);
            } else {
              it->second = it->second.intersect(interval);
            }
          }
          out.push_back(std::move(merged));
        }
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable query kind");
}

}  // namespace

double estimate_selectivity(const obj::ObjectDescriptor& object,
                            const ValueInterval& interval) {
  const hist::MergeableHistogram& h = object.global_histogram;
  if (!h.valid()) return 1.0;  // unknown: assume worst
  return h.estimate(interval).selectivity_mid(h.total_count());
}

Result<Plan> plan_query(const Query& query, const obj::ObjectStore& store,
                        const PlanOptions& options) {
  std::vector<TermMap> dnf;
  PDC_RETURN_IF_ERROR(to_dnf(query, dnf, options.max_terms));

  Plan plan;
  if (query.region_constraint) {
    plan.region_constraint = *query.region_constraint;
  }
  std::uint64_t common_dims = 0;
  for (TermMap& term_map : dnf) {
    server::AndTerm term;
    term.conjuncts.reserve(term_map.size());
    for (auto& [object_id, interval] : term_map) {
      PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* object,
                           store.get(object_id));
      if (common_dims == 0) {
        common_dims = object->num_elements;
      } else if (object->num_elements != common_dims) {
        return Status::InvalidArgument(
            "query objects must have identical dimensions");
      }
      // Provably-empty conjunct: the whole AND-term selects nothing.
      if (interval.empty()) {
        term.conjuncts.clear();
        break;
      }
      term.conjuncts.push_back({object_id, interval});
    }
    if (term.conjuncts.empty()) continue;  // term eliminated

    if (options.order_by_selectivity && term.conjuncts.size() > 1) {
      // Most selective first: estimated via global histograms.
      std::vector<std::pair<double, server::Conjunct>> ranked;
      ranked.reserve(term.conjuncts.size());
      for (server::Conjunct& c : term.conjuncts) {
        PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* object,
                             store.get(c.object));
        ranked.emplace_back(estimate_selectivity(*object, c.interval), c);
      }
      std::stable_sort(ranked.begin(), ranked.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      term.conjuncts.clear();
      for (auto& [sel, c] : ranked) term.conjuncts.push_back(c);
    }

    if (options.strategy == server::Strategy::kSortedHistogram) {
      // The sorted replica applies only when the driver IS the sorted
      // object; otherwise this term degrades to histogram evaluation.
      if (const auto replica =
              store.sorted_replica_of(term.conjuncts.front().object)) {
        PDC_ASSIGN_OR_RETURN(const obj::ObjectDescriptor* source,
                             store.get(term.conjuncts.front().object));
        // A replica whose sync epoch lags the source data (a write missed
        // its maintenance window) would answer from outdated bytes, and
        // its delta log is gone — degrade to histogram evaluation until a
        // rebuild catches it up.  A synced replica with a pending delta
        // log stays usable: servers merge the log on read.
        if (source->replica_synced_epoch == source->data_epoch) {
          term.driver_replica = *replica;
        }
      }
    }
    plan.terms.push_back(std::move(term));
  }
  return plan;
}

}  // namespace pdc::query
