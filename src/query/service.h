// PDC-Query service — the client-facing entry point (paper Fig. 1 & 2).
//
// Owns the deployment: a message bus, N QueryServer instances each on its
// own thread, and the client endpoint with its background aggregator.  All
// query traffic crosses the bus as serialized bytes.
//
// Every operation also produces an OpStats with the *simulated* end-to-end
// elapsed time assembled the way the paper measures it (§V: "end-to-end
// time from the client issues the query until it receives all the query
// results"):
//
//   broadcast_net + max_over_servers(server io+cpu) + response_net +
//   client merge cpu
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/cost_model.h"
#include "common/exec_pool.h"
#include "histogram/histogram.h"
#include "metadata/meta_shard.h"
#include "metadata/meta_store.h"
#include "obj/object_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/planner.h"
#include "query/query.h"
#include "rpc/exchange.h"
#include "rpc/message_bus.h"
#include "rpc/server_runtime.h"
#include "server/query_server.h"

namespace pdc::query {

/// Result-set handle (paper: pdc_selection_t).
struct Selection {
  std::uint64_t num_hits = 0;
  /// Matching element coordinates, ascending.  For sorted-replica
  /// evaluations obtained via get_num_hits this may be empty even when
  /// num_hits > 0 (the fast path counts without materializing locations).
  std::vector<std::uint64_t> positions;

  /// Sorted-strategy extra: the replica object and the contiguous
  /// replica-space extents of the hits, per server.
  ObjectId replica_id = kInvalidObjectId;
  std::vector<std::pair<ServerId, std::vector<Extent1D>>> sorted_extents;
};

/// How get_data fetches values.
enum class GetDataMode : std::uint8_t {
  kAuto = 0,      ///< replica fast path when available, else by positions
  kByPositions,   ///< gather at original positions (selection order)
  kFromReplica,   ///< sequential replica reads (values arrive value-sorted)
};

/// Per-operation execution options.
struct QueryOptions {
  /// Produce a span tree for this operation (client, RPC, server phases,
  /// pool tasks, PFS reads), retrievable via QueryService::last_trace().
  /// Off by default: tracing is strictly pay-for-what-you-use.
  bool trace = false;
  /// Fairness identity stamped on every RPC of this operation: the
  /// server-side weighted-fair scheduler keys its per-tenant lanes on it
  /// (ServiceOptions::tenant_weights).  0 = the default tenant.
  std::uint32_t tenant = 0;
};

/// One cross-object epsilon join (paper ROADMAP item 4): all pairs
/// (pa, pb) with |left.value(pa) - right.value(pb)| <= epsilon, subject to
/// the optional per-side value pre-filters.
struct JoinSpec {
  ObjectId left = kInvalidObjectId;   ///< build side (pairs live in its zone)
  ObjectId right = kInvalidObjectId;  ///< probe side (band-expanded)
  double epsilon = 0.0;
  /// Zone bucket height; must be finite, positive and >= epsilon (the MSR
  /// zone-algorithm rule).  Rejected at plan time otherwise (NaN included).
  double zone_height = 1.0;
  /// Per-side value pre-filters (default: whole line).
  ValueInterval left_filter;
  ValueInterval right_filter;
  /// Override the service-level shuffle strategy for this join only.
  std::optional<server::JoinStrategy> strategy;
};

struct JoinPair {
  std::uint64_t left_pos = 0;   ///< original-space position in `left`
  std::uint64_t right_pos = 0;  ///< original-space position in `right`
};

/// Join result: pairs concatenated in ascending zone order, each zone's
/// pairs sorted by (left_pos, right_pos) — deterministic at any pool
/// width, server count and shuffle strategy.
struct JoinResult {
  std::vector<JoinPair> pairs;
  std::uint64_t num_zones = 0;  ///< non-empty zones across all servers
};

/// Per-operation performance summary.
struct OpStats {
  double sim_elapsed_seconds = 0.0;  ///< modeled end-to-end time
  double wall_seconds = 0.0;         ///< actual wall time of the call
  double max_server_seconds = 0.0;   ///< critical-path server io+cpu
  double max_server_io_seconds = 0.0;   ///< io part of the critical server
  double max_server_cpu_seconds = 0.0;  ///< cpu part of the critical server
  // Per-stage cpu split of the critical server (subset of its cpu time;
  // the remainder was uncategorized work).
  double max_server_scan_seconds = 0.0;    ///< value scanning / checking
  double max_server_decode_seconds = 0.0;  ///< bitmap-index bin decode
  double max_server_merge_seconds = 0.0;   ///< sorts, unions, result copies
  double net_seconds = 0.0;
  double client_cpu_seconds = 0.0;
  std::uint64_t request_bytes = 0;
  std::uint64_t response_bytes = 0;
  std::uint64_t server_bytes_read = 0;
  std::uint64_t server_read_ops = 0;
  // Degradation observability (nonzero only under faults).
  std::uint64_t retries = 0;       ///< RPC requests re-sent after a timeout
  std::uint64_t timeouts = 0;      ///< attempt windows that expired
  std::uint64_t sheds = 0;         ///< RPCs shed by server admission control
  std::uint64_t dead_servers = 0;  ///< servers considered dead after this op
  std::uint64_t redispatched_regions = 0;  ///< regions re-planned onto
                                           ///< surviving servers
  // Intra-server execution pool observability (zero when running serially).
  std::uint32_t pool_threads = 0;     ///< workers in the evaluation pool
  std::uint64_t pool_queue_peak = 0;  ///< high-water of queued pool tasks
  // Per-region access-path choices summed over all servers.  Populated only
  // by Strategy::kAdaptive (PDC-A); fixed strategies leave all three zero.
  std::uint64_t regions_scanned = 0;  ///< regions read whole + scanned
  std::uint64_t regions_indexed = 0;  ///< regions probed via WAH bins
  std::uint64_t regions_allhit = 0;   ///< regions proven all-hit (no I/O)
  // Write-path staleness observability (nonzero only after writes).
  std::uint64_t regions_stale = 0;   ///< index-lagging regions that fell
                                     ///< back to scan this operation
  std::uint64_t max_data_epoch = 0;  ///< highest region data epoch any
                                     ///< server reported (0 = never written)
  // Join/shuffle observability (nonzero only for join()).  The MPC-style
  // communication model folds rounds * net_latency plus the busiest
  // sender's bytes / net_bandwidth into sim_elapsed_seconds.
  std::uint64_t shuffle_bytes = 0;       ///< exchange bytes, incl. rexmits
  std::uint64_t shuffle_msgs = 0;        ///< exchange frames sent
  std::uint64_t shuffle_retransmits = 0; ///< frames re-sent (faults only)
  std::uint64_t shuffle_rounds = 0;      ///< communication rounds (1)
  std::uint64_t join_candidates_left = 0;   ///< build tuples produced
  std::uint64_t join_candidates_right = 0;  ///< probe tuples produced
  // Metadata-service observability (nonzero only for meta operations).
  std::uint64_t meta_probes = 0;          ///< trie/map nodes visited
  std::uint64_t meta_vnodes_queried = 0;  ///< vnode consultations (with dup
                                          ///< retries), not a broadcast
  std::uint64_t meta_max_epoch = 0;       ///< highest vnode epoch observed
};

/// Outcome of one transfer_write operation.
struct WriteReport {
  std::uint64_t data_epoch = 0;       ///< object's data epoch after the write
  std::uint64_t regions_touched = 0;  ///< regions the write bytes landed in
  bool duplicate = false;   ///< replayed write_seq: acknowledged, not applied
  bool compacted = false;   ///< a delta-WAH sidecar was folded (index rebuilt)
};

struct ServiceOptions {
  std::uint32_t num_servers = 4;
  server::Strategy strategy = server::Strategy::kHistogram;
  /// Per-server region cache capacity (paper: 64 GB per server).
  std::uint64_t cache_capacity_bytes = 1ull << 30;
  /// Per-server cache capacity for serialized index bins.  0 (the default)
  /// keeps the historical derivation `cache_capacity_bytes / 4`.
  std::uint64_t index_cache_capacity_bytes = 0;
  /// Dense-read crossover: conjuncts needing more than this fraction of a
  /// region's elements fetch the whole region instead of point reads, and
  /// PDC-A (kAdaptive) picks scan over index probing at the same fraction.
  double dense_read_threshold = 0.25;
  pfs::AggregationPolicy aggregation;
  /// Planner knob (ablation): reorder conjuncts by estimated selectivity.
  bool order_by_selectivity = true;
  /// Optional fault injector wired into the message bus (chaos testing).
  /// Must outlive the service.
  rpc::FaultInjector* fault_injector = nullptr;
  /// Client-side RPC deadlines/backoff.  After max_attempts expire for a
  /// server, it is declared dead and its regions are re-planned onto the
  /// survivors; results stay exactly the fault-free answer, only slower.
  rpc::RetryPolicy retry;
  /// Intra-server evaluation threads (paper §III-C: each server uses
  /// "multiple threads to process the query in parallel").  0 = serial (no
  /// pool).  N >= 1 creates one pool of N workers shared by every server
  /// of this service: region loops fan out per region, up to
  /// `max_inflight` requests per server overlap, and the simulated
  /// per-server cpu time becomes max(critical task, total work / N).
  /// Results are bit-identical to serial evaluation.
  std::uint32_t eval_threads = 0;
  /// With a pool: how many requests one server may process concurrently.
  std::uint32_t max_inflight = 4;
  /// Per-server admission queue limit: requests allowed to wait for a
  /// processing slot beyond the max_inflight already running.  Past the
  /// limit the server sheds (kOverloaded reply with a retry-after hint)
  /// instead of queueing unboundedly; server mailboxes get a transport
  /// backstop of queue_limit*4+64 messages.  0 = unbounded (never sheds).
  std::uint32_t queue_limit = 0;
  /// Which request a full admission queue sheds.
  rpc::ShedPolicy shed_policy = rpc::ShedPolicy::kRejectNew;
  /// Weighted-fair scheduler shares, indexed by QueryOptions::tenant
  /// (missing or non-positive entries default to weight 1; empty = all
  /// tenants equal, FIFO-equivalent ordering).
  std::vector<double> tenant_weights;
  /// Delta-WAH compaction threshold: a region whose sidecar reaches this
  /// many entries has its bitmap index rebuilt inline with the write that
  /// crossed the line.  0 disables compaction (deltas grow unbounded).
  std::uint64_t compact_threshold = 64;
  /// True: writes skip incremental index/replica maintenance entirely —
  /// accelerators go stale (queries scan-fallback / skip the replica)
  /// until an explicit rebuild.  Histograms are still always maintained.
  bool write_no_maint = false;
  /// Sorted-replica bulk rebuild once the write delta log reaches this
  /// many entries.  0 disables rebuilds.
  std::uint64_t replica_rebuild_threshold = 4096;
  /// Default shuffle strategy for join() (JoinSpec::strategy overrides).
  server::JoinStrategy join_strategy = server::JoinStrategy::kZoneShuffle;
  /// Exchange-lane reliability deadline: how long a server's ship/collect
  /// keeps retransmitting/waiting before the epoch fails (kUnavailable and
  /// the client re-plans onto the survivors).
  std::uint32_t join_shuffle_deadline_ms = 500;
  /// Distributed metadata service (ROADMAP item 2).  Non-null: each server
  /// hosts a MetaShard partition of this store's attributes (vnode ring,
  /// N-way replication) and the service answers meta_query()/
  /// meta_set_attribute() over kMetaQuery/kMetaUpdate RPC fan-outs.  Null
  /// (the default): no shards are built and the data path is untouched.
  /// Must outlive the service; it stays the authoritative copy (updates
  /// through the service write it too).
  meta::MetaStore* metadata = nullptr;
  /// Vnode count of the metadata hash ring (more vnodes = finer balance).
  std::uint32_t meta_vnodes = 64;
  /// Replicas per metadata vnode (clamped to num_servers); ≥2 keeps exact
  /// metadata answers available across a single server death.
  std::uint32_t meta_replicas = 2;

  /// Read strategy from the PDC_QUERY_STRATEGY environment variable
  /// ("fullscan", "histogram", "index", "sorted", "adaptive"), mirroring
  /// the paper's server configuration mechanism, eval_threads from
  /// PDC_QUERY_THREADS, dense_read_threshold from
  /// PDC_QUERY_DENSE_THRESHOLD, queue_limit from PDC_QUEUE_LIMIT,
  /// shed_policy from PDC_SHED_POLICY ("reject-new" / "drop-oldest"), and
  /// tenant_weights from PDC_TENANT_WEIGHTS (comma-separated, e.g.
  /// "3,1,1"), compact_threshold from PDC_COMPACT_THRESHOLD,
  /// write_no_maint from PDC_WRITE_NO_MAINT ("1"/"true"), and
  /// replica_rebuild_threshold from PDC_REPLICA_REBUILD_THRESHOLD.
  /// Unset/unknown keeps the defaults.  Joins: join_strategy from
  /// PDC_JOIN_STRATEGY ("zone" / "broadcast") and join_shuffle_deadline_ms
  /// from PDC_JOIN_SHUFFLE_DEADLINE_MS.  Metadata ring geometry:
  /// meta_vnodes from PDC_META_VNODES, meta_replicas from
  /// PDC_META_REPLICAS (the metadata store pointer itself cannot come from
  /// the environment).
  static ServiceOptions from_env();
};

class QueryService {
 public:
  QueryService(const obj::ObjectStore& store, ServiceOptions options);
  /// Writable deployment: servers additionally accept kTransferWrite and
  /// maintain accelerators incrementally.  The store reference is the same
  /// one the read path uses.
  QueryService(obj::ObjectStore& store, ServiceOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // ---- query execution (paper: PDCquery_get_nhits / _get_selection) ----
  Result<std::uint64_t> get_num_hits(const QueryPtr& query,
                                     const QueryOptions& opts = {});
  Result<Selection> get_selection(const QueryPtr& query,
                                  const QueryOptions& opts = {});

  // ---- cross-object join (ROADMAP item 4; implemented in service_join.cc)
  /// All (left_pos, right_pos) pairs within epsilon, zone cross-matched:
  /// every server produces its candidates locally, the exchange operator
  /// shuffles them by zone (or broadcasts, per the strategy), and each
  /// server joins its owned zones.  The result is bit-identical at any
  /// pool width, server count and shuffle strategy.
  Result<JoinResult> join(const JoinSpec& spec, const QueryOptions& opts = {});

  // ---- data retrieval (paper: PDCquery_get_data / _get_data_batch) ----
  /// Fetch the values of `selection` from `object` into `out`
  /// (out.size() must equal selection.num_hits).
  template <PdcElement T>
  Status get_data(ObjectId object, const Selection& selection,
                  std::span<T> out, GetDataMode mode = GetDataMode::kAuto,
                  const QueryOptions& opts = {}) {
    return get_data_raw(object, selection,
                        {reinterpret_cast<std::uint8_t*>(out.data()),
                         out.size_bytes()},
                        kPdcTypeOf<T>, mode, opts);
  }

  /// Type-erased get_data for language bindings: `out` must hold
  /// selection.num_hits elements of the target object's element type.
  Status get_data_bytes(ObjectId object, const Selection& selection,
                        std::uint8_t* out,
                        GetDataMode mode = GetDataMode::kAuto);

  /// Stream the selection's values in batches of at most `batch_elements`
  /// (paper: for results too large to fit in memory at once).  `consume` is
  /// called with the raw bytes of each batch and the index of its first
  /// element within the selection.
  Status get_data_batch(
      ObjectId object, const Selection& selection,
      std::uint64_t batch_elements,
      const std::function<void(std::span<const std::uint8_t>,
                               std::uint64_t)>& consume);

  // ---- write path (kTransferWrite) ----
  /// Append whole elements to `object` (all-new positions; trailing region
  /// grows / new regions appear).  Requires the writable constructor.
  Result<WriteReport> append(ObjectId object,
                             std::span<const std::uint8_t> payload,
                             const QueryOptions& opts = {});
  /// Overwrite `extent` of `object` with `payload` (whole elements; extent
  /// must lie inside the object).  Requires the writable constructor.
  Result<WriteReport> overwrite(ObjectId object, Extent1D extent,
                                std::span<const std::uint8_t> payload,
                                const QueryOptions& opts = {});

  // ---- metadata-side entry points ----
  /// Global histogram of an object — generated by the system at ingest, so
  /// retrieval is free (paper: PDCquery_get_histogram).
  Result<hist::MergeableHistogram> get_histogram(ObjectId object) const;

  // ---- distributed metadata service (ROADMAP item 2; service_meta.cc) ----
  /// Evaluate metadata conjuncts (exact / range / affix, see MetaMatchKind)
  /// over the sharded server-resident index: each condition is routed to
  /// the vnodes that can own it (never a broadcast), a load-aware replica
  /// answers per vnode, posting lists are unioned per condition and
  /// intersected across conditions client-side.  Returns the matching
  /// ObjectIds ascending — byte-identical to MetaStore::query on the
  /// authoritative store.  Requires ServiceOptions::metadata;
  /// FailedPrecondition otherwise.  Under faults the fan-out retries the
  /// surviving replicas of each vnode; with no replica left it returns
  /// kUnavailable — never a silently truncated result.
  Result<std::vector<ObjectId>> meta_query(
      std::span<const meta::MetaCondition> conditions,
      const QueryOptions& opts = {});
  /// Set (or overwrite) one attribute of one object through the replicated
  /// update path: the affected vnodes' replicas each apply the change
  /// exactly once (per-vnode sequence dedup) and bump their epoch; the
  /// authoritative MetaStore is updated after every replica acknowledged.
  /// Requires ServiceOptions::metadata.
  Status meta_set_attribute(ObjectId object, std::string_view attribute,
                            meta::MetaValue value, const QueryOptions& opts = {});
  /// True when this deployment hosts metadata shards.
  [[nodiscard]] bool metadata_enabled() const noexcept {
    return !meta_shards_.empty();
  }
  /// Ring geometry actually in effect (replicas clamped to num_servers).
  [[nodiscard]] const meta::MetaRingConfig& meta_ring() const noexcept {
    return meta_ring_;
  }

  /// Stats of the most recent completed operation (by value: under
  /// concurrent queries a reference could be overwritten mid-read).
  [[nodiscard]] OpStats last_stats() const {
    std::lock_guard lock(state_mu_);
    return stats_;
  }

  /// Span tree of the most recent operation run with QueryOptions::trace
  /// (null until one completes).  Shared ownership: a concurrent traced
  /// query replaces the pointer but never mutates a published trace.
  [[nodiscard]] std::shared_ptr<const obs::Trace> last_trace() const {
    std::lock_guard lock(state_mu_);
    return last_trace_;
  }

  /// Deployment metrics registry (bus/pool/pfs gauges, per-server counters
  /// and latency histograms).  Live for the service's lifetime.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Scrape a metrics snapshot from a live server over the kMetrics RPC —
  /// the same path an external monitoring client would use.  The snapshot
  /// is deployment-wide (every server shares one registry).
  Result<obs::MetricsSnapshot> scrape_metrics();

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::uint32_t num_servers() const noexcept {
    return options_.num_servers;
  }
  /// Cache occupancy across all servers (observability).
  [[nodiscard]] std::uint64_t cached_bytes() const;

  /// Servers currently considered dead (exhausted their retries).  A dead
  /// server stays dead for the lifetime of the service; its region share
  /// is evaluated by survivors.
  [[nodiscard]] std::vector<ServerId> dead_servers() const;

 private:
  /// Shared constructor body; `mutable_store` is null for the read-only
  /// overload and &store for the writable one.
  QueryService(const obj::ObjectStore& store, obj::ObjectStore* mutable_store,
               ServiceOptions options);

  Result<WriteReport> transfer_write(ObjectId object, server::WriteKind kind,
                                     Extent1D extent,
                                     std::span<const std::uint8_t> payload,
                                     const QueryOptions& opts);
  Status get_data_raw(ObjectId object, const Selection& selection,
                      std::span<std::uint8_t> out, PdcType type,
                      GetDataMode mode, const QueryOptions& opts = {});
  Result<Selection> eval(const QueryPtr& query, bool need_locations,
                         const QueryOptions& opts = {});
  /// Move the tracer's spans into last_trace_ (no-op for a disabled run).
  void publish_trace(obs::Tracer& tracer, bool traced);

  /// Servers not (yet) marked dead.
  [[nodiscard]] std::vector<ServerId> alive_servers() const;
  /// Count the regions of each term's driver object assigned to `identity`
  /// (what a redispatch re-plans onto a survivor).
  [[nodiscard]] std::uint64_t regions_of_identity(
      const std::vector<server::AndTerm>& terms, ServerId identity) const;

  /// Build the per-server MetaShard partitions from options_.metadata
  /// (constructor helper; parallel across servers when a pool exists).
  void build_meta_shards();
  /// Shared update path for meta_set_attribute and the write-path hook.
  Status meta_apply_update(ObjectId object, std::string_view attribute,
                           meta::MetaValue value, const QueryOptions& opts,
                           OpStats* stats_out);

  /// Publishes local per-operation stats into stats_ when done.
  void publish_stats(const OpStats& stats);
  /// Snapshot of dead_ under the lock.
  [[nodiscard]] std::vector<bool> dead_snapshot() const;
  void mark_dead(ServerId server);

  const obj::ObjectStore& store_;
  /// Non-null only for the writable constructor; servers get it as their
  /// ServerOptions::mutable_store.
  obj::ObjectStore* mutable_store_ = nullptr;
  ServiceOptions options_;
  /// Deployment metrics.  Declared before the pool/bus/servers so it is
  /// destroyed after them — every component holds instrument pointers into
  /// this registry for its whole lifetime.
  obs::MetricsRegistry metrics_;
  /// Shared intra-server pool; declared before bus_/runtimes_ so it is
  /// destroyed after them (in-flight server tasks run on it).
  std::unique_ptr<exec::ThreadPool> pool_;
  rpc::MessageBus bus_;
  /// Exchange endpoints (one per server), created before the servers that
  /// hold pointers to them and closed FIRST in the destructor so join
  /// handlers blocked in collect() wake before anything is torn down.
  std::vector<std::unique_ptr<rpc::ExchangePort>> ports_;
  /// Metadata ring geometry in effect (replicas clamped to num_servers);
  /// meaningful only when meta_shards_ is non-empty.
  meta::MetaRingConfig meta_ring_;
  /// Per-server metadata partitions (empty without ServiceOptions::
  /// metadata).  Declared before servers_, which hold raw pointers into
  /// them, so the shards outlive every in-flight request.
  std::vector<std::unique_ptr<meta::MetaShard>> meta_shards_;
  std::vector<std::unique_ptr<server::QueryServer>> servers_;
  std::vector<std::unique_ptr<rpc::ServerRuntime>> runtimes_;
  rpc::Client client_;
  /// Client-assigned join ids, unique per service instance: epoch state on
  /// the exchange lane is keyed by (join_id, epoch).
  std::atomic<std::uint64_t> next_join_id_{1};

  /// Guards stats_ and dead_ — the service state mutated by concurrent
  /// client calls (QueryServer/RegionCache handle their own locking).
  mutable std::mutex state_mu_;
  OpStats stats_;
  std::shared_ptr<const obs::Trace> last_trace_;
  /// dead_[s]: server s exhausted its retries and is out of the rotation.
  std::vector<bool> dead_;
  /// Per-object monotonically increasing write sequence numbers (guarded
  /// by state_mu_): servers deduplicate on these, so a retried or rerouted
  /// write RPC applies exactly once.
  std::map<ObjectId, std::uint64_t> write_seq_;
  /// Per-vnode metadata update sequence numbers (guarded by state_mu_):
  /// every replica of a vnode sees the same seq, so retried kMetaUpdate
  /// RPCs apply exactly once on each.
  std::map<std::uint32_t, std::uint64_t> meta_seq_;
  /// Accumulated simulated shard time charged to each server by meta
  /// queries (guarded by state_mu_) — the load-aware replica selector
  /// picks the least-loaded alive replica of each vnode.
  std::vector<double> meta_load_;
};

}  // namespace pdc::query
