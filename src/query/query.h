// Public query-condition API (paper Fig. 1).
//
// Users build a condition tree from three primitives — create (one
// comparison on one object), q_and, q_or — optionally constrain it to an
// element region, and hand it to the QueryService.  Trees are immutable and
// shared; combining queries never mutates the inputs.
//
//   auto q = pdc::query::q_and(
//       pdc::query::create(energy_id, QueryOp::kGT, 2.0),
//       pdc::query::create(x_id, QueryOp::kLT, 200.0));
#pragma once

#include <memory>
#include <optional>

#include "common/types.h"

namespace pdc::query {

class Query;
using QueryPtr = std::shared_ptr<const Query>;

/// Immutable query-condition tree node.
class Query {
 public:
  enum class Kind : std::uint8_t { kLeaf, kAnd, kOr };

  // -- leaf fields --
  ObjectId object = kInvalidObjectId;
  QueryOp op = QueryOp::kGT;
  double value = 0.0;

  // -- combiner fields --
  Kind kind = Kind::kLeaf;
  QueryPtr left;
  QueryPtr right;

  /// Spatial constraint: element extent, empty = whole object.  Applies to
  /// the whole (sub)tree it is set on; the root's constraint wins.
  std::optional<Extent1D> region_constraint;
};

/// One comparison on one object: `object <op> value`
/// (paper: PDCquery_create).
[[nodiscard]] inline QueryPtr create(ObjectId object, QueryOp op,
                                     double value) {
  auto q = std::make_shared<Query>();
  q->kind = Query::Kind::kLeaf;
  q->object = object;
  q->op = op;
  q->value = value;
  return q;
}

/// Typed overload mirroring the paper's (type, value-pointer) signature.
template <PdcElement T>
[[nodiscard]] QueryPtr create(ObjectId object, QueryOp op, T value) {
  return create(object, op, static_cast<double>(value));
}

/// Conjunction (paper: PDCquery_and).  Null inputs yield the other side.
[[nodiscard]] inline QueryPtr q_and(QueryPtr a, QueryPtr b) {
  if (!a) return b;
  if (!b) return a;
  auto q = std::make_shared<Query>();
  q->kind = Query::Kind::kAnd;
  q->left = std::move(a);
  q->right = std::move(b);
  return q;
}

/// Disjunction (paper: PDCquery_or).
[[nodiscard]] inline QueryPtr q_or(QueryPtr a, QueryPtr b) {
  if (!a) return b;
  if (!b) return a;
  auto q = std::make_shared<Query>();
  q->kind = Query::Kind::kOr;
  q->left = std::move(a);
  q->right = std::move(b);
  return q;
}

/// Attach a spatial constraint (paper: PDCquery_set_region).  Returns a new
/// root; the input tree is unchanged.
[[nodiscard]] inline QueryPtr set_region(const QueryPtr& q, Extent1D extent) {
  auto copy = std::make_shared<Query>(*q);
  copy->region_constraint = extent;
  return copy;
}

}  // namespace pdc::query
