file(REMOVE_RECURSE
  "libpdc_query.a"
)
