# Empty dependencies file for pdc_query.
# This may be replaced when dependencies are built.
