file(REMOVE_RECURSE
  "CMakeFiles/pdc_query.dir/pdc_capi.cc.o"
  "CMakeFiles/pdc_query.dir/pdc_capi.cc.o.d"
  "CMakeFiles/pdc_query.dir/planner.cc.o"
  "CMakeFiles/pdc_query.dir/planner.cc.o.d"
  "CMakeFiles/pdc_query.dir/service.cc.o"
  "CMakeFiles/pdc_query.dir/service.cc.o.d"
  "libpdc_query.a"
  "libpdc_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdc_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
