#include "query/pdc_capi.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "query/query.h"

namespace pdc::capi {
namespace {

query::QueryService* g_service = nullptr;
meta::MetaStore* g_meta = nullptr;

thread_local std::string t_last_error;

perr_t fail(std::string message) {
  t_last_error = std::move(message);
  return PDC_FAILURE;
}

QueryOp to_op(pdc_query_op_t op) {
  switch (op) {
    case PDC_GT: return QueryOp::kGT;
    case PDC_GTE: return QueryOp::kGTE;
    case PDC_LT: return QueryOp::kLT;
    case PDC_LTE: return QueryOp::kLTE;
    case PDC_EQ: return QueryOp::kEQ;
  }
  return QueryOp::kGT;
}

double value_as_double(pdc_type_t type, const void* value) {
  switch (type) {
    case PDC_FLOAT: return *static_cast<const float*>(value);
    case PDC_DOUBLE: return *static_cast<const double*>(value);
    case PDC_INT: return *static_cast<const std::int32_t*>(value);
    case PDC_UINT: return *static_cast<const std::uint32_t*>(value);
    case PDC_INT64:
      return static_cast<double>(*static_cast<const std::int64_t*>(value));
    case PDC_UINT64:
      return static_cast<double>(*static_cast<const std::uint64_t*>(value));
  }
  return 0.0;
}

}  // namespace

struct pdcquery_t {
  query::QueryPtr tree;
};

struct pdcselection_t {
  query::Selection selection;
};

struct pdchistogram_t {
  hist::MergeableHistogram histogram;
};

void PDC_attach(query::QueryService* service, meta::MetaStore* meta) {
  g_service = service;
  g_meta = meta;
}

void PDC_detach() {
  g_service = nullptr;
  g_meta = nullptr;
}

pdcquery_t* PDCquery_create(pdc_id_t obj_id, pdc_query_op_t op,
                            pdc_type_t type, const void* value) {
  if (value == nullptr) {
    fail("PDCquery_create: null value");
    return nullptr;
  }
  auto* q = new pdcquery_t;
  q->tree = query::create(obj_id, to_op(op), value_as_double(type, value));
  return q;
}

pdcquery_t* PDCquery_and(pdcquery_t* query1, pdcquery_t* query2) {
  if (query1 == nullptr || query2 == nullptr) {
    fail("PDCquery_and: null operand");
    return nullptr;
  }
  auto* q = new pdcquery_t;
  q->tree = query::q_and(query1->tree, query2->tree);
  return q;
}

pdcquery_t* PDCquery_or(pdcquery_t* query1, pdcquery_t* query2) {
  if (query1 == nullptr || query2 == nullptr) {
    fail("PDCquery_or: null operand");
    return nullptr;
  }
  auto* q = new pdcquery_t;
  q->tree = query::q_or(query1->tree, query2->tree);
  return q;
}

perr_t PDCquery_sel_region(pdcquery_t* query, const pdc_region_t* region) {
  if (query == nullptr || region == nullptr) {
    return fail("PDCquery_sel_region: null argument");
  }
  query->tree =
      query::set_region(query->tree, Extent1D{region->offset, region->size});
  return PDC_SUCCESS;
}

perr_t PDCquery_get_nhits(pdcquery_t* query, std::uint64_t* n) {
  if (g_service == nullptr) return fail("no service attached");
  if (query == nullptr || n == nullptr) {
    return fail("PDCquery_get_nhits: null argument");
  }
  auto result = g_service->get_num_hits(query->tree);
  if (!result.ok()) return fail(result.status().ToString());
  *n = *result;
  return PDC_SUCCESS;
}

perr_t PDCquery_get_selection(pdcquery_t* query, pdcselection_t** sel) {
  if (g_service == nullptr) return fail("no service attached");
  if (query == nullptr || sel == nullptr) {
    return fail("PDCquery_get_selection: null argument");
  }
  auto result = g_service->get_selection(query->tree);
  if (!result.ok()) return fail(result.status().ToString());
  *sel = new pdcselection_t{std::move(*result)};
  return PDC_SUCCESS;
}

perr_t PDCquery_get_data(pdc_id_t obj_id, pdcselection_t* sel, void* data) {
  if (g_service == nullptr) return fail("no service attached");
  if (sel == nullptr || data == nullptr) {
    return fail("PDCquery_get_data: null argument");
  }
  // Element size comes from the target object's metadata.
  const Status status = [&] {
    auto desc = g_service->get_histogram(obj_id);  // existence check
    if (!desc.ok()) return desc.status();
    // Type-erased fetch: the templated entry ultimately routes here.
    return g_service->get_data_bytes(obj_id, sel->selection,
                                     static_cast<std::uint8_t*>(data));
  }();
  if (!status.ok()) return fail(status.ToString());
  return PDC_SUCCESS;
}

perr_t PDCquery_get_data_batch(pdc_id_t obj_id, pdcselection_t* sel,
                               std::uint64_t batch_size, void* data,
                               std::uint64_t batch_index,
                               std::uint64_t* batch_elements) {
  if (g_service == nullptr) return fail("no service attached");
  if (sel == nullptr || data == nullptr || batch_elements == nullptr ||
      batch_size == 0) {
    return fail("PDCquery_get_data_batch: bad argument");
  }
  const std::uint64_t first = batch_index * batch_size;
  if (first >= sel->selection.num_hits) {
    *batch_elements = 0;
    return PDC_SUCCESS;
  }
  const std::uint64_t count =
      std::min(batch_size, sel->selection.num_hits - first);
  query::Selection batch;
  batch.num_hits = count;
  batch.positions.assign(
      sel->selection.positions.begin() + static_cast<std::ptrdiff_t>(first),
      sel->selection.positions.begin() +
          static_cast<std::ptrdiff_t>(first + count));
  const Status status = g_service->get_data_bytes(
      obj_id, batch, static_cast<std::uint8_t*>(data));
  if (!status.ok()) return fail(status.ToString());
  *batch_elements = count;
  return PDC_SUCCESS;
}

pdchistogram_t* PDCquery_get_histogram(pdc_id_t obj_id) {
  if (g_service == nullptr) {
    fail("no service attached");
    return nullptr;
  }
  auto result = g_service->get_histogram(obj_id);
  if (!result.ok()) {
    fail(result.status().ToString());
    return nullptr;
  }
  return new pdchistogram_t{std::move(*result)};
}

perr_t PDCquery_tag(const char* name, std::uint32_t val_size, const void* val,
                    int* nobj, pdc_id_t** obj_ids) {
  if (g_meta == nullptr) return fail("no metadata store attached");
  if (name == nullptr || val == nullptr || nobj == nullptr ||
      obj_ids == nullptr) {
    return fail("PDCquery_tag: null argument");
  }
  meta::MetaValue value;
  if (val_size == sizeof(double)) {
    double d = 0;
    std::memcpy(&d, val, sizeof(double));
    value = d;
  } else {
    value = std::string(static_cast<const char*>(val), val_size);
  }
  const std::vector<ObjectId> ids = g_meta->query_tag(name, value);
  *nobj = static_cast<int>(ids.size());
  if (ids.empty()) {
    *obj_ids = nullptr;
    return PDC_SUCCESS;
  }
  auto* out = static_cast<pdc_id_t*>(
      std::malloc(ids.size() * sizeof(pdc_id_t)));
  if (out == nullptr) return fail("PDCquery_tag: allocation failed");
  std::memcpy(out, ids.data(), ids.size() * sizeof(pdc_id_t));
  *obj_ids = out;
  return PDC_SUCCESS;
}

std::uint64_t PDCselection_nhits(const pdcselection_t* sel) {
  return sel == nullptr ? 0 : sel->selection.num_hits;
}

const std::uint64_t* PDCselection_coords(const pdcselection_t* sel) {
  return sel == nullptr || sel->selection.positions.empty()
             ? nullptr
             : sel->selection.positions.data();
}

std::uint64_t PDChistogram_nbins(const pdchistogram_t* hist) {
  return hist == nullptr ? 0 : hist->histogram.num_bins();
}

std::uint64_t PDChistogram_bin_count(const pdchistogram_t* hist,
                                     std::uint64_t bin) {
  if (hist == nullptr || bin >= hist->histogram.num_bins()) return 0;
  return hist->histogram.counts()[static_cast<std::size_t>(bin)];
}

double PDChistogram_bin_edge(const pdchistogram_t* hist, std::uint64_t bin) {
  if (hist == nullptr) return 0.0;
  return hist->histogram.bin_left_edge(static_cast<std::size_t>(bin));
}

void PDCquery_free(pdcquery_t* query) { delete query; }
void PDCselection_free(pdcselection_t* sel) { delete sel; }
void PDChistogram_free(pdchistogram_t* hist) { delete hist; }

const char* PDC_last_error() { return t_last_error.c_str(); }

}  // namespace pdc::capi
