// Distributed metadata service — the client side (ROADMAP item 2).
//
// The authoritative MetaStore stays where it always was; what moves to the
// servers is the INDEX.  Each QueryServer hosts a MetaShard: the affix-trie
// postings of every vnode whose rendezvous replica set contains it
// (meta_shard.h).  meta_query() routes each conjunct to the vnodes that
// can own it — exact string lookups to one prefix bucket, numeric
// equality/ranges to the attribute's numeric vnode, affix walks to the
// first/last-byte bucket — so the fan-out touches the owning servers only,
// never a broadcast.  Replica selection is load-aware: among the alive
// replicas of a vnode, the one with the least accumulated simulated shard
// time answers.  Posting lists come back per condition, are unioned across
// vnodes and intersected across conditions client-side, and the final
// ascending ObjectId list is byte-identical to MetaStore::query on the
// authoritative copy (pinned by the MetaCheck differential battery).
//
// Updates (meta_set_attribute and the write-path hook) go to EVERY alive
// replica of each affected vnode under a client-assigned per-vnode
// sequence number: a retried or rerouted kMetaUpdate applies exactly once
// per replica (MetaShard::apply's high-water dedup), and every
// application bumps the vnode epoch that queries report back.
//
// Degraded mode mirrors the data path: a replica that exhausts its
// retries is marked dead and its (condition, vnode) work re-routes to the
// surviving replicas; only a vnode with NO replica left surfaces
// kUnavailable — a truncated posting list is never an answer.
#include <algorithm>
#include <limits>
#include <utility>

#include "common/log.h"
#include "common/timer.h"
#include "query/service.h"

namespace pdc::query {

void QueryService::build_meta_shards() {
  if (options_.metadata == nullptr) return;
  meta_ring_.vnodes = std::max<std::uint32_t>(1, options_.meta_vnodes);
  meta_ring_.num_servers = options_.num_servers;
  meta_ring_.replicas =
      std::min(std::max<std::uint32_t>(1, options_.meta_replicas),
               options_.num_servers);
  // Reflect the effective geometry back into options() for observability.
  options_.meta_vnodes = meta_ring_.vnodes;
  options_.meta_replicas = meta_ring_.replicas;
  meta_shards_.reserve(options_.num_servers);
  for (ServerId s = 0; s < options_.num_servers; ++s) {
    meta_shards_.push_back(std::make_unique<meta::MetaShard>(meta_ring_, s));
  }
  // Each server walks the authoritative store once and keeps only the
  // postings of the vnodes it replicates; servers build in parallel.
  exec::parallel_for(pool_.get(), options_.num_servers, [&](std::size_t s) {
    meta::MetaShard& shard = *meta_shards_[s];
    options_.metadata->for_each(
        [&](ObjectId id, const std::map<std::string, meta::MetaValue>& attrs) {
          for (const auto& [name, value] : attrs) {
            shard.index_attribute(id, name, value);
          }
        });
  });
  meta_load_.assign(options_.num_servers, 0.0);
}

Result<std::vector<ObjectId>> QueryService::meta_query(
    std::span<const meta::MetaCondition> conditions, const QueryOptions& opts) {
  WallTimer wall;
  obs::Tracer tracer(opts.trace ? obs::next_id() : 0);
  const obs::TraceContext root =
      opts.trace ? obs::TraceContext{&tracer, tracer.trace_id(), 0}
                 : obs::TraceContext{};
  obs::ScopedSpan query_span(root, "client.meta_query", "client");
  OpStats stats;
  struct Publisher {
    QueryService* service;
    OpStats* stats;
    WallTimer* wall;
    ~Publisher() {
      stats->wall_seconds = wall->elapsed_seconds();
      service->publish_stats(*stats);
    }
  } publisher{this, &stats, &wall};
  if (meta_shards_.empty()) {
    return Status::FailedPrecondition(
        "no metadata service in this deployment; set "
        "ServiceOptions::metadata");
  }
  const CostModel& cost = store_.cluster().config().cost;
  std::vector<ObjectId> result;
  if (conditions.empty()) {
    publish_trace(tracer, opts.trace);
    return result;  // mirrors MetaStore::query on an empty conjunction
  }

  // Route every conjunct to the vnodes that can own it.  An empty route
  // means the condition provably matches nothing — the whole conjunction
  // is empty without a single RPC.
  const std::size_t num_conditions = conditions.size();
  std::vector<std::vector<std::uint32_t>> routes(num_conditions);
  for (std::size_t i = 0; i < num_conditions; ++i) {
    routes[i] = meta::vnodes_of_condition(conditions[i], meta_ring_);
    if (routes[i].empty()) {
      query_span.close();
      publish_trace(tracer, opts.trace);
      return result;
    }
  }

  struct Pending {
    std::size_t cond;
    std::uint32_t vnode;
  };
  std::vector<Pending> pending;
  for (std::size_t i = 0; i < num_conditions; ++i) {
    for (const std::uint32_t v : routes[i]) pending.push_back({i, v});
  }
  std::vector<std::vector<ObjectId>> postings(num_conditions);

  while (!pending.empty()) {
    // Load-aware replica selection: the alive replica with the least
    // accumulated shard time answers; ties break toward the lowest id so
    // the choice is deterministic.
    const std::vector<bool> dead = dead_snapshot();
    std::vector<double> load;
    {
      std::lock_guard lock(state_mu_);
      load = meta_load_;
    }
    std::map<ServerId, std::vector<Pending>> assignment;
    for (const Pending& p : pending) {
      const std::vector<ServerId> replicas =
          meta::replicas_of(p.vnode, meta_ring_);
      ServerId best = 0;
      double best_load = std::numeric_limits<double>::infinity();
      bool found = false;
      for (const ServerId r : replicas) {
        if (dead[r]) continue;
        if (!found || load[r] < best_load) {
          best = r;
          best_load = load[r];
          found = true;
        }
      }
      if (!found) {
        stats.dead_servers = dead_servers().size();
        return Status::Unavailable("metadata vnode " +
                                   std::to_string(p.vnode) +
                                   " lost all replicas");
      }
      assignment[best].push_back(p);
    }

    // One kMetaQuery per chosen server, carrying only the conditions (and
    // vnodes) assigned to it; remember the global condition index of every
    // request slot for the merge.
    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
    std::vector<std::vector<std::size_t>> slot_cond;
    std::vector<std::vector<Pending>> request_pending;
    double max_request_net = 0.0;
    for (auto& [target, assigned] : assignment) {
      std::map<std::size_t, std::vector<std::uint32_t>> by_condition;
      for (const Pending& p : assigned) by_condition[p.cond].push_back(p.vnode);
      server::MetaQueryRequest request;
      std::vector<std::size_t> mapping;
      for (auto& [cond, vnodes] : by_condition) {
        request.conditions.push_back(conditions[cond]);
        request.vnodes.push_back(std::move(vnodes));
        mapping.push_back(cond);
      }
      std::vector<std::uint8_t> payload = request.serialize();
      stats.request_bytes += payload.size();
      max_request_net =
          std::max(max_request_net, cost.net_cost(payload.size()));
      requests.emplace_back(target, std::move(payload));
      slot_cond.push_back(std::move(mapping));
      request_pending.push_back(std::move(assigned));
    }
    stats.net_seconds += max_request_net;

    const rpc::GatherResult gathered =
        client_.gather(requests, query_span.context(), opts.tenant);
    stats.retries += gathered.stats.retries;
    stats.timeouts += gathered.stats.timeouts;
    stats.sheds += gathered.stats.sheds;
    if (gathered.bus_closed) {
      return Status::Unavailable("message bus shut down mid-query");
    }

    bool round_has_response = false;
    server::LedgerSummary round_critical;
    std::vector<Pending> requeued;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const ServerId target = requests[i].first;
      const auto& message = gathered.responses[i];
      if (!message.has_value()) {
        if (gathered.shed[i]) {
          // Overloaded, not dead: fail fast instead of piling the load
          // onto the other replicas.
          return Status::Overloaded("server " + std::to_string(target) +
                                    " shed the metadata query; retry later");
        }
        mark_dead(target);
        requeued.insert(requeued.end(), request_pending[i].begin(),
                        request_pending[i].end());
        continue;
      }
      SerialReader reader(message->payload);
      PDC_ASSIGN_OR_RETURN(server::MetaQueryResponse response,
                           server::MetaQueryResponse::Deserialize(reader));
      PDC_RETURN_IF_ERROR(response.status);
      if (response.postings.size() != slot_cond[i].size()) {
        return Status::Corruption(
            "meta query response misaligned with its request");
      }
      for (std::size_t j = 0; j < slot_cond[i].size(); ++j) {
        std::vector<ObjectId>& sink = postings[slot_cond[i][j]];
        sink.insert(sink.end(), response.postings[j].begin(),
                    response.postings[j].end());
      }
      stats.meta_probes += response.probes;
      stats.meta_vnodes_queried += response.epochs.size();
      for (const auto& [vnode, epoch] : response.epochs) {
        (void)vnode;
        stats.meta_max_epoch = std::max(stats.meta_max_epoch, epoch);
      }
      stats.response_bytes += message->payload.size();
      if (!round_has_response ||
          response.ledger.elapsed() > round_critical.elapsed()) {
        round_critical = response.ledger;
        round_has_response = true;
      }
      {
        std::lock_guard lock(state_mu_);
        meta_load_[target] += response.ledger.elapsed();
      }
    }
    if (round_has_response) {
      stats.max_server_seconds += round_critical.elapsed();
      stats.max_server_io_seconds += round_critical.io_seconds;
      stats.max_server_cpu_seconds += round_critical.cpu_seconds;
      stats.max_server_scan_seconds += round_critical.scan_seconds;
      stats.max_server_merge_seconds += round_critical.merge_seconds;
    }
    if (!requeued.empty()) {
      log_warn("meta query degraded: ", requeued.size(),
               " vnode consultations re-routed to surviving replicas");
    }
    pending = std::move(requeued);
  }
  stats.dead_servers = dead_servers().size();

  // Responses stream back to the one client NIC.
  stats.net_seconds +=
      cost.net_latency_s +
      static_cast<double>(stats.response_bytes) / cost.net_bandwidth_bps;

  // Client-side merge: union each condition's per-vnode lists, then
  // intersect across conditions smallest-first.
  obs::ScopedSpan merge_span(query_span.context(), "client.meta_merge",
                             "client");
  std::uint64_t merged_elements = 0;
  for (std::vector<ObjectId>& list : postings) {
    merged_elements += list.size();
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  std::sort(postings.begin(), postings.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  result = std::move(postings.front());
  std::vector<ObjectId> scratch;
  for (std::size_t i = 1; i < postings.size() && !result.empty(); ++i) {
    scratch.clear();
    std::set_intersection(result.begin(), result.end(), postings[i].begin(),
                          postings[i].end(), std::back_inserter(scratch));
    result.swap(scratch);
  }
  stats.client_cpu_seconds +=
      2.0 * cost.scan_cost(merged_elements * sizeof(ObjectId));
  merge_span.arg("postings", static_cast<double>(merged_elements));
  merge_span.close();

  stats.sim_elapsed_seconds = stats.net_seconds + stats.max_server_seconds +
                              stats.client_cpu_seconds;
  if (opts.trace) {
    query_span.arg("sim_elapsed_s", stats.sim_elapsed_seconds);
    query_span.arg("num_hits", static_cast<double>(result.size()));
    query_span.close();
    publish_trace(tracer, /*traced=*/true);
  }
  return result;
}

Status QueryService::meta_apply_update(ObjectId object,
                                       std::string_view attribute,
                                       meta::MetaValue value,
                                       const QueryOptions& opts,
                                       OpStats* stats_out) {
  if (meta_shards_.empty()) {
    return Status::FailedPrecondition(
        "no metadata service in this deployment; set "
        "ServiceOptions::metadata");
  }
  const CostModel& cost = store_.cluster().config().cost;
  const std::optional<meta::MetaValue> old_value =
      options_.metadata->get_attribute(object, attribute);
  // Affected vnodes: wherever the new value will be indexed, plus wherever
  // the old value must be removed from.
  std::vector<std::uint32_t> vnodes =
      meta::vnodes_of_value(attribute, value, meta_ring_);
  if (old_value.has_value()) {
    const std::vector<std::uint32_t> stale =
        meta::vnodes_of_value(attribute, *old_value, meta_ring_);
    vnodes.insert(vnodes.end(), stale.begin(), stale.end());
    std::sort(vnodes.begin(), vnodes.end());
    vnodes.erase(std::unique(vnodes.begin(), vnodes.end()), vnodes.end());
  }

  server::MetaUpdateOpWire op;
  op.object = object;
  op.attribute = std::string(attribute);
  op.has_old = old_value.has_value();
  if (old_value.has_value()) op.old_value = *old_value;
  op.new_value = value;

  for (const std::uint32_t vnode : vnodes) {
    // Client-assigned per-vnode sequence: every replica sees the same seq,
    // so a retried or bus-duplicated request applies exactly once each.
    std::uint64_t seq = 0;
    {
      std::lock_guard lock(state_mu_);
      seq = ++meta_seq_[vnode];
    }
    server::MetaUpdateRequest request;
    request.vnode = vnode;
    request.seq = seq;
    request.ops.push_back(op);
    const std::vector<std::uint8_t> bytes = request.serialize();

    const std::vector<bool> dead = dead_snapshot();
    std::vector<std::pair<ServerId, std::vector<std::uint8_t>>> requests;
    for (const ServerId r : meta::replicas_of(vnode, meta_ring_)) {
      if (!dead[r]) requests.emplace_back(r, bytes);
    }
    if (requests.empty()) {
      return Status::Unavailable("metadata vnode " + std::to_string(vnode) +
                                 " lost all replicas");
    }
    if (stats_out != nullptr) {
      stats_out->request_bytes += bytes.size() * requests.size();
      // Replica copies travel in parallel: one message's cost, not the sum.
      stats_out->net_seconds += cost.net_cost(bytes.size());
    }
    const rpc::GatherResult gathered =
        client_.gather(requests, obs::TraceContext{}, opts.tenant);
    if (gathered.bus_closed) {
      return Status::Unavailable("message bus shut down mid-update");
    }
    if (stats_out != nullptr) {
      stats_out->retries += gathered.stats.retries;
      stats_out->timeouts += gathered.stats.timeouts;
      stats_out->sheds += gathered.stats.sheds;
    }
    bool acknowledged = false;
    double round_max = 0.0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const ServerId target = requests[i].first;
      const auto& message = gathered.responses[i];
      if (!message.has_value()) {
        if (gathered.shed[i]) {
          return Status::Overloaded("server " + std::to_string(target) +
                                    " shed the metadata update; retry later");
        }
        // A dead replica stays dead for the service lifetime, so its shard
        // never serves again — missing this update is harmless.
        mark_dead(target);
        continue;
      }
      SerialReader reader(message->payload);
      PDC_ASSIGN_OR_RETURN(server::MetaUpdateResponse response,
                           server::MetaUpdateResponse::Deserialize(reader));
      PDC_RETURN_IF_ERROR(response.status);
      acknowledged = true;
      round_max = std::max(round_max, response.ledger.elapsed());
      if (stats_out != nullptr) {
        stats_out->response_bytes += message->payload.size();
        stats_out->meta_max_epoch =
            std::max(stats_out->meta_max_epoch, response.epoch);
        stats_out->meta_vnodes_queried += 1;
      }
    }
    if (!acknowledged) {
      return Status::Unavailable("metadata vnode " + std::to_string(vnode) +
                                 " lost all replicas");
    }
    if (stats_out != nullptr) {
      stats_out->max_server_seconds += round_max;
      stats_out->max_server_cpu_seconds += round_max;
      stats_out->net_seconds += cost.net_latency_s;
    }
  }

  // The authoritative copy is written LAST — only after every affected
  // vnode's surviving replicas acknowledged — so the oracle never claims
  // an update the shards could still lose.
  options_.metadata->set_attribute(object, attribute, std::move(value));
  return Status::Ok();
}

Status QueryService::meta_set_attribute(ObjectId object,
                                        std::string_view attribute,
                                        meta::MetaValue value,
                                        const QueryOptions& opts) {
  WallTimer wall;
  OpStats stats;
  struct Publisher {
    QueryService* service;
    OpStats* stats;
    WallTimer* wall;
    ~Publisher() {
      stats->wall_seconds = wall->elapsed_seconds();
      service->publish_stats(*stats);
    }
  } publisher{this, &stats, &wall};
  PDC_RETURN_IF_ERROR(
      meta_apply_update(object, attribute, std::move(value), opts, &stats));
  stats.dead_servers = dead_servers().size();
  stats.sim_elapsed_seconds = stats.net_seconds + stats.max_server_seconds;
  return Status::Ok();
}

}  // namespace pdc::query
